// pipeline_inspector — look inside the compiled data plane programs.
//
// Prints (1) the stage-by-stage listing of the P4LRU3 cache program and the
// Tower filter program, and (2) generated P4-16 (TNA-style) source for the
// P4LRU3 program — the same construct family as the paper's open-source P4
// artifact: Registers, RegisterActions with two-branch arithmetic, hash
// calls, and a stage-ordered apply block.
//
//   ./build/examples/example_pipeline_inspector [--p4]
#include <cstdio>
#include <cstring>

#include "p4lru/pipeline/p4lru3_program.hpp"
#include "p4lru/pipeline/tower_program.hpp"

int main(int argc, char** argv) {
    using namespace p4lru::pipeline;

    const bool emit_p4 = argc > 1 && std::strcmp(argv[1], "--p4") == 0;

    P4lru3PipelineCache cache(1u << 4, 0xAB, ValueMode::kWriteAccumulate);
    TowerPipelineFilter tower(TowerPipelineFilter::Config{});

    if (emit_p4) {
        std::printf("%s\n", cache.pipeline().export_p4("p4lru3_cache").c_str());
        return 0;
    }

    std::printf("==== P4LRU3 cache array program ====\n%s\n",
                cache.pipeline().describe().c_str());
    std::printf("==== Tower filter program ====\n%s\n",
                tower.pipeline().describe().c_str());
    std::printf(
        "Run with --p4 to emit TNA-style P4-16 source for the cache "
        "program.\n");
    return 0;
}
