// Quickstart: the P4LRU core API in five minutes.
//
//   1. a single P4LRU3 unit — Algorithm 1 with the key/value/state split;
//   2. the Table-1 arithmetic-encoded unit (what runs in a stateful ALU);
//   3. a parallel-connected array (arbitrary capacity);
//   4. the same cache compiled onto the pipeline model, with constraint
//      checking and a Tofino-style resource report.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/example_quickstart
#include <cstdio>
#include <string>

#include "p4lru/core/p4lru.hpp"
#include "p4lru/core/p4lru_encoded.hpp"
#include "p4lru/core/parallel_array.hpp"
#include "p4lru/pipeline/p4lru3_program.hpp"

int main() {
    using namespace p4lru;

    // ---- 1. One behavioural P4LRU3 unit --------------------------------
    std::printf("== 1. behavioural P4lru<key, value, 3> ==\n");
    core::P4lru<std::string, std::string, 3> unit;
    unit.update("alpha", "A");
    unit.update("bravo", "B");
    unit.update("charlie", "C");
    unit.update("alpha", "A2");  // hit: promotes alpha, replaces its value
    const auto r = unit.update("delta", "D");  // evicts the LRU key
    std::printf("inserted delta; evicted <%s, %s> (least recently used)\n",
                r.evicted_key.c_str(), r.evicted_value.c_str());
    std::printf("lookup alpha -> %s\n", unit.find("alpha")->c_str());
    std::printf("cache state S_lru = %s (keys in LRU order, values fixed)\n",
                unit.state().to_permutation().to_string().c_str());

    // ---- 2. The encoded unit (stateful-ALU arithmetic) ------------------
    std::printf("\n== 2. arithmetic-encoded P4LRU3 (Table 1) ==\n");
    core::P4lru3Encoded<std::uint32_t, std::uint32_t> enc;
    enc.update(11, 110);
    enc.update(22, 220);
    std::printf("state code after two misses: %u (started at 4)\n",
                enc.state_code());
    enc.update(11, 111);  // hit at key[2] -> op2: S >= 4 ? S^1 : S^3
    std::printf("state code after a key[2] hit: %u\n", enc.state_code());
    std::printf("find(11) -> %u\n", *enc.find(11));

    // ---- 3. Parallel connection: many units, one hash -------------------
    std::printf("\n== 3. parallel-connected array ==\n");
    core::ParallelCache<core::P4lru<std::uint32_t, std::uint32_t, 3>,
                        std::uint32_t, std::uint32_t>
        array(1u << 12, /*seed=*/7);
    for (std::uint32_t k = 1; k <= 10'000; ++k) array.update(k, k * 2);
    std::printf("capacity %zu entries across %zu units; %zu keys resident\n",
                array.capacity(), array.unit_count(), array.size());

    // ---- 4. The same cache as a pipeline program ------------------------
    std::printf("\n== 4. pipeline-compiled P4LRU3 ==\n");
    pipeline::P4lru3PipelineCache pipe(1u << 10, 7,
                                       pipeline::ValueMode::kReadCache);
    pipe.update(42, 4242);
    const auto hit = pipe.update(42, 0);
    std::printf("pipeline hit on key 42 -> value %u (read-cache keeps it)\n",
                hit.value);
    std::printf("stages used: %zu, SALUs: %zu — one register access per\n"
                "packet per array, enforced at runtime\n",
                pipe.resources().stages, pipe.resources().salus);
    std::printf("\nresource report (Tofino-1-class budget):\n%s",
                pipe.resources()
                    .to_table(pipeline::PipelineBudget{})
                    .c_str());
    return 0;
}
