// nat_gateway — the LruTable scenario end to end (paper Section 3.1).
//
// A NAT gateway translates virtual destination addresses on the data plane.
// The control plane holds the authoritative table; the data plane caches the
// hot entries in a P4LRU3 array. This example replays a synthetic CAIDA-like
// trace and prints the fast-path/slow-path breakdown, then swaps in the
// hash-table baseline for comparison.
//
//   ./build/examples/example_nat_gateway [packets] [cache_entries]
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "p4lru/cache/policy.hpp"
#include "p4lru/systems/lrutable/lrutable.hpp"
#include "p4lru/trace/trace_gen.hpp"

using namespace p4lru;
using namespace p4lru::systems::lrutable;

namespace {

LruTableReport replay(const std::vector<PacketRecord>& trace,
                      std::unique_ptr<LruTableSystem::Policy> policy) {
    LruTableConfig cfg;
    cfg.slow_path_delay = 40 * kMicrosecond;
    LruTableSystem nat(std::move(policy), cfg);
    for (const auto& pkt : trace) nat.process(pkt);
    nat.finish();
    return nat.report();
}

void print(const char* name, const LruTableReport& r) {
    std::printf(
        "%-8s packets %-8lu fast-path %-8lu placeholder %-6lu misses %-6lu\n"
        "         miss rate %.2f%%  avg added latency %.2f us\n",
        name, r.packets, r.fast_path, r.placeholder_hits, r.misses,
        100.0 * r.miss_rate, r.avg_added_latency_us);
}

}  // namespace

int main(int argc, char** argv) {
    const std::size_t packets =
        argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 800'000;
    const std::size_t entries =
        argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 6'144;

    std::printf("generating a CAIDA_30-like trace (%zu packets)...\n",
                packets);
    trace::TraceConfig tc;
    tc.total_packets = packets;
    tc.segments = 30;
    const auto trace = trace::generate_trace(tc);
    const auto stats = trace::compute_stats(trace);
    std::printf("trace: %zu packets, %zu flows, peak concurrency %zu\n\n",
                stats.packets, stats.flows, stats.max_concurrent);

    print("P4LRU3",
          replay(trace,
                 std::make_unique<cache::P4lruArrayPolicy<
                     VirtualAddress, std::uint32_t, 3>>(entries, 0x9A)));
    print("P4LRU1",
          replay(trace,
                 std::make_unique<cache::P4lruArrayPolicy<
                     VirtualAddress, std::uint32_t, 1>>(entries, 0x9A)));
    print("IDEAL",
          replay(trace, std::make_unique<cache::IdealLruPolicy<
                            VirtualAddress, std::uint32_t>>(entries)));

    std::printf(
        "\nEvery slow-path packet pays the control-plane round trip; the\n"
        "pipeline-LRU fast path should sit between the hash baseline and\n"
        "the unconstrained ideal LRU.\n");
    return 0;
}
