// telemetry_monitor — the LruMon scenario end to end (paper Section 3.3).
//
// A telemetry switch measures per-flow byte counts with zero
// overestimation: a windowed TowerSketch filters mouse flows, elephants are
// aggregated in a fingerprint-keyed P4LRU3 write-cache, and every cache miss
// uploads the evicted entry to a remote analyzer. A better cache means fewer
// uploads at identical accuracy.
//
//   ./build/examples/example_telemetry_monitor [packets] [threshold_bytes]
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "p4lru/systems/lrumon/lrumon.hpp"
#include "p4lru/trace/trace_gen.hpp"

using namespace p4lru;
using namespace p4lru::systems::lrumon;

namespace {

LruMonReport monitor(const std::vector<PacketRecord>& trace,
                     std::uint32_t threshold, bool use_p4lru3) {
    FilterConfig fcfg;
    fcfg.reset_period = 10 * kMillisecond;
    LruMonConfig cfg;
    cfg.threshold = threshold;

    std::unique_ptr<cache::ReplacementPolicy<std::uint32_t, FlowLen>> policy;
    if (use_p4lru3) {
        policy = std::make_unique<cache::P4lruArrayPolicy<
            std::uint32_t, FlowLen, 3, core::AddMerge>>(768, 0x3E);
    } else {
        policy = std::make_unique<cache::P4lruArrayPolicy<
            std::uint32_t, FlowLen, 1, core::AddMerge>>(768, 0x3E);
    }
    LruMonSystem mon(make_filter(FilterKind::kTower, fcfg), std::move(policy),
                     cfg);
    for (const auto& pkt : trace) mon.process(pkt);
    mon.finish();
    return mon.report();
}

}  // namespace

int main(int argc, char** argv) {
    const std::size_t packets =
        argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 800'000;
    const std::uint32_t threshold =
        argc > 2 ? static_cast<std::uint32_t>(std::strtoul(argv[2], nullptr,
                                                           10))
                 : 1500;

    trace::TraceConfig tc;
    tc.total_packets = packets;
    tc.segments = 60;
    const auto trace = trace::generate_trace(tc);
    std::printf("trace: %zu packets\n\n", trace.size());

    for (const bool p4lru3 : {true, false}) {
        const auto r = monitor(trace, threshold, p4lru3);
        std::printf("%s:\n", p4lru3 ? "P4LRU3 cache" : "hash baseline");
        std::printf("  filtered (mouse) packets : %lu\n", r.filtered_packets);
        std::printf("  elephant packets         : %lu (miss rate %.2f%%)\n",
                    r.elephant_packets, 100.0 * r.cache_miss_rate);
        std::printf("  uploads to the analyzer  : %lu (%.1f KPPS)\n",
                    r.uploads, r.upload_kpps);
        std::printf("  measured bytes           : %lu of %lu (error %.2f%%)\n",
                    r.measured_bytes, r.total_bytes,
                    100.0 * r.total_error_rate);
        std::printf("  max per-flow error       : %lu B"
                    "   overestimated flows: %lu\n\n",
                    r.max_flow_error, r.overestimated_flows);
    }
    std::printf(
        "Identical accuracy, fewer uploads: the replacement policy only\n"
        "changes how often entries bounce to the analyzer, never the\n"
        "no-overestimation guarantee.\n");
    return 0;
}
