// query_accelerator — the LruIndex scenario end to end (paper Section 3.2).
//
// A switch between YCSB clients and a database caches *indexes* (48-bit
// record addresses) in four series-connected P4LRU3 arrays. Query packets
// read the cache and stamp cached_flag/cached_index; the server bypasses its
// B+ tree on a hit; reply packets perform the single cache mutation.
//
//   ./build/examples/example_query_accelerator [items] [queries] [threads]
#include <cstdio>
#include <cstdlib>

#include "p4lru/systems/lruindex/db_server.hpp"
#include "p4lru/systems/lruindex/driver.hpp"
#include "p4lru/systems/lruindex/index_cache.hpp"

using namespace p4lru;
using namespace p4lru::systems::lruindex;

int main(int argc, char** argv) {
    const std::uint64_t items =
        argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 200'000;
    const std::size_t queries =
        argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 100'000;
    const std::size_t threads =
        argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 8;

    std::printf("loading database: %lu items (64-byte records, B+ tree)\n",
                items);
    DbServer server(items, ServerCosts{});
    std::printf("index height: %zu levels\n\n", server.index_height());

    DriverConfig cfg;
    cfg.threads = threads;
    cfg.queries = queries;
    cfg.workload.items = items;
    cfg.workload.zipf_alpha = 0.9;  // the paper's YCSB skew

    // The paper's four-pipeline LruIndex: 4 series-connected P4LRU3 arrays.
    SeriesIndexCache cache(4, 1u << 12, 0x1D);
    std::printf("switch cache: 4 levels x %zu units x 3 = %zu indexes\n\n",
                std::size_t{1} << 12, cache.capacity_entries());

    const auto cached = run_driver(cfg, server, &cache);
    auto naive_cfg = cfg;
    naive_cfg.use_cache = false;
    const auto naive = run_driver(naive_cfg, server, nullptr);

    std::printf("with LruIndex : %8.1f KTPS  avg latency %6.1f us  miss %5.2f%%\n",
                cached.throughput_ktps, cached.avg_latency_us,
                100.0 * cached.miss_rate);
    std::printf("naive (no cache): %6.1f KTPS  avg latency %6.1f us\n",
                naive.throughput_ktps, naive.avg_latency_us);
    std::printf("speedup: %.2fx   wrong replies: %lu (must be 0)\n",
                cached.throughput_ktps / naive.throughput_ktps,
                cached.wrong_replies);
    return 0;
}
