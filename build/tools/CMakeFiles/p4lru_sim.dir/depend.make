# Empty dependencies file for p4lru_sim.
# This may be replaced when dependencies are built.
