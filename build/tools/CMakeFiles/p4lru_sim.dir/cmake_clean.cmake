file(REMOVE_RECURSE
  "CMakeFiles/p4lru_sim.dir/p4lru_sim.cpp.o"
  "CMakeFiles/p4lru_sim.dir/p4lru_sim.cpp.o.d"
  "p4lru_sim"
  "p4lru_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p4lru_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
