# Empty dependencies file for bench_fig14_lrumon_comparative.
# This may be replaced when dependencies are built.
