file(REMOVE_RECURSE
  "../bench/bench_fig14_lrumon_comparative"
  "../bench/bench_fig14_lrumon_comparative.pdb"
  "CMakeFiles/bench_fig14_lrumon_comparative.dir/bench_fig14_lrumon_comparative.cpp.o"
  "CMakeFiles/bench_fig14_lrumon_comparative.dir/bench_fig14_lrumon_comparative.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_lrumon_comparative.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
