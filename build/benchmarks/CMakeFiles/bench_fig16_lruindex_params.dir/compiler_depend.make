# Empty compiler generated dependencies file for bench_fig16_lruindex_params.
# This may be replaced when dependencies are built.
