file(REMOVE_RECURSE
  "../bench/bench_fig17_lrumon_params"
  "../bench/bench_fig17_lrumon_params.pdb"
  "CMakeFiles/bench_fig17_lrumon_params.dir/bench_fig17_lrumon_params.cpp.o"
  "CMakeFiles/bench_fig17_lrumon_params.dir/bench_fig17_lrumon_params.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_lrumon_params.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
