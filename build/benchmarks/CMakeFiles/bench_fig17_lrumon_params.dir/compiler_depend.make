# Empty compiler generated dependencies file for bench_fig17_lrumon_params.
# This may be replaced when dependencies are built.
