file(REMOVE_RECURSE
  "../bench/bench_fig13_lruindex_comparative"
  "../bench/bench_fig13_lruindex_comparative.pdb"
  "CMakeFiles/bench_fig13_lruindex_comparative.dir/bench_fig13_lruindex_comparative.cpp.o"
  "CMakeFiles/bench_fig13_lruindex_comparative.dir/bench_fig13_lruindex_comparative.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_lruindex_comparative.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
