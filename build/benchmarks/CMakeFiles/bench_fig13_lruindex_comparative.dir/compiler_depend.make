# Empty compiler generated dependencies file for bench_fig13_lruindex_comparative.
# This may be replaced when dependencies are built.
