# Empty dependencies file for bench_fig15_lrutable_params.
# This may be replaced when dependencies are built.
