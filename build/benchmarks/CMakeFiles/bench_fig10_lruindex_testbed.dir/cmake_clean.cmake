file(REMOVE_RECURSE
  "../bench/bench_fig10_lruindex_testbed"
  "../bench/bench_fig10_lruindex_testbed.pdb"
  "CMakeFiles/bench_fig10_lruindex_testbed.dir/bench_fig10_lruindex_testbed.cpp.o"
  "CMakeFiles/bench_fig10_lruindex_testbed.dir/bench_fig10_lruindex_testbed.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_lruindex_testbed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
