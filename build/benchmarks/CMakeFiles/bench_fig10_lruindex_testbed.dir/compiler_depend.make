# Empty compiler generated dependencies file for bench_fig10_lruindex_testbed.
# This may be replaced when dependencies are built.
