# Empty compiler generated dependencies file for bench_fig09_lrutable_testbed.
# This may be replaced when dependencies are built.
