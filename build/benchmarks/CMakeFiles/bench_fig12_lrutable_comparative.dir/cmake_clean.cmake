file(REMOVE_RECURSE
  "../bench/bench_fig12_lrutable_comparative"
  "../bench/bench_fig12_lrutable_comparative.pdb"
  "CMakeFiles/bench_fig12_lrutable_comparative.dir/bench_fig12_lrutable_comparative.cpp.o"
  "CMakeFiles/bench_fig12_lrutable_comparative.dir/bench_fig12_lrutable_comparative.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_lrutable_comparative.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
