# Empty compiler generated dependencies file for bench_fig12_lrutable_comparative.
# This may be replaced when dependencies are built.
