
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/cache/p4lru4_policy_test.cpp" "tests/CMakeFiles/p4lru_tests.dir/cache/p4lru4_policy_test.cpp.o" "gcc" "tests/CMakeFiles/p4lru_tests.dir/cache/p4lru4_policy_test.cpp.o.d"
  "/root/repo/tests/cache/policy_test.cpp" "tests/CMakeFiles/p4lru_tests.dir/cache/policy_test.cpp.o" "gcc" "tests/CMakeFiles/p4lru_tests.dir/cache/policy_test.cpp.o.d"
  "/root/repo/tests/cache/similarity_test.cpp" "tests/CMakeFiles/p4lru_tests.dir/cache/similarity_test.cpp.o" "gcc" "tests/CMakeFiles/p4lru_tests.dir/cache/similarity_test.cpp.o.d"
  "/root/repo/tests/common/hash_test.cpp" "tests/CMakeFiles/p4lru_tests.dir/common/hash_test.cpp.o" "gcc" "tests/CMakeFiles/p4lru_tests.dir/common/hash_test.cpp.o.d"
  "/root/repo/tests/common/stats_test.cpp" "tests/CMakeFiles/p4lru_tests.dir/common/stats_test.cpp.o" "gcc" "tests/CMakeFiles/p4lru_tests.dir/common/stats_test.cpp.o.d"
  "/root/repo/tests/core/bucket_oracle_test.cpp" "tests/CMakeFiles/p4lru_tests.dir/core/bucket_oracle_test.cpp.o" "gcc" "tests/CMakeFiles/p4lru_tests.dir/core/bucket_oracle_test.cpp.o.d"
  "/root/repo/tests/core/group_test.cpp" "tests/CMakeFiles/p4lru_tests.dir/core/group_test.cpp.o" "gcc" "tests/CMakeFiles/p4lru_tests.dir/core/group_test.cpp.o.d"
  "/root/repo/tests/core/lru_state_test.cpp" "tests/CMakeFiles/p4lru_tests.dir/core/lru_state_test.cpp.o" "gcc" "tests/CMakeFiles/p4lru_tests.dir/core/lru_state_test.cpp.o.d"
  "/root/repo/tests/core/p4lru4_test.cpp" "tests/CMakeFiles/p4lru_tests.dir/core/p4lru4_test.cpp.o" "gcc" "tests/CMakeFiles/p4lru_tests.dir/core/p4lru4_test.cpp.o.d"
  "/root/repo/tests/core/p4lru_encoded_test.cpp" "tests/CMakeFiles/p4lru_tests.dir/core/p4lru_encoded_test.cpp.o" "gcc" "tests/CMakeFiles/p4lru_tests.dir/core/p4lru_encoded_test.cpp.o.d"
  "/root/repo/tests/core/p4lru_test.cpp" "tests/CMakeFiles/p4lru_tests.dir/core/p4lru_test.cpp.o" "gcc" "tests/CMakeFiles/p4lru_tests.dir/core/p4lru_test.cpp.o.d"
  "/root/repo/tests/core/parallel_array_test.cpp" "tests/CMakeFiles/p4lru_tests.dir/core/parallel_array_test.cpp.o" "gcc" "tests/CMakeFiles/p4lru_tests.dir/core/parallel_array_test.cpp.o.d"
  "/root/repo/tests/core/permutation_test.cpp" "tests/CMakeFiles/p4lru_tests.dir/core/permutation_test.cpp.o" "gcc" "tests/CMakeFiles/p4lru_tests.dir/core/permutation_test.cpp.o.d"
  "/root/repo/tests/core/series_cache_test.cpp" "tests/CMakeFiles/p4lru_tests.dir/core/series_cache_test.cpp.o" "gcc" "tests/CMakeFiles/p4lru_tests.dir/core/series_cache_test.cpp.o.d"
  "/root/repo/tests/core/state_codec_test.cpp" "tests/CMakeFiles/p4lru_tests.dir/core/state_codec_test.cpp.o" "gcc" "tests/CMakeFiles/p4lru_tests.dir/core/state_codec_test.cpp.o.d"
  "/root/repo/tests/index/bptree_test.cpp" "tests/CMakeFiles/p4lru_tests.dir/index/bptree_test.cpp.o" "gcc" "tests/CMakeFiles/p4lru_tests.dir/index/bptree_test.cpp.o.d"
  "/root/repo/tests/index/record_store_test.cpp" "tests/CMakeFiles/p4lru_tests.dir/index/record_store_test.cpp.o" "gcc" "tests/CMakeFiles/p4lru_tests.dir/index/record_store_test.cpp.o.d"
  "/root/repo/tests/integration/end_to_end_test.cpp" "tests/CMakeFiles/p4lru_tests.dir/integration/end_to_end_test.cpp.o" "gcc" "tests/CMakeFiles/p4lru_tests.dir/integration/end_to_end_test.cpp.o.d"
  "/root/repo/tests/pipeline/lruindex_query_program_test.cpp" "tests/CMakeFiles/p4lru_tests.dir/pipeline/lruindex_query_program_test.cpp.o" "gcc" "tests/CMakeFiles/p4lru_tests.dir/pipeline/lruindex_query_program_test.cpp.o.d"
  "/root/repo/tests/pipeline/p4_export_test.cpp" "tests/CMakeFiles/p4lru_tests.dir/pipeline/p4_export_test.cpp.o" "gcc" "tests/CMakeFiles/p4lru_tests.dir/pipeline/p4_export_test.cpp.o.d"
  "/root/repo/tests/pipeline/p4lru2_program_test.cpp" "tests/CMakeFiles/p4lru_tests.dir/pipeline/p4lru2_program_test.cpp.o" "gcc" "tests/CMakeFiles/p4lru_tests.dir/pipeline/p4lru2_program_test.cpp.o.d"
  "/root/repo/tests/pipeline/p4lru3_program_test.cpp" "tests/CMakeFiles/p4lru_tests.dir/pipeline/p4lru3_program_test.cpp.o" "gcc" "tests/CMakeFiles/p4lru_tests.dir/pipeline/p4lru3_program_test.cpp.o.d"
  "/root/repo/tests/pipeline/pipeline_test.cpp" "tests/CMakeFiles/p4lru_tests.dir/pipeline/pipeline_test.cpp.o" "gcc" "tests/CMakeFiles/p4lru_tests.dir/pipeline/pipeline_test.cpp.o.d"
  "/root/repo/tests/pipeline/system_resources_test.cpp" "tests/CMakeFiles/p4lru_tests.dir/pipeline/system_resources_test.cpp.o" "gcc" "tests/CMakeFiles/p4lru_tests.dir/pipeline/system_resources_test.cpp.o.d"
  "/root/repo/tests/pipeline/tower_program_test.cpp" "tests/CMakeFiles/p4lru_tests.dir/pipeline/tower_program_test.cpp.o" "gcc" "tests/CMakeFiles/p4lru_tests.dir/pipeline/tower_program_test.cpp.o.d"
  "/root/repo/tests/sim/event_queue_test.cpp" "tests/CMakeFiles/p4lru_tests.dir/sim/event_queue_test.cpp.o" "gcc" "tests/CMakeFiles/p4lru_tests.dir/sim/event_queue_test.cpp.o.d"
  "/root/repo/tests/sketch/countmin_test.cpp" "tests/CMakeFiles/p4lru_tests.dir/sketch/countmin_test.cpp.o" "gcc" "tests/CMakeFiles/p4lru_tests.dir/sketch/countmin_test.cpp.o.d"
  "/root/repo/tests/sketch/elastic_coco_test.cpp" "tests/CMakeFiles/p4lru_tests.dir/sketch/elastic_coco_test.cpp.o" "gcc" "tests/CMakeFiles/p4lru_tests.dir/sketch/elastic_coco_test.cpp.o.d"
  "/root/repo/tests/sketch/towersketch_test.cpp" "tests/CMakeFiles/p4lru_tests.dir/sketch/towersketch_test.cpp.o" "gcc" "tests/CMakeFiles/p4lru_tests.dir/sketch/towersketch_test.cpp.o.d"
  "/root/repo/tests/systems/analyzer_test.cpp" "tests/CMakeFiles/p4lru_tests.dir/systems/analyzer_test.cpp.o" "gcc" "tests/CMakeFiles/p4lru_tests.dir/systems/analyzer_test.cpp.o.d"
  "/root/repo/tests/systems/lruindex_test.cpp" "tests/CMakeFiles/p4lru_tests.dir/systems/lruindex_test.cpp.o" "gcc" "tests/CMakeFiles/p4lru_tests.dir/systems/lruindex_test.cpp.o.d"
  "/root/repo/tests/systems/lrumon_test.cpp" "tests/CMakeFiles/p4lru_tests.dir/systems/lrumon_test.cpp.o" "gcc" "tests/CMakeFiles/p4lru_tests.dir/systems/lrumon_test.cpp.o.d"
  "/root/repo/tests/systems/lrutable_test.cpp" "tests/CMakeFiles/p4lru_tests.dir/systems/lrutable_test.cpp.o" "gcc" "tests/CMakeFiles/p4lru_tests.dir/systems/lrutable_test.cpp.o.d"
  "/root/repo/tests/trace/trace_gen_test.cpp" "tests/CMakeFiles/p4lru_tests.dir/trace/trace_gen_test.cpp.o" "gcc" "tests/CMakeFiles/p4lru_tests.dir/trace/trace_gen_test.cpp.o.d"
  "/root/repo/tests/trace/trace_io_test.cpp" "tests/CMakeFiles/p4lru_tests.dir/trace/trace_io_test.cpp.o" "gcc" "tests/CMakeFiles/p4lru_tests.dir/trace/trace_io_test.cpp.o.d"
  "/root/repo/tests/trace/ycsb_test.cpp" "tests/CMakeFiles/p4lru_tests.dir/trace/ycsb_test.cpp.o" "gcc" "tests/CMakeFiles/p4lru_tests.dir/trace/ycsb_test.cpp.o.d"
  "/root/repo/tests/trace/zipf_test.cpp" "tests/CMakeFiles/p4lru_tests.dir/trace/zipf_test.cpp.o" "gcc" "tests/CMakeFiles/p4lru_tests.dir/trace/zipf_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/p4lru.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
