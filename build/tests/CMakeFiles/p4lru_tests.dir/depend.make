# Empty dependencies file for p4lru_tests.
# This may be replaced when dependencies are built.
