file(REMOVE_RECURSE
  "CMakeFiles/example_pipeline_inspector.dir/pipeline_inspector.cpp.o"
  "CMakeFiles/example_pipeline_inspector.dir/pipeline_inspector.cpp.o.d"
  "example_pipeline_inspector"
  "example_pipeline_inspector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_pipeline_inspector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
