# Empty dependencies file for example_pipeline_inspector.
# This may be replaced when dependencies are built.
