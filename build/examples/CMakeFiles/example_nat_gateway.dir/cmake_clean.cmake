file(REMOVE_RECURSE
  "CMakeFiles/example_nat_gateway.dir/nat_gateway.cpp.o"
  "CMakeFiles/example_nat_gateway.dir/nat_gateway.cpp.o.d"
  "example_nat_gateway"
  "example_nat_gateway.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_nat_gateway.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
