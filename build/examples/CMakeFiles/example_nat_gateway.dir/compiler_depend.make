# Empty compiler generated dependencies file for example_nat_gateway.
# This may be replaced when dependencies are built.
