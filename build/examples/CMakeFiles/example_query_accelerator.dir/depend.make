# Empty dependencies file for example_query_accelerator.
# This may be replaced when dependencies are built.
