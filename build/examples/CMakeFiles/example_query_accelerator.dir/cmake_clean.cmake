file(REMOVE_RECURSE
  "CMakeFiles/example_query_accelerator.dir/query_accelerator.cpp.o"
  "CMakeFiles/example_query_accelerator.dir/query_accelerator.cpp.o.d"
  "example_query_accelerator"
  "example_query_accelerator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_query_accelerator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
