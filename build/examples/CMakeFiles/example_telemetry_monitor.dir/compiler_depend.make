# Empty compiler generated dependencies file for example_telemetry_monitor.
# This may be replaced when dependencies are built.
