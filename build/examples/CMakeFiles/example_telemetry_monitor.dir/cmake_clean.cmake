file(REMOVE_RECURSE
  "CMakeFiles/example_telemetry_monitor.dir/telemetry_monitor.cpp.o"
  "CMakeFiles/example_telemetry_monitor.dir/telemetry_monitor.cpp.o.d"
  "example_telemetry_monitor"
  "example_telemetry_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_telemetry_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
