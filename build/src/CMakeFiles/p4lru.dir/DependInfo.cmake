
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/hash.cpp" "src/CMakeFiles/p4lru.dir/common/hash.cpp.o" "gcc" "src/CMakeFiles/p4lru.dir/common/hash.cpp.o.d"
  "/root/repo/src/common/table.cpp" "src/CMakeFiles/p4lru.dir/common/table.cpp.o" "gcc" "src/CMakeFiles/p4lru.dir/common/table.cpp.o.d"
  "/root/repo/src/common/zipf.cpp" "src/CMakeFiles/p4lru.dir/common/zipf.cpp.o" "gcc" "src/CMakeFiles/p4lru.dir/common/zipf.cpp.o.d"
  "/root/repo/src/core/group.cpp" "src/CMakeFiles/p4lru.dir/core/group.cpp.o" "gcc" "src/CMakeFiles/p4lru.dir/core/group.cpp.o.d"
  "/root/repo/src/core/p4lru4.cpp" "src/CMakeFiles/p4lru.dir/core/p4lru4.cpp.o" "gcc" "src/CMakeFiles/p4lru.dir/core/p4lru4.cpp.o.d"
  "/root/repo/src/core/permutation.cpp" "src/CMakeFiles/p4lru.dir/core/permutation.cpp.o" "gcc" "src/CMakeFiles/p4lru.dir/core/permutation.cpp.o.d"
  "/root/repo/src/core/state_codec.cpp" "src/CMakeFiles/p4lru.dir/core/state_codec.cpp.o" "gcc" "src/CMakeFiles/p4lru.dir/core/state_codec.cpp.o.d"
  "/root/repo/src/index/record_store.cpp" "src/CMakeFiles/p4lru.dir/index/record_store.cpp.o" "gcc" "src/CMakeFiles/p4lru.dir/index/record_store.cpp.o.d"
  "/root/repo/src/pipeline/lruindex_query_program.cpp" "src/CMakeFiles/p4lru.dir/pipeline/lruindex_query_program.cpp.o" "gcc" "src/CMakeFiles/p4lru.dir/pipeline/lruindex_query_program.cpp.o.d"
  "/root/repo/src/pipeline/p4_export.cpp" "src/CMakeFiles/p4lru.dir/pipeline/p4_export.cpp.o" "gcc" "src/CMakeFiles/p4lru.dir/pipeline/p4_export.cpp.o.d"
  "/root/repo/src/pipeline/p4lru2_program.cpp" "src/CMakeFiles/p4lru.dir/pipeline/p4lru2_program.cpp.o" "gcc" "src/CMakeFiles/p4lru.dir/pipeline/p4lru2_program.cpp.o.d"
  "/root/repo/src/pipeline/p4lru3_program.cpp" "src/CMakeFiles/p4lru.dir/pipeline/p4lru3_program.cpp.o" "gcc" "src/CMakeFiles/p4lru.dir/pipeline/p4lru3_program.cpp.o.d"
  "/root/repo/src/pipeline/pipeline.cpp" "src/CMakeFiles/p4lru.dir/pipeline/pipeline.cpp.o" "gcc" "src/CMakeFiles/p4lru.dir/pipeline/pipeline.cpp.o.d"
  "/root/repo/src/pipeline/system_resources.cpp" "src/CMakeFiles/p4lru.dir/pipeline/system_resources.cpp.o" "gcc" "src/CMakeFiles/p4lru.dir/pipeline/system_resources.cpp.o.d"
  "/root/repo/src/pipeline/tower_program.cpp" "src/CMakeFiles/p4lru.dir/pipeline/tower_program.cpp.o" "gcc" "src/CMakeFiles/p4lru.dir/pipeline/tower_program.cpp.o.d"
  "/root/repo/src/systems/lruindex/db_server.cpp" "src/CMakeFiles/p4lru.dir/systems/lruindex/db_server.cpp.o" "gcc" "src/CMakeFiles/p4lru.dir/systems/lruindex/db_server.cpp.o.d"
  "/root/repo/src/systems/lruindex/driver.cpp" "src/CMakeFiles/p4lru.dir/systems/lruindex/driver.cpp.o" "gcc" "src/CMakeFiles/p4lru.dir/systems/lruindex/driver.cpp.o.d"
  "/root/repo/src/systems/lrumon/analyzer.cpp" "src/CMakeFiles/p4lru.dir/systems/lrumon/analyzer.cpp.o" "gcc" "src/CMakeFiles/p4lru.dir/systems/lrumon/analyzer.cpp.o.d"
  "/root/repo/src/systems/lrumon/lrumon.cpp" "src/CMakeFiles/p4lru.dir/systems/lrumon/lrumon.cpp.o" "gcc" "src/CMakeFiles/p4lru.dir/systems/lrumon/lrumon.cpp.o.d"
  "/root/repo/src/systems/lrutable/lrutable.cpp" "src/CMakeFiles/p4lru.dir/systems/lrutable/lrutable.cpp.o" "gcc" "src/CMakeFiles/p4lru.dir/systems/lrutable/lrutable.cpp.o.d"
  "/root/repo/src/trace/trace_gen.cpp" "src/CMakeFiles/p4lru.dir/trace/trace_gen.cpp.o" "gcc" "src/CMakeFiles/p4lru.dir/trace/trace_gen.cpp.o.d"
  "/root/repo/src/trace/trace_io.cpp" "src/CMakeFiles/p4lru.dir/trace/trace_io.cpp.o" "gcc" "src/CMakeFiles/p4lru.dir/trace/trace_io.cpp.o.d"
  "/root/repo/src/trace/ycsb.cpp" "src/CMakeFiles/p4lru.dir/trace/ycsb.cpp.o" "gcc" "src/CMakeFiles/p4lru.dir/trace/ycsb.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
