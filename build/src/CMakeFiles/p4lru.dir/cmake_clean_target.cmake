file(REMOVE_RECURSE
  "libp4lru.a"
)
