# Empty dependencies file for p4lru.
# This may be replaced when dependencies are built.
