// Count-Min sketch (Cormode & Muthukrishnan) and its conservative-update
// variant (CU). Both are usable as the mouse-flow filter of LruMon
// (Section 3.3 notes LruMon is "compatible with other sketches").
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <vector>

#include "p4lru/common/byte_io.hpp"
#include "p4lru/sketch/sketch_common.hpp"

namespace p4lru::sketch {

/// Classic Count-Min: d rows of w saturating counters; estimate = row min.
/// Overestimates only (never underestimates), the property LruMon's accuracy
/// argument relies on.
template <typename Key, typename Counter = std::uint32_t>
class CountMin {
  public:
    CountMin(std::size_t width, std::size_t depth, std::uint64_t seed)
        : width_(width), depth_(depth), seed_(seed),
          rows_(depth, std::vector<Counter>(width, 0)) {
        if (width == 0 || depth == 0) {
            throw std::invalid_argument("CountMin: zero dimension");
        }
    }

    /// Add `delta` to the key's counters (saturating).
    void add(const Key& k, std::uint64_t delta = 1) {
        for (std::size_t d = 0; d < depth_; ++d) {
            Counter& c = cell(d, k);
            c = saturating_add(c, delta);
        }
    }

    /// Point query: min over the rows.
    [[nodiscard]] std::uint64_t estimate(const Key& k) const {
        std::uint64_t best = std::numeric_limits<std::uint64_t>::max();
        for (std::size_t d = 0; d < depth_; ++d) {
            best = std::min<std::uint64_t>(best, cell(d, k));
        }
        return best;
    }

    /// Combined add + estimate in one pass (what the data plane does).
    std::uint64_t add_and_estimate(const Key& k, std::uint64_t delta) {
        std::uint64_t best = std::numeric_limits<std::uint64_t>::max();
        for (std::size_t d = 0; d < depth_; ++d) {
            Counter& c = cell(d, k);
            c = saturating_add(c, delta);
            best = std::min<std::uint64_t>(best, c);
        }
        return best;
    }

    void clear() {
        for (auto& row : rows_) std::fill(row.begin(), row.end(), Counter{0});
    }

    /// Append the counter rows to `w` (checkpoint snapshot plane).  Shape
    /// (width/depth/seed) is construction-time configuration and is not
    /// serialized; load() requires an identically-configured sketch.
    void save(io::ByteWriter& w) const {
        for (const auto& row : rows_) {
            w.bytes(row.data(), row.size() * sizeof(Counter));
        }
    }

    /// Restore counter rows written by save() on an identically-configured
    /// sketch; false when the image is too short.
    [[nodiscard]] bool load(io::ByteReader& r) {
        for (auto& row : rows_) {
            if (!r.bytes(row.data(), row.size() * sizeof(Counter))) {
                return false;
            }
        }
        return true;
    }

    [[nodiscard]] std::size_t width() const noexcept { return width_; }
    [[nodiscard]] std::size_t depth() const noexcept { return depth_; }
    [[nodiscard]] std::size_t memory_bytes() const noexcept {
        return width_ * depth_ * sizeof(Counter);
    }

  protected:
    [[nodiscard]] Counter& cell(std::size_t d, const Key& k) {
        return rows_[d][reduce(digest64(k, seed_ + d * 0x9E3779B9ULL), width_)];
    }
    [[nodiscard]] const Counter& cell(std::size_t d, const Key& k) const {
        return rows_[d][reduce(digest64(k, seed_ + d * 0x9E3779B9ULL), width_)];
    }

    static Counter saturating_add(Counter c, std::uint64_t delta) noexcept {
        const auto max = std::numeric_limits<Counter>::max();
        const std::uint64_t sum = static_cast<std::uint64_t>(c) + delta;
        return sum >= max ? max : static_cast<Counter>(sum);
    }

    std::size_t width_;
    std::size_t depth_;
    std::uint64_t seed_;
    std::vector<std::vector<Counter>> rows_;
};

/// Conservative-update (CU) sketch: only the minimal counters grow, cutting
/// overestimation roughly in half at the cost of not supporting deletions.
template <typename Key, typename Counter = std::uint32_t>
class CuSketch : public CountMin<Key, Counter> {
  public:
    using Base = CountMin<Key, Counter>;
    using Base::Base;

    void add(const Key& k, std::uint64_t delta = 1) {
        // Raise every counter to max(counter, current_estimate + delta).
        const std::uint64_t target = this->estimate(k) + delta;
        for (std::size_t d = 0; d < this->depth_; ++d) {
            Counter& c = this->cell(d, k);
            if (static_cast<std::uint64_t>(c) < target) {
                const auto max = std::numeric_limits<Counter>::max();
                c = target >= max ? max : static_cast<Counter>(target);
            }
        }
    }

    std::uint64_t add_and_estimate(const Key& k, std::uint64_t delta) {
        add(k, delta);
        return this->estimate(k);
    }
};

}  // namespace p4lru::sketch
