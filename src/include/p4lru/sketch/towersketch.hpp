// TowerSketch (Yang et al., ICNP 2021): a Count-Min variant whose levels use
// counters of different widths — wide arrays of small counters catch mouse
// flows cheaply, narrow arrays of large counters keep elephants countable.
// A saturated counter carries no information and is excluded from the min.
//
// This is the mouse-flow filter of LruMon (Section 3.3): C1 = 2^20 8-bit
// counters, C2 = 2^19 16-bit counters in the paper's configuration.
#pragma once

#include <cstdint>
#include <limits>
#include <stdexcept>
#include <vector>

#include "p4lru/common/byte_io.hpp"
#include "p4lru/sketch/sketch_common.hpp"

namespace p4lru::sketch {

/// One Tower level: `width` counters of `bits` (8, 16 or 32) each.
struct TowerLevelConfig {
    std::size_t width = 0;
    unsigned bits = 8;
};

template <typename Key>
class TowerSketch {
  public:
    TowerSketch(std::vector<TowerLevelConfig> levels, std::uint64_t seed)
        : seed_(seed) {
        if (levels.empty()) {
            throw std::invalid_argument("TowerSketch: no levels");
        }
        levels_.reserve(levels.size());
        for (const auto& cfg : levels) {
            if (cfg.width == 0) {
                throw std::invalid_argument("TowerSketch: zero width");
            }
            if (cfg.bits != 8 && cfg.bits != 16 && cfg.bits != 32) {
                throw std::invalid_argument("TowerSketch: bits not in 8/16/32");
            }
            Level lvl;
            lvl.max = cfg.bits == 32
                          ? std::numeric_limits<std::uint32_t>::max()
                          : ((std::uint32_t{1} << cfg.bits) - 1);
            lvl.counters.assign(cfg.width, 0);
            levels_.push_back(std::move(lvl));
        }
    }

    /// Add delta to the key's counter in every level (saturating) and return
    /// the resulting estimate: min over non-saturated counters; if all are
    /// saturated the estimate is the largest level maximum (a lower bound).
    std::uint64_t add_and_estimate(const Key& k, std::uint64_t delta) {
        std::uint64_t best = std::numeric_limits<std::uint64_t>::max();
        std::uint64_t floor = 0;
        for (std::size_t i = 0; i < levels_.size(); ++i) {
            Level& lvl = levels_[i];
            std::uint32_t& c = lvl.counters[slot(i, k)];
            const std::uint64_t sum = static_cast<std::uint64_t>(c) + delta;
            c = sum >= lvl.max ? lvl.max : static_cast<std::uint32_t>(sum);
            if (c < lvl.max) {
                best = std::min<std::uint64_t>(best, c);
            } else {
                floor = std::max<std::uint64_t>(floor, lvl.max);
            }
        }
        return best == std::numeric_limits<std::uint64_t>::max() ? floor
                                                                 : best;
    }

    void add(const Key& k, std::uint64_t delta = 1) { add_and_estimate(k, delta); }

    [[nodiscard]] std::uint64_t estimate(const Key& k) const {
        std::uint64_t best = std::numeric_limits<std::uint64_t>::max();
        std::uint64_t floor = 0;
        for (std::size_t i = 0; i < levels_.size(); ++i) {
            const Level& lvl = levels_[i];
            const std::uint32_t c = lvl.counters[slot(i, k)];
            if (c < lvl.max) {
                best = std::min<std::uint64_t>(best, c);
            } else {
                floor = std::max<std::uint64_t>(floor, lvl.max);
            }
        }
        return best == std::numeric_limits<std::uint64_t>::max() ? floor
                                                                 : best;
    }

    void clear() {
        for (auto& lvl : levels_) {
            std::fill(lvl.counters.begin(), lvl.counters.end(), 0u);
        }
    }

    /// Append the level counters to `w` (checkpoint snapshot plane); shape
    /// is construction-time configuration, so load() requires an
    /// identically-configured sketch.
    void save(io::ByteWriter& w) const {
        for (const auto& lvl : levels_) {
            w.bytes(lvl.counters.data(),
                    lvl.counters.size() * sizeof(std::uint32_t));
        }
    }

    /// Restore counters written by save(); false when the image is short.
    [[nodiscard]] bool load(io::ByteReader& r) {
        for (auto& lvl : levels_) {
            if (!r.bytes(lvl.counters.data(),
                         lvl.counters.size() * sizeof(std::uint32_t))) {
                return false;
            }
        }
        return true;
    }

    [[nodiscard]] std::size_t level_count() const noexcept {
        return levels_.size();
    }
    [[nodiscard]] std::size_t level_width(std::size_t i) const {
        return levels_.at(i).counters.size();
    }
    [[nodiscard]] std::uint32_t level_max(std::size_t i) const {
        return levels_.at(i).max;
    }

    [[nodiscard]] std::size_t memory_bytes() const noexcept {
        std::size_t bits = 0;
        for (const auto& lvl : levels_) {
            unsigned width_bits = 32;
            if (lvl.max == 0xFFu) width_bits = 8;
            else if (lvl.max == 0xFFFFu) width_bits = 16;
            bits += lvl.counters.size() * width_bits;
        }
        return bits / 8;
    }

  private:
    struct Level {
        std::uint32_t max = 0;
        std::vector<std::uint32_t> counters;
    };

    [[nodiscard]] std::size_t slot(std::size_t level, const Key& k) const {
        return reduce(digest64(k, seed_ + level * 0x517CC1B7ULL),
                      levels_[level].counters.size());
    }

    std::uint64_t seed_;
    std::vector<Level> levels_;
};

}  // namespace p4lru::sketch
