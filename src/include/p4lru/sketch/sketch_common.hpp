// Shared helpers for the sketch substrates.
#pragma once

#include <concepts>
#include <cstdint>
#include <span>
#include <type_traits>

#include "p4lru/common/hash.hpp"
#include "p4lru/common/types.hpp"

namespace p4lru::sketch {

/// Seeded 64-bit digest for any supported key type. FlowKeys hash their
/// packed 13-byte layout; integral keys go through a salted mixer. Distinct
/// seeds yield (empirically) independent hash functions, as required by the
/// CM/CU/Tower error analyses.
template <typename Key>
[[nodiscard]] std::uint64_t digest64(const Key& k, std::uint64_t seed) {
    if constexpr (std::is_same_v<Key, FlowKey>) {
        const auto b = k.bytes();
        return hash::xxhash64(std::span<const std::uint8_t>(b.data(), b.size()),
                              seed);
    } else {
        static_assert(std::integral<Key>, "digest64: unsupported key type");
        return hash::mix64(static_cast<std::uint64_t>(k) ^
                           hash::mix64(seed ^ 0x5EEDULL));
    }
}

/// Reduce a digest onto [0, width).
[[nodiscard]] inline std::size_t reduce(std::uint64_t digest,
                                        std::size_t width) noexcept {
    return static_cast<std::size_t>(
        (static_cast<unsigned __int128>(digest) * width) >> 64);
}

}  // namespace p4lru::sketch
