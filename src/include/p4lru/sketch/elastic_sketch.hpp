// Elastic sketch (Yang et al., SIGCOMM 2018): a heavy part of vote-guarded
// buckets that pins elephant flows, backed by a light part (CM row of 8-bit
// counters) absorbing the evicted mouse traffic. Point queries combine both.
//
// LruMon's comparative experiments use Elastic's replacement rule as a cache
// policy (cache::ElasticPolicy); this full sketch exists as the measurement
// substrate and for the filter-ablation bench.
#pragma once

#include <cstdint>
#include <limits>
#include <stdexcept>
#include <vector>

#include "p4lru/sketch/sketch_common.hpp"

namespace p4lru::sketch {

template <typename Key>
class ElasticSketch {
  public:
    /// \param heavy_buckets number of heavy-part buckets
    /// \param light_width   number of 8-bit light-part counters
    /// \param lambda        eviction threshold (negative >= lambda * positive)
    ElasticSketch(std::size_t heavy_buckets, std::size_t light_width,
                  std::uint64_t seed, std::uint32_t lambda = 8)
        : heavy_(heavy_buckets), light_(light_width, 0), seed_(seed),
          lambda_(lambda) {
        if (heavy_buckets == 0 || light_width == 0) {
            throw std::invalid_argument("ElasticSketch: zero dimension");
        }
        if (lambda == 0) throw std::invalid_argument("ElasticSketch: lambda 0");
    }

    void add(const Key& k, std::uint32_t delta = 1) {
        Bucket& b = heavy_[reduce(digest64(k, seed_), heavy_.size())];
        if (b.occupied && b.key == k) {
            b.positive += delta;
            return;
        }
        if (!b.occupied) {
            b = {true, false, k, delta, 0};
            return;
        }
        b.negative += delta;
        if (b.negative >= lambda_ * b.positive) {
            // Evict the resident into the light part; newcomer takes over
            // with the "flag" marking that its early traffic may sit in the
            // light part too.
            light_add(b.key, b.positive);
            b = {true, true, k, delta, 0};
        } else {
            light_add(k, delta);
        }
    }

    /// Point query; can both over- and under-estimate slightly, as in the
    /// original design (heavy hits are near-exact).
    [[nodiscard]] std::uint64_t estimate(const Key& k) const {
        const Bucket& b = heavy_[reduce(digest64(k, seed_), heavy_.size())];
        std::uint64_t est = 0;
        if (b.occupied && b.key == k) {
            est += b.positive;
            if (!b.flagged) return est;  // never touched the light part
        }
        return est + light_estimate(k);
    }

    /// True if k currently owns a heavy bucket (the "cached" notion used by
    /// frequency-based data plane caches).
    [[nodiscard]] bool heavy_hit(const Key& k) const {
        const Bucket& b = heavy_[reduce(digest64(k, seed_), heavy_.size())];
        return b.occupied && b.key == k;
    }

    [[nodiscard]] std::size_t heavy_buckets() const noexcept {
        return heavy_.size();
    }
    [[nodiscard]] std::size_t memory_bytes() const noexcept {
        return heavy_.size() * sizeof(Bucket) + light_.size();
    }

  private:
    struct Bucket {
        bool occupied = false;
        bool flagged = false;  ///< resident may have mass in the light part
        Key key{};
        std::uint32_t positive = 0;
        std::uint32_t negative = 0;
    };

    void light_add(const Key& k, std::uint32_t delta) {
        std::uint8_t& c = light_[reduce(digest64(k, seed_ ^ 0xE1A5ULL),
                                        light_.size())];
        const std::uint32_t sum = std::uint32_t{c} + delta;
        c = sum >= 0xFFu ? std::uint8_t{0xFF} : static_cast<std::uint8_t>(sum);
    }

    [[nodiscard]] std::uint64_t light_estimate(const Key& k) const {
        return light_[reduce(digest64(k, seed_ ^ 0xE1A5ULL), light_.size())];
    }

    std::vector<Bucket> heavy_;
    std::vector<std::uint8_t> light_;
    std::uint64_t seed_;
    std::uint32_t lambda_;
};

}  // namespace p4lru::sketch
