// CocoSketch (Zhang et al., SIGCOMM 2021): per-bucket (key, count) pairs
// with probabilistic replacement — on a collision the newcomer captures the
// bucket with probability delta/count, keeping every flow's estimate
// unbiased. We implement the d-array variant with the smallest-count update.
#pragma once

#include <cstdint>
#include <limits>
#include <stdexcept>
#include <vector>

#include "p4lru/common/random.hpp"
#include "p4lru/sketch/sketch_common.hpp"

namespace p4lru::sketch {

template <typename Key>
class CocoSketch {
  public:
    CocoSketch(std::size_t width, std::size_t depth, std::uint64_t seed)
        : width_(width), depth_(depth), seed_(seed),
          rows_(depth, std::vector<Bucket>(width)),
          rng_(seed ^ 0xC0C0C0C0ULL) {
        if (width == 0 || depth == 0) {
            throw std::invalid_argument("CocoSketch: zero dimension");
        }
    }

    void add(const Key& k, std::uint64_t delta = 1) {
        // Find the minimal-count bucket among the key's d candidates; if the
        // key already owns one of them, update that one instead.
        std::size_t best_d = 0;
        std::size_t best_w = 0;
        std::uint64_t best_count = std::numeric_limits<std::uint64_t>::max();
        for (std::size_t d = 0; d < depth_; ++d) {
            const std::size_t w = slot(d, k);
            Bucket& b = rows_[d][w];
            if (b.occupied && b.key == k) {
                b.count += delta;
                return;
            }
            if (b.count < best_count) {
                best_count = b.count;
                best_d = d;
                best_w = w;
            }
        }
        Bucket& b = rows_[best_d][best_w];
        b.count += delta;
        if (!b.occupied ||
            rng_.chance(static_cast<double>(delta) /
                        static_cast<double>(b.count))) {
            b.occupied = true;
            b.key = k;
        }
    }

    /// Estimate: count of the bucket the key owns; 0 if it owns none (the
    /// sketch only tracks keys currently resident — per-key unbiasedness is
    /// over the random replacement).
    [[nodiscard]] std::uint64_t estimate(const Key& k) const {
        for (std::size_t d = 0; d < depth_; ++d) {
            const Bucket& b = rows_[d][slot(d, k)];
            if (b.occupied && b.key == k) return b.count;
        }
        return 0;
    }

    [[nodiscard]] bool resident(const Key& k) const {
        for (std::size_t d = 0; d < depth_; ++d) {
            const Bucket& b = rows_[d][slot(d, k)];
            if (b.occupied && b.key == k) return true;
        }
        return false;
    }

    [[nodiscard]] std::size_t memory_bytes() const noexcept {
        return width_ * depth_ * sizeof(Bucket);
    }

  private:
    struct Bucket {
        bool occupied = false;
        Key key{};
        std::uint64_t count = 0;
    };

    [[nodiscard]] std::size_t slot(std::size_t d, const Key& k) const {
        return reduce(digest64(k, seed_ + d * 0x2545F491ULL), width_);
    }

    std::size_t width_;
    std::size_t depth_;
    std::uint64_t seed_;
    std::vector<std::vector<Bucket>> rows_;
    rng::Xoshiro256 rng_;
};

}  // namespace p4lru::sketch
