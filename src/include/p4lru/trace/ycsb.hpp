// YCSB-like workload generator for the LruIndex evaluation.
//
// The paper drives LruIndex with YCSB transactions whose keys follow a Zipf
// distribution with skew alpha = 0.9. We reproduce that: a key space of N
// items, scrambled-Zipfian key chooser, and a configurable read/update mix
// (the paper's experiment is read-dominant; default is 100% reads).
#pragma once

#include <cstdint>
#include <vector>

#include "p4lru/common/random.hpp"
#include "p4lru/common/zipf.hpp"

namespace p4lru::trace {

enum class OpType : std::uint8_t { kRead, kUpdate };

struct YcsbOp {
    OpType type = OpType::kRead;
    std::uint64_t key = 0;
};

struct YcsbConfig {
    std::uint64_t seed = 7;
    std::uint64_t items = 1'000'000;  ///< database size (paper: 1e6)
    double zipf_alpha = 0.9;          ///< paper's skew
    double read_fraction = 1.0;       ///< fraction of reads
};

/// Streaming generator: draws one operation at a time, deterministic in the
/// seed. Also materializes whole transaction sets for replay-style benches.
class YcsbWorkload {
  public:
    explicit YcsbWorkload(const YcsbConfig& cfg);

    [[nodiscard]] YcsbOp next();

    [[nodiscard]] std::vector<YcsbOp> generate(std::size_t count);

    [[nodiscard]] const YcsbConfig& config() const noexcept { return cfg_; }

  private:
    YcsbConfig cfg_;
    rng::ScrambledZipf chooser_;
    rng::Xoshiro256 rng_;
};

}  // namespace p4lru::trace
