// Streaming bounded-memory trace ingestion (DESIGN.md §14).
//
// Every replay path used to materialize the whole trace as a
// std::vector<PacketRecord> before the first op ran, capping trace size at
// available RAM.  TraceSource replaces the full span with a pull-based
// batch contract over the P4LRUTRC on-disk format (trace_io.hpp), so the
// engine's resident set is O(batch) — or, for the background-reader source,
// O(chunk x queue depth) — regardless of trace length.
//
// Contract:
//   * next_batch(max) returns exactly min(max, size() - tell()) records
//     (max is clamped to kMaxBatchRecords first); an empty span means end
//     of stream.  The span stays valid until the next next_batch()/seek()
//     call and is never mutated by the source.  Errors (rot discovered
//     mid-stream, a file that shrank under the reader) surface as a typed
//     Status at the batch boundary — never an exception, never a crash —
//     and are sticky: every later next_batch() returns the same Status.
//   * seek(i) repositions the stream so the next batch starts at record i
//     (byte offset kTraceHeaderBytes + i * kTraceRecordBytes).  Checkpoint
//     cursors are op-index-based, so kill-and-resume seeks instead of
//     re-reading the prefix; a seek also clears a sticky error.
//   * size() is the total record count from the validated header; tell()
//     is the index of the next record next_batch() would return.
//
// All three implementations validate the header identically to
// read_trace_checked (shared validate_trace_header), so a corrupt count
// field cannot drive a multi-gigabyte reserve — and the same cap applies
// per-chunk in ChunkedFileSource: no single allocation exceeds the
// configured chunk, whatever the header claims.
//
// Implementations:
//   * VectorSource — zero-change wrapper over an in-memory vector (or a
//     borrowed span); the migration default and the equivalence oracle.
//   * MmapSource — maps the file once (madvise(SEQUENTIAL) on POSIX; plain
//     buffered reads elsewhere) and decodes batches straight from the
//     mapping: no read syscalls, no double buffering.  The file shrinking
//     while mapped is detected by re-checking the on-disk size before each
//     batch decode, returning kTruncated instead of dying on SIGBUS.
//   * ChunkedFileSource — a background reader thread streams fixed-size
//     chunks through a bounded SPSC queue (double-buffered by default), so
//     decode and replay overlap and peak memory is chunk x queue depth.
//     fault::FaultPlan's I/O events (short_read / eintr_read / slow_reader)
//     inject into the reader; obs counters (trace_bytes_read,
//     trace_chunks_queued, trace_reader_stalls, ...) expose its health.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "p4lru/common/types.hpp"
#include "p4lru/fault/fault_plan.hpp"
#include "p4lru/fault/status.hpp"
#include "p4lru/obs/metrics.hpp"
#include "p4lru/replay/spsc_queue.hpp"
#include "p4lru/trace/trace_io.hpp"

namespace p4lru::trace {

/// Upper bound on the records any single next_batch() call hands out (and
/// therefore on the decode buffer behind it): the whole-file reader's
/// reserve cap, applied per batch.  16 MiB of PacketRecords.
inline constexpr std::size_t kMaxBatchRecords =
    (16u << 20) / sizeof(PacketRecord);

/// Pull-based record stream over a packet trace (contract in the file
/// header).
class TraceSource {
  public:
    virtual ~TraceSource() = default;

    /// Exactly min(max, size() - tell()) records (after clamping max to
    /// kMaxBatchRecords); empty span = end of stream.  Span valid until the
    /// next next_batch()/seek().
    [[nodiscard]] virtual Expected<std::span<const PacketRecord>> next_batch(
        std::size_t max) = 0;

    /// Reposition so the next batch starts at record `record_index`
    /// (kInvalidArgument past size()).  Clears a sticky error.
    [[nodiscard]] virtual Status seek(std::uint64_t record_index) = 0;

    [[nodiscard]] virtual std::uint64_t size() const = 0;
    [[nodiscard]] virtual std::uint64_t tell() const = 0;
    [[nodiscard]] virtual const char* name() const = 0;
};

/// Zero-change wrapper over today's in-memory vector: batches are subspans,
/// no copies, infallible.  Owns the records (moved in) or borrows a span
/// whose lifetime the caller guarantees.
class VectorSource final : public TraceSource {
  public:
    explicit VectorSource(std::vector<PacketRecord> records)
        : owned_(std::move(records)), view_(owned_) {}
    explicit VectorSource(std::span<const PacketRecord> records)
        : view_(records) {}

    [[nodiscard]] Expected<std::span<const PacketRecord>> next_batch(
        std::size_t max) override {
        const std::size_t n = static_cast<std::size_t>(
            std::min<std::uint64_t>(std::min(max, kMaxBatchRecords),
                                    view_.size() - cursor_));
        auto out = view_.subspan(static_cast<std::size_t>(cursor_), n);
        cursor_ += n;
        return Expected<std::span<const PacketRecord>>(out);
    }

    [[nodiscard]] Status seek(std::uint64_t record_index) override {
        if (record_index > view_.size()) {
            return Status(ErrorCode::kInvalidArgument,
                          "seek to record " + std::to_string(record_index) +
                              " past trace of " +
                              std::to_string(view_.size()));
        }
        cursor_ = record_index;
        return Status::ok();
    }

    [[nodiscard]] std::uint64_t size() const override { return view_.size(); }
    [[nodiscard]] std::uint64_t tell() const override { return cursor_; }
    [[nodiscard]] const char* name() const override { return "vector"; }

  private:
    std::vector<PacketRecord> owned_;
    std::span<const PacketRecord> view_;
    std::uint64_t cursor_ = 0;
};

struct MmapSourceOptions {
    /// Live metrics sink; null disables instrumentation (counter
    /// trace_bytes_read).
    obs::Registry* metrics = nullptr;
};

/// mmap-backed source: the file is mapped once, advised sequential, and
/// batches are decoded straight from the mapping into a reusable buffer
/// (the on-disk record is 28 packed bytes, the in-memory PacketRecord 32
/// aligned ones, so a zero-copy reinterpret is impossible — but the input
/// side is zero-copy: no read syscalls after open).  Off POSIX the mapping
/// degrades to plain buffered reads with identical semantics.
class MmapSource final : public TraceSource {
  public:
    [[nodiscard]] static Expected<std::unique_ptr<MmapSource>> open(
        const std::string& path, const MmapSourceOptions& opts = {});

    ~MmapSource() override;
    MmapSource(const MmapSource&) = delete;
    MmapSource& operator=(const MmapSource&) = delete;

    [[nodiscard]] Expected<std::span<const PacketRecord>> next_batch(
        std::size_t max) override;
    [[nodiscard]] Status seek(std::uint64_t record_index) override;
    [[nodiscard]] std::uint64_t size() const override { return count_; }
    [[nodiscard]] std::uint64_t tell() const override { return cursor_; }
    [[nodiscard]] const char* name() const override { return "mmap"; }

  private:
    MmapSource() = default;

    std::string path_;
    std::uint64_t count_ = 0;
    std::uint64_t cursor_ = 0;
    Status error_ = Status::ok();       ///< sticky mid-stream failure
    std::vector<PacketRecord> batch_;   ///< reusable decode buffer
    const std::uint8_t* map_ = nullptr; ///< mapped body (POSIX path)
    std::uint64_t map_len_ = 0;
    int fd_ = -1;                       ///< kept open for shrink detection
    std::FILE* file_ = nullptr;         ///< non-POSIX fallback
    obs::Counter* obs_bytes_ = nullptr;
};

struct ChunkedSourceOptions {
    /// Records per reader chunk; the per-chunk allocation cap.  Clamped to
    /// [1, kMaxBatchRecords] and to the file's record count.
    std::size_t chunk_records = 1u << 16;
    /// Bounded chunk-queue depth (double buffering by default).  Peak
    /// resident trace bytes ~= chunk_records x (queue_chunks + 2) x
    /// sizeof(PacketRecord) — one chunk in flight with the reader, the
    /// queue, and the chunk the consumer is draining.
    std::size_t queue_chunks = 2;
    /// Live metrics sink; null disables instrumentation.  Counters:
    /// trace_bytes_read, trace_chunks_queued, trace_reader_stalls (consumer
    /// found the queue empty), trace_reader_eintr_retries,
    /// trace_reader_short_reads.
    obs::Registry* metrics = nullptr;
    /// I/O fault injection (FaultPlan::short_read / eintr_read /
    /// slow_reader), consulted per chunk index since the last seek.  The
    /// plan must outlive the source.  Null = no faults.
    const fault::FaultPlan* faults = nullptr;
};

/// Double-buffered background-thread reader: a dedicated thread freads
/// fixed-size chunks, decodes them, and hands them through a bounded SPSC
/// queue; next_batch() serves subspans of the chunk it is draining and
/// stitches across chunk boundaries when a batch straddles two.  All
/// errors — including the file shrinking mid-read — surface as typed
/// Status at the batch boundary.
class ChunkedFileSource final : public TraceSource {
  public:
    [[nodiscard]] static Expected<std::unique_ptr<ChunkedFileSource>> open(
        const std::string& path, const ChunkedSourceOptions& opts = {});

    ~ChunkedFileSource() override;
    ChunkedFileSource(const ChunkedFileSource&) = delete;
    ChunkedFileSource& operator=(const ChunkedFileSource&) = delete;

    [[nodiscard]] Expected<std::span<const PacketRecord>> next_batch(
        std::size_t max) override;
    [[nodiscard]] Status seek(std::uint64_t record_index) override;
    [[nodiscard]] std::uint64_t size() const override { return count_; }
    [[nodiscard]] std::uint64_t tell() const override { return cursor_; }
    [[nodiscard]] const char* name() const override { return "chunked"; }

    /// Effective chunk size after clamping (tests size their queues by it).
    [[nodiscard]] std::size_t chunk_records() const noexcept {
        return chunk_records_;
    }

  private:
    /// One reader->consumer handoff: a decoded chunk, a terminal error, or
    /// the end-of-stream sentinel (`last` with empty records).
    struct Chunk {
        std::vector<PacketRecord> recs;
        Status st = Status::ok();
        bool last = false;
    };

    ChunkedFileSource() = default;

    void start_reader(std::uint64_t from_record);
    void stop_reader();
    void reader_main(const std::stop_token& tok, std::uint64_t rec);
    bool push_chunk(Chunk&& c, const std::stop_token& tok);
    void pop_chunk();

    std::string path_;
    std::uint64_t count_ = 0;
    std::uint64_t cursor_ = 0;
    std::size_t chunk_records_ = 0;
    std::FILE* file_ = nullptr;  ///< reader-thread-owned while running
    const fault::FaultPlan* faults_ = nullptr;

    std::unique_ptr<replay::SpscQueue<Chunk>> queue_;
    std::jthread reader_;

    // Consumer-side staging.
    Chunk current_;
    std::size_t current_off_ = 0;
    std::vector<PacketRecord> stitch_;  ///< batches straddling chunks
    bool done_ = false;
    Status error_ = Status::ok();  ///< sticky mid-stream failure

    obs::Counter* obs_bytes_ = nullptr;
    obs::Counter* obs_chunks_ = nullptr;
    obs::Counter* obs_stalls_ = nullptr;
    obs::Counter* obs_eintr_ = nullptr;
    obs::Counter* obs_short_ = nullptr;
};

}  // namespace p4lru::trace
