// Binary trace serialization: lets benches generate a trace once and replay
// it across policy sweeps, and lets users feed their own converted traces.
//
// Format (little-endian):
//   magic "P4LRUTRC" (8 bytes) | version u32 | count u64 |
//   count x { ts u64 | src_ip u32 | dst_ip u32 | src_port u16 | dst_port u16
//             | proto u8 | pad u8[3] | len u32 }
//
// Reading is hardened against rotten files: read_trace_checked returns a
// typed Status (kIoError / kCorrupt / kTruncated) carrying the byte offset
// where parsing failed, and cross-checks the header's record count against
// the file size before allocating — a corrupt count field cannot drive a
// multi-gigabyte reserve.  read_trace is the throwing convenience wrapper.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "p4lru/common/types.hpp"
#include "p4lru/fault/status.hpp"

namespace p4lru::trace {

/// On-disk geometry of the P4LRUTRC format, shared by the whole-file reader
/// below and the streaming sources (trace_source.hpp): record `i` lives at
/// byte offset kTraceHeaderBytes + i * kTraceRecordBytes.
inline constexpr std::size_t kTraceRecordBytes = 8 + 4 + 4 + 2 + 2 + 1 + 3 + 4;
inline constexpr std::size_t kTraceHeaderBytes = 8 + 4 + 8;

/// Decode one on-disk record (kTraceRecordBytes bytes, little-endian) into
/// the in-memory PacketRecord.  The layouts differ (PacketRecord carries
/// alignment padding), so every reader decodes rather than reinterprets.
[[nodiscard]] PacketRecord decode_trace_record(const std::uint8_t* buf);

/// Encode `r` into `buf` (kTraceRecordBytes bytes), the inverse of
/// decode_trace_record.
void encode_trace_record(const PacketRecord& r, std::uint8_t* buf);

/// Validated header facts: how many records the file holds and where the
/// body starts.
struct TraceHeaderInfo {
    std::uint64_t count = 0;      ///< records promised (and size-verified)
    std::uint64_t file_size = 0;  ///< bytes on disk at validation time
};

/// Validate the 20-byte header `hdr` of a trace file of `file_size` bytes:
/// magic, version, and the count-vs-file-size cross-check that stops a
/// corrupt count field from driving a multi-gigabyte reserve.  Shared by
/// read_trace_checked and every TraceSource open path, so all readers
/// reject rot identically.
[[nodiscard]] Expected<TraceHeaderInfo> validate_trace_header(
    const std::uint8_t* hdr, std::uint64_t file_size,
    const std::string& path);

/// Write the trace to `path`. Throws std::runtime_error on IO failure.
void write_trace(const std::string& path,
                 const std::vector<PacketRecord>& records);

/// Read a trace from `path`; the typed-error path.  On failure the Status
/// names the cause and, for corruption/truncation, the byte offset at which
/// the file stopped making sense (Status::offset).
[[nodiscard]] Expected<std::vector<PacketRecord>> read_trace_checked(
    const std::string& path);

/// Read a trace from `path`. Throws std::runtime_error (message includes
/// the byte offset) on IO failure, bad magic, unsupported version, a record
/// count that exceeds the file size, or a truncated body.
[[nodiscard]] std::vector<PacketRecord> read_trace(const std::string& path);

}  // namespace p4lru::trace
