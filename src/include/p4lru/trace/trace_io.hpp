// Binary trace serialization: lets benches generate a trace once and replay
// it across policy sweeps, and lets users feed their own converted traces.
//
// Format (little-endian):
//   magic "P4LRUTRC" (8 bytes) | version u32 | count u64 |
//   count x { ts u64 | src_ip u32 | dst_ip u32 | src_port u16 | dst_port u16
//             | proto u8 | pad u8[3] | len u32 }
//
// Reading is hardened against rotten files: read_trace_checked returns a
// typed Status (kIoError / kCorrupt / kTruncated) carrying the byte offset
// where parsing failed, and cross-checks the header's record count against
// the file size before allocating — a corrupt count field cannot drive a
// multi-gigabyte reserve.  read_trace is the throwing convenience wrapper.
#pragma once

#include <string>
#include <vector>

#include "p4lru/common/types.hpp"
#include "p4lru/fault/status.hpp"

namespace p4lru::trace {

/// Write the trace to `path`. Throws std::runtime_error on IO failure.
void write_trace(const std::string& path,
                 const std::vector<PacketRecord>& records);

/// Read a trace from `path`; the typed-error path.  On failure the Status
/// names the cause and, for corruption/truncation, the byte offset at which
/// the file stopped making sense (Status::offset).
[[nodiscard]] Expected<std::vector<PacketRecord>> read_trace_checked(
    const std::string& path);

/// Read a trace from `path`. Throws std::runtime_error (message includes
/// the byte offset) on IO failure, bad magic, unsupported version, a record
/// count that exceeds the file size, or a truncated body.
[[nodiscard]] std::vector<PacketRecord> read_trace(const std::string& path);

}  // namespace p4lru::trace
