// Binary trace serialization: lets benches generate a trace once and replay
// it across policy sweeps, and lets users feed their own converted traces.
//
// Format (little-endian):
//   magic "P4LRUTRC" (8 bytes) | version u32 | count u64 |
//   count x { ts u64 | src_ip u32 | dst_ip u32 | src_port u16 | dst_port u16
//             | proto u8 | pad u8[3] | len u32 }
#pragma once

#include <string>
#include <vector>

#include "p4lru/common/types.hpp"

namespace p4lru::trace {

/// Write the trace to `path`. Throws std::runtime_error on IO failure.
void write_trace(const std::string& path,
                 const std::vector<PacketRecord>& records);

/// Read a trace from `path`. Throws std::runtime_error on IO failure, bad
/// magic, unsupported version, or a truncated body.
[[nodiscard]] std::vector<PacketRecord> read_trace(const std::string& path);

}  // namespace p4lru::trace
