// Synthetic CAIDA-like packet traces (substitution for the CAIDA 2018
// anonymized traces used by the paper; see DESIGN.md).
//
// The generator reproduces the statistical properties the evaluation depends
// on: Pareto/Zipf heavy-tailed flow sizes (most flows are a few packets, a
// few flows are huge), bursty within-flow packet arrivals (temporal locality
// — what recency-based policies exploit), realistic packet-length mix, and
// the paper's CAIDA_n construction: the trace is assembled from n
// back-to-back segments with *independent* flow populations, so total flow
// count and maximum flow concurrency grow with n while duration and packet
// count stay fixed.
#pragma once

#include <cstdint>
#include <vector>

#include "p4lru/common/random.hpp"
#include "p4lru/common/types.hpp"

namespace p4lru::trace {

/// Parameters of the synthetic trace. Defaults give a laptop-sized analogue
/// of the paper's 2.6e7-packet traces (scaled down ~10x).
struct TraceConfig {
    std::uint64_t seed = 1;
    std::size_t total_packets = 2'000'000;  ///< target packet count
    std::size_t segments = 1;               ///< the "n" of CAIDA_n
    TimeNs duration = kSecond;              ///< total duration (paper: 1 s)
    double pareto_alpha = 1.05;             ///< flow-size tail exponent
    double pareto_xm = 2.5;                 ///< flow-size scale (min size)
    /// Cap on a single flow's packets, divided across segments: shorter
    /// segments truncate elephants, as cutting a real trace does.
    std::size_t flow_size_cap = 200'000;
    double burst_mean = 4.0;                ///< mean packets per burst
    TimeNs intra_burst_gap = 2 * kMicrosecond;
    TimeNs mean_pacing = 400 * kMicrosecond;  ///< flow lifetime per packet
    /// Destination hosts are drawn from a Zipf-popular server pool shared by
    /// all segments (flows hit the same popular services across minutes).
    /// 0 = auto (total_packets / 64).
    std::size_t dst_hosts = 0;
    double dst_zipf_alpha = 1.0;
};

/// Generate the full packet trace, sorted by timestamp.
[[nodiscard]] std::vector<PacketRecord> generate_trace(const TraceConfig& cfg);

/// Summary statistics over a trace (used to validate the generator and to
/// report the concurrency axis of Figures 9 and 11).
struct TraceStats {
    std::size_t packets = 0;
    std::size_t flows = 0;              ///< distinct 5-tuples
    std::size_t max_concurrent = 0;     ///< peak flows active in any window
    std::uint64_t total_bytes = 0;
    TimeNs duration = 0;
};

/// Compute stats. A flow is "active" from its first packet until
/// `idle_timeout` after its last packet; max_concurrent is the peak number
/// of simultaneously active flows (the paper's concurrency notion).
[[nodiscard]] TraceStats compute_stats(const std::vector<PacketRecord>& trace,
                                       TimeNs idle_timeout = 20 *
                                                             kMillisecond);

}  // namespace p4lru::trace
