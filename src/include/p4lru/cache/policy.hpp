// Uniform cache-policy interface and every replacement policy evaluated in
// the paper's comparative experiments (Figures 12-14), plus two extensions.
//
//   P4lruArrayPolicy<N>  - parallel-connected P4LRU_N (N=1 is the paper's
//                          "Baseline" hash-table cache, N=3 the contribution)
//   TimeoutPolicy        - BeauCoup-style last-access-timestamp replacement
//   ElasticPolicy        - Elastic-sketch vote-based replacement
//   CocoPolicy           - CocoSketch probabilistic replacement
//   IdealLruPolicy       - the unconstrained strict-LRU upper bound
//   LfuPolicy            - per-bucket frequency aging (extension)
//   ClockPolicy          - CLOCK second-chance approximation (extension,
//                          what MemC3 uses; its scanning hand is exactly
//                          what a pipeline cannot provide)
//
// Two entry points mirror the two ways packets touch a data plane cache:
//   access(k, v, now) - read path: a hit keeps the stored value;
//   fill(k, v, now)   - write path: a hit merges v in (Merge template
//                       parameter: ReplaceMerge for refills, AddMerge for
//                       LruMon byte counters).
// Both insert on a miss, per the policy's replacement rule.
//
// All policies expose entry-count-normalized capacity so the comparative
// benches sweep them at equal memory.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "p4lru/common/hash.hpp"
#include "p4lru/common/random.hpp"
#include "p4lru/common/types.hpp"
#include "p4lru/core/parallel_array.hpp"
#include "p4lru/core/p4lru.hpp"
#include "p4lru/core/p4lru4.hpp"

namespace p4lru::cache {

/// Result of one access (lookup-and-update) against a policy.
template <typename Key, typename Value>
struct Access {
    bool hit = false;       ///< key was cached before the access
    bool inserted = false;  ///< key is cached after the access
    bool evicted = false;   ///< a different key was displaced
    Key evicted_key{};
    Value evicted_value{};
    Value value{};          ///< value associated with k after the access
};

/// Type-erased replacement policy; the comparative benches drive every
/// competitor through this interface.
template <typename Key, typename Value>
class ReplacementPolicy {
  public:
    virtual ~ReplacementPolicy() = default;

    /// Read-path packet for key k; v is only used if the policy inserts.
    virtual Access<Key, Value> access(const Key& k, const Value& v,
                                      TimeNs now) = 0;

    /// Write-path packet: a hit merges v into the stored value.
    virtual Access<Key, Value> fill(const Key& k, const Value& v,
                                    TimeNs now) = 0;

    /// Batched write path: apply ops strictly in span order, invoking
    /// sink(access) once per op.  Semantically identical to calling fill()
    /// per op — the default does exactly that — but array-backed policies
    /// override it with the cache's batched path (buckets hashed a chunk
    /// ahead, units prefetched a fixed distance ahead), so batch callers
    /// get the memory-level parallelism without a behaviour change.
    virtual void fill_batch(
        std::span<const core::CacheOp<Key, Value>> ops, TimeNs now,
        const std::function<void(const Access<Key, Value>&)>& sink) {
        for (const auto& op : ops) sink(fill(op.key, op.value, now));
    }

    /// Batched read path; the per-op equivalent of access().
    virtual void access_batch(
        std::span<const core::CacheOp<Key, Value>> ops, TimeNs now,
        const std::function<void(const Access<Key, Value>&)>& sink) {
        for (const auto& op : ops) sink(access(op.key, op.value, now));
    }

    /// Non-mutating lookup.
    [[nodiscard]] virtual std::optional<Value> peek(const Key& k) const = 0;

    /// Enumerate every cached entry (teardown flush in LruMon, tests).
    virtual void for_each(
        const std::function<void(const Key&, const Value&)>& fn) const = 0;

    /// Total key-value entries the policy can hold (memory normalization).
    [[nodiscard]] virtual std::size_t capacity_entries() const = 0;

    [[nodiscard]] virtual std::string name() const = 0;

    /// Serialize the policy's full mutable state into `out` (appending),
    /// for the checkpoint snapshot plane of the system replay targets.
    /// Returns false when the policy does not support snapshotting (the
    /// default); array-backed policies save their storage plane image.
    [[nodiscard]] virtual bool save_state(
        std::vector<std::byte>& /*out*/) const {
        return false;
    }

    /// Restore state written by save_state() on an identically-configured
    /// policy; false when unsupported or the image does not fit.
    [[nodiscard]] virtual bool load_state(std::span<const std::byte> /*in*/) {
        return false;
    }
};

/// Parallel-connected P4LRU_N array: capacity_entries = units * N.
template <typename Key, typename Value, std::size_t N,
          typename Merge = core::ReplaceMerge>
class P4lruArrayPolicy final : public ReplacementPolicy<Key, Value> {
  public:
    P4lruArrayPolicy(std::size_t total_entries, std::uint32_t seed)
        : array_(std::max<std::size_t>(1, total_entries / N), seed) {}

    Access<Key, Value> access(const Key& k, const Value& v,
                              TimeNs /*now*/) override {
        const std::size_t b = array_.bucket(k);
        return convert(b, k, array_.update_at(b, k, v, core::KeepMerge{}));
    }

    Access<Key, Value> fill(const Key& k, const Value& v,
                            TimeNs /*now*/) override {
        const std::size_t b = array_.bucket(k);
        return convert(b, k, array_.update_at(b, k, v, Merge{}));
    }

    void fill_batch(std::span<const core::CacheOp<Key, Value>> ops,
                    TimeNs /*now*/,
                    const std::function<void(const Access<Key, Value>&)>&
                        sink) override {
        array_.update_batch(
            ops,
            [&](std::size_t i, std::size_t b,
                const core::UpdateResult<Key, Value>& r) {
                sink(convert(b, ops[i].key, r));
            },
            Merge{});
    }

    void access_batch(std::span<const core::CacheOp<Key, Value>> ops,
                      TimeNs /*now*/,
                      const std::function<void(const Access<Key, Value>&)>&
                          sink) override {
        array_.update_batch(
            ops,
            [&](std::size_t i, std::size_t b,
                const core::UpdateResult<Key, Value>& r) {
                sink(convert(b, ops[i].key, r));
            },
            core::KeepMerge{});
    }

    std::optional<Value> peek(const Key& k) const override {
        return array_.find(k);
    }

    std::size_t capacity_entries() const override { return array_.capacity(); }

    std::string name() const override { return "P4LRU" + std::to_string(N); }

    void for_each(const std::function<void(const Key&, const Value&)>& fn)
        const override {
        for (std::size_t u = 0; u < array_.unit_count(); ++u) {
            const auto& unit = array_.unit(u);
            for (std::size_t i = 1; i <= unit.size(); ++i) {
                fn(unit.key_at(i), unit.value_at(i));
            }
        }
    }

    [[nodiscard]] const auto& array() const noexcept { return array_; }

    bool save_state(std::vector<std::byte>& out) const override {
        std::vector<std::byte> planes;
        array_.storage().save_planes(planes);
        out.insert(out.end(), planes.begin(), planes.end());
        return true;
    }

    bool load_state(std::span<const std::byte> in) override {
        return array_.storage().load_planes(in);
    }

  private:
    /// The bucket is computed once per access/fill and threaded through to
    /// the post-update readback, so each packet pays exactly one hash.
    Access<Key, Value> convert(std::size_t b, const Key& k,
                               const core::UpdateResult<Key, Value>& r) {
        Access<Key, Value> a;
        a.hit = r.hit;
        a.inserted = true;
        a.evicted = r.evicted;
        a.evicted_key = r.evicted_key;
        a.evicted_value = r.evicted_value;
        a.value = array_.find_at(b, k).value_or(Value{});
        return a;
    }

    core::ParallelCache<core::P4lru<Key, Value, N>, Key, Value> array_;
};

/// Parallel array over an arbitrary unit type (e.g. the encoded P4LRU4 of
/// Section 2.3.3). `Unit::capacity()` sizes the memory normalization.
template <typename Unit, typename Key, typename Value,
          typename Merge = core::ReplaceMerge>
class UnitArrayPolicy final : public ReplacementPolicy<Key, Value> {
  public:
    UnitArrayPolicy(std::size_t total_entries, std::uint32_t seed,
                    std::string name)
        : array_(std::max<std::size_t>(1, total_entries / Unit::capacity()),
                 seed),
          name_(std::move(name)) {}

    Access<Key, Value> access(const Key& k, const Value& v,
                              TimeNs /*now*/) override {
        const std::size_t b = array_.bucket(k);
        return convert(b, k, array_.update_at(b, k, v, core::KeepMerge{}));
    }

    Access<Key, Value> fill(const Key& k, const Value& v,
                            TimeNs /*now*/) override {
        const std::size_t b = array_.bucket(k);
        return convert(b, k, array_.update_at(b, k, v, Merge{}));
    }

    void fill_batch(std::span<const core::CacheOp<Key, Value>> ops,
                    TimeNs /*now*/,
                    const std::function<void(const Access<Key, Value>&)>&
                        sink) override {
        array_.update_batch(
            ops,
            [&](std::size_t i, std::size_t b,
                const core::UpdateResult<Key, Value>& r) {
                sink(convert(b, ops[i].key, r));
            },
            Merge{});
    }

    void access_batch(std::span<const core::CacheOp<Key, Value>> ops,
                      TimeNs /*now*/,
                      const std::function<void(const Access<Key, Value>&)>&
                          sink) override {
        array_.update_batch(
            ops,
            [&](std::size_t i, std::size_t b,
                const core::UpdateResult<Key, Value>& r) {
                sink(convert(b, ops[i].key, r));
            },
            core::KeepMerge{});
    }

    std::optional<Value> peek(const Key& k) const override {
        return array_.find(k);
    }

    std::size_t capacity_entries() const override {
        return array_.capacity();
    }
    std::string name() const override { return name_; }

    void for_each(const std::function<void(const Key&, const Value&)>& fn)
        const override {
        // Encoded units store keys in raw slots with Key{} as the empty
        // sentinel; find() resolves each value through the unit's state.
        for (std::size_t u = 0; u < array_.unit_count(); ++u) {
            const auto& unit = array_.unit(u);
            for (std::size_t i = 0; i < Unit::capacity(); ++i) {
                const Key& key = unit.raw_key(i);
                if (key == Key{}) continue;
                if (const auto value = unit.find(key)) fn(key, *value);
            }
        }
    }

    bool save_state(std::vector<std::byte>& out) const override {
        std::vector<std::byte> planes;
        array_.storage().save_planes(planes);
        out.insert(out.end(), planes.begin(), planes.end());
        return true;
    }

    bool load_state(std::span<const std::byte> in) override {
        return array_.storage().load_planes(in);
    }

  private:
    /// One hash per access/fill: the update's bucket is reused for the
    /// value readback.
    Access<Key, Value> convert(std::size_t b, const Key& k,
                               const core::UpdateResult<Key, Value>& r) {
        Access<Key, Value> a;
        a.hit = r.hit;
        a.inserted = true;
        a.evicted = r.evicted;
        a.evicted_key = r.evicted_key;
        a.evicted_value = r.evicted_value;
        a.value = array_.find_at(b, k).value_or(Value{});
        return a;
    }

    core::ParallelCache<Unit, Key, Value> array_;
    std::string name_;
};

/// Parallel-connected encoded P4LRU4 (the Section-2.3.3 construction).
template <typename Key, typename Value, typename Merge = core::ReplaceMerge>
using P4lru4ArrayPolicy =
    UnitArrayPolicy<core::P4lru4Encoded<Key, Value, Merge>, Key, Value,
                    Merge>;

/// Timeout policy: a hash table whose occupant is only replaced once its
/// last-access timestamp is older than `timeout`. The paper notes the
/// threshold needs careful tuning; the benches sweep it.
template <typename Key, typename Value, typename Merge = core::ReplaceMerge>
class TimeoutPolicy final : public ReplacementPolicy<Key, Value> {
  public:
    TimeoutPolicy(std::size_t total_entries, std::uint32_t seed,
                  TimeNs timeout)
        : buckets_(std::max<std::size_t>(1, total_entries)),
          hasher_(seed, buckets_.size()),
          timeout_(timeout) {}

    Access<Key, Value> access(const Key& k, const Value& v,
                              TimeNs now) override {
        return run(k, v, now, /*write_hit=*/false);
    }
    Access<Key, Value> fill(const Key& k, const Value& v,
                            TimeNs now) override {
        return run(k, v, now, /*write_hit=*/true);
    }

    std::optional<Value> peek(const Key& k) const override {
        const auto& b = buckets_[core::bucket_of(hasher_, k)];
        if (b.occupied && b.key == k) return b.value;
        return std::nullopt;
    }

    std::size_t capacity_entries() const override { return buckets_.size(); }
    std::string name() const override { return "Timeout"; }

    void for_each(const std::function<void(const Key&, const Value&)>& fn)
        const override {
        for (const auto& b : buckets_) {
            if (b.occupied) fn(b.key, b.value);
        }
    }


  private:
    Access<Key, Value> run(const Key& k, const Value& v, TimeNs now,
                           bool write_hit) {
        auto& b = buckets_[core::bucket_of(hasher_, k)];
        Access<Key, Value> a;
        if (b.occupied && b.key == k) {
            a.hit = true;
            a.inserted = true;
            if (write_hit) b.value = Merge{}(b.value, v);
            b.last = now;
            a.value = b.value;
            return a;
        }
        if (b.occupied && now - b.last <= timeout_) {
            return a;  // miss, occupant retained, newcomer dropped
        }
        if (b.occupied) {
            a.evicted = true;
            a.evicted_key = b.key;
            a.evicted_value = b.value;
        }
        b = {true, k, v, now};
        a.inserted = true;
        a.value = v;
        return a;
    }

    struct Bucket {
        bool occupied = false;
        Key key{};
        Value value{};
        TimeNs last = 0;
    };
    std::vector<Bucket> buckets_;
    hash::FlowHasher hasher_;
    TimeNs timeout_;
};

/// Elastic-sketch replacement: each bucket keeps the resident's positive
/// votes and the colliders' negative votes; the resident is ousted when
/// negative >= lambda * positive (lambda = 8 in the Elastic paper).
template <typename Key, typename Value, typename Merge = core::ReplaceMerge>
class ElasticPolicy final : public ReplacementPolicy<Key, Value> {
  public:
    ElasticPolicy(std::size_t total_entries, std::uint32_t seed,
                  std::uint32_t lambda = 8)
        : buckets_(std::max<std::size_t>(1, total_entries)),
          hasher_(seed, buckets_.size()),
          lambda_(lambda) {
        if (lambda == 0) throw std::invalid_argument("ElasticPolicy: lambda 0");
    }

    Access<Key, Value> access(const Key& k, const Value& v,
                              TimeNs now) override {
        return run(k, v, now, false);
    }
    Access<Key, Value> fill(const Key& k, const Value& v,
                            TimeNs now) override {
        return run(k, v, now, true);
    }

    std::optional<Value> peek(const Key& k) const override {
        const auto& b = buckets_[core::bucket_of(hasher_, k)];
        if (b.occupied && b.key == k) return b.value;
        return std::nullopt;
    }

    std::size_t capacity_entries() const override { return buckets_.size(); }
    std::string name() const override { return "Elastic"; }

    void for_each(const std::function<void(const Key&, const Value&)>& fn)
        const override {
        for (const auto& b : buckets_) {
            if (b.occupied) fn(b.key, b.value);
        }
    }


  private:
    Access<Key, Value> run(const Key& k, const Value& v, TimeNs /*now*/,
                           bool write_hit) {
        auto& b = buckets_[core::bucket_of(hasher_, k)];
        Access<Key, Value> a;
        if (b.occupied && b.key == k) {
            a.hit = true;
            a.inserted = true;
            if (write_hit) b.value = Merge{}(b.value, v);
            ++b.positive;
            a.value = b.value;
            return a;
        }
        if (!b.occupied) {
            b = {true, k, v, 1, 0};
            a.inserted = true;
            a.value = v;
            return a;
        }
        ++b.negative;
        if (b.negative >= lambda_ * b.positive) {
            a.evicted = true;
            a.evicted_key = b.key;
            a.evicted_value = b.value;
            b = {true, k, v, 1, 0};
            a.inserted = true;
            a.value = v;
        }
        return a;
    }

    struct Bucket {
        bool occupied = false;
        Key key{};
        Value value{};
        std::uint32_t positive = 0;
        std::uint32_t negative = 0;
    };
    std::vector<Bucket> buckets_;
    hash::FlowHasher hasher_;
    std::uint32_t lambda_;
};

/// CocoSketch replacement: on a collision the newcomer takes over with
/// probability 1/(count+1), keeping per-key estimates unbiased.
template <typename Key, typename Value, typename Merge = core::ReplaceMerge>
class CocoPolicy final : public ReplacementPolicy<Key, Value> {
  public:
    CocoPolicy(std::size_t total_entries, std::uint32_t seed)
        : buckets_(std::max<std::size_t>(1, total_entries)),
          hasher_(seed, buckets_.size()),
          rng_(0xC0C0ULL ^ seed) {}

    Access<Key, Value> access(const Key& k, const Value& v,
                              TimeNs now) override {
        return run(k, v, now, false);
    }
    Access<Key, Value> fill(const Key& k, const Value& v,
                            TimeNs now) override {
        return run(k, v, now, true);
    }

    std::optional<Value> peek(const Key& k) const override {
        const auto& b = buckets_[core::bucket_of(hasher_, k)];
        if (b.occupied && b.key == k) return b.value;
        return std::nullopt;
    }

    std::size_t capacity_entries() const override { return buckets_.size(); }
    std::string name() const override { return "Coco"; }

    void for_each(const std::function<void(const Key&, const Value&)>& fn)
        const override {
        for (const auto& b : buckets_) {
            if (b.occupied) fn(b.key, b.value);
        }
    }


  private:
    Access<Key, Value> run(const Key& k, const Value& v, TimeNs /*now*/,
                           bool write_hit) {
        auto& b = buckets_[core::bucket_of(hasher_, k)];
        Access<Key, Value> a;
        if (b.occupied && b.key == k) {
            a.hit = true;
            a.inserted = true;
            if (write_hit) b.value = Merge{}(b.value, v);
            ++b.count;
            a.value = b.value;
            return a;
        }
        if (!b.occupied) {
            b = {true, k, v, 1};
            a.inserted = true;
            a.value = v;
            return a;
        }
        ++b.count;
        if (rng_.chance(1.0 / static_cast<double>(b.count))) {
            a.evicted = true;
            a.evicted_key = b.key;
            a.evicted_value = b.value;
            b.key = k;
            b.value = v;
            a.inserted = true;
            a.value = v;
        }
        return a;
    }

    struct Bucket {
        bool occupied = false;
        Key key{};
        Value value{};
        std::uint64_t count = 0;
    };
    std::vector<Bucket> buckets_;
    hash::FlowHasher hasher_;
    rng::Xoshiro256 rng_;
};

/// The unconstrained strict LRU (doubly linked list + hash map, as in
/// Memcached): the upper bound every data-plane scheme approximates.
template <typename Key, typename Value, typename Merge = core::ReplaceMerge>
class IdealLruPolicy final : public ReplacementPolicy<Key, Value> {
  public:
    explicit IdealLruPolicy(std::size_t total_entries)
        : capacity_(std::max<std::size_t>(1, total_entries)) {}

    Access<Key, Value> access(const Key& k, const Value& v,
                              TimeNs now) override {
        return run(k, v, now, false);
    }
    Access<Key, Value> fill(const Key& k, const Value& v,
                            TimeNs now) override {
        return run(k, v, now, true);
    }

    std::optional<Value> peek(const Key& k) const override {
        if (auto it = index_.find(k); it != index_.end()) {
            return it->second->second;
        }
        return std::nullopt;
    }

    std::size_t capacity_entries() const override { return capacity_; }
    std::string name() const override { return "LRU_IDEAL"; }

    void for_each(const std::function<void(const Key&, const Value&)>& fn)
        const override {
        for (const auto& [k, v] : order_) fn(k, v);
    }

  private:
    Access<Key, Value> run(const Key& k, const Value& v, TimeNs /*now*/,
                           bool write_hit) {
        Access<Key, Value> a;
        a.inserted = true;
        if (auto it = index_.find(k); it != index_.end()) {
            a.hit = true;
            if (write_hit) it->second->second = Merge{}(it->second->second, v);
            order_.splice(order_.begin(), order_, it->second);
            a.value = it->second->second;
            return a;
        }
        order_.emplace_front(k, v);
        index_[k] = order_.begin();
        a.value = v;
        if (order_.size() > capacity_) {
            a.evicted = true;
            a.evicted_key = order_.back().first;
            a.evicted_value = order_.back().second;
            index_.erase(order_.back().first);
            order_.pop_back();
        }
        return a;
    }

    std::size_t capacity_;
    std::list<std::pair<Key, Value>> order_;
    std::unordered_map<Key,
                       typename std::list<std::pair<Key, Value>>::iterator>
        index_;
};

/// Per-bucket frequency aging (HashPipe-flavoured LFU extension): a miss
/// decays the resident's counter; at zero the newcomer takes the slot.
template <typename Key, typename Value, typename Merge = core::ReplaceMerge>
class LfuPolicy final : public ReplacementPolicy<Key, Value> {
  public:
    LfuPolicy(std::size_t total_entries, std::uint32_t seed)
        : buckets_(std::max<std::size_t>(1, total_entries)),
          hasher_(seed, buckets_.size()) {}

    Access<Key, Value> access(const Key& k, const Value& v,
                              TimeNs now) override {
        return run(k, v, now, false);
    }
    Access<Key, Value> fill(const Key& k, const Value& v,
                            TimeNs now) override {
        return run(k, v, now, true);
    }

    std::optional<Value> peek(const Key& k) const override {
        const auto& b = buckets_[core::bucket_of(hasher_, k)];
        if (b.occupied && b.key == k) return b.value;
        return std::nullopt;
    }

    std::size_t capacity_entries() const override { return buckets_.size(); }
    std::string name() const override { return "LFU"; }

    void for_each(const std::function<void(const Key&, const Value&)>& fn)
        const override {
        for (const auto& b : buckets_) {
            if (b.occupied) fn(b.key, b.value);
        }
    }


  private:
    Access<Key, Value> run(const Key& k, const Value& v, TimeNs /*now*/,
                           bool write_hit) {
        auto& b = buckets_[core::bucket_of(hasher_, k)];
        Access<Key, Value> a;
        if (b.occupied && b.key == k) {
            a.hit = true;
            a.inserted = true;
            if (write_hit) b.value = Merge{}(b.value, v);
            ++b.freq;
            a.value = b.value;
            return a;
        }
        if (!b.occupied) {
            b = {true, k, v, 1};
            a.inserted = true;
            a.value = v;
            return a;
        }
        if (--b.freq == 0) {
            a.evicted = true;
            a.evicted_key = b.key;
            a.evicted_value = b.value;
            b = {true, k, v, 1};
            a.inserted = true;
            a.value = v;
        }
        return a;
    }

    struct Bucket {
        bool occupied = false;
        Key key{};
        Value value{};
        std::uint32_t freq = 0;
    };
    std::vector<Bucket> buckets_;
    hash::FlowHasher hasher_;
};

/// CLOCK (second chance): global ring with reference bits and a scanning
/// hand. Approximates LRU well but the hand's scan is exactly what a
/// pipeline cannot do — included to quantify the gap P4LRU closes.
template <typename Key, typename Value, typename Merge = core::ReplaceMerge>
class ClockPolicy final : public ReplacementPolicy<Key, Value> {
  public:
    explicit ClockPolicy(std::size_t total_entries)
        : slots_(std::max<std::size_t>(1, total_entries)) {}

    Access<Key, Value> access(const Key& k, const Value& v,
                              TimeNs now) override {
        return run(k, v, now, false);
    }
    Access<Key, Value> fill(const Key& k, const Value& v,
                            TimeNs now) override {
        return run(k, v, now, true);
    }

    std::optional<Value> peek(const Key& k) const override {
        if (auto it = index_.find(k); it != index_.end()) {
            return slots_[it->second].value;
        }
        return std::nullopt;
    }

    std::size_t capacity_entries() const override { return slots_.size(); }
    std::string name() const override { return "CLOCK"; }

    void for_each(const std::function<void(const Key&, const Value&)>& fn)
        const override {
        for (const auto& s : slots_) {
            if (s.occupied) fn(s.key, s.value);
        }
    }

  private:
    Access<Key, Value> run(const Key& k, const Value& v, TimeNs /*now*/,
                           bool write_hit) {
        Access<Key, Value> a;
        a.inserted = true;
        if (auto it = index_.find(k); it != index_.end()) {
            a.hit = true;
            auto& s = slots_[it->second];
            if (write_hit) s.value = Merge{}(s.value, v);
            s.referenced = true;
            a.value = s.value;
            return a;
        }
        while (true) {
            auto& s = slots_[hand_];
            if (!s.occupied || !s.referenced) break;
            s.referenced = false;
            hand_ = (hand_ + 1) % slots_.size();
        }
        auto& s = slots_[hand_];
        if (s.occupied) {
            a.evicted = true;
            a.evicted_key = s.key;
            a.evicted_value = s.value;
            index_.erase(s.key);
        }
        // Insert with the reference bit clear: only a genuine re-reference
        // earns the second chance.
        s = {true, false, k, v};
        index_[k] = hand_;
        hand_ = (hand_ + 1) % slots_.size();
        a.value = v;
        return a;
    }

    struct Slot {
        bool occupied = false;
        bool referenced = false;
        Key key{};
        Value value{};
    };
    std::vector<Slot> slots_;
    std::unordered_map<Key, std::size_t> index_;
    std::size_t hand_ = 0;
};

}  // namespace p4lru::cache
