// LRU-similarity metric (Section 4.2).
//
// For each evicted entry, rank its last-access time among all entries cached
// at eviction (1 = most recent, n = least recent); the similarity sample is
// rank/n. An ideal LRU always evicts the globally least-recent entry, so its
// similarity is exactly 1; the average over all evictions measures how close
// a policy comes.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "p4lru/common/stats.hpp"

namespace p4lru::cache {

/// Tracks last-access sequence numbers of cached keys and computes eviction
/// rank in O(log n) via a Fenwick tree over access sequence numbers.
template <typename Key>
class SimilarityTracker {
  public:
    /// \param max_accesses upper bound on the number of on_access calls
    ///        (Fenwick tree is sized once; one int bit per access).
    explicit SimilarityTracker(std::size_t max_accesses)
        : tree_(max_accesses + 2, 0) {}

    /// Record that `k` became the most recently used cached key. Must be
    /// called for every access that leaves k cached (hits and inserts).
    void on_access(const Key& k) {
        ++seq_;
        if (seq_ + 1 >= tree_.size()) {
            throw std::logic_error("SimilarityTracker: max_accesses exceeded");
        }
        auto [it, inserted] = last_.try_emplace(k, seq_);
        if (!inserted) {
            fenwick_add(it->second, -1);
            it->second = seq_;
        }
        fenwick_add(seq_, +1);
    }

    /// Record that `k` was evicted; accumulates one similarity sample.
    void on_evict(const Key& k) {
        const auto it = last_.find(k);
        if (it == last_.end()) {
            throw std::logic_error("SimilarityTracker: evicting unknown key");
        }
        const std::size_t n = last_.size();
        // newer = cached entries accessed strictly after k.
        const std::int64_t newer =
            fenwick_sum(seq_) - fenwick_sum(it->second);
        const double rank = static_cast<double>(newer + 1);
        samples_.add(rank / static_cast<double>(n));
        fenwick_add(it->second, -1);
        last_.erase(it);
    }

    /// Remove k without scoring (e.g. entry invalidated, not LRU-evicted).
    void on_remove(const Key& k) {
        if (const auto it = last_.find(k); it != last_.end()) {
            fenwick_add(it->second, -1);
            last_.erase(it);
        }
    }

    /// Mean similarity over all evictions so far (1.0 = ideal LRU).
    [[nodiscard]] double similarity() const noexcept {
        return samples_.count() ? samples_.mean() : 1.0;
    }

    [[nodiscard]] std::size_t evictions() const noexcept {
        return samples_.count();
    }
    [[nodiscard]] std::size_t cached() const noexcept { return last_.size(); }

  private:
    void fenwick_add(std::size_t i, std::int64_t delta) {
        for (; i < tree_.size(); i += i & (~i + 1)) tree_[i] += delta;
    }

    [[nodiscard]] std::int64_t fenwick_sum(std::size_t i) const {
        std::int64_t s = 0;
        for (; i > 0; i -= i & (~i + 1)) s += tree_[i];
        return s;
    }

    std::vector<std::int64_t> tree_;
    std::unordered_map<Key, std::size_t> last_;
    std::size_t seq_ = 0;
    stats::Running samples_;
};

}  // namespace p4lru::cache
