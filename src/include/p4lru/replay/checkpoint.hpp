// Checkpoint/resume for deterministic replay (DESIGN.md §10).
//
// A replay over a fixed op stream is a pure function of (cache planes, op
// cursor): snapshotting the storage's raw plane bytes plus the cursor and
// the statistics accumulated so far is enough to resume later — on a fresh
// cache object, even in a fresh process — and land on bit-identical final
// state and statistics.  The snapshot is taken between ops on the owning
// thread, so no synchronization is involved; both storage layouts expose
// save_planes/load_planes (unit_storage.hpp, soa_slab.hpp) as flat byte
// images whose size is a pure function of the unit count, which lets resume
// reject a checkpoint taken from a differently-shaped cache with a typed
// error instead of corrupting memory.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "p4lru/fault/status.hpp"
#include "p4lru/replay/replay.hpp"

namespace p4lru::replay {

/// A resumable snapshot of an in-progress sequential replay.
struct ReplayCheckpoint {
    std::uint64_t cursor = 0;      ///< ops applied before the snapshot
    ReplayStats stats{};           ///< statistics over ops [0, cursor)
    std::size_t unit_count = 0;    ///< shape guard for resume
    std::vector<std::byte> planes; ///< raw storage plane image
};

/// Snapshot a cache mid-replay.  `cursor`/`stats` describe how far the
/// caller has replayed; the plane image captures everything else.
template <typename Cache>
[[nodiscard]] ReplayCheckpoint take_checkpoint(const Cache& cache,
                                               std::uint64_t cursor,
                                               const ReplayStats& stats) {
    ReplayCheckpoint cp;
    cp.cursor = cursor;
    cp.stats = stats;
    cp.unit_count = cache.unit_count();
    cache.storage().save_planes(cp.planes);
    return cp;
}

/// Restore `cp` into `cache` and replay the remaining ops [cp.cursor, end).
/// Returns the final statistics — bit-identical to an uninterrupted
/// replay_sequential over the full stream, for any checkpoint cursor.
/// Fails with kInvalidState when the checkpoint does not fit the cache
/// (different unit count / layout) or its cursor lies beyond the stream.
template <typename Cache, typename Key, typename Value>
[[nodiscard]] Expected<ReplayStats> resume_sequential(
    Cache& cache, std::span<const ReplayOp<Key, Value>> ops,
    const ReplayCheckpoint& cp) {
    if (cp.unit_count != cache.unit_count()) {
        return Status(ErrorCode::kInvalidState,
                      "checkpoint unit count " +
                          std::to_string(cp.unit_count) +
                          " != cache unit count " +
                          std::to_string(cache.unit_count()));
    }
    if (cp.cursor > ops.size()) {
        return Status(ErrorCode::kInvalidState,
                      "checkpoint cursor " + std::to_string(cp.cursor) +
                          " beyond op stream of " +
                          std::to_string(ops.size()));
    }
    cache.materialize();  // load_planes overwrites; planes must exist first
    if (!cache.storage().load_planes(cp.planes)) {
        return Status(ErrorCode::kInvalidState,
                      "checkpoint plane image of " +
                          std::to_string(cp.planes.size()) +
                          " bytes does not match this storage layout");
    }
    ReplayStats s = cp.stats;
    for (std::size_t i = cp.cursor; i < ops.size(); ++i) {
        s.tally(cache.update(ops[i].key, ops[i].value));
    }
    return s;
}

/// Sequential replay that emits a checkpoint into `sink` every `every` ops
/// (sink(ReplayCheckpoint&&)).  The statistics are bit-identical to
/// replay_sequential; checkpointing only copies plane bytes between ops.
template <typename Cache, typename Key, typename Value, typename Sink>
ReplayStats replay_sequential_checkpointed(
    Cache& cache, std::span<const ReplayOp<Key, Value>> ops,
    std::uint64_t every, Sink&& sink) {
    cache.materialize();
    ReplayStats s;
    std::uint64_t cursor = 0;
    for (const auto& op : ops) {
        s.tally(cache.update(op.key, op.value));
        ++cursor;
        if (every != 0 && cursor % every == 0 && cursor < ops.size()) {
            sink(take_checkpoint(cache, cursor, s));
        }
    }
    return s;
}

}  // namespace p4lru::replay
