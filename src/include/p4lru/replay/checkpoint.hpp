// Checkpoint/resume for deterministic replay (DESIGN.md §10).
//
// A replay over a fixed op stream is a pure function of (cache planes, op
// cursor): snapshotting the storage's raw plane bytes plus the cursor and
// the statistics accumulated so far is enough to resume later — on a fresh
// cache object, even in a fresh process — and land on bit-identical final
// state and statistics.
//
// Sequential path: the snapshot is taken between ops on the owning thread,
// so no synchronization is involved.
//
// Sharded path: replay_sharded_checkpointed rides the engine's quiesce
// protocol (replay.hpp, ShardCtl::snap_*).  Every `every_batches` delivered
// batches the dispatcher flushes its open partial batches — making the
// applied set exactly the contiguous op prefix [0, cursor) — parks every
// worker at a batch boundary, and hands a CheckpointCut to the sink.
// Because each unit range has exactly one owner and every shard has applied
// all of its ops below the cut, the cut is globally consistent, and
// resume_sharded is simply "load planes, replay the suffix": the suffix
// replay re-shards however the resume config says, and bit-exactness holds
// because per-unit arrival order is all that matters.
//
// Every checkpoint carries the storage's layout id and plane-geometry
// fingerprint (unit_storage.hpp) besides the unit count: two layouts of
// coincidentally equal plane-byte size would otherwise pass the size guards
// and silently reinterpret each other's planes.  Both storage layouts
// expose save_planes/load_planes (unit_storage.hpp, soa_slab.hpp) as flat
// byte images; checkpoint_io.hpp persists/restores the whole structure on
// disk with the trace-IO typed-error vocabulary.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "p4lru/fault/status.hpp"
#include "p4lru/replay/replay.hpp"

namespace p4lru::replay {

/// A resumable snapshot of an in-progress sequential replay (and the plane
/// /cursor core of a sharded one).
struct ReplayCheckpoint {
    std::uint64_t cursor = 0;      ///< ops applied before the snapshot
    ReplayStats stats{};           ///< statistics over ops [0, cursor)
    std::size_t unit_count = 0;    ///< shape guard for resume
    std::uint32_t layout_id = 0;   ///< storage layout tag (kAos/kSoaLayoutId)
    std::uint64_t plane_fingerprint = 0;  ///< storage plane-geometry hash
    std::vector<std::byte> planes; ///< raw storage plane image
};

/// Snapshot a cache mid-replay.  `cursor`/`stats` describe how far the
/// caller has replayed; the plane image captures everything else, and the
/// layout tag + fingerprint pin which storage may restore it.
template <typename Cache>
[[nodiscard]] ReplayCheckpoint take_checkpoint(const Cache& cache,
                                               std::uint64_t cursor,
                                               const ReplayStats& stats) {
    using Storage = std::remove_cvref_t<decltype(cache.storage())>;
    ReplayCheckpoint cp;
    cp.cursor = cursor;
    cp.stats = stats;
    cp.unit_count = cache.unit_count();
    cp.layout_id = Storage::layout_id();
    cp.plane_fingerprint = Storage::plane_fingerprint();
    cache.storage().save_planes(cp.planes);
    return cp;
}

namespace detail {

/// Shared resume guard: the checkpoint must have been taken from a cache of
/// this storage layout and geometry, with this unit count, and its cursor
/// must lie inside the op stream.  Layout is checked first — a layout
/// mismatch makes every other field meaningless.
template <typename Cache>
[[nodiscard]] Status check_checkpoint_fits(const Cache& cache,
                                           std::size_t ops_size,
                                           const ReplayCheckpoint& cp) {
    using Storage = std::remove_cvref_t<decltype(cache.storage())>;
    if (cp.layout_id != Storage::layout_id() ||
        cp.plane_fingerprint != Storage::plane_fingerprint()) {
        return invalid_state(
            "checkpoint layout tag " + std::to_string(cp.layout_id) +
            " / fingerprint " + std::to_string(cp.plane_fingerprint) +
            " does not match this cache's storage layout '" +
            Storage::layout_name() + "' (tag " +
            std::to_string(Storage::layout_id()) + ", fingerprint " +
            std::to_string(Storage::plane_fingerprint()) + ")");
    }
    if (cp.unit_count != cache.unit_count()) {
        return invalid_state("checkpoint unit count " +
                             std::to_string(cp.unit_count) +
                             " != cache unit count " +
                             std::to_string(cache.unit_count()));
    }
    if (cp.cursor > ops_size) {
        return invalid_state("checkpoint cursor " +
                             std::to_string(cp.cursor) +
                             " beyond op stream of " +
                             std::to_string(ops_size));
    }
    return Status::ok();
}

/// Restore a checkpoint's plane image into a (validated) cache.
template <typename Cache>
[[nodiscard]] Status load_checkpoint_planes(Cache& cache,
                                            const ReplayCheckpoint& cp) {
    cache.materialize();  // load_planes overwrites; planes must exist first
    if (!cache.storage().load_planes(cp.planes)) {
        return invalid_state("checkpoint plane image of " +
                             std::to_string(cp.planes.size()) +
                             " bytes does not match this storage layout");
    }
    return Status::ok();
}

}  // namespace detail

/// Restore `cp` into `cache` and stream the remaining ops [cp.cursor, end):
/// the source must cover the full op stream the checkpoint describes; the
/// resume *seeks* it to the checkpoint cursor instead of re-reading the
/// prefix, so an on-disk source replays only the suffix bytes.  Returns the
/// final statistics — bit-identical to an uninterrupted replay over the
/// full stream, for any checkpoint cursor.  Fails with kInvalidState when
/// the checkpoint does not fit the cache (different unit count / layout /
/// geometry) or its cursor lies beyond the stream, and with the source's
/// own Status on a seek or mid-stream failure.
template <typename Cache, typename Source>
[[nodiscard]] Expected<ReplayStats> resume_sequential_stream(
    Cache& cache, Source& source, const ReplayCheckpoint& cp) {
    if (Status st = detail::check_checkpoint_fits(
            cache, static_cast<std::size_t>(source.size()), cp);
        !st.is_ok()) {
        return st;
    }
    if (Status st = detail::load_checkpoint_planes(cache, cp); !st.is_ok()) {
        return st;
    }
    if (Status st = source.seek(cp.cursor); !st.is_ok()) {
        return st;
    }
    ReplayStats s = cp.stats;
    // The suffix goes through the batched path (hash-ahead + prefetch);
    // per-op application order is unchanged, so the result stream is the
    // one an uninterrupted per-op replay would have produced.
    const auto tally = [&s](std::size_t, std::size_t, const auto& r) {
        s.tally(r);
    };
    for (;;) {
        auto pulled = source.next_batch(kSequentialPullOps);
        if (!pulled.is_ok()) return pulled.status();
        const auto chunk = pulled.value();
        if (chunk.empty()) break;
        cache.update_batch(chunk, tally);
    }
    return s;
}

/// Restore `cp` into `cache` and replay the remaining ops [cp.cursor, end).
/// A SpanOpSource wrapper over resume_sequential_stream.
template <typename Cache, typename Key, typename Value>
[[nodiscard]] Expected<ReplayStats> resume_sequential(
    Cache& cache, std::span<const ReplayOp<Key, Value>> ops,
    const ReplayCheckpoint& cp) {
    SpanOpSource<ReplayOp<Key, Value>> source(ops);
    return resume_sequential_stream(cache, source, cp);
}

/// Sequential streaming replay that emits a checkpoint into `sink` every
/// `every` ops (sink(ReplayCheckpoint&&)).  Checkpoint cursors are relative
/// to the source's position at entry; statistics are bit-identical to
/// replay_sequential_stream — checkpointing only copies plane bytes between
/// ops.  Fails when the source fails mid-stream.
template <typename Cache, typename Source, typename Sink>
[[nodiscard]] Expected<ReplayStats> replay_sequential_checkpointed_stream(
    Cache& cache, Source& source, std::uint64_t every, Sink&& sink) {
    cache.materialize();
    ReplayStats s;
    const auto tally = [&s](std::size_t, std::size_t, const auto& r) {
        s.tally(r);
    };
    std::uint64_t cursor = 0;
    const std::uint64_t n = source.size() - source.tell();
    while (cursor < n) {
        // Batched application, with each chunk clipped at the next cadence
        // point: checkpoints land on exactly the op cursors the per-op loop
        // used, and each snapshot still happens between ops.  A source may
        // split the clipped chunk further (its per-batch cap); the inner
        // loop re-pulls until the cadence point is reached.
        std::uint64_t take = n - cursor;
        if (every != 0) {
            take = std::min<std::uint64_t>(take, every - cursor % every);
        }
        std::uint64_t got = 0;
        while (got < take) {
            auto pulled = source.next_batch(
                static_cast<std::size_t>(take - got));
            if (!pulled.is_ok()) return pulled.status();
            const auto chunk = pulled.value();
            if (chunk.empty()) {
                return invalid_state(
                    "op source '" + std::string(source.name()) +
                    "' ended at op " + std::to_string(cursor + got) +
                    " of " + std::to_string(n));
            }
            cache.update_batch(chunk, tally);
            got += chunk.size();
        }
        cursor += take;
        if (every != 0 && cursor % every == 0 && cursor < n) {
            sink(take_checkpoint(cache, cursor, s));
        }
    }
    return s;
}

/// Sequential replay that emits a checkpoint into `sink` every `every` ops.
/// A SpanOpSource wrapper over replay_sequential_checkpointed_stream (a
/// span source never fails).
template <typename Cache, typename Key, typename Value, typename Sink>
ReplayStats replay_sequential_checkpointed(
    Cache& cache, std::span<const ReplayOp<Key, Value>> ops,
    std::uint64_t every, Sink&& sink) {
    SpanOpSource<ReplayOp<Key, Value>> source(ops);
    return replay_sequential_checkpointed_stream(cache, source, every,
                                                 std::forward<Sink>(sink))
        .value();
}

/// A resumable snapshot of an in-progress *sharded* replay: the sequential
/// core (planes, cursor, merged stats) plus the per-shard split of the
/// statistics — which doubles as the per-shard op cursors, since shard t
/// has applied exactly shard_stats[t].ops ops at the cut — and the
/// degradation telemetry accumulated so far, so a resumed run's report is
/// continuous with the interrupted one.  Invariant (checked on resume):
/// the shard_stats sum to base.stats, and base.stats.ops == base.cursor.
struct ShardedCheckpoint {
    ReplayCheckpoint base;
    std::vector<ReplayStats> shard_stats;  ///< per-shard split of base.stats
    std::uint64_t delivered_batches = 0;
    std::uint64_t backpressure_waits = 0;
    std::uint64_t park_wait_us = 0;
    std::uint64_t drained_inline = 0;
    std::uint64_t abandoned_workers = 0;
    core::ScrubReport scrub{};
};

/// Materialize a quiesced dispatch cut (replay.hpp) into an owning
/// checkpoint.  Runs on the dispatcher thread while every worker is parked
/// at its batch boundary, so the plane read is race-free.
template <typename Cache>
[[nodiscard]] ShardedCheckpoint take_sharded_checkpoint(
    const Cache& cache, const CheckpointCut& cut) {
    ShardedCheckpoint cp;
    cp.base = take_checkpoint(cache, cut.cursor, cut.stats);
    cp.shard_stats.assign(cut.shard_stats.begin(), cut.shard_stats.end());
    cp.delivered_batches = cut.delivered_batches;
    cp.backpressure_waits = cut.backpressure_waits;
    cp.park_wait_us = cut.park_wait_us;
    cp.drained_inline = cut.drained_inline;
    cp.abandoned_workers = cut.abandoned_workers;
    cp.scrub = cut.scrub;
    return cp;
}

namespace detail {

/// The enabled counterpart of detail::NoCheckpoint (replay.hpp): trips the
/// dispatch loop's trigger every `every` delivered batches and converts the
/// quiesced cut into a ShardedCheckpoint for the sink.
template <typename Cache, typename Sink>
class DispatchCheckpointer {
  public:
    static constexpr bool kEnabled = true;

    DispatchCheckpointer(Cache& cache, std::uint64_t every, Sink& sink)
        : cache_(&cache), every_(every), next_(every), sink_(&sink) {}

    [[nodiscard]] bool due(std::uint64_t delivered) const noexcept {
        return every_ != 0 && delivered >= next_;
    }

    void emit(const CheckpointCut& cut) {
        // Re-arm relative to the actual cut (flushing partial batches may
        // have delivered past the nominal cadence point).
        next_ = cut.delivered_batches + every_;
        (*sink_)(take_sharded_checkpoint(*cache_, cut));
    }

    [[nodiscard]] bool stop_requested() const {
        if constexpr (requires(const Sink& s) { s.stop_requested(); }) {
            return sink_->stop_requested();
        } else {
            return false;
        }
    }

  private:
    Cache* cache_;
    std::uint64_t every_;
    std::uint64_t next_;
    Sink* sink_;
};

}  // namespace detail

/// Streaming sharded replay that emits a ShardedCheckpoint into `sink`
/// every `every_batches` delivered batches (sink(ShardedCheckpoint&&)); 0
/// disables emission.  Checkpoint cursors are relative to the source's
/// position at entry.  Statistics and final cache state stay bit-identical
/// to replay_sharded_stream — the quiesce only decides *when* work happens,
/// never what — and the fault hooks compose: checkpoints are taken even
/// while stalled workers are being abandoned and drained inline.
template <typename Cache, typename Source, typename Sink,
          typename Faults = fault::NoFaults>
[[nodiscard]] Expected<ShardedReport> replay_sharded_checkpointed_stream(
    Cache& cache, Source& source, const ShardedConfig& cfg,
    std::uint64_t every_batches, Sink&& sink, const Faults& faults = {}) {
    using Op = std::remove_cvref_t<typename Source::value_type>;
    using Traits = detail::ReplayOpTraits<Op>;
    detail::DispatchCheckpointer<Cache, std::remove_reference_t<Sink>> ckpt(
        cache, every_batches, sink);
    CacheReplayTarget<Cache, typename Traits::key_type,
                      typename Traits::value_type>
        target(cache);
    return detail::replay_sharded_stream_impl(target, source, cfg, faults,
                                              ckpt);
}

/// Sharded replay that emits a ShardedCheckpoint into `sink` every
/// `every_batches` delivered batches.  A SpanOpSource wrapper over
/// replay_sharded_checkpointed_stream (a span source never fails).
template <typename Cache, typename Key, typename Value, typename Sink,
          typename Faults = fault::NoFaults>
ShardedReport replay_sharded_checkpointed(
    Cache& cache, std::span<const ReplayOp<Key, Value>> ops,
    const ShardedConfig& cfg, std::uint64_t every_batches, Sink&& sink,
    const Faults& faults = {}) {
    SpanOpSource<ReplayOp<Key, Value>> source(ops);
    return replay_sharded_checkpointed_stream(cache, source, cfg,
                                              every_batches,
                                              std::forward<Sink>(sink),
                                              faults)
        .value();
}

/// Restore a sharded checkpoint into `cache` and stream the remaining ops
/// [cp.base.cursor, end) with `cfg` — the resume *seeks* the source to the
/// cursor instead of re-reading the prefix, and may use a different shard
/// count, batch size or mode than the interrupted run; bit-exactness holds
/// regardless because the cut is a clean op prefix.  The returned report
/// merges the checkpoint's statistics and telemetry, so it reads as if the
/// run had never been interrupted.  Fails with kInvalidState on any
/// layout/shape mismatch or when the checkpoint is internally inconsistent
/// (per-shard stats that do not sum to its totals), and with the source's
/// own Status on a seek or mid-stream failure.
template <typename Cache, typename Source,
          typename Faults = fault::NoFaults>
[[nodiscard]] Expected<ShardedReport> resume_sharded_stream(
    Cache& cache, Source& source, const ShardedCheckpoint& cp,
    const ShardedConfig& cfg = {}, const Faults& faults = {}) {
    if (Status st = detail::check_checkpoint_fits(
            cache, static_cast<std::size_t>(source.size()), cp.base);
        !st.is_ok()) {
        return st;
    }
    if (cp.base.stats.ops != cp.base.cursor) {
        return invalid_state(
            "sharded checkpoint stats cover " +
            std::to_string(cp.base.stats.ops) + " ops but cursor is " +
            std::to_string(cp.base.cursor));
    }
    if (!cp.shard_stats.empty()) {
        ReplayStats sum;
        for (const auto& s : cp.shard_stats) sum.merge(s);
        if (!(sum == cp.base.stats)) {
            return invalid_state(
                "sharded checkpoint per-shard statistics do not sum to "
                "its totals");
        }
    }
    if (Status st = detail::load_checkpoint_planes(cache, cp.base);
        !st.is_ok()) {
        return st;
    }
    if (Status st = source.seek(cp.base.cursor); !st.is_ok()) {
        return st;
    }
    auto streamed = replay_sharded_stream(cache, source, cfg, faults);
    if (!streamed.is_ok()) return streamed.status();
    ShardedReport rep = std::move(streamed).value();
    rep.stats.merge(cp.base.stats);
    rep.backpressure_waits += cp.backpressure_waits;
    rep.park_wait_us += cp.park_wait_us;
    rep.drained_inline += static_cast<std::size_t>(cp.drained_inline);
    rep.abandoned_workers += static_cast<std::size_t>(cp.abandoned_workers);
    rep.scrub.merge(cp.scrub);
    return rep;
}

/// Restore a sharded checkpoint into `cache` and replay the remaining ops
/// [cp.base.cursor, end).  A SpanOpSource wrapper over
/// resume_sharded_stream.
template <typename Cache, typename Key, typename Value,
          typename Faults = fault::NoFaults>
[[nodiscard]] Expected<ShardedReport> resume_sharded(
    Cache& cache, std::span<const ReplayOp<Key, Value>> ops,
    const ShardedCheckpoint& cp, const ShardedConfig& cfg = {},
    const Faults& faults = {}) {
    SpanOpSource<ReplayOp<Key, Value>> source(ops);
    return resume_sharded_stream(cache, source, cp, cfg, faults);
}

}  // namespace p4lru::replay
