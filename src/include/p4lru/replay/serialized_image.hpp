// The common currency between the two checkpoint serializers
// (checkpoint_io for P4LRUCKP, target_checkpoint for P4LRUTGC) and the
// durable store: a checkpoint rendered to its exact on-disk byte image,
// together with the offsets at which each section ends.  Keeping it in its
// own header lets the generic target layer and the store share the type
// without the target layer inheriting the cache-specific checkpoint types.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace p4lru::replay {

/// A checkpoint rendered to its sealed on-disk byte image, plus the offsets
/// at which each section ends — header, stats records, state/plane bytes,
/// seal footer.  The section ends are what the deterministic crash injector
/// (fault::CrashPoint) cuts at: "a crash between section writes" is a
/// prefix of `bytes` ending at one of them.
struct SerializedCheckpoint {
    std::vector<std::byte> bytes;
    std::vector<std::uint64_t> section_ends;  ///< ascending; back()==size
};

}  // namespace p4lru::replay
