// Sharded parallel trace-replay engine.
//
// A ParallelCache's bucket hash partitions the key space into disjoint P4LRU
// units, so replay is embarrassingly parallel across unit ranges: a
// dispatcher routes each operation to the shard owning its bucket (ShardPlan
// carves [0, units) into contiguous ranges), batches of ~256 routed ops flow
// through one SPSC queue per shard, and each worker prefetches the next
// batch's unit cache lines before draining the previous batch. Because every
// unit is touched by exactly one shard and each shard processes its ops in
// arrival order, the final cache state and the merged hit/miss/eviction
// statistics are bit-identical to sequential replay.
//
// On machines without spare hardware threads (or with ShardedConfig::mode =
// kInline) the same dispatch/batch/prefetch structure runs on the calling
// thread: batching still buys memory-level parallelism from the two-phase
// prefetch-then-update pass, and determinism is unchanged.
//
// First-touch: when the cache was constructed with core::defer_init (its
// storage planes are allocated but untouched), each threaded worker
// initializes its own ShardPlan unit sub-range before draining batches, so
// the slab pages backing a shard are faulted in — and, under a first-touch
// NUMA policy, placed — by the thread that will own them.  The inline and
// sequential paths materialize on the calling thread.  Results are
// bit-identical either way.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <span>
#include <thread>
#include <vector>

#include "p4lru/common/types.hpp"
#include "p4lru/core/parallel_array.hpp"
#include "p4lru/replay/shard_plan.hpp"
#include "p4lru/replay/spsc_queue.hpp"

namespace p4lru::replay {

/// One logical trace operation: update the cache with <key, value>.
template <typename Key, typename Value>
struct ReplayOp {
    Key key{};
    Value value{};
};

/// Aggregate outcome counters of a replay. Totals are order-independent
/// sums, so the deterministic per-shard merge reproduces the sequential
/// numbers exactly.
struct ReplayStats {
    std::uint64_t ops = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;

    friend bool operator==(const ReplayStats&, const ReplayStats&) = default;

    void merge(const ReplayStats& o) noexcept {
        ops += o.ops;
        hits += o.hits;
        misses += o.misses;
        evictions += o.evictions;
    }

    template <typename Key, typename Value>
    void tally(const core::UpdateResult<Key, Value>& r) noexcept {
        ++ops;
        if (r.hit) {
            ++hits;
        } else {
            ++misses;
        }
        if (r.evicted) ++evictions;
    }

    [[nodiscard]] double hit_rate() const noexcept {
        return ops ? static_cast<double>(hits) / static_cast<double>(ops)
                   : 0.0;
    }
};

enum class Mode {
    kAuto,      ///< threaded when >1 hardware thread, else inline
    kThreaded,  ///< always spawn workers (tests, tsan)
    kInline     ///< always run on the calling thread
};

struct ShardedConfig {
    std::size_t shards = 0;         ///< worker count; 0 = default_shards()
    std::size_t batch_ops = 256;    ///< ops per dispatched batch
    std::size_t queue_batches = 64; ///< SPSC ring capacity, in batches
    Mode mode = Mode::kAuto;
};

/// What a sharded replay actually ran, alongside the merged statistics.
struct ShardedReport {
    ReplayStats stats{};
    std::size_t shards = 0;  ///< shard count after clamping
    bool threaded = false;   ///< workers spawned (vs inline fallback)
};

/// Reference replayer: one op at a time on the calling thread.  `Cache` is
/// any core::ParallelCache instantiation (either storage layout).
template <typename Cache, typename Key, typename Value>
ReplayStats replay_sequential(Cache& cache,
                              std::span<const ReplayOp<Key, Value>> ops) {
    cache.materialize();  // no-op unless constructed with defer_init
    ReplayStats s;
    for (const auto& op : ops) {
        s.tally(cache.update(op.key, op.value));
    }
    return s;
}

namespace detail {

/// An op routed to its owning bucket; the dispatcher hashes exactly once.
template <typename Key, typename Value>
struct RoutedOp {
    std::uint32_t bucket = 0;
    Key key{};
    Value value{};
};

template <typename Cache, typename Key, typename Value>
void prefetch_batch(const Cache& cache,
                    const std::vector<RoutedOp<Key, Value>>& batch) {
    for (const auto& op : batch) cache.prefetch_unit(op.bucket);
}

template <typename Cache, typename Key, typename Value>
void process_batch(Cache& cache,
                   const std::vector<RoutedOp<Key, Value>>& batch,
                   ReplayStats& stats) {
    for (const auto& op : batch) {
        stats.tally(cache.update_at(op.bucket, op.key, op.value));
    }
}

}  // namespace detail

/// Sharded replay. Bit-identical statistics and final cache state to
/// replay_sequential on the same (cache, ops) input, for any shard count.
template <typename Cache, typename Key, typename Value>
ShardedReport replay_sharded(Cache& cache,
                             std::span<const ReplayOp<Key, Value>> ops,
                             const ShardedConfig& cfg = {}) {
    using Routed = detail::RoutedOp<Key, Value>;
    using Batch = std::vector<Routed>;

    const std::size_t requested = cfg.shards ? cfg.shards : default_shards();
    const ShardPlan plan = ShardPlan::make(cache.unit_count(), requested);
    const std::size_t W = plan.shards();
    const std::size_t batch_ops = cfg.batch_ops ? cfg.batch_ops : 256;

    const bool threaded =
        cfg.mode == Mode::kThreaded ||
        (cfg.mode == Mode::kAuto && W > 1 && threads_profitable());

    ShardedReport report;
    report.shards = W;
    report.threaded = threaded;

    // Cache-line-padded per-shard results (workers write concurrently).
    struct alignas(64) PaddedStats {
        ReplayStats s;
    };
    std::vector<PaddedStats> results(W);

    // Deferred-init caches: threaded workers first-touch their own shard's
    // unit sub-range below; every other path materializes right here.
    const bool first_touch = !cache.materialized() && threaded;
    if (!first_touch) cache.materialize();

    if (!threaded) {
        // Inline path: batched dispatch on the calling thread. Ops stay in
        // arrival order (per-unit order is what equivalence needs), so no
        // per-shard scatter is paid; each block gets a two-phase
        // route-and-prefetch then update pass, overlapping the unit array's
        // random-access latency with hashing of the following ops.
        Batch block;
        block.reserve(batch_ops);
        for (std::size_t base = 0; base < ops.size(); base += batch_ops) {
            const std::size_t n = std::min(batch_ops, ops.size() - base);
            block.clear();
            for (std::size_t i = 0; i < n; ++i) {
                const auto& op = ops[base + i];
                const auto bucket =
                    static_cast<std::uint32_t>(cache.bucket(op.key));
                cache.prefetch_unit(bucket);
                block.push_back(Routed{bucket, op.key, op.value});
            }
            detail::process_batch(cache, block, results[0].s);
        }
    } else {
        // Per-shard batches under construction by the dispatcher.
        std::vector<Batch> open(W);
        for (auto& b : open) b.reserve(batch_ops);

        std::vector<std::unique_ptr<SpscQueue<Batch>>> queues;
        queues.reserve(W);
        for (std::size_t s = 0; s < W; ++s) {
            queues.push_back(std::make_unique<SpscQueue<Batch>>(
                cfg.queue_batches ? cfg.queue_batches : 64));
        }

        {
            std::vector<std::jthread> workers;
            workers.reserve(W);
            for (std::size_t s = 0; s < W; ++s) {
                workers.emplace_back([&cache, &queues, &results, &plan,
                                      first_touch, s] {
                    if (first_touch) {
                        // Fault this shard's slab sub-range in from the
                        // thread that will own it (first-touch placement).
                        const auto [lo, hi] = plan.range(s);
                        cache.first_touch_range(lo, hi);
                    }
                    ReplayStats local;
                    Batch pending;
                    Batch next;
                    bool have_pending = false;
                    while (queues[s]->pop(next)) {
                        // Warm the next batch's units, then drain the
                        // previous batch — prefetch one batch ahead.
                        detail::prefetch_batch(cache, next);
                        if (have_pending) {
                            detail::process_batch(cache, pending, local);
                        }
                        pending = std::move(next);
                        have_pending = true;
                    }
                    if (have_pending) {
                        detail::process_batch(cache, pending, local);
                    }
                    results[s].s = local;
                });
            }

            // Dispatch: hash, route, batch, push.
            for (const auto& op : ops) {
                const auto bucket =
                    static_cast<std::uint32_t>(cache.bucket(op.key));
                const std::size_t s = plan.owner(bucket);
                open[s].push_back(Routed{bucket, op.key, op.value});
                if (open[s].size() == batch_ops) {
                    queues[s]->push(std::move(open[s]));
                    open[s] = Batch{};
                    open[s].reserve(batch_ops);
                }
            }
            for (std::size_t s = 0; s < W; ++s) {
                if (!open[s].empty()) queues[s]->push(std::move(open[s]));
                queues[s]->close();
            }
        }  // jthreads join here
        if (first_touch) cache.mark_materialized();
    }

    for (std::size_t s = 0; s < W; ++s) {
        report.stats.merge(results[s].s);
    }
    return report;
}

/// Adapter: a packet trace as replay operations (key = 5-tuple, value = wire
/// length — the LruTable/LruMon-style update stream).
[[nodiscard]] std::vector<ReplayOp<FlowKey, std::uint32_t>> ops_from_packets(
    std::span<const PacketRecord> trace);

}  // namespace p4lru::replay
