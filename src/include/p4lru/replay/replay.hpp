// Sharded parallel trace-replay engine, hardened against worker failure.
//
// The engine drives any model of the ReplayTarget concept
// (replay_target.hpp); `CacheReplayTarget` below — a bare
// core::ParallelCache — is the first model, and the three paper systems
// (systems/*/..._target.hpp) are the others.  A target's bucket hash
// partitions its state into disjoint units, so replay is embarrassingly
// parallel across unit ranges: a dispatcher routes each operation to the
// shard owning its bucket (ShardPlan carves [0, units) into contiguous
// ranges), batches of ~256 routed ops flow through one SPSC queue per
// shard, and each worker prefetches the next batch's unit cache lines
// before draining the previous batch. Because every unit is touched by
// exactly one shard and each shard processes its ops in arrival order, the
// final target state and the merged statistics are bit-identical to
// sequential replay.
//
// On machines without spare hardware threads (or with ShardedConfig::mode =
// kInline) the same dispatch/batch/prefetch structure runs on the calling
// thread: batching still buys memory-level parallelism from the two-phase
// prefetch-then-update pass, and determinism is unchanged.
//
// Failure model (DESIGN.md §10): the engine no longer assumes every worker
// drains its queue.  Pushes use deadline-bounded backpressure
// (SpscQueue::try_push_for); when a shard stops making progress past
// RobustConfig::stall_timeout_us the dispatcher's watchdog asks the worker
// to park (cooperative abandon), waits for the park acknowledgement, then
// *drains the shard inline*: the queued batches are applied on the
// dispatcher thread in FIFO order, followed by every later op routed to that
// shard.  A worker parks only at a batch boundary after applying its
// prefetched pending batch, so each batch is applied exactly once and each
// unit still sees its ops in arrival order — the merged statistics stay
// bit-identical to sequential replay even under injected stalls.  Fault
// injection enters through the `Faults` template hook (fault_plan.hpp);
// the default NoFaults instantiation folds every hook to nothing.
//
// Checkpointing (checkpoint.hpp): the dispatcher can cut a globally
// consistent snapshot at any dispatch boundary.  It first flushes every
// open partial batch, so the applied set is exactly the contiguous op
// prefix [0, cursor), then raises a `snapshot` epoch on each live worker's
// ShardCtl.  A worker observes the request at a batch boundary, drains its
// queue to empty (the dispatcher stopped pushing before raising the epoch,
// so "empty" means "everything up to the cut"), publishes its stats, acks,
// and spin-waits for the matching release — parking at the boundary and
// resuming, rather than abandoning.  Workers that are already parked or
// that never ack (wedged mid-batch) fall back to the existing park/takeover
// ladder, so a checkpoint can always complete.  Between ack and release no
// worker writes the cache, which makes the dispatcher's plane reads safe.
//
// Cooperative-park assumption: both the watchdog and the snapshot protocol
// rely on workers reaching a *batch boundary* to observe abandon/snapshot
// flags.  A worker wedged inside process_batch (e.g. stuck on a poisoned
// page) never acknowledges; the dispatcher's park-ack wait is a bounded
// exponential-backoff sleep (telemetry: ShardedReport::park_wait_us) rather
// than a busy spin, but it still waits forever — preemptive cancellation of
// a thread that may hold the cache mid-write cannot preserve bit-exactness.
//
// First-touch: when the cache was constructed with core::defer_init (its
// storage planes are allocated but untouched), each threaded worker
// initializes its own ShardPlan unit sub-range before draining batches, so
// the slab pages backing a shard are faulted in — and, under a first-touch
// NUMA policy, placed — by the thread that will own them.  The inline and
// sequential paths materialize on the calling thread.  Results are
// bit-identical either way.
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "p4lru/common/types.hpp"
#include "p4lru/core/parallel_array.hpp"
#include "p4lru/fault/fault_plan.hpp"
#include "p4lru/fault/status.hpp"
#include "p4lru/obs/metrics.hpp"
#include "p4lru/replay/affinity.hpp"
#include "p4lru/replay/shard_plan.hpp"
#include "p4lru/replay/spsc_queue.hpp"

namespace p4lru::replay {

/// One logical trace operation: update the cache with <key, value>.
template <typename Key, typename Value>
struct ReplayOp {
    Key key{};
    Value value{};
};

/// Aggregate outcome counters of a replay. Totals are order-independent
/// sums, so the deterministic per-shard merge reproduces the sequential
/// numbers exactly.
struct ReplayStats {
    std::uint64_t ops = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;

    friend bool operator==(const ReplayStats&, const ReplayStats&) = default;

    void merge(const ReplayStats& o) noexcept {
        ops += o.ops;
        hits += o.hits;
        misses += o.misses;
        evictions += o.evictions;
    }

    template <typename Key, typename Value>
    void tally(const core::UpdateResult<Key, Value>& r) noexcept {
        ++ops;
        if (r.hit) {
            ++hits;
        } else {
            ++misses;
        }
        if (r.evicted) ++evictions;
    }

    [[nodiscard]] double hit_rate() const noexcept {
        return ops ? static_cast<double>(hits) / static_cast<double>(ops)
                   : 0.0;
    }
};

/// Minimal in-memory model of the OpSource concept the streaming engine
/// pulls from (DESIGN.md §14).  An op source is any type exposing
///
///   using value_type = Op;
///   Expected<std::span<const Op>> next_batch(std::size_t max);
///   Status seek(std::uint64_t op_index);
///   std::uint64_t size() const;   std::uint64_t tell() const;
///   const char* name() const;
///
/// with the TraceSource batch contract (trace_source.hpp): next_batch
/// returns exactly min(max, size() - tell()) ops, an empty span means end
/// of stream, the span stays valid until the next next_batch()/seek(), and
/// errors are typed Status at the batch boundary.  SpanOpSource wraps a
/// span the caller already holds — it never fails — and is how the legacy
/// whole-span entry points below ride the streaming engine unchanged.
/// op_source.hpp bridges trace::TraceSource (on-disk packet streams) into
/// the same concept.
template <typename Op>
class SpanOpSource {
  public:
    using value_type = Op;

    explicit SpanOpSource(std::span<const Op> ops) noexcept : ops_(ops) {}

    [[nodiscard]] Expected<std::span<const Op>> next_batch(std::size_t max) {
        const std::size_t n = std::min(max, ops_.size() - cursor_);
        auto out = ops_.subspan(cursor_, n);
        cursor_ += n;
        return Expected<std::span<const Op>>(out);
    }

    [[nodiscard]] Status seek(std::uint64_t op_index) {
        if (op_index > ops_.size()) {
            return Status(ErrorCode::kInvalidArgument,
                          "seek to op " + std::to_string(op_index) +
                              " past stream of " +
                              std::to_string(ops_.size()));
        }
        cursor_ = static_cast<std::size_t>(op_index);
        return Status::ok();
    }

    [[nodiscard]] std::uint64_t size() const noexcept { return ops_.size(); }
    [[nodiscard]] std::uint64_t tell() const noexcept { return cursor_; }
    [[nodiscard]] const char* name() const noexcept { return "span"; }

  private:
    std::span<const Op> ops_;
    std::size_t cursor_ = 0;
};

enum class Mode {
    kAuto,      ///< threaded when >1 hardware thread, else inline
    kThreaded,  ///< always spawn workers (tests, tsan)
    kInline     ///< always run on the calling thread
};

/// Degradation-ladder knobs of the hardened runtime.  The defaults keep the
/// fault-free fast path indistinguishable from the legacy engine (a push
/// deadline only matters when the ring is actually full) while bounding how
/// long a dead worker can wedge the dispatcher.
struct RobustConfig {
    /// Per-attempt bound on a blocked push before the dispatcher re-examines
    /// the shard (spin → yield ladder inside SpscQueue::try_push_for).
    std::uint32_t push_deadline_us = 500;
    /// Continuous no-progress window after which the watchdog abandons the
    /// shard's worker and drains the shard inline.
    std::uint32_t stall_timeout_us = 50'000;
    /// Master switch for the takeover path; with it off the dispatcher still
    /// uses bounded pushes (and still recovers from a worker that parked on
    /// its own) but never abandons a live worker.
    bool watchdog = true;
    /// Ops between integrity scrub passes (0 = off).  Sequential and inline
    /// replay scrub the whole array on this cadence; threaded workers scrub
    /// their own shard's unit range, so no scrub ever races an update.
    std::uint64_t scrub_every = 0;
};

struct ShardedConfig {
    std::size_t shards = 0;         ///< worker count; 0 = default_shards()
    std::size_t batch_ops = 256;    ///< ops per dispatched batch
    std::size_t queue_batches = 64; ///< SPSC ring capacity, in batches
    Mode mode = Mode::kAuto;
    RobustConfig robust{};          ///< backpressure/watchdog/scrub knobs
    /// Pin worker s to the s-th allowed core (affinity.hpp) before it
    /// first-touches its shard's pages, so first-touch placement survives
    /// scheduler migration.  Linux-only; a silent no-op elsewhere.
    /// Off by default: on an oversubscribed machine pinning removes the
    /// scheduler's freedom to dodge a busy core.
    bool pin_workers = false;
    /// Live metrics sink (obs/metrics.hpp).  Null (the default) disables
    /// instrumentation entirely: instrument handles are never resolved and
    /// the hot paths pay one predicted pointer test per *batch*, so the
    /// disabled run stays bit-identical and within noise of pre-obs builds
    /// (priced by the obs on/off series in bench_micro_ops).
    obs::Registry* metrics = nullptr;
};

/// What a sharded replay actually ran, alongside the merged statistics.
/// Generic over the target's mergeable statistics type; `ShardedReport` is
/// the cache-replay instantiation.
template <typename Stats>
struct BasicShardedReport {
    Stats stats{};
    std::size_t shards = 0;  ///< shard count after clamping
    bool threaded = false;   ///< workers spawned (vs inline fallback)

    // -- degradation telemetry (all zero on a healthy run) ---------------
    std::uint64_t backpressure_waits = 0;  ///< push deadline expiries
    std::uint64_t park_wait_us = 0;   ///< total us slept awaiting park acks
    std::size_t drained_inline = 0;   ///< shards the dispatcher took over
    std::size_t abandoned_workers = 0;///< workers parked by the watchdog
    std::size_t pinned_workers = 0;   ///< workers pinned (pin_workers set)
    core::ScrubReport scrub{};        ///< merged scrub counters (if enabled)

    [[nodiscard]] bool degraded() const noexcept {
        return drained_inline != 0 || abandoned_workers != 0 ||
               scrub.corrupt != 0;
    }
};

using ShardedReport = BasicShardedReport<ReplayStats>;

/// Default pull size of the sequential streaming replayers: large enough to
/// amortize the per-batch virtual call, small enough that a bounded-memory
/// source stays bounded.  Results never depend on it — ops are applied one
/// at a time in stream order whatever the pull size.
inline constexpr std::size_t kSequentialPullOps = 4096;

/// Reference replayer over any op source (OpSource concept above): one op
/// at a time on the calling thread, pulled in `pull_ops`-record batches.
/// `Cache` is any core::ParallelCache instantiation (either storage
/// layout).  Fails only when the source fails (a SpanOpSource never does).
template <typename Cache, typename Source>
[[nodiscard]] Expected<ReplayStats> replay_sequential_stream(
    Cache& cache, Source& source,
    std::size_t pull_ops = kSequentialPullOps) {
    cache.materialize();  // no-op unless constructed with defer_init
    ReplayStats s;
    for (;;) {
        auto pulled = source.next_batch(pull_ops ? pull_ops : 1);
        if (!pulled.is_ok()) return pulled.status();
        const auto chunk = pulled.value();
        if (chunk.empty()) break;
        for (const auto& op : chunk) {
            s.tally(cache.update(op.key, op.value));
        }
    }
    return s;
}

/// Reference replayer: one op at a time on the calling thread.  A
/// SpanOpSource wrapper over the streaming core — the span is just an op
/// source that never fails.
template <typename Cache, typename Key, typename Value>
ReplayStats replay_sequential(Cache& cache,
                              std::span<const ReplayOp<Key, Value>> ops) {
    SpanOpSource<ReplayOp<Key, Value>> source(ops);
    return replay_sequential_stream(cache, source).value();
}

/// Streaming counterpart of replay_sequential_batched: each pulled chunk
/// goes through the cache's batched update path.  Ops are still applied one
/// at a time in stream order, so the UpdateResult stream — and therefore
/// the statistics and the final cache state — is bit-identical to
/// replay_sequential_stream for any pull size.
template <typename Cache, typename Source>
[[nodiscard]] Expected<ReplayStats> replay_sequential_batched_stream(
    Cache& cache, Source& source,
    std::size_t pull_ops = kSequentialPullOps) {
    cache.materialize();
    ReplayStats s;
    const auto tally = [&s](std::size_t, std::size_t, const auto& r) {
        s.tally(r);
    };
    for (;;) {
        auto pulled = source.next_batch(pull_ops ? pull_ops : 1);
        if (!pulled.is_ok()) return pulled.status();
        const auto chunk = pulled.value();
        if (chunk.empty()) break;
        cache.update_batch(chunk, tally);
    }
    return s;
}

/// Sequential replay through the cache's batched update path: buckets are
/// hashed a chunk (256 ops) ahead and each op's unit is software-prefetched
/// core::kBatchPrefetchDistance ops before use, so the unit array's
/// random-access latency overlaps earlier updates.  Ops are still applied
/// one at a time in order, so the UpdateResult stream — and therefore the
/// statistics and the final cache state — is bit-identical to
/// replay_sequential (tests/replay/batch_equivalence_test.cpp).
template <typename Cache, typename Key, typename Value>
ReplayStats replay_sequential_batched(
    Cache& cache, std::span<const ReplayOp<Key, Value>> ops) {
    SpanOpSource<ReplayOp<Key, Value>> source(ops);
    return replay_sequential_batched_stream(cache, source).value();
}

/// Sequential replay with the integrity scrubber on a fixed cadence: every
/// `scrub_every` ops the whole unit array is validated and repaired.  On an
/// uncorrupted cache the scrub finds nothing and the statistics are
/// bit-identical to replay_sequential — the scrubber's cost (benchmarked in
/// bench_micro_ops) is pure overhead, never behaviour.
struct ScrubbedReplay {
    ReplayStats stats{};
    core::ScrubReport scrub{};
};

template <typename Cache, typename Key, typename Value>
ScrubbedReplay replay_sequential_scrubbed(
    Cache& cache, std::span<const ReplayOp<Key, Value>> ops,
    std::uint64_t scrub_every) {
    cache.materialize();
    ScrubbedReplay r;
    std::uint64_t until_scrub = scrub_every;
    for (const auto& op : ops) {
        r.stats.tally(cache.update(op.key, op.value));
        if (scrub_every != 0 && --until_scrub == 0) {
            r.scrub.merge(cache.scrub_all());
            until_scrub = scrub_every;
        }
    }
    return r;
}

namespace detail {

/// An op routed to its owning bucket; the dispatcher hashes exactly once.
template <typename Key, typename Value>
struct RoutedOp {
    std::uint32_t bucket = 0;
    Key key{};
    Value value{};
};

/// Key/Value extraction from a ReplayOp instantiation — the cache-level
/// streaming entry points cannot deduce them from a span argument, so they
/// read them off the source's value_type instead.
template <typename Op>
struct ReplayOpTraits;

template <typename Key, typename Value>
struct ReplayOpTraits<ReplayOp<Key, Value>> {
    using key_type = Key;
    using value_type = Value;
};

/// Per-shard control block shared between a worker and the dispatcher's
/// watchdog.  `progress` counts fully applied batches (release after each);
/// `abandon` is the watchdog's cooperative park request; `parked` is the
/// worker's acknowledgement that it has published its stats and will never
/// touch the cache or its queue again — the release/acquire edge that makes
/// the consumer-role handoff to the dispatcher safe.
///
/// The snap_* trio is the checkpoint quiesce protocol (epochs, not flags,
/// so a control block is reusable across many checkpoints): the dispatcher
/// bumps `snap_req` after it has stopped pushing; the worker drains its
/// queue, publishes stats, stores the epoch into `snap_ack` (release — the
/// edge the dispatcher's plane reads ride on) and waits; the dispatcher
/// stores the epoch into `snap_release` once the snapshot is taken, which
/// resumes the worker.
struct alignas(64) ShardCtl {
    std::atomic<std::uint64_t> progress{0};
    std::atomic<bool> abandon{false};
    std::atomic<bool> parked{false};
    std::atomic<std::uint64_t> snap_req{0};
    std::atomic<std::uint64_t> snap_ack{0};
    std::atomic<std::uint64_t> snap_release{0};
};

}  // namespace detail

/// The first model of the ReplayTarget concept (replay_target.hpp): drives
/// a bare core::ParallelCache through the engine.  It is a thin, stateless
/// view — routing hashes once via the cache's bucket hash, batches go
/// through the cache's routed-batch update path, and the snapshot plane is
/// the storage's raw plane image tagged with its layout id + geometry
/// fingerprint.  Behavior is identical to the historical cache-wired
/// engine: replay_sharded wraps the cache in this adapter.
template <typename Cache, typename Key, typename Value>
class CacheReplayTarget {
  public:
    using Op = ReplayOp<Key, Value>;
    using Routed = detail::RoutedOp<Key, Value>;
    using Stats = ReplayStats;

    explicit CacheReplayTarget(Cache& cache) noexcept : cache_(&cache) {}

    [[nodiscard]] std::size_t unit_count() const {
        return cache_->unit_count();
    }

    /// Hash the op to its owning bucket — exactly once per op.
    [[nodiscard]] Routed route(const Op& op) const {
        return Routed{static_cast<std::uint32_t>(cache_->bucket(op.key)),
                      op.key, op.value};
    }

    void prefetch_unit(std::uint32_t bucket) const {
        cache_->prefetch_unit(bucket);
    }
    void prefetch_batch(std::span<const Routed> batch) const {
        for (const auto& op : batch) cache_->prefetch_unit(op.bucket);
    }

    /// Apply a routed batch in arrival order (bit-exactness), each op's
    /// unit prefetched a fixed distance ahead.  Workers additionally warm
    /// the *next* batch via prefetch_batch; the distance prefetch inside
    /// update_routed_batch is the near-window re-warm right before use.
    void apply_batch(std::span<const Routed> batch, Stats& stats) {
        cache_->update_routed_batch(
            batch, [&stats](std::size_t, std::size_t, const auto& r) {
                stats.tally(r);
            });
    }

    // -- first-touch plane (deferred-init NUMA placement) ----------------
    [[nodiscard]] bool materialized() const { return cache_->materialized(); }
    void materialize() { cache_->materialize(); }
    void first_touch_range(std::size_t lo, std::size_t hi) {
        cache_->first_touch_range(lo, hi);
    }
    void mark_materialized() { cache_->mark_materialized(); }

    // -- integrity plane -------------------------------------------------
    core::ScrubReport scrub(std::size_t lo, std::size_t hi) {
        return cache_->scrub(lo, hi);
    }
    core::ScrubReport scrub_all() { return cache_->scrub_all(); }

    // -- snapshot plane (checkpoint cut) ---------------------------------
    [[nodiscard]] static std::uint32_t state_id() {
        return Storage::layout_id();
    }
    [[nodiscard]] static std::uint64_t state_fingerprint() {
        return Storage::plane_fingerprint();
    }
    void save_state(std::vector<std::byte>& out) const {
        cache_->storage().save_planes(out);
    }
    [[nodiscard]] bool load_state(std::span<const std::byte> in) {
        cache_->materialize();  // load overwrites; planes must exist first
        return cache_->storage().load_planes(in);
    }

    // -- fault hooks (fault_plan.hpp) ------------------------------------
    // Data faults enter through the target so each target decides what "op
    // corruption" and "storage corruption" mean for it.
    template <typename Faults>
    void inject_op_faults(const Faults& faults, std::uint64_t idx,
                          Op& op) const {
        faults.mutate_key(idx, op.key);
    }
    template <typename Faults>
    void inject_storage_faults(const Faults& faults, std::uint64_t idx) {
        faults.corrupt_storage(idx, cache_->storage());
    }

    [[nodiscard]] Cache& cache() const noexcept { return *cache_; }

  private:
    using Storage =
        std::remove_cvref_t<decltype(std::declval<const Cache&>().storage())>;
    Cache* cache_;
};

/// Everything a checkpoint sink needs to capture a consistent cut of a
/// running sharded replay.  Invariant: the target holds exactly the effects
/// of the op prefix [0, cursor), `stats` is the merged outcome of that
/// prefix (stats.ops == cursor), and `shard_stats[t]` is shard t's share —
/// which doubles as shard t's op cursor, since every shard has applied all
/// of its ops below the cut.  The span aliases dispatcher-owned scratch:
/// copy it before returning from the sink.  Generic over the target's
/// statistics type; `CheckpointCut` is the cache-replay instantiation.
template <typename Stats>
struct BasicCheckpointCut {
    std::uint64_t cursor = 0;             ///< ops applied (prefix length)
    std::uint64_t delivered_batches = 0;  ///< dispatch batches so far
    std::span<const Stats> shard_stats;   ///< per-shard split of stats
    Stats stats{};
    std::size_t shards = 0;
    bool threaded = false;
    std::uint64_t backpressure_waits = 0;
    std::uint64_t park_wait_us = 0;
    std::size_t drained_inline = 0;
    std::size_t abandoned_workers = 0;
    core::ScrubReport scrub{};
};

using CheckpointCut = BasicCheckpointCut<ReplayStats>;

namespace detail {

/// Disabled checkpoint hook: the default instantiation folds the trigger
/// check and the quiesce machinery away entirely (if constexpr on
/// kEnabled), so a plain replay_sharded pays nothing.  checkpoint.hpp's
/// DispatchCheckpointer is the enabled counterpart.
struct NoCheckpoint {
    static constexpr bool kEnabled = false;
    [[nodiscard]] bool due(std::uint64_t /*delivered*/) const noexcept {
        return false;
    }
    template <typename Stats>
    void emit(const BasicCheckpointCut<Stats>& /*cut*/) const noexcept {}
    [[nodiscard]] static constexpr bool stop_requested() noexcept {
        return false;
    }
};

/// Shared engine behind every sharded entry point — replay_sharded,
/// replay_sharded_checkpointed (checkpoint.hpp), the system adapters
/// (systems/*/..._target.hpp) and the streaming variants.  `Target` is any
/// model of the ReplayTarget concept (replay_target.hpp) — the engine only
/// routes, batches, prefetches and applies; what an op *means* belongs to
/// the target.  `Source` is any model of the OpSource concept (SpanOpSource
/// above, op_source.hpp for on-disk traces); the engine pulls `batch_ops`
/// records at a time, so its resident set is O(batch) plus whatever the
/// source itself stages.  `Ckpt` decides at compile time whether the
/// dispatch loop carries checkpoint triggers; `ckpt.due(delivered)` is
/// polled at dispatch boundaries and `ckpt.emit(cut)` runs with every
/// worker quiesced.
///
/// The run covers the ops [source.tell(), source.size()) at entry, and all
/// indices — fault ordinals, checkpoint cursors — are relative to the entry
/// position, exactly as the legacy span engine treated a suffix subspan:
/// seek-based resume (checkpoint.hpp, target_checkpoint.hpp) positions the
/// source at the checkpoint cursor instead of re-reading the prefix.
///
/// A source failure (rot discovered mid-stream, a file that shrank under
/// the reader) aborts the run at a batch boundary: no further batches are
/// delivered, the queues are closed, the workers join, and the Status is
/// returned after the join — the target is left in a valid (but partial)
/// state and must be discarded or re-seeded by the caller.
template <typename Target, typename Source, typename Faults, typename Ckpt>
Expected<BasicShardedReport<typename Target::Stats>>
replay_sharded_stream_impl(Target& target, Source& source,
                           const ShardedConfig& cfg, const Faults& faults,
                           Ckpt& ckpt) {
    using Op = typename Target::Op;
    using Routed = typename Target::Routed;
    using Stats = typename Target::Stats;
    using Batch = std::vector<Routed>;
    static_assert(
        std::is_same_v<std::remove_cvref_t<typename Source::value_type>, Op>,
        "op source value_type must match the target's Op type");

    const std::size_t requested = cfg.shards ? cfg.shards : default_shards();
    const ShardPlan plan = ShardPlan::make(target.unit_count(), requested);
    const std::size_t W = plan.shards();
    const std::size_t batch_ops = cfg.batch_ops ? cfg.batch_ops : 256;
    const std::uint64_t scrub_every = cfg.robust.scrub_every;
    const std::uint64_t remaining = source.size() - source.tell();

    const bool threaded =
        cfg.mode == Mode::kThreaded ||
        (cfg.mode == Mode::kAuto && W > 1 && threads_profitable());

    BasicShardedReport<Stats> report;
    report.shards = W;
    report.threaded = threaded;

    // Obs instruments (null registry = fully disabled).  Handles are
    // resolved once here; the hot paths below test one pointer per batch.
    // Timing (steady_clock reads around apply_batch) only happens when the
    // histogram handle is live, so the disabled run does no clock calls.
    obs::Counter* obs_batches = nullptr;
    obs::Histogram* obs_batch_ns = nullptr;
    obs::Counter* obs_backpressure = nullptr;
    obs::Counter* obs_park_us = nullptr;
    obs::Counter* obs_drained = nullptr;
    obs::Counter* obs_abandoned = nullptr;
    std::vector<obs::Gauge*> obs_depth;  ///< per-shard queue depth
    if (cfg.metrics != nullptr) {
        obs_batches = cfg.metrics->counter("replay_batches_applied");
        obs_batch_ns = cfg.metrics->histogram("replay_batch_apply_ns");
        obs_backpressure = cfg.metrics->counter("replay_backpressure_waits");
        obs_park_us = cfg.metrics->counter("replay_park_wait_us");
        obs_drained = cfg.metrics->counter("replay_drained_inline");
        obs_abandoned = cfg.metrics->counter("replay_abandoned_workers");
        obs_depth.resize(W);
        for (std::size_t s = 0; s < W; ++s) {
            obs_depth[s] = cfg.metrics->gauge(
                "replay_shard" + std::to_string(s) + "_queue_depth");
        }
    }
    // One timed apply shared by every path (worker, takeover, inline).
    const auto apply_timed = [&target, obs_batches, obs_batch_ns](
                                 std::span<const Routed> batch, Stats& into) {
        if (obs_batch_ns != nullptr) {
            const auto t0 = std::chrono::steady_clock::now();
            target.apply_batch(batch, into);
            obs_batch_ns->record(static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    std::chrono::steady_clock::now() - t0)
                    .count()));
            obs_batches->add(1);
        } else {
            target.apply_batch(batch, into);
        }
    };

    // Cache-line-padded per-shard results (workers write concurrently).
    struct alignas(64) PaddedStats {
        Stats s{};
        core::ScrubReport scrub;
        char pinned = 0;  ///< worker pinned itself to a core
    };
    std::vector<PaddedStats> results(W);

    // Deferred-init targets: threaded workers first-touch their own shard's
    // unit sub-range below; every other path materializes right here.
    const bool first_touch = !target.materialized() && threaded;
    if (!first_touch) target.materialize();

    if (!threaded) {
        // Inline path: batched dispatch on the calling thread. Ops stay in
        // arrival order (per-unit order is what equivalence needs), so no
        // per-shard scatter is paid; each block gets a two-phase
        // route-and-prefetch then update pass, overlapping the unit array's
        // random-access latency with hashing of the following ops.  Data
        // faults (plane/op corruption) inject here, and the scrubber runs on
        // its cadence between blocks — both on the single owning thread.
        Batch block;
        block.reserve(batch_ops);
        std::uint64_t until_scrub = scrub_every;
        std::uint64_t delivered = 0;
        std::uint64_t base = 0;
        while (base < remaining) {
            const std::size_t want = static_cast<std::size_t>(
                std::min<std::uint64_t>(batch_ops, remaining - base));
            auto pulled = source.next_batch(want);
            if (!pulled.is_ok()) return pulled.status();
            const std::span<const Op> chunk = pulled.value();
            if (chunk.empty()) {
                // Contract violation guard: the source promised more ops
                // than it delivered without reporting why.
                return invalid_state(
                    "op source '" + std::string(source.name()) +
                    "' ended at op " + std::to_string(base) + " of " +
                    std::to_string(remaining));
            }
            const std::size_t n = chunk.size();
            block.clear();
            for (std::size_t i = 0; i < n; ++i) {
                const std::uint64_t idx = base + i;
                if constexpr (Faults::kEnabled) {
                    Op op = chunk[i];
                    target.inject_storage_faults(faults, idx);
                    target.inject_op_faults(faults, idx, op);
                    const Routed r = target.route(op);
                    target.prefetch_unit(r.bucket);
                    block.push_back(r);
                } else {
                    const Routed r = target.route(chunk[i]);
                    target.prefetch_unit(r.bucket);
                    block.push_back(r);
                }
            }
            apply_timed(std::span<const Routed>(block), results[0].s);
            ++delivered;
            base += n;
            if (scrub_every != 0) {
                // Carry the op remainder across blocks so the scrub fires
                // on exactly the same op counts as the sequential path: a
                // block of n ops may cross the cadence boundary several
                // times (scrub_every < n) or not at all, and the leftover
                // distance counts against the next block.
                std::uint64_t left = n;
                while (left >= until_scrub) {
                    left -= until_scrub;
                    results[0].scrub.merge(target.scrub_all());
                    until_scrub = scrub_every;
                }
                until_scrub -= left;
            }
            if constexpr (Ckpt::kEnabled) {
                if (base < remaining && ckpt.due(delivered)) {
                    BasicCheckpointCut<Stats> cut;
                    cut.cursor = base;
                    cut.delivered_batches = delivered;
                    cut.shard_stats =
                        std::span<const Stats>(&results[0].s, 1);
                    cut.stats = results[0].s;
                    cut.shards = W;
                    cut.threaded = false;
                    cut.scrub = results[0].scrub;
                    ckpt.emit(cut);
                    // Cooperative early stop (crash injection / supervisor
                    // shutdown): end the run at the cut just emitted, so
                    // the report covers exactly the checkpointed prefix.
                    if (ckpt.stop_requested()) break;
                }
            }
        }
    } else {
        // Per-shard batches under construction by the dispatcher.
        std::vector<Batch> open(W);
        for (auto& b : open) b.reserve(batch_ops);

        std::vector<std::unique_ptr<SpscQueue<Batch>>> queues;
        queues.reserve(W);
        for (std::size_t s = 0; s < W; ++s) {
            queues.push_back(std::make_unique<SpscQueue<Batch>>(
                cfg.queue_batches ? cfg.queue_batches : 64));
        }

        std::vector<detail::ShardCtl> ctl(W);
        // Shards the dispatcher has taken over; their ops are applied on the
        // dispatcher thread from the moment of takeover.
        std::vector<char> inlined(W, 0);
        // Dispatcher-side stats per shard (inline drains + takeover mode).
        std::vector<Stats> drained(W);

        const auto push_deadline = std::chrono::microseconds(
            cfg.robust.push_deadline_us ? cfg.robust.push_deadline_us : 500);
        const auto stall_timeout = std::chrono::microseconds(
            cfg.robust.stall_timeout_us ? cfg.robust.stall_timeout_us
                                        : 50'000);

        // Checkpoint bookkeeping: delivered batch count (the cadence unit),
        // the running snapshot epoch, and reusable per-shard scratch that
        // CheckpointCut::shard_stats aliases during emit.
        std::uint64_t delivered = 0;
        // A source failure mid-dispatch; checked after the workers join.
        Status stream_error = Status::ok();
        [[maybe_unused]] std::uint64_t snap_epoch = 0;
        [[maybe_unused]] std::vector<Stats> cut_stats(W);

        {
            std::vector<std::jthread> workers;
            workers.reserve(W);
            for (std::size_t s = 0; s < W; ++s) {
                workers.emplace_back([&target, &queues, &results, &plan,
                                      &ctl, &faults, &apply_timed,
                                      first_touch, scrub_every,
                                      pin = cfg.pin_workers, s] {
                    (void)faults;
                    if (pin) {
                        // Pin before the first touch below so the shard's
                        // pages fault in on — and stay local to — the core
                        // that will drain them.
                        results[s].pinned =
                            pin_current_thread(s) ? 1 : 0;
                    }
                    if (first_touch) {
                        // Fault this shard's slab sub-range in from the
                        // thread that will own it (first-touch placement).
                        const auto [lo, hi] = plan.range(s);
                        target.first_touch_range(lo, hi);
                    }
                    const auto [shard_lo, shard_hi] = plan.range(s);
                    Stats local{};
                    core::ScrubReport scrub_local;
                    Batch pending;
                    Batch next;
                    bool have_pending = false;
                    bool parked = false;
                    std::uint64_t popped = 0;
                    std::uint64_t ops_since_scrub = 0;
                    [[maybe_unused]] std::uint64_t snap_seen = 0;
                    const auto finish_pending = [&] {
                        if (!have_pending) return;
                        apply_timed(std::span<const Routed>(pending), local);
                        ops_since_scrub += pending.size();
                        have_pending = false;
                        ctl[s].progress.fetch_add(1,
                                                  std::memory_order_release);
                        if (scrub_every != 0 &&
                            ops_since_scrub >= scrub_every) {
                            // Scrub only this shard's own unit range: no
                            // other thread touches those units, so the
                            // scrub never races an update.
                            scrub_local.merge(
                                target.scrub(shard_lo, shard_hi));
                            ops_since_scrub = 0;
                        }
                    };
                    for (;;) {
                        // Batch-boundary checks: cooperative abandon and
                        // injected stalls.  Parking applies the prefetched
                        // pending batch first, so every popped batch is
                        // applied exactly once and the queue retains the
                        // untouched suffix for the dispatcher.
                        if (ctl[s].abandon.load(std::memory_order_acquire)) {
                            parked = true;
                            break;
                        }
                        if constexpr (Faults::kEnabled) {
                            if (faults.worker_parks(s, popped)) {
                                parked = true;
                                break;
                            }
                        }
                        if constexpr (Ckpt::kEnabled) {
                            const auto req = ctl[s].snap_req.load(
                                std::memory_order_acquire);
                            if (req != snap_seen) {
                                // Snapshot request.  The dispatcher stopped
                                // pushing before raising the epoch, so an
                                // empty queue means everything up to the
                                // cut has been seen: drain fully (keeping
                                // the prefetch pipeline), publish stats,
                                // ack, and hold at this boundary until the
                                // dispatcher releases the epoch.
                                while (queues[s]->try_pop(next)) {
                                    ++popped;
                                    target.prefetch_batch(
                                        std::span<const Routed>(next));
                                    finish_pending();
                                    pending = std::move(next);
                                    have_pending = true;
                                }
                                finish_pending();
                                results[s].s = local;
                                results[s].scrub = scrub_local;
                                ctl[s].snap_ack.store(
                                    req, std::memory_order_release);
                                int spin = 0;
                                while (ctl[s].snap_release.load(
                                           std::memory_order_acquire) < req) {
                                    if (ctl[s].abandon.load(
                                            std::memory_order_acquire)) {
                                        break;  // top of loop parks us
                                    }
                                    // Plane serialization can take a while:
                                    // pause-spin briefly, then yield.
                                    if (++spin <= 64) {
                                        cpu_relax();
                                    } else {
                                        std::this_thread::yield();
                                    }
                                }
                                snap_seen = req;
                                continue;
                            }
                        }
                        if (!queues[s]->try_pop(next)) {
                            if (queues[s]->closed()) {
                                if (!queues[s]->try_pop(next)) break;
                            } else {
                                std::this_thread::yield();
                                continue;
                            }
                        }
                        if constexpr (Faults::kEnabled) {
                            if (const auto us =
                                    faults.batch_delay_us(s, popped)) {
                                std::this_thread::sleep_for(
                                    std::chrono::microseconds(us));
                            }
                        }
                        ++popped;
                        // Warm the next batch's units, then drain the
                        // previous batch — prefetch one batch ahead.
                        target.prefetch_batch(std::span<const Routed>(next));
                        finish_pending();
                        pending = std::move(next);
                        have_pending = true;
                    }
                    finish_pending();
                    results[s].s = local;
                    results[s].scrub = scrub_local;
                    if (parked) {
                        // Publish park *after* the stats: the dispatcher
                        // acquires `parked` before assuming the consumer
                        // role, which orders it after everything above.
                        ctl[s].parked.store(true, std::memory_order_release);
                    }
                });
            }

            // Bounded-backoff wait for a worker's park acknowledgement:
            // sleep 1us doubling to ~1ms instead of busy-yielding, and
            // account the slept time (park_wait_us telemetry).  The wait is
            // still unbounded in total — see the cooperative-park note in
            // the file header — but it no longer burns a core while a slow
            // worker finishes its in-flight batch.
            const auto wait_for_park = [&](std::size_t s) {
                std::uint32_t sleep_us = 1;
                while (!ctl[s].parked.load(std::memory_order_acquire)) {
                    std::this_thread::sleep_for(
                        std::chrono::microseconds(sleep_us));
                    report.park_wait_us += sleep_us;
                    if (obs_park_us != nullptr) obs_park_us->add(sleep_us);
                    if (sleep_us < 1024) sleep_us <<= 1;
                }
            };

            // Drain a dead shard's queue on the dispatcher thread: batches
            // come out in FIFO order, exactly the suffix the worker never
            // applied, so per-unit arrival order is preserved.
            const auto takeover = [&](std::size_t s) {
                inlined[s] = 1;
                ++report.drained_inline;
                if (obs_drained != nullptr) obs_drained->add(1);
                Batch b;
                while (queues[s]->try_pop(b)) {
                    target.prefetch_batch(std::span<const Routed>(b));
                    apply_timed(std::span<const Routed>(b), drained[s]);
                }
            };

            // Deliver one full (or final partial) batch to shard s, walking
            // the degradation ladder on sustained backpressure: bounded
            // push → progress check → watchdog abandon → inline drain.
            const auto deliver = [&](std::size_t s, Batch& b) {
                ++delivered;
                if (!inlined[s]) {
                    auto last_progress =
                        ctl[s].progress.load(std::memory_order_acquire);
                    auto stalled_since = std::chrono::steady_clock::now();
                    for (;;) {
                        if (queues[s]->try_push_for(b, push_deadline)) {
                            if (!obs_depth.empty()) {
                                obs_depth[s]->set(static_cast<std::int64_t>(
                                    queues[s]->size_approx()));
                            }
                            return;
                        }
                        ++report.backpressure_waits;
                        if (obs_backpressure != nullptr) {
                            obs_backpressure->add(1);
                        }
                        if (ctl[s].parked.load(std::memory_order_acquire)) {
                            break;  // worker died on its own: recover now
                        }
                        const auto p =
                            ctl[s].progress.load(std::memory_order_acquire);
                        const auto now = std::chrono::steady_clock::now();
                        if (p != last_progress) {
                            last_progress = p;  // slow but alive: keep going
                            stalled_since = now;
                            continue;
                        }
                        if (cfg.robust.watchdog &&
                            now - stalled_since >= stall_timeout) {
                            ctl[s].abandon.store(true,
                                                 std::memory_order_release);
                            ++report.abandoned_workers;
                            if (obs_abandoned != nullptr) {
                                obs_abandoned->add(1);
                            }
                            wait_for_park(s);
                            break;
                        }
                    }
                    takeover(s);
                }
                // Inline mode: the dispatcher owns this shard; the queued
                // suffix was drained first, so order still holds.
                target.prefetch_batch(std::span<const Routed>(b));
                apply_timed(std::span<const Routed>(b), drained[s]);
            };

            // Dispatch: pull, hash, route, batch, push.
            bool stopped = false;
            std::uint64_t i = 0;
            while (i < remaining && !stopped) {
                const std::size_t want = static_cast<std::size_t>(
                    std::min<std::uint64_t>(batch_ops, remaining - i));
                auto pulled = source.next_batch(want);
                if (!pulled.is_ok()) {
                    stream_error = pulled.status();
                    break;
                }
                const std::span<const Op> chunk = pulled.value();
                if (chunk.empty()) {
                    stream_error = invalid_state(
                        "op source '" + std::string(source.name()) +
                        "' ended at op " + std::to_string(i) + " of " +
                        std::to_string(remaining));
                    break;
                }
                for (std::size_t k = 0; k < chunk.size() && !stopped; ++k) {
                    const Routed r = target.route(chunk[k]);
                    const std::size_t s = plan.owner(r.bucket);
                    open[s].push_back(r);
                    if (open[s].size() == batch_ops) {
                        deliver(s, open[s]);
                        open[s].clear();
                    }
                    ++i;
                    if constexpr (Ckpt::kEnabled) {
                        if (i < remaining && ckpt.due(delivered)) {
                            // Consistent cut.  Step 1: flush every open partial
                            // batch so the delivered set is exactly the op
                            // prefix [0, i) — batch sizes never affect stats
                            // or final planes, only throughput.
                            for (std::size_t t = 0; t < W; ++t) {
                                if (!open[t].empty()) {
                                    deliver(t, open[t]);
                                    open[t].clear();
                                }
                            }
                            // Step 2: quiesce each live worker.  The epoch is
                            // raised only after the flush, so a worker's
                            // "queue empty" means "cut reached".  A worker
                            // that never acks is handled with the same ladder
                            // as deliver: parked → takeover, or watchdog
                            // abandon → park → takeover.
                            const std::uint64_t epoch = ++snap_epoch;
                            for (std::size_t t = 0; t < W; ++t) {
                                if (!inlined[t]) {
                                    ctl[t].snap_req.store(
                                        epoch, std::memory_order_release);
                                }
                            }
                            for (std::size_t t = 0; t < W; ++t) {
                                if (inlined[t]) continue;
                                auto last_progress = ctl[t].progress.load(
                                    std::memory_order_acquire);
                                auto stalled_since =
                                    std::chrono::steady_clock::now();
                                for (;;) {
                                    if (ctl[t].snap_ack.load(
                                            std::memory_order_acquire) ==
                                        epoch) {
                                        break;
                                    }
                                    if (ctl[t].parked.load(
                                            std::memory_order_acquire)) {
                                        takeover(t);
                                        break;
                                    }
                                    const auto p = ctl[t].progress.load(
                                        std::memory_order_acquire);
                                    const auto now =
                                        std::chrono::steady_clock::now();
                                    if (p != last_progress) {
                                        last_progress = p;  // draining: alive
                                        stalled_since = now;
                                        continue;
                                    }
                                    if (cfg.robust.watchdog &&
                                        now - stalled_since >= stall_timeout) {
                                        ctl[t].abandon.store(
                                            true, std::memory_order_release);
                                        ++report.abandoned_workers;
                                        if (obs_abandoned != nullptr) {
                                            obs_abandoned->add(1);
                                        }
                                        wait_for_park(t);
                                        takeover(t);
                                        break;
                                    }
                                    std::this_thread::yield();
                                }
                            }
                            // Step 3: every shard is either ack-parked at its
                            // boundary or dispatcher-owned; nobody writes the
                            // target until release, so the sink may serialize
                            // its state.
                            BasicCheckpointCut<Stats> cut;
                            cut.cursor = i;
                            cut.delivered_batches = delivered;
                            for (std::size_t t = 0; t < W; ++t) {
                                cut_stats[t] = results[t].s;
                                cut_stats[t].merge(drained[t]);
                                cut.stats.merge(cut_stats[t]);
                                cut.scrub.merge(results[t].scrub);
                            }
                            cut.shard_stats = cut_stats;
                            cut.shards = W;
                            cut.threaded = true;
                            cut.backpressure_waits = report.backpressure_waits;
                            cut.park_wait_us = report.park_wait_us;
                            cut.drained_inline = report.drained_inline;
                            cut.abandoned_workers = report.abandoned_workers;
                            ckpt.emit(cut);
                            // Step 4: resume the quiesced workers.
                            for (std::size_t t = 0; t < W; ++t) {
                                ctl[t].snap_release.store(
                                    epoch, std::memory_order_release);
                            }
                            // Cooperative early stop (crash injection /
                            // supervisor shutdown).  Every open batch was
                            // flushed and every queue drained to the cut
                            // before the emit, so stopping here — never
                            // throwing, which would deadlock the parked
                            // workers against the jthread join — ends the run
                            // with a report covering exactly the checkpointed
                            // prefix [0, i): the close below wakes the
                            // workers into an empty, closed queue and they
                            // exit cleanly.
                            if (ckpt.stop_requested()) stopped = true;
                        }
                    }
                }  // chunk loop
            }
            // A source failure abandons the run: nothing more is delivered
            // (the in-flight prefix is already with the workers) and the
            // Status surfaces after the join below.
            for (std::size_t s = 0; s < W; ++s) {
                if (stream_error.is_ok() && !open[s].empty()) {
                    deliver(s, open[s]);
                }
                if (!inlined[s]) queues[s]->close();
            }
        }  // jthreads join here
        if (!stream_error.is_ok()) return stream_error;

        // Post-join sweep: a worker that parked during the final drain (or
        // one that died without ever filling its ring) left a queued suffix
        // behind; apply it now, in order, on this thread.
        for (std::size_t s = 0; s < W; ++s) {
            Batch b;
            bool leftovers = false;
            while (queues[s]->try_pop(b)) {
                leftovers = true;
                target.prefetch_batch(std::span<const Routed>(b));
                apply_timed(std::span<const Routed>(b), drained[s]);
            }
            if (leftovers && !inlined[s]) {
                ++report.drained_inline;
                if (obs_drained != nullptr) obs_drained->add(1);
            }
        }
        if (first_touch) target.mark_materialized();

        for (std::size_t s = 0; s < W; ++s) {
            report.stats.merge(drained[s]);
        }
    }

    for (std::size_t s = 0; s < W; ++s) {
        report.stats.merge(results[s].s);
        report.scrub.merge(results[s].scrub);
        report.pinned_workers += static_cast<std::size_t>(results[s].pinned);
    }
    return report;
}

/// Whole-span engine entry: the historical signature, now a SpanOpSource
/// wrapper over the streaming core.  A span source never fails, so the
/// Expected unwrap cannot throw.
template <typename Target, typename Faults, typename Ckpt>
BasicShardedReport<typename Target::Stats> replay_sharded_impl(
    Target& target, std::span<const typename Target::Op> ops,
    const ShardedConfig& cfg, const Faults& faults, Ckpt& ckpt) {
    SpanOpSource<typename Target::Op> source(ops);
    return replay_sharded_stream_impl(target, source, cfg, faults, ckpt)
        .value();
}

}  // namespace detail

/// Sharded replay. Bit-identical statistics and final cache state to
/// replay_sequential on the same (cache, ops) input, for any shard count —
/// including degraded runs where stalled workers were drained inline (the
/// takeover preserves per-unit arrival order).  `Faults` is the injection
/// hook set: fault::NoFaults (default) compiles every hook away;
/// fault::InjectedFaults applies a FaultPlan (worker stalls/delays in
/// threaded mode; plane/op corruption in inline mode, where a single thread
/// owns the cache).  For mid-run checkpoint emission use
/// replay_sharded_checkpointed (checkpoint.hpp), which shares this engine.
template <typename Cache, typename Key, typename Value,
          typename Faults = fault::NoFaults>
ShardedReport replay_sharded(Cache& cache,
                             std::span<const ReplayOp<Key, Value>> ops,
                             const ShardedConfig& cfg = {},
                             const Faults& faults = {}) {
    CacheReplayTarget<Cache, Key, Value> target(cache);
    detail::NoCheckpoint no_ckpt;
    return detail::replay_sharded_impl(target, ops, cfg, faults, no_ckpt);
}

/// Streaming counterpart of replay_sharded: pulls ReplayOp batches from any
/// op source (the source's value_type names the Key/Value pair), so the
/// cache-level engine also runs in O(batch) memory.  Fails when the source
/// fails mid-stream.
template <typename Cache, typename Source, typename Faults = fault::NoFaults>
[[nodiscard]] Expected<ShardedReport> replay_sharded_stream(
    Cache& cache, Source& source, const ShardedConfig& cfg = {},
    const Faults& faults = {}) {
    using Op = std::remove_cvref_t<typename Source::value_type>;
    using Traits = detail::ReplayOpTraits<Op>;
    CacheReplayTarget<Cache, typename Traits::key_type,
                      typename Traits::value_type>
        target(cache);
    detail::NoCheckpoint no_ckpt;
    return detail::replay_sharded_stream_impl(target, source, cfg, faults,
                                              no_ckpt);
}

/// Sequential reference replay of any ReplayTarget over any op source: one
/// op at a time on the calling thread, in stream order, pulled in
/// `pull_ops`-record batches.  Fails only when the source fails.
template <typename Target, typename Source>
[[nodiscard]] Expected<typename Target::Stats>
replay_target_sequential_stream(Target& target, Source& source,
                                std::size_t pull_ops = kSequentialPullOps) {
    target.materialize();
    typename Target::Stats stats{};
    for (;;) {
        auto pulled = source.next_batch(pull_ops ? pull_ops : 1);
        if (!pulled.is_ok()) return pulled.status();
        const auto chunk = pulled.value();
        if (chunk.empty()) break;
        for (const auto& op : chunk) {
            const typename Target::Routed r = target.route(op);
            target.apply_batch(
                std::span<const typename Target::Routed>(&r, 1), stats);
        }
    }
    return stats;
}

/// Sequential reference replay of any ReplayTarget: one op at a time on the
/// calling thread, in arrival order.  This is the oracle the sharded modes
/// are proven bit-identical against (tests/systems/).
template <typename Target>
typename Target::Stats replay_target_sequential(
    Target& target, std::span<const typename Target::Op> ops) {
    SpanOpSource<typename Target::Op> source(ops);
    return replay_target_sequential_stream(target, source).value();
}

/// Sharded replay of any ReplayTarget through the shared engine: inline
/// batched on one thread or threaded across shard workers per `cfg.mode`,
/// with the full degradation ladder (backpressure, watchdog takeover,
/// order-preserving inline drain) and fault hooks.  Statistics are
/// bit-identical to replay_target_sequential for any shard geometry.
template <typename Target, typename Faults = fault::NoFaults>
BasicShardedReport<typename Target::Stats> replay_target_sharded(
    Target& target, std::span<const typename Target::Op> ops,
    const ShardedConfig& cfg = {}, const Faults& faults = {}) {
    detail::NoCheckpoint no_ckpt;
    return detail::replay_sharded_impl(target, ops, cfg, faults, no_ckpt);
}

/// Streaming counterpart of replay_target_sharded: the same engine, pulling
/// `cfg.batch_ops`-record chunks from any op source instead of indexing a
/// resident span — the engine's footprint is O(batch), so an on-disk trace
/// far larger than RAM replays through a bounded-memory source
/// (op_source.hpp over trace::ChunkedFileSource).  Covers the ops
/// [source.tell(), source.size()); statistics and final target state are
/// bit-identical to the span entry point over the same op sequence.  Fails
/// when the source fails mid-stream; the target is then left in a valid but
/// partial state.
template <typename Target, typename Source, typename Faults = fault::NoFaults>
[[nodiscard]] Expected<BasicShardedReport<typename Target::Stats>>
replay_target_sharded_stream(Target& target, Source& source,
                             const ShardedConfig& cfg = {},
                             const Faults& faults = {}) {
    detail::NoCheckpoint no_ckpt;
    return detail::replay_sharded_stream_impl(target, source, cfg, faults,
                                              no_ckpt);
}

/// Adapter: a packet trace as replay operations (key = 5-tuple, value = wire
/// length — the LruTable/LruMon-style update stream).
[[nodiscard]] std::vector<ReplayOp<FlowKey, std::uint32_t>> ops_from_packets(
    std::span<const PacketRecord> trace);

}  // namespace p4lru::replay
