// Shard partitioning for the parallel replay engine.
//
// The bucket hash of ParallelCache already splits the key space into disjoint
// units; a ShardPlan carves the unit index range [0, units) into `shards`
// contiguous sub-ranges. Every bucket has exactly one owner shard, so two
// shards never touch the same P4LRU unit and replay needs no locks — the
// per-set-independence argument of limited-associativity caches.
#pragma once

#include <cstddef>
#include <utility>

#include "p4lru/fault/status.hpp"

namespace p4lru::replay {

class ShardPlan {
  public:
    /// Build a plan over `units` buckets with at most `shards_requested`
    /// shards (clamped to [1, units]). Throws on units == 0.
    static ShardPlan make(std::size_t units, std::size_t shards_requested);

    /// Non-throwing variant: kInvalidArgument instead of an exception on
    /// units == 0 (the typed-error path the hardened replay runtime uses).
    static Expected<ShardPlan> try_make(std::size_t units,
                                        std::size_t shards_requested);

    /// Owner shard of a bucket: floor(bucket * shards / units). The
    /// dispatcher pays this per op, so power-of-two unit counts (the common
    /// paper-scale 2^16..2^17 arrays) take a shift instead of a division.
    [[nodiscard]] std::size_t owner(std::size_t bucket) const noexcept {
        const auto scaled = static_cast<unsigned long long>(bucket) * shards_;
        return static_cast<std::size_t>(
            units_shift_ >= 0 ? scaled >> units_shift_ : scaled / units_);
    }

    /// Half-open unit range [first, last) owned by shard s.
    [[nodiscard]] std::pair<std::size_t, std::size_t> range(
        std::size_t s) const noexcept {
        return {first_of(s), first_of(s + 1)};
    }

    [[nodiscard]] std::size_t units() const noexcept { return units_; }
    [[nodiscard]] std::size_t shards() const noexcept { return shards_; }

  private:
    ShardPlan(std::size_t units, std::size_t shards)
        : units_(units), shards_(shards) {
        if ((units & (units - 1)) == 0) {
            int shift = 0;
            for (std::size_t u = units; u > 1; u >>= 1) ++shift;
            units_shift_ = shift;
        }
    }

    /// Smallest bucket owned by shard s: ceil(s * units / shards).
    [[nodiscard]] std::size_t first_of(std::size_t s) const noexcept {
        return static_cast<std::size_t>(
            (static_cast<unsigned long long>(s) * units_ + shards_ - 1) /
            shards_);
    }

    std::size_t units_;
    std::size_t shards_;
    int units_shift_ = -1;  ///< log2(units) when units is a power of two
};

/// Default worker count for auto-configured sharded replay: the machine's
/// hardware concurrency minus the dispatcher thread, clamped to [1, 8], with
/// a P4LRU_REPLAY_SHARDS environment override.
[[nodiscard]] std::size_t default_shards();

/// True when this machine can profitably run the threaded engine (more than
/// one hardware thread); false routes auto-mode replay to the inline batched
/// path. P4LRU_REPLAY_MODE=threaded|inline overrides the detection.
[[nodiscard]] bool threads_profitable();

}  // namespace p4lru::replay
