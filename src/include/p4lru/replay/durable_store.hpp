// Generational durable checkpoint store (DESIGN.md §12).
//
// checkpoint_io / target_checkpoint render a checkpoint to a sealed byte
// image; this layer owns getting that image onto disk so that a crash at
// ANY instant leaves the store recoverable:
//
//   * atomic install — the image is written to `<final>.tmp`, fsync'd,
//     renamed over the final name, and the directory entry is fsync'd.  A
//     crash before the rename leaves only a `.tmp` the discovery scan
//     ignores; a crash after it leaves a complete, sealed generation.
//     POSIX rename is atomic, so no reader ever observes a half-file at a
//     final name — and if the filesystem lies (or the image was torn some
//     other way), the per-section CRC seal catches it at read time.
//
//   * generations — each install lands at `gen-000001.ckpt`,
//     `gen-000002.ckpt`, ...; the newest `retain` generations are kept.
//     Pruning never deletes the newest generation that actually verifies,
//     even when fresher (torn) files exist above it, so the recovery ladder
//     cannot be left empty by a burst of crashes.
//
//   * recovery ladder — recover_newest walks generations newest→oldest,
//     parsing each with the caller's parser (format parse + CRC check +
//     whatever semantic validation the caller adds) and returns the first
//     one that passes, together with a typed fault::Status for every
//     fresher generation it had to skip.  No valid generation → cold
//     start, reported as found=false, never as an error.
//
// The store is format-agnostic: it moves SerializedCheckpoint images and
// raw bytes.  For inspection without knowing the Stats type (the p4lru_ckpt
// CLI, pruning's validity probe), verify_checkpoint_image /
// describe_checkpoint_image sniff the magic and check both formats
// (P4LRUCKP and P4LRUTGC) from their headers alone.
//
// Crash injection: install_with_crash executes the install protocol up to
// a fault::CrashPoint and then stops, leaving exactly the on-disk state a
// real death at that instant would — including deliberately torn images
// for the kTorn* points.  The supervisor (supervisor.hpp) drives it from a
// FaultPlan; the fuzz/crash sweeps in tests/fault prove every reachable
// state recovers.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "p4lru/fault/fault_plan.hpp"
#include "p4lru/fault/status.hpp"
#include "p4lru/obs/metrics.hpp"
#include "p4lru/replay/serialized_image.hpp"

namespace p4lru::replay {

struct DurableStoreConfig {
    std::size_t retain = 4;  ///< generations kept after each install (>= 1)
    bool sync = true;        ///< fsync file + directory on install (POSIX)
    /// Live metrics sink (obs/metrics.hpp); null = no instrumentation.
    /// Histograms store_install_ns (whole atomic install) and
    /// store_fsync_ns (file + directory fsync within it).
    obs::Registry* metrics = nullptr;
};

/// One installed generation file.
struct GenerationInfo {
    std::uint64_t seq = 0;  ///< monotonically increasing generation number
    std::string path;

    friend bool operator==(const GenerationInfo&,
                           const GenerationInfo&) = default;
};

/// A generation the recovery scan had to skip, and why (torn write,
/// flipped bit, wrong shape, ...).
struct GenerationRejection {
    std::uint64_t seq = 0;
    std::string path;
    Status status;
};

/// What install_with_crash actually did.
struct InstallOutcome {
    bool installed = false;  ///< a complete generation landed at gen.path
    bool crashed = false;    ///< the injected crash fired during this install
    GenerationInfo gen;      ///< valid when installed
};

/// Per-section CRC verdict of a sealed image (describe output).
struct SectionCheck {
    std::string name;
    std::uint64_t begin = 0;  ///< byte range [begin, end) of the section
    std::uint64_t end = 0;
    std::uint32_t stored = 0;
    std::uint32_t computed = 0;
    bool ok = false;
};

/// Header-level summary of a checkpoint image, either format; the
/// p4lru_ckpt CLI's `describe` output.
struct ImageInfo {
    std::string format;  ///< "P4LRUCKP" (cache) or "P4LRUTGC" (target)
    std::uint32_t version = 0;
    bool sealed = false;  ///< version carries the CRC seal footer
    std::uint32_t id = 0;  ///< storage layout id / target state id
    std::uint64_t fingerprint = 0;  ///< plane-geometry / state fingerprint
    std::uint64_t unit_count = 0;
    std::uint64_t cursor = 0;
    std::uint64_t shard_count = 0;
    std::uint64_t record_bytes = 0;   ///< bytes per stats record
    std::uint64_t payload_bytes = 0;  ///< plane / state image size
    std::uint64_t file_bytes = 0;
    std::vector<SectionCheck> sections;  ///< sealed images only
    Status verdict;  ///< overall structural + CRC verdict
};

/// Slurp a whole file; kIoError (path + errno) on any failure.
[[nodiscard]] Expected<std::vector<std::byte>> read_file_bytes(
    const std::string& path);

/// Write `bytes` to `path` atomically: temp file + (optional) fsync +
/// rename + directory fsync.  On failure the temp file is removed and the
/// final path is untouched.  A non-null `metrics` records the fsync time
/// (file + directory) into histogram store_fsync_ns.
[[nodiscard]] Status atomic_write_file(const std::string& path,
                                       const std::vector<std::byte>& bytes,
                                       bool sync = true,
                                       obs::Registry* metrics = nullptr);

/// Structural + CRC verification of a checkpoint image in either on-disk
/// format, from the header alone (no Stats type needed).  Ok iff a typed
/// reader of the right Stats type would accept the image's framing.
[[nodiscard]] Status verify_checkpoint_image(
    const std::vector<std::byte>& image, const std::string& origin);

/// Header-level description of a checkpoint image in either format,
/// including per-section CRC verdicts for sealed images.  Fails only when
/// the image is too short to carry a header or the magic is unknown;
/// deeper damage is reported through ImageInfo::verdict / sections.
[[nodiscard]] Expected<ImageInfo> describe_checkpoint_image(
    const std::vector<std::byte>& image, const std::string& origin);

class DurableStore {
  public:
    explicit DurableStore(std::string dir, DurableStoreConfig cfg = {})
        : dir_(std::move(dir)), cfg_(cfg) {
        if (cfg_.retain == 0) cfg_.retain = 1;
    }

    [[nodiscard]] const std::string& dir() const noexcept { return dir_; }
    [[nodiscard]] const DurableStoreConfig& config() const noexcept {
        return cfg_;
    }

    /// Create the store directory if missing (one level).
    [[nodiscard]] Status ensure_dir() const;

    /// Installed generations, ascending by sequence number.  `.tmp` files
    /// and foreign names are ignored; a missing directory lists as empty.
    [[nodiscard]] std::vector<GenerationInfo> list() const;

    /// Atomically install `image` as the next generation, then prune.
    [[nodiscard]] Expected<GenerationInfo> install(
        const SerializedCheckpoint& image);

    /// install() driven up to an injected crash: executes the atomic-
    /// install protocol until `crash` (nullptr = no crash, full install)
    /// and stops there, leaving the exact on-disk state a process death at
    /// that point would.  The torn points cut the image at section
    /// boundary `crash->arg` (mod the section count), so the remains are
    /// a strict prefix ending between sections — the hardest torn file to
    /// tell from a real one without the seal.
    [[nodiscard]] Expected<InstallOutcome> install_with_crash(
        const SerializedCheckpoint& image, const fault::CrashEvent* crash);

    /// Delete old generations: keeps the newest `retain`, plus — always —
    /// the newest generation whose image verifies, so a burst of torn
    /// installs can never prune the last recoverable state.  install()
    /// calls this; public for tests and the CLI.
    [[nodiscard]] Status prune() const;

    /// Walk generations newest→oldest and return the first one `parse`
    /// accepts.  `parse` is called as
    /// `Expected<T> parse(const std::vector<std::byte>& image,
    ///                    const std::string& origin)`
    /// and should layer semantic validation (does this checkpoint fit MY
    /// target?) on top of the format parse, so shape-mismatched
    /// generations are skipped like corrupt ones.  Unreadable or rejected
    /// generations are recorded in `rejected` (newest first) and skipped;
    /// an empty store (or one with no acceptable generation) is a cold
    /// start: found == false, not an error.
    template <typename Parse>
    [[nodiscard]] auto recover_newest(Parse&& parse) const {
        using ExpectedT = std::invoke_result_t<
            Parse&, const std::vector<std::byte>&, const std::string&>;
        using T = std::remove_cvref_t<
            decltype(std::declval<ExpectedT>().value())>;
        struct Result {
            bool found = false;
            T checkpoint{};
            GenerationInfo gen;
            std::vector<GenerationRejection> rejected;  ///< newest first
        } result;
        std::vector<GenerationInfo> gens = list();
        for (auto it = gens.rbegin(); it != gens.rend(); ++it) {
            Expected<std::vector<std::byte>> image =
                read_file_bytes(it->path);
            if (!image.is_ok()) {
                result.rejected.push_back(
                    {it->seq, it->path, image.status()});
                continue;
            }
            ExpectedT parsed = parse(image.value(), it->path);
            if (!parsed.is_ok()) {
                result.rejected.push_back(
                    {it->seq, it->path, parsed.status()});
                continue;
            }
            result.found = true;
            result.checkpoint = std::move(parsed).value();
            result.gen = *it;
            return result;
        }
        return result;
    }

  private:
    std::string dir_;
    DurableStoreConfig cfg_;
};

}  // namespace p4lru::replay
