// The ReplayTarget concept: what the sharded replay engine drives.
//
// PRs 1-6 built a hardened parallel replay runtime — sharded dispatch over
// SPSC queues, prefetch pipelining, a degradation ladder for dead workers,
// consistent-cut checkpointing, deterministic fault injection — but wired
// it to one consumer, the bare core::ParallelCache.  This header names the
// actual contract between the engine and the thing it drives, so the three
// paper systems (LRUmon, LRUtable, LRUindex) run through the *same* engine
// with bit-identical reports across every mode.
//
// A ReplayTarget partitions its state into `unit_count()` disjoint units
// ("buckets"); the engine carves that range into contiguous per-shard
// sub-ranges (ShardPlan) and guarantees that each bucket's ops are applied
// by exactly one owner, in arrival order.  Everything else — what an op
// means, what the statistics count — belongs to the target.
//
// Requirements (DESIGN.md §11 has the full table):
//
//   types     Op          one logical trace operation
//             Routed      Op + owning bucket (`.bucket`, uint32); hashed
//                         exactly once by route()
//             Stats       mergeable statistics: default-constructed ==
//                         "empty", merge() associative/commutative over
//                         disjoint op sets, operator==, and an `ops`
//                         counter equal to the ops applied
//   routing   route(op)               -> Routed (pure, no state touched)
//             unit_count()            -> number of buckets
//   apply     apply_batch(span, st)   apply routed ops in span order;
//                                     every engine mode preserves per-
//                                     bucket arrival order, so a target is
//                                     deterministic iff each op's effect
//                                     depends only on its bucket's state
//             prefetch_unit(b)        best-effort cache warm (may no-op)
//             prefetch_batch(span)    likewise for a whole batch
//   planes    materialized()/materialize()/first_touch_range(lo,hi)/
//             mark_materialized()     deferred-init first-touch protocol
//                                     (NUMA placement); eagerly-built
//                                     targets return materialized()==true
//             scrub(lo,hi)/scrub_all()-> core::ScrubReport integrity pass
//                                     over a bucket range (may be empty)
//   snapshot  state_id()/state_fingerprint()  static layout guards
//             save_state(out)         serialize the full mutable state
//             load_state(span)->bool  restore it (shape mismatch -> false)
//   faults    inject_op_faults(faults, idx, op&)      pre-route op
//                                                     corruption hook
//             inject_storage_faults(faults, idx)      plane corruption
//                                                     hook; both run only
//                                                     on single-owner
//                                                     paths (sequential /
//                                                     inline)
//
// Mergeability invariant: a target's Stats must be a sum of per-op
// contributions where each contribution depends only on the op's own
// bucket's history.  Then per-shard Stats over disjoint bucket sets merge
// to exactly the sequential totals, whatever the shard geometry — the
// property every equivalence suite (tests/systems/) checks.  Derived
// quantities (rates, averages) must live *outside* Stats and be computed
// from the merged integer sums, never merged themselves.
#pragma once

#include <concepts>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "p4lru/core/unit_storage.hpp"
#include "p4lru/fault/fault_plan.hpp"
#include "p4lru/replay/replay.hpp"

namespace p4lru::replay {

/// Statistics the engine can split across shards and re-merge losslessly.
template <typename S>
concept MergeableStats =
    std::default_initializable<S> && std::equality_comparable<S> &&
    requires(S a, const S b) {
        a.merge(b);
        { b.ops } -> std::convertible_to<std::uint64_t>;
    };

/// The contract between detail::replay_sharded_impl and the thing it
/// drives.  Fault hooks are template member functions and therefore not
/// expressible as concept requirements in general; they are checked against
/// the fault::NoFaults instantiation, which every Faults parameter must
/// structurally match.
template <typename T>
concept ReplayTarget =
    MergeableStats<typename T::Stats> &&
    requires(T t, const T ct, const typename T::Op& op,
             typename T::Op& mutable_op, const typename T::Routed& routed,
             std::span<const typename T::Routed> batch,
             typename T::Stats& stats, std::size_t lo, std::size_t hi,
             std::vector<std::byte>& out, std::span<const std::byte> in,
             const fault::NoFaults& no_faults) {
        // routing
        { ct.unit_count() } -> std::convertible_to<std::size_t>;
        { ct.route(op) } -> std::same_as<typename T::Routed>;
        { routed.bucket } -> std::convertible_to<std::uint32_t>;
        // apply + prefetch
        t.apply_batch(batch, stats);
        ct.prefetch_unit(std::uint32_t{0});
        ct.prefetch_batch(batch);
        // first-touch plane
        { ct.materialized() } -> std::convertible_to<bool>;
        t.materialize();
        t.first_touch_range(lo, hi);
        t.mark_materialized();
        // integrity plane
        { t.scrub(lo, hi) } -> std::same_as<core::ScrubReport>;
        { t.scrub_all() } -> std::same_as<core::ScrubReport>;
        // snapshot plane
        { T::state_id() } -> std::convertible_to<std::uint32_t>;
        { T::state_fingerprint() } -> std::convertible_to<std::uint64_t>;
        ct.save_state(out);
        { t.load_state(in) } -> std::convertible_to<bool>;
        // fault hooks (checked on the NoFaults instantiation)
        t.inject_op_faults(no_faults, std::uint64_t{0}, mutable_op);
        t.inject_storage_faults(no_faults, std::uint64_t{0});
    };

}  // namespace p4lru::replay
