// Crash-recovery supervisor for checkpointed target replays (DESIGN.md
// §12).
//
// run_supervised drives replay_target_checkpointed /
// resume_target_checkpointed for any ReplayTarget with a checkpoint
// cadence, installing every emitted checkpoint into a DurableStore as a
// sealed generation.  When a run dies — in these tests, deterministically,
// at a fault::CrashPoint; in production, by any process death whose
// remains the store's recovery ladder can judge — the supervisor starts a
// fresh attempt: it scans the store newest→oldest, skips every torn /
// bit-flipped / shape-mismatched generation (each skip recorded with its
// typed Status), restores the newest valid one and replays the suffix.
// Attempts are bounded with exponential backoff; a run that completes
// produces stats bit-identical to an uninterrupted run, because every
// generation is a consistent cut and resume replays exactly the ops the
// cut excluded.
//
// Crash injection never unwinds through the engine (workers parked at a
// quiesce would deadlock the jthread join): the install sink asks the
// dispatch loop to stop cooperatively via the checkpointer's
// stop_requested() hook, so a "crash" ends the run at the cut that was
// just (or just not) installed — exactly the prefix a killed process would
// leave behind.
//
// Crash ordinals count checkpoint-install attempts cumulatively across
// recovery attempts: a crash scheduled at ordinal k fires once, and the
// retry that follows starts counting at k+1, so every attempt makes
// progress and a plan with N crashes needs at most N+1 attempts.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "p4lru/fault/fault_plan.hpp"
#include "p4lru/fault/status.hpp"
#include "p4lru/obs/metrics.hpp"
#include "p4lru/replay/durable_store.hpp"
#include "p4lru/replay/target_checkpoint.hpp"

namespace p4lru::replay {

struct SupervisorConfig {
    std::uint64_t every_batches = 8;  ///< checkpoint-install cadence
    std::size_t max_attempts = 8;     ///< runs started before giving up
    std::uint64_t backoff_base_us = 100;
    std::uint64_t backoff_cap_us = 10'000;
    bool sleep_backoff = false;  ///< actually sleep (tests only account)
    /// Live metrics sink (obs/metrics.hpp); null = no instrumentation.
    /// Counters supervisor_attempts/crashes/installs, gauge
    /// supervisor_backoff_us (latest delay), histogram
    /// supervisor_serialize_ns (checkpoint image serialization).  Passed
    /// through neither to the engine nor the store — set their own hooks
    /// (ShardedConfig::metrics, DurableStoreConfig::metrics) to the same
    /// registry for the full picture.
    obs::Registry* metrics = nullptr;
};

/// Backoff before retry attempt `attempt` (1-based): min(base << (attempt-1),
/// cap), saturating.
[[nodiscard]] std::uint64_t backoff_delay_us(const SupervisorConfig& cfg,
                                             std::size_t attempt);

/// Sleep helper behind SupervisorConfig::sleep_backoff.
void sleep_us(std::uint64_t us);

/// The outcome of a supervised run that eventually completed.
template <typename Stats>
struct SupervisedReport {
    BasicShardedReport<Stats> report;  ///< as if never interrupted
    std::size_t attempts = 0;          ///< runs started (1 == no crash)
    std::size_t crashes = 0;           ///< injected crashes survived
    std::uint64_t installs = 0;        ///< checkpoint installs attempted
    std::uint64_t backoff_us = 0;      ///< total retry backoff accounted
    std::uint64_t resumed_from_gen = 0;  ///< newest gen restored (0 = only
                                         ///< cold starts)
    std::vector<GenerationRejection> rejected;  ///< every skipped gen
};

namespace detail {

/// The supervisor's checkpoint sink: serialize, consult the crash plan at
/// this install ordinal, drive the store's (possibly crashing) install,
/// and — on a crash or an install IO failure — ask the dispatch loop to
/// stop at the cut.
template <typename Stats>
class CrashingStoreSink {
  public:
    CrashingStoreSink(DurableStore& store, const fault::FaultPlan* plan,
                      std::uint64_t& ordinal,
                      obs::Histogram* serialize_ns = nullptr)
        : store_(&store), plan_(plan), ordinal_(&ordinal),
          serialize_ns_(serialize_ns) {}

    void operator()(TargetCheckpoint<Stats>&& cp) {
        const std::uint64_t ordinal = (*ordinal_)++;
        const fault::CrashEvent* crash =
            plan_ != nullptr ? plan_->crash_at(ordinal) : nullptr;
        SerializedCheckpoint image;
        if (serialize_ns_ != nullptr) {
            const auto t0 = std::chrono::steady_clock::now();
            image = serialize_target_checkpoint(cp);
            serialize_ns_->record(static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    std::chrono::steady_clock::now() - t0)
                    .count()));
        } else {
            image = serialize_target_checkpoint(cp);
        }
        Expected<InstallOutcome> out =
            store_->install_with_crash(image, crash);
        if (!out.is_ok()) {
            error_ = out.status();
            stop_ = true;
            return;
        }
        if (out.value().crashed) {
            crashed_ = true;
            stop_ = true;
        }
    }

    [[nodiscard]] bool stop_requested() const noexcept { return stop_; }
    [[nodiscard]] bool crashed() const noexcept { return crashed_; }
    [[nodiscard]] const Status& error() const noexcept { return error_; }

  private:
    DurableStore* store_;
    const fault::FaultPlan* plan_;
    std::uint64_t* ordinal_;
    obs::Histogram* serialize_ns_ = nullptr;
    bool stop_ = false;
    bool crashed_ = false;
    Status error_ = Status::ok();
};

}  // namespace detail

/// Stream an op source through a checkpointed, store-backed,
/// crash-surviving replay.
///
/// `make_target` is called once per attempt and must return a *fresh*
/// target (by value or by reference) — a crashed attempt's in-memory state
/// is abandoned, exactly as a process death would abandon it; all carried
/// state comes back through the store.  Each attempt repositions the
/// source itself: a cold start seeks to 0, a recovery resumes by seeking
/// to the restored checkpoint's cursor, so an on-disk source re-reads only
/// the suffix bytes after a crash.  `plan` schedules deterministic crashes
/// (pass an empty plan — or one without crash events — for a plain durable
/// run); `faults` is the usual engine fault hook set and composes freely.
///
/// Completes with a SupervisedReport whose `report` is bit-identical to an
/// uninterrupted replay of the same ops, or fails with kUnavailable after
/// `max_attempts` runs (last failure cause appended).  A seek or
/// mid-stream source failure fails the attempt like any other failure —
/// and retries, since trace I/O errors may be transient.
template <typename TargetFactory, typename Source,
          typename Faults = fault::NoFaults>
[[nodiscard]] auto run_supervised_stream(TargetFactory&& make_target,
                                         Source& source,
                                         const ShardedConfig& cfg,
                                         DurableStore& store,
                                         const SupervisorConfig& sup = {},
                                         const fault::FaultPlan& plan = {},
                                         const Faults& faults = {}) {
    using Target = std::remove_reference_t<decltype(make_target())>;
    using Stats = typename Target::Stats;
    using Report = SupervisedReport<Stats>;

    Report out;
    std::uint64_t install_ordinal = 0;
    Status last_failure = Status::ok();
    const std::size_t max_attempts = sup.max_attempts ? sup.max_attempts : 1;

    obs::Counter* obs_attempts = nullptr;
    obs::Counter* obs_crashes = nullptr;
    obs::Counter* obs_installs = nullptr;
    obs::Gauge* obs_backoff = nullptr;
    obs::Histogram* obs_serialize = nullptr;
    if (sup.metrics != nullptr) {
        obs_attempts = sup.metrics->counter("supervisor_attempts");
        obs_crashes = sup.metrics->counter("supervisor_crashes");
        obs_installs = sup.metrics->counter("supervisor_installs");
        obs_backoff = sup.metrics->gauge("supervisor_backoff_us");
        obs_serialize = sup.metrics->histogram("supervisor_serialize_ns");
    }

    while (out.attempts < max_attempts) {
        if (out.attempts > 0) {
            const std::uint64_t delay = backoff_delay_us(sup, out.attempts);
            out.backoff_us += delay;
            if (obs_backoff != nullptr) {
                obs_backoff->set(static_cast<std::int64_t>(delay));
            }
            if (sup.sleep_backoff) sleep_us(delay);
        }
        ++out.attempts;
        if (obs_attempts != nullptr) obs_attempts->add(1);

        decltype(auto) target_holder = make_target();
        Target& target = target_holder;

        // Recovery ladder: newest generation that parses, CRC-verifies AND
        // fits this target over this op stream.  Semantic validation runs
        // inside the scan so a shape-mismatched generation is skipped like
        // a torn one instead of failing the attempt.
        auto recovery = store.recover_newest(
            [&target, n = static_cast<std::size_t>(source.size())](
                const std::vector<std::byte>& image,
                const std::string& origin)
                -> Expected<TargetCheckpoint<Stats>> {
                Expected<TargetCheckpoint<Stats>> cp =
                    parse_target_checkpoint<Stats>(image, origin);
                if (!cp.is_ok()) return cp;
                if (Status st =
                        validate_target_checkpoint(target, n, cp.value());
                    !st.is_ok()) {
                    return st;
                }
                return cp;
            });
        for (auto& r : recovery.rejected) {
            out.rejected.push_back(std::move(r));
        }

        detail::CrashingStoreSink<Stats> sink(store, &plan, install_ordinal,
                                              obs_serialize);
        const std::uint64_t before = install_ordinal;
        BasicShardedReport<Stats> rep;
        Expected<BasicShardedReport<Stats>> run = Status::ok();
        if (recovery.found) {
            out.resumed_from_gen = recovery.gen.seq;
            // The resume seeks the source to the checkpoint cursor itself.
            run = resume_target_checkpointed_stream(
                target, source, recovery.checkpoint, cfg, sup.every_batches,
                sink, faults);
        } else if (Status st = source.seek(0); !st.is_ok()) {
            run = st;
        } else {
            run = replay_target_checkpointed_stream(target, source, cfg,
                                                    sup.every_batches, sink,
                                                    faults);
        }
        if (!run.is_ok()) {
            // Either a state-image/target disagreement (load_state refusal
            // — the scan validated the checkpoint, so the bad generation
            // ages out of the ladder via fresher installs) or a source
            // seek/stream failure: count it as a failed attempt and retry.
            last_failure = run.status();
            out.installs += install_ordinal - before;
            if (obs_installs != nullptr) {
                obs_installs->add(install_ordinal - before);
            }
            continue;
        }
        rep = std::move(run).value();
        out.installs += install_ordinal - before;
        if (obs_installs != nullptr) {
            obs_installs->add(install_ordinal - before);
        }

        if (!sink.error().is_ok()) {
            last_failure = sink.error();
            continue;
        }
        if (sink.crashed()) {
            ++out.crashes;
            if (obs_crashes != nullptr) obs_crashes->add(1);
            last_failure =
                Status(ErrorCode::kUnavailable,
                       "supervised run crashed at install ordinal " +
                           std::to_string(install_ordinal - 1));
            continue;
        }
        out.report = std::move(rep);
        return Expected<Report>(std::move(out));
    }
    return Expected<Report>(Status(
        ErrorCode::kUnavailable,
        "supervised replay gave up after " + std::to_string(out.attempts) +
            " attempts; last failure: " + last_failure.to_string()));
}

/// Run `ops` through a checkpointed, store-backed, crash-surviving replay.
/// A SpanOpSource wrapper over run_supervised_stream (cold starts "seek"
/// the span back to 0; resumes skip the prefix).
template <typename TargetFactory, typename Op,
          typename Faults = fault::NoFaults>
[[nodiscard]] auto run_supervised(TargetFactory&& make_target,
                                  std::span<const Op> ops,
                                  const ShardedConfig& cfg,
                                  DurableStore& store,
                                  const SupervisorConfig& sup = {},
                                  const fault::FaultPlan& plan = {},
                                  const Faults& faults = {}) {
    SpanOpSource<Op> source(ops);
    return run_supervised_stream(
        std::forward<TargetFactory>(make_target), source, cfg, store, sup,
        plan, faults);
}

}  // namespace p4lru::replay
