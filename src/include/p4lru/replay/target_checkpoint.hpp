// Checkpoint/resume for any ReplayTarget (DESIGN.md §11, §12).
//
// The cache-specific checkpoint layer (checkpoint.hpp) snapshots storage
// planes; this layer generalizes the same consistent-cut protocol to every
// model of the ReplayTarget concept: the dispatcher quiesces the workers at
// a dispatch boundary (replay.hpp, ShardCtl::snap_*), and the cut is
// materialized through the target's snapshot plane — `save_state` for the
// full mutable state, `state_id`/`state_fingerprint` as the shape guards
// that stop a checkpoint from being restored into a differently-configured
// target.  Resuming is "load state, replay the suffix": the suffix may use
// any shard geometry, because a cut is a clean op prefix and per-bucket
// arrival order is all that bit-exactness needs.
//
// On-disk format v2 (magic "P4LRUTGC", little-endian), offsets in bytes:
//
//   off  size  field
//     0     8  magic "P4LRUTGC"
//     8     4  version (u32, = 2)
//    12     4  target state id (Target::state_id())
//    16     8  target state fingerprint
//    24     8  unit count
//    32     8  op cursor
//    40     8  delivered batches
//    48     8  backpressure waits
//    56     8  park wait (us)
//    64     8  shards drained inline
//    72     8  workers abandoned
//    80    24  ScrubReport (scanned, corrupt, repaired; u64 each)
//   104     4  stats record size R (u32, = sizeof(Stats))
//   108     4  shard count S (u32)
//   112     8  state image size P
//   120     R  merged Stats record
//   120+R  R*S per-shard Stats slices
//   ...    P   raw target state bytes
//   ...then the 16-byte seal footer:
//   +0      4  crc_header (CRC32 over bytes [0, 120))
//   +4      4  crc_stats  (CRC32 over the (1+S)*R stats-record bytes)
//   +8      4  crc_state  (CRC32 over the P state bytes)
//   +12     4  crc_footer (CRC32 over the 12 preceding footer bytes)
//
// Version 1 is the same layout without the seal footer; the reader still
// accepts it, with structural checks only.  Stats records are raw memory
// images (the Stats type must be trivially copyable, like the plane bytes
// in checkpoint_io); the record size field plus the state id/fingerprint
// reject a file written by a different Stats layout or target
// configuration.  Reading is hardened like trace_io / checkpoint_io:
// read_target_checkpoint_checked returns a typed Status carrying the byte
// offset where the file stopped making sense, and cross-checks the shard
// count and state size against the actual file size *before* allocating,
// so a flipped bit in a count field cannot drive a huge allocation.  Every
// strict prefix of a valid file is rejected, and in a v2 file any
// single-bit flip trips exactly one of magic/version compare, the size
// cross-check, or one of the four CRCs (durable_store_test proves both by
// sweep).  IO failures carry the offending path plus errno/strerror.
//
// write_target_checkpoint itself is NOT atomic; for crash-safe installs go
// through durable_store.hpp (temp file + fsync + atomic rename into a
// generational store directory), and for automatic restart-from-newest-
// valid-generation use supervisor.hpp.
#pragma once

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <span>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "p4lru/common/hash.hpp"
#include "p4lru/fault/status.hpp"
#include "p4lru/replay/replay_target.hpp"
#include "p4lru/replay/serialized_image.hpp"

namespace p4lru::replay {

/// A resumable snapshot of an in-progress target replay.  Invariants
/// (checked on resume): stats.ops == cursor, and the per-shard slices —
/// when present — sum to the totals (a checkpoint rebased across a resume
/// carries no slices, because the suffix split cannot be combined with the
/// prefix's).
template <typename Stats>
struct TargetCheckpoint {
    std::uint64_t cursor = 0;    ///< ops applied before the snapshot
    Stats stats{};               ///< merged statistics over ops [0, cursor)
    std::size_t unit_count = 0;  ///< shape guard for resume
    std::uint32_t state_id = 0;  ///< Target::state_id() shape guard
    std::uint64_t state_fingerprint = 0;  ///< Target::state_fingerprint()
    std::vector<Stats> shard_stats;       ///< per-shard split of stats
    std::uint64_t delivered_batches = 0;
    std::uint64_t backpressure_waits = 0;
    std::uint64_t park_wait_us = 0;
    std::uint64_t drained_inline = 0;
    std::uint64_t abandoned_workers = 0;
    core::ScrubReport scrub{};
    std::vector<std::byte> state;  ///< target.save_state() image
};

/// Materialize a quiesced dispatch cut into an owning checkpoint.  Runs on
/// the dispatcher thread while every worker is parked at its batch
/// boundary, so the state read is race-free.
template <typename Target>
[[nodiscard]] TargetCheckpoint<typename Target::Stats>
take_target_checkpoint(const Target& target,
                       const BasicCheckpointCut<typename Target::Stats>& cut) {
    TargetCheckpoint<typename Target::Stats> cp;
    cp.cursor = cut.cursor;
    cp.stats = cut.stats;
    cp.unit_count = target.unit_count();
    cp.state_id = Target::state_id();
    cp.state_fingerprint = Target::state_fingerprint();
    cp.shard_stats.assign(cut.shard_stats.begin(), cut.shard_stats.end());
    cp.delivered_batches = cut.delivered_batches;
    cp.backpressure_waits = cut.backpressure_waits;
    cp.park_wait_us = cut.park_wait_us;
    cp.drained_inline = cut.drained_inline;
    cp.abandoned_workers = cut.abandoned_workers;
    cp.scrub = cut.scrub;
    target.save_state(cp.state);
    return cp;
}

namespace detail {

/// The target-generic counterpart of DispatchCheckpointer (checkpoint.hpp):
/// trips the dispatch loop's trigger every `every` delivered batches and
/// converts the quiesced cut into a TargetCheckpoint for the sink.  If the
/// sink exposes `stop_requested()`, the dispatch loop polls it after every
/// emitted checkpoint and winds down cooperatively — that is how the crash
/// injector (fault::CrashPoint) and the supervisor stop a run at a cut
/// without unwinding through the worker join.
template <typename Target, typename Sink>
class TargetDispatchCheckpointer {
  public:
    static constexpr bool kEnabled = true;

    TargetDispatchCheckpointer(Target& target, std::uint64_t every,
                               Sink& sink)
        : target_(&target), every_(every), next_(every), sink_(&sink) {}

    [[nodiscard]] bool due(std::uint64_t delivered) const noexcept {
        return every_ != 0 && delivered >= next_;
    }

    void emit(const BasicCheckpointCut<typename Target::Stats>& cut) {
        // Re-arm relative to the actual cut (flushing partial batches may
        // have delivered past the nominal cadence point).
        next_ = cut.delivered_batches + every_;
        (*sink_)(take_target_checkpoint(*target_, cut));
    }

    [[nodiscard]] bool stop_requested() const {
        if constexpr (requires(const Sink& s) { s.stop_requested(); }) {
            return sink_->stop_requested();
        } else {
            return false;
        }
    }

  private:
    Target* target_;
    std::uint64_t every_;
    std::uint64_t next_;
    Sink* sink_;
};

}  // namespace detail

/// Streaming sharded target replay that emits a TargetCheckpoint into
/// `sink` every `every_batches` delivered batches (sink(TargetCheckpoint&&));
/// 0 disables emission.  Checkpoint cursors are relative to the source's
/// position at entry.  Statistics and final target state stay bit-identical
/// to replay_target_sharded_stream — the quiesce only decides *when* work
/// happens, never what — and the fault hooks compose.  A sink exposing a
/// `stop_requested()` member can end the run early at a cut boundary; the
/// returned report then covers the prefix up to the last emitted cut plus
/// any batches already in flight.
template <typename Target, typename Source, typename Sink,
          typename Faults = fault::NoFaults>
[[nodiscard]] Expected<BasicShardedReport<typename Target::Stats>>
replay_target_checkpointed_stream(Target& target, Source& source,
                                  const ShardedConfig& cfg,
                                  std::uint64_t every_batches, Sink&& sink,
                                  const Faults& faults = {}) {
    detail::TargetDispatchCheckpointer<Target, std::remove_reference_t<Sink>>
        ckpt(target, every_batches, sink);
    return detail::replay_sharded_stream_impl(target, source, cfg, faults,
                                              ckpt);
}

/// Sharded target replay that emits a TargetCheckpoint into `sink` every
/// `every_batches` delivered batches.  A SpanOpSource wrapper over
/// replay_target_checkpointed_stream (a span source never fails).
template <typename Target, typename Sink, typename Faults = fault::NoFaults>
BasicShardedReport<typename Target::Stats> replay_target_checkpointed(
    Target& target, std::span<const typename Target::Op> ops,
    const ShardedConfig& cfg, std::uint64_t every_batches, Sink&& sink,
    const Faults& faults = {}) {
    SpanOpSource<typename Target::Op> source(ops);
    return replay_target_checkpointed_stream(target, source, cfg,
                                             every_batches,
                                             std::forward<Sink>(sink),
                                             faults)
        .value();
}

/// Shape/consistency validation shared by the resume entry points and the
/// supervisor's recovery scan: does `cp` describe a run of THIS target over
/// a stream of `op_count` ops?  kInvalidState on any mismatch.
template <typename Target>
[[nodiscard]] Status validate_target_checkpoint(
    const Target& target, std::size_t op_count,
    const TargetCheckpoint<typename Target::Stats>& cp) {
    using Stats = typename Target::Stats;
    if (cp.state_id != Target::state_id() ||
        cp.state_fingerprint != Target::state_fingerprint()) {
        return invalid_state(
            "target checkpoint state id " + std::to_string(cp.state_id) +
            " / fingerprint " + std::to_string(cp.state_fingerprint) +
            " does not match this target (id " +
            std::to_string(Target::state_id()) + ", fingerprint " +
            std::to_string(Target::state_fingerprint()) + ")");
    }
    if (cp.unit_count != target.unit_count()) {
        return invalid_state("target checkpoint unit count " +
                             std::to_string(cp.unit_count) +
                             " != target unit count " +
                             std::to_string(target.unit_count()));
    }
    if (cp.cursor > op_count) {
        return invalid_state("target checkpoint cursor " +
                             std::to_string(cp.cursor) +
                             " beyond op stream of " +
                             std::to_string(op_count));
    }
    if (static_cast<std::uint64_t>(cp.stats.ops) != cp.cursor) {
        return invalid_state("target checkpoint stats cover " +
                             std::to_string(cp.stats.ops) +
                             " ops but cursor is " +
                             std::to_string(cp.cursor));
    }
    if (!cp.shard_stats.empty()) {
        Stats sum{};
        for (const auto& s : cp.shard_stats) sum.merge(s);
        if (!(sum == cp.stats)) {
            return invalid_state(
                "target checkpoint per-shard statistics do not sum to its "
                "totals");
        }
    }
    return Status::ok();
}

/// Restore a target checkpoint into `target` and stream the remaining ops
/// [cp.cursor, end) with `cfg` — the resume *seeks* the source to the
/// cursor instead of re-reading the prefix, and may use a different shard
/// count, batch size or mode than the interrupted run.  The returned report
/// merges the checkpoint's statistics and telemetry, so it reads as if the
/// run had never been interrupted.  Fails with kInvalidState on any shape
/// mismatch or when the checkpoint is internally inconsistent, and with
/// the source's own Status on a seek or mid-stream failure.
template <typename Target, typename Source, typename Faults = fault::NoFaults>
[[nodiscard]] Expected<BasicShardedReport<typename Target::Stats>>
resume_target_sharded_stream(
    Target& target, Source& source,
    const TargetCheckpoint<typename Target::Stats>& cp,
    const ShardedConfig& cfg = {}, const Faults& faults = {}) {
    using Stats = typename Target::Stats;
    if (Status st = validate_target_checkpoint(
            target, static_cast<std::size_t>(source.size()), cp);
        !st.is_ok()) {
        return st;
    }
    if (!target.load_state(cp.state)) {
        return invalid_state("target checkpoint state image of " +
                             std::to_string(cp.state.size()) +
                             " bytes does not match this target's shape");
    }
    if (Status st = source.seek(cp.cursor); !st.is_ok()) {
        return st;
    }
    auto streamed = replay_target_sharded_stream(target, source, cfg, faults);
    if (!streamed.is_ok()) return streamed.status();
    BasicShardedReport<Stats> rep = std::move(streamed).value();
    rep.stats.merge(cp.stats);
    rep.backpressure_waits += cp.backpressure_waits;
    rep.park_wait_us += cp.park_wait_us;
    rep.drained_inline += static_cast<std::size_t>(cp.drained_inline);
    rep.abandoned_workers += static_cast<std::size_t>(cp.abandoned_workers);
    rep.scrub.merge(cp.scrub);
    return rep;
}

/// Restore a target checkpoint into `target` and replay the remaining ops
/// [cp.cursor, end).  A SpanOpSource wrapper over
/// resume_target_sharded_stream.
template <typename Target, typename Faults = fault::NoFaults>
[[nodiscard]] Expected<BasicShardedReport<typename Target::Stats>>
resume_target_sharded(Target& target,
                      std::span<const typename Target::Op> ops,
                      const TargetCheckpoint<typename Target::Stats>& cp,
                      const ShardedConfig& cfg = {},
                      const Faults& faults = {}) {
    SpanOpSource<typename Target::Op> source(ops);
    return resume_target_sharded_stream(target, source, cp, cfg, faults);
}

namespace detail {

/// Wraps a user sink for a *resumed* checkpointed replay: checkpoints
/// emitted during the suffix describe ops [0, k) of the suffix, so before
/// handing them on, rebase to absolute run coordinates — cursor shifted by
/// the prefix cursor, stats/telemetry merged with the prefix's.  The shard
/// slices are dropped (suffix-relative splits cannot be combined with the
/// prefix's; validate_target_checkpoint skips the slice-sum check when
/// empty), which keeps every rebased checkpoint itself resumable.
template <typename Stats, typename Sink>
class RebasedTargetSink {
  public:
    RebasedTargetSink(const TargetCheckpoint<Stats>& prefix, Sink& sink)
        : prefix_(&prefix), sink_(&sink) {}

    void operator()(TargetCheckpoint<Stats>&& cp) {
        cp.cursor += prefix_->cursor;
        cp.stats.merge(prefix_->stats);
        cp.shard_stats.clear();
        cp.delivered_batches += prefix_->delivered_batches;
        cp.backpressure_waits += prefix_->backpressure_waits;
        cp.park_wait_us += prefix_->park_wait_us;
        cp.drained_inline += prefix_->drained_inline;
        cp.abandoned_workers += prefix_->abandoned_workers;
        cp.scrub.merge(prefix_->scrub);
        (*sink_)(std::move(cp));
    }

    [[nodiscard]] bool stop_requested() const {
        if constexpr (requires(const Sink& s) { s.stop_requested(); }) {
            return sink_->stop_requested();
        } else {
            return false;
        }
    }

  private:
    const TargetCheckpoint<Stats>* prefix_;
    Sink* sink_;
};

}  // namespace detail

/// resume_target_sharded_stream + continued checkpoint emission: restore
/// `cp`, seek the source to its cursor, stream the suffix, and keep
/// emitting checkpoints into `sink` every `every_batches` delivered
/// batches.  Emitted checkpoints are rebased to absolute run coordinates
/// (see RebasedTargetSink), so each one is itself a valid resume point —
/// this is what lets the supervisor chain an arbitrary number of
/// crash/recover cycles.  A sink `stop_requested()` ends the suffix early
/// at a cut, exactly as in replay_target_checkpointed_stream.
template <typename Target, typename Source, typename Sink,
          typename Faults = fault::NoFaults>
[[nodiscard]] Expected<BasicShardedReport<typename Target::Stats>>
resume_target_checkpointed_stream(
    Target& target, Source& source,
    const TargetCheckpoint<typename Target::Stats>& cp,
    const ShardedConfig& cfg, std::uint64_t every_batches, Sink&& sink,
    const Faults& faults = {}) {
    using Stats = typename Target::Stats;
    if (Status st = validate_target_checkpoint(
            target, static_cast<std::size_t>(source.size()), cp);
        !st.is_ok()) {
        return st;
    }
    if (!target.load_state(cp.state)) {
        return invalid_state("target checkpoint state image of " +
                             std::to_string(cp.state.size()) +
                             " bytes does not match this target's shape");
    }
    if (Status st = source.seek(cp.cursor); !st.is_ok()) {
        return st;
    }
    detail::RebasedTargetSink<Stats, std::remove_reference_t<Sink>> rebased(
        cp, sink);
    auto streamed = replay_target_checkpointed_stream(
        target, source, cfg, every_batches, rebased, faults);
    if (!streamed.is_ok()) return streamed.status();
    BasicShardedReport<Stats> rep = std::move(streamed).value();
    rep.stats.merge(cp.stats);
    rep.backpressure_waits += cp.backpressure_waits;
    rep.park_wait_us += cp.park_wait_us;
    rep.drained_inline += static_cast<std::size_t>(cp.drained_inline);
    rep.abandoned_workers += static_cast<std::size_t>(cp.abandoned_workers);
    rep.scrub.merge(cp.scrub);
    return rep;
}

/// resume_target_sharded + continued checkpoint emission.  A SpanOpSource
/// wrapper over resume_target_checkpointed_stream.
template <typename Target, typename Sink, typename Faults = fault::NoFaults>
[[nodiscard]] Expected<BasicShardedReport<typename Target::Stats>>
resume_target_checkpointed(Target& target,
                           std::span<const typename Target::Op> ops,
                           const TargetCheckpoint<typename Target::Stats>& cp,
                           const ShardedConfig& cfg,
                           std::uint64_t every_batches, Sink&& sink,
                           const Faults& faults = {}) {
    SpanOpSource<typename Target::Op> source(ops);
    return resume_target_checkpointed_stream(target, source, cp, cfg,
                                             every_batches,
                                             std::forward<Sink>(sink),
                                             faults);
}

// ---------------------------------------------------------------------------
// Disk persistence (format in the file header).

namespace detail {

inline void tgc_put_u32(std::vector<std::byte>& out, std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
        out.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xFF));
    }
}

inline void tgc_put_u64(std::vector<std::byte>& out, std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
        out.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xFF));
    }
}

inline std::uint32_t tgc_get_u32(const std::byte* p) {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
        v |= static_cast<std::uint32_t>(std::to_integer<std::uint8_t>(p[i]))
             << (8 * i);
    }
    return v;
}

inline std::uint64_t tgc_get_u64(const std::byte* p) {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
        v |= static_cast<std::uint64_t>(std::to_integer<std::uint8_t>(p[i]))
             << (8 * i);
    }
    return v;
}

inline std::uint32_t tgc_crc(const std::byte* p, std::uint64_t n) {
    return hash::crc32(std::span<const std::uint8_t>(
        reinterpret_cast<const std::uint8_t*>(p),
        static_cast<std::size_t>(n)));
}

inline constexpr char kTgcMagic[8] = {'P', '4', 'L', 'R',
                                      'U', 'T', 'G', 'C'};
inline constexpr std::uint32_t kTgcVersionLegacy = 1;  // no seal footer
inline constexpr std::uint32_t kTgcVersionSealed = 2;  // CRC32 footer
inline constexpr std::size_t kTgcHeaderBytes = 120;
inline constexpr std::size_t kTgcSealBytes = 16;

}  // namespace detail

/// Render `cp` to its sealed v2 on-disk image in memory.  `Stats` must be
/// trivially copyable — its records are stored as raw memory images guarded
/// by the record-size header field and the stats-section CRC.
template <typename Stats>
    requires std::is_trivially_copyable_v<Stats>
[[nodiscard]] SerializedCheckpoint serialize_target_checkpoint(
    const TargetCheckpoint<Stats>& cp) {
    SerializedCheckpoint out;
    auto& buf = out.bytes;
    const std::uint64_t stats_bytes =
        sizeof(Stats) * (1 + cp.shard_stats.size());
    buf.reserve(detail::kTgcHeaderBytes + stats_bytes + cp.state.size() +
                detail::kTgcSealBytes);
    for (char c : detail::kTgcMagic) {
        buf.push_back(static_cast<std::byte>(c));
    }
    detail::tgc_put_u32(buf, detail::kTgcVersionSealed);
    detail::tgc_put_u32(buf, cp.state_id);
    detail::tgc_put_u64(buf, cp.state_fingerprint);
    detail::tgc_put_u64(buf, cp.unit_count);
    detail::tgc_put_u64(buf, cp.cursor);
    detail::tgc_put_u64(buf, cp.delivered_batches);
    detail::tgc_put_u64(buf, cp.backpressure_waits);
    detail::tgc_put_u64(buf, cp.park_wait_us);
    detail::tgc_put_u64(buf, cp.drained_inline);
    detail::tgc_put_u64(buf, cp.abandoned_workers);
    detail::tgc_put_u64(buf, cp.scrub.scanned);
    detail::tgc_put_u64(buf, cp.scrub.corrupt);
    detail::tgc_put_u64(buf, cp.scrub.repaired);
    detail::tgc_put_u32(buf, static_cast<std::uint32_t>(sizeof(Stats)));
    detail::tgc_put_u32(buf,
                        static_cast<std::uint32_t>(cp.shard_stats.size()));
    detail::tgc_put_u64(buf, cp.state.size());
    out.section_ends.push_back(buf.size());  // header
    const auto append_stats = [&buf](const Stats& s) {
        const std::size_t off = buf.size();
        buf.resize(off + sizeof(Stats));
        std::memcpy(buf.data() + off, &s, sizeof(Stats));
    };
    append_stats(cp.stats);
    for (const auto& s : cp.shard_stats) append_stats(s);
    out.section_ends.push_back(buf.size());  // stats records
    buf.insert(buf.end(), cp.state.begin(), cp.state.end());
    out.section_ends.push_back(buf.size());  // state image

    const std::uint32_t crc_header =
        detail::tgc_crc(buf.data(), detail::kTgcHeaderBytes);
    const std::uint32_t crc_stats =
        detail::tgc_crc(buf.data() + detail::kTgcHeaderBytes, stats_bytes);
    const std::uint32_t crc_state = detail::tgc_crc(
        buf.data() + detail::kTgcHeaderBytes + stats_bytes, cp.state.size());
    const std::size_t seal_off = buf.size();
    detail::tgc_put_u32(buf, crc_header);
    detail::tgc_put_u32(buf, crc_stats);
    detail::tgc_put_u32(buf, crc_state);
    detail::tgc_put_u32(buf, detail::tgc_crc(buf.data() + seal_off, 12));
    out.section_ends.push_back(buf.size());  // footer == total
    return out;
}

/// Serialize `cp` to `path` (overwriting, sealed v2 format).  Returns
/// kIoError (with path + errno detail) on any open/write failure.  Not
/// atomic — for crash-safe installs use durable_store.hpp.
template <typename Stats>
    requires std::is_trivially_copyable_v<Stats>
[[nodiscard]] Status write_target_checkpoint(
    const std::string& path, const TargetCheckpoint<Stats>& cp) {
    const SerializedCheckpoint image = serialize_target_checkpoint(cp);
    errno = 0;
    std::FILE* f = std::fopen(path.c_str(), "wb");
    if (!f) {
        return io_error_errno("write_target_checkpoint: cannot open", path);
    }
    errno = 0;
    const std::size_t written =
        std::fwrite(image.bytes.data(), 1, image.bytes.size(), f);
    const bool write_ok = written == image.bytes.size();
    if (!write_ok) {
        const Status st =
            io_error_errno("write_target_checkpoint: short write to", path);
        std::fclose(f);
        return st;
    }
    errno = 0;
    if (std::fclose(f) != 0) {
        return io_error_errno("write_target_checkpoint: close failed on",
                              path);
    }
    return Status::ok();
}

/// Parse a target checkpoint from an in-memory image; the reader behind
/// read_target_checkpoint_checked (durable_store's recovery scan shares
/// it).  Accepts sealed v2 images (CRC-verified per section) and legacy v1
/// images (structural checks only).  `origin` names the image in errors.
template <typename Stats>
    requires std::is_trivially_copyable_v<Stats>
[[nodiscard]] Expected<TargetCheckpoint<Stats>> parse_target_checkpoint(
    const std::vector<std::byte>& image, const std::string& origin) {
    const std::uint64_t file_size = image.size();
    if (file_size < detail::kTgcHeaderBytes) {
        return truncated("target checkpoint image of " +
                             std::to_string(file_size) + " bytes from '" +
                             origin +
                             "' is smaller than the 120-byte header",
                         file_size);
    }
    const std::byte* hdr = image.data();
    if (std::memcmp(hdr, detail::kTgcMagic, sizeof(detail::kTgcMagic)) !=
        0) {
        return corrupt("read_target_checkpoint: bad magic in " + origin, 0);
    }
    const std::uint32_t version = detail::tgc_get_u32(hdr + 8);
    if (version != detail::kTgcVersionLegacy &&
        version != detail::kTgcVersionSealed) {
        return corrupt("read_target_checkpoint: unsupported version " +
                           std::to_string(version) + " in " + origin,
                       8);
    }
    const bool sealed = version == detail::kTgcVersionSealed;
    const std::uint64_t seal = sealed ? detail::kTgcSealBytes : 0;
    TargetCheckpoint<Stats> cp;
    cp.state_id = detail::tgc_get_u32(hdr + 12);
    cp.state_fingerprint = detail::tgc_get_u64(hdr + 16);
    cp.unit_count = static_cast<std::size_t>(detail::tgc_get_u64(hdr + 24));
    cp.cursor = detail::tgc_get_u64(hdr + 32);
    cp.delivered_batches = detail::tgc_get_u64(hdr + 40);
    cp.backpressure_waits = detail::tgc_get_u64(hdr + 48);
    cp.park_wait_us = detail::tgc_get_u64(hdr + 56);
    cp.drained_inline = detail::tgc_get_u64(hdr + 64);
    cp.abandoned_workers = detail::tgc_get_u64(hdr + 72);
    cp.scrub.scanned = detail::tgc_get_u64(hdr + 80);
    cp.scrub.corrupt = detail::tgc_get_u64(hdr + 88);
    cp.scrub.repaired = detail::tgc_get_u64(hdr + 96);
    const std::uint32_t rec = detail::tgc_get_u32(hdr + 104);
    const std::uint32_t shard_count = detail::tgc_get_u32(hdr + 108);
    const std::uint64_t state_bytes = detail::tgc_get_u64(hdr + 112);
    if (rec != sizeof(Stats)) {
        return corrupt("read_target_checkpoint: stats record size " +
                           std::to_string(rec) + " != expected " +
                           std::to_string(sizeof(Stats)),
                       104);
    }
    // Cross-check the counts against the actual file size *before*
    // allocating anything: a flipped bit in a count field must not drive a
    // huge allocation, and a strict prefix of a valid file must fail here.
    const std::uint64_t need =
        detail::kTgcHeaderBytes +
        static_cast<std::uint64_t>(rec) * (1 + shard_count) + state_bytes +
        seal;
    if (file_size != need) {
        return file_size < need
                   ? truncated("read_target_checkpoint: file holds " +
                                   std::to_string(file_size) +
                                   " bytes but the header promises " +
                                   std::to_string(need),
                               file_size)
                   : corrupt("read_target_checkpoint: " +
                                 std::to_string(file_size - need) +
                                 " trailing bytes past the promised size",
                             need);
    }
    const std::uint64_t stats_bytes =
        static_cast<std::uint64_t>(rec) * (1 + shard_count);
    if (sealed) {
        const std::byte* footer =
            hdr + detail::kTgcHeaderBytes + stats_bytes + state_bytes;
        const auto check = [&](std::uint64_t off, std::uint64_t len,
                               int which, const char* name) -> Status {
            const std::uint32_t stored =
                detail::tgc_get_u32(footer + 4 * which);
            const std::uint32_t computed = detail::tgc_crc(hdr + off, len);
            if (stored != computed) {
                return corrupt(std::string(name) + " CRC mismatch in " +
                                   origin + ": stored " +
                                   std::to_string(stored) + ", computed " +
                                   std::to_string(computed),
                               off);
            }
            return Status::ok();
        };
        if (Status st =
                check(detail::kTgcHeaderBytes + stats_bytes + state_bytes,
                      12, 3, "seal footer");
            !st.is_ok()) {
            return st;
        }
        if (Status st = check(0, detail::kTgcHeaderBytes, 0, "header");
            !st.is_ok()) {
            return st;
        }
        if (Status st = check(detail::kTgcHeaderBytes, stats_bytes, 1,
                              "stats record");
            !st.is_ok()) {
            return st;
        }
        if (Status st = check(detail::kTgcHeaderBytes + stats_bytes,
                              state_bytes, 2, "state image");
            !st.is_ok()) {
            return st;
        }
    }
    const std::byte* records = hdr + detail::kTgcHeaderBytes;
    std::memcpy(&cp.stats, records, sizeof(Stats));
    cp.shard_stats.resize(shard_count);
    for (std::uint32_t i = 0; i < shard_count; ++i) {
        std::memcpy(&cp.shard_stats[i],
                    records + sizeof(Stats) * (1 + std::size_t{i}),
                    sizeof(Stats));
    }
    const std::byte* state = records + stats_bytes;
    cp.state.assign(state, state + state_bytes);
    return cp;
}

/// Parse a target checkpoint from `path`; the typed-error path.  On failure
/// the Status names the cause, the offending path, and the byte offset at
/// which the file stopped making sense.  Structural validation only —
/// whether the checkpoint fits a particular target (state id, fingerprint,
/// unit count) is decided by validate_target_checkpoint / the resume entry
/// points.
template <typename Stats>
    requires std::is_trivially_copyable_v<Stats>
[[nodiscard]] Expected<TargetCheckpoint<Stats>>
read_target_checkpoint_checked(const std::string& path) {
    errno = 0;
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (!f) {
        return io_error_errno("read_target_checkpoint: cannot open", path);
    }
    const std::unique_ptr<std::FILE, int (*)(std::FILE*)> closer(f,
                                                                 &std::fclose);
    if (std::fseek(f, 0, SEEK_END) != 0) {
        return io_error_errno("read_target_checkpoint: seek failed on",
                              path);
    }
    const long fsize = std::ftell(f);
    if (fsize < 0) {
        return io_error_errno("read_target_checkpoint: tell failed on",
                              path);
    }
    std::rewind(f);
    std::vector<std::byte> image(static_cast<std::size_t>(fsize));
    errno = 0;
    if (!image.empty() &&
        std::fread(image.data(), 1, image.size(), f) != image.size()) {
        return io_error_errno("read_target_checkpoint: read failed on",
                              path);
    }
    return parse_target_checkpoint<Stats>(image, path);
}

}  // namespace p4lru::replay
