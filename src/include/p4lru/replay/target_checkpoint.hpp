// Checkpoint/resume for any ReplayTarget (DESIGN.md §11).
//
// The cache-specific checkpoint layer (checkpoint.hpp) snapshots storage
// planes; this layer generalizes the same consistent-cut protocol to every
// model of the ReplayTarget concept: the dispatcher quiesces the workers at
// a dispatch boundary (replay.hpp, ShardCtl::snap_*), and the cut is
// materialized through the target's snapshot plane — `save_state` for the
// full mutable state, `state_id`/`state_fingerprint` as the shape guards
// that stop a checkpoint from being restored into a differently-configured
// target.  Resuming is "load state, replay the suffix": the suffix may use
// any shard geometry, because a cut is a clean op prefix and per-bucket
// arrival order is all that bit-exactness needs.
//
// On-disk format v1 (magic "P4LRUTGC", little-endian), offsets in bytes:
//
//   off  size  field
//     0     8  magic "P4LRUTGC"
//     8     4  version (u32, = 1)
//    12     4  target state id (Target::state_id())
//    16     8  target state fingerprint
//    24     8  unit count
//    32     8  op cursor
//    40     8  delivered batches
//    48     8  backpressure waits
//    56     8  park wait (us)
//    64     8  shards drained inline
//    72     8  workers abandoned
//    80    24  ScrubReport (scanned, corrupt, repaired; u64 each)
//   104     4  stats record size R (u32, = sizeof(Stats))
//   108     4  shard count S (u32)
//   112     8  state image size P
//   120     R  merged Stats record
//   120+R  R*S per-shard Stats slices
//   ...    P   raw target state bytes
//
// Stats records are raw memory images (the Stats type must be trivially
// copyable, like the plane bytes in checkpoint_io); the record size field
// plus the state id/fingerprint reject a file written by a different Stats
// layout or target configuration.  Reading is hardened like trace_io /
// checkpoint_io: read_target_checkpoint_checked returns a typed Status
// carrying the byte offset where the file stopped making sense, and
// cross-checks the shard count and state size against the actual file size
// *before* allocating, so a flipped bit in a count field cannot drive a
// huge allocation.  Every strict prefix of a valid file is rejected.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <span>
#include <string>
#include <type_traits>
#include <vector>

#include "p4lru/fault/status.hpp"
#include "p4lru/replay/replay_target.hpp"

namespace p4lru::replay {

/// A resumable snapshot of an in-progress target replay.  Invariants
/// (checked on resume): stats.ops == cursor, and the per-shard slices sum
/// to the totals.
template <typename Stats>
struct TargetCheckpoint {
    std::uint64_t cursor = 0;    ///< ops applied before the snapshot
    Stats stats{};               ///< merged statistics over ops [0, cursor)
    std::size_t unit_count = 0;  ///< shape guard for resume
    std::uint32_t state_id = 0;  ///< Target::state_id() shape guard
    std::uint64_t state_fingerprint = 0;  ///< Target::state_fingerprint()
    std::vector<Stats> shard_stats;       ///< per-shard split of stats
    std::uint64_t delivered_batches = 0;
    std::uint64_t backpressure_waits = 0;
    std::uint64_t park_wait_us = 0;
    std::uint64_t drained_inline = 0;
    std::uint64_t abandoned_workers = 0;
    core::ScrubReport scrub{};
    std::vector<std::byte> state;  ///< target.save_state() image
};

/// Materialize a quiesced dispatch cut into an owning checkpoint.  Runs on
/// the dispatcher thread while every worker is parked at its batch
/// boundary, so the state read is race-free.
template <typename Target>
[[nodiscard]] TargetCheckpoint<typename Target::Stats>
take_target_checkpoint(const Target& target,
                       const BasicCheckpointCut<typename Target::Stats>& cut) {
    TargetCheckpoint<typename Target::Stats> cp;
    cp.cursor = cut.cursor;
    cp.stats = cut.stats;
    cp.unit_count = target.unit_count();
    cp.state_id = Target::state_id();
    cp.state_fingerprint = Target::state_fingerprint();
    cp.shard_stats.assign(cut.shard_stats.begin(), cut.shard_stats.end());
    cp.delivered_batches = cut.delivered_batches;
    cp.backpressure_waits = cut.backpressure_waits;
    cp.park_wait_us = cut.park_wait_us;
    cp.drained_inline = cut.drained_inline;
    cp.abandoned_workers = cut.abandoned_workers;
    cp.scrub = cut.scrub;
    target.save_state(cp.state);
    return cp;
}

namespace detail {

/// The target-generic counterpart of DispatchCheckpointer (checkpoint.hpp):
/// trips the dispatch loop's trigger every `every` delivered batches and
/// converts the quiesced cut into a TargetCheckpoint for the sink.
template <typename Target, typename Sink>
class TargetDispatchCheckpointer {
  public:
    static constexpr bool kEnabled = true;

    TargetDispatchCheckpointer(Target& target, std::uint64_t every,
                               Sink& sink)
        : target_(&target), every_(every), next_(every), sink_(&sink) {}

    [[nodiscard]] bool due(std::uint64_t delivered) const noexcept {
        return every_ != 0 && delivered >= next_;
    }

    void emit(const BasicCheckpointCut<typename Target::Stats>& cut) {
        // Re-arm relative to the actual cut (flushing partial batches may
        // have delivered past the nominal cadence point).
        next_ = cut.delivered_batches + every_;
        (*sink_)(take_target_checkpoint(*target_, cut));
    }

  private:
    Target* target_;
    std::uint64_t every_;
    std::uint64_t next_;
    Sink* sink_;
};

}  // namespace detail

/// Sharded target replay that emits a TargetCheckpoint into `sink` every
/// `every_batches` delivered batches (sink(TargetCheckpoint&&)); 0 disables
/// emission.  Statistics and final target state stay bit-identical to
/// replay_target_sharded — the quiesce only decides *when* work happens,
/// never what — and the fault hooks compose.
template <typename Target, typename Sink, typename Faults = fault::NoFaults>
BasicShardedReport<typename Target::Stats> replay_target_checkpointed(
    Target& target, std::span<const typename Target::Op> ops,
    const ShardedConfig& cfg, std::uint64_t every_batches, Sink&& sink,
    const Faults& faults = {}) {
    detail::TargetDispatchCheckpointer<Target, std::remove_reference_t<Sink>>
        ckpt(target, every_batches, sink);
    return detail::replay_sharded_impl(target, ops, cfg, faults, ckpt);
}

/// Restore a target checkpoint into `target` and replay the remaining ops
/// [cp.cursor, end) with `cfg` — the resume may use a different shard
/// count, batch size or mode than the interrupted run.  The returned report
/// merges the checkpoint's statistics and telemetry, so it reads as if the
/// run had never been interrupted.  Fails with kInvalidState on any shape
/// mismatch or when the checkpoint is internally inconsistent.
template <typename Target, typename Faults = fault::NoFaults>
[[nodiscard]] Expected<BasicShardedReport<typename Target::Stats>>
resume_target_sharded(Target& target,
                      std::span<const typename Target::Op> ops,
                      const TargetCheckpoint<typename Target::Stats>& cp,
                      const ShardedConfig& cfg = {},
                      const Faults& faults = {}) {
    using Stats = typename Target::Stats;
    if (cp.state_id != Target::state_id() ||
        cp.state_fingerprint != Target::state_fingerprint()) {
        return invalid_state(
            "target checkpoint state id " + std::to_string(cp.state_id) +
            " / fingerprint " + std::to_string(cp.state_fingerprint) +
            " does not match this target (id " +
            std::to_string(Target::state_id()) + ", fingerprint " +
            std::to_string(Target::state_fingerprint()) + ")");
    }
    if (cp.unit_count != target.unit_count()) {
        return invalid_state("target checkpoint unit count " +
                             std::to_string(cp.unit_count) +
                             " != target unit count " +
                             std::to_string(target.unit_count()));
    }
    if (cp.cursor > ops.size()) {
        return invalid_state("target checkpoint cursor " +
                             std::to_string(cp.cursor) +
                             " beyond op stream of " +
                             std::to_string(ops.size()));
    }
    if (static_cast<std::uint64_t>(cp.stats.ops) != cp.cursor) {
        return invalid_state("target checkpoint stats cover " +
                             std::to_string(cp.stats.ops) +
                             " ops but cursor is " +
                             std::to_string(cp.cursor));
    }
    if (!cp.shard_stats.empty()) {
        Stats sum{};
        for (const auto& s : cp.shard_stats) sum.merge(s);
        if (!(sum == cp.stats)) {
            return invalid_state(
                "target checkpoint per-shard statistics do not sum to its "
                "totals");
        }
    }
    if (!target.load_state(cp.state)) {
        return invalid_state("target checkpoint state image of " +
                             std::to_string(cp.state.size()) +
                             " bytes does not match this target's shape");
    }
    BasicShardedReport<Stats> rep =
        replay_target_sharded(target, ops.subspan(cp.cursor), cfg, faults);
    rep.stats.merge(cp.stats);
    rep.backpressure_waits += cp.backpressure_waits;
    rep.park_wait_us += cp.park_wait_us;
    rep.drained_inline += static_cast<std::size_t>(cp.drained_inline);
    rep.abandoned_workers += static_cast<std::size_t>(cp.abandoned_workers);
    rep.scrub.merge(cp.scrub);
    return rep;
}

// ---------------------------------------------------------------------------
// Disk persistence (format in the file header).

namespace detail {

inline void tgc_put_u32(std::vector<std::byte>& out, std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
        out.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xFF));
    }
}

inline void tgc_put_u64(std::vector<std::byte>& out, std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
        out.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xFF));
    }
}

inline std::uint32_t tgc_get_u32(const std::byte* p) {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
        v |= static_cast<std::uint32_t>(std::to_integer<std::uint8_t>(p[i]))
             << (8 * i);
    }
    return v;
}

inline std::uint64_t tgc_get_u64(const std::byte* p) {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
        v |= static_cast<std::uint64_t>(std::to_integer<std::uint8_t>(p[i]))
             << (8 * i);
    }
    return v;
}

inline constexpr char kTgcMagic[8] = {'P', '4', 'L', 'R',
                                      'U', 'T', 'G', 'C'};
inline constexpr std::uint32_t kTgcVersion = 1;
inline constexpr std::size_t kTgcHeaderBytes = 120;

}  // namespace detail

/// Serialize `cp` to `path` (overwriting).  Returns kIoError on any
/// open/write failure.  `Stats` must be trivially copyable — its records
/// are stored as raw memory images guarded by the record-size field.
template <typename Stats>
    requires std::is_trivially_copyable_v<Stats>
[[nodiscard]] Status write_target_checkpoint(
    const std::string& path, const TargetCheckpoint<Stats>& cp) {
    std::vector<std::byte> buf;
    buf.reserve(detail::kTgcHeaderBytes +
                sizeof(Stats) * (1 + cp.shard_stats.size()) +
                cp.state.size());
    for (char c : detail::kTgcMagic) {
        buf.push_back(static_cast<std::byte>(c));
    }
    detail::tgc_put_u32(buf, detail::kTgcVersion);
    detail::tgc_put_u32(buf, cp.state_id);
    detail::tgc_put_u64(buf, cp.state_fingerprint);
    detail::tgc_put_u64(buf, cp.unit_count);
    detail::tgc_put_u64(buf, cp.cursor);
    detail::tgc_put_u64(buf, cp.delivered_batches);
    detail::tgc_put_u64(buf, cp.backpressure_waits);
    detail::tgc_put_u64(buf, cp.park_wait_us);
    detail::tgc_put_u64(buf, cp.drained_inline);
    detail::tgc_put_u64(buf, cp.abandoned_workers);
    detail::tgc_put_u64(buf, cp.scrub.scanned);
    detail::tgc_put_u64(buf, cp.scrub.corrupt);
    detail::tgc_put_u64(buf, cp.scrub.repaired);
    detail::tgc_put_u32(buf, static_cast<std::uint32_t>(sizeof(Stats)));
    detail::tgc_put_u32(buf,
                        static_cast<std::uint32_t>(cp.shard_stats.size()));
    detail::tgc_put_u64(buf, cp.state.size());
    const auto append_stats = [&buf](const Stats& s) {
        const std::size_t off = buf.size();
        buf.resize(off + sizeof(Stats));
        std::memcpy(buf.data() + off, &s, sizeof(Stats));
    };
    append_stats(cp.stats);
    for (const auto& s : cp.shard_stats) append_stats(s);
    buf.insert(buf.end(), cp.state.begin(), cp.state.end());

    std::FILE* f = std::fopen(path.c_str(), "wb");
    if (!f) return io_error("write_target_checkpoint: cannot open " + path);
    const std::size_t written =
        std::fwrite(buf.data(), 1, buf.size(), f);
    const bool closed_ok = std::fclose(f) == 0;
    if (written != buf.size() || !closed_ok) {
        return io_error("write_target_checkpoint: short write to " + path);
    }
    return Status::ok();
}

/// Parse a target checkpoint from `path`; the typed-error path.  On failure
/// the Status names the cause and the byte offset at which the file stopped
/// making sense.  Structural validation only — whether the checkpoint fits
/// a particular target (state id, fingerprint, unit count) is decided by
/// resume_target_sharded.
template <typename Stats>
    requires std::is_trivially_copyable_v<Stats>
[[nodiscard]] Expected<TargetCheckpoint<Stats>>
read_target_checkpoint_checked(const std::string& path) {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (!f)
        return io_error("read_target_checkpoint: cannot open " + path);
    const std::unique_ptr<std::FILE, int (*)(std::FILE*)> closer(f,
                                                                 &std::fclose);
    if (std::fseek(f, 0, SEEK_END) != 0) {
        return io_error("read_target_checkpoint: seek failed on " + path);
    }
    const long fsize = std::ftell(f);
    if (fsize < 0) {
        return io_error("read_target_checkpoint: tell failed on " + path);
    }
    std::rewind(f);
    const std::uint64_t file_size = static_cast<std::uint64_t>(fsize);
    if (file_size < detail::kTgcHeaderBytes) {
        return truncated(
            "read_target_checkpoint: file smaller than the 120-byte header",
            file_size);
    }
    std::byte hdr[detail::kTgcHeaderBytes];
    if (std::fread(hdr, 1, sizeof(hdr), f) != sizeof(hdr)) {
        return io_error("read_target_checkpoint: header read failed");
    }
    if (std::memcmp(hdr, detail::kTgcMagic, sizeof(detail::kTgcMagic)) !=
        0) {
        return corrupt("read_target_checkpoint: bad magic", 0);
    }
    if (const auto version = detail::tgc_get_u32(hdr + 8);
        version != detail::kTgcVersion) {
        return corrupt("read_target_checkpoint: unsupported version " +
                           std::to_string(version),
                       8);
    }
    TargetCheckpoint<Stats> cp;
    cp.state_id = detail::tgc_get_u32(hdr + 12);
    cp.state_fingerprint = detail::tgc_get_u64(hdr + 16);
    cp.unit_count = static_cast<std::size_t>(detail::tgc_get_u64(hdr + 24));
    cp.cursor = detail::tgc_get_u64(hdr + 32);
    cp.delivered_batches = detail::tgc_get_u64(hdr + 40);
    cp.backpressure_waits = detail::tgc_get_u64(hdr + 48);
    cp.park_wait_us = detail::tgc_get_u64(hdr + 56);
    cp.drained_inline = detail::tgc_get_u64(hdr + 64);
    cp.abandoned_workers = detail::tgc_get_u64(hdr + 72);
    cp.scrub.scanned = detail::tgc_get_u64(hdr + 80);
    cp.scrub.corrupt = detail::tgc_get_u64(hdr + 88);
    cp.scrub.repaired = detail::tgc_get_u64(hdr + 96);
    const std::uint32_t rec = detail::tgc_get_u32(hdr + 104);
    const std::uint32_t shard_count = detail::tgc_get_u32(hdr + 108);
    const std::uint64_t state_bytes = detail::tgc_get_u64(hdr + 112);
    if (rec != sizeof(Stats)) {
        return corrupt("read_target_checkpoint: stats record size " +
                           std::to_string(rec) + " != expected " +
                           std::to_string(sizeof(Stats)),
                       104);
    }
    // Cross-check the counts against the actual file size *before*
    // allocating anything: a flipped bit in a count field must not drive a
    // huge allocation, and a strict prefix of a valid file must fail here.
    const std::uint64_t need =
        detail::kTgcHeaderBytes +
        static_cast<std::uint64_t>(rec) * (1 + shard_count) + state_bytes;
    if (file_size != need) {
        return file_size < need
                   ? truncated("read_target_checkpoint: file holds " +
                                   std::to_string(file_size) +
                                   " bytes but the header promises " +
                                   std::to_string(need),
                               file_size)
                   : corrupt("read_target_checkpoint: " +
                                 std::to_string(file_size - need) +
                                 " trailing bytes past the promised size",
                             need);
    }
    const auto read_stats = [f](Stats& s) {
        return std::fread(&s, 1, sizeof(Stats), f) == sizeof(Stats);
    };
    if (!read_stats(cp.stats)) {
        return io_error("read_target_checkpoint: stats read failed");
    }
    cp.shard_stats.resize(shard_count);
    for (auto& s : cp.shard_stats) {
        if (!read_stats(s)) {
            return io_error(
                "read_target_checkpoint: shard stats read failed");
        }
    }
    cp.state.resize(static_cast<std::size_t>(state_bytes));
    if (!cp.state.empty() &&
        std::fread(cp.state.data(), 1, cp.state.size(), f) !=
            cp.state.size()) {
        return io_error("read_target_checkpoint: state read failed");
    }
    return cp;
}

}  // namespace p4lru::replay
