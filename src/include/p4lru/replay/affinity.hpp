// Thread→core pinning for the sharded replay workers (ROADMAP: NUMA
// pinning on top of first-touch).  A worker that first-touches its shard's
// slab pages and is later migrated to another core — worse, another NUMA
// node — loses the locality the first-touch bought; pinning the worker
// before it touches anything keeps the pages on the core that will drain
// the shard for the whole run.
//
// Linux-only (sched_setaffinity); a no-op returning false elsewhere, so the
// ShardedConfig::pin_workers flag is safe to set unconditionally.
#pragma once

#include <cstddef>

namespace p4lru::replay {

/// Pin the calling thread to the `core`-th CPU it is allowed to run on
/// (modulo the allowed count, so any shard index is a valid argument).
/// Indexing into the *allowed* set respects a pre-restricted affinity mask
/// (taskset, cgroup cpusets).  Returns true when the pin took effect;
/// false on non-Linux platforms or on any syscall failure.
bool pin_current_thread(std::size_t core);

/// CPUs the calling process may run on (affinity-mask aware on Linux,
/// 1 elsewhere) — the modulus pin_current_thread applies.
[[nodiscard]] std::size_t pinnable_cpus();

}  // namespace p4lru::replay
