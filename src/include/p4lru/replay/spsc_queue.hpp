// Bounded single-producer/single-consumer queue used by the sharded replay
// engine: the dispatcher thread pushes batches of routed operations, one
// worker per shard pops them. Lock-free ring buffer with acquire/release
// head/tail counters; capacity is rounded up to a power of two so the ring
// index is a mask. Producer-side push spins (with yields) when the ring is
// full — backpressure, not loss. close() lets the consumer drain and exit.
#pragma once

#include <atomic>
#include <cstddef>
#include <thread>
#include <utility>
#include <vector>

namespace p4lru::replay {

template <typename T>
class SpscQueue {
  public:
    /// \param capacity minimum number of slots; rounded up to a power of two.
    explicit SpscQueue(std::size_t capacity) {
        std::size_t n = 2;
        while (n < capacity) n <<= 1;
        buf_.resize(n);
        mask_ = n - 1;
    }

    SpscQueue(const SpscQueue&) = delete;
    SpscQueue& operator=(const SpscQueue&) = delete;

    /// Producer only. Blocks (spin + yield) while the ring is full.
    void push(T v) {
        const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
        while (tail - head_.load(std::memory_order_acquire) >= buf_.size()) {
            std::this_thread::yield();
        }
        buf_[tail & mask_] = std::move(v);
        tail_.store(tail + 1, std::memory_order_release);
    }

    /// Producer only. Returns false instead of blocking when full.
    bool try_push(T& v) {
        const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
        if (tail - head_.load(std::memory_order_acquire) >= buf_.size()) {
            return false;
        }
        buf_[tail & mask_] = std::move(v);
        tail_.store(tail + 1, std::memory_order_release);
        return true;
    }

    /// Consumer only. Non-blocking; false when currently empty.
    bool try_pop(T& out) {
        const std::uint64_t head = head_.load(std::memory_order_relaxed);
        if (head == tail_.load(std::memory_order_acquire)) return false;
        out = std::move(buf_[head & mask_]);
        head_.store(head + 1, std::memory_order_release);
        return true;
    }

    /// Consumer only. Blocks until an element arrives or the queue is closed
    /// and fully drained; returns false only in the latter case.
    bool pop(T& out) {
        while (true) {
            if (try_pop(out)) return true;
            if (closed_.load(std::memory_order_acquire)) {
                // Re-check: elements pushed before close() must drain.
                return try_pop(out);
            }
            std::this_thread::yield();
        }
    }

    /// Producer only: no further pushes will follow.
    void close() { closed_.store(true, std::memory_order_release); }

    [[nodiscard]] bool closed() const {
        return closed_.load(std::memory_order_acquire);
    }

    /// Approximate occupancy (either side; for tests and metrics).
    [[nodiscard]] std::size_t size_approx() const {
        return static_cast<std::size_t>(
            tail_.load(std::memory_order_acquire) -
            head_.load(std::memory_order_acquire));
    }

    [[nodiscard]] std::size_t capacity() const noexcept { return buf_.size(); }

  private:
    std::vector<T> buf_;
    std::size_t mask_ = 0;
    alignas(64) std::atomic<std::uint64_t> head_{0};
    alignas(64) std::atomic<std::uint64_t> tail_{0};
    alignas(64) std::atomic<bool> closed_{false};
};

}  // namespace p4lru::replay
