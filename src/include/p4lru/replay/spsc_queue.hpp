// Bounded single-producer/single-consumer queue used by the sharded replay
// engine: the dispatcher thread pushes batches of routed operations, one
// worker per shard pops them. Lock-free ring buffer with acquire/release
// head/tail counters; capacity is rounded up to a power of two so the ring
// index is a mask. close() lets the consumer drain and exit.
//
// Wraparound invariants (tested in spsc_queue_test.cpp):
//   * head_ and tail_ are free-running u64 counters — they are never reduced
//     modulo the capacity.  The ring slot is `counter & mask_`, so the index
//     wraps around the buffer every `capacity()` operations while the
//     counters keep growing.
//   * occupancy is `tail_ - head_`, computed in unsigned arithmetic, which
//     stays correct even across u64 overflow (mod-2^64 subtraction); the
//     queue is FULL iff tail_ - head_ == capacity() and EMPTY iff
//     tail_ == head_.  Because capacity() << 2^64, the two counters can
//     never drift apart far enough to alias.
//   * the producer owns tail_, the consumer owns head_; each side reads the
//     other's counter with acquire and publishes its own with release, which
//     orders the slot write/read against the counter movement.
//
// Backpressure: push() blocks (spin + yield) while the ring is full — the
// legacy unbounded wait.  The hardened replay runtime uses try_push_for()
// instead: a deadline-bounded spin → yield ladder that returns control to
// the producer so it can detect a dead consumer (watchdog, replay.hpp)
// rather than wedging forever.
//
// Consumer handoff: the consumer role may be transferred to another thread
// only through a release/acquire edge after the original consumer has
// stopped popping forever (the replay engine's parked-worker protocol); the
// queue itself does not arbitrate between two live consumers.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <thread>
#include <utility>
#include <vector>

namespace p4lru::replay {

/// Hint the CPU that the caller is in a spin-wait: on x86 `pause` backs the
/// hyper-twin off the execution ports and avoids the memory-order
/// mis-speculation flush when the awaited line finally changes; on ARM
/// `yield` is the architectural equivalent.  Elsewhere it degrades to a
/// compiler barrier so the spin still re-reads memory.  Used by every hot
/// spin in the replay engine (SpscQueue push paths, worker snapshot waits).
inline void cpu_relax() noexcept {
#if defined(__i386__) || defined(__x86_64__)
    __builtin_ia32_pause();
#elif defined(__aarch64__) || defined(__arm__)
    asm volatile("yield" ::: "memory");
#else
    std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}

template <typename T>
class SpscQueue {
  public:
    /// \param capacity minimum number of slots; rounded up to a power of two.
    explicit SpscQueue(std::size_t capacity) {
        std::size_t n = 2;
        while (n < capacity) n <<= 1;
        buf_.resize(n);
        mask_ = n - 1;
    }

    SpscQueue(const SpscQueue&) = delete;
    SpscQueue& operator=(const SpscQueue&) = delete;

    /// Producer only. Blocks (pause-hinted spin, then yield) while the ring
    /// is full.
    void push(T v) {
        const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
        int spin = 0;
        while (tail - head_.load(std::memory_order_acquire) >= buf_.size()) {
            if (++spin <= kHotSpins) {
                cpu_relax();
            } else {
                std::this_thread::yield();
            }
        }
        buf_[tail & mask_] = std::move(v);
        tail_.store(tail + 1, std::memory_order_release);
    }

    /// Producer only. Returns false instead of blocking when full; v is left
    /// intact on failure.
    bool try_push(T& v) {
        const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
        if (tail - head_.load(std::memory_order_acquire) >= buf_.size()) {
            return false;
        }
        buf_[tail & mask_] = std::move(v);
        tail_.store(tail + 1, std::memory_order_release);
        return true;
    }

    /// Producer only. Deadline-bounded push: a short spin, then yielding,
    /// until the ring has room or `timeout` elapses.  Returns false on
    /// timeout with v left intact — the caller decides whether to retry,
    /// escalate to the watchdog, or drain the consumer's work itself.
    bool try_push_for(T& v, std::chrono::microseconds timeout) {
        // Cheap spin first: the common stall is the consumer being one batch
        // behind, resolved within a few hundred cycles.  The pause hint
        // keeps the spin from saturating the core the consumer may share.
        for (int spin = 0; spin < kHotSpins; ++spin) {
            if (try_push(v)) return true;
            cpu_relax();
        }
        const auto deadline = std::chrono::steady_clock::now() + timeout;
        while (std::chrono::steady_clock::now() < deadline) {
            if (try_push(v)) return true;
            std::this_thread::yield();
        }
        return try_push(v);
    }

    /// Consumer only. Non-blocking; false when currently empty.
    bool try_pop(T& out) {
        const std::uint64_t head = head_.load(std::memory_order_relaxed);
        if (head == tail_.load(std::memory_order_acquire)) return false;
        out = std::move(buf_[head & mask_]);
        head_.store(head + 1, std::memory_order_release);
        return true;
    }

    /// Consumer only. Blocks until an element arrives or the queue is closed
    /// and fully drained; returns false only in the latter case.
    bool pop(T& out) {
        while (true) {
            if (try_pop(out)) return true;
            if (closed_.load(std::memory_order_acquire)) {
                // Re-check: elements pushed before close() must drain.
                return try_pop(out);
            }
            std::this_thread::yield();
        }
    }

    /// Producer only: no further pushes will follow.
    void close() { closed_.store(true, std::memory_order_release); }

    [[nodiscard]] bool closed() const {
        return closed_.load(std::memory_order_acquire);
    }

    /// Approximate occupancy (either side; for tests and metrics).
    [[nodiscard]] std::size_t size_approx() const {
        return static_cast<std::size_t>(
            tail_.load(std::memory_order_acquire) -
            head_.load(std::memory_order_acquire));
    }

    [[nodiscard]] std::size_t capacity() const noexcept { return buf_.size(); }

  private:
    /// Hot-spin iterations (with cpu_relax) before escalating to yield.
    static constexpr int kHotSpins = 64;

    std::vector<T> buf_;
    std::size_t mask_ = 0;
    alignas(64) std::atomic<std::uint64_t> head_{0};
    alignas(64) std::atomic<std::uint64_t> tail_{0};
    alignas(64) std::atomic<bool> closed_{false};
};

}  // namespace p4lru::replay
