// Bridges trace::TraceSource (streaming on-disk packet traces,
// trace_source.hpp) into the replay engine's OpSource concept
// (SpanOpSource, replay.hpp) — the glue that lets a trace far larger than
// RAM flow through replay_target_sharded_stream and the checkpointed /
// supervised paths without ever being materialized as a vector.
//
// Two adapters:
//   * PacketTraceOpSource — the identity view, for targets whose Op IS
//     PacketRecord: batches are forwarded spans, zero copies.
//   * MappedTraceOpSource — decodes each PacketRecord into the target's Op
//     through a mapping functor, staged in a reusable buffer sized by the
//     pull (never the trace).  packet_op_source() is the canonical
//     instantiation: the ops_from_packets mapping (key = 5-tuple flow,
//     value = wire length), streamed.
//
// Both forward seek/size/tell, so checkpoint resume seeks the underlying
// file instead of re-reading the prefix.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "p4lru/common/types.hpp"
#include "p4lru/fault/status.hpp"
#include "p4lru/replay/replay.hpp"
#include "p4lru/trace/trace_source.hpp"

namespace p4lru::replay {

/// Identity adapter: the op type is PacketRecord itself, so batches are the
/// trace source's spans, forwarded untouched.
class PacketTraceOpSource {
  public:
    using value_type = PacketRecord;

    explicit PacketTraceOpSource(trace::TraceSource& src) noexcept
        : src_(&src) {}

    [[nodiscard]] Expected<std::span<const PacketRecord>> next_batch(
        std::size_t max) {
        return src_->next_batch(max);
    }
    [[nodiscard]] Status seek(std::uint64_t op_index) {
        return src_->seek(op_index);
    }
    [[nodiscard]] std::uint64_t size() const { return src_->size(); }
    [[nodiscard]] std::uint64_t tell() const { return src_->tell(); }
    [[nodiscard]] const char* name() const { return src_->name(); }

  private:
    trace::TraceSource* src_;
};

/// Mapping adapter: each pulled PacketRecord becomes `MapFn{}(record)`,
/// staged in a buffer that is reused across batches — its footprint is the
/// pull size, so the bounded-memory property of the underlying source
/// survives the translation.  The returned span is valid until the next
/// next_batch()/seek(), same as the source's own contract.
template <typename Op, typename MapFn>
class MappedTraceOpSource {
  public:
    using value_type = Op;

    MappedTraceOpSource(trace::TraceSource& src, MapFn fn = {})
        : src_(&src), fn_(std::move(fn)) {}

    [[nodiscard]] Expected<std::span<const Op>> next_batch(std::size_t max) {
        auto pulled = src_->next_batch(max);
        if (!pulled.is_ok()) return pulled.status();
        const std::span<const PacketRecord> recs = pulled.value();
        buf_.clear();
        buf_.reserve(recs.size());
        for (const auto& p : recs) buf_.push_back(fn_(p));
        return Expected<std::span<const Op>>(
            std::span<const Op>(buf_.data(), buf_.size()));
    }
    [[nodiscard]] Status seek(std::uint64_t op_index) {
        return src_->seek(op_index);
    }
    [[nodiscard]] std::uint64_t size() const { return src_->size(); }
    [[nodiscard]] std::uint64_t tell() const { return src_->tell(); }
    [[nodiscard]] const char* name() const { return src_->name(); }

  private:
    trace::TraceSource* src_;
    MapFn fn_;
    std::vector<Op> buf_;  ///< reusable per-batch staging
};

/// The ops_from_packets mapping (replay.hpp) as a functor: key = 5-tuple
/// flow, value = wire length.
struct PacketToReplayOp {
    [[nodiscard]] ReplayOp<FlowKey, std::uint32_t> operator()(
        const PacketRecord& p) const noexcept {
        return {p.flow, p.len};
    }
};

/// The canonical packet-trace op source: streams the exact op sequence
/// ops_from_packets would have materialized.
using PacketOpSource =
    MappedTraceOpSource<ReplayOp<FlowKey, std::uint32_t>, PacketToReplayOp>;

[[nodiscard]] inline PacketOpSource packet_op_source(
    trace::TraceSource& src) {
    return PacketOpSource(src);
}

}  // namespace p4lru::replay
