// On-disk persistence for replay checkpoints: the durable half of the
// degradation ladder (DESIGN.md §10).  An in-memory ShardedCheckpoint only
// survives the process; writing it through this layer makes a replay
// restartable across a crash or a kill -9 (the chaos smoke exercises
// exactly that).
//
// Format v1 (little-endian), offsets in bytes:
//
//   off  size  field
//     0     8  magic "P4LRUCKP"
//     8     4  version (u32, = 1)
//    12     4  storage layout id (core::kAos/kSoaLayoutId)
//    16     8  storage plane-geometry fingerprint
//    24     8  unit count
//    32     8  op cursor
//    40    32  merged ReplayStats (ops, hits, misses, evictions; u64 each)
//    72     8  delivered batches
//    80     8  backpressure waits
//    88     8  park wait (us)
//    96     8  shards drained inline
//   104     8  workers abandoned
//   112    24  ScrubReport (scanned, corrupt, repaired; u64 each)
//   136     8  shard count S
//   144     8  plane image size P
//   152  32*S  per-shard ReplayStats slices
//   152+32*S P raw storage plane bytes
//
// Reading is hardened exactly like trace_io: read_checkpoint_checked
// returns a typed Status (kIoError / kCorrupt / kTruncated) carrying the
// byte offset where the file stopped making sense, and cross-checks both
// the shard count and the plane size against the actual file size *before*
// allocating, so a flipped bit in a count field cannot drive a huge
// allocation.  Every strict prefix of a valid file is rejected (the
// truncation sweep in checkpoint_io_test proves it).
#pragma once

#include <string>

#include "p4lru/fault/status.hpp"
#include "p4lru/replay/checkpoint.hpp"

namespace p4lru::replay {

/// Serialize `cp` to `path` (overwriting).  Returns kIoError on any
/// open/write failure; the file is not guaranteed to be intact after a
/// failed write (callers keep the previous checkpoint until this returns
/// ok — write-to-temp-then-rename durability is the caller's policy).
[[nodiscard]] Status write_checkpoint(const std::string& path,
                                      const ShardedCheckpoint& cp);

/// Convenience overload for a sequential checkpoint: persisted as a
/// ShardedCheckpoint with zero shard slices and zero telemetry, so one
/// reader handles both kinds (resume_sequential takes `.base`).
[[nodiscard]] Status write_checkpoint(const std::string& path,
                                      const ReplayCheckpoint& cp);

/// Parse a checkpoint from `path`; the typed-error path.  On failure the
/// Status names the cause and the byte offset at which the file stopped
/// making sense.  Structural validation only — whether the checkpoint fits
/// a particular cache (layout tag, fingerprint, unit count) is decided by
/// resume_sequential / resume_sharded.
[[nodiscard]] Expected<ShardedCheckpoint> read_checkpoint_checked(
    const std::string& path);

}  // namespace p4lru::replay
