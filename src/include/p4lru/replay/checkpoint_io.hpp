// On-disk persistence for replay checkpoints: the durable half of the
// degradation ladder (DESIGN.md §10, §12).  An in-memory ShardedCheckpoint
// only survives the process; writing it through this layer makes a replay
// restartable across a crash or a kill -9 (the chaos smoke exercises
// exactly that).
//
// Format v2 (little-endian), offsets in bytes:
//
//   off  size  field
//     0     8  magic "P4LRUCKP"
//     8     4  version (u32, = 2)
//    12     4  storage layout id (core::kAos/kSoaLayoutId)
//    16     8  storage plane-geometry fingerprint
//    24     8  unit count
//    32     8  op cursor
//    40    32  merged ReplayStats (ops, hits, misses, evictions; u64 each)
//    72     8  delivered batches
//    80     8  backpressure waits
//    88     8  park wait (us)
//    96     8  shards drained inline
//   104     8  workers abandoned
//   112    24  ScrubReport (scanned, corrupt, repaired; u64 each)
//   136     8  shard count S
//   144     8  plane image size P
//   152  32*S  per-shard ReplayStats slices
//   152+32*S P raw storage plane bytes
//   ...then the 16-byte seal footer:
//   +0      4  crc_header  (CRC32 over bytes [0, 152))
//   +4      4  crc_slices  (CRC32 over the 32*S shard-slice bytes)
//   +8      4  crc_planes  (CRC32 over the P plane bytes)
//   +12     4  crc_footer  (CRC32 over the 12 preceding footer bytes)
//
// Version 1 is the same layout without the seal footer; the reader still
// accepts it (files written before the durability PR), it just gets no CRC
// protection beyond the structural size cross-checks.  Every byte of a v2
// file is covered by exactly one check: magic/version by comparison, the
// count fields by the size cross-check AND crc_header, everything else by
// one of the four CRCs — so any single-bit flip anywhere is detected (the
// fuzz sweep in durable_store_test proves it).
//
// Reading is hardened exactly like trace_io: read_checkpoint_checked
// returns a typed Status (kIoError / kCorrupt / kTruncated) carrying the
// byte offset where the file stopped making sense, and cross-checks both
// the shard count and the plane size against the actual file size *before*
// allocating, so a flipped bit in a count field cannot drive a huge
// allocation.  Every strict prefix of a valid file is rejected (the
// truncation sweep in checkpoint_io_test proves it).  IO-level failures
// carry the offending path and the OS error (strerror/errno).
//
// write_checkpoint itself is NOT atomic (a crash mid-write leaves a torn
// file — which the CRCs will reject on read); for crash-safe installs go
// through durable_store.hpp, which writes via temp-file + fsync + atomic
// rename into a generational store directory.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "p4lru/fault/status.hpp"
#include "p4lru/replay/checkpoint.hpp"
#include "p4lru/replay/serialized_image.hpp"

namespace p4lru::replay {

/// Render `cp` to its sealed v2 on-disk image in memory.
[[nodiscard]] SerializedCheckpoint serialize_checkpoint(
    const ShardedCheckpoint& cp);

/// Serialize `cp` to `path` (overwriting, sealed v2 format).  Returns
/// kIoError (with path + errno detail) on any open/write failure; the file
/// is not guaranteed to be intact after a failed write.  For atomic
/// installs use durable_store.hpp.
[[nodiscard]] Status write_checkpoint(const std::string& path,
                                      const ShardedCheckpoint& cp);

/// Convenience overload for a sequential checkpoint: persisted as a
/// ShardedCheckpoint with zero shard slices and zero telemetry, so one
/// reader handles both kinds (resume_sequential takes `.base`).
[[nodiscard]] Status write_checkpoint(const std::string& path,
                                      const ReplayCheckpoint& cp);

/// Parse a checkpoint from `path`; the typed-error path.  Accepts sealed v2
/// files (CRC-verified per section) and legacy v1 files (structural checks
/// only).  On failure the Status names the cause and the byte offset at
/// which the file stopped making sense.  Structural validation only —
/// whether the checkpoint fits a particular cache (layout tag, fingerprint,
/// unit count) is decided by resume_sequential / resume_sharded.
[[nodiscard]] Expected<ShardedCheckpoint> read_checkpoint_checked(
    const std::string& path);

/// Parse a checkpoint from an in-memory image (the reader behind
/// read_checkpoint_checked; durable_store's recovery scan and the
/// p4lru_ckpt tool share it).  `origin` names the image in error messages.
[[nodiscard]] Expected<ShardedCheckpoint> parse_checkpoint(
    const std::vector<std::byte>& image, const std::string& origin);

}  // namespace p4lru::replay
