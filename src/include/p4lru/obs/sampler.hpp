// Background snapshotter (DESIGN.md §13).
//
// A Sampler owns one thread that snapshots a Registry every `period_ms`
// into a bounded in-memory ring (newest `ring_capacity` snapshots) and,
// when `jsonl_path` is set, appends each snapshot as one `to_json_line`
// record to that file (flushed per line, so a crash loses at most the
// record being written — the append-only-JSONL analogue of the durable
// store's install discipline; a torn tail line simply fails to parse and
// readers treat it like a torn temp file).
//
// `sample_now()` takes a snapshot synchronously on the caller's thread
// (same ring/file path), which is what deterministic tests and one-shot
// tools use; a Sampler constructed with `start_thread = false` is exactly
// that manual mode.  stop() (idempotent, run by the destructor) joins the
// thread and closes the file, so the last line is always whole on clean
// shutdown.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "p4lru/obs/exposition.hpp"
#include "p4lru/obs/metrics.hpp"

namespace p4lru::obs {

struct SamplerConfig {
    std::uint64_t period_ms = 1000;  ///< cadence of the background thread
    std::size_t ring_capacity = 120; ///< newest snapshots kept in memory
    std::string jsonl_path;          ///< append-only JSONL sink ("" = none)
};

class Sampler {
  public:
    explicit Sampler(Registry& reg, SamplerConfig cfg,
                     bool start_thread = true)
        : reg_(&reg), cfg_(std::move(cfg)) {
        if (!cfg_.jsonl_path.empty()) {
            file_ = std::fopen(cfg_.jsonl_path.c_str(), "ab");
            // A sink that failed to open degrades to ring-only sampling:
            // metrics must never take the workload down.
        }
        if (start_thread && cfg_.period_ms > 0) {
            thread_ = std::jthread([this](std::stop_token st) { run(st); });
        }
    }

    ~Sampler() { stop(); }
    Sampler(const Sampler&) = delete;
    Sampler& operator=(const Sampler&) = delete;

    /// Join the background thread (taking one final snapshot so the tail
    /// of a run is never lost to cadence) and close the JSONL sink.
    void stop() {
        if (thread_.joinable()) {
            thread_.request_stop();
            cv_.notify_all();
            thread_.join();
            sample_now();
        }
        std::lock_guard<std::mutex> lock(mu_);
        if (file_ != nullptr) {
            std::fclose(file_);
            file_ = nullptr;
        }
    }

    /// Snapshot the registry right now on the calling thread; the snapshot
    /// is stamped, ringed, appended to the JSONL sink, and returned.
    Snapshot sample_now() {
        Snapshot snap = reg_->snapshot();
        std::lock_guard<std::mutex> lock(mu_);
        snap.seq = ++seq_;
        snap.unix_us = static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::system_clock::now().time_since_epoch())
                .count());
        ring_.push_back(snap);
        while (ring_.size() > cfg_.ring_capacity) {
            ring_.pop_front();
        }
        if (file_ != nullptr) {
            const std::string line = to_json_line(snap);
            std::fwrite(line.data(), 1, line.size(), file_);
            std::fputc('\n', file_);
            std::fflush(file_);
        }
        return snap;
    }

    /// Ring contents, oldest first.
    [[nodiscard]] std::vector<Snapshot> ring() const {
        std::lock_guard<std::mutex> lock(mu_);
        return {ring_.begin(), ring_.end()};
    }

    [[nodiscard]] std::uint64_t samples_taken() const {
        std::lock_guard<std::mutex> lock(mu_);
        return seq_;
    }

  private:
    void run(std::stop_token st) {
        std::mutex sleep_mu;
        std::unique_lock<std::mutex> lk(sleep_mu);
        while (!st.stop_requested()) {
            cv_.wait_for(lk, st, std::chrono::milliseconds(cfg_.period_ms),
                         [] { return false; });
            if (st.stop_requested()) break;
            sample_now();
        }
    }

    Registry* reg_;
    SamplerConfig cfg_;
    mutable std::mutex mu_;
    std::deque<Snapshot> ring_;
    std::uint64_t seq_ = 0;
    std::FILE* file_ = nullptr;
    std::condition_variable_any cv_;
    std::jthread thread_;
};

}  // namespace p4lru::obs
