// Low-overhead runtime metrics (DESIGN.md §13).
//
// A Registry is a process-lifetime set of named instruments:
//
//   * Counter — monotone u64.  Hot-path `add` is one relaxed fetch_add on a
//     cache-line-padded per-stripe cell (the stripe is picked per thread, so
//     concurrent writers almost never share a line); `value()` merges the
//     stripes on read.  Totals are exact: every fetch_add lands in exactly
//     one stripe and the read-side sum loses nothing.
//   * Gauge — a last-write-wins i64 (`set`/`add`).  One atomic word: gauges
//     are written from one place at a time (queue depth by the dispatcher,
//     backoff by the supervisor), so striping would only blur "current
//     value" semantics.
//   * Histogram — log2-bucketed value distribution.  Bucket 0 holds zeros;
//     bucket i >= 1 holds [2^(i-1), 2^i - 1]; the last bucket saturates.
//     `record` is three relaxed fetch_adds (bucket, sum, count) on the
//     thread's stripe block, so tails survive merging exactly: the merged
//     bucket counts are the sums of what each thread observed.
//
// Everything is relaxed atomics — instruments never order anything, they
// only count — which keeps ThreadSanitizer silent and the hot path at one
// uncontended RMW.  Instrument pointers returned by the registry are stable
// for the registry's lifetime; resolve them once at setup (names are looked
// up under a mutex) and hammer the pointers from any thread.
//
// The disabled path: every instrumented layer takes an `obs::Registry*`
// that defaults to nullptr, resolves its instrument pointers only when the
// registry is present, and guards each hot-path touch with a pointer test —
// the NoFaults idea at runtime granularity, one predictable branch instead
// of a template parameter, because the instrumented sites are batch-level
// (hundreds of ops per touch), not op-level.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace p4lru::obs {

/// Histogram bucket count: bucket 0 = {0}, bucket i = [2^(i-1), 2^i - 1],
/// bucket 63 additionally absorbs everything above 2^62 - 1.
inline constexpr std::size_t kHistBuckets = 64;

/// Writer stripes per instrument.  Power of two; eight lines bound the
/// footprint (a counter is 512 bytes) while keeping the common 2-8-thread
/// replay fleet collision-free.
inline constexpr std::size_t kStripes = 8;

/// log2 bucket index of a recorded value (see kHistBuckets).
[[nodiscard]] constexpr std::size_t bucket_index(std::uint64_t v) noexcept {
    if (v == 0) return 0;
    const std::size_t w = static_cast<std::size_t>(std::bit_width(v));
    return w < kHistBuckets ? w : kHistBuckets - 1;
}

/// Inclusive upper bound of a bucket (the Prometheus `le` label); the last
/// bucket is unbounded and exposes +Inf instead.
[[nodiscard]] constexpr std::uint64_t bucket_upper_bound(
    std::size_t bucket) noexcept {
    return bucket == 0 ? 0 : (std::uint64_t{1} << bucket) - 1;
}

namespace detail {

/// The stripe this thread writes.  Assigned round-robin on first use so
/// thread fleets spread across stripes deterministically enough.
[[nodiscard]] inline std::size_t my_stripe() noexcept {
    static std::atomic<std::size_t> next{0};
    thread_local const std::size_t mine =
        next.fetch_add(1, std::memory_order_relaxed) % kStripes;
    return mine;
}

struct alignas(64) PaddedU64 {
    std::atomic<std::uint64_t> v{0};
};

}  // namespace detail

class Counter {
  public:
    void add(std::uint64_t n = 1) noexcept {
        cells_[detail::my_stripe()].v.fetch_add(n, std::memory_order_relaxed);
    }

    /// Merged total (exact; see file header).
    [[nodiscard]] std::uint64_t value() const noexcept {
        std::uint64_t sum = 0;
        for (const auto& c : cells_) {
            sum += c.v.load(std::memory_order_relaxed);
        }
        return sum;
    }

  private:
    std::array<detail::PaddedU64, kStripes> cells_;
};

class Gauge {
  public:
    void set(std::int64_t v) noexcept {
        v_.store(v, std::memory_order_relaxed);
    }
    void add(std::int64_t d) noexcept {
        v_.fetch_add(d, std::memory_order_relaxed);
    }
    [[nodiscard]] std::int64_t value() const noexcept {
        return v_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<std::int64_t> v_{0};
};

/// Merged read-side view of a histogram.
struct HistogramSnapshot {
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::array<std::uint64_t, kHistBuckets> buckets{};

    [[nodiscard]] double mean() const noexcept {
        return count == 0 ? 0.0
                          : static_cast<double>(sum) /
                                static_cast<double>(count);
    }
};

class Histogram {
  public:
    void record(std::uint64_t v) noexcept {
        Stripe& s = stripes_[detail::my_stripe()];
        s.buckets[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
        s.sum.fetch_add(v, std::memory_order_relaxed);
        s.count.fetch_add(1, std::memory_order_relaxed);
    }

    [[nodiscard]] HistogramSnapshot snapshot() const noexcept {
        HistogramSnapshot out;
        for (const auto& s : stripes_) {
            out.count += s.count.load(std::memory_order_relaxed);
            out.sum += s.sum.load(std::memory_order_relaxed);
            for (std::size_t b = 0; b < kHistBuckets; ++b) {
                out.buckets[b] +=
                    s.buckets[b].load(std::memory_order_relaxed);
            }
        }
        return out;
    }

  private:
    /// One writer stripe: the whole block is line-aligned; the buckets
    /// inside share lines deliberately (a thread only races itself).
    struct alignas(64) Stripe {
        std::array<std::atomic<std::uint64_t>, kHistBuckets> buckets{};
        std::atomic<std::uint64_t> sum{0};
        std::atomic<std::uint64_t> count{0};
    };
    std::array<Stripe, kStripes> stripes_;
};

/// Read-side image of every instrument in a registry, taken under the
/// registration mutex (instrument *values* keep moving — a snapshot is a
/// consistent name set, not a consistent cut across instruments).
struct Snapshot {
    std::uint64_t seq = 0;       ///< stamped by the sampler (0 = ad hoc)
    std::uint64_t unix_us = 0;   ///< wall-clock stamp (sampler)
    std::vector<std::pair<std::string, std::uint64_t>> counters;
    std::vector<std::pair<std::string, std::int64_t>> gauges;
    std::vector<std::pair<std::string, HistogramSnapshot>> histograms;

    [[nodiscard]] const std::uint64_t* counter(
        const std::string& name) const noexcept {
        for (const auto& [n, v] : counters) {
            if (n == name) return &v;
        }
        return nullptr;
    }
    [[nodiscard]] const std::int64_t* gauge(
        const std::string& name) const noexcept {
        for (const auto& [n, v] : gauges) {
            if (n == name) return &v;
        }
        return nullptr;
    }
    [[nodiscard]] const HistogramSnapshot* histogram(
        const std::string& name) const noexcept {
        for (const auto& [n, v] : histograms) {
            if (n == name) return &v;
        }
        return nullptr;
    }
};

/// Named-instrument registry.  get-or-create under a mutex; returned
/// pointers are stable for the registry's lifetime (instruments are
/// node-allocated and never erased).
class Registry {
  public:
    Registry() = default;
    Registry(const Registry&) = delete;
    Registry& operator=(const Registry&) = delete;

    [[nodiscard]] Counter* counter(const std::string& name) {
        std::lock_guard<std::mutex> lock(mu_);
        auto& slot = counters_[name];
        if (!slot) slot = std::make_unique<Counter>();
        return slot.get();
    }

    [[nodiscard]] Gauge* gauge(const std::string& name) {
        std::lock_guard<std::mutex> lock(mu_);
        auto& slot = gauges_[name];
        if (!slot) slot = std::make_unique<Gauge>();
        return slot.get();
    }

    [[nodiscard]] Histogram* histogram(const std::string& name) {
        std::lock_guard<std::mutex> lock(mu_);
        auto& slot = histograms_[name];
        if (!slot) slot = std::make_unique<Histogram>();
        return slot.get();
    }

    /// Merged values of every instrument, names sorted (std::map order) so
    /// exposition output is deterministic.
    [[nodiscard]] Snapshot snapshot() const {
        Snapshot out;
        std::lock_guard<std::mutex> lock(mu_);
        out.counters.reserve(counters_.size());
        for (const auto& [name, c] : counters_) {
            out.counters.emplace_back(name, c->value());
        }
        out.gauges.reserve(gauges_.size());
        for (const auto& [name, g] : gauges_) {
            out.gauges.emplace_back(name, g->value());
        }
        out.histograms.reserve(histograms_.size());
        for (const auto& [name, h] : histograms_) {
            out.histograms.emplace_back(name, h->snapshot());
        }
        return out;
    }

    /// The process-wide registry (the SIMD dispatch gauge and ad-hoc tools
    /// publish here; instrumented subsystems take an explicit Registry*).
    [[nodiscard]] static Registry& global() {
        static Registry r;
        return r;
    }

  private:
    mutable std::mutex mu_;
    std::map<std::string, std::unique_ptr<Counter>> counters_;
    std::map<std::string, std::unique_ptr<Gauge>> gauges_;
    std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// Set a gauge on the process-wide registry, swallowing allocation failure —
/// for noexcept publishers (the SIMD dispatch layer) where metrics must
/// never take the process down.
inline void set_global_gauge(const char* name, std::int64_t v) noexcept {
    try {
        Registry::global().gauge(name)->set(v);
    } catch (...) {
        // Metrics are best-effort; a failed publish is not an error.
    }
}

}  // namespace p4lru::obs
