// Rendering and parsing of obs::Snapshot (DESIGN.md §13).
//
// Two render formats:
//   * Prometheus text exposition — counters/gauges verbatim, histograms as
//     cumulative `_bucket{le="..."}` series (le = inclusive upper bound of
//     each log2 bucket, `+Inf` last) plus `_sum`/`_count`.
//   * JSON — one object per snapshot; `to_json_line` emits it on a single
//     line, which is the sampler's JSONL record format.
//
// `parse_snapshot_json` is the inverse of `to_json_line`: a minimal
// recursive-descent parser for exactly the JSON this module emits (plus
// insignificant whitespace).  It exists so the sampler round-trip tests,
// the chaos smoke's self-verification, and the p4lru_metrics CLI all agree
// on one reader, not so the repo grows a general JSON library.
#pragma once

#include <string>
#include <string_view>

#include "p4lru/fault/status.hpp"
#include "p4lru/obs/metrics.hpp"

namespace p4lru::obs {

/// Escape a string for embedding inside a JSON string literal (quotes not
/// included).  Escapes `"`/`\`, the common control shorthands, and any
/// other byte < 0x20 as \u00XX.
[[nodiscard]] std::string json_escape(std::string_view s);

/// Sanitize a metric name for the Prometheus exposition format
/// ([a-zA-Z_:][a-zA-Z0-9_:]* — offending bytes become '_').
[[nodiscard]] std::string prometheus_name(std::string_view name);

/// Render a snapshot in the Prometheus text exposition format.
[[nodiscard]] std::string to_prometheus(const Snapshot& snap);

/// Render a snapshot as one JSON object on a single line (no trailing
/// newline) — the sampler's JSONL record.
[[nodiscard]] std::string to_json_line(const Snapshot& snap);

/// Parse one `to_json_line` record back into a Snapshot.
[[nodiscard]] Expected<Snapshot> parse_snapshot_json(std::string_view line);

}  // namespace p4lru::obs
