// LruTable as a ReplayTarget (DESIGN.md §11): the NAT gateway partitioned by
// virtual address so the sharded replay engine can drive it in every mode
// with bit-identical reports.
//
// Partitioning: packet -> partition mix64(dst_ip) % G; a partition owns an
// independent translation-cache policy and its own pending-fill queue.  The
// slow path of a miss becomes visible `slow_path_delay` later *within the
// same partition* (fills drain against the partition's own packet clock), so
// every effect depends only on the owning partition's history and per-shard
// statistics merge losslessly.  The NAT mapping itself is a pure function
// (NatTable::lookup), shared read-only across partitions.
//
// Latency is accumulated as an integer nanosecond sum (not a running float
// mean) so merging shard statistics is exact and order-free; the report
// derives the average from the merged integers.
//
// Not supported: cfg.track_similarity — the similarity metric is defined
// over the *global* access order, which partitioned replay does not
// preserve; the constructor rejects it rather than report a wrong number.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <span>
#include <stdexcept>
#include <vector>

#include "p4lru/cache/policy.hpp"
#include "p4lru/common/byte_io.hpp"
#include "p4lru/common/hash.hpp"
#include "p4lru/common/types.hpp"
#include "p4lru/core/unit_storage.hpp"
#include "p4lru/obs/metrics.hpp"
#include "p4lru/replay/replay_target.hpp"
#include "p4lru/systems/lrutable/lrutable.hpp"

namespace p4lru::systems::lrutable {

/// An in-flight control-plane fill owned by one partition.
struct TargetPendingFill {
    TimeNs ready_at = 0;
    VirtualAddress va = 0;
    std::uint32_t real_address = 0;
};

/// A packet routed to the partition owning its virtual address.
struct LruTableRouted {
    std::uint32_t bucket = 0;
    VirtualAddress va = 0;
    TimeNs ts = 0;
};

/// Mergeable integer statistics of a LruTable replay (trivially copyable
/// for the raw-record checkpoint format).
struct LruTableStats {
    std::uint64_t ops = 0;  ///< packets applied
    std::uint64_t fast_path = 0;
    std::uint64_t placeholder_hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t added_latency_ns = 0;  ///< integer sum, merge-exact

    void merge(const LruTableStats& o) noexcept {
        ops += o.ops;
        fast_path += o.fast_path;
        placeholder_hits += o.placeholder_hits;
        misses += o.misses;
        added_latency_ns += o.added_latency_ns;
    }

    friend bool operator==(const LruTableStats&,
                           const LruTableStats&) = default;
};

class LruTableTarget {
  public:
    using Op = PacketRecord;
    using Routed = LruTableRouted;
    using Stats = LruTableStats;
    using Policy = cache::ReplacementPolicy<VirtualAddress, std::uint32_t>;
    using PolicyFactory =
        std::function<std::unique_ptr<Policy>(std::size_t)>;

    LruTableTarget(std::size_t partitions, const PolicyFactory& make_policy,
                   LruTableConfig cfg = {})
        : cfg_(cfg) {
        if (partitions == 0) {
            throw std::invalid_argument("LruTableTarget: zero partitions");
        }
        if (cfg.track_similarity) {
            throw std::invalid_argument(
                "LruTableTarget: similarity tracking needs the global access "
                "order; use LruTableSystem");
        }
        parts_.reserve(partitions);
        for (std::size_t p = 0; p < partitions; ++p) {
            Partition part;
            part.policy = make_policy(p);
            if (!part.policy) {
                throw std::invalid_argument(
                    "LruTableTarget: factory returned null");
            }
            parts_.push_back(std::move(part));
        }
    }

    /// Attach live metrics (obs/metrics.hpp): counters
    /// lrutable_fast_path/placeholder_hits/misses/pending_fills and per-op
    /// latency histograms lrutable_fast_path_ns / lrutable_slow_path_ns
    /// around the policy access.  Null detaches (the default — zero
    /// overhead, no clock reads).  Call before handing the target to the
    /// engine; instruments are striped-atomic, so threaded shards may
    /// hammer them concurrently.
    void set_metrics(obs::Registry* reg) {
        m_ = {};
        if (reg == nullptr) return;
        m_.fast = reg->counter("lrutable_fast_path");
        m_.placeholder = reg->counter("lrutable_placeholder_hits");
        m_.miss = reg->counter("lrutable_misses");
        m_.pending = reg->counter("lrutable_pending_fills");
        m_.fast_ns = reg->histogram("lrutable_fast_path_ns");
        m_.slow_ns = reg->histogram("lrutable_slow_path_ns");
    }

    // -- routing ----------------------------------------------------------
    [[nodiscard]] std::size_t unit_count() const noexcept {
        return parts_.size();
    }

    [[nodiscard]] Routed route(const Op& op) const {
        const VirtualAddress va = op.flow.dst_ip;
        return Routed{
            static_cast<std::uint32_t>(hash::mix64(va) % parts_.size()), va,
            op.ts};
    }

    // -- apply ------------------------------------------------------------
    void apply_batch(std::span<const Routed> batch, Stats& s) {
        for (const auto& r : batch) apply_one(r, s);
    }

    void prefetch_unit(std::uint32_t) const noexcept {}
    void prefetch_batch(std::span<const Routed>) const noexcept {}

    // -- first-touch plane (eagerly built) --------------------------------
    [[nodiscard]] bool materialized() const noexcept { return true; }
    void materialize() noexcept {}
    void first_touch_range(std::size_t, std::size_t) noexcept {}
    void mark_materialized() noexcept {}

    // -- integrity plane --------------------------------------------------
    [[nodiscard]] core::ScrubReport scrub(std::size_t, std::size_t) noexcept {
        return {};
    }
    [[nodiscard]] core::ScrubReport scrub_all() noexcept { return {}; }

    // -- snapshot plane ---------------------------------------------------
    [[nodiscard]] static constexpr std::uint32_t state_id() noexcept {
        return 0x4C546162u;  // "LTab"
    }
    [[nodiscard]] static constexpr std::uint64_t state_fingerprint() noexcept {
        return hash::mix64(0x4C52555441420000ull ^ sizeof(Stats));
    }

    void save_state(std::vector<std::byte>& out) const {
        io::ByteWriter w(out);
        w.u64(parts_.size());
        for (const auto& p : parts_) {
            std::vector<std::byte> pol;
            const bool ok = p.policy->save_state(pol);
            w.u8(ok ? 1 : 0);
            w.u64(pol.size());
            w.bytes(pol.data(), pol.size());
            w.u64(p.pending.size());
            for (const auto& f : p.pending) {
                w.u64(f.ready_at);
                w.u32(f.va);
                w.u32(f.real_address);
            }
        }
    }

    [[nodiscard]] bool load_state(std::span<const std::byte> in) {
        io::ByteReader r(in);
        std::uint64_t n = 0;
        if (!r.u64(n) || n != parts_.size()) return false;
        for (auto& p : parts_) {
            std::uint8_t has_policy = 0;
            if (!r.u8(has_policy)) return false;
            if (!has_policy) return false;
            std::span<const std::byte> pol;
            if (!r.sub(pol)) return false;
            if (!p.policy->load_state(pol)) return false;
            std::uint64_t fills = 0;
            if (!r.u64(fills)) return false;
            p.pending.clear();
            for (std::uint64_t i = 0; i < fills; ++i) {
                TargetPendingFill f;
                if (!r.u64(f.ready_at) || !r.u32(f.va) ||
                    !r.u32(f.real_address)) {
                    return false;
                }
                p.pending.push_back(f);
            }
        }
        return r.done();
    }

    // -- fault hooks ------------------------------------------------------
    template <typename Faults>
    void inject_op_faults(const Faults& faults, std::uint64_t idx,
                          Op& op) const {
        faults.mutate_key(idx, op.flow);
    }
    template <typename Faults>
    void inject_storage_faults(const Faults&, std::uint64_t) const noexcept {}

    // -- reporting --------------------------------------------------------
    /// Build the figure-9 report from engine-merged statistics.
    [[nodiscard]] LruTableReport report(const Stats& s) const {
        LruTableReport r;
        r.packets = s.ops;
        r.fast_path = s.fast_path;
        r.placeholder_hits = s.placeholder_hits;
        r.misses = s.misses;
        r.avg_added_latency_us =
            s.ops == 0 ? 0.0
                       : static_cast<double>(s.added_latency_ns) / 1000.0 /
                             static_cast<double>(s.ops);
        r.miss_rate =
            s.ops == 0
                ? 0.0
                : static_cast<double>(s.placeholder_hits + s.misses) /
                      static_cast<double>(s.ops);
        r.similarity = 1.0;  // tracking unsupported (see header comment)
        return r;
    }

  private:
    struct Partition {
        std::unique_ptr<Policy> policy;
        std::deque<TargetPendingFill> pending;
    };

    void apply_fills(Partition& p, TimeNs now) {
        while (!p.pending.empty() && p.pending.front().ready_at <= now) {
            const TargetPendingFill f = p.pending.front();
            p.pending.pop_front();
            (void)p.policy->fill(f.va, f.real_address, f.ready_at);
        }
    }

    void apply_one(const Routed& r, Stats& s) {
        Partition& p = parts_[r.bucket];
        apply_fills(p, r.ts);
        ++s.ops;
        // Per-op timing only when a registry is attached (one branch, no
        // clock reads otherwise); the observed value covers the policy
        // access — the path whose fast/slow split the paper's LRU
        // promotion protects.
        const bool observe = m_.fast_ns != nullptr;
        std::chrono::steady_clock::time_point t0;
        if (observe) t0 = std::chrono::steady_clock::now();
        const auto a = p.policy->access(r.va, kPlaceholder, r.ts);
        const bool fast = a.hit && a.value != kPlaceholder;
        if (observe) {
            const auto ns = static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    std::chrono::steady_clock::now() - t0)
                    .count());
            (fast ? m_.fast_ns : m_.slow_ns)->record(ns);
        }
        TimeNs added = 0;
        if (fast) {
            ++s.fast_path;
            if (m_.fast != nullptr) m_.fast->add(1);
        } else if (a.hit) {
            ++s.placeholder_hits;
            if (m_.placeholder != nullptr) m_.placeholder->add(1);
            added = cfg_.slow_path_delay;
        } else {
            ++s.misses;
            if (m_.miss != nullptr) m_.miss->add(1);
            added = cfg_.slow_path_delay;
            if (a.inserted) {
                p.pending.push_back(TargetPendingFill{
                    r.ts + cfg_.slow_path_delay, r.va, nat_.lookup(r.va)});
                if (m_.pending != nullptr) m_.pending->add(1);
            }
        }
        s.added_latency_ns += added;
    }

    struct ObsHooks {
        obs::Counter* fast = nullptr;
        obs::Counter* placeholder = nullptr;
        obs::Counter* miss = nullptr;
        obs::Counter* pending = nullptr;
        obs::Histogram* fast_ns = nullptr;
        obs::Histogram* slow_ns = nullptr;
    };

    LruTableConfig cfg_;
    NatTable nat_;
    std::vector<Partition> parts_;
    ObsHooks m_{};
};

static_assert(replay::ReplayTarget<LruTableTarget>);

}  // namespace p4lru::systems::lrutable
