// LruTable (Section 3.1): a data-plane NAT whose fast path is a cache of
// control-plane table entries.
//
// Protocol per packet with virtual address va (the packet's virtual
// destination address, as in the paper):
//   * cache hit with a real address  -> fast path, base latency;
//   * cache hit on a PLACEHOLDER     -> the fill for this flow is still in
//     flight: the packet takes the slow path (latency dT) but does NOT
//     schedule another fill and does not traverse the cache again;
//   * cache miss                     -> slow path (latency dT); the cache
//     inserts a placeholder and the control-plane lookup result re-enters
//     the data plane after dT, replacing the placeholder with the real
//     address (a normal write-path cache update).
//
// The replacement policy is pluggable so the comparative benches (Figure 12)
// run the identical protocol over P4LRU3 / Timeout / Elastic / Coco / ideal
// LRU.
#pragma once

#include <deque>
#include <memory>
#include <optional>
#include <unordered_map>

#include "p4lru/cache/policy.hpp"
#include "p4lru/cache/similarity.hpp"
#include "p4lru/common/stats.hpp"
#include "p4lru/common/types.hpp"

namespace p4lru::systems::lrutable {

/// Virtual address: the packet's virtual destination IP.
using VirtualAddress = std::uint32_t;

/// The control-plane NAT table: the authoritative virtual->real mapping.
/// Mappings are deterministic functions of the virtual address (a
/// pre-provisioned table), so any trace works without a provisioning step.
class NatTable {
  public:
    /// Authoritative lookup (slow path). Never fails: the table is full.
    [[nodiscard]] std::uint32_t lookup(VirtualAddress va) const;
};

/// Placeholder marking an in-flight control-plane lookup (paper: "e.g.
/// 0x00000000 or 0xFFFFFFFF").
inline constexpr std::uint32_t kPlaceholder = 0xFFFFFFFFu;

struct LruTableConfig {
    TimeNs slow_path_delay = 100 * kMicrosecond;  ///< dT
    TimeNs base_latency = 1 * kMicrosecond;       ///< direct forwarding cost
    bool track_similarity = false;
    std::size_t similarity_max_accesses = 0;  ///< required when tracking
};

struct LruTableReport {
    std::uint64_t packets = 0;
    std::uint64_t fast_path = 0;        ///< real-address hits
    std::uint64_t placeholder_hits = 0; ///< slow path, fill already pending
    std::uint64_t misses = 0;           ///< slow path, fill scheduled
    double avg_added_latency_us = 0.0;  ///< mean latency beyond base
    double miss_rate = 0.0;             ///< (placeholder_hits + misses)/packets
    double similarity = 1.0;            ///< only if tracking enabled
};

/// The full system simulation around a pluggable cache policy.
class LruTableSystem {
  public:
    using Policy = cache::ReplacementPolicy<VirtualAddress, std::uint32_t>;

    LruTableSystem(std::unique_ptr<Policy> policy, LruTableConfig cfg);

    /// Process one packet (packets must arrive in non-decreasing ts order).
    /// Returns the latency experienced by this packet.
    TimeNs process(const PacketRecord& pkt);

    /// Drain remaining pending fills (end of trace).
    void finish();

    [[nodiscard]] LruTableReport report() const;

    [[nodiscard]] const Policy& policy() const { return *policy_; }

  private:
    void apply_fills(TimeNs now);

    struct PendingFill {
        TimeNs ready_at = 0;
        VirtualAddress va = 0;
        std::uint32_t real_address = 0;
    };

    std::unique_ptr<Policy> policy_;
    LruTableConfig cfg_;
    NatTable nat_;
    std::deque<PendingFill> pending_;
    std::unique_ptr<cache::SimilarityTracker<VirtualAddress>> similarity_;

    std::uint64_t packets_ = 0;
    std::uint64_t fast_path_ = 0;
    std::uint64_t placeholder_hits_ = 0;
    std::uint64_t misses_ = 0;
    stats::Running added_latency_us_;
};

}  // namespace p4lru::systems::lrutable
