// The switch-side cache of LruIndex (Section 3.2), behind a small interface
// so the benches can swap the paper's series-connected P4LRU3 arrays for the
// baseline policies (Figure 13) without touching the protocol:
//
//   * query packets consult the cache READ-ONLY and stamp cached_flag (the
//     hit level, 0 = miss) and cached_index (the 48-bit record address);
//   * reply packets perform the single mutation — promote on a prior hit,
//     cascade-insert on a prior miss.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "p4lru/cache/policy.hpp"
#include "p4lru/core/p4lru.hpp"
#include "p4lru/core/series_cache.hpp"
#include "p4lru/index/record_store.hpp"

namespace p4lru::systems::lruindex {

using DbKey = std::uint64_t;

/// The two extra header fields LruIndex adds to query/reply packets.
struct CacheHeader {
    std::uint32_t cached_flag = 0;  ///< hit level (1-based); 0 = not cached
    index::RecordAddress cached_index = index::kNullRecord;
    [[nodiscard]] bool hit() const noexcept { return cached_flag != 0; }
};

/// Switch-side cache interface: read-only query pass + mutating reply pass.
class IndexCache {
  public:
    virtual ~IndexCache() = default;

    /// Query pass (read-only). Fills the packet's cache header.
    [[nodiscard]] virtual CacheHeader query(DbKey key) const = 0;

    /// Reply pass: `hdr` is the header the query pass produced, `addr` the
    /// authoritative index carried back by the server.
    virtual void reply(DbKey key, index::RecordAddress addr,
                       const CacheHeader& hdr, TimeNs now) = 0;

    [[nodiscard]] virtual std::size_t capacity_entries() const = 0;
    [[nodiscard]] virtual std::string name() const = 0;
};

/// The paper's cache: `levels` series-connected arrays of P4LRU_N units
/// (N = 3 deployed; N = 1, 2 for the connection-level ablation of Fig. 16).
template <std::size_t N>
class BasicSeriesIndexCache final : public IndexCache {
  public:
    BasicSeriesIndexCache(std::size_t levels, std::size_t units_per_level,
                          std::uint32_t seed)
        : series_(levels, units_per_level, seed) {}

    CacheHeader query(DbKey key) const override {
        CacheHeader hdr;
        const auto lookup = series_.query(key);
        if (lookup.hit()) {
            hdr.cached_flag = static_cast<std::uint32_t>(lookup.level);
            hdr.cached_index = lookup.value;
        }
        return hdr;
    }

    void reply(DbKey key, index::RecordAddress addr,
               const CacheHeader& hdr, TimeNs /*now*/) override {
        if (hdr.hit()) {
            series_.reply_promote(key, addr, hdr.cached_flag);
        } else {
            series_.reply_insert(key, addr);
        }
    }

    std::size_t capacity_entries() const override {
        return series_.capacity();
    }
    std::string name() const override {
        return "P4LRU" + std::to_string(N) + "x" +
               std::to_string(series_.level_count());
    }

    [[nodiscard]] const auto& series() const noexcept { return series_; }
    [[nodiscard]] auto& series() noexcept { return series_; }

  private:
    core::SeriesCache<core::P4lru<DbKey, index::RecordAddress, N>, DbKey,
                      index::RecordAddress>
        series_;
};

/// The deployed configuration (P4LRU3 units).
using SeriesIndexCache = BasicSeriesIndexCache<3>;
using SeriesIndexCache2 = BasicSeriesIndexCache<2>;
using SeriesIndexCache1 = BasicSeriesIndexCache<1>;

/// Adapter running any ReplacementPolicy under the query/reply protocol
/// (used by the Figure-13 comparative bench).
class PolicyIndexCache final : public IndexCache {
  public:
    explicit PolicyIndexCache(
        std::unique_ptr<cache::ReplacementPolicy<DbKey,
                                                 index::RecordAddress>>
            policy)
        : policy_(std::move(policy)) {}

    CacheHeader query(DbKey key) const override {
        CacheHeader hdr;
        if (const auto v = policy_->peek(key)) {
            hdr.cached_flag = 1;
            hdr.cached_index = *v;
        }
        return hdr;
    }

    void reply(DbKey key, index::RecordAddress addr,
               const CacheHeader& /*hdr*/, TimeNs now) override {
        policy_->access(key, addr, now);
    }

    std::size_t capacity_entries() const override {
        return policy_->capacity_entries();
    }
    std::string name() const override { return policy_->name(); }

  private:
    std::unique_ptr<cache::ReplacementPolicy<DbKey, index::RecordAddress>>
        policy_;
};

}  // namespace p4lru::systems::lruindex
