// Closed-loop benchmark driver for LruIndex: `threads` client threads, each
// with one outstanding YCSB query; the switch cache is consulted on the way
// in (read-only) and updated by the reply on the way out. Thread scaling is
// sublinear because index traversals contend on a serialized latch
// (ServerCosts::index_lock_fraction) — which is also why index bypasses
// (cache hits) buy more than their raw latency.
//
// Fault tolerance: a DriverConfig may carry a fault::FlakyService modelling
// a db server that refuses some requests.  The driver then retries each
// refused query with exponential backoff (RetryConfig) in simulated time;
// queries that exhaust their attempts complete as failures and are counted
// in DriverReport::failed_queries instead of wedging the closed loop.  With
// no FlakyService attached the retry path is never entered and the report
// matches the fault-free driver bit-for-bit.
#pragma once

#include <cstdint>
#include <limits>

#include "p4lru/common/types.hpp"
#include "p4lru/fault/fault_plan.hpp"
#include "p4lru/systems/lruindex/db_server.hpp"
#include "p4lru/systems/lruindex/index_cache.hpp"
#include "p4lru/trace/ycsb.hpp"

namespace p4lru::systems::lruindex {

/// Retry policy against a refusing server: attempt k (0-based) that fails is
/// re-sent after min(backoff << k, max_backoff).  max_attempts counts total
/// tries, so 4 means one original send plus up to three retries.
struct RetryConfig {
    std::uint32_t max_attempts = 4;
    TimeNs backoff = 20 * kMicrosecond;  ///< doubles per attempt...
    /// ...up to this ceiling.  The doubling must saturate: an uncapped
    /// `backoff << k` is outright UB once k reaches the width of TimeNs
    /// (a large max_attempts against a persistently refusing server) and
    /// wraps to garbage delays long before that, wrecking the
    /// simulated-time latency sums.  0 means "no explicit ceiling", which
    /// still saturates at the largest representable doubling instead of
    /// wrapping.
    TimeNs max_backoff = 10 * kMillisecond;
};

/// The delay before re-sending attempt `attempt` (0-based, the attempt that
/// just failed): backoff << attempt, saturating at cfg.max_backoff (or at
/// the largest representable doubling when no ceiling is set).  Never
/// wraps or shifts past the type width for any attempt/backoff combination.
[[nodiscard]] constexpr TimeNs retry_backoff(const RetryConfig& cfg,
                                             std::uint32_t attempt) noexcept {
    const TimeNs base = cfg.backoff;
    if (base == 0) return 0;
    const TimeNs cap = cfg.max_backoff != 0
                           ? cfg.max_backoff
                           : std::numeric_limits<TimeNs>::max();
    if (base >= cap) return cap;
    // base << attempt would exceed cap (or the type) iff base > cap >> attempt;
    // comparing in the shifted-down domain never wraps, and the attempt
    // guard keeps both shifts below the width of TimeNs.
    if (attempt >= 63 || base > (cap >> attempt)) return cap;
    return base << attempt;
}

struct DriverConfig {
    std::size_t threads = 8;
    std::size_t queries = 200'000;            ///< total across all threads
    TimeNs net_delay = 3 * kMicrosecond;      ///< one-way client<->server
    trace::YcsbConfig workload{};             ///< keys, skew
    bool use_cache = true;  ///< false = the paper's "Naive Solution"
    const fault::FlakyService* flaky = nullptr;  ///< optional injected faults
    RetryConfig retry{};    ///< consulted only when flaky != nullptr
};

struct DriverReport {
    double throughput_ktps = 0.0;  ///< kilo transactions per second
    double miss_rate = 0.0;        ///< query packets with cached_flag == 0
    double avg_latency_us = 0.0;
    std::uint64_t queries = 0;
    std::uint64_t wrong_replies = 0;  ///< correctness check: must be 0
    std::uint64_t retries = 0;        ///< re-sends after a server refusal
    std::uint64_t failed_queries = 0; ///< gave up after max_attempts
};

/// Run the closed loop against `cache` (may be null when use_cache=false).
[[nodiscard]] DriverReport run_driver(const DriverConfig& cfg,
                                      DbServer& server, IndexCache* cache);

}  // namespace p4lru::systems::lruindex
