// Closed-loop benchmark driver for LruIndex: `threads` client threads, each
// with one outstanding YCSB query; the switch cache is consulted on the way
// in (read-only) and updated by the reply on the way out. Thread scaling is
// sublinear because index traversals contend on a serialized latch
// (ServerCosts::index_lock_fraction) — which is also why index bypasses
// (cache hits) buy more than their raw latency.
#pragma once

#include <cstdint>

#include "p4lru/common/types.hpp"
#include "p4lru/systems/lruindex/db_server.hpp"
#include "p4lru/systems/lruindex/index_cache.hpp"
#include "p4lru/trace/ycsb.hpp"

namespace p4lru::systems::lruindex {

struct DriverConfig {
    std::size_t threads = 8;
    std::size_t queries = 200'000;            ///< total across all threads
    TimeNs net_delay = 3 * kMicrosecond;      ///< one-way client<->server
    trace::YcsbConfig workload{};             ///< keys, skew
    bool use_cache = true;  ///< false = the paper's "Naive Solution"
};

struct DriverReport {
    double throughput_ktps = 0.0;  ///< kilo transactions per second
    double miss_rate = 0.0;        ///< query packets with cached_flag == 0
    double avg_latency_us = 0.0;
    std::uint64_t queries = 0;
    std::uint64_t wrong_replies = 0;  ///< correctness check: must be 0
};

/// Run the closed loop against `cache` (may be null when use_cache=false).
[[nodiscard]] DriverReport run_driver(const DriverConfig& cfg,
                                      DbServer& server, IndexCache* cache);

}  // namespace p4lru::systems::lruindex
