// LruIndex as a ReplayTarget (DESIGN.md §11): the query-acceleration system
// partitioned by DB key so the sharded replay engine can drive it in every
// mode with bit-identical reports.
//
// This target models the *switch + server correctness protocol* of the
// closed-loop driver (driver.hpp) as an open-loop op stream: each op is one
// YCSB query, applied as query-pass (read-only cache consult) -> serve ->
// reply-pass (single cache mutation).  The latency/throughput dimension of
// the driver needs the global event clock and stays in run_driver; what the
// target preserves is everything integer-countable — hits, misses, retries,
// failed queries, wrong replies — which is exactly what the equivalence and
// fault suites check.
//
// Partitioning: op -> partition mix64(key) % G; each partition owns an
// independent series-connected P4LRU3 cache over the shared read-only
// DbServer.  A flaky server is consulted as fails(op.seq, attempt) with the
// sequence number baked into the op at generation time, so the refusal
// pattern is a property of the op stream, not of scheduling — identical in
// every engine mode.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

#include "p4lru/common/byte_io.hpp"
#include "p4lru/common/hash.hpp"
#include "p4lru/common/types.hpp"
#include "p4lru/core/unit_storage.hpp"
#include "p4lru/fault/fault_plan.hpp"
#include "p4lru/obs/metrics.hpp"
#include "p4lru/replay/replay_target.hpp"
#include "p4lru/systems/lruindex/db_server.hpp"
#include "p4lru/systems/lruindex/driver.hpp"
#include "p4lru/systems/lruindex/index_cache.hpp"
#include "p4lru/trace/ycsb.hpp"

namespace p4lru::systems::lruindex {

/// One YCSB query with its sequence number baked in at generation time
/// (FlakyService keys its refusal pattern on it).
struct LruIndexOp {
    std::uint64_t seq = 0;
    DbKey key = 0;
};

/// Generate `count` YCSB queries with sequence numbers 0..count-1.
[[nodiscard]] inline std::vector<LruIndexOp> make_index_ops(
    const trace::YcsbConfig& cfg, std::size_t count) {
    trace::YcsbWorkload workload(cfg);
    std::vector<LruIndexOp> ops;
    ops.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        ops.push_back(LruIndexOp{i, workload.next().key});
    }
    return ops;
}

struct LruIndexRouted {
    std::uint32_t bucket = 0;
    std::uint64_t seq = 0;
    DbKey key = 0;
};

/// Mergeable integer statistics of a LruIndex replay (trivially copyable
/// for the raw-record checkpoint format).
struct LruIndexStats {
    std::uint64_t ops = 0;  ///< queries applied
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t retries = 0;
    std::uint64_t failed_queries = 0;
    std::uint64_t wrong_replies = 0;

    void merge(const LruIndexStats& o) noexcept {
        ops += o.ops;
        hits += o.hits;
        misses += o.misses;
        retries += o.retries;
        failed_queries += o.failed_queries;
        wrong_replies += o.wrong_replies;
    }

    friend bool operator==(const LruIndexStats&,
                           const LruIndexStats&) = default;
};

/// The correctness-protocol report derived from merged statistics.
struct LruIndexReport {
    std::uint64_t queries = 0;
    std::uint64_t cache_hits = 0;
    std::uint64_t misses = 0;
    double miss_rate = 0.0;
    std::uint64_t retries = 0;
    std::uint64_t failed_queries = 0;
    std::uint64_t wrong_replies = 0;  ///< must stay 0
};

class LruIndexTarget {
  public:
    using Op = LruIndexOp;
    using Routed = LruIndexRouted;
    using Stats = LruIndexStats;

    struct Config {
        std::size_t partitions = 8;
        std::size_t levels = 3;           ///< series depth per partition
        std::size_t units_per_level = 64; ///< P4LRU3 units per level
        std::uint32_t seed = 0xC0FFEE;
        const fault::FlakyService* flaky = nullptr;
        RetryConfig retry{};  ///< consulted only when flaky != nullptr
    };

    LruIndexTarget(const DbServer& server, const Config& cfg)
        : server_(&server), cfg_(cfg) {
        if (cfg.partitions == 0) {
            throw std::invalid_argument("LruIndexTarget: zero partitions");
        }
        if (cfg.flaky != nullptr && cfg.retry.max_attempts == 0) {
            throw std::invalid_argument(
                "LruIndexTarget: zero retry attempts");
        }
        parts_.reserve(cfg.partitions);
        for (std::size_t p = 0; p < cfg.partitions; ++p) {
            parts_.emplace_back(
                cfg.levels, cfg.units_per_level,
                cfg.seed + static_cast<std::uint32_t>(p) * 0x5bd1u);
            // Materialize every level eagerly: the snapshot plane reads the
            // level storage whether or not the partition saw traffic.
            auto& series = parts_.back().series();
            for (std::size_t i = 0; i < series.level_count(); ++i) {
                series.level(i).materialize();
            }
        }
    }

    /// Attach live metrics (obs/metrics.hpp): counters
    /// lruindex_hits/misses/retries/failed_queries.  Null detaches (the
    /// default, zero overhead).
    void set_metrics(obs::Registry* reg) {
        m_ = {};
        if (reg == nullptr) return;
        m_.hits = reg->counter("lruindex_hits");
        m_.misses = reg->counter("lruindex_misses");
        m_.retries = reg->counter("lruindex_retries");
        m_.failed = reg->counter("lruindex_failed_queries");
    }

    // -- routing ----------------------------------------------------------
    [[nodiscard]] std::size_t unit_count() const noexcept {
        return parts_.size();
    }

    [[nodiscard]] Routed route(const Op& op) const {
        return Routed{
            static_cast<std::uint32_t>(hash::mix64(op.key) % parts_.size()),
            op.seq, op.key};
    }

    // -- apply ------------------------------------------------------------
    void apply_batch(std::span<const Routed> batch, Stats& s) {
        for (const auto& r : batch) apply_one(r, s);
    }

    void prefetch_unit(std::uint32_t) const noexcept {}
    void prefetch_batch(std::span<const Routed>) const noexcept {}

    // -- first-touch plane (materialized in the constructor) --------------
    [[nodiscard]] bool materialized() const noexcept { return true; }
    void materialize() noexcept {}
    void first_touch_range(std::size_t, std::size_t) noexcept {}
    void mark_materialized() noexcept {}

    // -- integrity plane --------------------------------------------------
    [[nodiscard]] core::ScrubReport scrub(std::size_t lo, std::size_t hi) {
        core::ScrubReport rep;
        for (std::size_t p = lo; p < hi && p < parts_.size(); ++p) {
            auto& series = parts_[p].series();
            for (std::size_t i = 0; i < series.level_count(); ++i) {
                rep.merge(series.level(i).scrub_all());
            }
        }
        return rep;
    }
    [[nodiscard]] core::ScrubReport scrub_all() {
        return scrub(0, parts_.size());
    }

    // -- snapshot plane ---------------------------------------------------
    [[nodiscard]] static constexpr std::uint32_t state_id() noexcept {
        return 0x4C496478u;  // "LIdx"
    }
    [[nodiscard]] static constexpr std::uint64_t state_fingerprint() noexcept {
        return hash::mix64(0x4C5255494458'0000ull ^ sizeof(Stats));
    }

    void save_state(std::vector<std::byte>& out) const {
        io::ByteWriter w(out);
        w.u64(parts_.size());
        for (const auto& p : parts_) {
            const auto& series = p.series();
            w.u64(series.level_count());
            for (std::size_t i = 0; i < series.level_count(); ++i) {
                std::vector<std::byte> planes;
                series.level(i).storage().save_planes(planes);
                w.u64(planes.size());
                w.bytes(planes.data(), planes.size());
            }
        }
    }

    [[nodiscard]] bool load_state(std::span<const std::byte> in) {
        io::ByteReader r(in);
        std::uint64_t n = 0;
        if (!r.u64(n) || n != parts_.size()) return false;
        for (auto& p : parts_) {
            auto& series = p.series();
            std::uint64_t levels = 0;
            if (!r.u64(levels) || levels != series.level_count()) {
                return false;
            }
            for (std::size_t i = 0; i < series.level_count(); ++i) {
                std::span<const std::byte> planes;
                if (!r.sub(planes)) return false;
                if (!series.level(i).storage().load_planes(planes)) {
                    return false;
                }
            }
        }
        return r.done();
    }

    // -- fault hooks ------------------------------------------------------
    // The flaky-server refusal pattern is content-addressed through op.seq
    // (always active, every mode); the byte-corruption hooks additionally
    // let single-owner paths rot a query's key field.
    template <typename Faults>
    void inject_op_faults(const Faults& faults, std::uint64_t idx,
                          Op& op) const {
        faults.mutate_key(idx, op.key);
    }
    template <typename Faults>
    void inject_storage_faults(const Faults&, std::uint64_t) const noexcept {}

    // -- reporting --------------------------------------------------------
    [[nodiscard]] LruIndexReport report(const Stats& s) const {
        LruIndexReport r;
        r.queries = s.ops;
        r.cache_hits = s.hits;
        r.misses = s.misses;
        r.miss_rate = s.ops == 0 ? 0.0
                                 : static_cast<double>(s.misses) /
                                       static_cast<double>(s.ops);
        r.retries = s.retries;
        r.failed_queries = s.failed_queries;
        r.wrong_replies = s.wrong_replies;
        return r;
    }

    [[nodiscard]] const SeriesIndexCache& partition(std::size_t p) const {
        return parts_.at(p);
    }

  private:
    void apply_one(const Routed& r, Stats& s) {
        SeriesIndexCache& cache = parts_[r.bucket];
        ++s.ops;
        const CacheHeader hdr = cache.query(r.key);
        if (hdr.hit()) {
            ++s.hits;
            if (m_.hits != nullptr) m_.hits->add(1);
        } else {
            ++s.misses;
            if (m_.misses != nullptr) m_.misses->add(1);
        }
        // Retry against a refusing server: attempt k that fails is re-sent
        // until max_attempts, then the query completes as failed (the reply
        // pass never runs, mirroring the driver's give-up path).
        if (cfg_.flaky != nullptr) {
            std::uint32_t attempt = 0;
            while (cfg_.flaky->fails(r.seq, attempt)) {
                if (attempt + 1 >= cfg_.retry.max_attempts) {
                    ++s.failed_queries;
                    if (m_.failed != nullptr) m_.failed->add(1);
                    return;
                }
                ++s.retries;
                if (m_.retries != nullptr) m_.retries->add(1);
                ++attempt;
            }
        }
        const ServeResult res = server_->serve(r.key, hdr);
        if (!res.valid || res.addr != server_->address_of(r.key)) {
            ++s.wrong_replies;
        }
        cache.reply(r.key, res.addr, hdr, 0);
    }

    struct ObsHooks {
        obs::Counter* hits = nullptr;
        obs::Counter* misses = nullptr;
        obs::Counter* retries = nullptr;
        obs::Counter* failed = nullptr;
    };

    const DbServer* server_;
    Config cfg_;
    std::vector<SeriesIndexCache> parts_;
    ObsHooks m_{};
};

static_assert(replay::ReplayTarget<LruIndexTarget>);

}  // namespace p4lru::systems::lruindex
