// The database server LruIndex accelerates: a B+ tree index over 64-byte
// records in a RecordStore, plus the service-cost model that turns index
// bypasses into time savings (substituting for the paper's DPDK server;
// see DESIGN.md).
#pragma once

#include <cstdint>

#include "p4lru/common/types.hpp"
#include "p4lru/index/bptree.hpp"
#include "p4lru/index/record_store.hpp"
#include "p4lru/systems/lruindex/index_cache.hpp"

namespace p4lru::systems::lruindex {

struct ServerCosts {
    TimeNs base = 1 * kMicrosecond;          ///< request handling overhead
    TimeNs per_index_hop = 1500;             ///< B+ tree node traversal
    TimeNs record_fetch = 2 * kMicrosecond;  ///< read the 64-byte record
    /// Serialized fraction of the index traversal (latch/lock): makes thread
    /// scaling sublinear and index bypasses more valuable under load.
    double index_lock_fraction = 0.25;
};

/// Result of serving one query.
struct ServeResult {
    index::RecordAddress addr = index::kNullRecord;
    TimeNs service_time = 0;     ///< excluding lock wait
    TimeNs lock_time = 0;        ///< serialized portion (0 on index bypass)
    bool used_index = false;     ///< walked the B+ tree
    bool valid = false;          ///< key existed
    std::array<std::uint8_t, index::RecordStore::kRecordBytes> record{};
};

class DbServer {
  public:
    /// Load `items` records keyed 0..items-1.
    DbServer(std::uint64_t items, ServerCosts costs);

    /// Serve a query that carries the switch's cache header: with a valid
    /// cached index the server fetches the record directly; otherwise it
    /// walks the B+ tree. Returns the authoritative address either way (the
    /// reply packet carries it back for the cache update).
    [[nodiscard]] ServeResult serve(DbKey key, const CacheHeader& hdr) const;

    [[nodiscard]] std::uint64_t items() const noexcept { return items_; }
    [[nodiscard]] std::size_t index_height() const { return tree_.height(); }
    [[nodiscard]] const ServerCosts& costs() const noexcept { return costs_; }

    /// Ground-truth address (tests).
    [[nodiscard]] index::RecordAddress address_of(DbKey key) const;

  private:
    std::uint64_t items_;
    ServerCosts costs_;
    index::RecordStore store_;
    index::BPlusTree<DbKey, index::RecordAddress> tree_;
};

}  // namespace p4lru::systems::lruindex
