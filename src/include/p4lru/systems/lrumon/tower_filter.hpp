// The mouse-flow filter of LruMon (Section 3.3): a sketch whose counters are
// periodically reset. The paper pairs every counter with an 8-bit timestamp
// for lazy per-counter resets on a millisecond scale; resetting a counter on
// first touch in a new window is observably identical to clearing the whole
// sketch at the window boundary, which is how we model it.
//
// Three interchangeable sketches (the paper: "LruMon is also compatible with
// other sketches, such as the CM sketch or the approximate CU sketch").
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "p4lru/common/byte_io.hpp"
#include "p4lru/common/types.hpp"
#include "p4lru/sketch/countmin.hpp"
#include "p4lru/sketch/towersketch.hpp"

namespace p4lru::systems::lrumon {

/// Windowed filter interface over a 32-bit flow fingerprint.
class FlowFilter {
  public:
    virtual ~FlowFilter() = default;

    /// Count `len` bytes for `fp` at time `ts`; returns the flow's estimated
    /// bytes within the current reset window.
    virtual std::uint64_t add_and_estimate(std::uint32_t fp, std::uint32_t len,
                                           TimeNs ts) = 0;

    [[nodiscard]] virtual std::string name() const = 0;
    [[nodiscard]] virtual std::size_t memory_bytes() const = 0;

    /// Append the filter's mutable state (reset window + sketch counters)
    /// to `w`; load_state restores it on an identically-configured filter
    /// (false on a short or misshapen image).  Checkpoint snapshot plane of
    /// the LruMon replay target.
    virtual void save_state(io::ByteWriter& w) const = 0;
    [[nodiscard]] virtual bool load_state(io::ByteReader& r) = 0;
};

struct FilterConfig {
    TimeNs reset_period = 10 * kMillisecond;  ///< paper default
    std::uint64_t seed = 0x70EEE;
    std::size_t tower_width1 = 1u << 20;  ///< 8-bit level
    std::size_t tower_width2 = 1u << 19;  ///< 16-bit level
    std::size_t cm_width = 1u << 19;      ///< CM / CU counters per row
    std::size_t cm_depth = 2;
};

/// TowerSketch-backed filter (the paper's primary configuration).
class TowerFilter final : public FlowFilter {
  public:
    explicit TowerFilter(const FilterConfig& cfg)
        : cfg_(cfg),
          sketch_({{cfg.tower_width1, 8}, {cfg.tower_width2, 16}}, cfg.seed) {}

    std::uint64_t add_and_estimate(std::uint32_t fp, std::uint32_t len,
                                   TimeNs ts) override {
        roll_window(ts);
        return sketch_.add_and_estimate(fp, len);
    }

    std::string name() const override { return "Tower"; }
    std::size_t memory_bytes() const override {
        return sketch_.memory_bytes();
    }

    void save_state(io::ByteWriter& w) const override {
        w.u64(window_);
        sketch_.save(w);
    }
    bool load_state(io::ByteReader& r) override {
        return r.u64(window_) && sketch_.load(r);
    }

  private:
    void roll_window(TimeNs ts) {
        const std::uint64_t w = ts / cfg_.reset_period;
        if (w != window_) {
            sketch_.clear();
            window_ = w;
        }
    }

    FilterConfig cfg_;
    std::uint64_t window_ = 0;
    sketch::TowerSketch<std::uint32_t> sketch_;
};

/// Count-Min-backed filter (used by the testbed experiments, Figure 11).
class CmFilter final : public FlowFilter {
  public:
    explicit CmFilter(const FilterConfig& cfg)
        : cfg_(cfg), sketch_(cfg.cm_width, cfg.cm_depth, cfg.seed) {}

    std::uint64_t add_and_estimate(std::uint32_t fp, std::uint32_t len,
                                   TimeNs ts) override {
        roll_window(ts);
        return sketch_.add_and_estimate(fp, len);
    }

    std::string name() const override { return "CM"; }
    std::size_t memory_bytes() const override {
        return sketch_.memory_bytes();
    }

    void save_state(io::ByteWriter& w) const override {
        w.u64(window_);
        sketch_.save(w);
    }
    bool load_state(io::ByteReader& r) override {
        return r.u64(window_) && sketch_.load(r);
    }

  private:
    void roll_window(TimeNs ts) {
        const std::uint64_t w = ts / cfg_.reset_period;
        if (w != window_) {
            sketch_.clear();
            window_ = w;
        }
    }

    FilterConfig cfg_;
    std::uint64_t window_ = 0;
    sketch::CountMin<std::uint32_t> sketch_;
};

/// CU-backed filter (conservative update halves the overestimation).
class CuFilter final : public FlowFilter {
  public:
    explicit CuFilter(const FilterConfig& cfg)
        : cfg_(cfg), sketch_(cfg.cm_width, cfg.cm_depth, cfg.seed) {}

    std::uint64_t add_and_estimate(std::uint32_t fp, std::uint32_t len,
                                   TimeNs ts) override {
        roll_window(ts);
        return sketch_.add_and_estimate(fp, len);
    }

    std::string name() const override { return "CU"; }
    std::size_t memory_bytes() const override {
        return sketch_.memory_bytes();
    }

    void save_state(io::ByteWriter& w) const override {
        w.u64(window_);
        sketch_.save(w);
    }
    bool load_state(io::ByteReader& r) override {
        return r.u64(window_) && sketch_.load(r);
    }

  private:
    void roll_window(TimeNs ts) {
        const std::uint64_t w = ts / cfg_.reset_period;
        if (w != window_) {
            sketch_.clear();
            window_ = w;
        }
    }

    FilterConfig cfg_;
    std::uint64_t window_ = 0;
    sketch::CuSketch<std::uint32_t> sketch_;
};

enum class FilterKind { kTower, kCm, kCu };

[[nodiscard]] inline std::unique_ptr<FlowFilter> make_filter(
    FilterKind kind, const FilterConfig& cfg) {
    switch (kind) {
        case FilterKind::kTower: return std::make_unique<TowerFilter>(cfg);
        case FilterKind::kCm: return std::make_unique<CmFilter>(cfg);
        case FilterKind::kCu: return std::make_unique<CuFilter>(cfg);
    }
    return nullptr;
}

}  // namespace p4lru::systems::lrumon
