// LruMon as a ReplayTarget (DESIGN.md §11): the telemetry system partitioned
// into `partitions` disjoint slices so the sharded replay engine can drive it
// in every mode — sequential, inline-batched, threaded-sharded, checkpointed
// — with bit-identical reports.
//
// Partitioning: a packet belongs to partition fingerprint32(flow) % G, and a
// partition owns an independent filter + cache-policy + analyzer triple.
// Every per-op effect (filter estimate, cache fill, upload) depends only on
// the owning partition's history, so per-shard statistics over disjoint
// partition sets merge losslessly — the mergeability invariant.  Note this
// is a *different* (deterministic) system than one monolithic LruMonSystem:
// G sketches see G disjoint substreams; equivalence claims are across engine
// modes of the same target, never across targets of different geometry.
//
// Report determinism: LruMonStats carries only integer sums and min/max
// timestamps; LruMonReport's derived rates are computed from the merged
// integers, and the error accounting credits still-cached entries through a
// non-destructive overlay (u64 sums and maxes, both order-independent), so
// hash-map iteration order — which checkpoint restore perturbs — can never
// leak into a report.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <span>
#include <stdexcept>
#include <unordered_map>
#include <utility>
#include <vector>

#include "p4lru/cache/policy.hpp"
#include "p4lru/common/byte_io.hpp"
#include "p4lru/common/hash.hpp"
#include "p4lru/common/types.hpp"
#include "p4lru/core/unit_storage.hpp"
#include "p4lru/obs/metrics.hpp"
#include "p4lru/replay/replay_target.hpp"
#include "p4lru/systems/lrumon/analyzer.hpp"
#include "p4lru/systems/lrumon/lrumon.hpp"
#include "p4lru/systems/lrumon/tower_filter.hpp"

namespace p4lru::systems::lrumon {

/// A packet routed to its owning partition; the fingerprint is hashed once.
struct LruMonRouted {
    std::uint32_t bucket = 0;  ///< owning partition
    std::uint32_t fp = 0;      ///< fingerprint32(pkt.flow)
    PacketRecord pkt{};
};

/// Mergeable integer statistics of a LruMon replay (trivially copyable for
/// the raw-record checkpoint format).  Timestamps merge as min/max so the
/// trace duration survives any shard geometry.
struct LruMonStats {
    std::uint64_t ops = 0;  ///< packets applied
    std::uint64_t filtered = 0;
    std::uint64_t elephants = 0;
    std::uint64_t hits = 0;
    std::uint64_t uploads = 0;
    TimeNs first_ts = std::numeric_limits<TimeNs>::max();
    TimeNs last_ts = 0;

    void merge(const LruMonStats& o) noexcept {
        ops += o.ops;
        filtered += o.filtered;
        elephants += o.elephants;
        hits += o.hits;
        uploads += o.uploads;
        first_ts = std::min(first_ts, o.first_ts);
        last_ts = std::max(last_ts, o.last_ts);
    }

    friend bool operator==(const LruMonStats&, const LruMonStats&) = default;
};

class LruMonTarget {
  public:
    using Op = PacketRecord;
    using Routed = LruMonRouted;
    using Stats = LruMonStats;
    using PolicyPtr =
        std::unique_ptr<cache::ReplacementPolicy<std::uint32_t, FlowLen>>;

    /// Per-partition component factories: called once per partition with its
    /// index so each slice gets an independent (distinctly seeded) instance.
    using FilterFactory =
        std::function<std::unique_ptr<FlowFilter>(std::size_t)>;
    using PolicyFactory = std::function<PolicyPtr(std::size_t)>;

    LruMonTarget(std::size_t partitions, const FilterFactory& make_filter,
                 const PolicyFactory& make_policy, LruMonConfig cfg = {})
        : cfg_(cfg) {
        if (partitions == 0) {
            throw std::invalid_argument("LruMonTarget: zero partitions");
        }
        parts_.reserve(partitions);
        for (std::size_t p = 0; p < partitions; ++p) {
            Partition part;
            part.filter = make_filter(p);
            part.policy = make_policy(p);
            if (!part.filter || !part.policy) {
                throw std::invalid_argument(
                    "LruMonTarget: factory returned null");
            }
            parts_.push_back(std::move(part));
        }
    }

    /// Attach live metrics (obs/metrics.hpp): counters
    /// lrumon_filtered/elephants/hits/uploads.  Null detaches (the default,
    /// zero overhead).
    void set_metrics(obs::Registry* reg) {
        m_ = {};
        if (reg == nullptr) return;
        m_.filtered = reg->counter("lrumon_filtered");
        m_.elephants = reg->counter("lrumon_elephants");
        m_.hits = reg->counter("lrumon_hits");
        m_.uploads = reg->counter("lrumon_uploads");
    }

    // -- routing ----------------------------------------------------------
    [[nodiscard]] std::size_t unit_count() const noexcept {
        return parts_.size();
    }

    [[nodiscard]] Routed route(const Op& op) const {
        const std::uint32_t fp = hash::fingerprint32(op.flow);
        return Routed{
            static_cast<std::uint32_t>(fp % parts_.size()), fp, op};
    }

    // -- apply ------------------------------------------------------------
    void apply_batch(std::span<const Routed> batch, Stats& s) {
        for (const auto& r : batch) apply_one(r, s);
    }

    void prefetch_unit(std::uint32_t) const noexcept {}
    void prefetch_batch(std::span<const Routed>) const noexcept {}

    // -- first-touch plane (eagerly built) --------------------------------
    [[nodiscard]] bool materialized() const noexcept { return true; }
    void materialize() noexcept {}
    void first_touch_range(std::size_t, std::size_t) noexcept {}
    void mark_materialized() noexcept {}

    // -- integrity plane (the sketch/policy components own no raw planes
    //    with embedded integrity metadata; nothing to scan) ---------------
    [[nodiscard]] core::ScrubReport scrub(std::size_t, std::size_t) noexcept {
        return {};
    }
    [[nodiscard]] core::ScrubReport scrub_all() noexcept { return {}; }

    // -- snapshot plane ---------------------------------------------------
    [[nodiscard]] static constexpr std::uint32_t state_id() noexcept {
        return 0x4C4D6F6Eu;  // "LMon"
    }
    [[nodiscard]] static constexpr std::uint64_t state_fingerprint() noexcept {
        return hash::mix64(0x4C52554D4F4E0000ull ^ sizeof(Stats));
    }

    void save_state(std::vector<std::byte>& out) const {
        io::ByteWriter w(out);
        w.u64(parts_.size());
        for (const auto& p : parts_) {
            p.filter->save_state(w);
            std::vector<std::byte> pol;
            const bool ok = p.policy->save_state(pol);
            w.u8(ok ? 1 : 0);
            w.u64(pol.size());
            w.bytes(pol.data(), pol.size());
            p.analyzer.save_state(w);
            // Sorted for a canonical image (see Analyzer::save_state).
            std::vector<std::pair<FlowKey, std::uint64_t>> rows(
                p.true_bytes.begin(), p.true_bytes.end());
            std::sort(rows.begin(), rows.end(),
                      [](const auto& a, const auto& b) {
                          return a.first.bytes() < b.first.bytes();
                      });
            w.u64(rows.size());
            for (const auto& [flow, bytes] : rows) {
                w.pod(flow);
                w.u64(bytes);
            }
        }
    }

    [[nodiscard]] bool load_state(std::span<const std::byte> in) {
        io::ByteReader r(in);
        std::uint64_t n = 0;
        if (!r.u64(n) || n != parts_.size()) return false;
        for (auto& p : parts_) {
            if (!p.filter->load_state(r)) return false;
            std::uint8_t has_policy = 0;
            if (!r.u8(has_policy)) return false;
            // A policy without state serialization cannot be restored.
            if (!has_policy) return false;
            std::span<const std::byte> pol;
            if (!r.sub(pol)) return false;
            if (!p.policy->load_state(pol)) return false;
            if (!p.analyzer.load_state(r)) return false;
            std::uint64_t flows = 0;
            if (!r.u64(flows)) return false;
            p.true_bytes.clear();
            for (std::uint64_t i = 0; i < flows; ++i) {
                FlowKey flow{};
                std::uint64_t bytes = 0;
                if (!r.pod(flow) || !r.u64(bytes)) return false;
                p.true_bytes.emplace(flow, bytes);
            }
        }
        return r.done();
    }

    // -- fault hooks ------------------------------------------------------
    template <typename Faults>
    void inject_op_faults(const Faults& faults, std::uint64_t idx,
                          Op& op) const {
        faults.mutate_key(idx, op.flow);
    }
    template <typename Faults>
    void inject_storage_faults(const Faults&, std::uint64_t) const noexcept {
        // Partition components expose no raw storage planes to corrupt.
    }

    // -- reporting --------------------------------------------------------
    /// Build the figure-11 report from engine-merged statistics.  Pure: the
    /// teardown flush is computed as an overlay (still-cached entries
    /// credited to their flows through the analyzer's fp table) instead of
    /// mutating the analyzer, so report-after-checkpoint-resume equals
    /// report-after-straight-run bit for bit.
    [[nodiscard]] LruMonReport report(const Stats& s) const {
        LruMonReport r;
        r.packets = s.ops;
        r.filtered_packets = s.filtered;
        r.elephant_packets = s.elephants;
        r.cache_hits = s.hits;
        r.uploads = s.uploads;
        const double secs =
            (s.ops != 0 && s.last_ts > s.first_ts)
                ? static_cast<double>(s.last_ts - s.first_ts) / 1e9
                : 1.0;
        r.upload_kpps = static_cast<double>(r.uploads) / secs / 1e3;
        r.cache_miss_rate =
            s.elephants == 0
                ? 0.0
                : static_cast<double>(s.elephants - s.hits) /
                      static_cast<double>(s.elephants);
        if (!cfg_.track_ground_truth) return r;
        for (const auto& p : parts_) {
            std::unordered_map<FlowKey, std::uint64_t> residual;
            p.policy->for_each(
                [&](const std::uint32_t& fp, const FlowLen& len) {
                    if (const FlowKey* flow = p.analyzer.flow_of(fp)) {
                        residual[*flow] += len;
                    }
                });
            for (const auto& [flow, bytes] : p.true_bytes) {
                r.total_bytes += bytes;
                std::uint64_t measured = p.analyzer.measured_bytes(flow);
                if (const auto it = residual.find(flow);
                    it != residual.end()) {
                    measured += it->second;
                }
                if (measured > bytes) {
                    ++r.overestimated_flows;
                } else {
                    r.max_flow_error =
                        std::max(r.max_flow_error, bytes - measured);
                }
                r.measured_bytes += std::min(measured, bytes);
            }
        }
        r.total_error_rate =
            r.total_bytes == 0
                ? 0.0
                : static_cast<double>(r.total_bytes - r.measured_bytes) /
                      static_cast<double>(r.total_bytes);
        return r;
    }

    [[nodiscard]] const Analyzer& analyzer(std::size_t p) const {
        return parts_.at(p).analyzer;
    }

  private:
    struct Partition {
        std::unique_ptr<FlowFilter> filter;
        PolicyPtr policy;
        Analyzer analyzer;
        std::unordered_map<FlowKey, std::uint64_t> true_bytes;
    };

    void apply_one(const Routed& r, Stats& s) {
        Partition& p = parts_[r.bucket];
        ++s.ops;
        s.first_ts = std::min(s.first_ts, r.pkt.ts);
        s.last_ts = std::max(s.last_ts, r.pkt.ts);
        if (cfg_.track_ground_truth) p.true_bytes[r.pkt.flow] += r.pkt.len;
        const std::uint64_t est =
            p.filter->add_and_estimate(r.fp, r.pkt.len, r.pkt.ts);
        if (est < cfg_.threshold) {
            ++s.filtered;
            if (m_.filtered != nullptr) m_.filtered->add(1);
            return;
        }
        ++s.elephants;
        if (m_.elephants != nullptr) m_.elephants->add(1);
        const auto a = p.policy->fill(r.fp, r.pkt.len, r.pkt.ts);
        if (a.hit) {
            ++s.hits;
            if (m_.hits != nullptr) m_.hits->add(1);
            return;
        }
        ++s.uploads;
        if (m_.uploads != nullptr) m_.uploads->add(1);
        if (a.inserted) {
            p.analyzer.on_upload(r.pkt.flow, r.fp,
                                 a.evicted ? a.evicted_key : 0,
                                 a.evicted ? a.evicted_value : 0);
        } else {
            p.analyzer.on_upload(r.pkt.flow, r.fp, r.fp, r.pkt.len);
        }
    }

    struct ObsHooks {
        obs::Counter* filtered = nullptr;
        obs::Counter* elephants = nullptr;
        obs::Counter* hits = nullptr;
        obs::Counter* uploads = nullptr;
    };

    LruMonConfig cfg_;
    std::vector<Partition> parts_;
    ObsHooks m_{};
};

static_assert(replay::ReplayTarget<LruMonTarget>);

}  // namespace p4lru::systems::lrumon
