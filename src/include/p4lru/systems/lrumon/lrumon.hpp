// LruMon (Section 3.3): data-plane telemetry that never overestimates.
//
// Per packet: the windowed filter drops mouse traffic (est < threshold);
// elephant packets enter the fingerprint-keyed cache with accumulate-on-hit
// semantics; every cache miss uploads <f, fp', len'> to the analyzer. A
// better replacement policy means fewer misses, hence fewer uploads — the
// quantity Figures 11/14/17 measure — while accuracy is structurally
// unaffected (only the filter can under-count, and only below threshold).
#pragma once

#include <memory>
#include <unordered_map>

#include "p4lru/cache/policy.hpp"
#include "p4lru/common/types.hpp"
#include "p4lru/systems/lrumon/analyzer.hpp"
#include "p4lru/systems/lrumon/tower_filter.hpp"

namespace p4lru::systems::lrumon {

using FlowLen = std::uint64_t;

struct LruMonConfig {
    std::uint32_t threshold = 1500;  ///< filter threshold L (bytes)
    bool track_ground_truth = true;  ///< keep per-flow true byte counts
};

struct LruMonReport {
    std::uint64_t packets = 0;
    std::uint64_t filtered_packets = 0;  ///< mouse packets dropped
    std::uint64_t elephant_packets = 0;
    std::uint64_t cache_hits = 0;
    std::uint64_t uploads = 0;           ///< entries sent to the analyzer
    double upload_kpps = 0.0;            ///< uploads / trace seconds / 1e3
    double cache_miss_rate = 0.0;        ///< among elephant packets
    std::uint64_t total_bytes = 0;
    std::uint64_t measured_bytes = 0;
    double total_error_rate = 0.0;       ///< underestimation / total bytes
    std::uint64_t max_flow_error = 0;    ///< max per-flow underestimation
    std::uint64_t overestimated_flows = 0;  ///< must stay 0
};

class LruMonSystem {
  public:
    LruMonSystem(std::unique_ptr<FlowFilter> filter,
                 std::unique_ptr<cache::ReplacementPolicy<std::uint32_t,
                                                          FlowLen>>
                     policy,
                 LruMonConfig cfg);

    /// Process one packet (timestamps non-decreasing).
    void process(const PacketRecord& pkt);

    /// No-op, kept for API compatibility: report() finalizes on demand, so
    /// there is no teardown step to forget.
    void finish();

    /// Report over everything processed so far.  Exact at any point:
    /// entries still cached in the data plane are credited to their flows
    /// through a non-destructive overlay (the analyzer tables are never
    /// mutated), so calling report() mid-trace, twice, or after more
    /// packets always yields the numbers a teardown flush would.
    [[nodiscard]] LruMonReport report() const;

    [[nodiscard]] const Analyzer& analyzer() const noexcept {
        return analyzer_;
    }

  private:
    std::unique_ptr<FlowFilter> filter_;
    std::unique_ptr<cache::ReplacementPolicy<std::uint32_t, FlowLen>> policy_;
    LruMonConfig cfg_;
    Analyzer analyzer_;

    std::unordered_map<FlowKey, std::uint64_t> true_bytes_;
    std::unordered_map<std::uint32_t, FlowKey> fp_owner_;  // ground truth aid

    std::uint64_t packets_ = 0;
    std::uint64_t filtered_ = 0;
    std::uint64_t elephants_ = 0;
    std::uint64_t hits_ = 0;
    TimeNs first_ts_ = 0;
    TimeNs last_ts_ = 0;
};

}  // namespace p4lru::systems::lrumon
