// The remote analyzer of LruMon (Section 3.3): receives the entries the
// data plane uploads on cache misses, maintains the T_fp (flow -> fp) and
// T_len (flow -> bytes) tables, and credits evicted fingerprints back to
// their flows.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "p4lru/common/types.hpp"

namespace p4lru::systems::lrumon {

class Analyzer {
  public:
    /// An uploaded data plane entry <f, fp', len'>: the flow whose miss
    /// triggered the upload, and the evicted fingerprint with its byte
    /// count (fp' == 0 when the miss evicted nothing).
    void on_upload(const FlowKey& flow, std::uint32_t flow_fp,
                   std::uint32_t evicted_fp, std::uint64_t evicted_len);

    /// Teardown flush of entries still cached in the data plane.
    void on_flush(std::uint32_t fp, std::uint64_t len);

    /// Measured bytes of `flow` (0 if never seen).
    [[nodiscard]] std::uint64_t measured_bytes(const FlowKey& flow) const;

    [[nodiscard]] std::uint64_t uploads() const noexcept { return uploads_; }
    [[nodiscard]] std::size_t known_flows() const noexcept {
        return t_len_.size();
    }
    /// Evicted fingerprints that matched no known flow (collision or flush
    /// ordering artifacts); should stay ~0.
    [[nodiscard]] std::uint64_t unmatched() const noexcept {
        return unmatched_;
    }

  private:
    void credit(std::uint32_t fp, std::uint64_t len);

    std::unordered_map<FlowKey, std::uint32_t> t_fp_;
    std::unordered_map<FlowKey, std::uint64_t> t_len_;
    std::unordered_map<std::uint32_t, FlowKey> fp_to_flow_;
    std::uint64_t uploads_ = 0;
    std::uint64_t unmatched_ = 0;
};

}  // namespace p4lru::systems::lrumon
