// The remote analyzer of LruMon (Section 3.3): receives the entries the
// data plane uploads on cache misses, maintains the T_fp (flow -> fp) and
// T_len (flow -> bytes) tables, and credits evicted fingerprints back to
// their flows.
#pragma once

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "p4lru/common/byte_io.hpp"
#include "p4lru/common/types.hpp"

namespace p4lru::systems::lrumon {

class Analyzer {
  public:
    /// An uploaded data plane entry <f, fp', len'>: the flow whose miss
    /// triggered the upload, and the evicted fingerprint with its byte
    /// count (fp' == 0 when the miss evicted nothing).
    void on_upload(const FlowKey& flow, std::uint32_t flow_fp,
                   std::uint32_t evicted_fp, std::uint64_t evicted_len);

    /// Teardown flush of entries still cached in the data plane.
    void on_flush(std::uint32_t fp, std::uint64_t len);

    /// Measured bytes of `flow` (0 if never seen).
    [[nodiscard]] std::uint64_t measured_bytes(const FlowKey& flow) const;

    /// The flow a fingerprint currently maps to (nullptr if unknown); lets
    /// report() credit still-cached entries without mutating the tables.
    [[nodiscard]] const FlowKey* flow_of(std::uint32_t fp) const {
        const auto it = fp_to_flow_.find(fp);
        return it == fp_to_flow_.end() ? nullptr : &it->second;
    }

    [[nodiscard]] std::uint64_t uploads() const noexcept { return uploads_; }
    [[nodiscard]] std::size_t known_flows() const noexcept {
        return t_len_.size();
    }
    /// Evicted fingerprints that matched no known flow (collision or flush
    /// ordering artifacts); should stay ~0.
    [[nodiscard]] std::uint64_t unmatched() const noexcept {
        return unmatched_;
    }

    /// Append the analyzer's full state (tables + counters) to `w`; the
    /// checkpoint snapshot plane of the LruMon replay target.  The tables
    /// are serialized in sorted key order so the image is *canonical*:
    /// identical logical state yields identical bytes, whatever insertion
    /// history the hash maps went through (a restored-and-resumed replay
    /// produces the same image as an uninterrupted one).
    void save_state(io::ByteWriter& w) const {
        w.u64(uploads_);
        w.u64(unmatched_);
        const auto flow_less = [](const FlowKey& a, const FlowKey& b) {
            return a.bytes() < b.bytes();
        };
        {
            std::vector<std::pair<FlowKey, std::uint32_t>> rows(
                t_fp_.begin(), t_fp_.end());
            std::sort(rows.begin(), rows.end(),
                      [&](const auto& a, const auto& b) {
                          return flow_less(a.first, b.first);
                      });
            w.u64(rows.size());
            for (const auto& [flow, fp] : rows) {
                w.pod(flow);
                w.u32(fp);
            }
        }
        {
            std::vector<std::pair<FlowKey, std::uint64_t>> rows(
                t_len_.begin(), t_len_.end());
            std::sort(rows.begin(), rows.end(),
                      [&](const auto& a, const auto& b) {
                          return flow_less(a.first, b.first);
                      });
            w.u64(rows.size());
            for (const auto& [flow, len] : rows) {
                w.pod(flow);
                w.u64(len);
            }
        }
        {
            std::vector<std::pair<std::uint32_t, FlowKey>> rows(
                fp_to_flow_.begin(), fp_to_flow_.end());
            std::sort(rows.begin(), rows.end(),
                      [](const auto& a, const auto& b) {
                          return a.first < b.first;
                      });
            w.u64(rows.size());
            for (const auto& [fp, flow] : rows) {
                w.u32(fp);
                w.pod(flow);
            }
        }
    }

    /// Restore state written by save_state(); false on a short image.
    [[nodiscard]] bool load_state(io::ByteReader& r) {
        t_fp_.clear();
        t_len_.clear();
        fp_to_flow_.clear();
        std::uint64_t n = 0;
        if (!r.u64(uploads_) || !r.u64(unmatched_) || !r.u64(n)) return false;
        for (std::uint64_t i = 0; i < n; ++i) {
            FlowKey flow{};
            std::uint32_t fp = 0;
            if (!r.pod(flow) || !r.u32(fp)) return false;
            t_fp_.emplace(flow, fp);
        }
        if (!r.u64(n)) return false;
        for (std::uint64_t i = 0; i < n; ++i) {
            FlowKey flow{};
            std::uint64_t len = 0;
            if (!r.pod(flow) || !r.u64(len)) return false;
            t_len_.emplace(flow, len);
        }
        if (!r.u64(n)) return false;
        for (std::uint64_t i = 0; i < n; ++i) {
            std::uint32_t fp = 0;
            FlowKey flow{};
            if (!r.u32(fp) || !r.pod(flow)) return false;
            fp_to_flow_.emplace(fp, flow);
        }
        return true;
    }

  private:
    void credit(std::uint32_t fp, std::uint64_t len);

    std::unordered_map<FlowKey, std::uint32_t> t_fp_;
    std::unordered_map<FlowKey, std::uint64_t> t_len_;
    std::unordered_map<std::uint32_t, FlowKey> fp_to_flow_;
    std::uint64_t uploads_ = 0;
    std::uint64_t unmatched_ = 0;
};

}  // namespace p4lru::systems::lrumon
