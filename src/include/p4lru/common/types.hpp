// Fundamental packet/flow types shared by every subsystem.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <cstring>
#include <functional>
#include <string>

namespace p4lru {

/// IPv4 5-tuple identifying a flow. This is the cache key of LruTable and the
/// pre-fingerprint flow identity of LruMon. Stored packed so it can be hashed
/// as a flat 13-byte buffer, exactly like the P4 programs hash header slices.
struct FlowKey {
    std::uint32_t src_ip = 0;
    std::uint32_t dst_ip = 0;
    std::uint16_t src_port = 0;
    std::uint16_t dst_port = 0;
    std::uint8_t proto = 0;
    /// Explicit tail padding, pinned to zero.  FlowKey objects are copied
    /// whole into checkpointable storage planes (soa_slab key plane, AoS
    /// unit image); compiler-copied implicit padding carries unspecified
    /// stack bytes, which would make two behaviourally identical replays
    /// produce plane images that differ in dead bytes — breaking the
    /// bit-identical checkpoint round-trip guarantee (checkpoint.hpp).
    std::uint8_t pad_[3] = {0, 0, 0};

    friend auto operator<=>(const FlowKey&, const FlowKey&) = default;

    /// Serialize into the canonical 13-byte wire layout used for hashing.
    [[nodiscard]] std::array<std::uint8_t, 13> bytes() const noexcept {
        std::array<std::uint8_t, 13> out{};
        std::memcpy(out.data(), &src_ip, 4);
        std::memcpy(out.data() + 4, &dst_ip, 4);
        std::memcpy(out.data() + 8, &src_port, 2);
        std::memcpy(out.data() + 10, &dst_port, 2);
        out[12] = proto;
        return out;
    }

    [[nodiscard]] std::string to_string() const;
};

/// Nanosecond simulation timestamp. All simulators use a single clock domain.
using TimeNs = std::uint64_t;

constexpr TimeNs kMicrosecond = 1'000;
constexpr TimeNs kMillisecond = 1'000'000;
constexpr TimeNs kSecond = 1'000'000'000;

/// A single trace record: arrival time, flow identity and wire length.
struct PacketRecord {
    TimeNs ts = 0;
    FlowKey flow{};
    std::uint32_t len = 0;  ///< bytes on the wire

    friend bool operator==(const PacketRecord&, const PacketRecord&) = default;
};

}  // namespace p4lru

template <>
struct std::hash<p4lru::FlowKey> {
    std::size_t operator()(const p4lru::FlowKey& k) const noexcept {
        // 64-bit mix of the packed tuple; quality matters only for host-side
        // std::unordered_map usage (simulator bookkeeping), not for the data
        // plane models, which use p4lru::hash CRC32/Murmur3 explicitly.
        std::uint64_t a = (std::uint64_t{k.src_ip} << 32) | k.dst_ip;
        std::uint64_t b = (std::uint64_t{k.src_port} << 24) |
                          (std::uint64_t{k.dst_port} << 8) | k.proto;
        a ^= b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2);
        a ^= a >> 33;
        a *= 0xff51afd7ed558ccdULL;
        a ^= a >> 33;
        return static_cast<std::size_t>(a);
    }
};
