// Hash functions implemented from scratch.
//
// The data-plane models use CRC32 (what Tofino's hash engines compute) seeded
// with per-array polynom-like salts; host-side structures use Murmur3/xxHash64
// finalizer-quality mixing. Nothing here depends on third-party code.
#pragma once

#include <cstdint>
#include <span>

#include "p4lru/common/types.hpp"

namespace p4lru::hash {

/// CRC32 (reflected, polynomial 0xEDB88320), the classic Ethernet CRC that
/// Tofino hash engines expose. `seed` models per-table hash-salt configuration.
[[nodiscard]] std::uint32_t crc32(std::span<const std::uint8_t> data,
                                  std::uint32_t seed = 0) noexcept;

/// MurmurHash3 x86 32-bit finalization-complete implementation.
[[nodiscard]] std::uint32_t murmur3_32(std::span<const std::uint8_t> data,
                                       std::uint32_t seed) noexcept;

/// xxHash64 (from the published algorithm description), used for 64-bit
/// fingerprints and host-side indexing.
[[nodiscard]] std::uint64_t xxhash64(std::span<const std::uint8_t> data,
                                     std::uint64_t seed) noexcept;

/// Mix a 64-bit integer (SplitMix64 finalizer). Cheap avalanche for integers.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/// A seeded hash function over FlowKeys producing a slot in [0, buckets).
/// Models one configured hash unit of the switch: same seed -> same function.
class FlowHasher {
  public:
    FlowHasher() = default;
    explicit FlowHasher(std::uint32_t seed, std::size_t buckets = 0) noexcept
        : seed_(seed), buckets_(buckets) {}

    /// Raw 32-bit digest of the flow key.
    [[nodiscard]] std::uint32_t digest(const FlowKey& k) const noexcept {
        const auto b = k.bytes();
        return crc32(std::span<const std::uint8_t>(b.data(), b.size()), seed_);
    }

    /// Slot index in [0, buckets). Requires buckets > 0.
    [[nodiscard]] std::size_t slot(const FlowKey& k) const noexcept {
        return static_cast<std::size_t>(
            (std::uint64_t{digest(k)} * buckets_) >> 32);
    }

    /// Slot index for a 32-bit key, CRC32 over its little-endian bytes —
    /// byte-identical to what the pipeline hash engine computes, so the
    /// behavioural arrays and the pipeline programs agree on buckets.
    [[nodiscard]] std::size_t slot_u32(std::uint32_t key) const noexcept {
        std::uint8_t b[4];
        b[0] = static_cast<std::uint8_t>(key);
        b[1] = static_cast<std::uint8_t>(key >> 8);
        b[2] = static_cast<std::uint8_t>(key >> 16);
        b[3] = static_cast<std::uint8_t>(key >> 24);
        const std::uint32_t h =
            crc32(std::span<const std::uint8_t>(b, 4), seed_);
        return static_cast<std::size_t>((std::uint64_t{h} * buckets_) >> 32);
    }

    /// Slot index for a 64-bit key (LruIndex DB keys), same CRC32 scheme.
    [[nodiscard]] std::size_t slot_u64(std::uint64_t key) const noexcept {
        std::uint8_t b[8];
        for (int i = 0; i < 8; ++i) {
            b[i] = static_cast<std::uint8_t>(key >> (8 * i));
        }
        const std::uint32_t h =
            crc32(std::span<const std::uint8_t>(b, 8), seed_);
        return static_cast<std::size_t>((std::uint64_t{h} * buckets_) >> 32);
    }

    [[nodiscard]] std::uint32_t seed() const noexcept { return seed_; }
    [[nodiscard]] std::size_t buckets() const noexcept { return buckets_; }

  private:
    std::uint32_t seed_ = 0;
    std::size_t buckets_ = 0;
};

/// 32-bit flow fingerprint used by LruMon as the cache key. A distinct seed
/// keeps it independent from the bucket-choosing hash, as in the paper.
[[nodiscard]] std::uint32_t fingerprint32(const FlowKey& k) noexcept;

}  // namespace p4lru::hash
