// Deterministic, fast pseudo-random generators implemented from scratch.
//
// Benchmarks and tests must be reproducible across runs and platforms, so we
// do not rely on std::default_random_engine (unspecified) and implement
// SplitMix64 (seeding) and xoshiro256** (bulk generation) ourselves.
#pragma once

#include <cstdint>
#include <limits>

namespace p4lru::rng {

/// SplitMix64: tiny, excellent for seeding and hashing integers.
class SplitMix64 {
  public:
    using result_type = std::uint64_t;
    explicit constexpr SplitMix64(std::uint64_t seed) noexcept : x_(seed) {}

    constexpr std::uint64_t next() noexcept {
        std::uint64_t z = (x_ += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

    constexpr std::uint64_t operator()() noexcept { return next(); }
    static constexpr std::uint64_t min() noexcept { return 0; }
    static constexpr std::uint64_t max() noexcept {
        return std::numeric_limits<std::uint64_t>::max();
    }

  private:
    std::uint64_t x_;
};

/// xoshiro256**: the workhorse generator for workload synthesis.
class Xoshiro256 {
  public:
    using result_type = std::uint64_t;

    explicit constexpr Xoshiro256(std::uint64_t seed) noexcept {
        SplitMix64 sm(seed);
        for (auto& s : s_) s = sm.next();
    }

    constexpr std::uint64_t next() noexcept {
        const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
        const std::uint64_t t = s_[1] << 17;
        s_[2] ^= s_[0];
        s_[3] ^= s_[1];
        s_[1] ^= s_[2];
        s_[0] ^= s_[3];
        s_[2] ^= t;
        s_[3] = rotl(s_[3], 45);
        return result;
    }

    constexpr std::uint64_t operator()() noexcept { return next(); }
    static constexpr std::uint64_t min() noexcept { return 0; }
    static constexpr std::uint64_t max() noexcept {
        return std::numeric_limits<std::uint64_t>::max();
    }

    /// Uniform double in [0, 1).
    constexpr double uniform() noexcept {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /// Uniform integer in [0, bound). Lemire's multiply-shift reduction;
    /// bias is negligible for our bounds (< 2^40).
    constexpr std::uint64_t below(std::uint64_t bound) noexcept {
        return static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(next()) * bound) >> 64);
    }

    /// Uniform integer in [lo, hi] inclusive.
    constexpr std::uint64_t between(std::uint64_t lo,
                                    std::uint64_t hi) noexcept {
        return lo + below(hi - lo + 1);
    }

    /// Bernoulli trial with probability p.
    constexpr bool chance(double p) noexcept { return uniform() < p; }

    /// Exponentially distributed double with the given mean (> 0).
    double exponential(double mean) noexcept;

  private:
    static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
        return (x << k) | (x >> (64 - k));
    }
    std::uint64_t s_[4]{};
};

}  // namespace p4lru::rng
