// Zipf-distributed integer sampler.
//
// Used by the CAIDA-like trace generator (heavy-tailed flow sizes) and by the
// YCSB workload (key popularity with skew alpha = 0.9, as in the paper's
// LruIndex evaluation).
#pragma once

#include <cstdint>
#include <vector>

#include "p4lru/common/random.hpp"

namespace p4lru::rng {

/// Samples ranks in [1, n] with P(rank = k) proportional to k^-alpha.
///
/// Implementation: rejection-inversion (W. Hormann, G. Derflinger, 1996),
/// O(1) per sample, no O(n) table, exact for any alpha >= 0, n >= 1.
class ZipfSampler {
  public:
    ZipfSampler(std::uint64_t n, double alpha);

    /// Draw one rank in [1, n].
    [[nodiscard]] std::uint64_t sample(Xoshiro256& rng) const;

    [[nodiscard]] std::uint64_t n() const noexcept { return n_; }
    [[nodiscard]] double alpha() const noexcept { return alpha_; }

  private:
    [[nodiscard]] double h(double x) const;
    [[nodiscard]] double h_integral(double x) const;
    [[nodiscard]] double h_integral_inverse(double x) const;

    std::uint64_t n_;
    double alpha_;
    double h_integral_x1_;
    double h_integral_num_elements_;
    double s_;
};

/// Pre-shuffled Zipf: maps sampled ranks through a fixed pseudo-random
/// permutation so that popular keys are scattered over the key space
/// (YCSB's "scrambled zipfian"). Deterministic given the seed.
///
/// The permutation is a 4-round Feistel network over the smallest even-bit
/// power-of-two domain covering [0, n), cycle-walked back into range — a
/// true bijection for every n.  (The previous hash-and-mod scramble was
/// not: mix64(rank ^ salt) % n collides, so distinct Zipf ranks could
/// alias to one key, silently inflating the hottest keys' popularity and
/// shrinking the effective key space.)
class ScrambledZipf {
  public:
    ScrambledZipf(std::uint64_t n, double alpha, std::uint64_t seed);

    /// Draw one key in [0, n).
    [[nodiscard]] std::uint64_t sample(Xoshiro256& rng) const;

    /// The scramble itself: a bijection on [0, n) (property-tested).
    /// `x` must be < n.
    [[nodiscard]] std::uint64_t permute(std::uint64_t x) const;

  private:
    ZipfSampler zipf_;
    std::uint64_t n_;
    std::uint32_t half_bits_;   ///< Feistel half width; domain = 2^(2*half)
    std::uint64_t half_mask_;
    std::uint64_t keys_[4];     ///< per-round keys derived from the seed
};

}  // namespace p4lru::rng
