// Little-endian byte-buffer serialization helpers.
//
// The snapshot planes of the system replay targets (systems/*/..._target.hpp)
// concatenate many heterogeneous parts — sketch counter rows, policy storage
// planes, analyzer tables, pending-fill queues — into one flat byte image.
// ByteWriter appends fields to a growing vector; ByteReader walks a span with
// a cursor and refuses to read past the end, so a truncated or reshaped image
// fails loudly (load_state -> false) instead of misinterpreting bytes.
//
// Scalars are written little-endian byte-by-byte (portable); raw `bytes`
// regions are memory images whose layout is guarded by the surrounding size
// fields, the same contract as the storage plane images in checkpoint_io.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

namespace p4lru::io {

class ByteWriter {
  public:
    explicit ByteWriter(std::vector<std::byte>& out) noexcept : out_(&out) {}

    void u8(std::uint8_t v) { out_->push_back(static_cast<std::byte>(v)); }

    void u32(std::uint32_t v) {
        for (int i = 0; i < 4; ++i) {
            out_->push_back(static_cast<std::byte>((v >> (8 * i)) & 0xFF));
        }
    }

    void u64(std::uint64_t v) {
        for (int i = 0; i < 8; ++i) {
            out_->push_back(static_cast<std::byte>((v >> (8 * i)) & 0xFF));
        }
    }

    /// Raw memory image of `n` bytes (trivially-copyable payloads only).
    void bytes(const void* p, std::size_t n) {
        const std::size_t off = out_->size();
        out_->resize(off + n);
        if (n != 0) std::memcpy(out_->data() + off, p, n);
    }

    template <typename T>
    void pod(const T& v) {
        static_assert(std::is_trivially_copyable_v<T>);
        bytes(&v, sizeof(T));
    }

    [[nodiscard]] std::size_t size() const noexcept { return out_->size(); }

  private:
    std::vector<std::byte>* out_;
};

class ByteReader {
  public:
    explicit ByteReader(std::span<const std::byte> in) noexcept : in_(in) {}

    [[nodiscard]] bool u8(std::uint8_t& v) {
        if (pos_ + 1 > in_.size()) return false;
        v = std::to_integer<std::uint8_t>(in_[pos_++]);
        return true;
    }

    [[nodiscard]] bool u32(std::uint32_t& v) {
        if (pos_ + 4 > in_.size()) return false;
        v = 0;
        for (int i = 0; i < 4; ++i) {
            v |= static_cast<std::uint32_t>(
                     std::to_integer<std::uint8_t>(in_[pos_ + i]))
                 << (8 * i);
        }
        pos_ += 4;
        return true;
    }

    [[nodiscard]] bool u64(std::uint64_t& v) {
        if (pos_ + 8 > in_.size()) return false;
        v = 0;
        for (int i = 0; i < 8; ++i) {
            v |= static_cast<std::uint64_t>(
                     std::to_integer<std::uint8_t>(in_[pos_ + i]))
                 << (8 * i);
        }
        pos_ += 8;
        return true;
    }

    [[nodiscard]] bool bytes(void* p, std::size_t n) {
        if (pos_ + n > in_.size()) return false;
        if (n != 0) std::memcpy(p, in_.data() + pos_, n);
        pos_ += n;
        return true;
    }

    template <typename T>
    [[nodiscard]] bool pod(T& v) {
        static_assert(std::is_trivially_copyable_v<T>);
        return bytes(&v, sizeof(T));
    }

    /// A nested sub-image written as (u64 size, raw bytes); returns an empty
    /// span on underflow with `ok` cleared.
    [[nodiscard]] bool sub(std::span<const std::byte>& out) {
        std::uint64_t n = 0;
        if (!u64(n)) return false;
        if (pos_ + n > in_.size()) return false;
        out = in_.subspan(pos_, static_cast<std::size_t>(n));
        pos_ += static_cast<std::size_t>(n);
        return true;
    }

    [[nodiscard]] std::size_t remaining() const noexcept {
        return in_.size() - pos_;
    }
    [[nodiscard]] bool done() const noexcept { return pos_ == in_.size(); }

  private:
    std::span<const std::byte> in_;
    std::size_t pos_ = 0;
};

}  // namespace p4lru::io
