// Small statistics utilities used by the simulators and benches.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <vector>

namespace p4lru::stats {

/// Streaming mean / variance / extrema (Welford's algorithm).
class Running {
  public:
    void add(double x) noexcept {
        ++n_;
        const double d = x - mean_;
        mean_ += d / static_cast<double>(n_);
        m2_ += d * (x - mean_);
        min_ = n_ == 1 ? x : std::min(min_, x);
        max_ = n_ == 1 ? x : std::max(max_, x);
        sum_ += x;
    }

    /// Fold another accumulator in (Chan et al. parallel Welford merge).
    /// Lets per-shard accumulators combine into the sequential answer.
    void merge(const Running& o) noexcept {
        if (o.n_ == 0) return;
        if (n_ == 0) {
            *this = o;
            return;
        }
        const auto n = static_cast<double>(n_);
        const auto m = static_cast<double>(o.n_);
        const double delta = o.mean_ - mean_;
        mean_ += delta * m / (n + m);
        m2_ += o.m2_ + delta * delta * n * m / (n + m);
        n_ += o.n_;
        sum_ += o.sum_;
        min_ = std::min(min_, o.min_);
        max_ = std::max(max_, o.max_);
    }

    [[nodiscard]] std::size_t count() const noexcept { return n_; }
    [[nodiscard]] double sum() const noexcept { return sum_; }
    [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
    [[nodiscard]] double variance() const noexcept {
        return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
    }
    [[nodiscard]] double stddev() const noexcept {
        return std::sqrt(variance());
    }
    [[nodiscard]] double min() const noexcept { return n_ ? min_ : 0.0; }
    [[nodiscard]] double max() const noexcept { return n_ ? max_ : 0.0; }

  private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    double sum_ = 0.0;
};

/// Exact percentile over a retained sample vector. Fine for bench-sized data.
class Percentiles {
  public:
    void add(double x) { xs_.push_back(x); }

    /// q in [0, 1]; nearest-rank.
    [[nodiscard]] double quantile(double q) const {
        if (xs_.empty()) throw std::logic_error("Percentiles: empty");
        std::vector<double> sorted = xs_;
        std::sort(sorted.begin(), sorted.end());
        const auto idx = static_cast<std::size_t>(
            q * static_cast<double>(sorted.size() - 1) + 0.5);
        return sorted[std::min(idx, sorted.size() - 1)];
    }

    [[nodiscard]] std::size_t count() const noexcept { return xs_.size(); }

  private:
    std::vector<double> xs_;
};

/// Operations-over-wall-time record for throughput reporting (replay engine,
/// bench timing harness).
struct Throughput {
    std::uint64_t ops = 0;
    double seconds = 0.0;

    [[nodiscard]] double ops_per_sec() const noexcept {
        return seconds > 0.0 ? static_cast<double>(ops) / seconds : 0.0;
    }
    [[nodiscard]] double mops() const noexcept { return ops_per_sec() / 1e6; }
};

/// Ratio counter for hit/miss style accounting.
struct Ratio {
    std::uint64_t num = 0;
    std::uint64_t den = 0;
    void hit(bool ok) noexcept {
        ++den;
        num += ok ? 1 : 0;
    }
    [[nodiscard]] double value() const noexcept {
        return den ? static_cast<double>(num) / static_cast<double>(den) : 0.0;
    }
};

}  // namespace p4lru::stats
