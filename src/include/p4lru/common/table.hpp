// Console table printer used by the benchmark harness to emit paper-style
// rows/series ("Figure 9(a): miss rate vs concurrency", ...).
#pragma once

#include <string>
#include <vector>

namespace p4lru {

/// Accumulates rows of string cells and prints an aligned ASCII table.
class ConsoleTable {
  public:
    explicit ConsoleTable(std::vector<std::string> header);

    /// Append a row; it must have as many cells as the header.
    void add_row(std::vector<std::string> cells);

    /// Convenience: format doubles with the given precision.
    static std::string num(double v, int precision = 4);

    /// Render the table to a string (header, separator, rows).
    [[nodiscard]] std::string render() const;

    /// Render with a caption line on top and print to stdout.
    void print(const std::string& caption) const;

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

}  // namespace p4lru
