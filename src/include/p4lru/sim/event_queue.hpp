// Minimal discrete-event simulation kernel: a time-ordered queue of
// callbacks. Replaces the paper's DPDK testbed timing (see DESIGN.md).
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "p4lru/common/types.hpp"

namespace p4lru::sim {

/// Deterministic event queue: ties broken by insertion order.
///
/// Implemented over an owned vector with std::push_heap/pop_heap rather
/// than std::priority_queue: priority_queue::top() returns a const
/// reference, and moving the callback out through a const_cast — the
/// classic workaround — mutates an object the container's comparator may
/// still observe during pop(), which is undefined behavior.  With the raw
/// heap, pop_heap moves the earliest event to back() *first*, where it is
/// plain mutable data that can be moved out before pop_back.
class EventQueue {
  public:
    using Callback = std::function<void()>;

    /// Schedule `fn` at absolute time `when` (>= now(), not checked: events
    /// scheduled in the past fire immediately-next, keeping runs monotone).
    void schedule(TimeNs when, Callback fn) {
        heap_.push_back(Event{when, seq_++, std::move(fn)});
        std::push_heap(heap_.begin(), heap_.end(), Event::later);
    }

    void schedule_after(TimeNs delay, Callback fn) {
        schedule(now_ + delay, std::move(fn));
    }

    /// Run events until the queue is empty.
    void run() {
        while (!heap_.empty()) step();
    }

    /// Run events with time <= `until`.
    void run_until(TimeNs until) {
        while (!heap_.empty() && heap_.front().when <= until) step();
        now_ = std::max(now_, until);
    }

    /// Execute the single earliest event. Returns false if none is pending.
    bool step() {
        if (heap_.empty()) return false;
        std::pop_heap(heap_.begin(), heap_.end(), Event::later);
        Event ev = std::move(heap_.back());
        heap_.pop_back();
        now_ = std::max(now_, ev.when);
        ev.fn();
        return true;
    }

    [[nodiscard]] TimeNs now() const noexcept { return now_; }
    [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
    [[nodiscard]] std::size_t pending() const noexcept { return heap_.size(); }

  private:
    struct Event {
        TimeNs when = 0;
        std::uint64_t seq = 0;
        Callback fn;
        /// Heap comparator: a max-heap under "fires later" keeps the
        /// earliest event at front(), ties broken by insertion order.
        static bool later(const Event& a, const Event& b) noexcept {
            return a.when != b.when ? a.when > b.when : a.seq > b.seq;
        }
    };

    std::vector<Event> heap_;
    TimeNs now_ = 0;
    std::uint64_t seq_ = 0;
};

}  // namespace p4lru::sim
