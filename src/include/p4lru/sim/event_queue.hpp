// Minimal discrete-event simulation kernel: a time-ordered queue of
// callbacks. Replaces the paper's DPDK testbed timing (see DESIGN.md).
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "p4lru/common/types.hpp"

namespace p4lru::sim {

/// Deterministic event queue: ties broken by insertion order.
class EventQueue {
  public:
    using Callback = std::function<void()>;

    /// Schedule `fn` at absolute time `when` (>= now(), not checked: events
    /// scheduled in the past fire immediately-next, keeping runs monotone).
    void schedule(TimeNs when, Callback fn) {
        heap_.push(Event{when, seq_++, std::move(fn)});
    }

    void schedule_after(TimeNs delay, Callback fn) {
        schedule(now_ + delay, std::move(fn));
    }

    /// Run events until the queue is empty.
    void run() {
        while (!heap_.empty()) step();
    }

    /// Run events with time <= `until`.
    void run_until(TimeNs until) {
        while (!heap_.empty() && heap_.top().when <= until) step();
        now_ = std::max(now_, until);
    }

    /// Execute the single earliest event. Returns false if none is pending.
    bool step() {
        if (heap_.empty()) return false;
        // Move out the callback before popping (top() is const; copy cheap
        // fields, swap the function).
        Event ev = std::move(const_cast<Event&>(heap_.top()));
        heap_.pop();
        now_ = std::max(now_, ev.when);
        ev.fn();
        return true;
    }

    [[nodiscard]] TimeNs now() const noexcept { return now_; }
    [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
    [[nodiscard]] std::size_t pending() const noexcept { return heap_.size(); }

  private:
    struct Event {
        TimeNs when = 0;
        std::uint64_t seq = 0;
        Callback fn;
        bool operator>(const Event& o) const noexcept {
            return when != o.when ? when > o.when : seq > o.seq;
        }
    };

    std::priority_queue<Event, std::vector<Event>, std::greater<>> heap_;
    TimeNs now_ = 0;
    std::uint64_t seq_ = 0;
};

}  // namespace p4lru::sim
