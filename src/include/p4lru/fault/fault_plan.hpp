// Deterministic fault injection for the replay runtime.
//
// A FaultPlan is a fixed, seed-reproducible list of fault events; nothing in
// it consults a clock or an ambient RNG, so a failing chaos run replays
// bit-identically from its seed.  Two event families:
//
//   * worker faults (threaded replay) — kWorkerStall parks a shard's worker
//     (simulated thread death: it publishes its stats and never touches the
//     cache again), kBatchDelay makes a worker sleep before applying a batch
//     (creates genuine SPSC backpressure against small rings);
//   * data faults (sequential / inline replay, where a single thread owns
//     the cache) — kCorruptMeta / kCorruptKey XOR a mask into the SoaSlab
//     meta or key plane just before a chosen op index (the scrubber's prey),
//     kCorruptOp flips bits in the dispatched op's key (a corrupt trace
//     record).
//
// The replay engine takes the plan through a hook object template parameter:
// NoFaults (the default) is an empty type whose hooks are constexpr no-ops —
// every call site folds away under `if constexpr (Faults::kEnabled)`, so the
// production path pays nothing.  InjectedFaults adapts a FaultPlan to the
// same vocabulary.
//
// FlakyService models an unreliable downstream dependency (the LruIndex
// db_server): request `seq` fails its first `fails_per_incident` attempts
// whenever a seeded hash of seq lands on the failure period.  The driver's
// retry-with-backoff path is tested against it.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <type_traits>
#include <vector>

#include "p4lru/common/random.hpp"

namespace p4lru::fault {

enum class FaultKind : std::uint8_t {
    kWorkerStall,  ///< shard `shard`'s worker parks before popping batch `at`
    kBatchDelay,   ///< worker sleeps `arg` microseconds before batch `at`
    kCorruptMeta,  ///< XOR `arg` into unit `unit`'s meta word before op `at`
    kCorruptKey,   ///< XOR `arg` into a key-plane byte of unit `unit` at `at`
    kCorruptOp,    ///< XOR `arg` into the op's key bytes at dispatch index `at`
};

struct FaultEvent {
    FaultKind kind = FaultKind::kWorkerStall;
    std::uint64_t at = 0;     ///< batch index (worker faults) or op index
    std::uint32_t shard = 0;  ///< target shard (worker faults only)
    std::uint64_t unit = 0;   ///< target unit (plane corruption only)
    std::uint64_t arg = 0;    ///< XOR mask, or delay in microseconds

    friend bool operator==(const FaultEvent&, const FaultEvent&) = default;
};

/// I/O faults injected into streaming trace readers (trace_source.hpp).
/// Addressed by *chunk index* — the ordinal of the chunk the background
/// reader is about to read, counted from the last seek — so a plan replays
/// identically for a given (trace, chunk size, seek history).
enum class IoFaultKind : std::uint8_t {
    kShortRead,   ///< first read() of chunk `at` returns only half the bytes
    kEintrRead,   ///< chunk `at`'s read is interrupted `arg` times (EINTR)
    kSlowReader,  ///< reader sleeps `arg` microseconds before chunk `at`
};

struct IoFaultEvent {
    IoFaultKind kind = IoFaultKind::kShortRead;
    std::uint64_t at = 0;   ///< chunk index (since the reader's last seek)
    std::uint64_t arg = 0;  ///< retry count or delay in microseconds

    friend bool operator==(const IoFaultEvent&, const IoFaultEvent&) = default;
};

/// Where a deterministic crash cuts a supervised run (supervisor.hpp /
/// durable_store.hpp).  The first four model a process death inside the
/// store's atomic-install protocol, ordered by how far the install got;
/// the last two model a death outside it.  Every point is recoverable —
/// that is what the crash-point sweep in supervisor_test proves.
enum class CrashPoint : std::uint8_t {
    kBeforeWrite,   ///< died before any byte hit disk; store unchanged
    kTornTemp,      ///< died mid-write: a partial `.tmp` file remains
    kTornInstall,   ///< a torn image landed at the *final* generation path
                    ///< (models a non-atomic filesystem rename/overwrite)
    kBeforeRename,  ///< full temp written + synced, never renamed in
    kAfterInstall,  ///< generation installed; died before pruning old ones
    kBetweenEpochs, ///< installed + pruned, died between dispatch epochs
};

[[nodiscard]] constexpr const char* crash_point_name(CrashPoint p) noexcept {
    switch (p) {
        case CrashPoint::kBeforeWrite: return "before_write";
        case CrashPoint::kTornTemp: return "torn_temp";
        case CrashPoint::kTornInstall: return "torn_install";
        case CrashPoint::kBeforeRename: return "before_rename";
        case CrashPoint::kAfterInstall: return "after_install";
        case CrashPoint::kBetweenEpochs: return "between_epochs";
    }
    return "unknown";
}

/// A scheduled crash: fires at the `at`-th checkpoint-install attempt of a
/// supervised run, counted cumulatively across recovery attempts (so a
/// restarted run that re-reaches the same cadence point does NOT re-crash —
/// each retry makes progress).  `arg` selects the section boundary the torn
/// variants cut at (clamped to the image's section count): 0 = end of the
/// fixed header, 1 = end of the stats/slice records, and so on.
struct CrashEvent {
    std::uint64_t at = 0;
    CrashPoint point = CrashPoint::kBetweenEpochs;
    std::uint64_t arg = 0;

    friend bool operator==(const CrashEvent&, const CrashEvent&) = default;
};

/// Spec for FaultPlan::chaos — how much havoc a random plan wreaks.
struct ChaosSpec {
    std::size_t shards = 8;           ///< shard-index range for worker faults
    std::uint64_t batches = 64;       ///< batch-index range for worker faults
    std::uint32_t stalls = 1;         ///< parked workers
    std::uint32_t delays = 2;         ///< delayed batches
    std::uint32_t max_delay_us = 200; ///< per-delay sleep bound
};

class FaultPlan {
  public:
    FaultPlan() = default;

    // -- builders (chainable) --------------------------------------------

    FaultPlan& stall_worker(std::uint32_t shard, std::uint64_t at_batch) {
        worker_.push_back({FaultKind::kWorkerStall, at_batch, shard, 0, 0});
        return *this;
    }
    FaultPlan& delay_batch(std::uint32_t shard, std::uint64_t at_batch,
                           std::uint32_t micros) {
        worker_.push_back(
            {FaultKind::kBatchDelay, at_batch, shard, 0, micros});
        return *this;
    }
    FaultPlan& corrupt_meta(std::uint64_t unit, std::uint64_t at_op,
                            std::uint64_t xor_mask) {
        push_op({FaultKind::kCorruptMeta, at_op, 0, unit, xor_mask});
        return *this;
    }
    FaultPlan& corrupt_key(std::uint64_t unit, std::uint64_t at_op,
                           std::uint64_t xor_mask) {
        push_op({FaultKind::kCorruptKey, at_op, 0, unit, xor_mask});
        return *this;
    }
    FaultPlan& corrupt_op(std::uint64_t at_op, std::uint64_t xor_mask) {
        push_op({FaultKind::kCorruptOp, at_op, 0, 0, xor_mask});
        return *this;
    }
    /// First read of chunk `at_chunk` comes back short (half the requested
    /// bytes): the reader must finish the chunk with a follow-up read, as a
    /// real kernel short read requires.
    FaultPlan& short_read(std::uint64_t at_chunk) {
        io_.push_back({IoFaultKind::kShortRead, at_chunk, 0});
        return *this;
    }
    /// Chunk `at_chunk`'s read is interrupted `retries` times before the
    /// data arrives (the EINTR retry loop's prey).
    FaultPlan& eintr_read(std::uint64_t at_chunk, std::uint64_t retries) {
        io_.push_back({IoFaultKind::kEintrRead, at_chunk, retries});
        return *this;
    }
    /// Reader sleeps `micros` before chunk `at_chunk` — starves the consumer
    /// so its stall accounting and bounded-queue behavior are exercised.
    FaultPlan& slow_reader(std::uint64_t at_chunk, std::uint64_t micros) {
        io_.push_back({IoFaultKind::kSlowReader, at_chunk, micros});
        return *this;
    }
    /// Crash at install ordinal `at_install` (0-based, cumulative across
    /// recovery attempts); for the torn variants, `section` picks the byte
    /// boundary the write is cut at.
    FaultPlan& crash(std::uint64_t at_install, CrashPoint point,
                     std::uint64_t section = 0) {
        crashes_.push_back({at_install, point, section});
        return *this;
    }

    /// Seed-deterministic random plan of worker stalls and batch delays (the
    /// chaos smoke's input; two calls with the same seed and spec produce
    /// identical plans).
    [[nodiscard]] static FaultPlan chaos(std::uint64_t seed,
                                         const ChaosSpec& spec) {
        rng::Xoshiro256 rng(seed);
        FaultPlan p;
        const auto pick = [&rng](std::uint64_t bound) {
            return bound ? rng.next() % bound : 0;
        };
        for (std::uint32_t i = 0; i < spec.stalls; ++i) {
            p.stall_worker(static_cast<std::uint32_t>(pick(spec.shards)),
                           pick(spec.batches));
        }
        for (std::uint32_t i = 0; i < spec.delays; ++i) {
            p.delay_batch(static_cast<std::uint32_t>(pick(spec.shards)),
                          pick(spec.batches),
                          1u + static_cast<std::uint32_t>(
                                   pick(spec.max_delay_us)));
        }
        return p;
    }

    // -- queries (hook-side) ---------------------------------------------

    /// True once shard's worker should park: a stall event with
    /// at <= next-batch-index exists for it.
    [[nodiscard]] bool worker_parks(std::size_t shard,
                                    std::uint64_t next_batch) const noexcept {
        for (const auto& e : worker_) {
            if (e.kind == FaultKind::kWorkerStall && e.shard == shard &&
                next_batch >= e.at) {
                return true;
            }
        }
        return false;
    }

    /// Total injected sleep before this shard applies batch `batch`.
    [[nodiscard]] std::uint32_t batch_delay_us(
        std::size_t shard, std::uint64_t batch) const noexcept {
        std::uint32_t us = 0;
        for (const auto& e : worker_) {
            if (e.kind == FaultKind::kBatchDelay && e.shard == shard &&
                e.at == batch) {
                us += static_cast<std::uint32_t>(e.arg);
            }
        }
        return us;
    }

    /// Data-fault events, sorted by op index (stable for equal indices).
    [[nodiscard]] const std::vector<FaultEvent>& op_events() const noexcept {
        return ops_;
    }
    [[nodiscard]] const std::vector<FaultEvent>& worker_events()
        const noexcept {
        return worker_;
    }
    [[nodiscard]] const std::vector<CrashEvent>& crash_events()
        const noexcept {
        return crashes_;
    }
    /// The crash scheduled at install ordinal `ordinal`, or nullptr.  When
    /// several events share an ordinal the first one wins (a plan normally
    /// schedules at most one crash per ordinal — each crash kills the run).
    [[nodiscard]] const CrashEvent* crash_at(
        std::uint64_t ordinal) const noexcept {
        for (const auto& c : crashes_) {
            if (c.at == ordinal) return &c;
        }
        return nullptr;
    }
    [[nodiscard]] const std::vector<IoFaultEvent>& io_events()
        const noexcept {
        return io_;
    }
    /// True when chunk `chunk`'s first read should come back short.
    [[nodiscard]] bool io_short_read(std::uint64_t chunk) const noexcept {
        for (const auto& e : io_) {
            if (e.kind == IoFaultKind::kShortRead && e.at == chunk) {
                return true;
            }
        }
        return false;
    }
    /// Injected EINTR interruptions before chunk `chunk`'s read succeeds.
    [[nodiscard]] std::uint64_t io_eintr_retries(
        std::uint64_t chunk) const noexcept {
        std::uint64_t n = 0;
        for (const auto& e : io_) {
            if (e.kind == IoFaultKind::kEintrRead && e.at == chunk) {
                n += e.arg;
            }
        }
        return n;
    }
    /// Injected reader sleep (microseconds) before chunk `chunk`.
    [[nodiscard]] std::uint64_t io_slow_us(std::uint64_t chunk) const noexcept {
        std::uint64_t us = 0;
        for (const auto& e : io_) {
            if (e.kind == IoFaultKind::kSlowReader && e.at == chunk) {
                us += e.arg;
            }
        }
        return us;
    }
    [[nodiscard]] bool empty() const noexcept {
        return worker_.empty() && ops_.empty() && crashes_.empty() &&
               io_.empty();
    }

  private:
    void push_op(FaultEvent e) {
        // Keep ops_ sorted by `at` so hooks can binary-search; stable insert
        // preserves the relative order of same-index events.
        const auto it = std::upper_bound(
            ops_.begin(), ops_.end(), e.at,
            [](std::uint64_t at, const FaultEvent& x) { return at < x.at; });
        ops_.insert(it, e);
    }

    std::vector<FaultEvent> worker_;
    std::vector<FaultEvent> ops_;  ///< sorted by .at
    std::vector<CrashEvent> crashes_;
    std::vector<IoFaultEvent> io_;
};

/// The disabled hook set: an empty type whose queries are constexpr no-ops.
/// replay guards every hook call with `if constexpr (Faults::kEnabled)`, so
/// instantiations with NoFaults (the default) compile to the exact
/// pre-robustness hot path — zero size, zero branches, zero calls.
struct NoFaults {
    static constexpr bool kEnabled = false;

    static constexpr bool worker_parks(std::size_t, std::uint64_t) noexcept {
        return false;
    }
    static constexpr std::uint32_t batch_delay_us(std::size_t,
                                                  std::uint64_t) noexcept {
        return 0;
    }
    template <typename Key>
    static constexpr void mutate_key(std::uint64_t, Key&) noexcept {}
    template <typename Storage>
    static constexpr void corrupt_storage(std::uint64_t, Storage&) noexcept {}
};
static_assert(std::is_empty_v<NoFaults>);

/// Adapts a FaultPlan to the replay hook vocabulary.  The plan outlives the
/// replay call (held by pointer); queries are pure reads, safe to share
/// across worker threads.
class InjectedFaults {
  public:
    static constexpr bool kEnabled = true;

    explicit InjectedFaults(const FaultPlan& plan) : plan_(&plan) {}

    [[nodiscard]] bool worker_parks(std::size_t shard,
                                    std::uint64_t next_batch) const noexcept {
        return plan_->worker_parks(shard, next_batch);
    }
    [[nodiscard]] std::uint32_t batch_delay_us(
        std::size_t shard, std::uint64_t batch) const noexcept {
        return plan_->batch_delay_us(shard, batch);
    }

    /// Apply kCorruptOp events scheduled at `op`: XOR the mask into the key's
    /// leading bytes (a trace record whose key field rotted on disk).
    template <typename Key>
        requires std::is_trivially_copyable_v<Key>
    void mutate_key(std::uint64_t op, Key& k) const {
        for_events_at(op, [&](const FaultEvent& e) {
            if (e.kind != FaultKind::kCorruptOp) return;
            std::uint64_t bits = 0;
            const std::size_t n = std::min(sizeof(Key), sizeof(bits));
            std::memcpy(&bits, &k, n);
            bits ^= e.arg;
            std::memcpy(&k, &bits, n);
        });
    }

    /// Apply kCorruptMeta/kCorruptKey events scheduled at `op` to a storage
    /// that exposes the corruption hooks (the SoA slab); silently skipped for
    /// storages without them (AoS unit objects have no raw planes to flip).
    template <typename Storage>
    void corrupt_storage(std::uint64_t op, Storage& storage) const {
        for_events_at(op, [&](const FaultEvent& e) {
            const std::size_t unit = e.unit % storage.unit_count();
            if (e.kind == FaultKind::kCorruptMeta) {
                if constexpr (requires { storage.corrupt_meta_at(unit, 0u); }) {
                    storage.corrupt_meta_at(unit,
                                            static_cast<unsigned>(e.arg));
                }
            } else if (e.kind == FaultKind::kCorruptKey) {
                if constexpr (requires {
                                  storage.corrupt_key_at(unit, std::size_t{0},
                                                         std::uint8_t{0});
                              }) {
                    storage.corrupt_key_at(
                        unit, static_cast<std::size_t>(e.arg >> 8),
                        static_cast<std::uint8_t>(e.arg & 0xFF));
                }
            }
        });
    }

  private:
    template <typename Fn>
    void for_events_at(std::uint64_t op, Fn&& fn) const {
        const auto& evs = plan_->op_events();
        auto it = std::lower_bound(
            evs.begin(), evs.end(), op,
            [](const FaultEvent& x, std::uint64_t at) { return x.at < at; });
        for (; it != evs.end() && it->at == op; ++it) fn(*it);
    }

    const FaultPlan* plan_;
};

/// Deterministic flaky dependency: request `seq` fails its first
/// `fails_per_incident` attempts whenever splitmix64(seed ^ seq) lands on
/// the failure period.  period == 0 disables all failures.
class FlakyService {
  public:
    FlakyService(std::uint64_t seed, std::uint32_t period,
                 std::uint32_t fails_per_incident)
        : seed_(seed), period_(period), fails_(fails_per_incident) {}

    [[nodiscard]] bool fails(std::uint64_t seq,
                             std::uint32_t attempt) const noexcept {
        if (period_ == 0 || fails_ == 0) return false;
        if (rng::SplitMix64(seed_ ^ seq).next() % period_ != 0) return false;
        return attempt < fails_;
    }

    /// True when `seq` is an incident (its first attempt would fail).
    [[nodiscard]] bool is_incident(std::uint64_t seq) const noexcept {
        return fails(seq, 0);
    }

  private:
    std::uint64_t seed_;
    std::uint32_t period_;
    std::uint32_t fails_;
};

}  // namespace p4lru::fault
