// Typed error layer for the robustness subsystem.
//
// The seed code aborted on every malformed input: trace_io threw bare
// std::runtime_error with no machine-readable cause, replay had no error
// vocabulary at all.  Status carries an ErrorCode, a human message and —
// because the dominant failure class is a corrupt or truncated byte stream —
// the byte offset at which parsing gave up.  Expected<T> is the value-or-
// Status return shape (std::expected is C++23; this is the minimal C++20
// equivalent the repo needs).  Both types are cheap to move and [[nodiscard]]
// so an ignored failure is a compiler warning, not silent UB.
#pragma once

#include <cerrno>
#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <utility>
#include <variant>

namespace p4lru {

enum class ErrorCode : std::uint8_t {
    kOk = 0,
    kIoError,          ///< open/read/write syscall-level failure
    kCorrupt,          ///< structurally invalid bytes (bad magic/version)
    kTruncated,        ///< input ended in the middle of a structure
    kInvalidState,     ///< in-memory invariant violated (scrubber findings)
    kTimeout,          ///< a deadline expired (backpressure, watchdog, retry)
    kUnavailable,      ///< a dependency refused service (flaky db server)
    kInvalidArgument,  ///< caller-supplied parameter out of contract
};

[[nodiscard]] constexpr const char* error_code_name(ErrorCode c) noexcept {
    switch (c) {
        case ErrorCode::kOk: return "ok";
        case ErrorCode::kIoError: return "io_error";
        case ErrorCode::kCorrupt: return "corrupt";
        case ErrorCode::kTruncated: return "truncated";
        case ErrorCode::kInvalidState: return "invalid_state";
        case ErrorCode::kTimeout: return "timeout";
        case ErrorCode::kUnavailable: return "unavailable";
        case ErrorCode::kInvalidArgument: return "invalid_argument";
    }
    return "unknown";
}

/// An error code plus context: message and, for parse failures, the byte
/// offset where the input stopped making sense. Default-constructed Status
/// is success.
class [[nodiscard]] Status {
  public:
    static constexpr std::uint64_t kNoOffset = ~std::uint64_t{0};

    Status() = default;
    Status(ErrorCode code, std::string message,
           std::uint64_t offset = kNoOffset)
        : code_(code), message_(std::move(message)), offset_(offset) {}

    [[nodiscard]] static Status ok() { return Status(); }

    [[nodiscard]] bool is_ok() const noexcept {
        return code_ == ErrorCode::kOk;
    }
    [[nodiscard]] ErrorCode code() const noexcept { return code_; }
    [[nodiscard]] const std::string& message() const noexcept {
        return message_;
    }
    [[nodiscard]] bool has_offset() const noexcept {
        return offset_ != kNoOffset;
    }
    [[nodiscard]] std::uint64_t offset() const noexcept { return offset_; }

    /// "truncated @byte 1432: read_trace: record 50 cut short"
    [[nodiscard]] std::string to_string() const {
        if (is_ok()) return "ok";
        std::string s = error_code_name(code_);
        if (has_offset()) {
            s += " @byte " + std::to_string(offset_);
        }
        if (!message_.empty()) {
            s += ": " + message_;
        }
        return s;
    }

  private:
    ErrorCode code_ = ErrorCode::kOk;
    std::string message_;
    std::uint64_t offset_ = kNoOffset;
};

/// Shorthand factories for the dominant construction sites — the binary IO
/// layers (trace_io, checkpoint_io) build dozens of parse-failure statuses,
/// and spelling the enum every time buries the message.  Offsets carry the
/// byte position where the input stopped making sense, as in Status itself.
[[nodiscard]] inline Status io_error(std::string message) {
    return Status(ErrorCode::kIoError, std::move(message));
}
[[nodiscard]] inline Status corrupt(std::string message,
                                    std::uint64_t offset = Status::kNoOffset) {
    return Status(ErrorCode::kCorrupt, std::move(message), offset);
}
[[nodiscard]] inline Status truncated(
    std::string message, std::uint64_t offset = Status::kNoOffset) {
    return Status(ErrorCode::kTruncated, std::move(message), offset);
}
[[nodiscard]] inline Status invalid_state(std::string message) {
    return Status(ErrorCode::kInvalidState, std::move(message));
}

/// IO failure with the OS-level cause attached: "<what> '<path>': <strerror>
/// (errno N)".  Reads `errno` at call time, so call it immediately after the
/// failed open/read/write/rename — every IO-failure Status in the binary
/// format layers (trace_io, checkpoint_io, durable_store) goes through this
/// so the offending file path and the syscall error are never lost.
[[nodiscard]] inline Status io_error_errno(std::string what,
                                           const std::string& path) {
    const int err = errno;
    std::string msg = std::move(what) + " '" + path + "'";
    if (err != 0) {
        msg += ": ";
        msg += std::strerror(err);
        msg += " (errno " + std::to_string(err) + ")";
    }
    return Status(ErrorCode::kIoError, std::move(msg));
}

/// Value-or-Status. Constructing from a Status requires a non-ok status (an
/// ok status with no value is a contract violation and is normalized to
/// kInvalidState so downstream code never sees an "ok but empty" result).
template <typename T>
class [[nodiscard]] Expected {
  public:
    Expected(T value) : v_(std::in_place_index<0>, std::move(value)) {}
    Expected(Status error) : v_(std::in_place_index<1>, std::move(error)) {
        if (std::get<1>(v_).is_ok()) {
            v_.template emplace<1>(ErrorCode::kInvalidState,
                                   "Expected constructed from ok Status");
        }
    }

    [[nodiscard]] bool is_ok() const noexcept { return v_.index() == 0; }
    explicit operator bool() const noexcept { return is_ok(); }

    /// The error, or Status::ok() when a value is held.
    [[nodiscard]] Status status() const {
        return is_ok() ? Status::ok() : std::get<1>(v_);
    }

    /// Value access; throws std::logic_error on an error-holding Expected
    /// (misuse — callers must check is_ok() first).
    [[nodiscard]] T& value() & {
        check();
        return std::get<0>(v_);
    }
    [[nodiscard]] const T& value() const& {
        check();
        return std::get<0>(v_);
    }
    [[nodiscard]] T&& value() && {
        check();
        return std::get<0>(std::move(v_));
    }

    [[nodiscard]] T value_or(T fallback) const& {
        return is_ok() ? std::get<0>(v_) : std::move(fallback);
    }

  private:
    void check() const {
        if (!is_ok()) {
            throw std::logic_error("Expected::value on error: " +
                                   std::get<1>(v_).to_string());
        }
    }

    std::variant<T, Status> v_;
};

}  // namespace p4lru
