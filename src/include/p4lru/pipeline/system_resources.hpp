// Table-2 reproduction: hardware resource accounting for the three P4LRU
// systems, computed from the actual pipeline programs (not hand-entered).
//
// Pipeline occupancy follows the paper: LruTable uses 1 of 4 pipelines,
// LruIndex folds all 4 (one P4LRU3 array per pipeline), LruMon folds 2
// (Tower filter in one, cache array in the other).
#pragma once

#include <string>

#include "p4lru/pipeline/pipeline.hpp"

namespace p4lru::pipeline {

struct SystemResources {
    std::string system;
    std::size_t pipelines_used = 0;
    ResourceReport report;
    PipelineBudget budget;  ///< scaled by pipelines_used

    [[nodiscard]] std::string to_table() const {
        return report.to_table(budget);
    }
};

/// LruTable: one hash + one 2^16-unit P4LRU3 array, one pipeline.
[[nodiscard]] SystemResources lrutable_resources(std::size_t units = 1u << 16);

/// LruIndex: `levels` series-connected 2^16-unit arrays, one per pipeline.
[[nodiscard]] SystemResources lruindex_resources(std::size_t levels = 4,
                                                 std::size_t units = 1u << 16);

/// LruMon: Tower filter (2^20 + 2^19 counters) + 2^17-unit P4LRU3 array,
/// two pipelines.
[[nodiscard]] SystemResources lrumon_resources(std::size_t units = 1u << 17);

}  // namespace p4lru::pipeline
