// A faithful model of the programmable match-action pipeline (Tofino-like)
// that P4LRU must run on. This is the substrate that makes requirement R1 of
// the paper checkable in software:
//
//   * the program is a fixed sequence of stages, executed once per packet,
//     front to back — no loops, no backward jumps;
//   * state lives in per-stage register arrays; each array can be touched by
//     AT MOST ONE executed stateful-ALU operation per packet (the "no second
//     data traversal" constraint that breaks classical LRU);
//   * a stateful ALU performs one read-modify-write with a single two-way
//     predicated branch (the paper: "each stateful ALU ... can support two
//     arithmetic branches") and can export the old value / predicate to PHV;
//   * plain header manipulation is VLIW-style: instructions within one stage
//     execute in parallel, so an instruction must not read a PHV field
//     written earlier in the SAME stage (read-after-write needs a new stage);
//   * tiny lookup tables (<= 16 entries) are available to actions, matching
//     the "we can only access a tiny table" constraint of Section 2.3.
//
// Violations throw PipelineError at execution time, so the unit tests prove
// the P4LRU3 program is actually expressible under the constraints.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

namespace p4lru::pipeline {

/// Thrown when a program violates a data-plane constraint (double register
/// access, same-stage RAW hazard, resource overflow, malformed config).
class PipelineError : public std::runtime_error {
  public:
    using std::runtime_error::runtime_error;
};

using FieldId = std::uint16_t;

/// Registry of PHV (packet header vector) fields; names resolve to dense ids
/// at program-construction time.
class PhvLayout {
  public:
    /// Get-or-create the field named `name`.
    FieldId field(const std::string& name);

    [[nodiscard]] std::size_t field_count() const noexcept {
        return names_.size();
    }
    [[nodiscard]] const std::string& name(FieldId id) const {
        return names_.at(id);
    }

  private:
    std::vector<std::string> names_;
};

/// One packet's header vector: 32-bit containers, value-initialized to 0.
class Phv {
  public:
    explicit Phv(std::size_t field_count) : values_(field_count, 0) {}

    [[nodiscard]] std::uint32_t get(FieldId f) const { return values_.at(f); }
    void set(FieldId f, std::uint32_t v) { values_.at(f) = v; }

  private:
    std::vector<std::uint32_t> values_;
};

// ---------------------------------------------------------------------------
// Instruction set
// ---------------------------------------------------------------------------

/// VLIW header-manipulation ops (all same-stage-parallel).
enum class VliwOp : std::uint8_t {
    kSetConst,  ///< dst = konst
    kCopy,      ///< dst = a
    kAdd,       ///< dst = a + b
    kSub,       ///< dst = a - b
    kXor,       ///< dst = a ^ b
    kAnd,       ///< dst = a & b
    kOr,        ///< dst = a | b
    kEq,        ///< dst = (a == b)
    kNe,        ///< dst = (a != b)
    kGe,        ///< dst = (a >= b)
    kLt,        ///< dst = (a < b)
    kEqConst,   ///< dst = (a == konst)
    kGeConst,   ///< dst = (a >= konst)
    kSelect,    ///< dst = cond ? a : b
    kLookup,    ///< dst = table[a]  (table size <= 16)
};

struct VliwInstr {
    VliwOp op{};
    FieldId dst = 0;
    FieldId a = 0;
    FieldId b = 0;
    FieldId cond = 0;
    std::uint32_t konst = 0;
    std::vector<std::uint32_t> table;  ///< for kLookup only, <= 16 entries
};

/// Hash-engine invocation: dst = crc32(seed, inputs...) scaled to [0, modulo).
struct HashInstr {
    std::vector<FieldId> inputs;
    FieldId dst = 0;
    std::uint32_t seed = 0;
    std::uint32_t modulo = 0;  ///< 0 = export the raw 32-bit digest
};

/// Stateful-ALU predicate: compare the register value or a PHV field against
/// a PHV operand or a constant.
enum class CmpSource : std::uint8_t { kRegister, kField };
enum class CmpOp : std::uint8_t { kAlways, kEq, kNe, kGe, kLt };

/// Register update executed by the chosen branch.
enum class AluUpdate : std::uint8_t {
    kKeep,        ///< R = R
    kSetOperand,  ///< R = operand field
    kSetConst,    ///< R = konst
    kAddOperand,  ///< R = R + operand field
    kAddConst,    ///< R = R + konst
    kSubConst,    ///< R = R - konst
    kXorConst,    ///< R = R ^ konst
};

/// What an ALU output port exports into the PHV.
enum class AluOutput : std::uint8_t { kNone, kOldValue, kNewValue, kPredicate };

struct SaluBranch {
    AluUpdate update = AluUpdate::kKeep;
    FieldId operand = 0;
    std::uint32_t konst = 0;
};

/// One stateful-ALU operation bound to a register array.
struct SaluInstr {
    std::string name;
    std::size_t register_array = 0;  ///< id from Pipeline::add_register_array
    FieldId index = 0;               ///< PHV field with the array index

    /// Optional execution guard (models the match that triggers the
    /// RegisterAction): execute only if guard_field == guard_value.
    std::optional<FieldId> guard;
    std::uint32_t guard_value = 0;

    CmpSource cmp_source = CmpSource::kRegister;
    FieldId cmp_field = 0;  ///< used when cmp_source == kField
    CmpOp cmp = CmpOp::kAlways;
    bool cmp_with_operand = false;  ///< compare against operand field?
    FieldId cmp_operand = 0;
    std::uint32_t cmp_const = 0;

    SaluBranch on_true;
    SaluBranch on_false;

    /// Saturating arithmetic (Tofino SALUs support saturating adds): the
    /// written value is clamped to sat_max when enabled.
    bool saturate = false;
    std::uint32_t sat_max = 0;

    AluOutput out1_sel = AluOutput::kNone;
    FieldId out1 = 0;
    AluOutput out2_sel = AluOutput::kNone;
    FieldId out2 = 0;
};

/// One pipeline stage: hashes and VLIW instructions and SALUs, all logically
/// parallel (same-stage RAW is rejected at runtime).
struct Stage {
    std::string name;
    std::vector<HashInstr> hashes;
    std::vector<VliwInstr> vliw;
    std::vector<SaluInstr> salus;
};

// ---------------------------------------------------------------------------
// Resources
// ---------------------------------------------------------------------------

/// Approximate per-pipeline budgets of a Tofino-1-class ASIC (public
/// figures); used to express usage as percentages like the paper's Table 2.
struct PipelineBudget {
    std::size_t stages = 12;
    std::size_t salus_per_stage = 4;
    std::size_t vliw_per_stage = 32;
    std::size_t hash_bits = 12 * 2 * 52;        ///< 2 engines x 52 bits/stage
    std::size_t sram_bytes = 15 * 1024 * 1024;  ///< register + table SRAM
    std::size_t map_ram_bytes = 6 * 1024 * 1024;
};

struct ResourceReport {
    std::size_t stages = 0;
    std::size_t salus = 0;
    std::size_t vliw_instrs = 0;
    std::size_t hash_bits = 0;
    std::size_t register_bytes = 0;
    std::size_t table_bytes = 0;
    std::size_t map_ram_bytes = 0;

    /// Render a Table-2-style percentage block against the budget.
    [[nodiscard]] std::string to_table(const PipelineBudget& budget) const;

    /// Sum of two reports (systems composed of several programs).
    ResourceReport operator+(const ResourceReport& o) const;
};

// ---------------------------------------------------------------------------
// The pipeline itself
// ---------------------------------------------------------------------------

class Pipeline {
  public:
    explicit Pipeline(PipelineBudget budget = {}) : budget_(budget) {}

    /// Register a stateful array of `width` 32-bit cells. Returns its id.
    std::size_t add_register_array(const std::string& name, std::size_t width);

    /// Append a stage. Validates per-stage resource limits.
    void add_stage(Stage stage);

    /// Run one packet through every stage, enforcing all constraints.
    void execute(Phv& phv);

    [[nodiscard]] PhvLayout& layout() noexcept { return layout_; }
    [[nodiscard]] const PhvLayout& layout() const noexcept { return layout_; }

    [[nodiscard]] Phv make_phv() const {
        return Phv(layout_.field_count());
    }

    /// Direct register inspection for tests.
    [[nodiscard]] std::uint32_t register_value(std::size_t array,
                                               std::size_t idx) const;
    void set_register_value(std::size_t array, std::size_t idx,
                            std::uint32_t v);

    /// Initialize every cell of an array (control-plane style preload, e.g.
    /// setting every P4LRU3 state register to the identity code 4).
    void fill_register_array(std::size_t array, std::uint32_t v);

    [[nodiscard]] std::size_t stage_count() const noexcept {
        return stages_.size();
    }
    [[nodiscard]] ResourceReport resources() const;
    [[nodiscard]] const PipelineBudget& budget() const noexcept {
        return budget_;
    }

    /// Human-readable program listing: one line per instruction, grouped by
    /// stage (debugging, docs, the pipeline_inspector example).
    [[nodiscard]] std::string describe() const;

    /// Emit P4-16-style source (TNA flavoured) for this program: register
    /// declarations, RegisterActions with the branch arithmetic, hash
    /// engine calls and the stage-ordered apply block. The output is
    /// illustrative — it shows exactly how the model maps onto the
    /// constructs the paper's artifact uses — and is tested for structural
    /// properties, not compiled by a P4 toolchain.
    [[nodiscard]] std::string export_p4(const std::string& program_name) const;

  private:
    struct RegisterArray {
        std::string name;
        std::vector<std::uint32_t> cells;
    };

    void execute_stage(const Stage& stage, Phv& phv,
                       std::vector<bool>& reg_accessed);

    PipelineBudget budget_;
    PhvLayout layout_;
    std::vector<RegisterArray> arrays_;
    std::vector<Stage> stages_;
};

}  // namespace p4lru::pipeline
