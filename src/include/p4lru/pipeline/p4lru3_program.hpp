// The P4LRU3 cache array compiled onto the pipeline model.
//
// This is the software twin of the paper's P4 implementation: a hash stage
// picks the bucket, three key stages bubble the incoming key while exporting
// match flags and the displaced key, ONE stage holds the three state SALUs
// (operations 1-3 of Section 2.3.2, guarded by mutually exclusive match
// flags), a tiny 6-entry lookup maps the new state code to the value slot
// S(1), and three value stages touch exactly one value register. Seven
// stages, seven SALU executions max, every register array accessed at most
// once per packet — the pipeline model enforces all of it at runtime.
#pragma once

#include <cstdint>

#include "p4lru/core/p4lru.hpp"
#include "p4lru/pipeline/pipeline.hpp"

namespace p4lru::pipeline {

/// How a hit combines the stored and incoming value.
enum class ValueMode {
    kReadCache,       ///< hit keeps the stored value (LruTable / LruIndex)
    kWriteAccumulate  ///< hit adds the incoming value (LruMon byte counts)
};

/// A parallel array of P4LRU3 units running as a pipeline program.
/// Keys and values are 32-bit; key 0 is the empty sentinel (as on hardware).
class P4lru3PipelineCache {
  public:
    /// \param units      number of buckets (each 3 entries).
    /// \param hash_seed  salt of the bucket-choosing hash.
    /// \param mode       read-cache or accumulate semantics.
    P4lru3PipelineCache(std::size_t units, std::uint32_t hash_seed,
                        ValueMode mode);

    /// Result of one packet traversal.
    struct Result {
        bool hit = false;
        std::uint32_t value = 0;  ///< value after the access (hit: stored /
                                  ///< accumulated; miss: the inserted value)
        bool evicted = false;
        std::uint32_t evicted_key = 0;
        std::uint32_t evicted_value = 0;
        std::uint32_t bucket = 0;
    };

    /// Send one update packet (key, value) through the pipeline.
    Result update(std::uint32_t key, std::uint32_t value);

    [[nodiscard]] const Pipeline& pipeline() const noexcept {
        return pipe_;
    }
    [[nodiscard]] ResourceReport resources() const {
        return pipe_.resources();
    }
    [[nodiscard]] std::size_t units() const noexcept { return units_; }

  private:
    void build(std::uint32_t hash_seed, ValueMode mode);

    Pipeline pipe_;
    std::size_t units_;

    // Cached field ids.
    FieldId f_key_, f_value_, f_idx_;
    FieldId f_c1_, f_m1_, f_c2_, f_m2_, f_done2_, f_c3_, f_m3_;
    FieldId f_scode_, f_vslot_, f_hit_;
    FieldId f_val_old_, f_val_new_;
    std::size_t reg_key1_, reg_key2_, reg_key3_, reg_state_;
    std::size_t reg_val1_, reg_val2_, reg_val3_;
};

}  // namespace p4lru::pipeline
