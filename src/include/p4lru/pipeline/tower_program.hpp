// The TowerSketch mouse-flow filter compiled onto the pipeline model: two
// counter arrays with different widths (8-bit and 16-bit semantics emulated
// by saturation constants), a min stage, and the elephant-threshold compare.
// Together with P4lru3PipelineCache this composes the LruMon data plane;
// its resource report feeds the Table-2 reproduction.
#pragma once

#include <cstdint>

#include "p4lru/pipeline/pipeline.hpp"

namespace p4lru::pipeline {

class TowerPipelineFilter {
  public:
    struct Config {
        std::size_t width1 = 1u << 20;  ///< level-1 counters (8-bit)
        std::size_t width2 = 1u << 19;  ///< level-2 counters (16-bit)
        std::uint32_t max1 = 0xFF;      ///< saturation of level 1
        std::uint32_t max2 = 0xFFFF;    ///< saturation of level 2
        std::uint32_t threshold = 1500; ///< elephant threshold L (bytes)
        std::uint32_t seed = 0x7077;
    };

    explicit TowerPipelineFilter(const Config& cfg);

    struct Result {
        std::uint32_t estimate = 0;  ///< min of the non-saturated counters
        bool elephant = false;       ///< estimate >= threshold
    };

    /// One packet: key (e.g. flow fingerprint) and byte length.
    Result update(std::uint32_t key, std::uint32_t len);

    /// Control-plane style periodic counter reset (the per-counter
    /// timestamp trick of the paper is modelled at system level; see
    /// systems::lrumon::TowerFilter).
    void reset_counters();

    [[nodiscard]] const Pipeline& pipeline() const noexcept { return pipe_; }
    [[nodiscard]] ResourceReport resources() const {
        return pipe_.resources();
    }

  private:
    void build();

    Config cfg_;
    Pipeline pipe_;
    FieldId f_key_, f_len_, f_i1_, f_i2_, f_e1_, f_e2_, f_lt_, f_sat1_,
        f_mincand_, f_min_, f_eleph_;
    std::size_t reg_c1_, reg_c2_;
};

}  // namespace p4lru::pipeline
