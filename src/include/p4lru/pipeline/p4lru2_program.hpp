// The P4LRU2 cache array compiled onto the pipeline model (Section 2.3.1):
// two key stages, ONE stateful ALU for the whole DFA (two states, XOR
// transition — "one stateful ALU can accommodate the arithmetic logic of a
// P4LRU2 cache"), a 2-entry slot lookup, and two value stages. Five stages
// total.
#pragma once

#include <cstdint>

#include "p4lru/pipeline/p4lru3_program.hpp"

namespace p4lru::pipeline {

/// A parallel array of P4LRU2 units running as a pipeline program.
/// Keys and values are 32-bit; key 0 is the empty sentinel.
class P4lru2PipelineCache {
  public:
    P4lru2PipelineCache(std::size_t units, std::uint32_t hash_seed,
                        ValueMode mode);

    using Result = P4lru3PipelineCache::Result;

    Result update(std::uint32_t key, std::uint32_t value);

    [[nodiscard]] const Pipeline& pipeline() const noexcept { return pipe_; }
    [[nodiscard]] ResourceReport resources() const {
        return pipe_.resources();
    }
    [[nodiscard]] std::size_t units() const noexcept { return units_; }

  private:
    void build(std::uint32_t hash_seed, ValueMode mode);

    Pipeline pipe_;
    std::size_t units_;
    FieldId f_key_, f_value_, f_idx_;
    FieldId f_c1_, f_m1_, f_c2_, f_m2_;
    FieldId f_scode_, f_vslot_, f_hit_;
    FieldId f_val_old_, f_val_new_;
    std::size_t reg_key1_, reg_key2_, reg_state_, reg_val1_, reg_val2_;
};

}  // namespace p4lru::pipeline
