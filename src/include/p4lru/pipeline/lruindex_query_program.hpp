// The READ-ONLY query pass of LruIndex (Section 3.2) compiled onto the
// pipeline model: one program per series level (the paper folds one level
// into each of the four physical pipelines).
//
// A query packet must inspect key[1..3], the state and one value register
// WITHOUT modifying anything — every SALU here uses kKeep on both branches
// and only exports the old value / predicate. The matched position i needs
// the slot S(i), not S(1); since the 18-entry (state x position) table
// exceeds the 16-entry tiny-table limit, the program uses three 6-entry
// lookups (one per position) and selects among them with the match flags —
// exactly the kind of "more nuanced logic" real P4 deployments resort to.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "p4lru/pipeline/pipeline.hpp"

namespace p4lru::pipeline {

/// One series level's query program over its own register arrays.
class LruIndexQueryLevel {
  public:
    LruIndexQueryLevel(std::size_t units, std::uint32_t hash_seed);

    struct Result {
        bool hit = false;
        std::uint32_t value = 0;
    };

    /// Send one query packet through the level (read-only).
    Result query(std::uint32_t key);

    /// Mirror a behavioural-cache mutation into the level's registers (the
    /// reply pass is modelled behaviourally; see the class comment in
    /// LruIndexQueryPipeline).
    void load_unit(std::size_t bucket, const std::uint32_t keys[3],
                   const std::uint32_t vals[3], std::uint8_t state_code);

    [[nodiscard]] const Pipeline& pipeline() const noexcept { return pipe_; }
    [[nodiscard]] std::size_t units() const noexcept { return units_; }

  private:
    void build(std::uint32_t hash_seed);

    Pipeline pipe_;
    std::size_t units_;
    FieldId f_key_, f_idx_;
    FieldId f_m1_, f_m2_, f_m3_, f_hit_;
    FieldId f_scode_, f_s1_, f_s2_, f_s3_, f_slot_a_, f_slot_;
    FieldId f_v1_, f_v2_, f_v3_, f_va_, f_value_;
    std::size_t reg_key_[3];
    std::size_t reg_state_, reg_val_[3];
};

/// The chained query pass over `levels` levels: first hit wins, as in the
/// paper (the packet's cached_flag records the hit level).
///
/// The mutating reply pass runs behaviourally (core::SeriesCache) and is
/// mirrored into the level registers through load_unit(); the pipeline
/// programs prove the read-only pass — the half of the protocol that is
/// architecturally novel (three register reads, zero writes, per packet).
class LruIndexQueryPipeline {
  public:
    LruIndexQueryPipeline(std::size_t levels, std::size_t units,
                          std::uint32_t seed);

    struct Lookup {
        std::uint32_t level = 0;  ///< 1-based; 0 = miss (cached_flag)
        std::uint32_t value = 0;  ///< cached_index
    };

    Lookup query(std::uint32_t key);

    [[nodiscard]] LruIndexQueryLevel& level(std::size_t i) {
        return levels_.at(i);
    }
    [[nodiscard]] std::size_t level_count() const noexcept {
        return levels_.size();
    }

    /// Aggregate resource usage across the folded pipelines (Table 2).
    [[nodiscard]] ResourceReport resources() const;

  private:
    std::vector<LruIndexQueryLevel> levels_;
};

}  // namespace p4lru::pipeline
