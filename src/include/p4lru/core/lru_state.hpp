// The cache-state DFA S_lru of P4LRU, specialised for fixed small N.
//
// S_lru is a permutation of {1..N}: the key at key[i] owns the value slot
// val[S(i)].  Step 2 of Algorithm 1 premultiplies S by the inverse of the
// rotation R the key array underwent; concretely that is a right-rotation of
// the first i entries of S's bottom row:
//   S_new(1) = S_old(i),  S_new(j) = S_old(j-1) for 2 <= j <= i,
//   S_new(j) = S_old(j) otherwise.
#pragma once

#include <array>
#include <cstdint>
#include <cstddef>

#include "p4lru/core/permutation.hpp"

namespace p4lru::core {

/// Fixed-size cache state; N in [1, 8]. Cheap value type (no allocation),
/// used inside every behavioural P4LRU unit.
template <std::size_t N>
class LruState {
    static_assert(N >= 1 && N <= 8, "LruState: N out of supported range");

  public:
    /// Starts at the identity mapping (key[i] -> val[i]).
    constexpr LruState() noexcept {
        for (std::size_t i = 0; i < N; ++i) {
            map_[i] = static_cast<std::uint8_t>(i + 1);
        }
    }

    /// Value slot owned by key position i (1-based), i.e. S(i).
    [[nodiscard]] constexpr std::size_t operator()(std::size_t i) const noexcept {
        return map_[i - 1];
    }

    /// Value slot of the most recently used key: S(1).
    [[nodiscard]] constexpr std::size_t mru_slot() const noexcept {
        return map_[0];
    }

    /// Value slot of the least recently used key: S(N).
    [[nodiscard]] constexpr std::size_t lru_slot() const noexcept {
        return map_[N - 1];
    }

    /// Apply the Step-2 transition after the incoming key matched position i
    /// (i = N also covers the miss case, where key[N] was evicted).
    constexpr void apply_hit(std::size_t i) noexcept {
        const std::uint8_t head = map_[i - 1];
        for (std::size_t j = i - 1; j > 0; --j) {
            map_[j] = map_[j - 1];
        }
        map_[0] = head;
    }

    /// Convert to a general Permutation (for tests / pretty printing).
    [[nodiscard]] Permutation to_permutation() const {
        std::vector<std::size_t> row(N);
        for (std::size_t i = 0; i < N; ++i) row[i] = map_[i];
        return Permutation(row);
    }

    /// Rebuild from a general Permutation of matching size.
    static LruState from_permutation(const Permutation& p) {
        LruState s;
        for (std::size_t i = 1; i <= N; ++i) {
            s.map_[i - 1] = static_cast<std::uint8_t>(p(i));
        }
        return s;
    }

    friend constexpr bool operator==(const LruState&,
                                     const LruState&) noexcept = default;

  private:
    std::array<std::uint8_t, N> map_{};
};

}  // namespace p4lru::core
