// Permutations over {1..n} in the paper's two-row notation.
//
// A P4LRU cache state S_lru is a permutation mapping *key positions* to
// *value positions*: the key at key[i] owns the value at val[S(i)].  The
// update rule of Algorithm 1 is S <- R^-1 x S where R is the rotation the
// key array underwent, with composition defined (footnote 2 of the paper) as
//   (p x q)(j) = q(p(j)).
#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

namespace p4lru::core {

/// A permutation of {1..n}. Internally 0-based; the public accessors use the
/// paper's 1-based convention to stay textually close to Algorithm 1.
class Permutation {
  public:
    /// Identity permutation of size n.
    explicit Permutation(std::size_t n);

    /// From the bottom row of the two-row notation, 1-based. For example
    /// Permutation({2, 1, 3}) maps 1->2, 2->1, 3->3.
    Permutation(std::initializer_list<std::size_t> bottom_row);
    explicit Permutation(const std::vector<std::size_t>& bottom_row);

    [[nodiscard]] std::size_t size() const noexcept { return map_.size(); }

    /// Image of i (1-based): S(i).
    [[nodiscard]] std::size_t operator()(std::size_t i) const;

    /// Paper footnote-2 composition: (this x other)(j) = other(this(j)).
    [[nodiscard]] Permutation compose(const Permutation& other) const;

    /// Inverse permutation.
    [[nodiscard]] Permutation inverse() const;

    /// The rotation R of Step 1 when the incoming key was found at position
    /// i (or i = n on a miss): R = (1 2 ... i-1 i | 2 3 ... i 1), identity
    /// beyond i. Note R^-1 = (1 2 ... i | i 1 ... i-1).
    static Permutation rotation(std::size_t n, std::size_t i);

    /// Parity: true if the permutation is even (product of an even number of
    /// transpositions). The paper's Table-1 encoding maps even permutations
    /// to even codes.
    [[nodiscard]] bool is_even() const;

    /// Lexicographic rank in [0, n!) of the bottom row — a canonical dense
    /// integer encoding used by the generic DFA tables.
    [[nodiscard]] std::uint64_t lehmer_rank() const;

    /// Inverse of lehmer_rank.
    static Permutation from_lehmer_rank(std::size_t n, std::uint64_t rank);

    /// Two-row rendering, e.g. "(1 2 3 / 2 1 3)".
    [[nodiscard]] std::string to_string() const;

    friend bool operator==(const Permutation&, const Permutation&) = default;

  private:
    void validate() const;
    std::vector<std::size_t> map_;  // 0-based images
};

/// n! for small n (n <= 20).
[[nodiscard]] std::uint64_t factorial(std::size_t n);

}  // namespace p4lru::core
