// P4LRU4 — the paper's Section 2.3.3 feasibility claim, made concrete.
//
// The 24 cache states of a 4-entry P4LRU form S4. With V4 (the Klein
// four-group {e, (12)(34), (13)(24), (14)(23)}) normal in S4 and S4/V4 ≅ S3,
// every state decomposes uniquely as
//
//      S = sigma x v,   sigma in the S3 subgroup fixing position 4,
//                       v in V4,
//
// (composition convention (p x q)(j) = q(p(j)), as in the paper). The Step-2
// transition S <- R_i^-1 x S then splits into two *register-sized* updates:
//
//      sigma' = sigma_r(i) x sigma           (left-mult by a constant:
//                                             a 6-entry map per operation)
//      v'     = W_i(sigma) XOR v             (W_i a 6-entry lookup; V4 is
//                                             C2 x C2, so its product is
//                                             XOR on 2-bit codes)
//
// and the value slot S(1) = v(sigma(1)) needs one 16-entry table — exactly
// the "tiny table" a Tofino stateful ALU can reach. Two registers, each
// written once per packet; the v-update reads only the OLD sigma, which the
// sigma register action can export. Hence P4LRU4 deploys on the same
// pipeline contract as P4LRU3, with "more nuanced logic" as the paper
// predicted.
#pragma once

#include <array>
#include <concepts>
#include <cstdint>
#include <optional>
#include <utility>

#include "p4lru/core/p4lru.hpp"
#include "p4lru/core/permutation.hpp"

namespace p4lru::core::codec4 {

/// The transition tables of the decomposed S4 DFA. sigma codes reuse the
/// Table-1 encoding of the S3 part (0..5); v codes are 0..3 with XOR as the
/// group product.
struct Lru4Tables {
    /// sigma' = sigma_next[op][sigma], op in 0..3 (match position 1..4).
    std::array<std::array<std::uint8_t, 6>, 4> sigma_next{};
    /// v' = w[op][sigma_old] ^ v.
    std::array<std::array<std::uint8_t, 6>, 4> w{};
    /// S(1) = slot1[sigma * 4 + v], 1-based (the 16-entry tiny table).
    std::array<std::uint8_t, 24> slot1{};
    /// S(4) (least-recent slot), for insert_lru.
    std::array<std::uint8_t, 24> slot4{};
};

/// Build (and cache) the tables from the permutation algebra.
[[nodiscard]] const Lru4Tables& tables();

/// Compose a full S4 permutation from (sigma, v) codes.
[[nodiscard]] Permutation compose_state(std::uint8_t sigma, std::uint8_t v);

/// Decompose an S4 permutation into (sigma, v) codes. Throws if size != 4.
[[nodiscard]] std::pair<std::uint8_t, std::uint8_t> decompose_state(
    const Permutation& p);

/// Exhaustively verify the decomposition and every transition against
/// Algorithm 1 (24 states x 4 operations). Used by tests.
[[nodiscard]] bool verify_lru4_codec();

}  // namespace p4lru::core::codec4

namespace p4lru::core {

/// A 4-entry P4LRU unit driven by the decomposed two-register DFA.
/// Key{} is the empty-slot sentinel, as in the other encoded units.
template <typename Key, typename Value, typename Merge = ReplaceMerge>
    requires std::equality_comparable<Key>
class P4lru4Encoded {
  public:
    using Result = UpdateResult<Key, Value>;

    Result update(const Key& k, const Value& v) {
        return update(k, v, merge_);
    }

    template <typename MergeFn>
    Result update(const Key& k, const Value& v, MergeFn&& merge) {
        const auto& t = codec4::tables();
        Result r;

        // Key bubble, one register per stage.
        std::uint8_t op;  // 0-based match position; miss -> 3
        if (key_[0] == k) {
            op = 0;
            r.hit = true;
        } else if (key_[1] == k) {
            key_[1] = key_[0];
            key_[0] = k;
            op = 1;
            r.hit = true;
        } else if (key_[2] == k) {
            key_[2] = key_[1];
            key_[1] = key_[0];
            key_[0] = k;
            op = 2;
            r.hit = true;
        } else if (key_[3] == k) {
            shift_all(k);
            op = 3;
            r.hit = true;
        } else {
            const Key victim = key_[3];
            shift_all(k);
            op = 3;
            if (victim != Key{}) {
                r.evicted = true;
                r.evicted_key = victim;
            }
        }
        r.hit_pos = op + 1u;

        // Two-register DFA: the v-update consumes the OLD sigma (exported
        // by the sigma register action), then sigma advances.
        const std::uint8_t sigma_old = sigma_;
        sigma_ = t.sigma_next[op][sigma_old];
        v4_ = t.w[op][sigma_old] ^ v4_;

        // Single value access through the 16-entry slot table.
        const std::size_t slot = t.slot1[sigma_ * 4u + v4_];
        if (r.hit) {
            val_[slot - 1] = merge(val_[slot - 1], v);
        } else {
            if (r.evicted) r.evicted_value = val_[slot - 1];
            val_[slot - 1] = v;
        }
        return r;
    }

    [[nodiscard]] std::optional<Value> find(const Key& k) const {
        if (k == Key{}) return std::nullopt;
        const auto state = codec4::compose_state(sigma_, v4_);
        for (std::size_t i = 0; i < 4; ++i) {
            if (key_[i] == k) return val_[state(i + 1) - 1];
        }
        return std::nullopt;
    }

    [[nodiscard]] bool contains(const Key& k) const {
        return find(k).has_value();
    }

    bool touch(const Key& k, const Value& v) {
        if (!contains(k)) return false;
        update(k, v);
        return true;
    }

    /// Series-connection downstream insert (replace the least-recent slot,
    /// state untouched).
    std::optional<std::pair<Key, Value>> insert_lru(const Key& k,
                                                    const Value& v) {
        const auto state = codec4::compose_state(sigma_, v4_);
        for (std::size_t i = 0; i < 4; ++i) {
            if (key_[i] == k && k != Key{}) {
                val_[state(i + 1) - 1] = v;
                return std::nullopt;
            }
        }
        const auto& t = codec4::tables();
        const std::size_t slot = t.slot4[sigma_ * 4u + v4_];
        std::optional<std::pair<Key, Value>> displaced;
        if (key_[3] != Key{}) {
            displaced = std::make_pair(key_[3], val_[slot - 1]);
        }
        key_[3] = k;
        val_[slot - 1] = v;
        return displaced;
    }

    [[nodiscard]] std::uint8_t sigma_code() const noexcept { return sigma_; }
    [[nodiscard]] std::uint8_t v4_code() const noexcept { return v4_; }
    [[nodiscard]] const Key& raw_key(std::size_t i) const { return key_[i]; }
    [[nodiscard]] static constexpr std::size_t capacity() noexcept {
        return 4;
    }

    [[nodiscard]] std::size_t size() const noexcept {
        std::size_t n = 0;
        for (const auto& key : key_) n += key != Key{} ? 1 : 0;
        return n;
    }

  private:
    void shift_all(const Key& k) {
        key_[3] = key_[2];
        key_[2] = key_[1];
        key_[1] = key_[0];
        key_[0] = k;
    }

    std::array<Key, 4> key_{};
    std::array<Value, 4> val_{};
    std::uint8_t sigma_ = 4;  // Table-1 identity code
    std::uint8_t v4_ = 0;     // V4 identity
    [[no_unique_address]] Merge merge_{};
};

}  // namespace p4lru::core
