// The UnitStorage concept: how a parallel connection stores its array of
// small P4LRU units.
//
// ParallelCache is a thin policy layer (hashing, bucket routing); the actual
// memory layout lives behind this concept.  Two interchangeable models:
//
//   * AosStorage<Unit>     - array-of-structs: one self-contained unit object
//                            per bucket (the original layout; keeps the
//                            behavioural P4lru and the encoded units as the
//                            bit-exact reference model);
//   * SoaSlab<K, V, N>     - struct-of-arrays slab (soa_slab.hpp): all units'
//                            keys in one contiguous key plane, values in a
//                            value plane, packed state codes in a byte plane,
//                            with a branch-free compare-mask key scan.
//
// Every operation is addressed by bucket index — the caller (ParallelCache)
// hashes exactly once and passes the bucket through.  Storages also speak a
// small first-touch protocol so the sharded replay engine can fault each
// shard's slab sub-range in on the worker thread that will own it (the
// precursor to full NUMA-aware placement; see ROADMAP.md).
#pragma once

#include <concepts>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <initializer_list>
#include <optional>
#include <span>
#include <type_traits>
#include <utility>
#include <vector>

#include "p4lru/core/p4lru.hpp"

namespace p4lru::core {

/// Outcome of an integrity scrub pass over a unit range: how many units were
/// scanned, how many held a state word that is not a legal LruState encoding,
/// and how many of those were repaired (for the current storages every
/// detected corruption is repairable, so corrupt == repaired).
struct ScrubReport {
    std::uint64_t scanned = 0;
    std::uint64_t corrupt = 0;
    std::uint64_t repaired = 0;

    friend bool operator==(const ScrubReport&, const ScrubReport&) = default;

    void merge(const ScrubReport& o) noexcept {
        scanned += o.scanned;
        corrupt += o.corrupt;
        repaired += o.repaired;
    }
};

/// Stable numeric ids for the storage layouts (checkpoint images carry one
/// so a snapshot can never be restored into the wrong layout — two layouts
/// of coincidentally equal plane-byte size would otherwise silently
/// reinterpret each other's planes).
inline constexpr std::uint32_t kAosLayoutId = 1;
inline constexpr std::uint32_t kSoaLayoutId = 2;

/// FNV-style mix of the quantities that define a storage's plane geometry
/// (element sizes, lane counts, stride).  Two storages may exchange plane
/// images only when both the layout id and this fingerprint agree; a bare
/// byte-size compare is not enough.
[[nodiscard]] constexpr std::uint64_t plane_fingerprint_mix(
    std::initializer_list<std::uint64_t> dims) noexcept {
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (const std::uint64_t d : dims) {
        h ^= d;
        h *= 0x100000001b3ull;
        h ^= h >> 29;
    }
    return h;
}

/// Tag requesting deferred plane initialization: the storage allocates but
/// does not touch its memory; first_touch(lo, hi) (from the thread that will
/// own [lo, hi)) then mark_materialized() make it usable.  Storages with
/// eagerly-initialized backing (AosStorage) accept the tag and ignore it.
struct defer_init_t {
    explicit defer_init_t() = default;
};
inline constexpr defer_init_t defer_init{};

/// Storage model for a hash-indexed array of N-entry LRU units.  All
/// mutating/readonly entry points take the owning bucket index; the
/// first-touch trio (materialized / first_touch / mark_materialized) backs
/// the replay engine's per-worker page placement.
template <typename S>
concept UnitStorage = requires(S s, const S& cs, std::size_t b,
                               const typename S::key_type& k,
                               const typename S::value_type& v) {
    typename S::key_type;
    typename S::value_type;
    requires std::same_as<
        typename S::Result,
        UpdateResult<typename S::key_type, typename S::value_type>>;
    { S::unit_capacity() } -> std::convertible_to<std::size_t>;
    { S::layout_name() } -> std::convertible_to<const char*>;
    { S::layout_id() } -> std::convertible_to<std::uint32_t>;
    { S::plane_fingerprint() } -> std::convertible_to<std::uint64_t>;
    { cs.unit_count() } -> std::convertible_to<std::size_t>;
    { s.update_at(b, k, v) } -> std::same_as<typename S::Result>;
    { s.update_at(b, k, v, ReplaceMerge{}) } -> std::same_as<typename S::Result>;
    { s.touch_at(b, k, v) } -> std::same_as<bool>;
    {
        cs.find_at(b, k)
    } -> std::same_as<std::optional<typename S::value_type>>;
    {
        s.insert_lru_at(b, k, v)
    } -> std::same_as<std::optional<
        std::pair<typename S::key_type, typename S::value_type>>>;
    { cs.size_at(b) } -> std::convertible_to<std::size_t>;
    { cs.prefetch(b) };
    { cs.materialized() } -> std::same_as<bool>;
    { s.first_touch(b, b) };
    { s.mark_materialized() };
    { cs.unit(b) };
};

/// Array-of-structs storage: one `Unit` object (keys + values + state,
/// interleaved) per bucket.  This is the original ParallelCache layout, kept
/// as the bit-exact reference model the SoA slab is tested against, and the
/// only layout for unit types the slab cannot hold (encoded units with their
/// own state machines, non-trivially-copyable keys, N > 4).
template <typename Unit, typename Key, typename Value>
class AosStorage {
  public:
    using unit_type = Unit;
    using key_type = Key;
    using value_type = Value;
    using Result = UpdateResult<Key, Value>;

    explicit AosStorage(std::size_t units) : units_(units) {}
    /// AoS backing is a std::vector: construction already touches every
    /// page, so deferred init degenerates to eager init.
    AosStorage(std::size_t units, defer_init_t) : AosStorage(units) {}

    [[nodiscard]] static constexpr std::size_t unit_capacity() noexcept {
        return Unit::capacity();
    }
    [[nodiscard]] static constexpr const char* layout_name() noexcept {
        return "aos";
    }
    [[nodiscard]] static constexpr std::uint32_t layout_id() noexcept {
        return kAosLayoutId;
    }
    /// Plane geometry: one interleaved Unit object per bucket, so the unit's
    /// size/alignment and entry capacity pin the image layout.
    [[nodiscard]] static constexpr std::uint64_t plane_fingerprint() noexcept {
        return plane_fingerprint_mix({kAosLayoutId, sizeof(Unit),
                                      alignof(Unit), Unit::capacity(),
                                      sizeof(Key), sizeof(Value)});
    }

    [[nodiscard]] std::size_t unit_count() const noexcept {
        return units_.size();
    }

    Result update_at(std::size_t b, const Key& k, const Value& v) {
        return units_[b].update(k, v);
    }
    template <typename MergeFn>
    Result update_at(std::size_t b, const Key& k, const Value& v,
                     MergeFn&& merge) {
        return units_[b].update(k, v, std::forward<MergeFn>(merge));
    }

    [[nodiscard]] std::optional<Value> find_at(std::size_t b,
                                               const Key& k) const {
        return units_[b].find(k);
    }

    bool touch_at(std::size_t b, const Key& k, const Value& v) {
        return units_[b].touch(k, v);
    }

    std::optional<std::pair<Key, Value>> insert_lru_at(std::size_t b,
                                                       const Key& k,
                                                       const Value& v) {
        return units_[b].insert_lru(k, v);
    }

    [[nodiscard]] std::size_t size_at(std::size_t b) const {
        return units_[b].size();
    }

    /// Hint the unit object into cache (write intent).
    void prefetch(std::size_t b) const noexcept {
#if defined(__GNUC__) || defined(__clang__)
        const char* p = reinterpret_cast<const char*>(&units_[b]);
        __builtin_prefetch(p, 1, 2);
        if constexpr (sizeof(Unit) > 64) {
            __builtin_prefetch(p + 64, 1, 2);
        }
#else
        (void)b;
#endif
    }

    // First-touch protocol: vector construction already committed the pages
    // on the constructing thread, so AoS storage is always materialized.
    [[nodiscard]] bool materialized() const noexcept { return true; }
    void first_touch(std::size_t /*lo*/, std::size_t /*hi*/) noexcept {}
    void mark_materialized() noexcept {}

    // -- integrity + checkpoint ------------------------------------------

    /// AoS units hold their LruState as a typed value that only its own
    /// transitions mutate — there is no raw plane an external bit-flip can
    /// reach through this interface — so a scrub pass finds nothing by
    /// construction.  Kept for storage-generic callers.
    ScrubReport scrub_range(std::size_t lo, std::size_t hi) noexcept {
        ScrubReport r;
        r.scanned = hi - lo;
        return r;
    }

    /// Snapshot/restore the whole unit array as raw bytes (checkpointing).
    /// Only available when the unit is trivially copyable (true for P4lru
    /// over trivially copyable keys/values).
    void save_planes(std::vector<std::byte>& out) const
        requires std::is_trivially_copyable_v<Unit>
    {
        out.resize(units_.size() * sizeof(Unit));
        if (!units_.empty()) {
            std::memcpy(out.data(), units_.data(), out.size());
        }
    }
    [[nodiscard]] bool load_planes(std::span<const std::byte> in)
        requires std::is_trivially_copyable_v<Unit>
    {
        if (in.size() != units_.size() * sizeof(Unit)) return false;
        if (!units_.empty()) {
            std::memcpy(units_.data(), in.data(), in.size());
        }
        return true;
    }

    /// Per-unit inspection handle (tests, for_each-style enumeration).
    [[nodiscard]] const Unit& unit(std::size_t b) const {
        return units_.at(b);
    }

  private:
    std::vector<Unit> units_;
};

static_assert(
    UnitStorage<AosStorage<P4lru<unsigned, unsigned, 3>, unsigned, unsigned>>);

/// Storage selection trait: maps a unit type onto its default storage.  The
/// primary template keeps everything on the AoS reference layout; the SoA
/// slab registers itself (soa_slab.hpp) for behavioural P4lru units it can
/// hold, which makes the slab the default for every ParallelCache consumer.
template <typename Unit, typename Key, typename Value>
struct default_storage {
    using type = AosStorage<Unit, Key, Value>;
};

template <typename Unit, typename Key, typename Value>
using default_storage_t = typename default_storage<Unit, Key, Value>::type;

}  // namespace p4lru::core
