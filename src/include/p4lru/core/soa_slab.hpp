// SoaSlab: the parallel connection as one flat struct-of-arrays slab.
//
// The paper's P[1..2^16] array of tiny N-entry LRU units is a natural
// struct-of-arrays: keys are scanned every packet, exactly one value slot is
// touched, and the cache state is a few bits.  Instead of a vector of unit
// objects (AosStorage), the slab stores three cache-line-aligned planes:
//
//   key plane    Key[units * N]   - unit u's N stage lanes at [u*N, u*N+N),
//                                   contiguous so the Step-1 scan is one
//                                   branch-free compare-mask over the lanes;
//   value plane  Value[units * N] - val[] never moves (the paper's fixed
//                                   value registers); one slot written per op;
//   meta plane   MetaWord[units]  - the S_lru permutation packed 2 bits per
//                                   position plus the occupancy count.  For
//                                   N <= 3 (the paper's deployments) this is
//                                   a single byte per unit.
//
// Observable behaviour is bit-identical to AosStorage over behavioural
// P4lru units: same UpdateResult stream, same key order, same value slots
// (tests/core/soa_slab_test.cpp proves it property-style).  The scan is
// written mask-first — compare all N lanes unconditionally, AND with the
// occupancy mask, count trailing zeros — so the compiler can vectorize the
// lane compares; the only data-dependent branch ahead of it is the
// MRU-hit fast path (lane 0 matches, rotation and state transition are both
// identities), which dominates on skewed traffic and predicts well.
//
// The planes support deferred initialization (core::defer_init): the slab
// allocates without touching memory and the sharded replay engine
// first-touches each shard's sub-range from the worker thread that will own
// it, placing pages NUMA-locally on multi-node machines (ROADMAP: full
// pinning builds on this).
#pragma once

#include <algorithm>
#include <bit>
#include <concepts>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <new>
#include <optional>
#include <span>
#include <type_traits>
#include <utility>
#include <vector>

#include "p4lru/common/types.hpp"
#include "p4lru/core/simd/scan_kernels.hpp"  // detail::lane_eq + scan dispatch
#include "p4lru/core/unit_storage.hpp"

namespace p4lru::core {

/// Struct-of-arrays storage for an array of behavioural P4LRU_N units.
///
/// \tparam Key    trivially copyable key (FlowKey, fingerprints, DB keys).
/// \tparam Value  trivially copyable value.
/// \tparam N      entries per unit, 1..4 (the packed permutation uses 2 bits
///                per position; the paper deploys N = 2 and N = 3).
/// \tparam Merge  default hit-merge, as in P4lru.
template <typename Key, typename Value, std::size_t N,
          typename Merge = ReplaceMerge>
    requires std::equality_comparable<Key> && (N >= 1 && N <= 4) &&
             std::is_trivially_copyable_v<Key> &&
             std::is_trivially_copyable_v<Value> &&
             std::is_trivially_destructible_v<Key> &&
             std::is_trivially_destructible_v<Value>
class SoaSlab {
  public:
    using key_type = Key;
    using value_type = Value;
    using Result = UpdateResult<Key, Value>;
    /// Packed per-unit metadata: bits [0, 2N) hold the S_lru bottom row
    /// (field j = S(j+1) - 1), bits [2N, ..) the occupancy count.  One byte
    /// per unit for N <= 3, two for N = 4.
    using MetaWord = std::conditional_t<(N <= 3), std::uint8_t, std::uint16_t>;

    static constexpr unsigned kPermBits = 2u * N;
    static constexpr unsigned kPermMask = (1u << kPermBits) - 1u;

    /// Key rows are padded to a power-of-two lane count so a row whose key
    /// size is a power of two never straddles a cache line (a 3-lane FlowKey
    /// row is 48 bytes; at stride 3 three rows in four cross a line
    /// boundary, at stride 4 each row is exactly one line).  Only the key
    /// plane pays the padding: the whole row is scanned every op, while the
    /// value plane sees a single-slot access and the meta plane a single
    /// word.  Lanes >= N are never read.
    static constexpr std::size_t kKeyStride = std::bit_ceil(N);

    explicit SoaSlab(std::size_t units)
        : units_(units),
          keys_(alloc_plane<Key>(units * kKeyStride)),
          vals_(alloc_plane<Value>(units * N)),
          meta_(alloc_plane<MetaWord>(units)) {
        first_touch(0, units_);
        materialized_ = true;
    }

    /// Allocate the planes without touching them; the owner must cover
    /// [0, unit_count()) with first_touch calls (from the threads that will
    /// own each range) and then mark_materialized() before any other use.
    SoaSlab(std::size_t units, defer_init_t)
        : units_(units),
          keys_(alloc_plane<Key>(units * kKeyStride)),
          vals_(alloc_plane<Value>(units * N)),
          meta_(alloc_plane<MetaWord>(units)) {}

    [[nodiscard]] static constexpr std::size_t unit_capacity() noexcept {
        return N;
    }
    [[nodiscard]] static constexpr const char* layout_name() noexcept {
        return "soa";
    }
    [[nodiscard]] static constexpr std::uint32_t layout_id() noexcept {
        return kSoaLayoutId;
    }
    /// Plane geometry: three flat planes whose shapes are fixed by the key /
    /// value / meta element sizes, the lane count and the padded key stride.
    [[nodiscard]] static constexpr std::uint64_t plane_fingerprint() noexcept {
        return plane_fingerprint_mix({kSoaLayoutId, sizeof(Key), sizeof(Value),
                                      N, kKeyStride, sizeof(MetaWord)});
    }

    [[nodiscard]] std::size_t unit_count() const noexcept { return units_; }

    // -- packed-state codec (public: the property suite cross-checks it
    //    against LruState<N>) -------------------------------------------

    /// Identity permutation, occupancy 0.
    [[nodiscard]] static constexpr MetaWord identity_meta() noexcept {
        unsigned m = 0;
        for (std::size_t j = 0; j < N; ++j) {
            m |= static_cast<unsigned>(j) << (2 * j);
        }
        return static_cast<MetaWord>(m);
    }

    /// Step-2 transition after the key matched 1-based position i (i = N on
    /// a miss): right-rotate the first i permutation fields.
    [[nodiscard]] static constexpr MetaWord apply_hit(MetaWord m,
                                                      std::size_t i) noexcept {
        unsigned s = m & kPermMask;
        const unsigned shift = 2u * static_cast<unsigned>(i - 1);
        const unsigned head = (s >> shift) & 3u;
        const unsigned low = (1u << (shift + 2u)) - 1u;
        s = (s & ~low) | (((s << 2u) & low) & ~3u) | head;
        return static_cast<MetaWord>((m & ~kPermMask) | s);
    }

    /// S(j): value slot owned by 1-based key position j.
    [[nodiscard]] static constexpr std::size_t slot_of(MetaWord m,
                                                       std::size_t j) noexcept {
        return ((m >> (2u * (j - 1))) & 3u) + 1u;
    }

    /// Occupied-prefix length encoded in the meta word.
    [[nodiscard]] static constexpr std::size_t occupancy(MetaWord m) noexcept {
        return m >> kPermBits;
    }

    /// A meta word is a legal LruState encoding iff its N 2-bit fields are a
    /// permutation of {0..N-1} and the occupancy does not exceed N.  (An
    /// occupancy flip that stays within [0, N] is undetectable — the word is
    /// still a legal encoding of *some* unit; see DESIGN.md §10.)
    [[nodiscard]] static constexpr bool meta_valid(MetaWord m) noexcept {
        if (occupancy(m) > N) return false;
        unsigned seen = 0;
        for (std::size_t j = 1; j <= N; ++j) {
            const std::size_t slot = slot_of(m, j);  // 1-based, raw field + 1
            if (slot > N) return false;
            seen |= 1u << (slot - 1);
        }
        return seen == (1u << N) - 1u;
    }

    // -- bucket-addressed operations (mirror P4lru bit-for-bit) ----------

    Result update_at(std::size_t b, const Key& k, const Value& v) {
        return update_at(b, k, v, merge_);
    }

    /// Algorithm 1 on unit b.  Scan: compare every lane, mask to the
    /// occupied prefix, take the first match; then one prefix rotation of
    /// the key row, one packed-state rotation, one value-slot access.
    template <typename MergeFn>
    Result update_at(std::size_t b, const Key& k, const Value& v,
                     MergeFn&& merge) {
        Key* row = keys_.get() + b * kKeyStride;
        Value* vrow = vals_.get() + b * N;
#if defined(__GNUC__) || defined(__clang__)
        // The value-slot address depends on the meta load; prefetching the
        // row base breaks that dependency chain.
        __builtin_prefetch(vrow, 1, 3);
#endif
        MetaWord m = meta_[b];
        const std::size_t sz = occupancy(m);

        Result r;
        // Hit at the MRU position: the rotation and the state transition are
        // both identities, so only the value slot is touched.  On skewed
        // traffic this is the dominant case and the branch predicts well;
        // checking lane 0 alone skips the full-row compare.  (`&`, not `&&`:
        // lane 0 is initialized even when empty, and one branch beats two.)
        if (static_cast<unsigned>(sz != 0) &
            static_cast<unsigned>(detail::lane_eq(row[0], k))) {
            r.hit = true;
            r.hit_pos = 1;
            Value* slot = vrow + (m & 3u);
            *slot = merge(*slot, v);
            return r;
        }
        const unsigned mask = match_mask(row, k) & ((1u << sz) - 1u);
        std::size_t i;
        if (mask != 0) {
            const auto p = static_cast<std::size_t>(std::countr_zero(mask));
            rotate_in(row, p, k);
            i = p + 1;
            r.hit = true;
            r.hit_pos = i;
        } else if (sz < N) {
            rotate_in(row, sz, k);
            m = static_cast<MetaWord>(m + (1u << kPermBits));
            i = sz + 1;
            r.hit_pos = i;
        } else {
            r.evicted_key = row[N - 1];
            rotate_in(row, N - 1, k);
            i = N;
            r.hit_pos = N;
            r.evicted = true;
        }

        m = apply_hit(m, i);
        meta_[b] = m;
        Value* slot = vrow + (m & 3u);  // val[S(1)]
        if (r.hit) {
            *slot = merge(*slot, v);
        } else if (r.evicted) {
            r.evicted_value = *slot;
            *slot = v;
        } else {
            *slot = v;
        }
        return r;
    }

    [[nodiscard]] std::optional<Value> find_at(std::size_t b,
                                               const Key& k) const {
        const Key* row = keys_.get() + b * kKeyStride;
        const MetaWord m = meta_[b];
        const std::size_t sz = occupancy(m);
        if (static_cast<unsigned>(sz != 0) &
            static_cast<unsigned>(detail::lane_eq(row[0], k))) {
            return vals_[b * N + (m & 3u)];  // MRU fast path
        }
        const unsigned mask = match_mask(row, k) & ((1u << sz) - 1u);
        if (mask == 0) return std::nullopt;
        const auto p = static_cast<std::size_t>(std::countr_zero(mask));
        return vals_[b * N + slot_of(m, p + 1) - 1];
    }

    /// Promote an existing key to most-recent, merging v with the default
    /// merge; false (and no mutation) if absent.  Matches P4lru::touch,
    /// whose miss path undoes its speculative rotation.
    bool touch_at(std::size_t b, const Key& k, const Value& v) {
        Key* row = keys_.get() + b * kKeyStride;
        MetaWord m = meta_[b];
        const std::size_t sz = occupancy(m);
        if (static_cast<unsigned>(sz != 0) &
            static_cast<unsigned>(detail::lane_eq(row[0], k))) {
            // Already most-recent: rotation and state transition are
            // identities, only the value merge happens.
            Value* slot = vals_.get() + b * N + (m & 3u);
            *slot = merge_(*slot, v);
            return true;
        }
        const unsigned mask = match_mask(row, k) & ((1u << sz) - 1u);
        if (mask == 0) return false;
        const auto p = static_cast<std::size_t>(std::countr_zero(mask));
        rotate_in(row, p, k);
        m = apply_hit(m, p + 1);
        meta_[b] = m;
        Value* slot = vals_.get() + b * N + (m & 3u);
        *slot = merge_(*slot, v);
        return true;
    }

    /// Insert <k, v> as the least-recent entry of unit b, state untouched
    /// (series-connection downstream insert).  Returns the displaced pair.
    std::optional<std::pair<Key, Value>> insert_lru_at(std::size_t b,
                                                       const Key& k,
                                                       const Value& v) {
        Key* row = keys_.get() + b * kKeyStride;
        MetaWord m = meta_[b];
        const std::size_t sz = occupancy(m);
        const unsigned mask = match_mask(row, k) & ((1u << sz) - 1u);
        if (mask != 0) {
            const auto p = static_cast<std::size_t>(std::countr_zero(mask));
            vals_[b * N + slot_of(m, p + 1) - 1] = v;
            return std::nullopt;
        }
        if (sz < N) {
            row[sz] = k;
            meta_[b] = static_cast<MetaWord>(m + (1u << kPermBits));
            vals_[b * N + slot_of(m, sz + 1) - 1] = v;
            return std::nullopt;
        }
        const std::size_t slot = slot_of(m, N);
        auto displaced = std::make_pair(row[N - 1], vals_[b * N + slot - 1]);
        row[N - 1] = k;
        vals_[b * N + slot - 1] = v;
        return displaced;
    }

    [[nodiscard]] std::size_t size_at(std::size_t b) const {
        return occupancy(meta_[b]);
    }

    /// Per-plane prefetch (write intent): the key row — both lines when the
    /// row straddles one — the value row, and the unit's meta word.
    void prefetch(std::size_t b) const noexcept {
#if defined(__GNUC__) || defined(__clang__)
        const char* kp = reinterpret_cast<const char*>(keys_.get() + b * kKeyStride);
        __builtin_prefetch(kp, 1, 2);
        if constexpr (N * sizeof(Key) > 64) {
            __builtin_prefetch(kp + 64, 1, 2);
        }
        __builtin_prefetch(vals_.get() + b * N, 1, 2);
        __builtin_prefetch(meta_.get() + b, 1, 2);
#else
        (void)b;
#endif
    }

    // -- integrity: scrubbing and fault hooks ----------------------------

    /// Validate units [lo, hi) against the legal LruState encodings and
    /// repair every corrupt word in place: the permutation resets to
    /// identity (an MRU-reset — the current key order is re-adopted as the
    /// recency order and each position re-owns its same-index value slot)
    /// and the occupancy is kept when still plausible, clamped to N when its
    /// bits rotted out of range.  The repaired unit serves traffic again
    /// immediately; subsequent hit/miss accounting for its keys may differ
    /// from a corruption-free history, which is the graceful degradation the
    /// caller opted into by continuing past corruption.
    ScrubReport scrub_range(std::size_t lo, std::size_t hi) noexcept {
        ScrubReport r;
        for (std::size_t b = lo; b < hi; ++b) {
            ++r.scanned;
            const MetaWord m = meta_[b];
            if (meta_valid(m)) continue;
            ++r.corrupt;
            const auto occ =
                static_cast<unsigned>(std::min(occupancy(m), N));
            meta_[b] =
                static_cast<MetaWord>(identity_meta() | (occ << kPermBits));
            ++r.repaired;
        }
        return r;
    }

    /// Fault-injection hooks (tests and the fault subsystem only): XOR a
    /// mask into the raw planes, simulating a bit-flip in switch SRAM.
    void corrupt_meta_at(std::size_t b, unsigned xor_mask) noexcept {
        meta_[b] = static_cast<MetaWord>(meta_[b] ^ xor_mask);
    }
    void corrupt_key_at(std::size_t b, std::size_t byte_offset,
                        std::uint8_t xor_mask) noexcept {
        auto* row = reinterpret_cast<unsigned char*>(keys_.get() +
                                                     b * kKeyStride);
        row[byte_offset % (N * sizeof(Key))] ^= xor_mask;
    }

    // -- checkpoint ------------------------------------------------------

    /// Snapshot the three planes (keys, values, meta, concatenated in that
    /// order) as raw bytes.  With the op cursor this is a complete resume
    /// point: restoring and replaying the remaining ops is bit-identical to
    /// an uninterrupted run (replay/checkpoint.hpp).
    void save_planes(std::vector<std::byte>& out) const {
        const std::size_t kb = units_ * kKeyStride * sizeof(Key);
        const std::size_t vb = units_ * N * sizeof(Value);
        const std::size_t mb = units_ * sizeof(MetaWord);
        out.resize(kb + vb + mb);
        std::memcpy(out.data(), keys_.get(), kb);
        std::memcpy(out.data() + kb, vals_.get(), vb);
        std::memcpy(out.data() + kb + vb, meta_.get(), mb);
    }

    /// Restore planes saved by save_planes on a slab of the same geometry;
    /// false (and no mutation) on a size mismatch.  The slab is materialized
    /// afterwards — the restore is itself a full first touch.
    [[nodiscard]] bool load_planes(std::span<const std::byte> in) {
        const std::size_t kb = units_ * kKeyStride * sizeof(Key);
        const std::size_t vb = units_ * N * sizeof(Value);
        const std::size_t mb = units_ * sizeof(MetaWord);
        if (in.size() != kb + vb + mb) return false;
        std::memcpy(keys_.get(), in.data(), kb);
        std::memcpy(vals_.get(), in.data() + kb, vb);
        std::memcpy(meta_.get(), in.data() + kb + vb, mb);
        materialized_ = true;
        return true;
    }

    // -- first-touch protocol --------------------------------------------

    [[nodiscard]] bool materialized() const noexcept { return materialized_; }

    /// Initialize (and thereby fault in) the planes of units [lo, hi).  On a
    /// deferred slab the calling thread performs the first write to those
    /// pages, so a first-touch NUMA policy places them on its node.  No-op
    /// once materialized — live contents are never re-zeroed.  Disjoint
    /// ranges may be touched concurrently (the replay workers do).
    void first_touch(std::size_t lo, std::size_t hi) {
        if (materialized_) return;
        for (std::size_t i = lo * kKeyStride; i < hi * kKeyStride; ++i) keys_[i] = Key{};
        for (std::size_t i = lo * N; i < hi * N; ++i) vals_[i] = Value{};
        for (std::size_t b = lo; b < hi; ++b) meta_[b] = identity_meta();
    }

    /// Declare first-touch coverage complete.  Call once, after every range
    /// of a deferred slab has been touched and the touching threads joined.
    void mark_materialized() noexcept { materialized_ = true; }

    // -- per-unit inspection ---------------------------------------------

    /// Read-only view of one unit with the P4lru accessor vocabulary
    /// (key_at / value_at / size), so storage-generic code and tests can
    /// enumerate entries without knowing the layout.
    class UnitView {
      public:
        UnitView(const SoaSlab* slab, std::size_t b) : slab_(slab), b_(b) {}

        [[nodiscard]] std::size_t size() const { return slab_->size_at(b_); }
        [[nodiscard]] static constexpr std::size_t capacity() noexcept {
            return N;
        }
        [[nodiscard]] bool full() const { return size() == N; }

        /// Key at 1-based LRU position (1 = most recent).
        [[nodiscard]] const Key& key_at(std::size_t i) const {
            return slab_->keys_[b_ * kKeyStride + i - 1];
        }
        /// Value owned by the key at 1-based position i.
        [[nodiscard]] const Value& value_at(std::size_t i) const {
            return slab_->vals_[b_ * N + slot_of(slab_->meta_[b_], i) - 1];
        }

        [[nodiscard]] std::optional<Value> find(const Key& k) const {
            return slab_->find_at(b_, k);
        }
        [[nodiscard]] bool contains(const Key& k) const {
            return find(k).has_value();
        }

      private:
        const SoaSlab* slab_;
        std::size_t b_;
    };

    [[nodiscard]] UnitView unit(std::size_t b) const {
        return UnitView(this, b);
    }

    /// Raw packed meta word of unit b (codec tests).
    [[nodiscard]] MetaWord meta_at(std::size_t b) const { return meta_[b]; }

  private:
    static constexpr std::size_t kPlaneAlign = 64;

    template <typename T>
    struct PlaneDeleter {
        void operator()(T* p) const noexcept {
            ::operator delete(static_cast<void*>(p),
                              std::align_val_t{kPlaneAlign});
        }
    };
    template <typename T>
    using Plane = std::unique_ptr<T[], PlaneDeleter<T>>;

    template <typename T>
    static Plane<T> alloc_plane(std::size_t n) {
        return Plane<T>(static_cast<T*>(::operator new(
            (n ? n : 1) * sizeof(T), std::align_val_t{kPlaneAlign})));
    }

    /// Bit j set iff lane j equals k.  Every lane is compared (no early
    /// exit); callers mask with the occupancy.  Multi-lane rows go through
    /// the runtime-dispatched scan kernel (core/simd/scan_kernels.hpp) —
    /// explicit SSE2/AVX2/NEON where available, the reference scalar loop
    /// otherwise or under P4LRU_FORCE_SCALAR.  A single-lane row is one
    /// compare; calling through a function pointer would only add overhead.
    [[nodiscard]] static unsigned match_mask(const Key* row,
                                             const Key& k) noexcept {
        if constexpr (kKeyStride == 1) {
            return static_cast<unsigned>(detail::lane_eq(row[0], k));
        } else {
            return simd::ScanDispatch<Key, kKeyStride, N>::run(row, k);
        }
    }

    /// row[1..m] = row[0..m-1], row[0] = k — the Step-1 key rotation.
    static void rotate_in(Key* row, std::size_t m, const Key& k) noexcept {
        for (std::size_t j = m; j > 0; --j) row[j] = row[j - 1];
        row[0] = k;
    }

    std::size_t units_;
    Plane<Key> keys_;
    Plane<Value> vals_;
    Plane<MetaWord> meta_;
    bool materialized_ = false;
    [[no_unique_address]] Merge merge_{};
};

static_assert(UnitStorage<SoaSlab<std::uint32_t, std::uint32_t, 3>>);

/// Make the slab the default storage for every behavioural P4lru unit it can
/// hold; encoded units, N > 4 and non-trivially-copyable keys stay on the
/// AoS reference layout.
template <typename Key, typename Value, std::size_t N, typename Merge>
    requires(N <= 4 && std::is_trivially_copyable_v<Key> &&
             std::is_trivially_copyable_v<Value> &&
             std::is_trivially_destructible_v<Key> &&
             std::is_trivially_destructible_v<Value>)
struct default_storage<P4lru<Key, Value, N, Merge>, Key, Value> {
    using type = SoaSlab<Key, Value, N, Merge>;
};

}  // namespace p4lru::core
