// Explicit-SIMD scan kernels for the SoaSlab key-plane compare-mask scan,
// with one-time runtime CPU-feature dispatch.
//
// The slab's hot kernel is tiny and fixed-shape: compare the `Stride`
// contiguous lanes of one unit's key row against a probe key and return the
// match bitmask for the N real lanes.  PR 2 wrote that loop
// auto-vectorization-friendly; this layer adds hand-written kernels —
// SSE2 (x86-64 baseline), AVX2 (cpuid-gated) and NEON (AArch64) — because
// for the small-N LRU-unit shape a broadcast-compare-movemask sequence beats
// what the compiler derives from the scalar loop (cf. "Multi-step LRU:
// SIMD-based Cache Replacement", PAPERS.md).
//
// Dispatch model:
//   * `ScanKernels<Key, Stride, N>` is the per-shape kernel table.  Its
//     `get(kernel)` returns the widest implemented kernel no wider than the
//     request (avx2 -> sse2 -> scalar; neon -> scalar), so a global kernel
//     choice always lands on something the shape actually implements.  The
//     scalar kernel is the reference model — byte-for-byte the PR-2 loop.
//   * `ScanDispatch<Key, Stride, N>` is the call site: a function pointer
//     resolved once per instantiation from `active_kernel()` (cpuid probe +
//     environment overrides), lazily on first scan so no static-init-order
//     games are needed.  `set_kernel_override` rebinds every live
//     instantiation — the bench harness uses it to run scalar and SIMD
//     series in one process.
//   * Forcing scalar: build with -DP4LRU_FORCE_SCALAR=ON (the kernels are
//     not even compiled) or run with P4LRU_FORCE_SCALAR=1 in the
//     environment; P4LRU_SCAN_KERNEL=scalar|sse2|avx2|neon pins a specific
//     kernel when the CPU supports it.
//
// Every kernel returns exactly the scalar mask: bit j set iff lane j
// (j < N) equals the probe under `lane_eq` — which for FlowKey compares the
// 13 defined bytes and *ignores the 3 pad bytes*, so the byte-compare
// kernels mask the pad bytes out (a pad byte corrupted by the fault hooks
// must not turn a hit into a miss when the scalar model still matches).
// Lanes >= N (key-row padding) never contribute a bit.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>

#include "p4lru/common/types.hpp"

#if !defined(P4LRU_FORCE_SCALAR) && (defined(__GNUC__) || defined(__clang__))
#if defined(__x86_64__)
#define P4LRU_SIMD_X86 1
#include <immintrin.h>
#elif defined(__aarch64__) && defined(__ARM_NEON)
#define P4LRU_SIMD_NEON 1
#include <arm_neon.h>
#endif
#endif

namespace p4lru::core {

namespace detail {

/// Lane equality for the compare-mask scan.  The generic form is the key's
/// own operator==; FlowKey gets a fused branch-free compare — the 5-tuple's
/// 13 defined bytes as one u64 + one u32 + the proto byte, AND-combined —
/// instead of five short-circuiting member compares.
template <typename K>
[[nodiscard]] inline bool lane_eq(const K& a, const K& b) {
    return a == b;
}

[[nodiscard]] inline bool lane_eq(const FlowKey& a, const FlowKey& b) {
    static_assert(offsetof(FlowKey, src_port) == 8 &&
                  offsetof(FlowKey, proto) == 12);
    std::uint64_t a_ips, b_ips;
    std::uint32_t a_ports, b_ports;
    std::memcpy(&a_ips, &a, sizeof(a_ips));
    std::memcpy(&b_ips, &b, sizeof(b_ips));
    std::memcpy(&a_ports, reinterpret_cast<const char*>(&a) + 8,
                sizeof(a_ports));
    std::memcpy(&b_ports, reinterpret_cast<const char*>(&b) + 8,
                sizeof(b_ports));
    return ((a_ips == b_ips) & (a_ports == b_ports) &
            (a.proto == b.proto)) != 0;
}

}  // namespace detail

namespace simd {

enum class ScanKernel : std::uint8_t { kScalar = 0, kSse2, kAvx2, kNeon };

/// What the running CPU offers (probed once; see dispatch.cpp).  Under a
/// -DP4LRU_FORCE_SCALAR build everything but the scalar kernel reads as
/// unavailable regardless of hardware.
struct CpuFeatures {
    bool sse2 = false;
    bool avx2 = false;
    bool neon = false;
};

[[nodiscard]] const char* kernel_name(ScanKernel k) noexcept;
[[nodiscard]] CpuFeatures cpu_features() noexcept;

/// The kernel the environment/cpuid resolution picked (ignores overrides).
[[nodiscard]] ScanKernel dispatched_kernel() noexcept;
/// dispatched_kernel(), unless a set_kernel_override is in effect.
[[nodiscard]] ScanKernel active_kernel() noexcept;
/// True when `k` can execute on this CPU in this build.
[[nodiscard]] bool kernel_available(ScanKernel k) noexcept;

/// Rebind every live ScanDispatch instantiation to `k` (bench/test hook;
/// not thread-safe against concurrent scans *switching* semantics, but each
/// scan always calls through a valid pointer).  Returns false — and changes
/// nothing — when `k` is not available on this CPU/build.
bool set_kernel_override(ScanKernel k);
/// Drop the override and rebind everything to dispatched_kernel().
void clear_kernel_override();

template <typename Key>
using ScanFn = unsigned (*)(const Key* row, const Key& k);

namespace detail {
using RebindFn = void (*)(ScanKernel);
/// Register an instantiation's rebind hook (idempotent) and invoke it with
/// the active kernel under the registry lock, so a first scan racing a
/// set_kernel_override still lands on a consistent binding.
void register_and_bind(RebindFn f);
}  // namespace detail

/// Reference kernel: the PR-2 scalar loop, compiled exactly as before (all
/// N lanes compared unconditionally so the compiler may auto-vectorize).
template <typename Key, std::size_t N>
struct ScalarScan {
    static unsigned scan(const Key* row, const Key& k) noexcept {
        unsigned eq = 0;
        for (std::size_t j = 0; j < N; ++j) {
            eq |= static_cast<unsigned>(core::detail::lane_eq(row[j], k))
                  << j;
        }
        return eq;
    }
};

/// Per-shape kernel table.  The primary template (any trivially copyable
/// key the slab accepts) is scalar-only; the u32/u64/FlowKey
/// specializations below add the explicit kernels.
template <typename Key, std::size_t Stride, std::size_t N>
struct ScanKernels {
    static constexpr bool kHasSimd = false;
    static unsigned scalar(const Key* row, const Key& k) noexcept {
        return ScalarScan<Key, N>::scan(row, k);
    }
    static ScanFn<Key> get(ScanKernel) noexcept { return &scalar; }
};

#if defined(P4LRU_SIMD_X86)

template <std::size_t Stride, std::size_t N>
struct ScanKernels<std::uint32_t, Stride, N> {
    static constexpr bool kHasSimd = Stride >= 2;
    static constexpr unsigned kLanes = (1u << N) - 1u;

    static unsigned scalar(const std::uint32_t* row,
                           const std::uint32_t& k) noexcept {
        return ScalarScan<std::uint32_t, N>::scan(row, k);
    }

    /// 4-byte lanes: one 8/16-byte vector covers the whole row, so SSE2 is
    /// already the full-width kernel (get() hands AVX2 requests here too).
    static unsigned sse2(const std::uint32_t* row,
                         const std::uint32_t& k) noexcept {
        const __m128i kk = _mm_set1_epi32(static_cast<int>(k));
        __m128i v;
        if constexpr (Stride == 2) {
            v = _mm_loadl_epi64(reinterpret_cast<const __m128i*>(row));
        } else {
            v = _mm_loadu_si128(reinterpret_cast<const __m128i*>(row));
        }
        const auto m = static_cast<unsigned>(
            _mm_movemask_ps(_mm_castsi128_ps(_mm_cmpeq_epi32(v, kk))));
        return m & kLanes;
    }

    static ScanFn<std::uint32_t> get(ScanKernel k) noexcept {
        if constexpr (kHasSimd) {
            if (k == ScanKernel::kAvx2 || k == ScanKernel::kSse2) {
                return &sse2;
            }
        }
        (void)k;
        return &scalar;
    }
};

template <std::size_t Stride, std::size_t N>
struct ScanKernels<std::uint64_t, Stride, N> {
    static constexpr bool kHasSimd = Stride >= 2;
    static constexpr unsigned kLanes = (1u << N) - 1u;

    static unsigned scalar(const std::uint64_t* row,
                           const std::uint64_t& k) noexcept {
        return ScalarScan<std::uint64_t, N>::scan(row, k);
    }

    /// SSE2 has no 64-bit compare: compare as 2x32 and demand both halves.
    /// movemask_pd bits are per 8-byte lane already, but only SSE4.1 adds
    /// cmpeq_epi64, so the halves are folded from movemask_ps instead.
    static unsigned sse2(const std::uint64_t* row,
                         const std::uint64_t& k) noexcept {
        const __m128i kk = _mm_set1_epi64x(static_cast<long long>(k));
        unsigned eq = 0;
        constexpr std::size_t kRegs = Stride / 2;
        for (std::size_t r = 0; r < kRegs; ++r) {
            const __m128i v = _mm_loadu_si128(
                reinterpret_cast<const __m128i*>(row + 2 * r));
            const auto m = static_cast<unsigned>(_mm_movemask_ps(
                _mm_castsi128_ps(_mm_cmpeq_epi32(v, kk))));
            eq |= static_cast<unsigned>((m & 0x3u) == 0x3u) << (2 * r);
            eq |= static_cast<unsigned>((m & 0xCu) == 0xCu) << (2 * r + 1);
        }
        return eq & kLanes;
    }

    /// One 32-byte compare covers the full stride-4 row.
    [[gnu::target("avx2")]] static unsigned avx2(
        const std::uint64_t* row, const std::uint64_t& k) noexcept {
        if constexpr (Stride == 4) {
            const __m256i kk =
                _mm256_set1_epi64x(static_cast<long long>(k));
            const __m256i v = _mm256_loadu_si256(
                reinterpret_cast<const __m256i*>(row));
            const auto m = static_cast<unsigned>(_mm256_movemask_pd(
                _mm256_castsi256_pd(_mm256_cmpeq_epi64(v, kk))));
            return m & kLanes;
        } else {
            return sse2(row, k);
        }
    }

    static ScanFn<std::uint64_t> get(ScanKernel k) noexcept {
        if constexpr (kHasSimd) {
            if (k == ScanKernel::kAvx2) return &avx2;
            if (k == ScanKernel::kSse2) return &sse2;
        }
        (void)k;
        return &scalar;
    }
};

template <std::size_t Stride, std::size_t N>
struct ScanKernels<FlowKey, Stride, N> {
    static constexpr bool kHasSimd = Stride >= 2;
    static constexpr unsigned kLanes = (1u << N) - 1u;
    /// Bits of a 16-byte-lane byte-compare movemask that carry meaning:
    /// bytes [0, 13) are the defined 5-tuple, bytes 13..15 the pad the
    /// scalar lane_eq ignores.
    static constexpr unsigned kDefinedBytes = 0x1FFFu;

    static_assert(sizeof(FlowKey) == 16);

    static unsigned scalar(const FlowKey* row, const FlowKey& k) noexcept {
        return ScalarScan<FlowKey, N>::scan(row, k);
    }

    static unsigned sse2(const FlowKey* row, const FlowKey& k) noexcept {
        const __m128i kk =
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(&k));
        unsigned eq = 0;
        for (std::size_t j = 0; j < Stride; ++j) {
            const __m128i v = _mm_loadu_si128(
                reinterpret_cast<const __m128i*>(row + j));
            const auto m = static_cast<unsigned>(
                _mm_movemask_epi8(_mm_cmpeq_epi8(v, kk)));
            eq |= static_cast<unsigned>((m & kDefinedBytes) ==
                                        kDefinedBytes)
                  << j;
        }
        return eq & kLanes;
    }

    /// Two lanes per 32-byte compare: broadcast the probe once, then each
    /// movemask half is one lane's byte-equality bits.
    [[gnu::target("avx2")]] static unsigned avx2(const FlowKey* row,
                                                 const FlowKey& k) noexcept {
        const __m256i kk = _mm256_broadcastsi128_si256(
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(&k)));
        unsigned eq = 0;
        constexpr std::size_t kRegs = Stride / 2;
        for (std::size_t r = 0; r < kRegs; ++r) {
            const __m256i v = _mm256_loadu_si256(
                reinterpret_cast<const __m256i*>(row + 2 * r));
            const auto m = static_cast<unsigned>(
                _mm256_movemask_epi8(_mm256_cmpeq_epi8(v, kk)));
            eq |= static_cast<unsigned>((m & kDefinedBytes) ==
                                        kDefinedBytes)
                  << (2 * r);
            eq |= static_cast<unsigned>(((m >> 16) & kDefinedBytes) ==
                                        kDefinedBytes)
                  << (2 * r + 1);
        }
        return eq & kLanes;
    }

    static ScanFn<FlowKey> get(ScanKernel k) noexcept {
        if constexpr (kHasSimd) {
            if (k == ScanKernel::kAvx2) return &avx2;
            if (k == ScanKernel::kSse2) return &sse2;
        }
        (void)k;
        return &scalar;
    }
};

#elif defined(P4LRU_SIMD_NEON)

template <std::size_t Stride, std::size_t N>
struct ScanKernels<std::uint32_t, Stride, N> {
    static constexpr bool kHasSimd = Stride >= 2;
    static constexpr unsigned kLanes = (1u << N) - 1u;

    static unsigned scalar(const std::uint32_t* row,
                           const std::uint32_t& k) noexcept {
        return ScalarScan<std::uint32_t, N>::scan(row, k);
    }

    static unsigned neon(const std::uint32_t* row,
                         const std::uint32_t& k) noexcept {
        if constexpr (Stride == 2) {
            const uint32x2_t e = vceq_u32(vld1_u32(row), vdup_n_u32(k));
            return ((vget_lane_u32(e, 0) & 1u) |
                    ((vget_lane_u32(e, 1) & 1u) << 1)) &
                   kLanes;
        } else {
            const uint32x4_t e = vceqq_u32(vld1q_u32(row), vdupq_n_u32(k));
            return ((vgetq_lane_u32(e, 0) & 1u) |
                    ((vgetq_lane_u32(e, 1) & 1u) << 1) |
                    ((vgetq_lane_u32(e, 2) & 1u) << 2) |
                    ((vgetq_lane_u32(e, 3) & 1u) << 3)) &
                   kLanes;
        }
    }

    static ScanFn<std::uint32_t> get(ScanKernel k) noexcept {
        if constexpr (kHasSimd) {
            if (k == ScanKernel::kNeon) return &neon;
        }
        (void)k;
        return &scalar;
    }
};

template <std::size_t Stride, std::size_t N>
struct ScanKernels<std::uint64_t, Stride, N> {
    static constexpr bool kHasSimd = Stride >= 2;
    static constexpr unsigned kLanes = (1u << N) - 1u;

    static unsigned scalar(const std::uint64_t* row,
                           const std::uint64_t& k) noexcept {
        return ScalarScan<std::uint64_t, N>::scan(row, k);
    }

    static unsigned neon(const std::uint64_t* row,
                         const std::uint64_t& k) noexcept {
        const uint64x2_t kk = vdupq_n_u64(k);
        unsigned eq = 0;
        constexpr std::size_t kRegs = Stride / 2;
        for (std::size_t r = 0; r < kRegs; ++r) {
            const uint64x2_t e = vceqq_u64(vld1q_u64(row + 2 * r), kk);
            eq |= (vgetq_lane_u64(e, 0) & 1u) << (2 * r);
            eq |= (vgetq_lane_u64(e, 1) & 1u) << (2 * r + 1);
        }
        return eq & kLanes;
    }

    static ScanFn<std::uint64_t> get(ScanKernel k) noexcept {
        if constexpr (kHasSimd) {
            if (k == ScanKernel::kNeon) return &neon;
        }
        (void)k;
        return &scalar;
    }
};

template <std::size_t Stride, std::size_t N>
struct ScanKernels<FlowKey, Stride, N> {
    static constexpr bool kHasSimd = Stride >= 2;
    static constexpr unsigned kLanes = (1u << N) - 1u;

    static_assert(sizeof(FlowKey) == 16);

    static unsigned scalar(const FlowKey* row, const FlowKey& k) noexcept {
        return ScalarScan<FlowKey, N>::scan(row, k);
    }

    static unsigned neon(const FlowKey* row, const FlowKey& k) noexcept {
        // Byte-compare each 16-byte lane, force the 3 pad bytes to "equal"
        // (the scalar lane_eq never reads them), then all-bytes-equal is a
        // horizontal min of 0xFF.
        const uint8x16_t kk =
            vld1q_u8(reinterpret_cast<const std::uint8_t*>(&k));
        static constexpr std::uint8_t kPadBytes[16] = {
            0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0xFF, 0xFF, 0xFF};
        const uint8x16_t pad = vld1q_u8(kPadBytes);
        unsigned eq = 0;
        for (std::size_t j = 0; j < Stride; ++j) {
            const uint8x16_t v =
                vld1q_u8(reinterpret_cast<const std::uint8_t*>(row + j));
            const uint8x16_t e = vorrq_u8(vceqq_u8(v, kk), pad);
            eq |= static_cast<unsigned>(vminvq_u8(e) == 0xFF) << j;
        }
        return eq & kLanes;
    }

    static ScanFn<FlowKey> get(ScanKernel k) noexcept {
        if constexpr (kHasSimd) {
            if (k == ScanKernel::kNeon) return &neon;
        }
        (void)k;
        return &scalar;
    }
};

#endif  // P4LRU_SIMD_X86 / P4LRU_SIMD_NEON

/// The call site the slab scans through: one relaxed-atomic function
/// pointer per (Key, Stride, N) shape, constant-initialized to a resolver
/// thunk that binds the active kernel on first use and registers the shape
/// for set_kernel_override rebinding.
template <typename Key, std::size_t Stride, std::size_t N>
class ScanDispatch {
  public:
    static unsigned run(const Key* row, const Key& k) noexcept {
        return fn_.load(std::memory_order_relaxed)(row, k);
    }

    /// The kernel table behind this shape (tests enumerate it directly).
    using Kernels = ScanKernels<Key, Stride, N>;

  private:
    static void rebind(ScanKernel k) noexcept {
        fn_.store(Kernels::get(k), std::memory_order_relaxed);
    }

    static unsigned resolve_thunk(const Key* row, const Key& k) noexcept {
        detail::register_and_bind(&rebind);  // stores a real kernel in fn_
        return fn_.load(std::memory_order_relaxed)(row, k);
    }

    static inline std::atomic<ScanFn<Key>> fn_{&resolve_thunk};
};

}  // namespace simd
}  // namespace p4lru::core
