// Group-theoretic view of the cache state (Section 2.3.3).
//
// The paper observes that P4LRU_n's cache states form the symmetric group
// S_n, that the n transitions are a subset of group multiplication, and that
// any group expressible through cyclic groups, direct products and quotient
// lifts can be encoded on data-plane registers. This module implements that
// machinery for small groups so we can (a) verify the Table-1 encoding is
// the S3 ≅ (C3 lifted by C2) construction and (b) demonstrate the claimed
// P4LRU4 feasibility through S4 / V4 ≅ S3 with V4 = C2 x C2.
#pragma once

#include <cstdint>
#include <vector>

#include "p4lru/core/permutation.hpp"

namespace p4lru::core::group {

/// The cyclic group C_n represented on {0..n-1} with addition mod n — the
/// paper's example of a register-representable group.
class Cyclic {
  public:
    explicit Cyclic(std::uint32_t n);
    [[nodiscard]] std::uint32_t order() const noexcept { return n_; }
    [[nodiscard]] std::uint32_t identity() const noexcept { return 0; }
    [[nodiscard]] std::uint32_t mul(std::uint32_t a, std::uint32_t b) const;
    [[nodiscard]] std::uint32_t inverse(std::uint32_t a) const;

  private:
    std::uint32_t n_;
};

/// A finite group given by an explicit Cayley table; element i*j =
/// table[i][j]. Built from generators or from permutation groups.
class CayleyGroup {
  public:
    explicit CayleyGroup(std::vector<std::vector<std::uint32_t>> table);

    [[nodiscard]] std::size_t order() const noexcept { return table_.size(); }
    [[nodiscard]] std::uint32_t mul(std::uint32_t a, std::uint32_t b) const;
    [[nodiscard]] std::uint32_t identity() const noexcept { return identity_; }
    [[nodiscard]] std::uint32_t inverse(std::uint32_t a) const;

    /// Check the group axioms hold for the table (used in tests).
    [[nodiscard]] bool valid() const;

    /// The symmetric group S_n with elements ordered by Lehmer rank and the
    /// paper's composition convention (p x q)(j) = q(p(j)).
    static CayleyGroup symmetric(std::size_t n);

    /// Direct product G = H x K with elements encoded as h * |K| + k —
    /// construction (1) of Section 2.3.3.
    static CayleyGroup direct_product(const CayleyGroup& h,
                                      const CayleyGroup& k);

    /// The Klein four-group V4 = C2 x C2.
    static CayleyGroup klein_four();

  private:
    std::vector<std::vector<std::uint32_t>> table_;
    std::uint32_t identity_ = 0;
};

/// Check whether `normal` (a subset of element indices of g) is a normal
/// subgroup of g.
[[nodiscard]] bool is_normal_subgroup(const CayleyGroup& g,
                                      const std::vector<std::uint32_t>& normal);

/// Compute the quotient group G/H as a CayleyGroup over the cosets of H.
/// Throws if H is not normal in G. Construction (2) of Section 2.3.3.
[[nodiscard]] CayleyGroup quotient(const CayleyGroup& g,
                                   const std::vector<std::uint32_t>& h);

/// True if groups a and b are isomorphic (brute force; orders <= 24). Used to
/// confirm S3/C3 ≅ C2 and S4/V4 ≅ S3 as stated in the paper.
[[nodiscard]] bool isomorphic(const CayleyGroup& a, const CayleyGroup& b);

}  // namespace p4lru::core::group
