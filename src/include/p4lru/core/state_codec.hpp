// Table-1 integer encoding of the P4LRU3 cache state and the arithmetic
// transition rules that a Tofino stateful ALU can execute, plus the trivial
// P4LRU2 encoding. Decoding tables are exported so callers (and exhaustive
// tests) can map codes back to permutations.
#pragma once

#include <array>
#include <cstdint>

#include "p4lru/core/permutation.hpp"

namespace p4lru::core::codec {

// ----- P4LRU2: two states -----------------------------------------------
// (1 2 / 1 2) == 0,  (1 2 / 2 1) == 1.

inline constexpr std::uint8_t kLru2Initial = 0;

/// Transition for a hit at key[1]: identity.
[[nodiscard]] constexpr std::uint8_t lru2_op1(std::uint8_t s) noexcept {
    return s;
}

/// Transition for a hit at key[2] or a miss: S ^= 1.
[[nodiscard]] constexpr std::uint8_t lru2_op2(std::uint8_t s) noexcept {
    return s ^ 1u;
}

/// S(1) for a P4LRU2 code: value slot (1-based) of the most recent key.
[[nodiscard]] constexpr std::size_t lru2_s1(std::uint8_t s) noexcept {
    return s == 0 ? 1 : 2;
}

/// S(2) for a P4LRU2 code: value slot (1-based) of the least recent key.
[[nodiscard]] constexpr std::size_t lru2_s2(std::uint8_t s) noexcept {
    return s == 0 ? 2 : 1;
}

// ----- P4LRU3: six states, Table 1 of the paper --------------------------
//   (123/123) == 4   (123/132) == 1
//   (123/213) == 5   (123/231) == 0
//   (123/312) == 2   (123/321) == 3
// Even permutations get even codes; odd permutations get odd codes.

inline constexpr std::uint8_t kLru3Initial = 4;

/// Bottom rows indexed by code: kLru3Decode[code][i] == S(i+1).
inline constexpr std::array<std::array<std::uint8_t, 3>, 6> kLru3Decode = {{
    {{2, 3, 1}},  // code 0
    {{1, 3, 2}},  // code 1
    {{3, 1, 2}},  // code 2
    {{3, 2, 1}},  // code 3
    {{1, 2, 3}},  // code 4
    {{2, 1, 3}},  // code 5
}};

/// Operation 1 — incoming key matched key[1]: state unchanged.
[[nodiscard]] constexpr std::uint8_t lru3_op1(std::uint8_t s) noexcept {
    return s;
}

/// Operation 2 — incoming key matched key[2]:
///   S_new = S ^ 1 if S >= 4,  S ^ 3 if S <= 3.
/// (One two-branch stateful ALU.)
[[nodiscard]] constexpr std::uint8_t lru3_op2(std::uint8_t s) noexcept {
    return s >= 4 ? static_cast<std::uint8_t>(s ^ 1u)
                  : static_cast<std::uint8_t>(s ^ 3u);
}

/// Operation 3 — incoming key matched key[3], or a miss:
///   S_new = S - 2 if S >= 2,  S + 4 if S <= 1.
/// (One two-branch stateful ALU.)
[[nodiscard]] constexpr std::uint8_t lru3_op3(std::uint8_t s) noexcept {
    return s >= 2 ? static_cast<std::uint8_t>(s - 2u)
                  : static_cast<std::uint8_t>(s + 4u);
}

/// S(1) lookup per code: value slot (1-based) of the most recent key.
inline constexpr std::array<std::uint8_t, 6> kLru3S1 = {2, 1, 3, 3, 1, 2};

/// S(3) lookup per code: value slot (1-based) of the least recent key.
inline constexpr std::array<std::uint8_t, 6> kLru3S3 = {1, 2, 2, 1, 3, 3};

/// Encode a 3-permutation into its Table-1 code (throws if size != 3).
[[nodiscard]] std::uint8_t encode_lru3(const Permutation& p);

/// Decode a Table-1 code back into a Permutation (throws if code > 5).
[[nodiscard]] Permutation decode_lru3(std::uint8_t code);

/// Exhaustively check that the arithmetic transitions match the permutation
/// algebra of Algorithm 1 for every (state, operation) pair. Returns true on
/// success; used by tests and by the pipeline self-check.
[[nodiscard]] bool verify_lru3_codec();

/// Same exhaustive check for the P4LRU2 encoding.
[[nodiscard]] bool verify_lru2_codec();

}  // namespace p4lru::core::codec
