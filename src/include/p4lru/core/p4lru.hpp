// The behavioural P4LRU unit: Algorithm 1 of the paper, for any small N.
//
// Keys live in LRU order across N "stages" (array slots); values never move;
// the LruState permutation keeps the key->value mapping.  A single forward
// pass per operation: bubble the key to key[1], rotate the state, then touch
// exactly one value slot — the property that makes the scheme deployable in
// a match-action pipeline.
#pragma once

#include <array>
#include <concepts>
#include <cstddef>
#include <optional>
#include <utility>

#include "p4lru/core/lru_state.hpp"

namespace p4lru::core {

/// Result of one update pass over a P4LRU unit.
template <typename Key, typename Value>
struct UpdateResult {
    bool hit = false;                ///< incoming key was already cached
    std::size_t hit_pos = 0;         ///< 1-based position on hit, N on miss
    bool evicted = false;            ///< a victim fell off the tail
    Key evicted_key{};               ///< valid iff evicted
    Value evicted_value{};           ///< valid iff evicted
};

/// Replace-on-hit merge: write-path semantics of a read cache refill.
struct ReplaceMerge {
    template <typename V>
    V operator()(const V& /*old_value*/, const V& incoming) const {
        return incoming;
    }
};

/// Accumulate-on-hit merge: write-cache semantics (LruMon length counters).
struct AddMerge {
    template <typename V>
    V operator()(const V& old_value, const V& incoming) const {
        return old_value + incoming;
    }
};

/// Keep-on-hit merge: read-path semantics — a query packet carries no value,
/// so a hit must preserve the stored one.
struct KeepMerge {
    template <typename V>
    V operator()(const V& old_value, const V& /*incoming*/) const {
        return old_value;
    }
};

/// One P4LRU cache unit with capacity N.
///
/// \tparam Key    equality-comparable key (flow key, fingerprint, DB key).
/// \tparam Value  cached value (real address, record index, byte count).
/// \tparam N      entries per unit; the paper deploys N = 2 and N = 3.
/// \tparam Merge  how a hit combines the stored and incoming value.
template <typename Key, typename Value, std::size_t N,
          typename Merge = ReplaceMerge>
    requires std::equality_comparable<Key> && (N >= 1 && N <= 8)
class P4lru {
  public:
    using Result = UpdateResult<Key, Value>;

    /// Algorithm 1 with the unit's configured merge.
    Result update(const Key& k, const Value& v) {
        return update(k, v, merge_);
    }

    /// Algorithm 1: insert/update the pair <k, v>. One pass: Step 1 bubbles k
    /// into key[1] (recording where it was found), Step 2 rotates the state,
    /// Step 3 applies `merge` to (or replaces) the single value slot
    /// val[S(1)]. The per-call merge lets one unit serve both the read pass
    /// (KeepMerge) and the write/refill pass (ReplaceMerge / AddMerge).
    template <typename MergeFn>
    Result update(const Key& k, const Value& v, MergeFn&& merge) {
        Result r;

        // Step 1 — maintain the key array in LRU order.
        Key carry = k;
        std::size_t i = N;
        bool found = false;
        for (std::size_t pos = 0; pos < size_; ++pos) {
            std::swap(carry, key_[pos]);
            if (carry == k) {
                i = pos + 1;
                found = true;
                break;
            }
        }
        if (!found && size_ < N) {
            // Cache not yet full: the displaced tail (or k itself when the
            // loop never ran) extends the occupied prefix.
            key_[size_] = carry;
            ++size_;
            i = size_;
            carry = k;  // nothing truly evicted
        }

        // Step 2 — update the cache state by the inverse rotation.
        state_.apply_hit(i);
        const std::size_t slot = state_.mru_slot();

        // Step 3 — single access to the value array.
        if (found) {
            r.hit = true;
            r.hit_pos = i;
            val_[slot - 1] = merge(val_[slot - 1], v);
        } else if (carry == k) {
            // Inserted into a non-full cache: fresh slot, no victim.
            r.hit_pos = i;
            val_[slot - 1] = v;
        } else {
            // Miss with eviction: carry is the key that fell off the tail and
            // val[S_new(1)] still holds its value (the reused slot).
            r.hit_pos = N;
            r.evicted = true;
            r.evicted_key = carry;
            r.evicted_value = val_[slot - 1];
            val_[slot - 1] = v;
        }
        return r;
    }

    /// Read-only lookup (the query pass of the series-connection protocol).
    [[nodiscard]] std::optional<Value> find(const Key& k) const {
        for (std::size_t pos = 0; pos < size_; ++pos) {
            if (key_[pos] == k) {
                return val_[state_(pos + 1) - 1];
            }
        }
        return std::nullopt;
    }

    [[nodiscard]] bool contains(const Key& k) const {
        return find(k).has_value();
    }

    /// Promote an existing key to most-recently-used and merge v into its
    /// value. Returns false (and does nothing) if k is absent. Used by reply
    /// packets in the series protocol ("prioritized as the most recent
    /// entry"). One pass: the Step-1 bubble runs directly; if the occupied
    /// prefix is exhausted without finding k, the rotation is undone instead
    /// of scanning twice (contains() + update()).
    bool touch(const Key& k, const Value& v) {
        Key carry = k;
        std::size_t i = 0;
        bool found = false;
        for (std::size_t pos = 0; pos < size_; ++pos) {
            std::swap(carry, key_[pos]);
            if (carry == k) {
                i = pos + 1;
                found = true;
                break;
            }
        }
        if (!found) {
            // k is absent: the scan rotated the prefix right by one; shift
            // it back and drop the carried tail into its original slot.
            for (std::size_t pos = 1; pos < size_; ++pos) {
                key_[pos - 1] = key_[pos];
            }
            if (size_ > 0) key_[size_ - 1] = carry;
            return false;
        }
        state_.apply_hit(i);
        const std::size_t slot = state_.mru_slot();
        val_[slot - 1] = merge_(val_[slot - 1], v);
        return true;
    }

    /// Insert <k, v> as the *least* recently used entry, replacing the
    /// current tail. The cache state is untouched: key[N] changes identity
    /// but keeps owning val[S(N)]. This is the downstream-array insert of the
    /// series-connection protocol. Returns the displaced pair, if any.
    std::optional<std::pair<Key, Value>> insert_lru(const Key& k,
                                                    const Value& v) {
        // Defensive: if k already lives here, refresh its value in place.
        for (std::size_t pos = 0; pos < size_; ++pos) {
            if (key_[pos] == k) {
                val_[state_(pos + 1) - 1] = v;
                return std::nullopt;
            }
        }
        if (size_ < N) {
            key_[size_] = k;
            ++size_;
            val_[state_(size_) - 1] = v;
            return std::nullopt;
        }
        const std::size_t slot = state_.lru_slot();
        auto displaced = std::make_pair(key_[N - 1], val_[slot - 1]);
        key_[N - 1] = k;
        val_[slot - 1] = v;
        return displaced;
    }

    /// Number of occupied entries (they always form a prefix of key[]).
    [[nodiscard]] std::size_t size() const noexcept { return size_; }
    [[nodiscard]] static constexpr std::size_t capacity() noexcept { return N; }
    [[nodiscard]] bool full() const noexcept { return size_ == N; }

    /// Key at 1-based LRU position (1 = most recent). Requires i <= size().
    [[nodiscard]] const Key& key_at(std::size_t i) const { return key_[i - 1]; }

    /// Value owned by the key at 1-based position i.
    [[nodiscard]] const Value& value_at(std::size_t i) const {
        return val_[state_(i) - 1];
    }

    [[nodiscard]] const LruState<N>& state() const noexcept { return state_; }

  private:
    std::array<Key, N> key_{};
    std::array<Value, N> val_{};
    LruState<N> state_{};
    std::size_t size_ = 0;
    [[no_unique_address]] Merge merge_{};
};

}  // namespace p4lru::core
