// Parallel connection technique (Section 1.2 / 3.1):
// a hash-indexed array of small P4LRU units yields arbitrary total capacity
// while each bucket keeps strict LRU order among its 2-3 entries.
//
// ParallelCache is a thin policy layer: it owns the seeded bucket hash and
// routes every operation to a UnitStorage (unit_storage.hpp), which owns the
// memory layout.  The storage defaults to the flat SoA slab (soa_slab.hpp)
// for behavioural P4lru units and to the per-unit AoS reference layout for
// everything else; consumers can pin either explicitly.  Each public entry
// point hashes exactly once and hands the bucket through the *_at variants —
// callers that already know the bucket (the replay dispatcher, the policy
// layer's update-then-read sequences) use those directly and never re-hash.
#pragma once

#include <algorithm>
#include <concepts>
#include <cstdint>
#include <optional>
#include <span>
#include <stdexcept>
#include <type_traits>
#include <utility>

#include "p4lru/common/hash.hpp"
#include "p4lru/core/p4lru.hpp"
#include "p4lru/core/soa_slab.hpp"
#include "p4lru/core/unit_storage.hpp"

namespace p4lru::core {

/// Map a key of any supported type onto a bucket through a seeded hasher.
/// FlowKeys use CRC32 over the packed 13-byte layout (as the P4 programs do);
/// integral keys use CRC32 over their little-endian bytes.
template <typename Key>
[[nodiscard]] std::size_t bucket_of(const hash::FlowHasher& h, const Key& k) {
    if constexpr (std::is_same_v<Key, FlowKey>) {
        return h.slot(k);
    } else if constexpr (sizeof(Key) <= 4) {
        static_assert(std::integral<Key>, "bucket_of: unsupported key type");
        return h.slot_u32(static_cast<std::uint32_t>(k));
    } else {
        static_assert(std::integral<Key>, "bucket_of: unsupported key type");
        return h.slot_u64(static_cast<std::uint64_t>(k));
    }
}

/// One operation of a batched update (see ParallelCache::update_batch).
template <typename Key, typename Value>
struct CacheOp {
    Key key{};
    Value value{};
};

/// An op shaped like CacheOp: anything exposing .key and .value members of
/// the cache's key/value types (replay::ReplayOp qualifies as-is).
template <typename Op, typename Key, typename Value>
concept UpdateOpFor = requires(const Op& o) {
    { o.key } -> std::convertible_to<const Key&>;
    { o.value } -> std::convertible_to<const Value&>;
};

/// An UpdateOpFor that also carries its precomputed bucket (the replay
/// dispatcher's RoutedOp).
template <typename Op, typename Key, typename Value>
concept RoutedOpFor =
    UpdateOpFor<Op, Key, Value> && requires(const Op& o) {
        { o.bucket } -> std::convertible_to<std::size_t>;
    };

/// How many ops ahead the batched update path prefetches each op's unit.
/// At ~50 Mops per core an op retires in ~20 ns while a DRAM miss costs
/// ~80-100 ns, so the line must be requested at least 4-5 ops early; 8 adds
/// margin without pushing the prefetch so far ahead that a 256-op batch's
/// lines start evicting each other before use.
inline constexpr std::size_t kBatchPrefetchDistance = 8;

/// An array of `Unit` caches (P4lru, P4lru3Encoded, ...) indexed by one
/// configured hash function, mirroring the paper's P[1..2^16] arrays.  The
/// unit array lives in `Storage` (a UnitStorage model); `Unit` names the
/// per-bucket semantics and, for AoS storage, the element type.
template <typename Unit, typename Key, typename Value,
          typename Storage = default_storage_t<Unit, Key, Value>>
    requires UnitStorage<Storage> &&
             std::same_as<typename Storage::key_type, Key> &&
             std::same_as<typename Storage::value_type, Value>
class ParallelCache {
  public:
    using Result = UpdateResult<Key, Value>;
    using unit_type = Unit;
    using storage_type = Storage;

    /// \param units number of cache units (buckets); must be > 0.
    /// \param seed  per-array hash salt, making multiple arrays independent.
    ParallelCache(std::size_t units, std::uint32_t seed)
        : storage_(checked(units)), hasher_(seed, units) {}

    /// Deferred-initialization variant: the storage allocates its planes but
    /// leaves them untouched; the sharded replay engine (or the caller)
    /// must cover [0, units) with first_touch_range and mark_materialized
    /// before any cache operation.  See soa_slab.hpp.
    ParallelCache(std::size_t units, std::uint32_t seed, defer_init_t)
        : storage_(checked(units), defer_init), hasher_(seed, units) {}

    /// Insert/update through the owning unit (Algorithm 1 within a bucket).
    Result update(const Key& k, const Value& v) {
        return storage_.update_at(bucket(k), k, v);
    }

    /// Per-call merge overload (read pass vs write pass).
    template <typename MergeFn>
    Result update(const Key& k, const Value& v, MergeFn&& merge) {
        return storage_.update_at(bucket(k), k, v,
                                  std::forward<MergeFn>(merge));
    }

    /// Update through a bucket the caller already computed via bucket(k).
    /// The replay engine routes packets to shards by bucket and must not pay
    /// the hash twice. Precondition: b == bucket(k) and b < unit_count().
    Result update_at(std::size_t b, const Key& k, const Value& v) {
        return storage_.update_at(b, k, v);
    }

    template <typename MergeFn>
    Result update_at(std::size_t b, const Key& k, const Value& v,
                     MergeFn&& merge) {
        return storage_.update_at(b, k, v, std::forward<MergeFn>(merge));
    }

    /// Batched update: hash a whole chunk of ops up front, then apply them
    /// strictly in span order while prefetching each op's unit
    /// kBatchPrefetchDistance ops ahead, so the unit array's random-access
    /// latency overlaps earlier updates instead of stalling each one.
    ///
    /// `sink` is invoked per op, in op order, as sink(i, b, result) with i
    /// the op's index in the span and b its bucket (the policy layer's
    /// post-update readback reuses it; plain stat tallies ignore both).
    /// Because ops are applied one at a time in order — only the hashing
    /// and prefetching are hoisted — two ops on the same bucket within a
    /// batch see each other exactly as they would per-op: the Result stream
    /// is bit-identical to calling update() per op.
    template <UpdateOpFor<Key, Value> Op, typename Sink>
    void update_batch(std::span<const Op> ops, Sink&& sink) {
        update_batch_impl(ops, std::forward<Sink>(sink),
                          [this](std::size_t b, const Key& k,
                                 const Value& v) {
                              return storage_.update_at(b, k, v);
                          });
    }

    /// Per-call merge overload of the batched update (read pass vs write
    /// pass, as with update()).
    template <UpdateOpFor<Key, Value> Op, typename Sink, typename MergeFn>
    void update_batch(std::span<const Op> ops, Sink&& sink, MergeFn merge) {
        update_batch_impl(
            ops, std::forward<Sink>(sink),
            [this, &merge](std::size_t b, const Key& k, const Value& v) {
                return storage_.update_at(b, k, v, merge);
            });
    }

    /// Batched update over ops whose buckets were already computed (the
    /// replay dispatcher routes by bucket and must not pay the hash twice).
    /// Same in-order per-op application and distance prefetch as
    /// update_batch.  Precondition: op.bucket == bucket(op.key) for each op.
    template <RoutedOpFor<Key, Value> Op, typename Sink>
    void update_routed_batch(std::span<const Op> ops, Sink&& sink) {
        const std::size_t n = ops.size();
        for (std::size_t i = 0; i < std::min(kBatchPrefetchDistance, n);
             ++i) {
            prefetch_unit(ops[i].bucket);
        }
        for (std::size_t i = 0; i < n; ++i) {
            if (i + kBatchPrefetchDistance < n) {
                prefetch_unit(ops[i + kBatchPrefetchDistance].bucket);
            }
            sink(i, static_cast<std::size_t>(ops[i].bucket),
                 storage_.update_at(static_cast<std::size_t>(ops[i].bucket),
                                    ops[i].key, ops[i].value));
        }
    }

    /// Hint the unit owning bucket b into cache (write intent). The replay
    /// engine issues these one batch ahead to overlap the random-access
    /// latency of the unit array with useful work.  Per-plane for the slab.
    void prefetch_unit(std::size_t b) const noexcept { storage_.prefetch(b); }

    /// Read-only lookup.
    [[nodiscard]] std::optional<Value> find(const Key& k) const {
        return storage_.find_at(bucket(k), k);
    }

    /// Lookup through a precomputed bucket (b == bucket(k)).
    [[nodiscard]] std::optional<Value> find_at(std::size_t b,
                                               const Key& k) const {
        return storage_.find_at(b, k);
    }

    [[nodiscard]] bool contains(const Key& k) const {
        return find(k).has_value();
    }

    /// Promote k to most-recent in its unit, merging v. False if absent.
    bool touch(const Key& k, const Value& v) {
        return storage_.touch_at(bucket(k), k, v);
    }

    bool touch_at(std::size_t b, const Key& k, const Value& v) {
        return storage_.touch_at(b, k, v);
    }

    /// Insert as least-recently-used in the owning unit (series protocol).
    std::optional<std::pair<Key, Value>> insert_lru(const Key& k,
                                                    const Value& v) {
        return storage_.insert_lru_at(bucket(k), k, v);
    }

    std::optional<std::pair<Key, Value>> insert_lru_at(std::size_t b,
                                                       const Key& k,
                                                       const Value& v) {
        return storage_.insert_lru_at(b, k, v);
    }

    [[nodiscard]] std::size_t bucket(const Key& k) const {
        return bucket_of(hasher_, k);
    }

    [[nodiscard]] std::size_t unit_count() const noexcept {
        return storage_.unit_count();
    }
    [[nodiscard]] std::size_t capacity() const noexcept {
        return unit_count() * Storage::unit_capacity();
    }

    /// Per-unit inspection handle: a `const Unit&` on AoS storage, a
    /// lightweight view with the same key_at/value_at/size vocabulary on the
    /// slab.
    [[nodiscard]] decltype(auto) unit(std::size_t i) const {
        return storage_.unit(i);
    }

    [[nodiscard]] std::uint32_t seed() const noexcept {
        return hasher_.seed();
    }

    /// Total occupied entries across all units (O(units); for tests/metrics).
    [[nodiscard]] std::size_t size() const {
        std::size_t n = 0;
        for (std::size_t b = 0; b < unit_count(); ++b) {
            n += storage_.size_at(b);
        }
        return n;
    }

    // -- first-touch protocol (forwarded to the storage) -----------------

    [[nodiscard]] bool materialized() const noexcept {
        return storage_.materialized();
    }
    /// First-touch the planes of units [lo, hi) from the calling thread.
    void first_touch_range(std::size_t lo, std::size_t hi) {
        storage_.first_touch(lo, hi);
    }
    void mark_materialized() noexcept { storage_.mark_materialized(); }
    /// Initialize everything from the calling thread if still deferred.
    void materialize() {
        if (!storage_.materialized()) {
            storage_.first_touch(0, unit_count());
            storage_.mark_materialized();
        }
    }

    // -- integrity (forwarded to the storage) ----------------------------

    /// Validate-and-repair the state words of units [lo, hi); see
    /// SoaSlab::scrub_range.  AoS storage reports a clean scan by
    /// construction.
    ScrubReport scrub(std::size_t lo, std::size_t hi) noexcept {
        return storage_.scrub_range(lo, hi);
    }
    ScrubReport scrub_all() noexcept { return scrub(0, unit_count()); }

    [[nodiscard]] const Storage& storage() const noexcept { return storage_; }
    [[nodiscard]] Storage& storage() noexcept { return storage_; }

  private:
    static std::size_t checked(std::size_t units) {
        if (units == 0) {
            throw std::invalid_argument("ParallelCache: zero units");
        }
        return units;
    }

    /// Shared core of the update_batch overloads: hash a chunk up front
    /// into stack scratch, warm the first kBatchPrefetchDistance units,
    /// then apply in order with the prefetch window sliding ahead.
    template <typename Op, typename Sink, typename Apply>
    void update_batch_impl(std::span<const Op> ops, Sink&& sink,
                           Apply&& apply) {
        constexpr std::size_t kChunk = 256;
        std::uint32_t buckets[kChunk];
        for (std::size_t base = 0; base < ops.size(); base += kChunk) {
            const std::size_t n = std::min(kChunk, ops.size() - base);
            for (std::size_t i = 0; i < n; ++i) {
                buckets[i] =
                    static_cast<std::uint32_t>(bucket(ops[base + i].key));
            }
            for (std::size_t i = 0; i < std::min(kBatchPrefetchDistance, n);
                 ++i) {
                prefetch_unit(buckets[i]);
            }
            for (std::size_t i = 0; i < n; ++i) {
                if (i + kBatchPrefetchDistance < n) {
                    prefetch_unit(buckets[i + kBatchPrefetchDistance]);
                }
                const auto& op = ops[base + i];
                sink(base + i, static_cast<std::size_t>(buckets[i]),
                     apply(static_cast<std::size_t>(buckets[i]), op.key,
                           op.value));
            }
        }
    }

    Storage storage_;
    hash::FlowHasher hasher_;
};

/// The array-of-structs reference configuration, spelled out (equivalence
/// tests and the AoS-vs-SoA benchmark series pin it explicitly).
template <typename Unit, typename Key, typename Value>
using AosParallelCache =
    ParallelCache<Unit, Key, Value, AosStorage<Unit, Key, Value>>;

}  // namespace p4lru::core
