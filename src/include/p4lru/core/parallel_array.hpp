// Parallel connection technique (Section 1.2 / 3.1):
// a hash-indexed array of small P4LRU units yields arbitrary total capacity
// while each bucket keeps strict LRU order among its 2-3 entries.
#pragma once

#include <concepts>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <type_traits>
#include <utility>
#include <vector>

#include "p4lru/common/hash.hpp"
#include "p4lru/core/p4lru.hpp"

namespace p4lru::core {

/// Map a key of any supported type onto a bucket through a seeded hasher.
/// FlowKeys use CRC32 over the packed 13-byte layout (as the P4 programs do);
/// integral keys use a salted 64-bit mix.
template <typename Key>
[[nodiscard]] std::size_t bucket_of(const hash::FlowHasher& h, const Key& k) {
    if constexpr (std::is_same_v<Key, FlowKey>) {
        return h.slot(k);
    } else if constexpr (sizeof(Key) <= 4) {
        static_assert(std::integral<Key>, "bucket_of: unsupported key type");
        return h.slot_u32(static_cast<std::uint32_t>(k));
    } else {
        static_assert(std::integral<Key>, "bucket_of: unsupported key type");
        return h.slot_u64(static_cast<std::uint64_t>(k));
    }
}

/// An array of `Unit` caches (P4lru, P4lru3Encoded, ...) indexed by one
/// configured hash function, mirroring the paper's P[1..2^16] arrays.
template <typename Unit, typename Key, typename Value>
class ParallelCache {
  public:
    using Result = UpdateResult<Key, Value>;

    /// \param units number of cache units (buckets); must be > 0.
    /// \param seed  per-array hash salt, making multiple arrays independent.
    ParallelCache(std::size_t units, std::uint32_t seed)
        : units_(units), hasher_(seed, units) {
        if (units == 0) {
            throw std::invalid_argument("ParallelCache: zero units");
        }
    }

    /// Insert/update through the owning unit (Algorithm 1 within a bucket).
    Result update(const Key& k, const Value& v) {
        return units_[bucket(k)].update(k, v);
    }

    /// Per-call merge overload (read pass vs write pass).
    template <typename MergeFn>
    Result update(const Key& k, const Value& v, MergeFn&& merge) {
        return units_[bucket(k)].update(k, v, std::forward<MergeFn>(merge));
    }

    /// Update through a bucket the caller already computed via bucket(k).
    /// The replay engine routes packets to shards by bucket and must not pay
    /// the hash twice. Precondition: b == bucket(k) and b < unit_count().
    Result update_at(std::size_t b, const Key& k, const Value& v) {
        return units_[b].update(k, v);
    }

    template <typename MergeFn>
    Result update_at(std::size_t b, const Key& k, const Value& v,
                     MergeFn&& merge) {
        return units_[b].update(k, v, std::forward<MergeFn>(merge));
    }

    /// Hint the unit owning bucket b into cache (write intent). The replay
    /// engine issues these one batch ahead to overlap the random-access
    /// latency of the unit array with useful work.
    void prefetch_unit(std::size_t b) const noexcept {
#if defined(__GNUC__) || defined(__clang__)
        const char* p = reinterpret_cast<const char*>(&units_[b]);
        __builtin_prefetch(p, 1, 2);
        if constexpr (sizeof(Unit) > 64) {
            __builtin_prefetch(p + 64, 1, 2);
        }
#else
        (void)b;
#endif
    }

    /// Read-only lookup.
    [[nodiscard]] std::optional<Value> find(const Key& k) const {
        return units_[bucket(k)].find(k);
    }

    [[nodiscard]] bool contains(const Key& k) const {
        return find(k).has_value();
    }

    /// Promote k to most-recent in its unit, merging v. False if absent.
    bool touch(const Key& k, const Value& v) {
        return units_[bucket(k)].touch(k, v);
    }

    /// Insert as least-recently-used in the owning unit (series protocol).
    std::optional<std::pair<Key, Value>> insert_lru(const Key& k,
                                                    const Value& v) {
        return units_[bucket(k)].insert_lru(k, v);
    }

    [[nodiscard]] std::size_t bucket(const Key& k) const {
        return bucket_of(hasher_, k);
    }

    [[nodiscard]] std::size_t unit_count() const noexcept {
        return units_.size();
    }
    [[nodiscard]] std::size_t capacity() const noexcept {
        return units_.size() * Unit::capacity();
    }
    [[nodiscard]] const Unit& unit(std::size_t i) const { return units_.at(i); }
    [[nodiscard]] std::uint32_t seed() const noexcept { return hasher_.seed(); }

    /// Total occupied entries across all units (O(units); for tests/metrics).
    [[nodiscard]] std::size_t size() const {
        std::size_t n = 0;
        for (const auto& u : units_) n += u.size();
        return n;
    }

  private:
    std::vector<Unit> units_;
    hash::FlowHasher hasher_;
};

}  // namespace p4lru::core
