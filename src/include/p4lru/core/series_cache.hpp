// Series connection technique (Sections 1.2 / 3.2):
// several parallel P4LRU arrays chained into a deeper approximate LRU.
//
// Duplicate entries are avoided by exploiting round-trip traffic: the *query*
// pass reads all levels without modifying them and records which level holds
// the key; the *reply* pass performs the single mutation —
//   * key was cached at level i  -> promote it inside level i;
//   * key was absent             -> insert at level 1 as most-recent; the
//     evictee of level 1 is inserted into level 2 as *least*-recent, whose
//     displaced entry moves to level 3, and so on; the entry displaced from
//     the last level leaves the cache entirely.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <unordered_map>
#include <utility>
#include <vector>

#include "p4lru/common/hash.hpp"
#include "p4lru/core/parallel_array.hpp"

namespace p4lru::core {

/// Outcome of the read-only query pass.
template <typename Value>
struct SeriesLookup {
    std::size_t level = 0;   ///< 1-based hit level; 0 = not cached
    std::size_t bucket = 0;  ///< bucket of k inside the hit level
    Value value{};           ///< valid iff level != 0
    [[nodiscard]] bool hit() const noexcept { return level != 0; }
};

/// A chain of `levels` ParallelCache arrays, each with its own hash salt.
template <typename Unit, typename Key, typename Value>
class SeriesCache {
  public:
    using Level = ParallelCache<Unit, Key, Value>;

    /// \param levels          number of series-connected arrays (>= 1).
    /// \param units_per_level cache units in each array.
    /// \param seed            base salt; level i uses seed + i.
    SeriesCache(std::size_t levels, std::size_t units_per_level,
                std::uint32_t seed) {
        if (levels == 0) throw std::invalid_argument("SeriesCache: 0 levels");
        levels_.reserve(levels);
        for (std::size_t i = 0; i < levels; ++i) {
            levels_.emplace_back(units_per_level,
                                 seed + static_cast<std::uint32_t>(i) * 0x9E37u);
        }
    }

    /// Query pass: read-only scan through the levels in order.
    [[nodiscard]] SeriesLookup<Value> query(const Key& k) const {
        SeriesLookup<Value> out;
        for (std::size_t i = 0; i < levels_.size(); ++i) {
            const std::size_t b = levels_[i].bucket(k);
            if (auto v = levels_[i].find_at(b, k)) {
                out.level = i + 1;
                out.bucket = b;
                out.value = *v;
                return out;
            }
        }
        return out;
    }

    /// Reply pass after a query that hit at `level` (1-based): promote the
    /// key inside that level. Returns false if the key vanished meanwhile
    /// (cannot happen in the single-threaded simulators, but kept honest).
    bool reply_promote(const Key& k, const Value& v, std::size_t level) {
        if (level == 0 || level > levels_.size()) {
            throw std::out_of_range("SeriesCache: bad level");
        }
        return levels_[level - 1].touch(k, v);
    }

    /// Reply pass after a query miss: insert <k, v> at level 1 and cascade
    /// evictees down the chain as least-recent entries. Returns the pair
    /// that left the cache entirely, if any.
    std::optional<std::pair<Key, Value>> reply_insert(const Key& k,
                                                      const Value& v) {
        auto res = levels_[0].update(k, v);
        if (!res.evicted) return std::nullopt;
        std::pair<Key, Value> carry{res.evicted_key, res.evicted_value};
        for (std::size_t i = 1; i < levels_.size(); ++i) {
            auto displaced = levels_[i].insert_lru(carry.first, carry.second);
            if (!displaced) return std::nullopt;
            carry = *displaced;
        }
        return carry;
    }

    /// The scenario Section 3.2 warns about: traffic touches the data plane
    /// ONCE, so the switch cannot know which level holds the key; every key
    /// is injected at level 1 and evictees cascade down — the same key can
    /// end up cached in several levels, wasting capacity. Exposed so the
    /// ablation bench can quantify what the round-trip protocol buys.
    UpdateResult<Key, Value> naive_inject(const Key& k, const Value& v) {
        UpdateResult<Key, Value> r;
        r.hit = query(k).hit();  // observability only; the update ignores it
        auto res = levels_[0].update(k, v);
        if (!res.evicted) return r;
        std::pair<Key, Value> carry{res.evicted_key, res.evicted_value};
        for (std::size_t i = 1; i < levels_.size(); ++i) {
            auto displaced = levels_[i].insert_lru(carry.first, carry.second);
            if (!displaced) return r;
            carry = *displaced;
        }
        r.evicted = true;
        r.evicted_key = carry.first;
        r.evicted_value = carry.second;
        return r;
    }

    /// Fraction of currently cached keys that occupy more than one level
    /// (0 under the round-trip protocol). O(capacity); for benches/tests.
    [[nodiscard]] double duplicate_fraction() const {
        std::unordered_map<Key, std::size_t> counts;
        for (const auto& level : levels_) {
            for (std::size_t u = 0; u < level.unit_count(); ++u) {
                const auto& unit = level.unit(u);
                for (std::size_t i = 1; i <= unit.size(); ++i) {
                    ++counts[unit.key_at(i)];
                }
            }
        }
        if (counts.empty()) return 0.0;
        std::size_t dups = 0;
        for (const auto& [k, c] : counts) dups += c > 1 ? 1 : 0;
        return static_cast<double>(dups) / static_cast<double>(counts.size());
    }

    /// Single-pass convenience (no round trip): query + immediate mutation.
    /// This is the "suboptimal" mode the paper warns about for injection-only
    /// traffic; exposed so benches can quantify the difference.
    UpdateResult<Key, Value> update_single_pass(const Key& k, const Value& v) {
        const auto lookup = query(k);
        UpdateResult<Key, Value> r;
        if (lookup.hit()) {
            r.hit = true;
            r.hit_pos = lookup.level;
            // Reuse the bucket the query pass already hashed for the hit
            // level instead of re-hashing inside touch().
            levels_[lookup.level - 1].touch_at(lookup.bucket, k, v);
            return r;
        }
        if (auto out = reply_insert(k, v)) {
            r.evicted = true;
            r.evicted_key = out->first;
            r.evicted_value = out->second;
        }
        return r;
    }

    [[nodiscard]] std::size_t level_count() const noexcept {
        return levels_.size();
    }
    [[nodiscard]] const Level& level(std::size_t i) const {
        return levels_.at(i);
    }
    /// Mutable level access (checkpoint restore writes the storage planes).
    [[nodiscard]] Level& level(std::size_t i) { return levels_.at(i); }
    [[nodiscard]] std::size_t capacity() const noexcept {
        return levels_.empty() ? 0 : levels_.size() * levels_[0].capacity();
    }

    /// True if k is cached in no more than one level (duplicate-freedom
    /// invariant of the round-trip protocol). For tests.
    [[nodiscard]] bool duplicate_free(const Key& k) const {
        std::size_t count = 0;
        for (const auto& level : levels_) {
            count += level.contains(k) ? 1 : 0;
        }
        return count <= 1;
    }

  private:
    std::vector<Level> levels_;
};

}  // namespace p4lru::core
