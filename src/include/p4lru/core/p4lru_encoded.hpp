// Hardware-faithful P4LRU2 / P4LRU3 units.
//
// These mirror what the P4 programs on Tofino do: key registers hold raw
// integers with Key{} ("0") reserved as the empty sentinel, the cache state
// is the Table-1 integer code updated by two-branch stateful-ALU arithmetic,
// and a miss always performs the full rotation — "evicting" a sentinel when
// the unit is not yet full.  Observable behaviour (hits, real evictions,
// returned values) matches the behavioural core::P4lru; tests check this on
// random traces.
#pragma once

#include <array>
#include <concepts>
#include <cstddef>
#include <optional>

#include "p4lru/core/p4lru.hpp"
#include "p4lru/core/state_codec.hpp"

namespace p4lru::core {

/// P4LRU3 with the arithmetic state machine of Section 2.3.2.
///
/// Key{} (value-initialized key, e.g. 0) marks an empty slot and must not be
/// inserted; LruMon's fingerprint function reserves 0 for exactly this
/// reason.
template <typename Key, typename Value, typename Merge = ReplaceMerge>
    requires std::equality_comparable<Key>
class P4lru3Encoded {
  public:
    using Result = UpdateResult<Key, Value>;

    Result update(const Key& k, const Value& v) {
        return update(k, v, merge_);
    }

    /// Per-call merge overload (read pass vs write pass; see core::P4lru).
    template <typename MergeFn>
    Result update(const Key& k, const Value& v, MergeFn&& merge) {
        Result r;
        std::uint8_t op;

        // One comparison per pipeline stage; shifts write each key register
        // exactly once.
        if (key_[0] == k) {
            op = 1;
            r.hit = true;
            r.hit_pos = 1;
        } else if (key_[1] == k) {
            key_[1] = key_[0];
            key_[0] = k;
            op = 2;
            r.hit = true;
            r.hit_pos = 2;
        } else if (key_[2] == k) {
            key_[2] = key_[1];
            key_[1] = key_[0];
            key_[0] = k;
            op = 3;
            r.hit = true;
            r.hit_pos = 3;
        } else {
            const Key victim = key_[2];
            key_[2] = key_[1];
            key_[1] = key_[0];
            key_[0] = k;
            op = 3;
            r.hit_pos = 3;
            if (victim != Key{}) {
                r.evicted = true;
                r.evicted_key = victim;
            }
        }

        // Stateful-ALU transition (Table 1 arithmetic).
        switch (op) {
            case 1: code_ = codec::lru3_op1(code_); break;
            case 2: code_ = codec::lru3_op2(code_); break;
            default: code_ = codec::lru3_op3(code_); break;
        }

        // Single value-register access at val[S(1)].
        const std::size_t slot = codec::kLru3S1[code_];
        if (r.hit) {
            val_[slot - 1] = merge(val_[slot - 1], v);
        } else {
            if (r.evicted) r.evicted_value = val_[slot - 1];
            val_[slot - 1] = v;
        }
        return r;
    }

    /// Read-only lookup (query pass of the series protocol).
    [[nodiscard]] std::optional<Value> find(const Key& k) const {
        for (std::size_t i = 0; i < 3; ++i) {
            if (key_[i] == k && k != Key{}) {
                return val_[codec::kLru3Decode[code_][i] - 1];
            }
        }
        return std::nullopt;
    }

    [[nodiscard]] bool contains(const Key& k) const {
        return find(k).has_value();
    }

    bool touch(const Key& k, const Value& v) {
        if (!contains(k)) return false;
        update(k, v);
        return true;
    }

    /// Series-connection downstream insert: replace the least-recent slot,
    /// leaving the state untouched. Returns the displaced real pair, if any.
    std::optional<std::pair<Key, Value>> insert_lru(const Key& k,
                                                    const Value& v) {
        for (std::size_t i = 0; i < 3; ++i) {
            if (key_[i] == k && k != Key{}) {
                val_[codec::kLru3Decode[code_][i] - 1] = v;
                return std::nullopt;
            }
        }
        const std::size_t slot = codec::kLru3S3[code_];
        std::optional<std::pair<Key, Value>> displaced;
        if (key_[2] != Key{}) {
            displaced = std::make_pair(key_[2], val_[slot - 1]);
        }
        key_[2] = k;
        val_[slot - 1] = v;
        return displaced;
    }

    [[nodiscard]] std::uint8_t state_code() const noexcept { return code_; }
    [[nodiscard]] const Key& raw_key(std::size_t i) const { return key_[i]; }
    [[nodiscard]] static constexpr std::size_t capacity() noexcept { return 3; }

    [[nodiscard]] std::size_t size() const noexcept {
        std::size_t n = 0;
        for (const auto& key : key_) n += key != Key{} ? 1 : 0;
        return n;
    }

  private:
    std::array<Key, 3> key_{};
    std::array<Value, 3> val_{};
    std::uint8_t code_ = codec::kLru3Initial;
    [[no_unique_address]] Merge merge_{};
};

/// P4LRU2 with the single-bit state machine of Section 2.3.1.
template <typename Key, typename Value, typename Merge = ReplaceMerge>
    requires std::equality_comparable<Key>
class P4lru2Encoded {
  public:
    using Result = UpdateResult<Key, Value>;

    Result update(const Key& k, const Value& v) {
        return update(k, v, merge_);
    }

    /// Per-call merge overload (read pass vs write pass; see core::P4lru).
    template <typename MergeFn>
    Result update(const Key& k, const Value& v, MergeFn&& merge) {
        Result r;
        if (key_[0] == k) {
            r.hit = true;
            r.hit_pos = 1;
            code_ = codec::lru2_op1(code_);
        } else {
            const Key victim = key_[1];
            const bool hit2 = victim == k;
            key_[1] = key_[0];
            key_[0] = k;
            code_ = codec::lru2_op2(code_);
            if (hit2) {
                r.hit = true;
                r.hit_pos = 2;
            } else {
                r.hit_pos = 2;
                if (victim != Key{}) {
                    r.evicted = true;
                    r.evicted_key = victim;
                }
            }
        }
        const std::size_t slot = codec::lru2_s1(code_);
        if (r.hit) {
            val_[slot - 1] = merge(val_[slot - 1], v);
        } else {
            if (r.evicted) r.evicted_value = val_[slot - 1];
            val_[slot - 1] = v;
        }
        return r;
    }

    [[nodiscard]] std::optional<Value> find(const Key& k) const {
        if (k == Key{}) return std::nullopt;
        if (key_[0] == k) return val_[codec::lru2_s1(code_) - 1];
        if (key_[1] == k) return val_[codec::lru2_s2(code_) - 1];
        return std::nullopt;
    }

    [[nodiscard]] bool contains(const Key& k) const {
        return find(k).has_value();
    }

    bool touch(const Key& k, const Value& v) {
        if (!contains(k)) return false;
        update(k, v);
        return true;
    }

    std::optional<std::pair<Key, Value>> insert_lru(const Key& k,
                                                    const Value& v) {
        if (k != Key{}) {
            if (key_[0] == k) {
                val_[codec::lru2_s1(code_) - 1] = v;
                return std::nullopt;
            }
            if (key_[1] == k) {
                val_[codec::lru2_s2(code_) - 1] = v;
                return std::nullopt;
            }
        }
        const std::size_t slot = codec::lru2_s2(code_);
        std::optional<std::pair<Key, Value>> displaced;
        if (key_[1] != Key{}) {
            displaced = std::make_pair(key_[1], val_[slot - 1]);
        }
        key_[1] = k;
        val_[slot - 1] = v;
        return displaced;
    }

    [[nodiscard]] std::uint8_t state_code() const noexcept { return code_; }
    [[nodiscard]] const Key& raw_key(std::size_t i) const { return key_[i]; }
    [[nodiscard]] static constexpr std::size_t capacity() noexcept { return 2; }

    [[nodiscard]] std::size_t size() const noexcept {
        return (key_[0] != Key{} ? 1u : 0u) + (key_[1] != Key{} ? 1u : 0u);
    }

  private:
    std::array<Key, 2> key_{};
    std::array<Value, 2> val_{};
    std::uint8_t code_ = codec::kLru2Initial;
    [[no_unique_address]] Merge merge_{};
};

}  // namespace p4lru::core
