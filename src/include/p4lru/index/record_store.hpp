// Fixed-size record storage addressed by 48-bit memory addresses — the
// "index" LruIndex caches is exactly such an address (the paper: "the 48-bit
// memory address", values of 64 bytes).
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

namespace p4lru::index {

/// 48-bit record address, stored in the low bits of a 64-bit integer.
/// Address 0 is reserved as "null" (records start at slot 1).
using RecordAddress = std::uint64_t;

constexpr RecordAddress kNullRecord = 0;
constexpr std::uint64_t kAddressMask = (std::uint64_t{1} << 48) - 1;

/// A slab of 64-byte records. Append-only allocation (database load phase),
/// random-access read/write afterwards.
class RecordStore {
  public:
    static constexpr std::size_t kRecordBytes = 64;
    using Record = std::array<std::uint8_t, kRecordBytes>;

    /// Allocate a record initialized from `payload` (truncated/zero-padded
    /// to 64 bytes). Returns its 48-bit address. Throws when the 48-bit
    /// address space is exhausted.
    RecordAddress allocate(std::span<const std::uint8_t> payload);

    /// Read the record at `addr`. Throws std::out_of_range for invalid or
    /// null addresses.
    [[nodiscard]] const Record& read(RecordAddress addr) const;

    /// Overwrite the record at `addr`.
    void write(RecordAddress addr, std::span<const std::uint8_t> payload);

    [[nodiscard]] std::size_t count() const noexcept { return slabs_.size(); }
    [[nodiscard]] std::size_t memory_bytes() const noexcept {
        return slabs_.size() * kRecordBytes;
    }

    /// True if `addr` names an allocated record.
    [[nodiscard]] bool valid(RecordAddress addr) const noexcept;

  private:
    [[nodiscard]] std::size_t slot_of(RecordAddress addr) const;
    std::vector<Record> slabs_;
};

}  // namespace p4lru::index
