// In-memory B+ tree: the database server's "built-in indexing" that LruIndex
// bypasses on a cache hit (the paper names the B+ Tree explicitly). Lookup
// reports the number of node hops so the server cost model can charge
// index traversals realistically.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <optional>
#include <stdexcept>
#include <vector>

namespace p4lru::index {

/// B+ tree mapping Key -> Value with configurable fanout.
/// Single-threaded; the LruIndex thread-scaling model serializes index
/// traversals through a cost model rather than real concurrency.
template <typename Key, typename Value, std::size_t Fanout = 64>
    requires(Fanout >= 4)
class BPlusTree {
  public:
    BPlusTree() : root_(new Node(/*leaf=*/true)) {}

    /// Insert or overwrite.
    void insert(const Key& key, const Value& value) {
        Node* r = root_.get();
        if (r->keys.size() == kMaxKeys) {
            auto new_root = std::make_unique<Node>(false);
            new_root->children.push_back(std::move(root_));
            split_child(new_root.get(), 0);
            root_ = std::move(new_root);
        }
        insert_nonfull(root_.get(), key, value);
    }

    struct FindResult {
        std::optional<Value> value;
        std::size_t node_hops = 0;  ///< nodes touched root..leaf
    };

    /// Lookup with traversal-cost reporting.
    [[nodiscard]] FindResult find(const Key& key) const {
        FindResult fr;
        const Node* n = root_.get();
        ++fr.node_hops;
        while (!n->leaf) {
            const std::size_t i = child_index(n, key);
            n = n->children[i].get();
            ++fr.node_hops;
        }
        const auto it =
            std::lower_bound(n->keys.begin(), n->keys.end(), key);
        if (it != n->keys.end() && *it == key) {
            fr.value = n->values[static_cast<std::size_t>(
                it - n->keys.begin())];
        }
        return fr;
    }

    [[nodiscard]] bool contains(const Key& key) const {
        return find(key).value.has_value();
    }

    [[nodiscard]] std::size_t size() const noexcept { return size_; }

    /// Tree height (1 = just a leaf). The cost model charges per level.
    [[nodiscard]] std::size_t height() const {
        std::size_t h = 1;
        const Node* n = root_.get();
        while (!n->leaf) {
            n = n->children.front().get();
            ++h;
        }
        return h;
    }

    /// In-order key/value scan via the leaf chain (range queries, checks).
    template <typename Fn>
    void for_each(Fn&& fn) const {
        const Node* n = root_.get();
        while (!n->leaf) n = n->children.front().get();
        for (; n != nullptr; n = n->next_leaf) {
            for (std::size_t i = 0; i < n->keys.size(); ++i) {
                fn(n->keys[i], n->values[i]);
            }
        }
    }

    /// Structural invariant check (tests): sorted keys, child counts, uniform
    /// leaf depth, leaf chain consistency.
    [[nodiscard]] bool validate() const {
        std::size_t leaf_depth = 0;
        return validate_node(root_.get(), 1, leaf_depth, nullptr, nullptr);
    }

  private:
    static constexpr std::size_t kMaxKeys = Fanout - 1;

    struct Node {
        explicit Node(bool is_leaf) : leaf(is_leaf) {}
        bool leaf;
        std::vector<Key> keys;
        std::vector<Value> values;                  // leaves only
        std::vector<std::unique_ptr<Node>> children;  // internal only
        Node* next_leaf = nullptr;
    };

    static std::size_t child_index(const Node* n, const Key& key) {
        // Internal nodes store separator keys; child i covers keys < keys[i].
        return static_cast<std::size_t>(
            std::upper_bound(n->keys.begin(), n->keys.end(), key) -
            n->keys.begin());
    }

    void split_child(Node* parent, std::size_t i) {
        Node* child = parent->children[i].get();
        auto right = std::make_unique<Node>(child->leaf);
        const std::size_t mid = child->keys.size() / 2;

        if (child->leaf) {
            right->keys.assign(child->keys.begin() +
                                   static_cast<std::ptrdiff_t>(mid),
                               child->keys.end());
            right->values.assign(child->values.begin() +
                                     static_cast<std::ptrdiff_t>(mid),
                                 child->values.end());
            child->keys.resize(mid);
            child->values.resize(mid);
            right->next_leaf = child->next_leaf;
            child->next_leaf = right.get();
            // Leaf split copies the first right key up as separator.
            parent->keys.insert(parent->keys.begin() +
                                    static_cast<std::ptrdiff_t>(i),
                                right->keys.front());
        } else {
            const Key up = child->keys[mid];
            right->keys.assign(child->keys.begin() +
                                   static_cast<std::ptrdiff_t>(mid) + 1,
                               child->keys.end());
            for (std::size_t c = mid + 1; c < child->children.size(); ++c) {
                right->children.push_back(std::move(child->children[c]));
            }
            child->children.resize(mid + 1);
            child->keys.resize(mid);
            parent->keys.insert(parent->keys.begin() +
                                    static_cast<std::ptrdiff_t>(i),
                                up);
        }
        parent->children.insert(parent->children.begin() +
                                    static_cast<std::ptrdiff_t>(i) + 1,
                                std::move(right));
    }

    void insert_nonfull(Node* n, const Key& key, const Value& value) {
        while (!n->leaf) {
            std::size_t i = child_index(n, key);
            if (n->children[i]->keys.size() == kMaxKeys) {
                split_child(n, i);
                if (key >= n->keys[i]) ++i;
            }
            n = n->children[i].get();
        }
        const auto it = std::lower_bound(n->keys.begin(), n->keys.end(), key);
        const auto pos = static_cast<std::size_t>(it - n->keys.begin());
        if (it != n->keys.end() && *it == key) {
            n->values[pos] = value;  // overwrite
            return;
        }
        n->keys.insert(it, key);
        n->values.insert(n->values.begin() + static_cast<std::ptrdiff_t>(pos),
                         value);
        ++size_;
    }

    bool validate_node(const Node* n, std::size_t depth,
                       std::size_t& leaf_depth, const Key* lo,
                       const Key* hi) const {
        if (!std::is_sorted(n->keys.begin(), n->keys.end())) return false;
        for (const Key& k : n->keys) {
            if (lo && k < *lo) return false;
            if (hi && !(k < *hi)) return false;
        }
        if (n->leaf) {
            if (n->values.size() != n->keys.size()) return false;
            if (leaf_depth == 0) leaf_depth = depth;
            return leaf_depth == depth;
        }
        if (n->children.size() != n->keys.size() + 1) return false;
        for (std::size_t i = 0; i < n->children.size(); ++i) {
            const Key* clo = i == 0 ? lo : &n->keys[i - 1];
            const Key* chi = i == n->keys.size() ? hi : &n->keys[i];
            if (!validate_node(n->children[i].get(), depth + 1, leaf_depth,
                               clo, chi)) {
                return false;
            }
        }
        return true;
    }

    std::unique_ptr<Node> root_;
    std::size_t size_ = 0;
};

}  // namespace p4lru::index
