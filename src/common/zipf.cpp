#include "p4lru/common/zipf.hpp"

#include <cmath>
#include <stdexcept>

#include "p4lru/common/hash.hpp"

namespace p4lru::rng {

double Xoshiro256::exponential(double mean) noexcept {
    // Inverse CDF; uniform() < 1 so the log argument is > 0.
    return -mean * std::log1p(-uniform());
}

ZipfSampler::ZipfSampler(std::uint64_t n, double alpha)
    : n_(n), alpha_(alpha) {
    if (n == 0) throw std::invalid_argument("ZipfSampler: n must be >= 1");
    if (alpha < 0) throw std::invalid_argument("ZipfSampler: alpha < 0");
    h_integral_x1_ = h_integral(1.5) - 1.0;
    h_integral_num_elements_ = h_integral(static_cast<double>(n) + 0.5);
    s_ = 2.0 - h_integral_inverse(h_integral(2.5) - h(2.0));
}

double ZipfSampler::h(double x) const {
    return std::exp(-alpha_ * std::log(x));
}

double ZipfSampler::h_integral(double x) const {
    const double log_x = std::log(x);
    // integral of x^-alpha: handles alpha == 1 via the expm1 formulation.
    const double t = log_x * (1.0 - alpha_);
    if (std::abs(t) < 1e-8) {
        // Series expansion to stay accurate near alpha = 1.
        return log_x * (1.0 + t / 2.0 + t * t / 6.0);
    }
    return std::expm1(t) / (1.0 - alpha_);
}

double ZipfSampler::h_integral_inverse(double x) const {
    double t = x * (1.0 - alpha_);
    if (t < -1.0) t = -1.0;  // numerical clamp
    if (std::abs(t) < 1e-8) {
        return std::exp(x * (1.0 - t / 2.0 + t * t / 3.0));
    }
    return std::exp(std::log1p(t) / (1.0 - alpha_));
}

std::uint64_t ZipfSampler::sample(Xoshiro256& rng) const {
    if (n_ == 1) return 1;
    while (true) {
        const double u = h_integral_num_elements_ +
                         rng.uniform() * (h_integral_x1_ -
                                          h_integral_num_elements_);
        const double x = h_integral_inverse(u);
        std::uint64_t k = static_cast<std::uint64_t>(x + 0.5);
        if (k < 1) {
            k = 1;
        } else if (k > n_) {
            k = n_;
        }
        const double kd = static_cast<double>(k);
        if (kd - x <= s_ ||
            u >= h_integral(kd + 0.5) - h(kd)) {
            return k;
        }
    }
}

ScrambledZipf::ScrambledZipf(std::uint64_t n, double alpha, std::uint64_t seed)
    : zipf_(n, alpha), n_(n) {
    // Smallest even bit count whose power-of-two domain covers [0, n): even
    // so the Feistel halves are equal width, minimal so cycle-walking's
    // expected rejection stays below 3/4 (domain < 4n).
    std::uint32_t bits = 2;
    while (bits < 64 && (std::uint64_t{1} << bits) < n) bits += 2;
    half_bits_ = bits / 2;
    half_mask_ = (std::uint64_t{1} << half_bits_) - 1;
    std::uint64_t s = seed ^ 0x9E3779B97F4A7C15ULL;
    for (auto& key : keys_) {
        s += 0x9E3779B97F4A7C15ULL;
        key = hash::mix64(s);
    }
}

std::uint64_t ScrambledZipf::permute(std::uint64_t x) const {
    // Cycle-walk: a Feistel pass is a bijection on the 2^(2*half_bits_)
    // domain, so re-applying it until the value lands below n restricts it
    // to a bijection on [0, n).
    do {
        for (const std::uint64_t key : keys_) {
            const std::uint64_t left = x >> half_bits_;
            const std::uint64_t right = x & half_mask_;
            const std::uint64_t f = hash::mix64(right ^ key) & half_mask_;
            x = (right << half_bits_) | (left ^ f);
        }
    } while (x >= n_);
    return x;
}

std::uint64_t ScrambledZipf::sample(Xoshiro256& rng) const {
    return permute(zipf_.sample(rng) - 1);
}

}  // namespace p4lru::rng
