#include "p4lru/common/table.hpp"

#include <cstdio>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace p4lru {

ConsoleTable::ConsoleTable(std::vector<std::string> header)
    : header_(std::move(header)) {
    if (header_.empty()) {
        throw std::invalid_argument("ConsoleTable: empty header");
    }
}

void ConsoleTable::add_row(std::vector<std::string> cells) {
    if (cells.size() != header_.size()) {
        throw std::invalid_argument("ConsoleTable: row width mismatch");
    }
    rows_.push_back(std::move(cells));
}

std::string ConsoleTable::num(double v, int precision) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return os.str();
}

std::string ConsoleTable::render() const {
    std::vector<std::size_t> widths(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c) {
        widths[c] = header_[c].size();
    }
    for (const auto& row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            widths[c] = std::max(widths[c], row[c].size());
        }
    }

    std::ostringstream os;
    const auto emit_row = [&](const std::vector<std::string>& row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << "| " << std::left << std::setw(static_cast<int>(widths[c]))
               << row[c] << ' ';
        }
        os << "|\n";
    };
    emit_row(header_);
    for (std::size_t c = 0; c < header_.size(); ++c) {
        os << '|' << std::string(widths[c] + 2, '-');
    }
    os << "|\n";
    for (const auto& row : rows_) emit_row(row);
    return os.str();
}

void ConsoleTable::print(const std::string& caption) const {
    std::printf("\n== %s ==\n%s", caption.c_str(), render().c_str());
    std::fflush(stdout);
}

}  // namespace p4lru
