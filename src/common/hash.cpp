#include "p4lru/common/hash.hpp"

#include <array>
#include <bit>
#include <cstring>
#include <sstream>

namespace p4lru::hash {
namespace {

/// Slice-by-8 tables for the reflected CRC32 (poly 0xEDB88320), built at
/// static-init time.  Table 0 is the classic bytewise table; table k folds
/// a byte that sits k positions ahead, so eight table lookups retire eight
/// message bytes with one XOR reduction.  Output is bit-identical to the
/// bytewise algorithm for every input.
constexpr std::array<std::array<std::uint32_t, 256>, 8> make_crc_tables() {
    std::array<std::array<std::uint32_t, 256>, 8> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t c = i;
        for (int bit = 0; bit < 8; ++bit) {
            c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
        }
        t[0][i] = c;
    }
    for (std::size_t k = 1; k < 8; ++k) {
        for (std::uint32_t i = 0; i < 256; ++i) {
            const std::uint32_t prev = t[k - 1][i];
            t[k][i] = (prev >> 8) ^ t[0][prev & 0xFFu];
        }
    }
    return t;
}

constexpr auto kCrcTables = make_crc_tables();
constexpr const auto& kCrcTable = kCrcTables[0];

constexpr std::uint64_t kXxPrime1 = 0x9E3779B185EBCA87ULL;
constexpr std::uint64_t kXxPrime2 = 0xC2B2AE3D27D4EB4FULL;
constexpr std::uint64_t kXxPrime3 = 0x165667B19E3779F9ULL;
constexpr std::uint64_t kXxPrime4 = 0x85EBCA77C2B2AE63ULL;
constexpr std::uint64_t kXxPrime5 = 0x27D4EB2F165667C5ULL;

constexpr std::uint64_t rotl64(std::uint64_t x, int r) noexcept {
    return (x << r) | (x >> (64 - r));
}

constexpr std::uint32_t rotl32(std::uint32_t x, int r) noexcept {
    return (x << r) | (x >> (32 - r));
}

std::uint64_t read_u64(const std::uint8_t* p) noexcept {
    std::uint64_t v;
    std::memcpy(&v, p, 8);
    return v;
}

std::uint32_t read_u32(const std::uint8_t* p) noexcept {
    std::uint32_t v;
    std::memcpy(&v, p, 4);
    return v;
}

std::uint64_t xx_round(std::uint64_t acc, std::uint64_t input) noexcept {
    acc += input * kXxPrime2;
    acc = rotl64(acc, 31);
    return acc * kXxPrime1;
}

std::uint64_t xx_merge(std::uint64_t acc, std::uint64_t val) noexcept {
    acc ^= xx_round(0, val);
    return acc * kXxPrime1 + kXxPrime4;
}

}  // namespace

std::uint32_t crc32(std::span<const std::uint8_t> data,
                    std::uint32_t seed) noexcept {
    std::uint32_t crc = ~seed;
    const std::uint8_t* p = data.data();
    std::size_t n = data.size();

    if constexpr (std::endian::native == std::endian::little) {
        // Slice-by-8 main loop, then a slice-by-4 step: a 13-byte FlowKey
        // costs one 8-byte fold, one 4-byte fold and one tail byte instead
        // of 13 dependent table lookups.
        while (n >= 8) {
            const std::uint32_t lo = crc ^ read_u32(p);
            const std::uint32_t hi = read_u32(p + 4);
            crc = kCrcTables[7][lo & 0xFFu] ^
                  kCrcTables[6][(lo >> 8) & 0xFFu] ^
                  kCrcTables[5][(lo >> 16) & 0xFFu] ^
                  kCrcTables[4][lo >> 24] ^
                  kCrcTables[3][hi & 0xFFu] ^
                  kCrcTables[2][(hi >> 8) & 0xFFu] ^
                  kCrcTables[1][(hi >> 16) & 0xFFu] ^
                  kCrcTables[0][hi >> 24];
            p += 8;
            n -= 8;
        }
        if (n >= 4) {
            const std::uint32_t w = crc ^ read_u32(p);
            crc = kCrcTables[3][w & 0xFFu] ^
                  kCrcTables[2][(w >> 8) & 0xFFu] ^
                  kCrcTables[1][(w >> 16) & 0xFFu] ^
                  kCrcTables[0][w >> 24];
            p += 4;
            n -= 4;
        }
    }
    for (; n != 0; ++p, --n) {
        crc = kCrcTable[(crc ^ *p) & 0xFFu] ^ (crc >> 8);
    }
    return ~crc;
}

std::uint32_t murmur3_32(std::span<const std::uint8_t> data,
                         std::uint32_t seed) noexcept {
    const std::size_t n = data.size();
    const std::size_t nblocks = n / 4;
    std::uint32_t h = seed;
    constexpr std::uint32_t c1 = 0xcc9e2d51u;
    constexpr std::uint32_t c2 = 0x1b873593u;

    for (std::size_t i = 0; i < nblocks; ++i) {
        std::uint32_t k = read_u32(data.data() + i * 4);
        k *= c1;
        k = rotl32(k, 15);
        k *= c2;
        h ^= k;
        h = rotl32(h, 13);
        h = h * 5 + 0xe6546b64u;
    }

    std::uint32_t k = 0;
    const std::uint8_t* tail = data.data() + nblocks * 4;
    switch (n & 3u) {
        case 3: k ^= std::uint32_t{tail[2]} << 16; [[fallthrough]];
        case 2: k ^= std::uint32_t{tail[1]} << 8; [[fallthrough]];
        case 1:
            k ^= tail[0];
            k *= c1;
            k = rotl32(k, 15);
            k *= c2;
            h ^= k;
    }

    h ^= static_cast<std::uint32_t>(n);
    h ^= h >> 16;
    h *= 0x85ebca6bu;
    h ^= h >> 13;
    h *= 0xc2b2ae35u;
    h ^= h >> 16;
    return h;
}

std::uint64_t xxhash64(std::span<const std::uint8_t> data,
                       std::uint64_t seed) noexcept {
    const std::uint8_t* p = data.data();
    const std::uint8_t* const end = p + data.size();
    std::uint64_t h;

    if (data.size() >= 32) {
        std::uint64_t v1 = seed + kXxPrime1 + kXxPrime2;
        std::uint64_t v2 = seed + kXxPrime2;
        std::uint64_t v3 = seed;
        std::uint64_t v4 = seed - kXxPrime1;
        do {
            v1 = xx_round(v1, read_u64(p));
            v2 = xx_round(v2, read_u64(p + 8));
            v3 = xx_round(v3, read_u64(p + 16));
            v4 = xx_round(v4, read_u64(p + 24));
            p += 32;
        } while (p + 32 <= end);
        h = rotl64(v1, 1) + rotl64(v2, 7) + rotl64(v3, 12) + rotl64(v4, 18);
        h = xx_merge(h, v1);
        h = xx_merge(h, v2);
        h = xx_merge(h, v3);
        h = xx_merge(h, v4);
    } else {
        h = seed + kXxPrime5;
    }

    h += data.size();

    while (p + 8 <= end) {
        h ^= xx_round(0, read_u64(p));
        h = rotl64(h, 27) * kXxPrime1 + kXxPrime4;
        p += 8;
    }
    if (p + 4 <= end) {
        h ^= std::uint64_t{read_u32(p)} * kXxPrime1;
        h = rotl64(h, 23) * kXxPrime2 + kXxPrime3;
        p += 4;
    }
    while (p < end) {
        h ^= std::uint64_t{*p} * kXxPrime5;
        h = rotl64(h, 11) * kXxPrime1;
        ++p;
    }

    h ^= h >> 33;
    h *= kXxPrime2;
    h ^= h >> 29;
    h *= kXxPrime3;
    h ^= h >> 32;
    return h;
}

std::uint32_t fingerprint32(const FlowKey& k) noexcept {
    const auto b = k.bytes();
    // Distinct seed from any bucket hash; Murmur3 for independence from CRC32.
    std::uint32_t fp =
        murmur3_32(std::span<const std::uint8_t>(b.data(), b.size()),
                   0xF1A9B375u);
    // Reserve 0 as the "empty slot" sentinel used by cache units.
    return fp == 0 ? 1u : fp;
}

}  // namespace p4lru::hash

namespace p4lru {

std::string FlowKey::to_string() const {
    const auto ip = [](std::uint32_t v) {
        std::ostringstream os;
        os << ((v >> 24) & 0xFF) << '.' << ((v >> 16) & 0xFF) << '.'
           << ((v >> 8) & 0xFF) << '.' << (v & 0xFF);
        return os.str();
    };
    std::ostringstream os;
    os << ip(src_ip) << ':' << src_port << " -> " << ip(dst_ip) << ':'
       << dst_port << " proto=" << int{proto};
    return os.str();
}

}  // namespace p4lru
