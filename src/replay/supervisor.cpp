#include "p4lru/replay/supervisor.hpp"

#include <chrono>
#include <thread>

namespace p4lru::replay {

std::uint64_t backoff_delay_us(const SupervisorConfig& cfg,
                               std::size_t attempt) {
    if (attempt == 0) return 0;
    const std::size_t shift = attempt - 1;
    // Saturate the shift itself before it can overflow the u64.
    if (shift >= 63) return cfg.backoff_cap_us;
    const std::uint64_t delay = cfg.backoff_base_us << shift;
    return delay < cfg.backoff_base_us  // shifted past 2^64
               ? cfg.backoff_cap_us
               : std::min(delay, cfg.backoff_cap_us);
}

void sleep_us(std::uint64_t us) {
    if (us == 0) return;
    std::this_thread::sleep_for(std::chrono::microseconds(us));
}

}  // namespace p4lru::replay
