#include "p4lru/replay/durable_store.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <span>
#include <system_error>

#include "p4lru/common/hash.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#define P4LRU_POSIX_IO 1
#endif

namespace p4lru::replay {
namespace {

namespace fs = std::filesystem;

constexpr char kGenPrefix[] = "gen-";
constexpr char kGenSuffix[] = ".ckpt";
constexpr char kTmpSuffix[] = ".tmp";
constexpr std::uint64_t kSealBytes = 16;

// Raw header geometry of the two formats (documented in checkpoint_io.hpp
// and target_checkpoint.hpp; the typed readers are the source of truth —
// the raw path only mirrors their framing so the store and the CLI can
// judge validity without knowing the Stats type).
constexpr char kCkpMagic[8] = {'P', '4', 'L', 'R', 'U', 'C', 'K', 'P'};
constexpr char kTgcMagic[8] = {'P', '4', 'L', 'R', 'U', 'T', 'G', 'C'};
constexpr std::uint64_t kCkpHeaderBytes = 152;
constexpr std::uint64_t kTgcHeaderBytes = 120;

std::uint32_t get_u32(const std::byte* p) {
    std::uint32_t v = 0;
    std::memcpy(&v, p, 4);
    return v;
}

std::uint64_t get_u64(const std::byte* p) {
    std::uint64_t v = 0;
    std::memcpy(&v, p, 8);
    return v;
}

std::uint32_t crc_over(const std::byte* p, std::uint64_t n) {
    return hash::crc32(std::span<const std::uint8_t>(
        reinterpret_cast<const std::uint8_t*>(p),
        static_cast<std::size_t>(n)));
}

/// Format-agnostic framing of an image: everything needed to locate the
/// sections and the seal without a Stats type.
struct RawLayout {
    const char* format = "";
    std::uint64_t header_bytes = 0;
    std::uint32_t version = 0;
    bool sealed = false;
    std::uint32_t id = 0;
    std::uint64_t fingerprint = 0;
    std::uint64_t unit_count = 0;
    std::uint64_t cursor = 0;
    std::uint64_t shard_count = 0;
    std::uint64_t record_bytes = 0;
    std::uint64_t records_bytes = 0;  ///< total stats/slice section size
    std::uint64_t payload_bytes = 0;  ///< plane / state image size
};

/// Parse the framing of either format, applying the same structural size
/// cross-checks as the typed readers (every strict prefix rejected, counts
/// checked against the image size before anything is trusted).
Expected<RawLayout> parse_raw(const std::vector<std::byte>& image,
                              const std::string& origin) {
    const std::uint64_t file_size = image.size();
    if (file_size < sizeof(kCkpMagic)) {
        return truncated("image of " + std::to_string(file_size) +
                             " bytes from '" + origin +
                             "' is too short for a format magic",
                         file_size);
    }
    const std::byte* p = image.data();
    RawLayout raw;
    if (std::memcmp(p, kCkpMagic, sizeof(kCkpMagic)) == 0) {
        raw.format = "P4LRUCKP";
        raw.header_bytes = kCkpHeaderBytes;
    } else if (std::memcmp(p, kTgcMagic, sizeof(kTgcMagic)) == 0) {
        raw.format = "P4LRUTGC";
        raw.header_bytes = kTgcHeaderBytes;
    } else {
        return corrupt("unknown checkpoint magic in " + origin, 0);
    }
    if (file_size < raw.header_bytes) {
        return truncated("image of " + std::to_string(file_size) +
                             " bytes from '" + origin +
                             "' is shorter than the " + raw.format +
                             " header",
                         file_size);
    }
    raw.version = get_u32(p + 8);
    if (raw.version != 1 && raw.version != 2) {
        return corrupt("unsupported " + std::string(raw.format) +
                           " version " + std::to_string(raw.version) +
                           " in " + origin,
                       8);
    }
    raw.sealed = raw.version == 2;
    raw.id = get_u32(p + 12);
    raw.fingerprint = get_u64(p + 16);
    raw.unit_count = get_u64(p + 24);
    raw.cursor = get_u64(p + 32);
    const std::uint64_t seal = raw.sealed ? kSealBytes : 0;
    if (file_size < raw.header_bytes + seal) {
        return truncated("image of " + std::to_string(file_size) +
                             " bytes from '" + origin +
                             "' is shorter than header + seal footer",
                         file_size);
    }
    const std::uint64_t body = file_size - raw.header_bytes - seal;
    if (raw.header_bytes == kCkpHeaderBytes) {
        raw.record_bytes = 32;  // one ReplayStats slice
        raw.shard_count = get_u64(p + 136);
        raw.payload_bytes = get_u64(p + 144);
        if (raw.shard_count > body / raw.record_bytes) {
            return corrupt("shard count " +
                               std::to_string(raw.shard_count) +
                               " exceeds file body of " +
                               std::to_string(body) + " bytes",
                           136);
        }
        raw.records_bytes = raw.shard_count * raw.record_bytes;
        if (raw.payload_bytes > body - raw.records_bytes) {
            return truncated(
                "plane image of " + std::to_string(raw.payload_bytes) +
                    " bytes promised; only " +
                    std::to_string(body - raw.records_bytes) +
                    " bytes follow the shard slices",
                file_size);
        }
    } else {
        raw.record_bytes = get_u32(p + 104);
        raw.shard_count = get_u32(p + 108);
        raw.payload_bytes = get_u64(p + 112);
        raw.records_bytes = raw.record_bytes * (1 + raw.shard_count);
        if (raw.record_bytes == 0 || raw.records_bytes > body ||
            raw.payload_bytes > body - raw.records_bytes) {
            return truncated(
                "stats records of " + std::to_string(raw.records_bytes) +
                    " bytes + state image of " +
                    std::to_string(raw.payload_bytes) +
                    " bytes promised; file body holds " +
                    std::to_string(body) + " bytes",
                file_size);
        }
    }
    const std::uint64_t expected =
        raw.header_bytes + raw.records_bytes + raw.payload_bytes + seal;
    if (file_size > expected) {
        return corrupt(std::to_string(file_size - expected) +
                           " trailing bytes past the promised size",
                       expected);
    }
    return raw;
}

/// The two record-section names differ between formats only in wording.
const char* records_name(const RawLayout& raw) {
    return raw.header_bytes == kCkpHeaderBytes ? "shard slices"
                                               : "stats records";
}
const char* payload_name(const RawLayout& raw) {
    return raw.header_bytes == kCkpHeaderBytes ? "plane image"
                                               : "state image";
}

/// Record elapsed ns since `t0` into `hist` (null = no-op); shared by every
/// timed IO site below.
class [[nodiscard]] ScopedNsTimer {
  public:
    explicit ScopedNsTimer(obs::Histogram* hist)
        : hist_(hist),
          t0_(hist != nullptr ? std::chrono::steady_clock::now()
                              : std::chrono::steady_clock::time_point{}) {}
    ~ScopedNsTimer() {
        if (hist_ != nullptr) {
            hist_->record(static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    std::chrono::steady_clock::now() - t0_)
                    .count()));
        }
    }
    ScopedNsTimer(const ScopedNsTimer&) = delete;
    ScopedNsTimer& operator=(const ScopedNsTimer&) = delete;

  private:
    obs::Histogram* hist_;
    std::chrono::steady_clock::time_point t0_;
};

#ifdef P4LRU_POSIX_IO
Status fsync_path(const std::string& path, bool directory,
                  obs::Histogram* fsync_ns = nullptr) {
    errno = 0;
    const int fd =
        ::open(path.c_str(), directory ? (O_RDONLY | O_DIRECTORY) : O_RDONLY);
    if (fd < 0) {
        return io_error_errno("atomic_write_file: cannot open for fsync",
                              path);
    }
    errno = 0;
    int rc = 0;
    {
        ScopedNsTimer timer(fsync_ns);
        rc = ::fsync(fd);
    }
    ::close(fd);
    if (rc != 0) {
        return io_error_errno("atomic_write_file: fsync failed on", path);
    }
    return Status::ok();
}
#endif

/// Write bytes to `path` (plain, non-atomic) — the torn-crash injector's
/// tool and atomic_write_file's first phase.
Status write_bytes_plain(const std::string& path,
                         const std::vector<std::byte>& bytes, bool sync,
                         obs::Histogram* fsync_ns = nullptr) {
#ifdef P4LRU_POSIX_IO
    errno = 0;
    const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) {
        return io_error_errno("durable_store: cannot open for write", path);
    }
    const std::byte* p = bytes.data();
    std::size_t left = bytes.size();
    while (left > 0) {
        errno = 0;
        const ssize_t n = ::write(fd, p, left);
        if (n < 0) {
            if (errno == EINTR) continue;
            const Status st =
                io_error_errno("durable_store: write failed to", path);
            ::close(fd);
            return st;
        }
        p += n;
        left -= static_cast<std::size_t>(n);
    }
    if (sync) {
        errno = 0;
        int rc = 0;
        {
            ScopedNsTimer timer(fsync_ns);
            rc = ::fsync(fd);
        }
        if (rc != 0) {
            const Status st =
                io_error_errno("durable_store: fsync failed on", path);
            ::close(fd);
            return st;
        }
    }
    errno = 0;
    if (::close(fd) != 0) {
        return io_error_errno("durable_store: close failed on", path);
    }
    return Status::ok();
#else
    errno = 0;
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    if (!os) {
        return io_error_errno("durable_store: cannot open for write", path);
    }
    os.write(reinterpret_cast<const char*>(bytes.data()),
             static_cast<std::streamsize>(bytes.size()));
    os.flush();
    if (!os) {
        return io_error_errno("durable_store: write failed to", path);
    }
    (void)sync;  // no portable fsync without POSIX
    (void)fsync_ns;
    return Status::ok();
#endif
}

std::string gen_filename(std::uint64_t seq) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%s%06llu%s", kGenPrefix,
                  static_cast<unsigned long long>(seq), kGenSuffix);
    return buf;
}

/// gen-000123.ckpt -> 123; anything else (including .tmp leftovers) -> 0.
std::uint64_t parse_gen_seq(const std::string& name) {
    const std::size_t prefix = sizeof(kGenPrefix) - 1;
    const std::size_t suffix = sizeof(kGenSuffix) - 1;
    if (name.size() <= prefix + suffix) return 0;
    if (name.compare(0, prefix, kGenPrefix) != 0) return 0;
    if (name.compare(name.size() - suffix, suffix, kGenSuffix) != 0) {
        return 0;
    }
    std::uint64_t seq = 0;
    for (std::size_t i = prefix; i < name.size() - suffix; ++i) {
        const char c = name[i];
        if (c < '0' || c > '9') return 0;
        seq = seq * 10 + static_cast<std::uint64_t>(c - '0');
    }
    return seq;
}

/// The byte boundary a torn crash cuts the image at: one of the section
/// ends strictly before the file end, selected by the event's arg.
std::uint64_t torn_cut(const SerializedCheckpoint& image,
                       std::uint64_t section) {
    if (image.section_ends.size() < 2) {
        return image.bytes.size() / 2;
    }
    const std::size_t cuts = image.section_ends.size() - 1;  // strict only
    return image.section_ends[static_cast<std::size_t>(section % cuts)];
}

}  // namespace

Expected<std::vector<std::byte>> read_file_bytes(const std::string& path) {
    errno = 0;
    std::ifstream is(path, std::ios::binary | std::ios::ate);
    if (!is) {
        return io_error_errno("read_file_bytes: cannot open", path);
    }
    const auto size = static_cast<std::uint64_t>(is.tellg());
    is.seekg(0);
    std::vector<std::byte> bytes(static_cast<std::size_t>(size));
    if (size != 0) {
        errno = 0;
        is.read(reinterpret_cast<char*>(bytes.data()),
                static_cast<std::streamsize>(bytes.size()));
        if (is.gcount() != static_cast<std::streamsize>(bytes.size())) {
            return io_error_errno("read_file_bytes: read failed on", path);
        }
    }
    return bytes;
}

Status atomic_write_file(const std::string& path,
                         const std::vector<std::byte>& bytes, bool sync,
                         obs::Registry* metrics) {
    obs::Histogram* fsync_ns =
        metrics != nullptr ? metrics->histogram("store_fsync_ns") : nullptr;
    const std::string tmp = path + kTmpSuffix;
    if (Status st = write_bytes_plain(tmp, bytes, sync, fsync_ns);
        !st.is_ok()) {
        std::error_code ec;
        fs::remove(tmp, ec);
        return st;
    }
    errno = 0;
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        const Status st = io_error_errno(
            "atomic_write_file: rename to '" + path + "' failed from", tmp);
        std::error_code ec;
        fs::remove(tmp, ec);
        return st;
    }
#ifdef P4LRU_POSIX_IO
    if (sync) {
        // Durability of the *name*: the rename is only on disk once the
        // directory entry is.  Failure here is reported but the install
        // itself already happened.
        const std::string dir = fs::path(path).parent_path().string();
        if (Status st = fsync_path(dir.empty() ? "." : dir, true, fsync_ns);
            !st.is_ok()) {
            return st;
        }
    }
#endif
    return Status::ok();
}

Status verify_checkpoint_image(const std::vector<std::byte>& image,
                               const std::string& origin) {
    Expected<RawLayout> raw = parse_raw(image, origin);
    if (!raw.is_ok()) return raw.status();
    const RawLayout& r = raw.value();
    if (!r.sealed) return Status::ok();  // v1: structural checks only
    const std::byte* p = image.data();
    const std::uint64_t footer_off =
        r.header_bytes + r.records_bytes + r.payload_bytes;
    const std::byte* footer = p + footer_off;
    const auto check = [&](std::uint64_t off, std::uint64_t len, int which,
                           const char* name) -> Status {
        const std::uint32_t stored = get_u32(footer + 4 * which);
        const std::uint32_t computed = crc_over(p + off, len);
        if (stored != computed) {
            return corrupt(std::string(name) + " CRC mismatch in " + origin,
                           off);
        }
        return Status::ok();
    };
    if (Status st = check(footer_off, 12, 3, "seal footer"); !st.is_ok()) {
        return st;
    }
    if (Status st = check(0, r.header_bytes, 0, "header"); !st.is_ok()) {
        return st;
    }
    if (Status st =
            check(r.header_bytes, r.records_bytes, 1, records_name(r));
        !st.is_ok()) {
        return st;
    }
    if (Status st = check(r.header_bytes + r.records_bytes, r.payload_bytes,
                          2, payload_name(r));
        !st.is_ok()) {
        return st;
    }
    return Status::ok();
}

Expected<ImageInfo> describe_checkpoint_image(
    const std::vector<std::byte>& image, const std::string& origin) {
    Expected<RawLayout> raw = parse_raw(image, origin);
    if (!raw.is_ok()) {
        // Header unreadable or framing broken: describe what we can only
        // if the magic resolved; otherwise propagate.
        return raw.status();
    }
    const RawLayout& r = raw.value();
    ImageInfo info;
    info.format = r.format;
    info.version = r.version;
    info.sealed = r.sealed;
    info.id = r.id;
    info.fingerprint = r.fingerprint;
    info.unit_count = r.unit_count;
    info.cursor = r.cursor;
    info.shard_count = r.shard_count;
    info.record_bytes = r.record_bytes;
    info.payload_bytes = r.payload_bytes;
    info.file_bytes = image.size();
    if (r.sealed) {
        const std::byte* p = image.data();
        const std::uint64_t footer_off =
            r.header_bytes + r.records_bytes + r.payload_bytes;
        const std::byte* footer = p + footer_off;
        const auto add = [&](const char* name, std::uint64_t begin,
                             std::uint64_t len, int which) {
            SectionCheck sc;
            sc.name = name;
            sc.begin = begin;
            sc.end = begin + len;
            sc.stored = get_u32(footer + 4 * which);
            sc.computed = crc_over(p + begin, len);
            sc.ok = sc.stored == sc.computed;
            info.sections.push_back(std::move(sc));
        };
        add("header", 0, r.header_bytes, 0);
        add(records_name(r), r.header_bytes, r.records_bytes, 1);
        add(payload_name(r), r.header_bytes + r.records_bytes,
            r.payload_bytes, 2);
        add("seal footer", footer_off, 12, 3);
    }
    info.verdict = verify_checkpoint_image(image, origin);
    return info;
}

Status DurableStore::ensure_dir() const {
    std::error_code ec;
    fs::create_directories(dir_, ec);
    if (ec) {
        return io_error("durable_store: cannot create directory '" + dir_ +
                        "': " + ec.message());
    }
    return Status::ok();
}

std::vector<GenerationInfo> DurableStore::list() const {
    std::vector<GenerationInfo> gens;
    std::error_code ec;
    fs::directory_iterator it(dir_, ec);
    if (ec) return gens;  // missing directory == empty store
    for (const auto& entry : it) {
        if (!entry.is_regular_file(ec)) continue;
        const std::string name = entry.path().filename().string();
        const std::uint64_t seq = parse_gen_seq(name);
        if (seq == 0) continue;  // .tmp leftovers, foreign files
        gens.push_back({seq, entry.path().string()});
    }
    std::sort(gens.begin(), gens.end(),
              [](const GenerationInfo& a, const GenerationInfo& b) {
                  return a.seq < b.seq;
              });
    return gens;
}

Expected<GenerationInfo> DurableStore::install(
    const SerializedCheckpoint& image) {
    Expected<InstallOutcome> out = install_with_crash(image, nullptr);
    if (!out.is_ok()) return out.status();
    return out.value().gen;
}

Expected<InstallOutcome> DurableStore::install_with_crash(
    const SerializedCheckpoint& image, const fault::CrashEvent* crash) {
    obs::Histogram* install_ns =
        cfg_.metrics != nullptr ? cfg_.metrics->histogram("store_install_ns")
                                : nullptr;
    ScopedNsTimer install_timer(install_ns);
    if (Status st = ensure_dir(); !st.is_ok()) return st;
    std::uint64_t seq = 0;
    for (const auto& g : list()) seq = std::max(seq, g.seq);
    ++seq;
    const std::string final_path =
        (fs::path(dir_) / gen_filename(seq)).string();
    InstallOutcome out;
    out.gen = {seq, final_path};
    if (crash != nullptr) {
        out.crashed = true;
        using fault::CrashPoint;
        switch (crash->point) {
            case CrashPoint::kBeforeWrite:
                return out;  // died before any byte hit disk
            case CrashPoint::kTornTemp:
            case CrashPoint::kTornInstall: {
                // Died mid-write: a strict prefix of the image, cut at a
                // section boundary, remains — at the temp name (normal
                // protocol) or at the final name (a filesystem whose
                // rename/overwrite is not atomic).  Either way the next
                // recovery must skip it.
                const std::uint64_t cut = torn_cut(image, crash->arg);
                std::vector<std::byte> prefix(
                    image.bytes.begin(),
                    image.bytes.begin() + static_cast<std::ptrdiff_t>(cut));
                const std::string where =
                    crash->point == CrashPoint::kTornTemp
                        ? final_path + kTmpSuffix
                        : final_path;
                if (Status st = write_bytes_plain(where, prefix, false);
                    !st.is_ok()) {
                    return st;
                }
                return out;
            }
            case CrashPoint::kBeforeRename: {
                // Full temp written and synced; the rename never happened.
                if (Status st = write_bytes_plain(final_path + kTmpSuffix,
                                                  image.bytes, cfg_.sync);
                    !st.is_ok()) {
                    return st;
                }
                return out;
            }
            case CrashPoint::kAfterInstall: {
                // Generation installed; died before pruning.
                if (Status st = atomic_write_file(final_path, image.bytes,
                                                  cfg_.sync, cfg_.metrics);
                    !st.is_ok()) {
                    return st;
                }
                out.installed = true;
                return out;
            }
            case CrashPoint::kBetweenEpochs:
                // The install itself completes; the crash fires later,
                // between dispatch epochs (handled by the supervisor).
                break;
        }
    }
    if (Status st = atomic_write_file(final_path, image.bytes, cfg_.sync,
                                      cfg_.metrics);
        !st.is_ok()) {
        return st;
    }
    out.installed = true;
    if (Status st = prune(); !st.is_ok()) return st;
    return out;
}

Status DurableStore::prune() const {
    std::vector<GenerationInfo> gens = list();
    if (gens.size() <= cfg_.retain) return Status::ok();
    // The newest generation that actually verifies is immune: a burst of
    // torn installs above it must never push the last recoverable state
    // out of the window.
    std::uint64_t newest_valid = 0;
    for (auto it = gens.rbegin(); it != gens.rend(); ++it) {
        Expected<std::vector<std::byte>> image = read_file_bytes(it->path);
        if (image.is_ok() &&
            verify_checkpoint_image(image.value(), it->path).is_ok()) {
            newest_valid = it->seq;
            break;
        }
    }
    Status first_error = Status::ok();
    const std::size_t drop = gens.size() - cfg_.retain;
    for (std::size_t i = 0; i < drop; ++i) {
        if (gens[i].seq == newest_valid) continue;
        std::error_code ec;
        fs::remove(gens[i].path, ec);
        if (ec && first_error.is_ok()) {
            first_error =
                io_error("durable_store: cannot remove old generation '" +
                         gens[i].path + "': " + ec.message());
        }
    }
    return first_error;
}

}  // namespace p4lru::replay
