#include "p4lru/replay/replay.hpp"

namespace p4lru::replay {

std::vector<ReplayOp<FlowKey, std::uint32_t>> ops_from_packets(
    std::span<const PacketRecord> trace) {
    std::vector<ReplayOp<FlowKey, std::uint32_t>> ops;
    ops.reserve(trace.size());
    for (const auto& p : trace) {
        ops.push_back({p.flow, p.len});
    }
    return ops;
}

}  // namespace p4lru::replay
