#include "p4lru/replay/checkpoint_io.hpp"

#include <array>
#include <cerrno>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <vector>

#include "p4lru/common/hash.hpp"

namespace p4lru::replay {
namespace {

constexpr std::array<char, 8> kMagic = {'P', '4', 'L', 'R', 'U',
                                        'C', 'K', 'P'};
constexpr std::uint32_t kVersionLegacy = 1;  // no seal footer
constexpr std::uint32_t kVersionSealed = 2;  // per-section CRC32 footer
constexpr std::uint64_t kStatsBytes = 4 * 8;   // ops/hits/misses/evictions
constexpr std::uint64_t kHeaderBytes = 152;
constexpr std::uint64_t kShardSliceBytes = kStatsBytes;
constexpr std::uint64_t kSealBytes = 16;  // 4 x CRC32

// Field offsets (documented in the header comment of checkpoint_io.hpp);
// named so error offsets stay in sync with the layout.
constexpr std::uint64_t kOffVersion = 8;
constexpr std::uint64_t kOffShardCount = 136;

void put_u32(std::vector<std::byte>& out, std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
        out.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xFF));
    }
}

void put_u64(std::vector<std::byte>& out, std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
        out.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xFF));
    }
}

void put_stats(std::vector<std::byte>& out, const ReplayStats& s) {
    put_u64(out, s.ops);
    put_u64(out, s.hits);
    put_u64(out, s.misses);
    put_u64(out, s.evictions);
}

std::uint32_t get_u32(const std::byte* p) {
    std::uint32_t v = 0;
    std::memcpy(&v, p, 4);
    return v;
}

std::uint64_t get_u64(const std::byte* p) {
    std::uint64_t v = 0;
    std::memcpy(&v, p, 8);
    return v;
}

ReplayStats get_stats(const std::byte* p) {
    ReplayStats s;
    s.ops = get_u64(p);
    s.hits = get_u64(p + 8);
    s.misses = get_u64(p + 16);
    s.evictions = get_u64(p + 24);
    return s;
}

std::uint32_t crc_over(const std::byte* p, std::uint64_t n) {
    return hash::crc32(std::span<const std::uint8_t>(
        reinterpret_cast<const std::uint8_t*>(p),
        static_cast<std::size_t>(n)));
}

}  // namespace

SerializedCheckpoint serialize_checkpoint(const ShardedCheckpoint& cp) {
    SerializedCheckpoint out;
    auto& buf = out.bytes;
    const std::uint64_t slices = cp.shard_stats.size() * kShardSliceBytes;
    buf.reserve(static_cast<std::size_t>(kHeaderBytes + slices +
                                         cp.base.planes.size() + kSealBytes));
    for (char c : kMagic) buf.push_back(static_cast<std::byte>(c));
    put_u32(buf, kVersionSealed);
    put_u32(buf, cp.base.layout_id);
    put_u64(buf, cp.base.plane_fingerprint);
    put_u64(buf, cp.base.unit_count);
    put_u64(buf, cp.base.cursor);
    put_stats(buf, cp.base.stats);
    put_u64(buf, cp.delivered_batches);
    put_u64(buf, cp.backpressure_waits);
    put_u64(buf, cp.park_wait_us);
    put_u64(buf, cp.drained_inline);
    put_u64(buf, cp.abandoned_workers);
    put_u64(buf, cp.scrub.scanned);
    put_u64(buf, cp.scrub.corrupt);
    put_u64(buf, cp.scrub.repaired);
    put_u64(buf, cp.shard_stats.size());
    put_u64(buf, cp.base.planes.size());
    out.section_ends.push_back(buf.size());  // header
    for (const auto& s : cp.shard_stats) put_stats(buf, s);
    out.section_ends.push_back(buf.size());  // shard slices
    buf.insert(buf.end(), cp.base.planes.begin(), cp.base.planes.end());
    out.section_ends.push_back(buf.size());  // plane image

    // Seal footer: one CRC per section, then a CRC over the three CRCs so a
    // flipped bit inside the footer itself is also caught.
    const std::uint32_t crc_header = crc_over(buf.data(), kHeaderBytes);
    const std::uint32_t crc_slices =
        crc_over(buf.data() + kHeaderBytes, slices);
    const std::uint32_t crc_planes = crc_over(
        buf.data() + kHeaderBytes + slices, cp.base.planes.size());
    const std::size_t seal_off = buf.size();
    put_u32(buf, crc_header);
    put_u32(buf, crc_slices);
    put_u32(buf, crc_planes);
    put_u32(buf, crc_over(buf.data() + seal_off, 12));
    out.section_ends.push_back(buf.size());  // footer == total
    return out;
}

Status write_checkpoint(const std::string& path,
                        const ShardedCheckpoint& cp) {
    const SerializedCheckpoint image = serialize_checkpoint(cp);
    errno = 0;
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    if (!os) {
        return io_error_errno("write_checkpoint: cannot open", path);
    }
    os.write(reinterpret_cast<const char*>(image.bytes.data()),
             static_cast<std::streamsize>(image.bytes.size()));
    os.flush();
    if (!os) {
        return io_error_errno("write_checkpoint: write failed to", path);
    }
    return Status::ok();
}

Status write_checkpoint(const std::string& path, const ReplayCheckpoint& cp) {
    ShardedCheckpoint wrapped;
    wrapped.base = cp;
    return write_checkpoint(path, wrapped);
}

Expected<ShardedCheckpoint> parse_checkpoint(
    const std::vector<std::byte>& image, const std::string& origin) {
    const std::uint64_t file_size = image.size();
    if (file_size < kHeaderBytes) {
        return truncated("checkpoint image of " + std::to_string(file_size) +
                             " bytes from '" + origin +
                             "' is shorter than the checkpoint header",
                         file_size);
    }
    const std::byte* head = image.data();
    if (std::memcmp(head, kMagic.data(), kMagic.size()) != 0) {
        return corrupt("bad magic in " + origin, 0);
    }
    const std::uint32_t version = get_u32(head + kOffVersion);
    if (version != kVersionLegacy && version != kVersionSealed) {
        return corrupt("unsupported checkpoint version " +
                           std::to_string(version) + " in " + origin,
                       kOffVersion);
    }
    const bool sealed = version == kVersionSealed;
    const std::uint64_t seal = sealed ? kSealBytes : 0;

    ShardedCheckpoint cp;
    cp.base.layout_id = get_u32(head + 12);
    cp.base.plane_fingerprint = get_u64(head + 16);
    cp.base.unit_count = static_cast<std::size_t>(get_u64(head + 24));
    cp.base.cursor = get_u64(head + 32);
    cp.base.stats = get_stats(head + 40);
    cp.delivered_batches = get_u64(head + 72);
    cp.backpressure_waits = get_u64(head + 80);
    cp.park_wait_us = get_u64(head + 88);
    cp.drained_inline = get_u64(head + 96);
    cp.abandoned_workers = get_u64(head + 104);
    cp.scrub.scanned = get_u64(head + 112);
    cp.scrub.corrupt = get_u64(head + 120);
    cp.scrub.repaired = get_u64(head + 128);
    const std::uint64_t shard_count = get_u64(head + kOffShardCount);
    const std::uint64_t plane_bytes = get_u64(head + 144);

    // Cross-check both count fields against the actual image size before any
    // allocation: a flipped bit must not drive a huge reserve or read loop.
    if (file_size < kHeaderBytes + seal) {
        return truncated("file of " + std::to_string(file_size) +
                             " bytes is shorter than header + seal footer",
                         file_size);
    }
    const std::uint64_t body = file_size - kHeaderBytes - seal;
    if (shard_count > body / kShardSliceBytes) {
        return corrupt("shard count " + std::to_string(shard_count) +
                           " exceeds file body of " + std::to_string(body) +
                           " bytes",
                       kOffShardCount);
    }
    const std::uint64_t slices = shard_count * kShardSliceBytes;
    if (plane_bytes > body - slices) {
        return truncated("plane image of " + std::to_string(plane_bytes) +
                             " bytes promised; only " +
                             std::to_string(body - slices) +
                             " bytes follow the shard slices",
                         file_size);
    }
    const std::uint64_t expected =
        kHeaderBytes + slices + plane_bytes + seal;
    if (file_size > expected) {
        return corrupt(std::to_string(file_size - expected) +
                           " trailing bytes after the " +
                           (sealed ? "seal footer" : "plane image"),
                       expected);
    }

    if (sealed) {
        // Verify every section's CRC before trusting any byte beyond the
        // structural checks; the reported offset points at the start of the
        // rotten section.
        const std::byte* p = image.data();
        const std::byte* footer = p + kHeaderBytes + slices + plane_bytes;
        const auto check = [&](std::uint64_t off, std::uint64_t len,
                               int which, const char* name) -> Status {
            const std::uint32_t stored = get_u32(footer + 4 * which);
            const std::uint32_t computed = crc_over(p + off, len);
            if (stored != computed) {
                return corrupt(std::string(name) + " CRC mismatch in " +
                                   origin + ": stored " +
                                   std::to_string(stored) + ", computed " +
                                   std::to_string(computed),
                               off);
            }
            return Status::ok();
        };
        if (Status st = check(kHeaderBytes + slices + plane_bytes, 12, 3,
                              "seal footer");
            !st.is_ok()) {
            return st;
        }
        if (Status st = check(0, kHeaderBytes, 0, "header"); !st.is_ok()) {
            return st;
        }
        if (Status st = check(kHeaderBytes, slices, 1, "shard slice");
            !st.is_ok()) {
            return st;
        }
        if (Status st = check(kHeaderBytes + slices, plane_bytes, 2,
                              "plane image");
            !st.is_ok()) {
            return st;
        }
    }

    cp.shard_stats.reserve(static_cast<std::size_t>(shard_count));
    for (std::uint64_t i = 0; i < shard_count; ++i) {
        cp.shard_stats.push_back(
            get_stats(image.data() + kHeaderBytes + i * kShardSliceBytes));
    }
    cp.base.planes.assign(
        image.begin() + static_cast<std::ptrdiff_t>(kHeaderBytes + slices),
        image.begin() +
            static_cast<std::ptrdiff_t>(kHeaderBytes + slices + plane_bytes));
    return cp;
}

Expected<ShardedCheckpoint> read_checkpoint_checked(const std::string& path) {
    errno = 0;
    std::ifstream is(path, std::ios::binary | std::ios::ate);
    if (!is) {
        return io_error_errno("read_checkpoint: cannot open", path);
    }
    const auto file_size = static_cast<std::uint64_t>(is.tellg());
    is.seekg(0);
    std::vector<std::byte> image(static_cast<std::size_t>(file_size));
    if (file_size != 0) {
        errno = 0;
        is.read(reinterpret_cast<char*>(image.data()),
                static_cast<std::streamsize>(image.size()));
        if (is.gcount() != static_cast<std::streamsize>(image.size())) {
            return io_error_errno("read_checkpoint: read failed on", path);
        }
    }
    return parse_checkpoint(image, path);
}

}  // namespace p4lru::replay
