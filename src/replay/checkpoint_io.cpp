#include "p4lru/replay/checkpoint_io.hpp"

#include <array>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <vector>

namespace p4lru::replay {
namespace {

constexpr std::array<char, 8> kMagic = {'P', '4', 'L', 'R', 'U',
                                        'C', 'K', 'P'};
constexpr std::uint32_t kVersion = 1;
constexpr std::uint64_t kStatsBytes = 4 * 8;   // ops/hits/misses/evictions
constexpr std::uint64_t kScrubBytes = 3 * 8;   // scanned/corrupt/repaired
constexpr std::uint64_t kHeaderBytes = 152;
constexpr std::uint64_t kShardSliceBytes = kStatsBytes;

// Field offsets (documented in the header comment of checkpoint_io.hpp);
// named so error offsets stay in sync with the layout.
constexpr std::uint64_t kOffVersion = 8;
constexpr std::uint64_t kOffShardCount = 136;

void put_u32(std::vector<char>& out, std::uint32_t v) {
    char b[4];
    std::memcpy(b, &v, 4);
    out.insert(out.end(), b, b + 4);
}

void put_u64(std::vector<char>& out, std::uint64_t v) {
    char b[8];
    std::memcpy(b, &v, 8);
    out.insert(out.end(), b, b + 8);
}

void put_stats(std::vector<char>& out, const ReplayStats& s) {
    put_u64(out, s.ops);
    put_u64(out, s.hits);
    put_u64(out, s.misses);
    put_u64(out, s.evictions);
}

std::uint32_t get_u32(const char* p) {
    std::uint32_t v = 0;
    std::memcpy(&v, p, 4);
    return v;
}

std::uint64_t get_u64(const char* p) {
    std::uint64_t v = 0;
    std::memcpy(&v, p, 8);
    return v;
}

ReplayStats get_stats(const char* p) {
    ReplayStats s;
    s.ops = get_u64(p);
    s.hits = get_u64(p + 8);
    s.misses = get_u64(p + 16);
    s.evictions = get_u64(p + 24);
    return s;
}

}  // namespace

Status write_checkpoint(const std::string& path,
                        const ShardedCheckpoint& cp) {
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    if (!os) {
        return io_error("write_checkpoint: cannot open " + path);
    }
    std::vector<char> head;
    head.reserve(kHeaderBytes + cp.shard_stats.size() * kShardSliceBytes);
    head.insert(head.end(), kMagic.begin(), kMagic.end());
    put_u32(head, kVersion);
    put_u32(head, cp.base.layout_id);
    put_u64(head, cp.base.plane_fingerprint);
    put_u64(head, cp.base.unit_count);
    put_u64(head, cp.base.cursor);
    put_stats(head, cp.base.stats);
    put_u64(head, cp.delivered_batches);
    put_u64(head, cp.backpressure_waits);
    put_u64(head, cp.park_wait_us);
    put_u64(head, cp.drained_inline);
    put_u64(head, cp.abandoned_workers);
    put_u64(head, cp.scrub.scanned);
    put_u64(head, cp.scrub.corrupt);
    put_u64(head, cp.scrub.repaired);
    put_u64(head, cp.shard_stats.size());
    put_u64(head, cp.base.planes.size());
    for (const auto& s : cp.shard_stats) put_stats(head, s);
    os.write(head.data(), static_cast<std::streamsize>(head.size()));
    if (!cp.base.planes.empty()) {
        os.write(reinterpret_cast<const char*>(cp.base.planes.data()),
                 static_cast<std::streamsize>(cp.base.planes.size()));
    }
    os.flush();
    if (!os) {
        return io_error("write_checkpoint: write failed: " + path);
    }
    return Status::ok();
}

Status write_checkpoint(const std::string& path, const ReplayCheckpoint& cp) {
    ShardedCheckpoint wrapped;
    wrapped.base = cp;
    return write_checkpoint(path, wrapped);
}

Expected<ShardedCheckpoint> read_checkpoint_checked(const std::string& path) {
    std::ifstream is(path, std::ios::binary | std::ios::ate);
    if (!is) {
        return io_error("read_checkpoint: cannot open " + path);
    }
    const auto file_size = static_cast<std::uint64_t>(is.tellg());
    is.seekg(0);

    if (file_size < kHeaderBytes) {
        return truncated("file of " + std::to_string(file_size) +
                             " bytes is shorter than the checkpoint header",
                         file_size);
    }
    std::array<char, kHeaderBytes> head{};
    is.read(head.data(), head.size());
    if (!is) {
        return io_error("header read failed: " + path);
    }
    if (std::memcmp(head.data(), kMagic.data(), kMagic.size()) != 0) {
        return corrupt("bad magic in " + path, 0);
    }
    const std::uint32_t version = get_u32(head.data() + kOffVersion);
    if (version != kVersion) {
        return corrupt("unsupported checkpoint version " +
                           std::to_string(version),
                       kOffVersion);
    }

    ShardedCheckpoint cp;
    cp.base.layout_id = get_u32(head.data() + 12);
    cp.base.plane_fingerprint = get_u64(head.data() + 16);
    cp.base.unit_count = static_cast<std::size_t>(get_u64(head.data() + 24));
    cp.base.cursor = get_u64(head.data() + 32);
    cp.base.stats = get_stats(head.data() + 40);
    cp.delivered_batches = get_u64(head.data() + 72);
    cp.backpressure_waits = get_u64(head.data() + 80);
    cp.park_wait_us = get_u64(head.data() + 88);
    cp.drained_inline = get_u64(head.data() + 96);
    cp.abandoned_workers = get_u64(head.data() + 104);
    cp.scrub.scanned = get_u64(head.data() + 112);
    cp.scrub.corrupt = get_u64(head.data() + 120);
    cp.scrub.repaired = get_u64(head.data() + 128);
    const std::uint64_t shard_count = get_u64(head.data() + kOffShardCount);
    const std::uint64_t plane_bytes = get_u64(head.data() + 144);

    // Cross-check both count fields against the actual file size before any
    // allocation: a flipped bit must not drive a huge reserve or read loop.
    const std::uint64_t body = file_size - kHeaderBytes;
    if (shard_count > body / kShardSliceBytes) {
        return corrupt("shard count " + std::to_string(shard_count) +
                           " exceeds file body of " + std::to_string(body) +
                           " bytes",
                       kOffShardCount);
    }
    const std::uint64_t slices = shard_count * kShardSliceBytes;
    if (plane_bytes > body - slices) {
        return truncated("plane image of " + std::to_string(plane_bytes) +
                             " bytes promised; only " +
                             std::to_string(body - slices) +
                             " bytes follow the shard slices",
                         file_size);
    }
    const std::uint64_t expected = kHeaderBytes + slices + plane_bytes;
    if (file_size > expected) {
        return corrupt(std::to_string(file_size - expected) +
                           " trailing bytes after the plane image",
                       expected);
    }

    cp.shard_stats.reserve(static_cast<std::size_t>(shard_count));
    std::array<char, kShardSliceBytes> slice{};
    for (std::uint64_t i = 0; i < shard_count; ++i) {
        is.read(slice.data(), slice.size());
        if (is.gcount() != static_cast<std::streamsize>(slice.size())) {
            return truncated(
                "shard slice " + std::to_string(i) + " of " +
                    std::to_string(shard_count) + " cut short",
                kHeaderBytes + i * kShardSliceBytes +
                    static_cast<std::uint64_t>(is.gcount()));
        }
        cp.shard_stats.push_back(get_stats(slice.data()));
    }

    cp.base.planes.resize(static_cast<std::size_t>(plane_bytes));
    if (plane_bytes != 0) {
        is.read(reinterpret_cast<char*>(cp.base.planes.data()),
                static_cast<std::streamsize>(plane_bytes));
        if (is.gcount() != static_cast<std::streamsize>(plane_bytes)) {
            return truncated(
                "plane image cut short",
                kHeaderBytes + slices +
                    static_cast<std::uint64_t>(is.gcount()));
        }
    }
    return cp;
}

}  // namespace p4lru::replay
