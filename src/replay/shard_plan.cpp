#include "p4lru/replay/shard_plan.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <thread>

namespace p4lru::replay {

ShardPlan ShardPlan::make(std::size_t units, std::size_t shards_requested) {
    auto plan = try_make(units, shards_requested);
    if (!plan.is_ok()) {
        throw std::invalid_argument("ShardPlan: " +
                                    plan.status().to_string());
    }
    return std::move(plan).value();
}

Expected<ShardPlan> ShardPlan::try_make(std::size_t units,
                                        std::size_t shards_requested) {
    if (units == 0) {
        return Status(ErrorCode::kInvalidArgument, "zero units");
    }
    const std::size_t shards =
        std::clamp<std::size_t>(shards_requested, 1, units);
    return ShardPlan(units, shards);
}

std::size_t default_shards() {
    if (const char* s = std::getenv("P4LRU_REPLAY_SHARDS")) {
        const long v = std::atol(s);
        if (v > 0) return static_cast<std::size_t>(v);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    if (hw <= 1) return 1;
    // Leave one hardware thread for the dispatcher; cap at 8 — shards beyond
    // that saturate the single dispatcher's hash-and-route throughput.
    return std::clamp<std::size_t>(hw - 1, 1, 8);
}

bool threads_profitable() {
    if (const char* s = std::getenv("P4LRU_REPLAY_MODE")) {
        if (std::strcmp(s, "threaded") == 0) return true;
        if (std::strcmp(s, "inline") == 0) return false;
    }
    return std::thread::hardware_concurrency() > 1;
}

}  // namespace p4lru::replay
