#include "p4lru/replay/affinity.hpp"

#if defined(__linux__)
#include <sched.h>
#include <unistd.h>
#endif

namespace p4lru::replay {

std::size_t pinnable_cpus() {
#if defined(__linux__)
    cpu_set_t allowed;
    CPU_ZERO(&allowed);
    if (sched_getaffinity(0, sizeof(allowed), &allowed) == 0) {
        const int n = CPU_COUNT(&allowed);
        if (n > 0) return static_cast<std::size_t>(n);
    }
    const long n = sysconf(_SC_NPROCESSORS_ONLN);
    return n > 0 ? static_cast<std::size_t>(n) : 1;
#else
    return 1;
#endif
}

bool pin_current_thread(std::size_t core) {
#if defined(__linux__)
    cpu_set_t allowed;
    CPU_ZERO(&allowed);
    // pid 0 = the calling thread for both affinity syscalls.
    if (sched_getaffinity(0, sizeof(allowed), &allowed) != 0) return false;
    const int count = CPU_COUNT(&allowed);
    if (count <= 0) return false;
    int want = static_cast<int>(core % static_cast<std::size_t>(count));
    cpu_set_t target;
    CPU_ZERO(&target);
    for (int cpu = 0; cpu < CPU_SETSIZE; ++cpu) {
        if (!CPU_ISSET(cpu, &allowed)) continue;
        if (want-- == 0) {
            CPU_SET(cpu, &target);
            return sched_setaffinity(0, sizeof(target), &target) == 0;
        }
    }
    return false;
#else
    (void)core;
    return false;
#endif
}

}  // namespace p4lru::replay
