#include "p4lru/trace/ycsb.hpp"

#include <stdexcept>

namespace p4lru::trace {

YcsbWorkload::YcsbWorkload(const YcsbConfig& cfg)
    : cfg_(cfg),
      chooser_(cfg.items, cfg.zipf_alpha, cfg.seed),
      rng_(cfg.seed ^ 0x6C5B7E3AULL) {
    if (cfg.items == 0) throw std::invalid_argument("YcsbWorkload: 0 items");
    if (cfg.read_fraction < 0.0 || cfg.read_fraction > 1.0) {
        throw std::invalid_argument("YcsbWorkload: bad read_fraction");
    }
}

YcsbOp YcsbWorkload::next() {
    YcsbOp op;
    op.key = chooser_.sample(rng_);
    op.type = rng_.chance(cfg_.read_fraction) ? OpType::kRead : OpType::kUpdate;
    return op;
}

std::vector<YcsbOp> YcsbWorkload::generate(std::size_t count) {
    std::vector<YcsbOp> ops;
    ops.reserve(count);
    for (std::size_t i = 0; i < count; ++i) ops.push_back(next());
    return ops;
}

}  // namespace p4lru::trace
