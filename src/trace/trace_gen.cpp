#include "p4lru/trace/trace_gen.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

#include "p4lru/common/zipf.hpp"

namespace p4lru::trace {
namespace {

/// Draw a Pareto-distributed flow size (heavy tail), truncated to [1, cap].
std::size_t pareto_size(rng::Xoshiro256& rng, double alpha, double xm,
                        std::size_t cap) {
    const double u = rng.uniform();
    const double x = xm / std::pow(1.0 - u, 1.0 / alpha);
    const auto size = static_cast<std::size_t>(x);
    return std::min<std::size_t>(std::max<std::size_t>(size, 1), cap);
}

/// Realistic packet-length mix: ~40% minimum-size, ~20% mid, ~40% near-MTU.
std::uint32_t packet_len(rng::Xoshiro256& rng) {
    const double u = rng.uniform();
    if (u < 0.40) return 64 + static_cast<std::uint32_t>(rng.below(16));
    if (u < 0.60) return 512 + static_cast<std::uint32_t>(rng.below(128));
    return 1400 + static_cast<std::uint32_t>(rng.below(100));
}

/// Deterministic distinct flow key for (segment, flow index). Keys never
/// collide across segments: segment id is embedded in the source address;
/// the destination comes from the shared Zipf-popular server pool.
FlowKey make_flow_key(std::size_t segment, std::size_t index,
                      std::uint32_t dst_ip, rng::Xoshiro256& rng) {
    FlowKey k;
    k.src_ip = static_cast<std::uint32_t>(0x0A000000u |
                                          ((segment & 0xFFu) << 16) |
                                          (index & 0xFFFFu));
    k.dst_ip = dst_ip;
    // Fold the high bits of the index into the ports so > 65536 flows per
    // segment remain distinct.
    k.src_port = static_cast<std::uint16_t>(1024 + ((index >> 16) & 0x7FFF));
    k.dst_port = static_cast<std::uint16_t>(rng.below(65535) + 1);
    k.proto = rng.chance(0.9) ? 6 : 17;  // mostly TCP, some UDP
    return k;
}

}  // namespace

std::vector<PacketRecord> generate_trace(const TraceConfig& cfg) {
    if (cfg.total_packets == 0 || cfg.segments == 0 || cfg.duration == 0) {
        throw std::invalid_argument("generate_trace: zero parameter");
    }
    if (cfg.segments > cfg.total_packets) {
        throw std::invalid_argument("generate_trace: more segments than packets");
    }

    std::vector<PacketRecord> out;
    out.reserve(cfg.total_packets + cfg.total_packets / 8);

    const TimeNs seg_duration = cfg.duration / cfg.segments;
    const std::size_t seg_packets = cfg.total_packets / cfg.segments;
    // Elephants get truncated when the trace is sliced into short segments,
    // exactly as slicing a real trace does: a flow cannot carry more packets
    // than its rate sustains within one slice. The super-linear exponent
    // reproduces the paper's flow-count growth (1.3e6 -> 2.4e6 flows from
    // CAIDA_1 to CAIDA_60 at constant packet count).
    const double shrink =
        std::pow(static_cast<double>(cfg.segments), 1.7);
    const std::size_t seg_cap = std::max<std::size_t>(
        4, static_cast<std::size_t>(
               static_cast<double>(cfg.flow_size_cap) / shrink));

    // Shared server pool: dst_hosts distinct addresses with Zipf popularity.
    const std::size_t pool_size =
        cfg.dst_hosts ? cfg.dst_hosts
                      : std::max<std::size_t>(64, cfg.total_packets / 64);
    std::vector<std::uint32_t> pool(pool_size);
    {
        rng::Xoshiro256 pool_rng(cfg.seed ^ 0xD57ULL);
        for (auto& ip : pool) {
            ip = static_cast<std::uint32_t>(pool_rng.next()) | 0x40000000u;
        }
    }
    const rng::ZipfSampler dst_zipf(pool_size, cfg.dst_zipf_alpha);

    for (std::size_t seg = 0; seg < cfg.segments; ++seg) {
        // Independent flow population per segment: fresh RNG stream.
        rng::Xoshiro256 rng(cfg.seed * 0x9E3779B97F4A7C15ULL + seg + 1);
        const TimeNs seg_start = seg * seg_duration;

        std::size_t emitted = 0;
        std::size_t flow_index = 0;
        while (emitted < seg_packets) {
            const std::uint32_t dst = pool[dst_zipf.sample(rng) - 1];
            const FlowKey key = make_flow_key(seg, flow_index++, dst, rng);
            const std::size_t size = std::min(
                pareto_size(rng, cfg.pareto_alpha, cfg.pareto_xm, seg_cap),
                seg_packets - emitted + 1);

            // The flow starts uniformly inside the segment and lives for a
            // duration that grows with its size (long flows span the
            // segment; mice are point events).
            const TimeNs start =
                seg_start + rng.below(std::max<TimeNs>(seg_duration, 1));
            const TimeNs seg_end = seg_start + seg_duration;
            // A flow lives long enough to pace its packets (~mean_pacing
            // per packet), clamped to its segment: slicing a trace
            // truncates flows at the cut, it never extends them.
            const TimeNs life = std::min<TimeNs>(
                std::max<TimeNs>(size * cfg.mean_pacing, kMicrosecond),
                seg_end > start ? seg_end - start : 1);

            // Emit the flow's packets in bursts: geometric burst sizes with
            // tiny intra-burst gaps — the temporal locality LRU rewards.
            std::size_t remaining = size;
            while (remaining > 0) {
                std::size_t burst = 1;
                while (burst < remaining &&
                       rng.chance(1.0 - 1.0 / cfg.burst_mean)) {
                    ++burst;
                }
                const TimeNs burst_start =
                    start + rng.below(std::max<TimeNs>(life, 1));
                for (std::size_t p = 0; p < burst; ++p) {
                    PacketRecord rec;
                    rec.ts = burst_start + p * cfg.intra_burst_gap;
                    rec.flow = key;
                    rec.len = packet_len(rng);
                    out.push_back(rec);
                }
                remaining -= burst;
                emitted += burst;
            }
        }
    }

    std::sort(out.begin(), out.end(),
              [](const PacketRecord& a, const PacketRecord& b) {
                  return a.ts < b.ts;
              });
    return out;
}

TraceStats compute_stats(const std::vector<PacketRecord>& trace,
                         TimeNs idle_timeout) {
    TraceStats s;
    s.packets = trace.size();
    if (trace.empty()) return s;

    // A flow is active from its first packet until `idle_timeout` after its
    // last (the usual flow-table activity notion); max_concurrent is the
    // peak of the active-flow count over time.
    std::unordered_map<FlowKey, std::pair<TimeNs, TimeNs>> span;
    for (const auto& p : trace) {
        s.total_bytes += p.len;
        auto [it, inserted] = span.try_emplace(p.flow, p.ts, p.ts);
        if (!inserted) {
            it->second.first = std::min(it->second.first, p.ts);
            it->second.second = std::max(it->second.second, p.ts);
        }
    }
    std::vector<std::pair<TimeNs, std::int32_t>> events;
    events.reserve(span.size() * 2);
    for (const auto& [flow, interval] : span) {
        events.emplace_back(interval.first, +1);
        events.emplace_back(interval.second + idle_timeout, -1);
    }
    std::sort(events.begin(), events.end());
    std::int64_t active = 0;
    std::int64_t peak = 0;
    for (const auto& [ts, delta] : events) {
        active += delta;
        peak = std::max(peak, active);
    }
    s.max_concurrent = static_cast<std::size_t>(peak);
    s.flows = span.size();
    s.duration = trace.back().ts - trace.front().ts;
    return s;
}

}  // namespace p4lru::trace
