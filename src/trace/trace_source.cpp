#include "p4lru/trace/trace_source.hpp"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#define P4LRU_TRACE_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define P4LRU_TRACE_HAVE_MMAP 0
#endif

namespace p4lru::trace {
namespace {

/// Open `path`, read its 20-byte header and validate it against the actual
/// on-disk size — the shared open path of both file-backed sources.
Expected<TraceHeaderInfo> read_and_validate_header(std::FILE* f,
                                                   const std::string& path) {
    errno = 0;
    if (std::fseek(f, 0, SEEK_END) != 0) {
        return io_error_errno("trace_source: seek failed on", path);
    }
    const long fsize = std::ftell(f);
    if (fsize < 0) {
        return io_error_errno("trace_source: tell failed on", path);
    }
    std::rewind(f);
    std::uint8_t hdr[kTraceHeaderBytes] = {};
    const auto file_size = static_cast<std::uint64_t>(fsize);
    if (file_size >= kTraceHeaderBytes) {
        errno = 0;
        if (std::fread(hdr, 1, sizeof(hdr), f) != sizeof(hdr)) {
            return io_error_errno("trace_source: header read failed on",
                                  path);
        }
    }
    return validate_trace_header(hdr, file_size, path);
}

/// Current on-disk size of an already-open file, for shrink detection.
Expected<std::uint64_t> current_file_size(int fd, std::FILE* f,
                                          const std::string& path) {
#if P4LRU_TRACE_HAVE_MMAP
    if (fd >= 0) {
        struct stat st{};
        errno = 0;
        if (::fstat(fd, &st) != 0) {
            return io_error_errno("trace_source: fstat failed on", path);
        }
        return static_cast<std::uint64_t>(st.st_size);
    }
#else
    (void)fd;
#endif
    errno = 0;
    const long pos = std::ftell(f);
    if (pos < 0 || std::fseek(f, 0, SEEK_END) != 0) {
        return io_error_errno("trace_source: size probe failed on", path);
    }
    const long end = std::ftell(f);
    if (end < 0 || std::fseek(f, pos, SEEK_SET) != 0) {
        return io_error_errno("trace_source: size probe failed on", path);
    }
    return static_cast<std::uint64_t>(end);
}

Status seek_out_of_range(std::uint64_t record_index, std::uint64_t count) {
    return Status(ErrorCode::kInvalidArgument,
                  "seek to record " + std::to_string(record_index) +
                      " past trace of " + std::to_string(count));
}

}  // namespace

// ---------------------------------------------------------------------------
// MmapSource

Expected<std::unique_ptr<MmapSource>> MmapSource::open(
    const std::string& path, const MmapSourceOptions& opts) {
    errno = 0;
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (!f) {
        return io_error_errno("trace_source: cannot open", path);
    }
    Expected<TraceHeaderInfo> info = read_and_validate_header(f, path);
    if (!info.is_ok()) {
        std::fclose(f);
        return info.status();
    }

    std::unique_ptr<MmapSource> src(new MmapSource());
    src->path_ = path;
    src->count_ = info.value().count;
    if (opts.metrics != nullptr) {
        src->obs_bytes_ = opts.metrics->counter("trace_bytes_read");
    }

#if P4LRU_TRACE_HAVE_MMAP
    errno = 0;
    src->fd_ = ::open(path.c_str(), O_RDONLY);
    if (src->fd_ < 0) {
        const Status st = io_error_errno("trace_source: cannot open", path);
        std::fclose(f);
        return st;
    }
    std::fclose(f);
    src->map_len_ = info.value().file_size;
    if (src->map_len_ > 0) {
        errno = 0;
        void* m = ::mmap(nullptr, static_cast<std::size_t>(src->map_len_),
                         PROT_READ, MAP_PRIVATE, src->fd_, 0);
        if (m == MAP_FAILED) {
            const Status st = io_error_errno("trace_source: mmap failed on",
                                             path);
            ::close(src->fd_);
            src->fd_ = -1;
            return st;
        }
        src->map_ = static_cast<const std::uint8_t*>(m);
        // Advisory only: a kernel that ignores it just readaheads less
        // aggressively.
        (void)::madvise(m, static_cast<std::size_t>(src->map_len_),
                        MADV_SEQUENTIAL);
    }
#else
    // No-mmap fallback: keep the stdio handle and serve batches with plain
    // buffered reads at the same offsets.
    src->file_ = f;
#endif
    return Expected<std::unique_ptr<MmapSource>>(std::move(src));
}

MmapSource::~MmapSource() {
#if P4LRU_TRACE_HAVE_MMAP
    if (map_ != nullptr) {
        ::munmap(const_cast<std::uint8_t*>(map_),
                 static_cast<std::size_t>(map_len_));
    }
    if (fd_ >= 0) ::close(fd_);
#endif
    if (file_ != nullptr) std::fclose(file_);
}

Expected<std::span<const PacketRecord>> MmapSource::next_batch(
    std::size_t max) {
    if (!error_.is_ok()) return error_;
    const std::size_t n = static_cast<std::size_t>(std::min<std::uint64_t>(
        std::min(max, kMaxBatchRecords), count_ - cursor_));
    if (n == 0) {
        return Expected<std::span<const PacketRecord>>(
            std::span<const PacketRecord>{});
    }
    const std::uint64_t begin =
        kTraceHeaderBytes + cursor_ * kTraceRecordBytes;
    const std::uint64_t end = begin + n * kTraceRecordBytes;

    // The mapping outlives the file contents: if the file shrank since
    // open, touching pages past the new EOF raises SIGBUS.  Re-check the
    // on-disk size before every decode and turn a shrink into a typed
    // error at the batch boundary.
    Expected<std::uint64_t> sz = current_file_size(fd_, file_, path_);
    if (!sz.is_ok()) {
        error_ = sz.status();
        return error_;
    }
    if (sz.value() < end) {
        error_ = Status(ErrorCode::kTruncated,
                        "trace shrank to " + std::to_string(sz.value()) +
                            " bytes under an open reader ('" + path_ + "')",
                        sz.value());
        return error_;
    }

    batch_.resize(n);
    if (map_ != nullptr) {
        const std::uint8_t* p = map_ + begin;
        for (std::size_t i = 0; i < n; ++i) {
            batch_[i] = decode_trace_record(p + i * kTraceRecordBytes);
        }
    } else {
        // Fallback path (no mmap): one buffered read per batch.
        std::vector<std::uint8_t> raw(n * kTraceRecordBytes);
        errno = 0;
        if (std::fseek(file_, static_cast<long>(begin), SEEK_SET) != 0 ||
            std::fread(raw.data(), 1, raw.size(), file_) != raw.size()) {
            error_ = io_error_errno("trace_source: read failed on", path_);
            return error_;
        }
        for (std::size_t i = 0; i < n; ++i) {
            batch_[i] = decode_trace_record(raw.data() +
                                            i * kTraceRecordBytes);
        }
    }
    cursor_ += n;
    if (obs_bytes_ != nullptr) {
        obs_bytes_->add(static_cast<std::uint64_t>(n) * kTraceRecordBytes);
    }
    return Expected<std::span<const PacketRecord>>(
        std::span<const PacketRecord>(batch_.data(), n));
}

Status MmapSource::seek(std::uint64_t record_index) {
    if (record_index > count_) {
        return seek_out_of_range(record_index, count_);
    }
    cursor_ = record_index;
    error_ = Status::ok();
    return Status::ok();
}

// ---------------------------------------------------------------------------
// ChunkedFileSource

Expected<std::unique_ptr<ChunkedFileSource>> ChunkedFileSource::open(
    const std::string& path, const ChunkedSourceOptions& opts) {
    errno = 0;
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (!f) {
        return io_error_errno("trace_source: cannot open", path);
    }
    Expected<TraceHeaderInfo> info = read_and_validate_header(f, path);
    if (!info.is_ok()) {
        std::fclose(f);
        return info.status();
    }

    std::unique_ptr<ChunkedFileSource> src(new ChunkedFileSource());
    src->path_ = path;
    src->count_ = info.value().count;
    src->file_ = f;
    src->faults_ = opts.faults;
    // Per-chunk reserve cap: whatever the header promises, no chunk
    // allocation exceeds the configured (and kMaxBatchRecords-clamped)
    // chunk size — the whole-file reader's cap, applied per chunk.
    std::size_t chunk = std::clamp<std::size_t>(opts.chunk_records, 1,
                                                kMaxBatchRecords);
    if (src->count_ > 0) {
        chunk = static_cast<std::size_t>(
            std::min<std::uint64_t>(chunk, src->count_));
    }
    src->chunk_records_ = chunk;
    src->queue_ = std::make_unique<replay::SpscQueue<Chunk>>(
        std::max<std::size_t>(opts.queue_chunks, 2));
    if (opts.metrics != nullptr) {
        src->obs_bytes_ = opts.metrics->counter("trace_bytes_read");
        src->obs_chunks_ = opts.metrics->counter("trace_chunks_queued");
        src->obs_stalls_ = opts.metrics->counter("trace_reader_stalls");
        src->obs_eintr_ =
            opts.metrics->counter("trace_reader_eintr_retries");
        src->obs_short_ = opts.metrics->counter("trace_reader_short_reads");
    }
    if (src->count_ == 0) {
        src->done_ = true;
    } else {
        src->start_reader(0);
    }
    return Expected<std::unique_ptr<ChunkedFileSource>>(std::move(src));
}

ChunkedFileSource::~ChunkedFileSource() {
    stop_reader();
    if (file_ != nullptr) std::fclose(file_);
}

void ChunkedFileSource::start_reader(std::uint64_t from_record) {
    reader_ = std::jthread([this, from_record](const std::stop_token& tok) {
        reader_main(tok, from_record);
    });
}

void ChunkedFileSource::stop_reader() {
    if (reader_.joinable()) {
        reader_.request_stop();
        reader_.join();
    }
}

bool ChunkedFileSource::push_chunk(Chunk&& c, const std::stop_token& tok) {
    Chunk tmp = std::move(c);
    // Bounded-queue backpressure: retry in short slices so a stop request
    // (seek / destruction) is observed promptly even with a full queue.
    while (!queue_->try_push_for(tmp, std::chrono::microseconds(500))) {
        if (tok.stop_requested()) return false;
    }
    return true;
}

void ChunkedFileSource::reader_main(const std::stop_token& tok,
                                    std::uint64_t rec) {
    errno = 0;
    if (std::fseek(file_,
                   static_cast<long>(kTraceHeaderBytes +
                                     rec * kTraceRecordBytes),
                   SEEK_SET) != 0) {
        Chunk err;
        err.st = io_error_errno("trace_source: seek failed on", path_);
        err.last = true;
        push_chunk(std::move(err), tok);
        return;
    }
    std::uint64_t chunk_idx = 0;
    std::vector<std::uint8_t> raw;
    while (!tok.stop_requested() && rec < count_) {
        const std::size_t n = static_cast<std::size_t>(
            std::min<std::uint64_t>(chunk_records_, count_ - rec));
        if (faults_ != nullptr) {
            if (const std::uint64_t us = faults_->io_slow_us(chunk_idx)) {
                std::this_thread::sleep_for(std::chrono::microseconds(us));
            }
            if (const std::uint64_t k =
                    faults_->io_eintr_retries(chunk_idx)) {
                // Simulated EINTR: the read is interrupted k times before
                // any data lands; each interruption re-enters the retry
                // loop a real reader needs around read(2).
                if (obs_eintr_ != nullptr) obs_eintr_->add(k);
            }
        }
        raw.resize(n * kTraceRecordBytes);
        // A short first read (injected, or a genuinely partial fread) must
        // be completed by a follow-up read — fread already loops for us, so
        // the injection splits the request in two to prove the chunk still
        // assembles correctly.
        std::size_t first = raw.size();
        if (faults_ != nullptr && faults_->io_short_read(chunk_idx)) {
            first = std::max<std::size_t>(n / 2, 1) * kTraceRecordBytes;
            if (obs_short_ != nullptr) obs_short_->add(1);
        }
        errno = 0;
        std::size_t got = std::fread(raw.data(), 1, first, file_);
        if (got == first && first < raw.size()) {
            got += std::fread(raw.data() + first, 1, raw.size() - first,
                              file_);
        }
        if (got != raw.size()) {
            // The header promised more records than the file now holds:
            // the file shrank (or rotted) under the reader.
            Chunk err;
            err.st = Status(
                ErrorCode::kTruncated,
                "record " + std::to_string(rec + got / kTraceRecordBytes) +
                    " of " + std::to_string(count_) + " cut short ('" +
                    path_ + "')",
                kTraceHeaderBytes + rec * kTraceRecordBytes + got);
            err.last = true;
            push_chunk(std::move(err), tok);
            return;
        }
        Chunk c;
        c.recs.reserve(n);
        for (std::size_t i = 0; i < n; ++i) {
            c.recs.push_back(
                decode_trace_record(raw.data() + i * kTraceRecordBytes));
        }
        if (obs_bytes_ != nullptr) {
            obs_bytes_->add(static_cast<std::uint64_t>(raw.size()));
        }
        if (!push_chunk(std::move(c), tok)) return;
        if (obs_chunks_ != nullptr) obs_chunks_->add(1);
        rec += n;
        ++chunk_idx;
    }
    if (tok.stop_requested()) return;
    Chunk end;
    end.last = true;
    push_chunk(std::move(end), tok);
}

void ChunkedFileSource::pop_chunk() {
    Chunk c;
    bool stalled = false;
    while (!queue_->try_pop(c)) {
        stalled = true;
        std::this_thread::yield();
    }
    if (stalled && obs_stalls_ != nullptr) obs_stalls_->add(1);
    if (!c.st.is_ok()) {
        error_ = c.st;
        done_ = true;
        current_ = Chunk{};
        current_off_ = 0;
        return;
    }
    if (c.last) {
        done_ = true;
        current_ = Chunk{};
        current_off_ = 0;
        return;
    }
    current_ = std::move(c);
    current_off_ = 0;
}

Expected<std::span<const PacketRecord>> ChunkedFileSource::next_batch(
    std::size_t max) {
    if (!error_.is_ok()) return error_;
    const std::size_t n = static_cast<std::size_t>(std::min<std::uint64_t>(
        std::min(max, kMaxBatchRecords), count_ - cursor_));
    if (n == 0) {
        return Expected<std::span<const PacketRecord>>(
            std::span<const PacketRecord>{});
    }
    if (current_off_ == current_.recs.size() && !done_) {
        pop_chunk();
        if (!error_.is_ok()) return error_;
    }
    const std::size_t avail = current_.recs.size() - current_off_;
    if (avail >= n) {
        // Fast path: the batch is a subspan of the chunk being drained —
        // no copy.  Valid until the next call, which may pop a new chunk.
        const std::span<const PacketRecord> out(
            current_.recs.data() + current_off_, n);
        current_off_ += n;
        cursor_ += n;
        return Expected<std::span<const PacketRecord>>(out);
    }
    // Straddle path: assemble the batch across chunk boundaries.
    stitch_.clear();
    stitch_.reserve(n);
    while (stitch_.size() < n) {
        const std::size_t have = current_.recs.size() - current_off_;
        if (have == 0) {
            if (done_) {
                // The reader delivered fewer records than the validated
                // header promised without reporting why — treat as
                // truncation (defensive; the reader normally reports it).
                error_ = Status(ErrorCode::kTruncated,
                                "trace stream ended at record " +
                                    std::to_string(cursor_ + stitch_.size()) +
                                    " of " + std::to_string(count_) + " ('" +
                                    path_ + "')");
                return error_;
            }
            pop_chunk();
            if (!error_.is_ok()) return error_;
            continue;
        }
        const std::size_t take = std::min(have, n - stitch_.size());
        stitch_.insert(stitch_.end(),
                       current_.recs.begin() +
                           static_cast<std::ptrdiff_t>(current_off_),
                       current_.recs.begin() +
                           static_cast<std::ptrdiff_t>(current_off_ + take));
        current_off_ += take;
    }
    cursor_ += n;
    return Expected<std::span<const PacketRecord>>(
        std::span<const PacketRecord>(stitch_.data(), n));
}

Status ChunkedFileSource::seek(std::uint64_t record_index) {
    if (record_index > count_) {
        return seek_out_of_range(record_index, count_);
    }
    stop_reader();
    // Fresh queue: anything the old reader had in flight belongs to the old
    // position.
    queue_ = std::make_unique<replay::SpscQueue<Chunk>>(queue_->capacity());
    current_ = Chunk{};
    current_off_ = 0;
    stitch_.clear();
    error_ = Status::ok();
    cursor_ = record_index;
    done_ = record_index == count_;
    if (!done_) start_reader(record_index);
    return Status::ok();
}

}  // namespace p4lru::trace
