#include "p4lru/trace/trace_io.hpp"

#include <array>
#include <cstring>
#include <fstream>
#include <stdexcept>

namespace p4lru::trace {
namespace {

constexpr std::array<char, 8> kMagic = {'P', '4', 'L', 'R', 'U',
                                        'T', 'R', 'C'};
constexpr std::uint32_t kVersion = 1;
constexpr std::size_t kRecordBytes = 8 + 4 + 4 + 2 + 2 + 1 + 3 + 4;

void put_record(std::ofstream& os, const PacketRecord& r) {
    std::array<std::uint8_t, kRecordBytes> buf{};
    std::size_t off = 0;
    const auto put = [&](const void* p, std::size_t n) {
        std::memcpy(buf.data() + off, p, n);
        off += n;
    };
    put(&r.ts, 8);
    put(&r.flow.src_ip, 4);
    put(&r.flow.dst_ip, 4);
    put(&r.flow.src_port, 2);
    put(&r.flow.dst_port, 2);
    put(&r.flow.proto, 1);
    off += 3;  // padding
    put(&r.len, 4);
    os.write(reinterpret_cast<const char*>(buf.data()),
             static_cast<std::streamsize>(buf.size()));
}

PacketRecord get_record(std::ifstream& is) {
    std::array<std::uint8_t, kRecordBytes> buf{};
    is.read(reinterpret_cast<char*>(buf.data()),
            static_cast<std::streamsize>(buf.size()));
    if (is.gcount() != static_cast<std::streamsize>(buf.size())) {
        throw std::runtime_error("read_trace: truncated record");
    }
    PacketRecord r;
    std::size_t off = 0;
    const auto get = [&](void* p, std::size_t n) {
        std::memcpy(p, buf.data() + off, n);
        off += n;
    };
    get(&r.ts, 8);
    get(&r.flow.src_ip, 4);
    get(&r.flow.dst_ip, 4);
    get(&r.flow.src_port, 2);
    get(&r.flow.dst_port, 2);
    get(&r.flow.proto, 1);
    off += 3;
    get(&r.len, 4);
    return r;
}

}  // namespace

void write_trace(const std::string& path,
                 const std::vector<PacketRecord>& records) {
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    if (!os) throw std::runtime_error("write_trace: cannot open " + path);
    os.write(kMagic.data(), kMagic.size());
    os.write(reinterpret_cast<const char*>(&kVersion), sizeof(kVersion));
    const std::uint64_t count = records.size();
    os.write(reinterpret_cast<const char*>(&count), sizeof(count));
    for (const auto& r : records) put_record(os, r);
    if (!os) throw std::runtime_error("write_trace: write failed: " + path);
}

std::vector<PacketRecord> read_trace(const std::string& path) {
    std::ifstream is(path, std::ios::binary);
    if (!is) throw std::runtime_error("read_trace: cannot open " + path);
    std::array<char, 8> magic{};
    is.read(magic.data(), magic.size());
    if (is.gcount() != static_cast<std::streamsize>(magic.size()) ||
        magic != kMagic) {
        throw std::runtime_error("read_trace: bad magic in " + path);
    }
    std::uint32_t version = 0;
    is.read(reinterpret_cast<char*>(&version), sizeof(version));
    if (!is || version != kVersion) {
        throw std::runtime_error("read_trace: unsupported version");
    }
    std::uint64_t count = 0;
    is.read(reinterpret_cast<char*>(&count), sizeof(count));
    if (!is) throw std::runtime_error("read_trace: truncated header");
    std::vector<PacketRecord> out;
    out.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) out.push_back(get_record(is));
    return out;
}

}  // namespace p4lru::trace
