#include "p4lru/trace/trace_io.hpp"

#include <array>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <stdexcept>

namespace p4lru::trace {
namespace {

constexpr std::array<char, 8> kMagic = {'P', '4', 'L', 'R', 'U',
                                        'T', 'R', 'C'};
constexpr std::uint32_t kVersion = 1;

void put_record(std::ofstream& os, const PacketRecord& r) {
    std::array<std::uint8_t, kTraceRecordBytes> buf{};
    encode_trace_record(r, buf.data());
    os.write(reinterpret_cast<const char*>(buf.data()),
             static_cast<std::streamsize>(buf.size()));
}

}  // namespace

PacketRecord decode_trace_record(const std::uint8_t* buf) {
    PacketRecord r;
    std::size_t off = 0;
    const auto get = [&](void* p, std::size_t n) {
        std::memcpy(p, buf + off, n);
        off += n;
    };
    get(&r.ts, 8);
    get(&r.flow.src_ip, 4);
    get(&r.flow.dst_ip, 4);
    get(&r.flow.src_port, 2);
    get(&r.flow.dst_port, 2);
    get(&r.flow.proto, 1);
    off += 3;
    get(&r.len, 4);
    return r;
}

void encode_trace_record(const PacketRecord& r, std::uint8_t* buf) {
    std::size_t off = 0;
    const auto put = [&](const void* p, std::size_t n) {
        std::memcpy(buf + off, p, n);
        off += n;
    };
    put(&r.ts, 8);
    put(&r.flow.src_ip, 4);
    put(&r.flow.dst_ip, 4);
    put(&r.flow.src_port, 2);
    put(&r.flow.dst_port, 2);
    put(&r.flow.proto, 1);
    std::memset(buf + off, 0, 3);  // padding
    off += 3;
    put(&r.len, 4);
}

Expected<TraceHeaderInfo> validate_trace_header(const std::uint8_t* hdr,
                                                std::uint64_t file_size,
                                                const std::string& path) {
    if (file_size < kTraceHeaderBytes) {
        return Status(ErrorCode::kTruncated,
                      "file of " + std::to_string(file_size) +
                          " bytes is shorter than the header",
                      file_size);
    }
    if (std::memcmp(hdr, kMagic.data(), kMagic.size()) != 0) {
        return Status(ErrorCode::kCorrupt, "bad magic in " + path, 0);
    }
    std::uint32_t version = 0;
    std::memcpy(&version, hdr + kMagic.size(), sizeof(version));
    if (version != kVersion) {
        return Status(ErrorCode::kCorrupt,
                      "unsupported version " + std::to_string(version),
                      kMagic.size());
    }
    std::uint64_t count = 0;
    std::memcpy(&count, hdr + kMagic.size() + sizeof(version), sizeof(count));
    // Sanity-cap the count against the actual file size: a flipped bit in
    // the count field must not drive a huge allocation or a long read loop.
    const std::uint64_t body = file_size - kTraceHeaderBytes;
    if (count > body / kTraceRecordBytes) {
        return Status(ErrorCode::kCorrupt,
                      "record count " + std::to_string(count) +
                          " exceeds file body of " + std::to_string(body) +
                          " bytes (" +
                          std::to_string(body / kTraceRecordBytes) +
                          " records)",
                      kMagic.size() + sizeof(version));
    }
    if (body != count * kTraceRecordBytes) {
        return Status(ErrorCode::kTruncated,
                      "file body is " + std::to_string(body) +
                          " bytes; header promises " +
                          std::to_string(count * kTraceRecordBytes),
                      file_size);
    }
    return TraceHeaderInfo{count, file_size};
}

void write_trace(const std::string& path,
                 const std::vector<PacketRecord>& records) {
    errno = 0;
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    if (!os) {
        throw std::runtime_error(
            io_error_errno("write_trace: cannot open", path).to_string());
    }
    os.write(kMagic.data(), kMagic.size());
    os.write(reinterpret_cast<const char*>(&kVersion), sizeof(kVersion));
    const std::uint64_t count = records.size();
    os.write(reinterpret_cast<const char*>(&count), sizeof(count));
    for (const auto& r : records) put_record(os, r);
    os.flush();
    if (!os) {
        throw std::runtime_error(
            io_error_errno("write_trace: write failed to", path)
                .to_string());
    }
}

Expected<std::vector<PacketRecord>> read_trace_checked(
    const std::string& path) {
    errno = 0;
    std::ifstream is(path, std::ios::binary | std::ios::ate);
    if (!is) {
        return io_error_errno("read_trace: cannot open", path);
    }
    const auto file_size = static_cast<std::uint64_t>(is.tellg());
    is.seekg(0);

    std::array<std::uint8_t, kTraceHeaderBytes> hdr{};
    if (file_size >= kTraceHeaderBytes) {
        errno = 0;
        is.read(reinterpret_cast<char*>(hdr.data()),
                static_cast<std::streamsize>(hdr.size()));
        if (!is) {
            return io_error_errno("read_trace: header read failed on", path);
        }
    }
    Expected<TraceHeaderInfo> info =
        validate_trace_header(hdr.data(), file_size, path);
    if (!info.is_ok()) return info.status();
    const std::uint64_t count = info.value().count;

    std::vector<PacketRecord> out;
    out.reserve(count);
    std::array<std::uint8_t, kTraceRecordBytes> buf{};
    for (std::uint64_t i = 0; i < count; ++i) {
        is.read(reinterpret_cast<char*>(buf.data()),
                static_cast<std::streamsize>(buf.size()));
        if (is.gcount() != static_cast<std::streamsize>(buf.size())) {
            return Status(
                ErrorCode::kTruncated,
                "record " + std::to_string(i) + " of " +
                    std::to_string(count) + " cut short",
                kTraceHeaderBytes + i * kTraceRecordBytes +
                    static_cast<std::uint64_t>(is.gcount()));
        }
        out.push_back(decode_trace_record(buf.data()));
    }
    return out;
}

std::vector<PacketRecord> read_trace(const std::string& path) {
    auto r = read_trace_checked(path);
    if (!r.is_ok()) {
        throw std::runtime_error("read_trace: " + r.status().to_string() +
                                 " [" + path + "]");
    }
    return std::move(r).value();
}

}  // namespace p4lru::trace
