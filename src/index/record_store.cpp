#include "p4lru/index/record_store.hpp"

#include <algorithm>
#include <stdexcept>

namespace p4lru::index {

RecordAddress RecordStore::allocate(std::span<const std::uint8_t> payload) {
    const std::uint64_t slot = slabs_.size() + 1;  // slot 0 = null
    const RecordAddress addr = slot * kRecordBytes;
    if ((addr & ~kAddressMask) != 0) {
        throw std::length_error("RecordStore: 48-bit address space exhausted");
    }
    Record r{};
    std::copy_n(payload.data(), std::min(payload.size(), kRecordBytes),
                r.begin());
    slabs_.push_back(r);
    return addr;
}

std::size_t RecordStore::slot_of(RecordAddress addr) const {
    if (addr == kNullRecord || addr % kRecordBytes != 0) {
        throw std::out_of_range("RecordStore: malformed address");
    }
    const std::size_t slot = addr / kRecordBytes - 1;
    if (slot >= slabs_.size()) {
        throw std::out_of_range("RecordStore: address beyond store");
    }
    return slot;
}

const RecordStore::Record& RecordStore::read(RecordAddress addr) const {
    return slabs_[slot_of(addr)];
}

void RecordStore::write(RecordAddress addr,
                        std::span<const std::uint8_t> payload) {
    Record& r = slabs_[slot_of(addr)];
    r.fill(0);
    std::copy_n(payload.data(), std::min(payload.size(), kRecordBytes),
                r.begin());
}

bool RecordStore::valid(RecordAddress addr) const noexcept {
    if (addr == kNullRecord || addr % kRecordBytes != 0) return false;
    return addr / kRecordBytes - 1 < slabs_.size();
}

}  // namespace p4lru::index
