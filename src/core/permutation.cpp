#include "p4lru/core/permutation.hpp"

#include <algorithm>
#include <numeric>
#include <sstream>
#include <stdexcept>

namespace p4lru::core {

Permutation::Permutation(std::size_t n) : map_(n) {
    if (n == 0) throw std::invalid_argument("Permutation: size 0");
    std::iota(map_.begin(), map_.end(), std::size_t{0});
}

Permutation::Permutation(std::initializer_list<std::size_t> bottom_row)
    : Permutation(std::vector<std::size_t>(bottom_row)) {}

Permutation::Permutation(const std::vector<std::size_t>& bottom_row)
    : map_(bottom_row.size()) {
    for (std::size_t i = 0; i < bottom_row.size(); ++i) {
        if (bottom_row[i] < 1 || bottom_row[i] > bottom_row.size()) {
            throw std::invalid_argument("Permutation: entry out of range");
        }
        map_[i] = bottom_row[i] - 1;
    }
    validate();
}

void Permutation::validate() const {
    std::vector<bool> seen(map_.size(), false);
    for (const std::size_t v : map_) {
        if (seen[v]) throw std::invalid_argument("Permutation: not bijective");
        seen[v] = true;
    }
}

std::size_t Permutation::operator()(std::size_t i) const {
    if (i < 1 || i > map_.size()) {
        throw std::out_of_range("Permutation: index");
    }
    return map_[i - 1] + 1;
}

Permutation Permutation::compose(const Permutation& other) const {
    if (size() != other.size()) {
        throw std::invalid_argument("Permutation: size mismatch");
    }
    std::vector<std::size_t> out(size());
    for (std::size_t j = 0; j < size(); ++j) {
        out[j] = other.map_[map_[j]] + 1;  // (p x q)(j) = q(p(j))
    }
    return Permutation(out);
}

Permutation Permutation::inverse() const {
    std::vector<std::size_t> out(size());
    for (std::size_t j = 0; j < size(); ++j) {
        out[map_[j]] = j + 1;
    }
    return Permutation(out);
}

Permutation Permutation::rotation(std::size_t n, std::size_t i) {
    if (i < 1 || i > n) throw std::out_of_range("rotation: i");
    std::vector<std::size_t> row(n);
    for (std::size_t j = 1; j <= n; ++j) {
        if (j < i) {
            row[j - 1] = j + 1;
        } else if (j == i) {
            row[j - 1] = 1;
        } else {
            row[j - 1] = j;
        }
    }
    return Permutation(row);
}

bool Permutation::is_even() const {
    // Count transpositions via cycle decomposition: a cycle of length L
    // contributes L-1 transpositions.
    std::vector<bool> seen(map_.size(), false);
    std::size_t transpositions = 0;
    for (std::size_t i = 0; i < map_.size(); ++i) {
        if (seen[i]) continue;
        std::size_t len = 0;
        for (std::size_t j = i; !seen[j]; j = map_[j]) {
            seen[j] = true;
            ++len;
        }
        transpositions += len - 1;
    }
    return transpositions % 2 == 0;
}

std::uint64_t Permutation::lehmer_rank() const {
    std::uint64_t rank = 0;
    const std::size_t n = map_.size();
    for (std::size_t i = 0; i < n; ++i) {
        std::size_t smaller = 0;
        for (std::size_t j = i + 1; j < n; ++j) {
            smaller += map_[j] < map_[i] ? 1 : 0;
        }
        rank += smaller * factorial(n - 1 - i);
    }
    return rank;
}

Permutation Permutation::from_lehmer_rank(std::size_t n, std::uint64_t rank) {
    if (rank >= factorial(n)) throw std::out_of_range("lehmer rank");
    std::vector<std::size_t> pool(n);
    std::iota(pool.begin(), pool.end(), std::size_t{1});
    std::vector<std::size_t> row;
    row.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t f = factorial(n - 1 - i);
        const auto idx = static_cast<std::size_t>(rank / f);
        rank %= f;
        row.push_back(pool[idx]);
        pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(idx));
    }
    return Permutation(row);
}

std::string Permutation::to_string() const {
    std::ostringstream os;
    os << '(';
    for (std::size_t i = 1; i <= size(); ++i) {
        os << i << (i == size() ? "" : " ");
    }
    os << " / ";
    for (std::size_t i = 0; i < size(); ++i) {
        os << map_[i] + 1 << (i + 1 == size() ? "" : " ");
    }
    os << ')';
    return os.str();
}

std::uint64_t factorial(std::size_t n) {
    if (n > 20) throw std::overflow_error("factorial: n > 20");
    std::uint64_t f = 1;
    for (std::size_t i = 2; i <= n; ++i) f *= i;
    return f;
}

}  // namespace p4lru::core
