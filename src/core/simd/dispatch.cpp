// Runtime CPU-feature dispatch for the SoaSlab scan kernels: one cpuid
// probe, environment overrides, and the rebind registry that lets tests and
// benchmarks switch every live ScanDispatch instantiation in-process.
#include "p4lru/core/simd/scan_kernels.hpp"

#include <cstdlib>
#include <cstring>
#include <mutex>
#include <vector>

#include "p4lru/obs/metrics.hpp"

namespace p4lru::core::simd {

const char* kernel_name(ScanKernel k) noexcept {
    switch (k) {
        case ScanKernel::kScalar:
            return "scalar";
        case ScanKernel::kSse2:
            return "sse2";
        case ScanKernel::kAvx2:
            return "avx2";
        case ScanKernel::kNeon:
            return "neon";
    }
    return "unknown";
}

CpuFeatures cpu_features() noexcept {
    CpuFeatures f;
#if defined(P4LRU_SIMD_X86)
    f.sse2 = true;  // x86-64 baseline
    f.avx2 = __builtin_cpu_supports("avx2") != 0;
#elif defined(P4LRU_SIMD_NEON)
    f.neon = true;  // AArch64 baseline
#endif
    return f;
}

bool kernel_available(ScanKernel k) noexcept {
    const CpuFeatures f = cpu_features();
    switch (k) {
        case ScanKernel::kScalar:
            return true;
        case ScanKernel::kSse2:
            return f.sse2;
        case ScanKernel::kAvx2:
            return f.avx2;
        case ScanKernel::kNeon:
            return f.neon;
    }
    return false;
}

namespace {

ScanKernel resolve_dispatched() noexcept {
    if (const char* s = std::getenv("P4LRU_FORCE_SCALAR");
        s && s[0] != '\0' && s[0] != '0') {
        return ScanKernel::kScalar;
    }
    const CpuFeatures f = cpu_features();
    if (const char* s = std::getenv("P4LRU_SCAN_KERNEL")) {
        if (std::strcmp(s, "scalar") == 0) return ScanKernel::kScalar;
        if (std::strcmp(s, "sse2") == 0 && f.sse2) return ScanKernel::kSse2;
        if (std::strcmp(s, "avx2") == 0 && f.avx2) return ScanKernel::kAvx2;
        if (std::strcmp(s, "neon") == 0 && f.neon) return ScanKernel::kNeon;
        // Unknown or unavailable name: fall through to the probe ladder.
    }
    if (f.avx2) return ScanKernel::kAvx2;
    if (f.sse2) return ScanKernel::kSse2;
    if (f.neon) return ScanKernel::kNeon;
    return ScanKernel::kScalar;
}

// Guards the registry and the override word together so register_and_bind
// cannot interleave with a set_kernel_override rebind sweep.
std::mutex& registry_mutex() {
    static std::mutex m;
    return m;
}

std::vector<detail::RebindFn>& registry() {
    static std::vector<detail::RebindFn> v;
    return v;
}

// -1 = no override; otherwise the ScanKernel value forced by
// set_kernel_override.  Written under registry_mutex, read lock-free by
// active_kernel().
std::atomic<int> g_override{-1};

ScanKernel active_kernel_locked() noexcept {
    const int o = g_override.load(std::memory_order_relaxed);
    return o >= 0 ? static_cast<ScanKernel>(o) : dispatched_kernel();
}

// Kernel-selection gauge on the process-wide registry: every (re)bind —
// first resolve, override, override clear — publishes the enum value, so a
// sampler snapshot names the kernel actually driving the scans.
void publish_kernel_gauge(ScanKernel k) noexcept {
    obs::set_global_gauge("simd_active_kernel",
                          static_cast<std::int64_t>(k));
}

}  // namespace

ScanKernel dispatched_kernel() noexcept {
    static const ScanKernel k = resolve_dispatched();
    return k;
}

ScanKernel active_kernel() noexcept {
    const int o = g_override.load(std::memory_order_acquire);
    return o >= 0 ? static_cast<ScanKernel>(o) : dispatched_kernel();
}

bool set_kernel_override(ScanKernel k) {
    if (!kernel_available(k)) return false;
    std::lock_guard<std::mutex> lock(registry_mutex());
    g_override.store(static_cast<int>(k), std::memory_order_release);
    for (detail::RebindFn f : registry()) f(k);
    publish_kernel_gauge(k);
    return true;
}

void clear_kernel_override() {
    std::lock_guard<std::mutex> lock(registry_mutex());
    g_override.store(-1, std::memory_order_release);
    const ScanKernel k = dispatched_kernel();
    for (detail::RebindFn f : registry()) f(k);
    publish_kernel_gauge(k);
}

namespace detail {

void register_and_bind(RebindFn f) {
    std::lock_guard<std::mutex> lock(registry_mutex());
    auto& r = registry();
    bool seen = false;
    for (RebindFn g : r) seen |= (g == f);
    if (!seen) r.push_back(f);
    const ScanKernel k = active_kernel_locked();
    f(k);
    publish_kernel_gauge(k);
}

}  // namespace detail

}  // namespace p4lru::core::simd
