#include "p4lru/core/p4lru4.hpp"

#include <stdexcept>

#include "p4lru/core/lru_state.hpp"
#include "p4lru/core/state_codec.hpp"

namespace p4lru::core::codec4 {
namespace {

/// The four V4 elements in code order: e, (12)(34), (13)(24), (14)(23).
/// With this ordering the group product is XOR on the codes (tested).
Permutation v4_element(std::uint8_t code) {
    switch (code) {
        case 0: return Permutation({1, 2, 3, 4});
        case 1: return Permutation({2, 1, 4, 3});
        case 2: return Permutation({3, 4, 1, 2});
        case 3: return Permutation({4, 3, 2, 1});
        default: throw std::out_of_range("v4_element: code > 3");
    }
}

std::uint8_t encode_v4(const Permutation& p) {
    for (std::uint8_t c = 0; c < 4; ++c) {
        if (v4_element(c) == p) return c;
    }
    throw std::invalid_argument("encode_v4: not a V4 element");
}

/// Extend a Table-1 S3 code to the S4 subgroup fixing position 4.
Permutation sigma_element(std::uint8_t code) {
    const Permutation s3 = codec::decode_lru3(code);
    return Permutation({s3(1), s3(2), s3(3), 4});
}

std::uint8_t encode_sigma(const Permutation& p) {
    if (p(4) != 4) throw std::invalid_argument("encode_sigma: moves 4");
    return codec::encode_lru3(Permutation({p(1), p(2), p(3)}));
}

Lru4Tables build_tables() {
    Lru4Tables t;
    for (std::uint8_t op = 0; op < 4; ++op) {
        const Permutation r_inv =
            Permutation::rotation(4, op + 1u).inverse();
        const auto [sig_r, v_r] = decompose_state(r_inv);
        const Permutation sigma_r = sigma_element(sig_r);
        const Permutation vr = v4_element(v_r);
        for (std::uint8_t s = 0; s < 6; ++s) {
            const Permutation sigma_s = sigma_element(s);
            // sigma' = sigma_r x sigma_s (left multiplication).
            t.sigma_next[op][s] = encode_sigma(sigma_r.compose(sigma_s));
            // w = sigma_s^-1 x v_r x sigma_s (conjugation keeps V4).
            const Permutation w =
                sigma_s.inverse().compose(vr).compose(sigma_s);
            t.w[op][s] = encode_v4(w);
        }
    }
    for (std::uint8_t s = 0; s < 6; ++s) {
        for (std::uint8_t v = 0; v < 4; ++v) {
            const Permutation state = compose_state(s, v);
            t.slot1[s * 4u + v] = static_cast<std::uint8_t>(state(1));
            t.slot4[s * 4u + v] = static_cast<std::uint8_t>(state(4));
        }
    }
    return t;
}

}  // namespace

const Lru4Tables& tables() {
    static const Lru4Tables t = build_tables();
    return t;
}

Permutation compose_state(std::uint8_t sigma, std::uint8_t v) {
    // S = sigma x v in the paper's convention: S(j) = v(sigma(j)).
    return sigma_element(sigma).compose(v4_element(v));
}

std::pair<std::uint8_t, std::uint8_t> decompose_state(const Permutation& p) {
    if (p.size() != 4) throw std::invalid_argument("decompose_state: size");
    // v is the unique V4 element with v(4) = p(4); then sigma = p x v^-1 =
    // p x v (every V4 element is its own inverse) fixes 4.
    std::uint8_t v_code = 0;
    for (std::uint8_t c = 0; c < 4; ++c) {
        if (v4_element(c)(4) == p(4)) {
            v_code = c;
            break;
        }
    }
    const Permutation sigma = p.compose(v4_element(v_code));
    return {encode_sigma(sigma), v_code};
}

bool verify_lru4_codec() {
    // V4 codes multiply as XOR.
    for (std::uint8_t a = 0; a < 4; ++a) {
        for (std::uint8_t b = 0; b < 4; ++b) {
            if (encode_v4(v4_element(a).compose(v4_element(b))) != (a ^ b)) {
                return false;
            }
        }
    }
    // Decomposition is a bijection over all 24 states.
    for (std::uint64_t rank = 0; rank < factorial(4); ++rank) {
        const Permutation p = Permutation::from_lehmer_rank(4, rank);
        const auto [s, v] = decompose_state(p);
        if (!(compose_state(s, v) == p)) return false;
    }
    // Component transitions match Algorithm 1's S <- R^-1 x S exactly.
    const auto& t = tables();
    for (std::uint8_t s = 0; s < 6; ++s) {
        for (std::uint8_t v = 0; v < 4; ++v) {
            const Permutation state = compose_state(s, v);
            for (std::uint8_t op = 0; op < 4; ++op) {
                auto ref = LruState<4>::from_permutation(state);
                ref.apply_hit(op + 1u);
                const std::uint8_t s2 = t.sigma_next[op][s];
                const std::uint8_t v2 = t.w[op][s] ^ v;
                if (!(compose_state(s2, v2) == ref.to_permutation())) {
                    return false;
                }
                // Slot tables agree with the composed permutation.
                if (t.slot1[s2 * 4u + v2] !=
                    ref.to_permutation()(1)) {
                    return false;
                }
            }
        }
    }
    return true;
}

}  // namespace p4lru::core::codec4
