#include "p4lru/core/state_codec.hpp"

#include <stdexcept>

#include "p4lru/core/lru_state.hpp"

namespace p4lru::core::codec {

std::uint8_t encode_lru3(const Permutation& p) {
    if (p.size() != 3) throw std::invalid_argument("encode_lru3: size != 3");
    for (std::uint8_t code = 0; code < 6; ++code) {
        const auto& row = kLru3Decode[code];
        if (p(1) == row[0] && p(2) == row[1] && p(3) == row[2]) return code;
    }
    throw std::logic_error("encode_lru3: unreachable");
}

Permutation decode_lru3(std::uint8_t code) {
    if (code > 5) throw std::out_of_range("decode_lru3: code > 5");
    const auto& row = kLru3Decode[code];
    return Permutation({row[0], row[1], row[2]});
}

namespace {

/// Reference transition: Algorithm-1 state update via LruState<3>.
std::uint8_t reference_lru3_transition(std::uint8_t code, std::size_t i) {
    auto state = LruState<3>::from_permutation(decode_lru3(code));
    state.apply_hit(i);
    return encode_lru3(state.to_permutation());
}

}  // namespace

bool verify_lru3_codec() {
    for (std::uint8_t code = 0; code < 6; ++code) {
        if (lru3_op1(code) != reference_lru3_transition(code, 1)) return false;
        if (lru3_op2(code) != reference_lru3_transition(code, 2)) return false;
        if (lru3_op3(code) != reference_lru3_transition(code, 3)) return false;
        // S(1)/S(3) lookup tables must agree with the decoded permutation.
        const Permutation p = decode_lru3(code);
        if (kLru3S1[code] != p(1)) return false;
        if (kLru3S3[code] != p(3)) return false;
        // Parity property claimed by the paper: even permutations get even
        // codes.
        if (p.is_even() != (code % 2 == 0)) return false;
    }
    return true;
}

bool verify_lru2_codec() {
    const Permutation identity({1, 2});
    const Permutation swapped({2, 1});
    const auto encode = [&](const Permutation& p) -> std::uint8_t {
        return p == identity ? 0 : 1;
    };
    for (std::uint8_t code = 0; code < 2; ++code) {
        const Permutation p = code == 0 ? identity : swapped;
        for (std::size_t i = 1; i <= 2; ++i) {
            auto state = LruState<2>::from_permutation(p);
            state.apply_hit(i);
            const std::uint8_t want = encode(state.to_permutation());
            const std::uint8_t got = i == 1 ? lru2_op1(code) : lru2_op2(code);
            if (want != got) return false;
        }
        if (lru2_s1(code) != p(1)) return false;
        if (lru2_s2(code) != p(2)) return false;
    }
    return true;
}

}  // namespace p4lru::core::codec
