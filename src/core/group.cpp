#include "p4lru/core/group.hpp"

#include <algorithm>
#include <map>
#include <numeric>
#include <set>
#include <stdexcept>

namespace p4lru::core::group {

Cyclic::Cyclic(std::uint32_t n) : n_(n) {
    if (n == 0) throw std::invalid_argument("Cyclic: order 0");
}

std::uint32_t Cyclic::mul(std::uint32_t a, std::uint32_t b) const {
    if (a >= n_ || b >= n_) throw std::out_of_range("Cyclic: element");
    return (a + b) % n_;
}

std::uint32_t Cyclic::inverse(std::uint32_t a) const {
    if (a >= n_) throw std::out_of_range("Cyclic: element");
    return a == 0 ? 0 : n_ - a;
}

CayleyGroup::CayleyGroup(std::vector<std::vector<std::uint32_t>> table)
    : table_(std::move(table)) {
    const std::size_t n = table_.size();
    if (n == 0) throw std::invalid_argument("CayleyGroup: empty");
    for (const auto& row : table_) {
        if (row.size() != n) {
            throw std::invalid_argument("CayleyGroup: non-square table");
        }
        for (const auto v : row) {
            if (v >= n) throw std::invalid_argument("CayleyGroup: bad entry");
        }
    }
    // Locate the identity: the element e with e*x == x and x*e == x for all x.
    bool found = false;
    for (std::uint32_t e = 0; e < n; ++e) {
        bool ok = true;
        for (std::uint32_t x = 0; x < n && ok; ++x) {
            ok = table_[e][x] == x && table_[x][e] == x;
        }
        if (ok) {
            identity_ = e;
            found = true;
            break;
        }
    }
    if (!found) throw std::invalid_argument("CayleyGroup: no identity");
}

std::uint32_t CayleyGroup::mul(std::uint32_t a, std::uint32_t b) const {
    if (a >= order() || b >= order()) {
        throw std::out_of_range("CayleyGroup: element");
    }
    return table_[a][b];
}

std::uint32_t CayleyGroup::inverse(std::uint32_t a) const {
    for (std::uint32_t b = 0; b < order(); ++b) {
        if (mul(a, b) == identity_) return b;
    }
    throw std::logic_error("CayleyGroup: no inverse (not a group)");
}

bool CayleyGroup::valid() const {
    const auto n = static_cast<std::uint32_t>(order());
    // Latin square (cancellation) check.
    for (std::uint32_t a = 0; a < n; ++a) {
        std::set<std::uint32_t> row(table_[a].begin(), table_[a].end());
        if (row.size() != n) return false;
        std::set<std::uint32_t> col;
        for (std::uint32_t b = 0; b < n; ++b) col.insert(table_[b][a]);
        if (col.size() != n) return false;
    }
    // Associativity (cubic; orders here are <= 24).
    for (std::uint32_t a = 0; a < n; ++a) {
        for (std::uint32_t b = 0; b < n; ++b) {
            for (std::uint32_t c = 0; c < n; ++c) {
                if (mul(mul(a, b), c) != mul(a, mul(b, c))) return false;
            }
        }
    }
    return true;
}

CayleyGroup CayleyGroup::symmetric(std::size_t n) {
    const std::uint64_t order = factorial(n);
    std::vector<Permutation> elems;
    elems.reserve(order);
    for (std::uint64_t r = 0; r < order; ++r) {
        elems.push_back(Permutation::from_lehmer_rank(n, r));
    }
    std::vector<std::vector<std::uint32_t>> table(
        order, std::vector<std::uint32_t>(order));
    for (std::uint64_t a = 0; a < order; ++a) {
        for (std::uint64_t b = 0; b < order; ++b) {
            table[a][b] = static_cast<std::uint32_t>(
                elems[a].compose(elems[b]).lehmer_rank());
        }
    }
    return CayleyGroup(std::move(table));
}

CayleyGroup CayleyGroup::direct_product(const CayleyGroup& h,
                                        const CayleyGroup& k) {
    const std::size_t n = h.order() * k.order();
    std::vector<std::vector<std::uint32_t>> table(
        n, std::vector<std::uint32_t>(n));
    const auto kk = static_cast<std::uint32_t>(k.order());
    for (std::uint32_t a = 0; a < n; ++a) {
        for (std::uint32_t b = 0; b < n; ++b) {
            const std::uint32_t hm = h.mul(a / kk, b / kk);
            const std::uint32_t km = k.mul(a % kk, b % kk);
            table[a][b] = hm * kk + km;
        }
    }
    return CayleyGroup(std::move(table));
}

CayleyGroup CayleyGroup::klein_four() {
    // C2 x C2 written out: elements {e, a, b, ab}.
    return CayleyGroup({{0, 1, 2, 3},
                        {1, 0, 3, 2},
                        {2, 3, 0, 1},
                        {3, 2, 1, 0}});
}

bool is_normal_subgroup(const CayleyGroup& g,
                        const std::vector<std::uint32_t>& normal) {
    const std::set<std::uint32_t> h(normal.begin(), normal.end());
    if (!h.contains(g.identity())) return false;
    for (const auto a : h) {
        for (const auto b : h) {
            if (!h.contains(g.mul(a, b))) return false;  // closure
        }
        if (!h.contains(g.inverse(a))) return false;
    }
    // g h g^-1 subset of h for every g.
    for (std::uint32_t x = 0; x < g.order(); ++x) {
        const std::uint32_t xi = g.inverse(x);
        for (const auto a : h) {
            if (!h.contains(g.mul(g.mul(x, a), xi))) return false;
        }
    }
    return true;
}

CayleyGroup quotient(const CayleyGroup& g,
                     const std::vector<std::uint32_t>& h) {
    if (!is_normal_subgroup(g, h)) {
        throw std::invalid_argument("quotient: subgroup not normal");
    }
    // Build left cosets xH and index them.
    std::map<std::set<std::uint32_t>, std::uint32_t> coset_index;
    std::vector<std::set<std::uint32_t>> cosets;
    std::vector<std::uint32_t> element_coset(g.order());
    for (std::uint32_t x = 0; x < g.order(); ++x) {
        std::set<std::uint32_t> coset;
        for (const auto a : h) coset.insert(g.mul(x, a));
        auto [it, inserted] =
            coset_index.try_emplace(coset,
                                    static_cast<std::uint32_t>(cosets.size()));
        if (inserted) cosets.push_back(coset);
        element_coset[x] = it->second;
    }
    const std::size_t q = cosets.size();
    std::vector<std::vector<std::uint32_t>> table(
        q, std::vector<std::uint32_t>(q));
    for (std::uint32_t a = 0; a < q; ++a) {
        for (std::uint32_t b = 0; b < q; ++b) {
            const std::uint32_t ra = *cosets[a].begin();
            const std::uint32_t rb = *cosets[b].begin();
            table[a][b] = element_coset[g.mul(ra, rb)];
        }
    }
    return CayleyGroup(std::move(table));
}

namespace {

bool try_isomorphism(const CayleyGroup& a, const CayleyGroup& b,
                     std::vector<std::uint32_t>& phi,
                     std::vector<bool>& used, std::uint32_t next) {
    const auto n = static_cast<std::uint32_t>(a.order());
    if (next == n) return true;
    for (std::uint32_t img = 0; img < n; ++img) {
        if (used[img]) continue;
        phi[next] = img;
        used[img] = true;
        bool ok = true;
        // Check all products among already-mapped elements.
        for (std::uint32_t x = 0; x <= next && ok; ++x) {
            const std::uint32_t xy = a.mul(x, next);
            const std::uint32_t yx = a.mul(next, x);
            if (xy <= next && b.mul(phi[x], phi[next]) != phi[xy]) ok = false;
            if (ok && yx <= next && b.mul(phi[next], phi[x]) != phi[yx]) {
                ok = false;
            }
        }
        if (ok && try_isomorphism(a, b, phi, used, next + 1)) return true;
        used[img] = false;
    }
    return false;
}

}  // namespace

bool isomorphic(const CayleyGroup& a, const CayleyGroup& b) {
    if (a.order() != b.order()) return false;
    // Quick invariant: multiset of element orders must match.
    const auto orders = [](const CayleyGroup& g) {
        std::vector<std::uint32_t> out;
        for (std::uint32_t x = 0; x < g.order(); ++x) {
            std::uint32_t acc = x;
            std::uint32_t ord = 1;
            while (acc != g.identity()) {
                acc = g.mul(acc, x);
                ++ord;
            }
            out.push_back(ord);
        }
        std::sort(out.begin(), out.end());
        return out;
    };
    if (orders(a) != orders(b)) return false;

    std::vector<std::uint32_t> phi(a.order());
    std::vector<bool> used(a.order(), false);
    return try_isomorphism(a, b, phi, used, 0);
}

}  // namespace p4lru::core::group
