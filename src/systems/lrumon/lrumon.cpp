#include "p4lru/systems/lrumon/lrumon.hpp"

#include <algorithm>
#include <stdexcept>

#include "p4lru/common/hash.hpp"

namespace p4lru::systems::lrumon {

LruMonSystem::LruMonSystem(
    std::unique_ptr<FlowFilter> filter,
    std::unique_ptr<cache::ReplacementPolicy<std::uint32_t, FlowLen>> policy,
    LruMonConfig cfg)
    : filter_(std::move(filter)), policy_(std::move(policy)), cfg_(cfg) {
    if (!filter_) throw std::invalid_argument("LruMonSystem: null filter");
    if (!policy_) throw std::invalid_argument("LruMonSystem: null policy");
}

void LruMonSystem::process(const PacketRecord& pkt) {
    if (packets_ == 0) first_ts_ = pkt.ts;
    last_ts_ = std::max(last_ts_, pkt.ts);
    ++packets_;

    if (cfg_.track_ground_truth) {
        true_bytes_[pkt.flow] += pkt.len;
    }

    const std::uint32_t fp = hash::fingerprint32(pkt.flow);
    if (cfg_.track_ground_truth) fp_owner_.try_emplace(fp, pkt.flow);

    // Tower filter pass.
    const std::uint64_t est = filter_->add_and_estimate(fp, pkt.len, pkt.ts);
    if (est < cfg_.threshold) {
        ++filtered_;  // mouse traffic: not measured
        return;
    }

    // Cache array pass: write-cache semantics (AddMerge-configured policy).
    ++elephants_;
    const auto a = policy_->fill(fp, pkt.len, pkt.ts);
    if (a.hit) {
        ++hits_;
        return;
    }
    // Cache miss: upload <f, fp', len'>. When the policy kept its occupant
    // (timeout baseline), this packet's bytes ride along in the upload so
    // measurement stays exact for elephants.
    if (a.inserted) {
        analyzer_.on_upload(pkt.flow, fp, a.evicted ? a.evicted_key : 0,
                            a.evicted ? a.evicted_value : 0);
    } else {
        analyzer_.on_upload(pkt.flow, fp, fp, pkt.len);
    }
}

void LruMonSystem::finish() {
    // Intentionally empty: report() credits still-cached entries through a
    // non-destructive overlay, so there is no teardown state to flush.
}

LruMonReport LruMonSystem::report() const {
    LruMonReport r;
    r.packets = packets_;
    r.filtered_packets = filtered_;
    r.elephant_packets = elephants_;
    r.cache_hits = hits_;
    r.uploads = analyzer_.uploads();
    const double secs =
        last_ts_ > first_ts_
            ? static_cast<double>(last_ts_ - first_ts_) / 1e9
            : 1.0;
    r.upload_kpps = static_cast<double>(r.uploads) / secs / 1e3;
    r.cache_miss_rate =
        elephants_ == 0
            ? 0.0
            : static_cast<double>(elephants_ - hits_) /
                  static_cast<double>(elephants_);

    if (cfg_.track_ground_truth) {
        // Finalize on demand: entries still cached in the data plane are
        // credited to their flows through the analyzer's fp table without
        // mutating it — u64 sums and maxes only, so the accounting is
        // iteration-order-independent and report() is idempotent.
        std::unordered_map<FlowKey, std::uint64_t> residual;
        policy_->for_each([&](const std::uint32_t& fp, const FlowLen& len) {
            if (const FlowKey* flow = analyzer_.flow_of(fp)) {
                residual[*flow] += len;
            }
        });
        for (const auto& [flow, bytes] : true_bytes_) {
            r.total_bytes += bytes;
            std::uint64_t measured = analyzer_.measured_bytes(flow);
            if (const auto it = residual.find(flow); it != residual.end()) {
                measured += it->second;
            }
            if (measured > bytes) {
                ++r.overestimated_flows;
            } else {
                r.max_flow_error =
                    std::max(r.max_flow_error, bytes - measured);
            }
            r.measured_bytes += std::min(measured, bytes);
        }
        r.total_error_rate =
            r.total_bytes == 0
                ? 0.0
                : static_cast<double>(r.total_bytes - r.measured_bytes) /
                      static_cast<double>(r.total_bytes);
    }
    return r;
}

}  // namespace p4lru::systems::lrumon
