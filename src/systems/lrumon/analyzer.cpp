#include "p4lru/systems/lrumon/analyzer.hpp"

namespace p4lru::systems::lrumon {

void Analyzer::on_upload(const FlowKey& flow, std::uint32_t flow_fp,
                         std::uint32_t evicted_fp,
                         std::uint64_t evicted_len) {
    ++uploads_;
    // Register the missing flow: <f, fp(f)> into T_fp, <f, 0> into T_len.
    if (t_fp_.try_emplace(flow, flow_fp).second) {
        t_len_.try_emplace(flow, 0);
    }
    fp_to_flow_[flow_fp] = flow;
    if (evicted_fp != 0) credit(evicted_fp, evicted_len);
}

void Analyzer::on_flush(std::uint32_t fp, std::uint64_t len) {
    credit(fp, len);
}

void Analyzer::credit(std::uint32_t fp, std::uint64_t len) {
    const auto it = fp_to_flow_.find(fp);
    if (it == fp_to_flow_.end()) {
        ++unmatched_;
        return;
    }
    t_len_[it->second] += len;
}

std::uint64_t Analyzer::measured_bytes(const FlowKey& flow) const {
    const auto it = t_len_.find(flow);
    return it == t_len_.end() ? 0 : it->second;
}

}  // namespace p4lru::systems::lrumon
