#include "p4lru/systems/lruindex/driver.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <vector>

#include "p4lru/common/stats.hpp"
#include "p4lru/sim/event_queue.hpp"

namespace p4lru::systems::lruindex {

DriverReport run_driver(const DriverConfig& cfg, DbServer& server,
                        IndexCache* cache) {
    if (cfg.threads == 0 || cfg.queries == 0) {
        throw std::invalid_argument("run_driver: zero threads/queries");
    }
    if (cfg.use_cache && cache == nullptr) {
        throw std::invalid_argument("run_driver: cache required");
    }
    if (cfg.flaky != nullptr && cfg.retry.max_attempts == 0) {
        throw std::invalid_argument("run_driver: zero retry attempts");
    }

    sim::EventQueue q;
    trace::YcsbWorkload workload(cfg.workload);
    const TimeNs half = cfg.net_delay / 2;

    struct Shared {
        std::uint64_t issued = 0;
        std::uint64_t completed = 0;
        std::uint64_t misses = 0;
        std::uint64_t wrong = 0;
        std::uint64_t retries = 0;
        std::uint64_t failed = 0;
        TimeNs last_done = 0;
        TimeNs lock_free_at = 0;
        stats::Running latency_us;
    };
    auto shared = std::make_shared<Shared>();

    // One in-flight query per client thread; completion chains the next.
    // std::function recursion via a held callable.
    struct Issuer {
        const DriverConfig* cfg;
        DbServer* server;
        IndexCache* cache;
        sim::EventQueue* q;
        trace::YcsbWorkload* workload;
        std::shared_ptr<Shared> sh;
        TimeNs half;

        void issue(TimeNs now) {
            if (sh->issued >= cfg->queries) return;
            const std::uint64_t seq = sh->issued++;
            const DbKey key = workload->next().key;
            const TimeNs t0 = now;
            // Client -> switch.
            q->schedule(now + half, [this, key, t0, seq] {
                const TimeNs t_sw = q->now();
                CacheHeader hdr;
                if (cfg->use_cache) hdr = cache->query(key);
                if (!hdr.hit()) ++sh->misses;
                // Switch -> server.
                serve_at(t_sw + half, key, t0, hdr, seq, 0);
            });
        }

        /// One server attempt for query `seq`.  A refusal (flaky service)
        /// re-sends after retry_backoff(retry, attempt) — exponential,
        /// clamped at retry.max_backoff — until max_attempts, then the
        /// query completes as failed — the closed loop never wedges on a
        /// dead dependency.
        void serve_at(TimeNs when, DbKey key, TimeNs t0, CacheHeader hdr,
                      std::uint64_t seq, std::uint32_t attempt) {
            q->schedule(when, [this, key, t0, hdr, seq, attempt] {
                const TimeNs arrive = q->now();
                if (cfg->flaky != nullptr && cfg->flaky->fails(seq, attempt)) {
                    if (attempt + 1 < cfg->retry.max_attempts) {
                        ++sh->retries;
                        const TimeNs backoff =
                            retry_backoff(cfg->retry, attempt);
                        serve_at(arrive + backoff, key, t0, hdr, seq,
                                 attempt + 1);
                    } else {
                        ++sh->failed;
                        complete(arrive + half, t0);
                    }
                    return;
                }
                const ServeResult res = server->serve(key, hdr);
                TimeNs done;
                if (res.used_index && res.lock_time > 0) {
                    const TimeNs start = std::max(arrive, sh->lock_free_at);
                    sh->lock_free_at = start + res.lock_time;
                    done = start + res.lock_time + res.service_time;
                } else {
                    done = arrive + res.service_time;
                }
                if (!res.valid || res.addr != server->address_of(key)) {
                    ++sh->wrong;
                }
                // Server -> switch (reply pass updates the cache).
                q->schedule(done + half, [this, key, t0, hdr, res] {
                    const TimeNs t_sw2 = q->now();
                    if (cfg->use_cache) {
                        cache->reply(key, res.addr, hdr, t_sw2);
                    }
                    complete(t_sw2 + half, t0);
                });
            });
        }

        /// Switch -> client; completion issues the next query.
        void complete(TimeNs when, TimeNs t0) {
            q->schedule(when, [this, t0] {
                const TimeNs t_end = q->now();
                ++sh->completed;
                sh->last_done = std::max(sh->last_done, t_end);
                sh->latency_us.add(static_cast<double>(t_end - t0) / 1000.0);
                issue(t_end);
            });
        }
    };

    Issuer issuer{&cfg, &server, cache, &q, &workload, shared, half};
    for (std::size_t c = 0; c < cfg.threads; ++c) {
        issuer.issue(0);
    }
    q.run();

    DriverReport r;
    r.queries = shared->completed;
    r.miss_rate = shared->completed == 0
                      ? 0.0
                      : static_cast<double>(shared->misses) /
                            static_cast<double>(shared->issued);
    r.avg_latency_us = shared->latency_us.mean();
    r.wrong_replies = shared->wrong;
    r.retries = shared->retries;
    r.failed_queries = shared->failed;
    if (shared->last_done > 0) {
        r.throughput_ktps = static_cast<double>(shared->completed) /
                            (static_cast<double>(shared->last_done) / 1e9) /
                            1e3;
    }
    return r;
}

}  // namespace p4lru::systems::lruindex
