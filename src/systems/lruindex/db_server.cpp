#include "p4lru/systems/lruindex/db_server.hpp"

#include <cstring>
#include <stdexcept>

#include "p4lru/common/hash.hpp"

namespace p4lru::systems::lruindex {
namespace {

/// Deterministic 64-byte payload for key k (verifiable by tests).
std::array<std::uint8_t, index::RecordStore::kRecordBytes> make_payload(
    DbKey k) {
    std::array<std::uint8_t, index::RecordStore::kRecordBytes> p{};
    for (std::size_t i = 0; i < p.size(); i += 8) {
        const std::uint64_t v = hash::mix64(k + i);
        std::memcpy(p.data() + i, &v, 8);
    }
    return p;
}

}  // namespace

DbServer::DbServer(std::uint64_t items, ServerCosts costs)
    : items_(items), costs_(costs) {
    if (items == 0) throw std::invalid_argument("DbServer: zero items");
    for (std::uint64_t k = 0; k < items; ++k) {
        const auto payload = make_payload(k);
        const auto addr = store_.allocate(
            std::span<const std::uint8_t>(payload.data(), payload.size()));
        tree_.insert(k, addr);
    }
}

ServeResult DbServer::serve(DbKey key, const CacheHeader& hdr) const {
    ServeResult r;
    if (hdr.hit() && store_.valid(hdr.cached_index)) {
        // Index bypass: the switch told us where the record lives.
        r.addr = hdr.cached_index;
        r.service_time = costs_.base + costs_.record_fetch;
        r.used_index = false;
        r.valid = true;
        r.record = store_.read(r.addr);
        return r;
    }
    const auto fr = tree_.find(key);
    const TimeNs walk = costs_.per_index_hop * fr.node_hops;
    r.lock_time = static_cast<TimeNs>(costs_.index_lock_fraction *
                                      static_cast<double>(walk));
    r.service_time = costs_.base + walk - r.lock_time + costs_.record_fetch;
    r.used_index = true;
    if (fr.value) {
        r.addr = *fr.value;
        r.valid = true;
        r.record = store_.read(r.addr);
    }
    return r;
}

index::RecordAddress DbServer::address_of(DbKey key) const {
    const auto fr = tree_.find(key);
    return fr.value.value_or(index::kNullRecord);
}

}  // namespace p4lru::systems::lruindex
