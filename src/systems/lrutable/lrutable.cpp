#include "p4lru/systems/lrutable/lrutable.hpp"

#include <stdexcept>

#include "p4lru/common/hash.hpp"

namespace p4lru::systems::lrutable {

std::uint32_t NatTable::lookup(VirtualAddress va) const {
    // A pre-provisioned translation: deterministic, collision-free enough
    // for correctness checks, never equal to the placeholder or zero.
    std::uint8_t b[4];
    for (int i = 0; i < 4; ++i) b[i] = static_cast<std::uint8_t>(va >> (8 * i));
    std::uint32_t ra = hash::murmur3_32(
        std::span<const std::uint8_t>(b, 4), 0x7A57AB1Eu);
    if (ra == 0 || ra == kPlaceholder) ra = 0x0A0A0A0Au;
    return ra;
}

LruTableSystem::LruTableSystem(std::unique_ptr<Policy> policy,
                               LruTableConfig cfg)
    : policy_(std::move(policy)), cfg_(cfg) {
    if (!policy_) throw std::invalid_argument("LruTableSystem: null policy");
    if (cfg_.track_similarity) {
        if (cfg_.similarity_max_accesses == 0) {
            throw std::invalid_argument(
                "LruTableSystem: similarity tracking needs max accesses");
        }
        similarity_ =
            std::make_unique<cache::SimilarityTracker<VirtualAddress>>(
                cfg_.similarity_max_accesses);
    }
}

void LruTableSystem::apply_fills(TimeNs now) {
    while (!pending_.empty() && pending_.front().ready_at <= now) {
        const PendingFill f = pending_.front();
        pending_.pop_front();
        // The control-plane answer re-enters the data plane as a normal
        // write-path update carrying the real address.
        const auto a = policy_->fill(f.va, f.real_address, f.ready_at);
        if (similarity_) {
            if (a.evicted) similarity_->on_evict(a.evicted_key);
            if (a.inserted) similarity_->on_access(f.va);
        }
    }
}

TimeNs LruTableSystem::process(const PacketRecord& pkt) {
    apply_fills(pkt.ts);
    ++packets_;

    const VirtualAddress va = pkt.flow.dst_ip;
    const auto a = policy_->access(va, kPlaceholder, pkt.ts);
    if (similarity_) {
        if (a.evicted) similarity_->on_evict(a.evicted_key);
        if (a.inserted) similarity_->on_access(va);
    }

    TimeNs added = 0;
    if (a.hit && a.value != kPlaceholder) {
        ++fast_path_;
    } else if (a.hit) {
        // Placeholder hit: fill in flight; slow path, no new fill.
        ++placeholder_hits_;
        added = cfg_.slow_path_delay;
    } else {
        ++misses_;
        added = cfg_.slow_path_delay;
        if (a.inserted) {
            pending_.push_back(PendingFill{pkt.ts + cfg_.slow_path_delay, va,
                                           nat_.lookup(va)});
        }
    }
    added_latency_us_.add(static_cast<double>(added) / 1000.0);
    return cfg_.base_latency + added;
}

void LruTableSystem::finish() {
    if (!pending_.empty()) {
        apply_fills(pending_.back().ready_at);
    }
}

LruTableReport LruTableSystem::report() const {
    LruTableReport r;
    r.packets = packets_;
    r.fast_path = fast_path_;
    r.placeholder_hits = placeholder_hits_;
    r.misses = misses_;
    r.avg_added_latency_us = added_latency_us_.mean();
    r.miss_rate =
        packets_ == 0
            ? 0.0
            : static_cast<double>(placeholder_hits_ + misses_) /
                  static_cast<double>(packets_);
    r.similarity = similarity_ ? similarity_->similarity() : 1.0;
    return r;
}

}  // namespace p4lru::systems::lrutable
