#include "p4lru/obs/exposition.hpp"

#include <cctype>
#include <charconv>
#include <cstdio>
#include <utility>

namespace p4lru::obs {

std::string json_escape(std::string_view s) {
    std::string out;
    out.reserve(s.size());
    for (const char ch : s) {
        const unsigned char c = static_cast<unsigned char>(ch);
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (c < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                    out += buf;
                } else {
                    out += ch;
                }
        }
    }
    return out;
}

std::string prometheus_name(std::string_view name) {
    std::string out(name);
    for (std::size_t i = 0; i < out.size(); ++i) {
        const char c = out[i];
        const bool alpha =
            (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
            c == ':';
        const bool digit = c >= '0' && c <= '9';
        if (!(alpha || (digit && i != 0))) {
            out[i] = '_';
        }
    }
    if (out.empty()) out = "_";
    return out;
}

std::string to_prometheus(const Snapshot& snap) {
    std::string out;
    for (const auto& [name, v] : snap.counters) {
        const std::string n = prometheus_name(name);
        out += "# TYPE " + n + " counter\n";
        out += n + " " + std::to_string(v) + "\n";
    }
    for (const auto& [name, v] : snap.gauges) {
        const std::string n = prometheus_name(name);
        out += "# TYPE " + n + " gauge\n";
        out += n + " " + std::to_string(v) + "\n";
    }
    for (const auto& [name, h] : snap.histograms) {
        const std::string n = prometheus_name(name);
        out += "# TYPE " + n + " histogram\n";
        std::uint64_t cum = 0;
        for (std::size_t b = 0; b + 1 < kHistBuckets; ++b) {
            cum += h.buckets[b];
            out += n + "_bucket{le=\"" +
                   std::to_string(bucket_upper_bound(b)) + "\"} " +
                   std::to_string(cum) + "\n";
        }
        out += n + "_bucket{le=\"+Inf\"} " + std::to_string(h.count) + "\n";
        out += n + "_sum " + std::to_string(h.sum) + "\n";
        out += n + "_count " + std::to_string(h.count) + "\n";
    }
    return out;
}

std::string to_json_line(const Snapshot& snap) {
    std::string out = "{\"seq\":" + std::to_string(snap.seq) +
                      ",\"unix_us\":" + std::to_string(snap.unix_us);
    out += ",\"counters\":{";
    bool first = true;
    for (const auto& [name, v] : snap.counters) {
        if (!std::exchange(first, false)) out += ",";
        out += "\"" + json_escape(name) + "\":" + std::to_string(v);
    }
    out += "},\"gauges\":{";
    first = true;
    for (const auto& [name, v] : snap.gauges) {
        if (!std::exchange(first, false)) out += ",";
        out += "\"" + json_escape(name) + "\":" + std::to_string(v);
    }
    out += "},\"histograms\":{";
    first = true;
    for (const auto& [name, h] : snap.histograms) {
        if (!std::exchange(first, false)) out += ",";
        out += "\"" + json_escape(name) +
               "\":{\"count\":" + std::to_string(h.count) +
               ",\"sum\":" + std::to_string(h.sum) + ",\"buckets\":[";
        // Trailing zero buckets are trimmed (most histograms occupy a
        // narrow log2 band); the parser zero-fills the tail back.
        std::size_t last = kHistBuckets;
        while (last > 0 && h.buckets[last - 1] == 0) --last;
        for (std::size_t b = 0; b < last; ++b) {
            if (b != 0) out += ",";
            out += std::to_string(h.buckets[b]);
        }
        out += "]}";
    }
    out += "}}";
    return out;
}

namespace {

/// Cursor over one JSON line.  Methods return false on malformed input and
/// leave `err` describing the failure at byte `pos`.
struct Parser {
    std::string_view in;
    std::size_t pos = 0;
    Status err = Status::ok();

    [[nodiscard]] bool fail(const std::string& what) {
        if (err.is_ok()) {
            err = corrupt("parse_snapshot_json: " + what, pos);
        }
        return false;
    }

    void skip_ws() {
        while (pos < in.size() &&
               (in[pos] == ' ' || in[pos] == '\t' || in[pos] == '\n' ||
                in[pos] == '\r')) {
            ++pos;
        }
    }

    [[nodiscard]] bool expect(char c) {
        skip_ws();
        if (pos >= in.size() || in[pos] != c) {
            return fail(std::string("expected '") + c + "'");
        }
        ++pos;
        return true;
    }

    [[nodiscard]] bool peek(char c) {
        skip_ws();
        return pos < in.size() && in[pos] == c;
    }

    [[nodiscard]] bool parse_string(std::string& out) {
        if (!expect('"')) return false;
        out.clear();
        while (pos < in.size() && in[pos] != '"') {
            char c = in[pos++];
            if (c == '\\') {
                if (pos >= in.size()) return fail("dangling escape");
                const char e = in[pos++];
                switch (e) {
                    case '"': out += '"'; break;
                    case '\\': out += '\\'; break;
                    case '/': out += '/'; break;
                    case 'n': out += '\n'; break;
                    case 'r': out += '\r'; break;
                    case 't': out += '\t'; break;
                    case 'b': out += '\b'; break;
                    case 'f': out += '\f'; break;
                    case 'u': {
                        if (pos + 4 > in.size()) {
                            return fail("short \\u escape");
                        }
                        unsigned v = 0;
                        for (int i = 0; i < 4; ++i) {
                            const char h = in[pos++];
                            v <<= 4;
                            if (h >= '0' && h <= '9') {
                                v |= static_cast<unsigned>(h - '0');
                            } else if (h >= 'a' && h <= 'f') {
                                v |= static_cast<unsigned>(h - 'a' + 10);
                            } else if (h >= 'A' && h <= 'F') {
                                v |= static_cast<unsigned>(h - 'A' + 10);
                            } else {
                                return fail("bad \\u escape digit");
                            }
                        }
                        // Our emitter only writes \u00XX control bytes;
                        // anything wider is out of contract.
                        if (v > 0xFF) return fail("\\u escape out of range");
                        out += static_cast<char>(v);
                        break;
                    }
                    default: return fail("unknown escape");
                }
            } else {
                out += c;
            }
        }
        if (pos >= in.size()) return fail("unterminated string");
        ++pos;  // closing quote
        return true;
    }

    template <typename Int>
    [[nodiscard]] bool parse_int(Int& out) {
        skip_ws();
        const char* begin = in.data() + pos;
        const char* end = in.data() + in.size();
        const auto res = std::from_chars(begin, end, out);
        if (res.ec != std::errc{}) return fail("expected integer");
        pos = static_cast<std::size_t>(res.ptr - in.data());
        return true;
    }

    /// `"name": <int>` map entries until the closing '}'.
    template <typename Int, typename Push>
    [[nodiscard]] bool parse_int_map(Push&& push) {
        if (!expect('{')) return false;
        if (peek('}')) {
            ++pos;
            return true;
        }
        while (true) {
            std::string name;
            Int v{};
            if (!parse_string(name)) return false;
            if (!expect(':')) return false;
            if (!parse_int(v)) return false;
            push(std::move(name), v);
            if (peek(',')) {
                ++pos;
                continue;
            }
            return expect('}');
        }
    }

    [[nodiscard]] bool parse_hist(HistogramSnapshot& h) {
        if (!expect('{')) return false;
        for (int field = 0; field < 3; ++field) {
            std::string key;
            if (!parse_string(key)) return false;
            if (!expect(':')) return false;
            if (key == "count") {
                if (!parse_int(h.count)) return false;
            } else if (key == "sum") {
                if (!parse_int(h.sum)) return false;
            } else if (key == "buckets") {
                if (!expect('[')) return false;
                std::size_t b = 0;
                if (!peek(']')) {
                    while (true) {
                        if (b >= kHistBuckets) {
                            return fail("too many histogram buckets");
                        }
                        if (!parse_int(h.buckets[b++])) return false;
                        if (peek(',')) {
                            ++pos;
                            continue;
                        }
                        break;
                    }
                }
                if (!expect(']')) return false;
            } else {
                return fail("unknown histogram field '" + key + "'");
            }
            if (field < 2 && !expect(',')) return false;
        }
        return expect('}');
    }
};

}  // namespace

Expected<Snapshot> parse_snapshot_json(std::string_view line) {
    Parser p{line};
    Snapshot snap;
    std::string key;

    if (!p.expect('{')) return p.err;
    for (int field = 0; field < 5; ++field) {
        if (!p.parse_string(key)) return p.err;
        if (!p.expect(':')) return p.err;
        if (key == "seq") {
            if (!p.parse_int(snap.seq)) return p.err;
        } else if (key == "unix_us") {
            if (!p.parse_int(snap.unix_us)) return p.err;
        } else if (key == "counters") {
            const bool ok = p.parse_int_map<std::uint64_t>(
                [&](std::string n, std::uint64_t v) {
                    snap.counters.emplace_back(std::move(n), v);
                });
            if (!ok) return p.err;
        } else if (key == "gauges") {
            const bool ok = p.parse_int_map<std::int64_t>(
                [&](std::string n, std::int64_t v) {
                    snap.gauges.emplace_back(std::move(n), v);
                });
            if (!ok) return p.err;
        } else if (key == "histograms") {
            if (!p.expect('{')) return p.err;
            if (p.peek('}')) {
                ++p.pos;
            } else {
                while (true) {
                    std::string name;
                    HistogramSnapshot h;
                    if (!p.parse_string(name)) return p.err;
                    if (!p.expect(':')) return p.err;
                    if (!p.parse_hist(h)) return p.err;
                    snap.histograms.emplace_back(std::move(name), h);
                    if (p.peek(',')) {
                        ++p.pos;
                        continue;
                    }
                    break;
                }
                if (!p.expect('}')) return p.err;
            }
        } else {
            p.pos = 0;
            return corrupt("parse_snapshot_json: unknown field '" + key + "'");
        }
        if (field < 4 && !p.expect(',')) return p.err;
    }
    if (!p.expect('}')) return p.err;
    p.skip_ws();
    if (p.pos != line.size()) {
        return corrupt("parse_snapshot_json: trailing bytes", p.pos);
    }
    return snap;
}

}  // namespace p4lru::obs
