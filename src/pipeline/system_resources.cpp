#include "p4lru/pipeline/system_resources.hpp"

#include "p4lru/pipeline/p4lru3_program.hpp"
#include "p4lru/pipeline/tower_program.hpp"

namespace p4lru::pipeline {
namespace {

PipelineBudget scaled_budget(std::size_t pipelines) {
    PipelineBudget b;
    b.stages *= pipelines;
    b.hash_bits *= pipelines;
    b.sram_bytes *= pipelines;
    b.map_ram_bytes *= pipelines;
    // salus_per_stage / vliw_per_stage stay per-stage; totals derive from
    // the scaled stage count inside ResourceReport::to_table.
    return b;
}

}  // namespace

SystemResources lrutable_resources(std::size_t units) {
    P4lru3PipelineCache cache(units, 0x1AB1u, ValueMode::kReadCache);
    SystemResources r;
    r.system = "LruTable";
    r.pipelines_used = 1;
    r.report = cache.resources();
    r.budget = scaled_budget(1);
    return r;
}

SystemResources lruindex_resources(std::size_t levels, std::size_t units) {
    SystemResources r;
    r.system = "LruIndex";
    r.pipelines_used = levels;
    for (std::size_t i = 0; i < levels; ++i) {
        P4lru3PipelineCache cache(
            units, 0x1DE0u ^ static_cast<std::uint32_t>(i * 0x9E37u),
            ValueMode::kReadCache);
        r.report = r.report + cache.resources();
    }
    r.budget = scaled_budget(levels);
    return r;
}

SystemResources lrumon_resources(std::size_t units) {
    TowerPipelineFilter::Config cfg;
    TowerPipelineFilter tower(cfg);
    P4lru3PipelineCache cache(units, 0x303Eu, ValueMode::kWriteAccumulate);
    SystemResources r;
    r.system = "LruMon";
    r.pipelines_used = 2;
    r.report = tower.resources() + cache.resources();
    r.budget = scaled_budget(2);
    return r;
}

}  // namespace p4lru::pipeline
