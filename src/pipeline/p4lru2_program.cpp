#include "p4lru/pipeline/p4lru2_program.hpp"

#include "p4lru/core/state_codec.hpp"

namespace p4lru::pipeline {

P4lru2PipelineCache::P4lru2PipelineCache(std::size_t units,
                                         std::uint32_t hash_seed,
                                         ValueMode mode)
    : units_(units) {
    build(hash_seed, mode);
}

void P4lru2PipelineCache::build(std::uint32_t hash_seed, ValueMode mode) {
    auto& L = pipe_.layout();
    f_key_ = L.field("in.key");
    f_value_ = L.field("in.value");
    f_idx_ = L.field("md.idx");
    f_c1_ = L.field("md.carry1");
    f_m1_ = L.field("md.match1");
    f_c2_ = L.field("md.carry2");
    f_m2_ = L.field("md.match2");
    f_scode_ = L.field("md.state_code");
    f_vslot_ = L.field("md.value_slot");
    f_hit_ = L.field("md.hit");
    f_val_old_ = L.field("md.value_old");
    f_val_new_ = L.field("md.value_new");

    reg_key1_ = pipe_.add_register_array("key1", units_);
    reg_key2_ = pipe_.add_register_array("key2", units_);
    reg_state_ = pipe_.add_register_array("state", units_);
    reg_val1_ = pipe_.add_register_array("val1", units_);
    reg_val2_ = pipe_.add_register_array("val2", units_);
    // Initial state: code 0 = identity (Section 2.3.1 encoding).

    // Stage 0 — bucket hash.
    {
        Stage st;
        st.name = "hash";
        st.hashes.push_back(HashInstr{
            {f_key_}, f_idx_, hash_seed, static_cast<std::uint32_t>(units_)});
        pipe_.add_stage(std::move(st));
    }

    // Stage 1 — key[1] compare-and-bubble.
    {
        Stage st;
        st.name = "key1";
        SaluInstr s;
        s.name = "key1";
        s.register_array = reg_key1_;
        s.index = f_idx_;
        s.cmp_source = CmpSource::kRegister;
        s.cmp = CmpOp::kEq;
        s.cmp_with_operand = true;
        s.cmp_operand = f_key_;
        s.on_true = {AluUpdate::kKeep, 0, 0};
        s.on_false = {AluUpdate::kSetOperand, f_key_, 0};
        s.out1_sel = AluOutput::kOldValue;
        s.out1 = f_c1_;
        s.out2_sel = AluOutput::kPredicate;
        s.out2 = f_m1_;
        st.salus.push_back(std::move(s));
        pipe_.add_stage(std::move(st));
    }

    // Stage 2 — key[2] bubble plus THE one state SALU. Both are guarded on
    // m1 (the state flips exactly when the key did not match key[1]).
    {
        Stage st;
        st.name = "key2+state";

        SaluInstr k2;
        k2.name = "key2";
        k2.register_array = reg_key2_;
        k2.index = f_idx_;
        k2.guard = f_m1_;
        k2.guard_value = 0;
        k2.cmp_source = CmpSource::kRegister;
        k2.cmp = CmpOp::kEq;
        k2.cmp_with_operand = true;
        k2.cmp_operand = f_key_;
        k2.on_true = {AluUpdate::kSetOperand, f_c1_, 0};
        k2.on_false = {AluUpdate::kSetOperand, f_c1_, 0};
        k2.out1_sel = AluOutput::kOldValue;
        k2.out1 = f_c2_;
        k2.out2_sel = AluOutput::kPredicate;
        k2.out2 = f_m2_;
        st.salus.push_back(std::move(k2));

        // The whole P4LRU2 DFA: S ^= 1 unless the key matched key[1].
        SaluInstr dfa;
        dfa.name = "state.dfa";
        dfa.register_array = reg_state_;
        dfa.index = f_idx_;
        dfa.cmp_source = CmpSource::kField;
        dfa.cmp_field = f_m1_;
        dfa.cmp = CmpOp::kEq;
        dfa.cmp_const = 1;
        dfa.on_true = {AluUpdate::kKeep, 0, 0};      // op1
        dfa.on_false = {AluUpdate::kXorConst, 0, 1};  // op2
        dfa.out1_sel = AluOutput::kNewValue;
        dfa.out1 = f_scode_;
        st.salus.push_back(std::move(dfa));

        pipe_.add_stage(std::move(st));
    }

    // Stage 3 — slot S(1) from the code (2-entry lookup) + hit flag.
    {
        Stage st;
        st.name = "slot";
        VliwInstr lut;
        lut.op = VliwOp::kLookup;
        lut.dst = f_vslot_;
        lut.a = f_scode_;
        lut.table = {1, 2};  // S(1) per code, Section 2.3.1
        st.vliw.push_back(std::move(lut));
        st.vliw.push_back(
            VliwInstr{VliwOp::kOr, f_hit_, f_m1_, f_m2_, 0, 0, {}});
        pipe_.add_stage(std::move(st));
    }

    // Stage 4 — single value access, one array per slot.
    {
        Stage st;
        st.name = "values";
        const std::size_t regs[2] = {reg_val1_, reg_val2_};
        for (std::uint32_t slot = 1; slot <= 2; ++slot) {
            SaluInstr v;
            v.name = "val" + std::to_string(slot);
            v.register_array = regs[slot - 1];
            v.index = f_idx_;
            v.guard = f_vslot_;
            v.guard_value = slot;
            v.cmp_source = CmpSource::kField;
            v.cmp_field = f_hit_;
            v.cmp = CmpOp::kEq;
            v.cmp_const = 1;
            if (mode == ValueMode::kReadCache) {
                v.on_true = {AluUpdate::kKeep, 0, 0};
            } else {
                v.on_true = {AluUpdate::kAddOperand, f_value_, 0};
            }
            v.on_false = {AluUpdate::kSetOperand, f_value_, 0};
            v.out1_sel = AluOutput::kOldValue;
            v.out1 = f_val_old_;
            v.out2_sel = AluOutput::kNewValue;
            v.out2 = f_val_new_;
            st.salus.push_back(std::move(v));
        }
        pipe_.add_stage(std::move(st));
    }
}

P4lru2PipelineCache::Result P4lru2PipelineCache::update(std::uint32_t key,
                                                        std::uint32_t value) {
    Phv phv = pipe_.make_phv();
    phv.set(f_key_, key);
    phv.set(f_value_, value);
    pipe_.execute(phv);

    Result r;
    r.bucket = phv.get(f_idx_);
    r.hit = phv.get(f_hit_) != 0;
    r.value = phv.get(f_val_new_);
    if (!r.hit) {
        const std::uint32_t victim = phv.get(f_c2_);
        if (victim != 0) {
            r.evicted = true;
            r.evicted_key = victim;
            r.evicted_value = phv.get(f_val_old_);
        }
    }
    return r;
}

}  // namespace p4lru::pipeline
