#include "p4lru/pipeline/pipeline.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <unordered_set>

#include "p4lru/common/hash.hpp"
#include "p4lru/common/table.hpp"

namespace p4lru::pipeline {

FieldId PhvLayout::field(const std::string& name) {
    for (std::size_t i = 0; i < names_.size(); ++i) {
        if (names_[i] == name) return static_cast<FieldId>(i);
    }
    if (names_.size() >= 0xFFFF) throw PipelineError("PHV: too many fields");
    names_.push_back(name);
    return static_cast<FieldId>(names_.size() - 1);
}

std::size_t Pipeline::add_register_array(const std::string& name,
                                         std::size_t width) {
    if (width == 0) throw PipelineError("register array with zero width");
    arrays_.push_back({name, std::vector<std::uint32_t>(width, 0)});
    return arrays_.size() - 1;
}

void Pipeline::add_stage(Stage stage) {
    if (stages_.size() >= budget_.stages) {
        throw PipelineError("stage budget exceeded: " + stage.name);
    }
    if (stage.salus.size() > budget_.salus_per_stage) {
        throw PipelineError("per-stage SALU budget exceeded: " + stage.name);
    }
    if (stage.vliw.size() > budget_.vliw_per_stage) {
        throw PipelineError("per-stage VLIW budget exceeded: " + stage.name);
    }
    for (const auto& s : stage.salus) {
        if (s.register_array >= arrays_.size()) {
            throw PipelineError("SALU references unknown register array: " +
                                s.name);
        }
    }
    for (const auto& v : stage.vliw) {
        if (v.op == VliwOp::kLookup && v.table.size() > 16) {
            throw PipelineError(
                "lookup table exceeds the 16-entry stateful-table limit");
        }
    }
    for (const auto& h : stage.hashes) {
        if (h.modulo == 0) throw PipelineError("hash with zero modulo");
    }
    stages_.push_back(std::move(stage));
}

std::uint32_t Pipeline::register_value(std::size_t array,
                                       std::size_t idx) const {
    return arrays_.at(array).cells.at(idx);
}

void Pipeline::set_register_value(std::size_t array, std::size_t idx,
                                  std::uint32_t v) {
    arrays_.at(array).cells.at(idx) = v;
}

void Pipeline::fill_register_array(std::size_t array, std::uint32_t v) {
    auto& cells = arrays_.at(array).cells;
    std::fill(cells.begin(), cells.end(), v);
}

void Pipeline::execute(Phv& phv) {
    std::vector<bool> reg_accessed(arrays_.size(), false);
    for (const auto& stage : stages_) {
        execute_stage(stage, phv, reg_accessed);
    }
}

namespace {

/// Tracks same-stage PHV writes to reject read-after-write hazards.
class HazardTracker {
  public:
    explicit HazardTracker(const std::string& stage) : stage_(stage) {}

    void read(FieldId f) const {
        if (written_.contains(f)) {
            throw PipelineError("stage '" + stage_ +
                                "': same-stage read-after-write on field " +
                                std::to_string(f));
        }
    }

    void write(FieldId f) {
        if (!written_.insert(f).second) {
            throw PipelineError("stage '" + stage_ +
                                "': double write to field " +
                                std::to_string(f));
        }
    }

  private:
    const std::string& stage_;
    std::unordered_set<FieldId> written_;
};

}  // namespace

void Pipeline::execute_stage(const Stage& stage, Phv& phv,
                             std::vector<bool>& reg_accessed) {
    HazardTracker hazards(stage.name);

    for (const auto& h : stage.hashes) {
        std::vector<std::uint8_t> bytes;
        bytes.reserve(h.inputs.size() * 4);
        for (const FieldId f : h.inputs) {
            hazards.read(f);
            const std::uint32_t v = phv.get(f);
            bytes.push_back(static_cast<std::uint8_t>(v));
            bytes.push_back(static_cast<std::uint8_t>(v >> 8));
            bytes.push_back(static_cast<std::uint8_t>(v >> 16));
            bytes.push_back(static_cast<std::uint8_t>(v >> 24));
        }
        const std::uint32_t digest = hash::crc32(
            std::span<const std::uint8_t>(bytes.data(), bytes.size()), h.seed);
        const std::uint32_t slot =
            h.modulo == 0 ? digest
                          : static_cast<std::uint32_t>(
                                (std::uint64_t{digest} * h.modulo) >> 32);
        hazards.write(h.dst);
        phv.set(h.dst, slot);
    }

    for (const auto& v : stage.vliw) {
        std::uint32_t result = 0;
        const auto ra = [&] {
            hazards.read(v.a);
            return phv.get(v.a);
        };
        const auto rb = [&] {
            hazards.read(v.b);
            return phv.get(v.b);
        };
        switch (v.op) {
            case VliwOp::kSetConst: result = v.konst; break;
            case VliwOp::kCopy: result = ra(); break;
            case VliwOp::kAdd: result = ra() + rb(); break;
            case VliwOp::kSub: result = ra() - rb(); break;
            case VliwOp::kXor: result = ra() ^ rb(); break;
            case VliwOp::kAnd: result = ra() & rb(); break;
            case VliwOp::kOr: result = ra() | rb(); break;
            case VliwOp::kEq: result = ra() == rb() ? 1 : 0; break;
            case VliwOp::kNe: result = ra() != rb() ? 1 : 0; break;
            case VliwOp::kGe: result = ra() >= rb() ? 1 : 0; break;
            case VliwOp::kLt: result = ra() < rb() ? 1 : 0; break;
            case VliwOp::kEqConst: result = ra() == v.konst ? 1 : 0; break;
            case VliwOp::kGeConst: result = ra() >= v.konst ? 1 : 0; break;
            case VliwOp::kSelect: {
                hazards.read(v.cond);
                const bool c = phv.get(v.cond) != 0;
                result = c ? ra() : rb();
                break;
            }
            case VliwOp::kLookup: {
                const std::uint32_t key = ra();
                if (key >= v.table.size()) {
                    throw PipelineError("stage '" + stage.name +
                                        "': lookup key out of range");
                }
                result = v.table[key];
                break;
            }
        }
        hazards.write(v.dst);
        phv.set(v.dst, result);
    }

    for (const auto& s : stage.salus) {
        if (s.guard) {
            hazards.read(*s.guard);
            if (phv.get(*s.guard) != s.guard_value) continue;  // no access
        }

        if (reg_accessed[s.register_array]) {
            throw PipelineError(
                "SALU '" + s.name + "': second access to register array '" +
                arrays_[s.register_array].name +
                "' in one packet (pipeline forbids revisiting state)");
        }
        reg_accessed[s.register_array] = true;

        hazards.read(s.index);
        const std::size_t idx = phv.get(s.index);
        auto& cells = arrays_[s.register_array].cells;
        if (idx >= cells.size()) {
            throw PipelineError("SALU '" + s.name + "': index out of range");
        }
        const std::uint32_t old_value = cells[idx];

        std::uint32_t lhs = old_value;
        if (s.cmp_source == CmpSource::kField) {
            hazards.read(s.cmp_field);
            lhs = phv.get(s.cmp_field);
        }
        std::uint32_t rhs = s.cmp_const;
        if (s.cmp_with_operand) {
            hazards.read(s.cmp_operand);
            rhs = phv.get(s.cmp_operand);
        }
        bool pred = true;
        switch (s.cmp) {
            case CmpOp::kAlways: pred = true; break;
            case CmpOp::kEq: pred = lhs == rhs; break;
            case CmpOp::kNe: pred = lhs != rhs; break;
            case CmpOp::kGe: pred = lhs >= rhs; break;
            case CmpOp::kLt: pred = lhs < rhs; break;
        }

        const SaluBranch& br = pred ? s.on_true : s.on_false;
        std::uint32_t new_value = old_value;
        const auto operand = [&] {
            hazards.read(br.operand);
            return phv.get(br.operand);
        };
        switch (br.update) {
            case AluUpdate::kKeep: break;
            case AluUpdate::kSetOperand: new_value = operand(); break;
            case AluUpdate::kSetConst: new_value = br.konst; break;
            case AluUpdate::kAddOperand:
                new_value = old_value + operand();
                break;
            case AluUpdate::kAddConst: new_value = old_value + br.konst; break;
            case AluUpdate::kSubConst: new_value = old_value - br.konst; break;
            case AluUpdate::kXorConst: new_value = old_value ^ br.konst; break;
        }
        if (s.saturate && new_value > s.sat_max) new_value = s.sat_max;
        cells[idx] = new_value;

        const auto emit = [&](AluOutput sel, FieldId dst) {
            std::uint32_t out = 0;
            switch (sel) {
                case AluOutput::kNone: return;
                case AluOutput::kOldValue: out = old_value; break;
                case AluOutput::kNewValue: out = new_value; break;
                case AluOutput::kPredicate: out = pred ? 1 : 0; break;
            }
            hazards.write(dst);
            phv.set(dst, out);
        };
        emit(s.out1_sel, s.out1);
        emit(s.out2_sel, s.out2);
    }
}

ResourceReport Pipeline::resources() const {
    ResourceReport r;
    r.stages = stages_.size();
    for (const auto& stage : stages_) {
        r.salus += stage.salus.size();
        r.vliw_instrs += stage.vliw.size();
        for (const auto& h : stage.hashes) {
            // Bits consumed on the hash crossbar: ceil(log2(modulo)) output
            // bits (32 for raw-digest hashes).
            r.hash_bits +=
                h.modulo == 0
                    ? 32
                    : static_cast<std::size_t>(std::ceil(
                          std::log2(static_cast<double>(h.modulo))));
        }
        for (const auto& v : stage.vliw) {
            if (v.op == VliwOp::kLookup) r.table_bytes += v.table.size() * 4;
        }
    }
    for (const auto& a : arrays_) {
        r.register_bytes += a.cells.size() * 4;
    }
    // Tofino shadows registers in map RAM for the sync path; model 1:1.
    r.map_ram_bytes = r.register_bytes;
    return r;
}

ResourceReport ResourceReport::operator+(const ResourceReport& o) const {
    ResourceReport r = *this;
    r.stages += o.stages;
    r.salus += o.salus;
    r.vliw_instrs += o.vliw_instrs;
    r.hash_bits += o.hash_bits;
    r.register_bytes += o.register_bytes;
    r.table_bytes += o.table_bytes;
    r.map_ram_bytes += o.map_ram_bytes;
    return r;
}

std::string ResourceReport::to_table(const PipelineBudget& b) const {
    const auto pct = [](double used, double total) {
        std::ostringstream os;
        os.precision(2);
        os << std::fixed << (total > 0 ? 100.0 * used / total : 0.0) << "%";
        return os.str();
    };
    ConsoleTable t({"Resource", "Used", "Percentage"});
    t.add_row({"Stages", std::to_string(stages), pct(stages, b.stages)});
    t.add_row({"Stateful ALU", std::to_string(salus),
               pct(salus, b.stages * b.salus_per_stage)});
    t.add_row({"VLIW instr", std::to_string(vliw_instrs),
               pct(vliw_instrs, b.stages * b.vliw_per_stage)});
    t.add_row({"Hash Bits", std::to_string(hash_bits),
               pct(hash_bits, b.hash_bits)});
    t.add_row({"SRAM (bytes)",
               std::to_string(register_bytes + table_bytes),
               pct(static_cast<double>(register_bytes + table_bytes),
                   static_cast<double>(b.sram_bytes))});
    t.add_row({"Map RAM (bytes)", std::to_string(map_ram_bytes),
               pct(static_cast<double>(map_ram_bytes),
                   static_cast<double>(b.map_ram_bytes))});
    t.add_row({"TCAM", "0", "0.00%"});
    return t.render();
}

}  // namespace p4lru::pipeline
