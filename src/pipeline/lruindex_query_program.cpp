#include "p4lru/pipeline/lruindex_query_program.hpp"

#include "p4lru/core/state_codec.hpp"

namespace p4lru::pipeline {

LruIndexQueryLevel::LruIndexQueryLevel(std::size_t units,
                                       std::uint32_t hash_seed)
    : units_(units) {
    build(hash_seed);
}

void LruIndexQueryLevel::build(std::uint32_t hash_seed) {
    auto& L = pipe_.layout();
    f_key_ = L.field("in.key");
    f_idx_ = L.field("md.idx");
    f_m1_ = L.field("md.match1");
    f_m2_ = L.field("md.match2");
    f_m3_ = L.field("md.match3");
    f_hit_ = L.field("md.hit");
    f_scode_ = L.field("md.state_code");
    f_s1_ = L.field("md.slot_if_m1");
    f_s2_ = L.field("md.slot_if_m2");
    f_s3_ = L.field("md.slot_if_m3");
    f_slot_a_ = L.field("md.slot_23");
    f_slot_ = L.field("md.slot");
    f_v1_ = L.field("md.or12");
    f_va_ = L.field("md.value_read");
    f_value_ = L.field("out.value");
    // Unused placeholders kept named for the listing.
    f_v2_ = L.field("md.unused2");
    f_v3_ = L.field("md.unused3");

    reg_key_[0] = pipe_.add_register_array("key1", units_);
    reg_key_[1] = pipe_.add_register_array("key2", units_);
    reg_key_[2] = pipe_.add_register_array("key3", units_);
    reg_state_ = pipe_.add_register_array("state", units_);
    reg_val_[0] = pipe_.add_register_array("val1", units_);
    reg_val_[1] = pipe_.add_register_array("val2", units_);
    reg_val_[2] = pipe_.add_register_array("val3", units_);
    pipe_.fill_register_array(reg_state_, core::codec::kLru3Initial);

    // Stage 0 — bucket hash.
    {
        Stage st;
        st.name = "hash";
        st.hashes.push_back(HashInstr{
            {f_key_}, f_idx_, hash_seed, static_cast<std::uint32_t>(units_)});
        pipe_.add_stage(std::move(st));
    }

    // Stage 1 — read-only probes: three key compares + the state read.
    // Four SALUs, the per-stage maximum; every branch is kKeep.
    {
        Stage st;
        st.name = "probe";
        const FieldId mflags[3] = {f_m1_, f_m2_, f_m3_};
        for (int i = 0; i < 3; ++i) {
            SaluInstr s;
            s.name = "key" + std::to_string(i + 1) + ".read";
            s.register_array = reg_key_[i];
            s.index = f_idx_;
            s.cmp_source = CmpSource::kRegister;
            s.cmp = CmpOp::kEq;
            s.cmp_with_operand = true;
            s.cmp_operand = f_key_;
            s.on_true = {AluUpdate::kKeep, 0, 0};
            s.on_false = {AluUpdate::kKeep, 0, 0};
            s.out1_sel = AluOutput::kPredicate;
            s.out1 = mflags[i];
            st.salus.push_back(std::move(s));
        }
        SaluInstr state;
        state.name = "state.read";
        state.register_array = reg_state_;
        state.index = f_idx_;
        state.cmp = CmpOp::kAlways;
        state.on_true = {AluUpdate::kKeep, 0, 0};
        state.out1_sel = AluOutput::kOldValue;
        state.out1 = f_scode_;
        st.salus.push_back(std::move(state));
        pipe_.add_stage(std::move(st));
    }

    // Stage 2 — slot candidates per match position: three 6-entry lookups
    // (the 18-entry combined table would bust the tiny-table limit).
    {
        Stage st;
        st.name = "slots";
        const FieldId dst[3] = {f_s1_, f_s2_, f_s3_};
        for (std::size_t pos = 0; pos < 3; ++pos) {
            VliwInstr lut;
            lut.op = VliwOp::kLookup;
            lut.dst = dst[pos];
            lut.a = f_scode_;
            lut.table.resize(6);
            for (std::uint8_t code = 0; code < 6; ++code) {
                lut.table[code] = core::codec::kLru3Decode[code][pos];
            }
            st.vliw.push_back(std::move(lut));
        }
        st.vliw.push_back(
            VliwInstr{VliwOp::kOr, f_v1_, f_m1_, f_m2_, 0, 0, {}});
        pipe_.add_stage(std::move(st));
    }

    // Stage 3 — fold flags and pick between positions 2/3.
    {
        Stage st;
        st.name = "fold";
        st.vliw.push_back(
            VliwInstr{VliwOp::kOr, f_hit_, f_v1_, f_m3_, 0, 0, {}});
        st.vliw.push_back(
            VliwInstr{VliwOp::kSelect, f_slot_a_, f_s2_, f_s3_, f_m2_, 0, {}});
        pipe_.add_stage(std::move(st));
    }

    // Stage 4 — final slot select (position 1 wins).
    {
        Stage st;
        st.name = "slot";
        st.vliw.push_back(
            VliwInstr{VliwOp::kSelect, f_slot_, f_s1_, f_slot_a_, f_m1_, 0,
                      {}});
        pipe_.add_stage(std::move(st));
    }

    // Stage 5 — the single (read-only) value access.
    {
        Stage st;
        st.name = "value";
        for (std::uint32_t slot = 1; slot <= 3; ++slot) {
            SaluInstr v;
            v.name = "val" + std::to_string(slot) + ".read";
            v.register_array = reg_val_[slot - 1];
            v.index = f_idx_;
            v.guard = f_slot_;
            v.guard_value = slot;
            v.cmp = CmpOp::kAlways;
            v.on_true = {AluUpdate::kKeep, 0, 0};
            v.out1_sel = AluOutput::kOldValue;
            v.out1 = f_va_;
            st.salus.push_back(std::move(v));
        }
        pipe_.add_stage(std::move(st));
    }

    // Stage 6 — export (value valid only when hit).
    {
        Stage st;
        st.name = "export";
        st.vliw.push_back(
            VliwInstr{VliwOp::kCopy, f_value_, f_va_, 0, 0, 0, {}});
        pipe_.add_stage(std::move(st));
    }
}

LruIndexQueryLevel::Result LruIndexQueryLevel::query(std::uint32_t key) {
    Phv phv = pipe_.make_phv();
    phv.set(f_key_, key);
    pipe_.execute(phv);
    Result r;
    r.hit = phv.get(f_hit_) != 0;
    r.value = phv.get(f_value_);
    return r;
}

void LruIndexQueryLevel::load_unit(std::size_t bucket,
                                   const std::uint32_t keys[3],
                                   const std::uint32_t vals[3],
                                   std::uint8_t state_code) {
    for (int i = 0; i < 3; ++i) {
        pipe_.set_register_value(reg_key_[i], bucket, keys[i]);
        pipe_.set_register_value(reg_val_[i], bucket, vals[i]);
    }
    pipe_.set_register_value(reg_state_, bucket, state_code);
}

LruIndexQueryPipeline::LruIndexQueryPipeline(std::size_t levels,
                                             std::size_t units,
                                             std::uint32_t seed) {
    levels_.reserve(levels);
    for (std::size_t i = 0; i < levels; ++i) {
        // Same per-level salts as core::SeriesCache.
        levels_.emplace_back(units,
                             seed + static_cast<std::uint32_t>(i) * 0x9E37u);
    }
}

LruIndexQueryPipeline::Lookup LruIndexQueryPipeline::query(
    std::uint32_t key) {
    Lookup out;
    for (std::size_t i = 0; i < levels_.size(); ++i) {
        const auto r = levels_[i].query(key);
        if (r.hit && out.level == 0) {
            out.level = static_cast<std::uint32_t>(i + 1);
            out.value = r.value;
        }
        // Later levels are still traversed, as on the folded hardware.
    }
    return out;
}

ResourceReport LruIndexQueryPipeline::resources() const {
    ResourceReport total;
    for (const auto& level : levels_) {
        total = total + level.pipeline().resources();
    }
    return total;
}

}  // namespace p4lru::pipeline
