#include "p4lru/pipeline/p4lru3_program.hpp"

#include "p4lru/core/state_codec.hpp"

namespace p4lru::pipeline {

P4lru3PipelineCache::P4lru3PipelineCache(std::size_t units,
                                         std::uint32_t hash_seed,
                                         ValueMode mode)
    : units_(units) {
    build(hash_seed, mode);
}

void P4lru3PipelineCache::build(std::uint32_t hash_seed, ValueMode mode) {
    auto& L = pipe_.layout();
    f_key_ = L.field("in.key");
    f_value_ = L.field("in.value");
    f_idx_ = L.field("md.idx");
    f_c1_ = L.field("md.carry1");
    f_m1_ = L.field("md.match1");
    f_c2_ = L.field("md.carry2");
    f_m2_ = L.field("md.match2");
    f_done2_ = L.field("md.done2");
    f_c3_ = L.field("md.carry3");
    f_m3_ = L.field("md.match3");
    f_scode_ = L.field("md.state_code");
    f_vslot_ = L.field("md.value_slot");
    f_hit_ = L.field("md.hit");
    f_val_old_ = L.field("md.value_old");
    f_val_new_ = L.field("md.value_new");

    reg_key1_ = pipe_.add_register_array("key1", units_);
    reg_key2_ = pipe_.add_register_array("key2", units_);
    reg_key3_ = pipe_.add_register_array("key3", units_);
    reg_state_ = pipe_.add_register_array("state", units_);
    reg_val1_ = pipe_.add_register_array("val1", units_);
    reg_val2_ = pipe_.add_register_array("val2", units_);
    reg_val3_ = pipe_.add_register_array("val3", units_);
    // Control-plane preload: every unit starts in the identity state (code 4
    // of Table 1), as the P4 program's register initial value does.
    pipe_.fill_register_array(reg_state_, core::codec::kLru3Initial);

    // Stage 0 — bucket choice on the hash engine.
    {
        Stage st;
        st.name = "hash";
        st.hashes.push_back(HashInstr{
            {f_key_}, f_idx_, hash_seed, static_cast<std::uint32_t>(units_)});
        pipe_.add_stage(std::move(st));
    }

    // Stage 1 — key[1]: compare-and-bubble. On mismatch the incoming key
    // takes the slot; the displaced key rides on as carry1.
    {
        Stage st;
        st.name = "key1";
        SaluInstr s;
        s.name = "key1";
        s.register_array = reg_key1_;
        s.index = f_idx_;
        s.cmp_source = CmpSource::kRegister;
        s.cmp = CmpOp::kEq;
        s.cmp_with_operand = true;
        s.cmp_operand = f_key_;
        s.on_true = {AluUpdate::kKeep, 0, 0};
        s.on_false = {AluUpdate::kSetOperand, f_key_, 0};
        s.out1_sel = AluOutput::kOldValue;
        s.out1 = f_c1_;
        s.out2_sel = AluOutput::kPredicate;
        s.out2 = f_m1_;
        st.salus.push_back(std::move(s));
        pipe_.add_stage(std::move(st));
    }

    // Stage 2 — key[2]: executes only while the key is still unmatched;
    // always swallows carry1, reports whether its old occupant matched.
    {
        Stage st;
        st.name = "key2";
        SaluInstr s;
        s.name = "key2";
        s.register_array = reg_key2_;
        s.index = f_idx_;
        s.guard = f_m1_;
        s.guard_value = 0;
        s.cmp_source = CmpSource::kRegister;
        s.cmp = CmpOp::kEq;
        s.cmp_with_operand = true;
        s.cmp_operand = f_key_;
        s.on_true = {AluUpdate::kSetOperand, f_c1_, 0};
        s.on_false = {AluUpdate::kSetOperand, f_c1_, 0};
        s.out1_sel = AluOutput::kOldValue;
        s.out1 = f_c2_;
        s.out2_sel = AluOutput::kPredicate;
        s.out2 = f_m2_;
        st.salus.push_back(std::move(s));
        pipe_.add_stage(std::move(st));
    }

    // Stage 3 — fold the first two match flags (needed as a guard next).
    {
        Stage st;
        st.name = "flags";
        st.vliw.push_back(
            VliwInstr{VliwOp::kOr, f_done2_, f_m1_, f_m2_, 0, 0, {}});
        pipe_.add_stage(std::move(st));
    }

    // Stage 4 — key[3] bubble plus the three state SALUs (operations 1-3 of
    // Section 2.3.2). Guards are mutually exclusive, so exactly one state
    // SALU executes: the 'state' array is accessed once per packet.
    {
        Stage st;
        st.name = "key3+state";

        SaluInstr k3;
        k3.name = "key3";
        k3.register_array = reg_key3_;
        k3.index = f_idx_;
        k3.guard = f_done2_;
        k3.guard_value = 0;
        k3.cmp_source = CmpSource::kRegister;
        k3.cmp = CmpOp::kEq;
        k3.cmp_with_operand = true;
        k3.cmp_operand = f_key_;
        k3.on_true = {AluUpdate::kSetOperand, f_c2_, 0};
        k3.on_false = {AluUpdate::kSetOperand, f_c2_, 0};
        k3.out1_sel = AluOutput::kOldValue;
        k3.out1 = f_c3_;
        k3.out2_sel = AluOutput::kPredicate;
        k3.out2 = f_m3_;
        st.salus.push_back(std::move(k3));

        SaluInstr op1;
        op1.name = "state.op1";
        op1.register_array = reg_state_;
        op1.index = f_idx_;
        op1.guard = f_m1_;
        op1.guard_value = 1;
        op1.cmp = CmpOp::kAlways;
        op1.on_true = {AluUpdate::kKeep, 0, 0};
        op1.out1_sel = AluOutput::kNewValue;
        op1.out1 = f_scode_;
        st.salus.push_back(std::move(op1));

        SaluInstr op2;
        op2.name = "state.op2";
        op2.register_array = reg_state_;
        op2.index = f_idx_;
        op2.guard = f_m2_;
        op2.guard_value = 1;
        op2.cmp = CmpOp::kGe;  // S >= 4 ? S^1 : S^3
        op2.cmp_const = 4;
        op2.on_true = {AluUpdate::kXorConst, 0, 1};
        op2.on_false = {AluUpdate::kXorConst, 0, 3};
        op2.out1_sel = AluOutput::kNewValue;
        op2.out1 = f_scode_;
        st.salus.push_back(std::move(op2));

        SaluInstr op3;
        op3.name = "state.op3";
        op3.register_array = reg_state_;
        op3.index = f_idx_;
        op3.guard = f_done2_;  // hit at key[3] or full miss
        op3.guard_value = 0;
        op3.cmp = CmpOp::kGe;  // S >= 2 ? S-2 : S+4
        op3.cmp_const = 2;
        op3.on_true = {AluUpdate::kSubConst, 0, 2};
        op3.on_false = {AluUpdate::kAddConst, 0, 4};
        op3.out1_sel = AluOutput::kNewValue;
        op3.out1 = f_scode_;
        st.salus.push_back(std::move(op3));

        pipe_.add_stage(std::move(st));
    }

    // Stage 5 — map the new state code to the value slot S(1) through the
    // tiny (6-entry) lookup table, and fold the final hit flag.
    {
        Stage st;
        st.name = "slot";
        VliwInstr lut;
        lut.op = VliwOp::kLookup;
        lut.dst = f_vslot_;
        lut.a = f_scode_;
        lut.table.assign(core::codec::kLru3S1.begin(),
                         core::codec::kLru3S1.end());
        st.vliw.push_back(std::move(lut));
        st.vliw.push_back(
            VliwInstr{VliwOp::kOr, f_hit_, f_done2_, f_m3_, 0, 0, {}});
        pipe_.add_stage(std::move(st));
    }

    // Stage 6 — the single value access: three value arrays, one per slot,
    // guarded by S(1); merge semantics depend on the cache mode.
    {
        Stage st;
        st.name = "values";
        const std::size_t regs[3] = {reg_val1_, reg_val2_, reg_val3_};
        for (std::uint32_t slot = 1; slot <= 3; ++slot) {
            SaluInstr v;
            v.name = "val" + std::to_string(slot);
            v.register_array = regs[slot - 1];
            v.index = f_idx_;
            v.guard = f_vslot_;
            v.guard_value = slot;
            v.cmp_source = CmpSource::kField;  // hit?
            v.cmp_field = f_hit_;
            v.cmp = CmpOp::kEq;
            v.cmp_const = 1;
            if (mode == ValueMode::kReadCache) {
                v.on_true = {AluUpdate::kKeep, 0, 0};
            } else {
                v.on_true = {AluUpdate::kAddOperand, f_value_, 0};
            }
            v.on_false = {AluUpdate::kSetOperand, f_value_, 0};
            v.out1_sel = AluOutput::kOldValue;
            v.out1 = f_val_old_;
            v.out2_sel = AluOutput::kNewValue;
            v.out2 = f_val_new_;
            st.salus.push_back(std::move(v));
        }
        pipe_.add_stage(std::move(st));
    }
}

P4lru3PipelineCache::Result P4lru3PipelineCache::update(std::uint32_t key,
                                                        std::uint32_t value) {
    Phv phv = pipe_.make_phv();
    phv.set(f_key_, key);
    phv.set(f_value_, value);
    pipe_.execute(phv);

    Result r;
    r.bucket = phv.get(f_idx_);
    r.hit = phv.get(f_hit_) != 0;
    r.value = phv.get(f_val_new_);
    if (!r.hit) {
        const std::uint32_t victim = phv.get(f_c3_);
        if (victim != 0) {
            r.evicted = true;
            r.evicted_key = victim;
            r.evicted_value = phv.get(f_val_old_);
        }
    }
    return r;
}

}  // namespace p4lru::pipeline
