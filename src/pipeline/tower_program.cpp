#include "p4lru/pipeline/tower_program.hpp"

namespace p4lru::pipeline {

TowerPipelineFilter::TowerPipelineFilter(const Config& cfg) : cfg_(cfg) {
    build();
}

void TowerPipelineFilter::build() {
    auto& L = pipe_.layout();
    f_key_ = L.field("in.key");
    f_len_ = L.field("in.len");
    f_i1_ = L.field("md.idx1");
    f_i2_ = L.field("md.idx2");
    f_e1_ = L.field("md.est1");
    f_e2_ = L.field("md.est2");
    f_lt_ = L.field("md.lt");
    f_sat1_ = L.field("md.sat1");
    f_mincand_ = L.field("md.mincand");
    f_min_ = L.field("md.min");
    f_eleph_ = L.field("md.elephant");

    reg_c1_ = pipe_.add_register_array("tower.c1", cfg_.width1);
    reg_c2_ = pipe_.add_register_array("tower.c2", cfg_.width2);

    // Stage 0 — both bucket hashes (two hash engines per stage).
    {
        Stage st;
        st.name = "tower.hash";
        st.hashes.push_back(HashInstr{{f_key_}, f_i1_, cfg_.seed,
                                      static_cast<std::uint32_t>(cfg_.width1)});
        st.hashes.push_back(HashInstr{{f_key_}, f_i2_, cfg_.seed ^ 0x51C7u,
                                      static_cast<std::uint32_t>(cfg_.width2)});
        pipe_.add_stage(std::move(st));
    }

    // Stage 1 — both counter SALUs: hardware saturating adds.
    {
        Stage st;
        st.name = "tower.count";
        const auto counter = [&](const char* name, std::size_t reg,
                                 FieldId idx, std::uint32_t max, FieldId out) {
            SaluInstr s;
            s.name = name;
            s.register_array = reg;
            s.index = idx;
            s.cmp = CmpOp::kAlways;
            s.on_true = {AluUpdate::kAddOperand, f_len_, 0};
            s.saturate = true;
            s.sat_max = max;
            s.out1_sel = AluOutput::kNewValue;
            s.out1 = out;
            return s;
        };
        st.salus.push_back(
            counter("tower.c1", reg_c1_, f_i1_, cfg_.max1, f_e1_));
        st.salus.push_back(
            counter("tower.c2", reg_c2_, f_i2_, cfg_.max2, f_e2_));
        pipe_.add_stage(std::move(st));
    }

    // Stage 2 — compare the estimates and detect level-1 saturation (a
    // saturated counter carries no information and is excluded from the min).
    {
        Stage st;
        st.name = "tower.cmp";
        st.vliw.push_back(
            VliwInstr{VliwOp::kLt, f_lt_, f_e1_, f_e2_, 0, 0, {}});
        st.vliw.push_back(VliwInstr{VliwOp::kGeConst, f_sat1_, f_e1_, 0, 0,
                                    cfg_.max1, {}});
        pipe_.add_stage(std::move(st));
    }

    // Stage 3 — min candidate; Stage 4 — saturation override; Stage 5 —
    // threshold test. (Separate stages: each reads the previous result.)
    {
        Stage st;
        st.name = "tower.min";
        st.vliw.push_back(
            VliwInstr{VliwOp::kSelect, f_mincand_, f_e1_, f_e2_, f_lt_, 0, {}});
        pipe_.add_stage(std::move(st));
    }
    {
        Stage st;
        st.name = "tower.est";
        st.vliw.push_back(VliwInstr{VliwOp::kSelect, f_min_, f_e2_, f_mincand_,
                                    f_sat1_, 0, {}});
        pipe_.add_stage(std::move(st));
    }
    {
        Stage st;
        st.name = "tower.threshold";
        st.vliw.push_back(VliwInstr{VliwOp::kGeConst, f_eleph_, f_min_, 0, 0,
                                    cfg_.threshold, {}});
        pipe_.add_stage(std::move(st));
    }
}

TowerPipelineFilter::Result TowerPipelineFilter::update(std::uint32_t key,
                                                        std::uint32_t len) {
    Phv phv = pipe_.make_phv();
    phv.set(f_key_, key);
    phv.set(f_len_, len);
    pipe_.execute(phv);
    Result r;
    r.estimate = phv.get(f_min_);
    r.elephant = phv.get(f_eleph_) != 0;
    return r;
}

void TowerPipelineFilter::reset_counters() {
    pipe_.fill_register_array(reg_c1_, 0);
    pipe_.fill_register_array(reg_c2_, 0);
}

}  // namespace p4lru::pipeline
