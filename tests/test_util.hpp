// Shared helpers for the p4lru test suite.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <deque>
#include <filesystem>
#include <optional>
#include <string>
#include <system_error>
#include <utility>
#include <vector>

#include "p4lru/common/random.hpp"
#include "p4lru/common/types.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace p4lru::testutil {

/// A unique per-test scratch directory, removed (recursively) on scope
/// exit.  Every test that touches disk goes through one of these so a
/// parallel `ctest -j` run can never collide on a shared /tmp path — each
/// instance mkdtemp()s its own directory under TMPDIR (default /tmp).
class ScopedTempDir {
  public:
    explicit ScopedTempDir(const std::string& tag = "p4lru_test") {
        namespace fs = std::filesystem;
        std::error_code ec;
        fs::path base = fs::temp_directory_path(ec);
        if (ec) base = "/tmp";
        std::string tmpl = (base / (tag + ".XXXXXX")).string();
        // mkdtemp mutates its argument in place and creates the directory
        // with mode 0700 — unique even across concurrent processes.
        if (::mkdtemp(tmpl.data()) != nullptr) {
            path_ = tmpl;
        } else {
            // Fall back to a pid-qualified name; tests still run.
            path_ = (base / (tag + "." + std::to_string(::getpid()))).string();
            fs::create_directories(path_, ec);
        }
    }

    ScopedTempDir(const ScopedTempDir&) = delete;
    ScopedTempDir& operator=(const ScopedTempDir&) = delete;

    ~ScopedTempDir() {
        std::error_code ec;
        std::filesystem::remove_all(path_, ec);
    }

    [[nodiscard]] const std::string& path() const noexcept { return path_; }

    /// A file (or subdirectory) path inside the directory.
    [[nodiscard]] std::string file(const std::string& name) const {
        return (std::filesystem::path(path_) / name).string();
    }

  private:
    std::string path_;
};

/// Reference strict-LRU cache, written in the most obvious way possible
/// (MRU-ordered vector, linear scans): the oracle the pipeline-friendly
/// implementations are checked against.
template <typename Key, typename Value>
class NaiveLru {
  public:
    explicit NaiveLru(std::size_t capacity) : capacity_(capacity) {}

    struct Result {
        bool hit = false;
        std::optional<std::pair<Key, Value>> evicted;
    };

    /// merge(old, incoming) applied on hit; replace on insert.
    template <typename MergeFn>
    Result update(const Key& k, const Value& v, MergeFn&& merge) {
        Result r;
        for (std::size_t i = 0; i < entries_.size(); ++i) {
            if (entries_[i].first == k) {
                r.hit = true;
                entries_[i].second = merge(entries_[i].second, v);
                std::rotate(entries_.begin(), entries_.begin() + i,
                            entries_.begin() + i + 1);
                return r;
            }
        }
        entries_.insert(entries_.begin(), {k, v});
        if (entries_.size() > capacity_) {
            r.evicted = entries_.back();
            entries_.pop_back();
        }
        return r;
    }

    Result update(const Key& k, const Value& v) {
        return update(k, v, [](const Value&, const Value& in) { return in; });
    }

    [[nodiscard]] std::optional<Value> find(const Key& k) const {
        for (const auto& [key, value] : entries_) {
            if (key == k) return value;
        }
        return std::nullopt;
    }

    /// Key at 1-based MRU position.
    [[nodiscard]] const Key& key_at(std::size_t pos) const {
        return entries_.at(pos - 1).first;
    }

    [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }

  private:
    std::size_t capacity_;
    std::vector<std::pair<Key, Value>> entries_;
};

/// Zipf-ish random key stream over a small universe — compact driver for
/// equivalence tests.
inline std::vector<std::uint32_t> random_keys(std::size_t count,
                                              std::uint32_t universe,
                                              std::uint64_t seed,
                                              double repeat_bias = 0.5) {
    rng::Xoshiro256 rng(seed);
    std::vector<std::uint32_t> keys;
    keys.reserve(count);
    std::uint32_t last = 1;
    for (std::size_t i = 0; i < count; ++i) {
        std::uint32_t k;
        if (!keys.empty() && rng.chance(repeat_bias)) {
            k = last;  // temporal locality
        } else {
            k = static_cast<std::uint32_t>(rng.between(1, universe));
        }
        keys.push_back(k);
        last = k;
    }
    return keys;
}

/// Small deterministic flow key.
inline FlowKey make_flow(std::uint32_t id) {
    FlowKey f;
    f.src_ip = 0x0A000000u | id;
    f.dst_ip = 0xC0A80000u | (id * 7919u);
    f.src_port = static_cast<std::uint16_t>(1000 + id % 50000);
    f.dst_port = 443;
    f.proto = 6;
    return f;
}

}  // namespace p4lru::testutil
