// Observability must be free when off and inert when on (ISSUE 9
// acceptance): a sharded replay with a Registry attached must produce a
// ShardedReport bit-identical to the same run without one — instruments
// count, they never steer — and the counts themselves must reconcile with
// the report and the target statistics exactly.
#include <gtest/gtest.h>

#include <cstdint>
#include <span>
#include <vector>

#include "p4lru/core/p4lru.hpp"
#include "p4lru/obs/metrics.hpp"
#include "p4lru/replay/replay.hpp"
#include "p4lru/systems/lruindex/db_server.hpp"
#include "p4lru/systems/lruindex/lruindex_target.hpp"
#include "p4lru/trace/trace_gen.hpp"

namespace p4lru::replay {
namespace {

using FlowCache =
    core::ParallelCache<core::P4lru<FlowKey, std::uint32_t, 3>, FlowKey,
                        std::uint32_t>;
using Ops = std::span<const ReplayOp<FlowKey, std::uint32_t>>;

std::vector<ReplayOp<FlowKey, std::uint32_t>> zipf_ops() {
    trace::TraceConfig cfg;
    cfg.seed = 47;
    cfg.total_packets = 40'000;
    cfg.segments = 4;
    return ops_from_packets(trace::generate_trace(cfg));
}

void check_report_equal(const ShardedReport& a, const ShardedReport& b) {
    EXPECT_EQ(a.stats, b.stats);
    EXPECT_EQ(a.shards, b.shards);
    EXPECT_EQ(a.threaded, b.threaded);
    EXPECT_EQ(a.backpressure_waits, b.backpressure_waits);
    EXPECT_EQ(a.drained_inline, b.drained_inline);
    EXPECT_EQ(a.abandoned_workers, b.abandoned_workers);
}

void check_obs_equivalence(Mode mode) {
    const auto ops = zipf_ops();
    ShardedConfig cfg;
    cfg.shards = 4;
    cfg.batch_ops = 128;
    cfg.mode = mode;

    FlowCache off_cache(1024, 0x91);
    const auto off = replay_sharded(off_cache, Ops(ops), cfg);

    obs::Registry reg;
    cfg.metrics = &reg;
    FlowCache on_cache(1024, 0x91);
    const auto on = replay_sharded(on_cache, Ops(ops), cfg);

    // Obs-on is bit-identical to obs-off: statistics, report shape, and
    // the final plane bytes.
    check_report_equal(on, off);
    std::vector<std::byte> want, got;
    off_cache.storage().save_planes(want);
    on_cache.storage().save_planes(got);
    EXPECT_EQ(want, got);

    // And the instruments reconcile exactly: one batch-apply histogram
    // sample per counted batch, every op accounted for.
    const obs::Snapshot snap = reg.snapshot();
    const std::uint64_t* batches = snap.counter("replay_batches_applied");
    const obs::HistogramSnapshot* lat =
        snap.histogram("replay_batch_apply_ns");
    ASSERT_NE(batches, nullptr);
    ASSERT_NE(lat, nullptr);
    EXPECT_GT(*batches, 0u);
    EXPECT_EQ(lat->count, *batches);
    ASSERT_NE(snap.gauge("replay_shard0_queue_depth"), nullptr)
        << "per-shard depth gauges not registered";
}

TEST(ObsReplayEquivalence, InlineModeBitIdenticalWithMetricsAttached) {
    check_obs_equivalence(Mode::kInline);
}

TEST(ObsReplayEquivalence, ThreadedModeBitIdenticalWithMetricsAttached) {
    check_obs_equivalence(Mode::kThreaded);
}

TEST(ObsReplayEquivalence, NullRegistryIsTheDefaultAndHarmless) {
    const auto ops = zipf_ops();
    ShardedConfig cfg;
    cfg.shards = 2;
    cfg.mode = Mode::kInline;
    ASSERT_EQ(cfg.metrics, nullptr) << "obs must be opt-in";
    FlowCache cache(1024, 0x91);
    const auto rep = replay_sharded(cache, Ops(ops), cfg);
    EXPECT_GT(rep.stats.ops, 0u);
}

TEST(ObsReplayEquivalence, LruIndexTargetCountersMatchStatsExactly) {
    using namespace p4lru::systems::lruindex;
    const DbServer server(10'000, ServerCosts{});
    LruIndexTarget::Config tcfg;
    tcfg.partitions = 4;
    tcfg.units_per_level = 32;

    trace::YcsbConfig wl;
    wl.items = 10'000;
    wl.seed = 9;
    const auto ops = make_index_ops(wl, 5'000);

    obs::Registry reg;
    LruIndexTarget target(server, tcfg);
    target.set_metrics(&reg);
    const auto stats = replay::replay_target_sequential(
        target, std::span<const LruIndexOp>(ops));

    const obs::Snapshot snap = reg.snapshot();
    ASSERT_NE(snap.counter("lruindex_hits"), nullptr);
    ASSERT_NE(snap.counter("lruindex_misses"), nullptr);
    EXPECT_EQ(*snap.counter("lruindex_hits"), stats.hits);
    EXPECT_EQ(*snap.counter("lruindex_misses"), stats.misses);
    EXPECT_EQ(*snap.counter("lruindex_hits") +
                  *snap.counter("lruindex_misses"),
              stats.ops);

    // Detaching stops the flow; the stats themselves are unaffected.
    target.set_metrics(nullptr);
    LruIndexTarget target2(server, tcfg);
    const auto stats2 = replay::replay_target_sequential(
        target2, std::span<const LruIndexOp>(ops));
    EXPECT_EQ(stats2, stats);
    EXPECT_EQ(*reg.snapshot().counter("lruindex_hits"), stats.hits)
        << "detached target kept counting";
}

}  // namespace
}  // namespace p4lru::replay
