// Exposition round trip and sampler semantics (DESIGN.md §13): a snapshot
// rendered by to_json_line must parse back field-identical (including
// escaped names and trimmed histogram bucket tails), damaged lines must be
// rejected with a useful Status, and the sampler's ring/JSONL sinks must
// agree with each other in both manual and background-thread modes.
#include "p4lru/obs/sampler.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "p4lru/obs/exposition.hpp"
#include "p4lru/obs/metrics.hpp"
#include "../test_util.hpp"

namespace p4lru::obs {
namespace {

/// Read a whole file into a string (the JSONL sink is small in tests).
std::string slurp(const std::string& path) {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    EXPECT_NE(f, nullptr) << path;
    std::string out;
    if (f != nullptr) {
        char buf[4096];
        std::size_t n = 0;
        while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
            out.append(buf, n);
        }
        std::fclose(f);
    }
    return out;
}

std::vector<std::string> lines_of(const std::string& text) {
    std::vector<std::string> out;
    std::size_t start = 0;
    while (start < text.size()) {
        const std::size_t nl = text.find('\n', start);
        if (nl == std::string::npos) {
            out.push_back(text.substr(start));
            break;
        }
        out.push_back(text.substr(start, nl - start));
        start = nl + 1;
    }
    return out;
}

void expect_snapshots_equal(const Snapshot& a, const Snapshot& b) {
    EXPECT_EQ(a.seq, b.seq);
    EXPECT_EQ(a.unix_us, b.unix_us);
    ASSERT_EQ(a.counters.size(), b.counters.size());
    for (std::size_t i = 0; i < a.counters.size(); ++i) {
        EXPECT_EQ(a.counters[i], b.counters[i]);
    }
    ASSERT_EQ(a.gauges.size(), b.gauges.size());
    for (std::size_t i = 0; i < a.gauges.size(); ++i) {
        EXPECT_EQ(a.gauges[i], b.gauges[i]);
    }
    ASSERT_EQ(a.histograms.size(), b.histograms.size());
    for (std::size_t i = 0; i < a.histograms.size(); ++i) {
        EXPECT_EQ(a.histograms[i].first, b.histograms[i].first);
        EXPECT_EQ(a.histograms[i].second.count, b.histograms[i].second.count);
        EXPECT_EQ(a.histograms[i].second.sum, b.histograms[i].second.sum);
        EXPECT_EQ(a.histograms[i].second.buckets,
                  b.histograms[i].second.buckets);
    }
}

TEST(ObsExposition, JsonLineRoundTripsFieldIdentical) {
    Registry reg;
    reg.counter("hits")->add(12);
    reg.counter("weird \"name\"\twith\\escapes")->add(1);
    reg.gauge("depth")->set(-42);
    Histogram* h = reg.histogram("lat_ns");
    h->record(0);
    h->record(3);
    h->record(900);
    h->record(~std::uint64_t{0});  // populates the saturating last bucket

    Snapshot snap = reg.snapshot();
    snap.seq = 7;
    snap.unix_us = 1'700'000'000'000'000ull;

    const std::string line = to_json_line(snap);
    EXPECT_EQ(line.find('\n'), std::string::npos) << "JSONL must be 1 line";
    const auto parsed = parse_snapshot_json(line);
    ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
    expect_snapshots_equal(parsed.value(), snap);
}

TEST(ObsExposition, TrimmedBucketTailZeroFillsOnParse) {
    Registry reg;
    reg.histogram("narrow")->record(5);  // only bucket 3 occupied
    Snapshot snap = reg.snapshot();
    const std::string line = to_json_line(snap);
    // The emitter trims the 60 trailing zero buckets.
    EXPECT_LT(line.size(), 200u) << line;
    const auto parsed = parse_snapshot_json(line);
    ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
    const HistogramSnapshot* h = parsed.value().histogram("narrow");
    ASSERT_NE(h, nullptr);
    EXPECT_EQ(h->buckets[3], 1u);
    for (std::size_t b = 4; b < kHistBuckets; ++b) {
        EXPECT_EQ(h->buckets[b], 0u) << "bucket " << b;
    }
}

TEST(ObsExposition, DamagedLinesAreRejected) {
    Registry reg;
    reg.counter("c")->add(1);
    Snapshot snap = reg.snapshot();
    const std::string line = to_json_line(snap);

    // A torn tail (the sampler's crash mode) fails to parse.
    EXPECT_FALSE(
        parse_snapshot_json(line.substr(0, line.size() / 2)).is_ok());
    // Trailing bytes after the object are rejected.
    EXPECT_FALSE(parse_snapshot_json(line + "x").is_ok());
    // Unknown top-level fields are out of contract.
    EXPECT_FALSE(
        parse_snapshot_json(R"({"seq":1,"unix_us":2,"counters":{},)"
                            R"("gauges":{},"bogus":{}})")
            .is_ok());
    EXPECT_FALSE(parse_snapshot_json("").is_ok());
    EXPECT_FALSE(parse_snapshot_json("not json").is_ok());
}

TEST(ObsExposition, PrometheusRendersCumulativeBuckets) {
    Registry reg;
    reg.counter("req total")->add(5);  // space must be sanitized
    reg.gauge("depth")->set(3);
    Histogram* h = reg.histogram("lat");
    h->record(1);
    h->record(2);
    h->record(3);

    const std::string text = to_prometheus(reg.snapshot());
    EXPECT_NE(text.find("# TYPE req_total counter"), std::string::npos);
    EXPECT_NE(text.find("req_total 5"), std::string::npos);
    EXPECT_NE(text.find("# TYPE depth gauge"), std::string::npos);
    // le="1" covers {0} + [1,1] = 1 sample; le="3" is cumulative = 3.
    EXPECT_NE(text.find("lat_bucket{le=\"1\"} 1"), std::string::npos);
    EXPECT_NE(text.find("lat_bucket{le=\"3\"} 3"), std::string::npos);
    EXPECT_NE(text.find("lat_bucket{le=\"+Inf\"} 3"), std::string::npos);
    EXPECT_NE(text.find("lat_sum 6"), std::string::npos);
    EXPECT_NE(text.find("lat_count 3"), std::string::npos);
}

TEST(ObsSampler, ManualModeRingAndJsonlAgree) {
    testutil::ScopedTempDir tmp{"p4lru_obs_sampler"};
    Registry reg;
    Counter* c = reg.counter("ops");

    SamplerConfig cfg;
    cfg.ring_capacity = 3;
    cfg.jsonl_path = tmp.file("metrics.jsonl");
    Sampler sampler(reg, cfg, /*start_thread=*/false);

    for (int i = 1; i <= 5; ++i) {
        c->add(10);
        sampler.sample_now();
    }
    EXPECT_EQ(sampler.samples_taken(), 5u);

    // Ring keeps the newest `ring_capacity` snapshots, oldest first.
    const std::vector<Snapshot> ring = sampler.ring();
    ASSERT_EQ(ring.size(), 3u);
    EXPECT_EQ(ring.front().seq, 3u);
    EXPECT_EQ(ring.back().seq, 5u);
    EXPECT_EQ(*ring.back().counter("ops"), 50u);

    // The JSONL sink holds *all* 5 records; every line parses and the
    // parsed counters match what the ring saw.
    const auto lines = lines_of(slurp(cfg.jsonl_path));
    ASSERT_EQ(lines.size(), 5u);
    for (std::size_t i = 0; i < lines.size(); ++i) {
        const auto parsed = parse_snapshot_json(lines[i]);
        ASSERT_TRUE(parsed.is_ok())
            << "line " << i << ": " << parsed.status().to_string();
        EXPECT_EQ(parsed.value().seq, i + 1);
        ASSERT_NE(parsed.value().counter("ops"), nullptr);
        EXPECT_EQ(*parsed.value().counter("ops"), (i + 1) * 10);
    }
}

TEST(ObsSampler, BackgroundThreadSamplesAndStopsClean) {
    testutil::ScopedTempDir tmp{"p4lru_obs_bg"};
    Registry reg;
    reg.counter("beat")->add(1);

    SamplerConfig cfg;
    cfg.period_ms = 5;
    cfg.jsonl_path = tmp.file("bg.jsonl");
    {
        Sampler sampler(reg, cfg);
        std::this_thread::sleep_for(std::chrono::milliseconds(60));
        sampler.stop();  // idempotent with the destructor
        EXPECT_GE(sampler.samples_taken(), 1u)
            << "background thread never fired";
    }
    // Clean shutdown: every line in the file is whole and parseable.
    const auto lines = lines_of(slurp(cfg.jsonl_path));
    ASSERT_GE(lines.size(), 1u);
    std::uint64_t prev_seq = 0;
    for (const auto& line : lines) {
        const auto parsed = parse_snapshot_json(line);
        ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
        EXPECT_GT(parsed.value().seq, prev_seq) << "seq not monotone";
        prev_seq = parsed.value().seq;
    }
}

TEST(ObsSampler, MissingSinkDirectoryDegradesToRingOnly) {
    Registry reg;
    reg.counter("c")->add(1);
    SamplerConfig cfg;
    cfg.jsonl_path = "/nonexistent-p4lru-dir/metrics.jsonl";
    Sampler sampler(reg, cfg, /*start_thread=*/false);
    sampler.sample_now();  // must not crash or throw
    EXPECT_EQ(sampler.ring().size(), 1u);
}

}  // namespace
}  // namespace p4lru::obs
