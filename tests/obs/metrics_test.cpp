// Registry/instrument semantics (DESIGN.md §13): striped counters and
// histograms must merge to *exact* totals under a multi-thread hammer (the
// stripes are a contention optimization, not a sampling one), the log2
// bucket boundaries must match the documented [2^(i-1), 2^i - 1] bands, and
// registry lookups must be stable (same name -> same pointer, forever).
#include "p4lru/obs/metrics.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

namespace p4lru::obs {
namespace {

TEST(ObsRegistry, SameNameResolvesToSamePointer) {
    Registry reg;
    Counter* c1 = reg.counter("hits");
    Counter* c2 = reg.counter("hits");
    EXPECT_EQ(c1, c2);
    EXPECT_NE(c1, reg.counter("misses"));

    Gauge* g1 = reg.gauge("depth");
    EXPECT_EQ(g1, reg.gauge("depth"));
    Histogram* h1 = reg.histogram("lat");
    EXPECT_EQ(h1, reg.histogram("lat"));

    // Namespaces are per-kind: a counter and a gauge may share a name.
    EXPECT_NE(static_cast<void*>(reg.counter("x")),
              static_cast<void*>(reg.gauge("x")));
}

TEST(ObsRegistry, SnapshotIsSortedAndLookupsWork) {
    Registry reg;
    reg.counter("zeta")->add(3);
    reg.counter("alpha")->add(1);
    reg.gauge("mid")->set(-7);
    reg.histogram("lat")->record(5);

    const Snapshot snap = reg.snapshot();
    ASSERT_EQ(snap.counters.size(), 2u);
    EXPECT_EQ(snap.counters[0].first, "alpha");
    EXPECT_EQ(snap.counters[1].first, "zeta");

    ASSERT_NE(snap.counter("zeta"), nullptr);
    EXPECT_EQ(*snap.counter("zeta"), 3u);
    EXPECT_EQ(snap.counter("nope"), nullptr);
    ASSERT_NE(snap.gauge("mid"), nullptr);
    EXPECT_EQ(*snap.gauge("mid"), -7);
    ASSERT_NE(snap.histogram("lat"), nullptr);
    EXPECT_EQ(snap.histogram("lat")->count, 1u);
}

TEST(ObsRegistry, MergedTotalsAreExactUnderConcurrentHammer) {
    Registry reg;
    Counter* c = reg.counter("hammered");
    Gauge* g = reg.gauge("hammered");
    Histogram* h = reg.histogram("hammered");

    constexpr std::size_t kThreads = 8;
    constexpr std::uint64_t kIters = 20'000;
    std::vector<std::thread> pool;
    pool.reserve(kThreads);
    for (std::size_t t = 0; t < kThreads; ++t) {
        pool.emplace_back([&] {
            for (std::uint64_t i = 0; i < kIters; ++i) {
                c->add(1);
                g->add(1);
                h->record(i);
            }
        });
    }
    for (auto& th : pool) th.join();

    // Exactness: every relaxed fetch_add lands in exactly one stripe, and
    // the read-side merge sums all of them — no sampling, no loss.
    EXPECT_EQ(c->value(), kThreads * kIters);
    EXPECT_EQ(g->value(),
              static_cast<std::int64_t>(kThreads * kIters));
    const HistogramSnapshot hs = h->snapshot();
    EXPECT_EQ(hs.count, kThreads * kIters);
    EXPECT_EQ(hs.sum, kThreads * (kIters * (kIters - 1) / 2));
    std::uint64_t bucket_total = 0;
    for (const std::uint64_t b : hs.buckets) bucket_total += b;
    EXPECT_EQ(bucket_total, hs.count) << "buckets lost a sample";
}

TEST(ObsRegistry, ConcurrentResolutionIsRaceFree) {
    // Threads racing get-or-create on overlapping names must all agree on
    // the resulting pointers and never double-count.
    Registry reg;
    constexpr std::size_t kThreads = 8;
    std::vector<std::thread> pool;
    for (std::size_t t = 0; t < kThreads; ++t) {
        pool.emplace_back([&reg] {
            for (int i = 0; i < 1'000; ++i) {
                reg.counter("shared_" + std::to_string(i % 7))->add(1);
            }
        });
    }
    for (auto& th : pool) th.join();
    std::uint64_t total = 0;
    for (int i = 0; i < 7; ++i) {
        total += reg.counter("shared_" + std::to_string(i))->value();
    }
    EXPECT_EQ(total, kThreads * 1'000u);
}

TEST(ObsHistogram, BucketBoundariesMatchTheLog2Bands) {
    // Bucket 0 = {0}; bucket i >= 1 = [2^(i-1), 2^i - 1].
    EXPECT_EQ(bucket_index(0), 0u);
    EXPECT_EQ(bucket_index(1), 1u);
    EXPECT_EQ(bucket_index(2), 2u);
    EXPECT_EQ(bucket_index(3), 2u);
    EXPECT_EQ(bucket_index(4), 3u);
    for (std::size_t i = 1; i + 1 < kHistBuckets; ++i) {
        const std::uint64_t lo = std::uint64_t{1} << (i - 1);
        const std::uint64_t hi = bucket_upper_bound(i);
        EXPECT_EQ(hi, (std::uint64_t{1} << i) - 1);
        EXPECT_EQ(bucket_index(lo), i) << "lower edge of bucket " << i;
        EXPECT_EQ(bucket_index(hi), i) << "upper edge of bucket " << i;
        EXPECT_EQ(bucket_index(hi + 1), i + 1) << "first value past " << i;
    }
    // The last bucket saturates: everything >= 2^62 lands in it.
    EXPECT_EQ(bucket_index(std::uint64_t{1} << 62), kHistBuckets - 1);
    EXPECT_EQ(bucket_index(std::uint64_t{1} << 63), kHistBuckets - 1);
    EXPECT_EQ(bucket_index(~std::uint64_t{0}), kHistBuckets - 1);
}

TEST(ObsHistogram, RecordedValuesLandInTheirBuckets) {
    Registry reg;
    Histogram* h = reg.histogram("lat");
    h->record(0);
    h->record(1);
    h->record(7);    // bucket 3 = [4, 7]
    h->record(8);    // bucket 4 = [8, 15]
    h->record(~std::uint64_t{0});
    const HistogramSnapshot s = h->snapshot();
    EXPECT_EQ(s.count, 5u);
    EXPECT_EQ(s.buckets[0], 1u);
    EXPECT_EQ(s.buckets[1], 1u);
    EXPECT_EQ(s.buckets[3], 1u);
    EXPECT_EQ(s.buckets[4], 1u);
    EXPECT_EQ(s.buckets[kHistBuckets - 1], 1u);
    EXPECT_DOUBLE_EQ(h->snapshot().mean(),
                     static_cast<double>(s.sum) / 5.0);
}

TEST(ObsGauge, LastWriteWinsAndAddAccumulates) {
    Registry reg;
    Gauge* g = reg.gauge("depth");
    EXPECT_EQ(g->value(), 0);
    g->set(42);
    EXPECT_EQ(g->value(), 42);
    g->set(-3);
    EXPECT_EQ(g->value(), -3);
    g->add(10);
    EXPECT_EQ(g->value(), 7);
}

TEST(ObsGauge, GlobalGaugePublishes) {
    set_global_gauge("obs_test_global", 123);
    const Snapshot snap = Registry::global().snapshot();
    ASSERT_NE(snap.gauge("obs_test_global"), nullptr);
    EXPECT_EQ(*snap.gauge("obs_test_global"), 123);
}

}  // namespace
}  // namespace p4lru::obs
