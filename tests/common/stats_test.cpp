#include "p4lru/common/stats.hpp"

#include <gtest/gtest.h>

#include "p4lru/common/table.hpp"

namespace p4lru::stats {
namespace {

TEST(Running, EmptyIsZero) {
    Running r;
    EXPECT_EQ(r.count(), 0u);
    EXPECT_EQ(r.mean(), 0.0);
    EXPECT_EQ(r.variance(), 0.0);
}

TEST(Running, MeanAndVariance) {
    Running r;
    for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) r.add(x);
    EXPECT_DOUBLE_EQ(r.mean(), 5.0);
    EXPECT_NEAR(r.variance(), 32.0 / 7.0, 1e-12);  // sample variance
    EXPECT_DOUBLE_EQ(r.min(), 2.0);
    EXPECT_DOUBLE_EQ(r.max(), 9.0);
    EXPECT_DOUBLE_EQ(r.sum(), 40.0);
}

TEST(Running, SingleValue) {
    Running r;
    r.add(3.5);
    EXPECT_DOUBLE_EQ(r.mean(), 3.5);
    EXPECT_DOUBLE_EQ(r.variance(), 0.0);
    EXPECT_DOUBLE_EQ(r.min(), 3.5);
    EXPECT_DOUBLE_EQ(r.max(), 3.5);
}

TEST(Percentiles, Quantiles) {
    Percentiles p;
    for (int i = 1; i <= 100; ++i) p.add(i);
    EXPECT_DOUBLE_EQ(p.quantile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(p.quantile(1.0), 100.0);
    EXPECT_NEAR(p.quantile(0.5), 50.0, 1.0);
    EXPECT_NEAR(p.quantile(0.99), 99.0, 1.0);
}

TEST(Percentiles, EmptyThrows) {
    Percentiles p;
    EXPECT_THROW((void)p.quantile(0.5), std::logic_error);
}

TEST(Ratio, Accumulates) {
    Ratio r;
    r.hit(true);
    r.hit(false);
    r.hit(true);
    r.hit(true);
    EXPECT_DOUBLE_EQ(r.value(), 0.75);
}

TEST(Ratio, EmptyIsZero) {
    EXPECT_DOUBLE_EQ(Ratio{}.value(), 0.0);
}

TEST(ConsoleTable, RendersAlignedRows) {
    ConsoleTable t({"name", "value"});
    t.add_row({"x", "1"});
    t.add_row({"longer", "2"});
    const auto out = t.render();
    EXPECT_NE(out.find("| name   | value |"), std::string::npos);
    EXPECT_NE(out.find("| longer | 2     |"), std::string::npos);
}

TEST(ConsoleTable, RejectsBadShapes) {
    EXPECT_THROW(ConsoleTable({}), std::invalid_argument);
    ConsoleTable t({"a", "b"});
    EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(ConsoleTable, NumFormatsPrecision) {
    EXPECT_EQ(ConsoleTable::num(3.14159, 2), "3.14");
    EXPECT_EQ(ConsoleTable::num(2.0, 0), "2");
}

}  // namespace
}  // namespace p4lru::stats
