#include "p4lru/common/hash.hpp"

#include <gtest/gtest.h>

#include <array>
#include <set>
#include <string_view>
#include <vector>

namespace p4lru::hash {
namespace {

std::vector<std::uint8_t> bytes(std::string_view s) {
    return {s.begin(), s.end()};
}

// Known-answer tests against published reference values.
TEST(Crc32, ReferenceVectors) {
    // CRC-32/ISO-HDLC of "123456789" is 0xCBF43926 (the classic check value).
    const auto check = bytes("123456789");
    EXPECT_EQ(crc32(check), 0xCBF43926u);
    // Empty input with zero seed is 0.
    EXPECT_EQ(crc32({}), 0x00000000u);
    // CRC of "a".
    const auto a = bytes("a");
    EXPECT_EQ(crc32(a), 0xE8B7BE43u);
}

TEST(Crc32, SeedChangesDigest) {
    const auto data = bytes("p4lru");
    EXPECT_NE(crc32(data, 0), crc32(data, 1));
    EXPECT_EQ(crc32(data, 7), crc32(data, 7));
}

TEST(Murmur3, ReferenceVectors) {
    // Published x86_32 vectors.
    EXPECT_EQ(murmur3_32({}, 0), 0x00000000u);
    EXPECT_EQ(murmur3_32({}, 1), 0x514E28B7u);
    const auto hello = bytes("hello");
    EXPECT_EQ(murmur3_32({hello.data(), hello.size()}, 0), 0x248BFA47u);
    const auto hw = bytes("hello, world");
    EXPECT_EQ(murmur3_32({hw.data(), hw.size()}, 0), 0x149BBB7Fu);
}

TEST(XxHash64, ReferenceVectors) {
    // xxHash64 of the empty input with seed 0.
    EXPECT_EQ(xxhash64({}, 0), 0xEF46DB3751D8E999ull);
    // Longer-than-32-byte input exercises the 4-lane loop; self-consistency
    // plus avalanche checks.
    std::vector<std::uint8_t> data(100);
    for (std::size_t i = 0; i < data.size(); ++i) {
        data[i] = static_cast<std::uint8_t>(i);
    }
    const auto h1 = xxhash64({data.data(), data.size()}, 0);
    data[50] ^= 1;
    const auto h2 = xxhash64({data.data(), data.size()}, 0);
    EXPECT_NE(h1, h2);
    // Flipping one input bit flips roughly half the output bits.
    EXPECT_GT(__builtin_popcountll(h1 ^ h2), 16);
}

TEST(Mix64, BijectiveOnSamples) {
    std::set<std::uint64_t> outs;
    for (std::uint64_t i = 0; i < 10'000; ++i) {
        outs.insert(mix64(i));
    }
    EXPECT_EQ(outs.size(), 10'000u);
}

TEST(FlowHasher, SlotsAreUniform) {
    FlowHasher h(3, 64);
    std::array<std::size_t, 64> counts{};
    for (std::uint32_t i = 0; i < 64'000; ++i) {
        FlowKey k;
        k.src_ip = i;
        k.dst_ip = i * 2654435761u;
        k.src_port = static_cast<std::uint16_t>(i);
        ++counts[h.slot(k)];
    }
    for (const auto c : counts) {
        EXPECT_NEAR(static_cast<double>(c), 1000.0, 250.0);
    }
}

TEST(FlowHasher, SlotU32MatchesManualCrc) {
    FlowHasher h(9, 128);
    const std::uint32_t key = 0xDEADBEEF;
    std::uint8_t b[4] = {0xEF, 0xBE, 0xAD, 0xDE};
    const auto digest = crc32({b, 4}, 9);
    EXPECT_EQ(h.slot_u32(key), (std::uint64_t{digest} * 128) >> 32);
}

TEST(Fingerprint32, NeverZero) {
    for (std::uint32_t i = 0; i < 50'000; ++i) {
        FlowKey k;
        k.src_ip = i;
        k.dst_ip = ~i;
        EXPECT_NE(fingerprint32(k), 0u);
    }
}

TEST(Fingerprint32, LowCollisionRate) {
    std::set<std::uint32_t> fps;
    const std::size_t n = 100'000;
    for (std::uint32_t i = 0; i < n; ++i) {
        FlowKey k;
        k.src_ip = i;
        k.dst_ip = i * 7919;
        k.src_port = static_cast<std::uint16_t>(i >> 4);
        fps.insert(fingerprint32(k));
    }
    // Expected birthday collisions for 1e5 keys in 2^32: ~1.2.
    EXPECT_GT(fps.size(), n - 10);
}

TEST(FlowKey, BytesLayoutIsStable) {
    FlowKey k;
    k.src_ip = 0x01020304;
    k.dst_ip = 0x05060708;
    k.src_port = 0x0A0B;
    k.dst_port = 0x0C0D;
    k.proto = 17;
    const auto b = k.bytes();
    EXPECT_EQ(b[0], 0x04);  // little-endian src_ip
    EXPECT_EQ(b[3], 0x01);
    EXPECT_EQ(b[4], 0x08);
    EXPECT_EQ(b[8], 0x0B);
    EXPECT_EQ(b[12], 17);
}

TEST(FlowKey, ToStringIsHumanReadable) {
    FlowKey k;
    k.src_ip = 0x0A000001;
    k.dst_ip = 0xC0A80102;
    k.src_port = 1234;
    k.dst_port = 443;
    k.proto = 6;
    EXPECT_EQ(k.to_string(), "10.0.0.1:1234 -> 192.168.1.2:443 proto=6");
}

}  // namespace
}  // namespace p4lru::hash
