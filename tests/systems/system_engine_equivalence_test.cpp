// The migration property suite (DESIGN.md §11): every system replay target
// — LruMon, LruTable, LruIndex — produces bit-identical statistics AND
// bit-identical final state images across
//
//   * sequential replay,
//   * inline-batched sharded replay,
//   * threaded-sharded replay over random shard geometry,
//   * a mid-stream kill-and-resume through the generic target checkpoint
//     (in-memory and via the on-disk "P4LRUTGC" round trip), and
//   * threaded replay under injected worker stalls / batch delays.
//
// The properties hold because each target partitions its state into
// disjoint units routed by content hash, the engine preserves per-unit
// arrival order in every mode, and the statistics are integer sums (plus
// min/max timestamps) that merge losslessly.  State images are compared as
// byte vectors: save_state() is the strongest observable the targets have.
#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <random>
#include <span>
#include <string>
#include <vector>

#include "p4lru/cache/policy.hpp"
#include "p4lru/fault/fault_plan.hpp"
#include "p4lru/replay/op_source.hpp"
#include "p4lru/replay/replay_target.hpp"
#include "p4lru/replay/target_checkpoint.hpp"
#include "p4lru/systems/lruindex/lruindex_target.hpp"
#include "p4lru/systems/lrumon/lrumon_target.hpp"
#include "p4lru/systems/lrutable/lrutable_target.hpp"
#include "p4lru/trace/trace_gen.hpp"
#include "p4lru/trace/trace_io.hpp"
#include "p4lru/trace/trace_source.hpp"
#include "p4lru/trace/ycsb.hpp"
#include "../test_util.hpp"

namespace p4lru {
namespace {

using replay::Mode;
using replay::ShardedConfig;

// ---------------------------------------------------------------------------
// Fixtures: small-but-nontrivial op streams and target factories.

std::vector<PacketRecord> zipf_trace(std::uint64_t seed,
                                     std::size_t packets = 40'000) {
    trace::TraceConfig cfg;
    cfg.seed = seed;
    cfg.total_packets = packets;
    cfg.segments = 4;
    return trace::generate_trace(cfg);
}

systems::lrumon::LruMonTarget make_lrumon(std::size_t partitions = 8) {
    using namespace systems::lrumon;
    LruMonConfig cfg;
    cfg.threshold = 400;  // low enough that elephants exist at this scale
    return LruMonTarget(
        partitions,
        [](std::size_t p) {
            FilterConfig fc;
            fc.cm_width = 1u << 12;
            fc.cm_depth = 2;
            fc.seed = 0x70EEE + p;
            return std::make_unique<CmFilter>(fc);
        },
        [](std::size_t p) {
            return std::make_unique<cache::P4lruArrayPolicy<
                std::uint32_t, FlowLen, 3, core::AddMerge>>(
                96, static_cast<std::uint32_t>(0xF11 + p * 0x9E37u));
        },
        cfg);
}

systems::lrutable::LruTableTarget make_lrutable(std::size_t partitions = 6) {
    using namespace systems::lrutable;
    return LruTableTarget(
        partitions,
        [](std::size_t p) {
            return std::make_unique<cache::P4lruArrayPolicy<
                VirtualAddress, std::uint32_t, 3>>(
                120, static_cast<std::uint32_t>(0xAB + p * 0x5bd1u));
        },
        LruTableConfig{});
}

const systems::lruindex::DbServer& shared_db_server() {
    static const systems::lruindex::DbServer server(
        20'000, systems::lruindex::ServerCosts{});
    return server;
}

systems::lruindex::LruIndexTarget make_lruindex(
    const fault::FlakyService* flaky = nullptr) {
    systems::lruindex::LruIndexTarget::Config cfg;
    cfg.partitions = 5;
    cfg.levels = 3;
    cfg.units_per_level = 24;
    cfg.flaky = flaky;
    return systems::lruindex::LruIndexTarget(shared_db_server(), cfg);
}

std::vector<systems::lruindex::LruIndexOp> ycsb_ops(
    std::size_t count = 30'000) {
    trace::YcsbConfig cfg;
    cfg.items = 20'000;
    cfg.zipf_alpha = 0.9;
    return systems::lruindex::make_index_ops(cfg, count);
}

template <typename Target>
std::vector<std::byte> state_of(const Target& t) {
    std::vector<std::byte> out;
    t.save_state(out);
    return out;
}

// ---------------------------------------------------------------------------
// Property 1: sequential == inline == threaded, over random shard geometry.

template <typename Make, typename Op>
void check_mode_equivalence(Make make, const std::vector<Op>& ops,
                            std::uint32_t geometry_seed) {
    auto seq_target = make();
    using Target = decltype(seq_target);
    using Stats = typename Target::Stats;
    const Stats seq = replay::replay_target_sequential(
        seq_target, std::span<const Op>(ops));
    const std::vector<std::byte> seq_state = state_of(seq_target);
    ASSERT_FALSE(seq_state.empty());

    std::mt19937 rng(geometry_seed);
    for (int trial = 0; trial < 6; ++trial) {
        ShardedConfig cfg;
        cfg.shards = 1 + rng() % 6;
        cfg.batch_ops = std::size_t{16} << (rng() % 5);
        cfg.queue_batches = 4 + rng() % 12;
        cfg.mode = trial % 2 == 0 ? Mode::kInline : Mode::kThreaded;
        auto t = make();
        const auto rep =
            replay::replay_target_sharded(t, std::span<const Op>(ops), cfg);
        EXPECT_EQ(rep.stats, seq)
            << "diverged at shards=" << cfg.shards
            << " batch=" << cfg.batch_ops << " mode="
            << (cfg.mode == Mode::kInline ? "inline" : "threaded");
        EXPECT_EQ(state_of(t), seq_state)
            << "state image diverged at shards=" << cfg.shards;
    }
}

TEST(SystemEngineEquivalence, LruMonModesAgree) {
    check_mode_equivalence([] { return make_lrumon(); }, zipf_trace(11),
                           0xA1);
}

TEST(SystemEngineEquivalence, LruTableModesAgree) {
    check_mode_equivalence([] { return make_lrutable(); }, zipf_trace(23),
                           0xB2);
}

TEST(SystemEngineEquivalence, LruIndexModesAgree) {
    check_mode_equivalence([] { return make_lruindex(); }, ycsb_ops(), 0xC3);
}

// ---------------------------------------------------------------------------
// Property 2: a mid-stream kill-and-resume — fresh target, restored from a
// checkpoint, replaying the suffix under a *different* geometry — converges
// to the straight run, in memory and through the on-disk round trip.

template <typename Make, typename Op>
void check_kill_and_resume(Make make, const std::vector<Op>& ops,
                           const std::string& disk_tag) {
    auto seq_target = make();
    using Target = decltype(seq_target);
    using Stats = typename Target::Stats;
    const Stats seq = replay::replay_target_sequential(
        seq_target, std::span<const Op>(ops));
    const std::vector<std::byte> seq_state = state_of(seq_target);

    // Checkpointed run: capture cuts every 8 delivered batches.
    auto live = make();
    std::vector<replay::TargetCheckpoint<Stats>> cps;
    auto sink = [&cps](replay::TargetCheckpoint<Stats>&& cp) {
        cps.push_back(std::move(cp));
    };
    ShardedConfig run_cfg;
    run_cfg.shards = 3;
    run_cfg.batch_ops = 64;
    run_cfg.mode = Mode::kThreaded;
    const auto full = replay::replay_target_checkpointed(
        live, std::span<const Op>(ops), run_cfg, 8, sink);
    EXPECT_EQ(full.stats, seq) << "checkpointed run diverged";
    ASSERT_FALSE(cps.empty());
    const auto& cp = cps[cps.size() / 2];
    ASSERT_GT(cp.cursor, 0u);
    ASSERT_LT(cp.cursor, ops.size());

    // "Kill": the live target is abandoned; a fresh one resumes the suffix
    // under a different shard count, batch size and mode.
    ShardedConfig resume_cfg;
    resume_cfg.shards = 5;
    resume_cfg.batch_ops = 32;
    resume_cfg.mode = Mode::kInline;
    auto resumed = make();
    const auto res = replay::resume_target_sharded(
        resumed, std::span<const Op>(ops), cp, resume_cfg);
    ASSERT_TRUE(res.is_ok()) << res.status().to_string();
    EXPECT_EQ(res.value().stats, seq) << "resumed run diverged";
    EXPECT_EQ(state_of(resumed), seq_state) << "resumed state diverged";
    // The resumed report must carry the cut's degradation telemetry — it
    // reads as one uninterrupted run, never restarting counters from zero.
    EXPECT_GE(res.value().backpressure_waits, cp.backpressure_waits);
    EXPECT_GE(res.value().park_wait_us, cp.park_wait_us);
    EXPECT_GE(res.value().drained_inline, cp.drained_inline);
    EXPECT_GE(res.value().abandoned_workers, cp.abandoned_workers);

    // Disk round trip of the same cut.
    testutil::ScopedTempDir tmp{"p4lru_tgc_" + disk_tag};
    const std::string path = tmp.file("cut.tgc");
    ASSERT_TRUE(replay::write_target_checkpoint(path, cp).is_ok());
    const auto rd = replay::read_target_checkpoint_checked<Stats>(path);
    ASSERT_TRUE(rd.is_ok()) << rd.status().to_string();
    auto from_disk = make();
    resume_cfg.mode = Mode::kThreaded;
    const auto res2 = replay::resume_target_sharded(
        from_disk, std::span<const Op>(ops), rd.value(), resume_cfg);
    ASSERT_TRUE(res2.is_ok()) << res2.status().to_string();
    EXPECT_EQ(res2.value().stats, seq) << "disk-resumed run diverged";
    EXPECT_EQ(state_of(from_disk), seq_state)
        << "disk-resumed state diverged";
    EXPECT_GE(res2.value().backpressure_waits, rd.value().backpressure_waits);
    EXPECT_GE(res2.value().park_wait_us, rd.value().park_wait_us);
    EXPECT_GE(res2.value().drained_inline, rd.value().drained_inline);
    EXPECT_GE(res2.value().abandoned_workers, rd.value().abandoned_workers);
}

TEST(SystemEngineEquivalence, LruMonKillAndResume) {
    check_kill_and_resume([] { return make_lrumon(); }, zipf_trace(31),
                          "lrumon");
}

TEST(SystemEngineEquivalence, LruTableKillAndResume) {
    check_kill_and_resume([] { return make_lrutable(); }, zipf_trace(37),
                          "lrutable");
}

TEST(SystemEngineEquivalence, LruIndexKillAndResume) {
    check_kill_and_resume([] { return make_lruindex(); }, ycsb_ops(),
                          "lruindex");
}

// ---------------------------------------------------------------------------
// Property 3: injected worker stalls and batch delays change *when* work
// happens, never what — threaded replay under a misbehaving worker still
// matches the sequential baseline, and the degradation ladder engaged.

template <typename Make, typename Op>
void check_stall_equivalence(Make make, const std::vector<Op>& ops) {
    auto seq_target = make();
    using Target = decltype(seq_target);
    using Stats = typename Target::Stats;
    const Stats seq = replay::replay_target_sequential(
        seq_target, std::span<const Op>(ops));
    const std::vector<std::byte> seq_state = state_of(seq_target);

    fault::FaultPlan plan;
    plan.stall_worker(0, 2).delay_batch(1, 3, 120).delay_batch(2, 1, 60);
    const fault::InjectedFaults faults(plan);
    ShardedConfig cfg;
    cfg.shards = 4;
    cfg.batch_ops = 32;
    cfg.mode = Mode::kThreaded;
    auto t = make();
    const auto rep = replay::replay_target_sharded(
        t, std::span<const Op>(ops), cfg, faults);
    EXPECT_EQ(rep.stats, seq) << "stalled run diverged";
    EXPECT_EQ(state_of(t), seq_state) << "stalled state diverged";
    // The stalled worker must actually have been worked around.
    EXPECT_GT(rep.drained_inline + rep.abandoned_workers, 0u);
}

TEST(SystemEngineEquivalence, LruMonWorkerStallsAreInvisible) {
    check_stall_equivalence([] { return make_lrumon(); }, zipf_trace(41));
}

TEST(SystemEngineEquivalence, LruTableWorkerStallsAreInvisible) {
    check_stall_equivalence([] { return make_lrutable(); }, zipf_trace(43));
}

TEST(SystemEngineEquivalence, LruIndexWorkerStallsAreInvisible) {
    check_stall_equivalence([] { return make_lruindex(); }, ycsb_ops());
}

// ---------------------------------------------------------------------------
// Property 4: data faults (op corruption) run on single-owner paths;
// a corrupted key re-routes deterministically, so two inline geometries
// still agree with each other.

TEST(SystemEngineEquivalence, LruMonOpCorruptionIsGeometryInvariant) {
    const auto ops = zipf_trace(47, 20'000);
    fault::FaultPlan plan;
    plan.corrupt_op(500, 0xDEADBEEF).corrupt_op(7'000, 0x42);
    const fault::InjectedFaults faults(plan);

    auto run = [&](std::size_t shards) {
        auto t = make_lrumon();
        ShardedConfig cfg;
        cfg.shards = shards;
        cfg.batch_ops = 48;
        cfg.mode = Mode::kInline;
        const auto rep = replay::replay_target_sharded(
            t, std::span<const PacketRecord>(ops), cfg, faults);
        return std::pair{rep.stats, state_of(t)};
    };
    const auto [s1, st1] = run(1);
    const auto [s4, st4] = run(4);
    EXPECT_EQ(s1, s4);
    EXPECT_EQ(st1, st4);

    // And the corruption was not a no-op: the fault-free run differs.
    auto clean = make_lrumon();
    const auto clean_stats = replay::replay_target_sequential(
        clean, std::span<const PacketRecord>(ops));
    EXPECT_NE(state_of(clean), st1);
    (void)clean_stats;
}

// ---------------------------------------------------------------------------
// Property 5: a flaky DB server is content-addressed through op.seq, so
// retries and failures are identical in every engine mode.

TEST(SystemEngineEquivalence, LruIndexFlakyServerIsModeInvariant) {
    const auto ops = ycsb_ops(20'000);
    const fault::FlakyService flaky(0xF1A6, 257, 2);

    auto seq_target = make_lruindex(&flaky);
    const auto seq = replay::replay_target_sequential(
        seq_target, std::span<const systems::lruindex::LruIndexOp>(ops));
    EXPECT_GT(seq.retries, 0u);
    EXPECT_EQ(seq.wrong_replies, 0u);

    ShardedConfig cfg;
    cfg.shards = 4;
    cfg.batch_ops = 64;
    cfg.mode = Mode::kThreaded;
    auto t = make_lruindex(&flaky);
    const auto rep = replay::replay_target_sharded(
        t, std::span<const systems::lruindex::LruIndexOp>(ops), cfg);
    EXPECT_EQ(rep.stats, seq);
    EXPECT_EQ(state_of(t), state_of(seq_target));

    // Exhausting max_attempts completes queries as failures.
    const fault::FlakyService stubborn(0xF1A6, 101, 64);
    auto f = make_lruindex(&stubborn);
    const auto failed = replay::replay_target_sequential(
        f, std::span<const systems::lruindex::LruIndexOp>(ops));
    EXPECT_GT(failed.failed_queries, 0u);
}

// ---------------------------------------------------------------------------
// Reports derive from merged statistics only — equal stats, equal reports.

TEST(SystemEngineEquivalence, ReportsDeriveFromMergedStats) {
    const auto trace = zipf_trace(53, 20'000);
    auto a = make_lrumon();
    auto b = make_lrumon();
    const auto sa = replay::replay_target_sequential(
        a, std::span<const PacketRecord>(trace));
    ShardedConfig cfg;
    cfg.shards = 3;
    cfg.mode = Mode::kThreaded;
    const auto rb = replay::replay_target_sharded(
        b, std::span<const PacketRecord>(trace), cfg);
    ASSERT_EQ(sa, rb.stats);
    const auto ra = a.report(sa);
    const auto rbb = b.report(rb.stats);
    EXPECT_EQ(ra.uploads, rbb.uploads);
    EXPECT_EQ(ra.measured_bytes, rbb.measured_bytes);
    EXPECT_EQ(ra.max_flow_error, rbb.max_flow_error);
    EXPECT_EQ(ra.overestimated_flows, rbb.overestimated_flows);
    EXPECT_EQ(ra.total_bytes, rbb.total_bytes);
    EXPECT_EQ(ra.total_error_rate, rbb.total_error_rate);
    EXPECT_EQ(ra.upload_kpps, rbb.upload_kpps);
}

// ---------------------------------------------------------------------------
// Property 6: the engine is source-agnostic (DESIGN.md §14).  Pulling the
// same on-disk trace through VectorSource, MmapSource, or ChunkedFileSource
// (chunk sized so batches straddle chunk boundaries) yields bit-identical
// stats and state images in every engine mode — and a kill-and-resume may
// switch sources between the cut and the resume without a trace.

enum class SourceKind { kVector, kMmap, kChunked };

constexpr SourceKind kAllSources[] = {SourceKind::kVector, SourceKind::kMmap,
                                      SourceKind::kChunked};

const char* source_label(SourceKind k) {
    switch (k) {
        case SourceKind::kVector: return "vector";
        case SourceKind::kMmap: return "mmap";
        case SourceKind::kChunked: return "chunked";
    }
    return "?";
}

std::unique_ptr<trace::TraceSource> open_source(
    SourceKind kind, const std::string& path,
    const std::vector<PacketRecord>& trace) {
    switch (kind) {
        case SourceKind::kVector:
            return std::make_unique<trace::VectorSource>(
                std::span<const PacketRecord>(trace));
        case SourceKind::kMmap: {
            auto src = trace::MmapSource::open(path);
            if (!src.is_ok()) {
                ADD_FAILURE() << "mmap open: " << src.status().to_string();
                return nullptr;
            }
            return std::move(src).value();
        }
        case SourceKind::kChunked: {
            trace::ChunkedSourceOptions opts;
            opts.chunk_records = 777;  // no batch size divides it: stitching
            auto src = trace::ChunkedFileSource::open(path, opts);
            if (!src.is_ok()) {
                ADD_FAILURE() << "chunked open: " << src.status().to_string();
                return nullptr;
            }
            return std::move(src).value();
        }
    }
    return nullptr;
}

template <typename Make>
void check_source_equivalence(Make make, const std::string& disk_tag) {
    const auto trace = zipf_trace(61, 30'000);
    testutil::ScopedTempDir tmp{"p4lru_src_equiv_" + disk_tag};
    const std::string path = tmp.file("trace.bin");
    trace::write_trace(path, trace);

    // Oracle: in-memory sequential replay over the raw span.
    auto ref_target = make();
    const auto ref = replay::replay_target_sequential(
        ref_target, std::span<const PacketRecord>(trace));
    const std::vector<std::byte> ref_state = state_of(ref_target);

    ShardedConfig inline_cfg;
    inline_cfg.shards = 4;
    inline_cfg.batch_ops = 96;
    inline_cfg.mode = Mode::kInline;
    ShardedConfig threaded_cfg;
    threaded_cfg.shards = 3;
    threaded_cfg.batch_ops = 64;
    threaded_cfg.mode = Mode::kThreaded;

    for (const SourceKind kind : kAllSources) {
        auto src = open_source(kind, path, trace);
        ASSERT_NE(src, nullptr);
        replay::PacketTraceOpSource ops(*src);

        auto seq = make();
        const auto seq_run =
            replay::replay_target_sequential_stream(seq, ops);
        ASSERT_TRUE(seq_run.is_ok())
            << source_label(kind) << ": " << seq_run.status().to_string();
        EXPECT_EQ(seq_run.value(), ref)
            << source_label(kind) << " sequential diverged";
        EXPECT_EQ(state_of(seq), ref_state)
            << source_label(kind) << " sequential state diverged";

        ASSERT_TRUE(src->seek(0).is_ok());
        auto inl = make();
        const auto inl_run =
            replay::replay_target_sharded_stream(inl, ops, inline_cfg);
        ASSERT_TRUE(inl_run.is_ok())
            << source_label(kind) << ": " << inl_run.status().to_string();
        EXPECT_EQ(inl_run.value().stats, ref)
            << source_label(kind) << " inline diverged";
        EXPECT_EQ(state_of(inl), ref_state)
            << source_label(kind) << " inline state diverged";

        ASSERT_TRUE(src->seek(0).is_ok());
        auto thr = make();
        const auto thr_run =
            replay::replay_target_sharded_stream(thr, ops, threaded_cfg);
        ASSERT_TRUE(thr_run.is_ok())
            << source_label(kind) << ": " << thr_run.status().to_string();
        EXPECT_EQ(thr_run.value().stats, ref)
            << source_label(kind) << " threaded diverged";
        EXPECT_EQ(state_of(thr), ref_state)
            << source_label(kind) << " threaded state diverged";
    }
}

TEST(SystemEngineEquivalence, LruMonTraceSourcesAgree) {
    check_source_equivalence([] { return make_lrumon(); }, "lrumon");
}

TEST(SystemEngineEquivalence, LruTableTraceSourcesAgree) {
    check_source_equivalence([] { return make_lrutable(); }, "lrutable");
}

TEST(SystemEngineEquivalence, KillAndResumeMaySwitchTraceSources) {
    const auto trace = zipf_trace(67, 30'000);
    testutil::ScopedTempDir tmp{"p4lru_src_resume"};
    const std::string path = tmp.file("trace.bin");
    trace::write_trace(path, trace);

    auto ref_target = make_lrumon();
    using Target = decltype(ref_target);
    using Stats = typename Target::Stats;
    const Stats ref = replay::replay_target_sequential(
        ref_target, std::span<const PacketRecord>(trace));
    const std::vector<std::byte> ref_state = state_of(ref_target);

    // Checkpointed run over the background-reader source: cuts every 8
    // delivered batches, cursors are op indices into the stream.
    auto chunked = open_source(SourceKind::kChunked, path, trace);
    ASSERT_NE(chunked, nullptr);
    replay::PacketTraceOpSource ops(*chunked);
    std::vector<replay::TargetCheckpoint<Stats>> cps;
    auto sink = [&cps](replay::TargetCheckpoint<Stats>&& cp) {
        cps.push_back(std::move(cp));
    };
    ShardedConfig run_cfg;
    run_cfg.shards = 3;
    run_cfg.batch_ops = 64;
    run_cfg.mode = Mode::kThreaded;
    auto live = make_lrumon();
    const auto full = replay::replay_target_checkpointed_stream(
        live, ops, run_cfg, 8, sink);
    ASSERT_TRUE(full.is_ok()) << full.status().to_string();
    EXPECT_EQ(full.value().stats, ref) << "checkpointed chunked run diverged";
    ASSERT_FALSE(cps.empty());
    const auto& cp = cps[cps.size() / 2];
    ASSERT_GT(cp.cursor, 0u);
    ASSERT_LT(cp.cursor, trace.size());

    // Resume the suffix through every source kind under a different
    // geometry: the cut must not remember which source produced it.
    ShardedConfig resume_cfg;
    resume_cfg.shards = 5;
    resume_cfg.batch_ops = 32;
    resume_cfg.mode = Mode::kInline;
    for (const SourceKind kind : kAllSources) {
        auto src = open_source(kind, path, trace);
        ASSERT_NE(src, nullptr);
        replay::PacketTraceOpSource resume_ops(*src);
        auto resumed = make_lrumon();
        const auto res = replay::resume_target_sharded_stream(
            resumed, resume_ops, cp, resume_cfg);
        ASSERT_TRUE(res.is_ok())
            << source_label(kind) << ": " << res.status().to_string();
        EXPECT_EQ(res.value().stats, ref)
            << source_label(kind) << " resume diverged";
        EXPECT_EQ(state_of(resumed), ref_state)
            << source_label(kind) << " resume state diverged";
    }
}

}  // namespace
}  // namespace p4lru
