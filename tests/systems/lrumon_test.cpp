#include "p4lru/systems/lrumon/lrumon.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "../test_util.hpp"
#include "p4lru/trace/trace_gen.hpp"

namespace p4lru::systems::lrumon {
namespace {

using testutil::make_flow;
using MonPolicy = cache::ReplacementPolicy<std::uint32_t, FlowLen>;

std::unique_ptr<MonPolicy> p4lru3(std::size_t entries) {
    return std::make_unique<cache::P4lruArrayPolicy<std::uint32_t, FlowLen, 3,
                                                    core::AddMerge>>(entries,
                                                                     0xB);
}

std::unique_ptr<FlowFilter> tower(TimeNs reset = 10 * kMillisecond) {
    FilterConfig cfg;
    cfg.reset_period = reset;
    cfg.tower_width1 = 1u << 14;
    cfg.tower_width2 = 1u << 13;
    return std::make_unique<TowerFilter>(cfg);
}

PacketRecord packet(std::uint32_t flow_id, TimeNs ts, std::uint32_t len) {
    PacketRecord p;
    p.flow = make_flow(flow_id);
    p.ts = ts;
    p.len = len;
    return p;
}

TEST(LruMonSystem, RejectsNullComponents) {
    LruMonConfig cfg;
    EXPECT_THROW(LruMonSystem(nullptr, p4lru3(30), cfg),
                 std::invalid_argument);
    EXPECT_THROW(LruMonSystem(tower(), nullptr, cfg), std::invalid_argument);
}

TEST(LruMonSystem, MousePacketsAreFiltered) {
    LruMonConfig cfg;
    cfg.threshold = 1'000'000;  // nothing passes
    LruMonSystem sys(tower(), p4lru3(300), cfg);
    for (int i = 0; i < 100; ++i) {
        sys.process(packet(i, static_cast<TimeNs>(i), 100));
    }
    sys.finish();
    const auto r = sys.report();
    EXPECT_EQ(r.filtered_packets, 100u);
    EXPECT_EQ(r.elephant_packets, 0u);
    EXPECT_EQ(r.uploads, 0u);
    // All bytes are unmeasured: total error = 1.
    EXPECT_DOUBLE_EQ(r.total_error_rate, 1.0);
}

TEST(LruMonSystem, ElephantIsMeasuredExactly) {
    LruMonConfig cfg;
    cfg.threshold = 1500;
    LruMonSystem sys(tower(kSecond), p4lru3(300), cfg);
    // One flow, 100 packets x 1000B: crosses the threshold at packet 2.
    for (int i = 0; i < 100; ++i) {
        sys.process(packet(1, static_cast<TimeNs>(i * 1000), 1000));
    }
    sys.finish();
    const auto r = sys.report();
    EXPECT_EQ(r.total_bytes, 100'000u);
    // Only the first packet (filter estimate 1000 < 1500) escapes.
    EXPECT_EQ(r.max_flow_error, 1000u);
    EXPECT_EQ(r.measured_bytes, 99'000u);
    EXPECT_EQ(r.overestimated_flows, 0u);
}

TEST(LruMonSystem, NeverOverestimatesAnyFlow) {
    trace::TraceConfig tc;
    tc.total_packets = 80'000;
    tc.segments = 4;
    const auto tr = trace::generate_trace(tc);
    LruMonConfig cfg;
    cfg.threshold = 1500;
    LruMonSystem sys(tower(), p4lru3(3'000), cfg);
    for (const auto& p : tr) sys.process(p);
    sys.finish();
    const auto r = sys.report();
    EXPECT_EQ(r.overestimated_flows, 0u);
    EXPECT_GT(r.measured_bytes, 0u);
    EXPECT_LE(r.measured_bytes, r.total_bytes);
}

TEST(LruMonSystem, MaxFlowErrorBoundedByThresholdPerWindow) {
    trace::TraceConfig tc;
    tc.total_packets = 60'000;
    const auto tr = trace::generate_trace(tc);  // 1 second
    LruMonConfig cfg;
    cfg.threshold = 2'000;
    const TimeNs reset = 100 * kMillisecond;  // 10 windows
    LruMonSystem sys(tower(reset), p4lru3(3'000), cfg);
    for (const auto& p : tr) sys.process(p);
    sys.finish();
    const auto r = sys.report();
    // Per window a flow can lose at most threshold + one MTU; across the
    // whole trace that is bounded by windows * (threshold + MTU).
    EXPECT_LE(r.max_flow_error, 11u * (cfg.threshold + 1500));
}

TEST(LruMonSystem, UploadsOnlyOnCacheMisses) {
    LruMonConfig cfg;
    cfg.threshold = 100;  // everything is an elephant
    LruMonSystem sys(tower(kSecond), p4lru3(3), cfg);  // one cache unit
    sys.process(packet(1, 0, 1000));  // miss -> upload
    sys.process(packet(1, 1, 1000));  // hit
    sys.process(packet(2, 2, 1000));  // miss -> upload
    sys.finish();
    const auto r = sys.report();
    EXPECT_EQ(r.uploads, 2u);
    EXPECT_EQ(r.cache_hits, 1u);
}

TEST(LruMonSystem, EvictedBytesAreCreditedViaAnalyzer) {
    LruMonConfig cfg;
    cfg.threshold = 100;
    LruMonSystem sys(tower(kSecond), p4lru3(3), cfg);  // one unit, 3 entries
    // Fill the unit with flows 1..3, then insert 4: flow 1 evicted; its
    // bytes must land in the analyzer table for flow 1.
    for (std::uint32_t f = 1; f <= 3; ++f) sys.process(packet(f, f, 500));
    sys.process(packet(1, 10, 700));  // flow 1 now 1200 bytes cached
    for (std::uint32_t f = 2; f <= 3; ++f) sys.process(packet(f, f + 20, 1));
    sys.process(packet(4, 30, 999));  // evicts flow 1
    sys.finish();
    const auto r = sys.report();
    EXPECT_EQ(r.overestimated_flows, 0u);
    EXPECT_EQ(sys.analyzer().measured_bytes(make_flow(1)), 1200u);
    EXPECT_EQ(r.total_error_rate, 0.0);  // threshold 100 < every packet
}

TEST(LruMonSystem, ReportFinalizesOnDemand) {
    LruMonConfig cfg;
    cfg.threshold = 100;
    LruMonSystem sys(tower(kSecond), p4lru3(300), cfg);
    sys.process(packet(1, 0, 5'000));
    // The 5000 bytes are still cached in the data plane, yet report()
    // credits them immediately — no finish() call required.
    const auto before = sys.report();
    EXPECT_EQ(before.measured_bytes, 5'000u);
    EXPECT_EQ(before.total_error_rate, 0.0);
    sys.finish();  // no-op alias, kept for API compatibility
    const auto after = sys.report();
    EXPECT_EQ(after.measured_bytes, 5'000u);
    EXPECT_EQ(after.total_error_rate, 0.0);
}

TEST(LruMonSystem, BetterCacheMeansFewerUploads) {
    trace::TraceConfig tc;
    tc.total_packets = 100'000;
    tc.segments = 8;
    const auto tr = trace::generate_trace(tc);
    const auto uploads = [&](std::unique_ptr<MonPolicy> policy) {
        LruMonConfig cfg;
        cfg.threshold = 1500;
        cfg.track_ground_truth = false;
        LruMonSystem sys(tower(), std::move(policy), cfg);
        for (const auto& p : tr) sys.process(p);
        sys.finish();
        return sys.report().uploads;
    };
    const auto u3 = uploads(p4lru3(3'000));
    const auto u1 = uploads(std::make_unique<cache::P4lruArrayPolicy<
                                std::uint32_t, FlowLen, 1, core::AddMerge>>(
        3'000, 0xB));
    EXPECT_LT(u3, u1);
}

TEST(LruMonSystem, HigherThresholdFewerUploads) {
    trace::TraceConfig tc;
    tc.total_packets = 80'000;
    const auto tr = trace::generate_trace(tc);
    const auto uploads = [&](std::uint32_t threshold) {
        LruMonConfig cfg;
        cfg.threshold = threshold;
        cfg.track_ground_truth = false;
        LruMonSystem sys(tower(), p4lru3(3'000), cfg);
        for (const auto& p : tr) sys.process(p);
        sys.finish();
        return sys.report().uploads;
    };
    EXPECT_GT(uploads(500), uploads(4'000));
}

TEST(LruMonSystem, WindowResetForgetsOldTraffic) {
    LruMonConfig cfg;
    cfg.threshold = 1500;
    LruMonSystem sys(tower(10 * kMillisecond), p4lru3(300), cfg);
    // 1000B in window 0: below threshold, filtered.
    sys.process(packet(1, 0, 1000));
    // 1000B in window 5: the counter was reset, still below threshold.
    sys.process(packet(1, 50 * kMillisecond, 1000));
    sys.finish();
    EXPECT_EQ(sys.report().elephant_packets, 0u);
}

TEST(LruMonSystem, ReportIsIdempotentAcrossFinishAndMoreTraffic) {
    LruMonConfig cfg;
    cfg.threshold = 100;
    LruMonSystem sys(tower(kSecond), p4lru3(300), cfg);
    sys.process(packet(1, 0, 5'000));
    sys.finish();
    // finish() is a no-op: processing continues and report() stays exact.
    sys.process(packet(2, 1, 7'000));
    const auto r1 = sys.report();
    const auto r2 = sys.report();
    EXPECT_EQ(r1.measured_bytes, 12'000u);
    EXPECT_EQ(r1.measured_bytes, r2.measured_bytes);
    EXPECT_EQ(r1.uploads, r2.uploads);
    EXPECT_EQ(r1.total_error_rate, 0.0);
}

}  // namespace
}  // namespace p4lru::systems::lrumon
