#include "p4lru/systems/lrutable/lrutable.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "../test_util.hpp"
#include "p4lru/trace/trace_gen.hpp"

namespace p4lru::systems::lrutable {
namespace {

using testutil::make_flow;
using Policy = LruTableSystem::Policy;

std::unique_ptr<Policy> p4lru3(std::size_t entries) {
    return std::make_unique<
        cache::P4lruArrayPolicy<VirtualAddress, std::uint32_t, 3>>(entries,
                                                                   0xA);
}

LruTableConfig quick_config() {
    LruTableConfig cfg;
    cfg.slow_path_delay = 10 * kMicrosecond;
    return cfg;
}

PacketRecord packet(std::uint32_t flow_id, TimeNs ts) {
    PacketRecord p;
    p.flow = make_flow(flow_id);
    p.ts = ts;
    p.len = 100;
    return p;
}

TEST(NatTable, LookupIsDeterministicAndNeverPlaceholder) {
    NatTable nat;
    for (std::uint32_t va = 1; va < 1000; ++va) {
        const auto ra = nat.lookup(va);
        EXPECT_EQ(ra, nat.lookup(va));
        EXPECT_NE(ra, kPlaceholder);
        EXPECT_NE(ra, 0u);
    }
}

TEST(LruTableSystem, RejectsNullPolicy) {
    EXPECT_THROW(LruTableSystem(nullptr, quick_config()),
                 std::invalid_argument);
}

TEST(LruTableSystem, SimilarityTrackingNeedsBudget) {
    LruTableConfig cfg = quick_config();
    cfg.track_similarity = true;
    EXPECT_THROW(LruTableSystem(p4lru3(30), cfg), std::invalid_argument);
}

TEST(LruTableSystem, FirstPacketMissesThenHitsAfterFill) {
    LruTableSystem sys(p4lru3(300), quick_config());
    sys.process(packet(1, 0));  // miss, fill scheduled at t = 10us
    // Second packet before the fill lands: placeholder hit, still slow.
    sys.process(packet(1, 5 * kMicrosecond));
    // Third packet after the fill: fast path.
    const TimeNs lat = sys.process(packet(1, 20 * kMicrosecond));
    EXPECT_EQ(lat, quick_config().base_latency);

    const auto r = sys.report();
    EXPECT_EQ(r.packets, 3u);
    EXPECT_EQ(r.misses, 1u);
    EXPECT_EQ(r.placeholder_hits, 1u);
    EXPECT_EQ(r.fast_path, 1u);
    EXPECT_NEAR(r.miss_rate, 2.0 / 3.0, 1e-9);
}

TEST(LruTableSystem, PlaceholderHitDoesNotScheduleSecondFill) {
    LruTableSystem sys(p4lru3(300), quick_config());
    sys.process(packet(1, 0));
    for (int i = 1; i <= 5; ++i) {
        sys.process(packet(1, static_cast<TimeNs>(i)));  // all placeholders
    }
    const auto r = sys.report();
    EXPECT_EQ(r.misses, 1u);
    EXPECT_EQ(r.placeholder_hits, 5u);
}

TEST(LruTableSystem, SlowPathLatencyIsAccounted) {
    LruTableConfig cfg = quick_config();
    cfg.slow_path_delay = 100 * kMicrosecond;
    LruTableSystem sys(p4lru3(300), cfg);
    const TimeNs lat = sys.process(packet(1, 0));
    EXPECT_EQ(lat, cfg.base_latency + cfg.slow_path_delay);
    const auto r = sys.report();
    EXPECT_NEAR(r.avg_added_latency_us, 100.0, 1e-6);
}

TEST(LruTableSystem, TranslationIsCorrectAfterFill) {
    auto policy = p4lru3(300);
    auto* raw = policy.get();
    NatTable nat;
    LruTableSystem sys(std::move(policy), quick_config());
    sys.process(packet(7, 0));
    sys.finish();
    const VirtualAddress va = make_flow(7).dst_ip;
    EXPECT_EQ(raw->peek(va), std::optional<std::uint32_t>(nat.lookup(va)));
}

TEST(LruTableSystem, EvictedFlowMissesAgain) {
    // One P4LRU3 unit (3 entries): the fourth distinct flow evicts the
    // least recent; re-touching the evicted flow is a miss again.
    LruTableSystem sys(p4lru3(3), quick_config());
    TimeNs t = 0;
    for (std::uint32_t f = 1; f <= 4; ++f) {
        sys.process(packet(f, t));
        t += 20 * kMicrosecond;  // each fill lands before the next packet
    }
    const auto before = sys.report().misses;
    sys.process(packet(1, t));  // flow 1 was evicted by flow 4
    EXPECT_EQ(sys.report().misses, before + 1);
}

TEST(LruTableSystem, MissRateDropsWithMoreMemory) {
    trace::TraceConfig tc;
    tc.total_packets = 100'000;
    tc.segments = 16;
    const auto trace = trace::generate_trace(tc);
    const auto run = [&](std::size_t entries) {
        LruTableSystem sys(p4lru3(entries), quick_config());
        for (const auto& p : trace) sys.process(p);
        sys.finish();
        return sys.report().miss_rate;
    };
    // The sweep must straddle the working set (peak concurrency is a few
    // hundred flows at this scale) for memory to matter.
    const double small = run(30);
    const double medium = run(100);
    const double large = run(1'000);
    EXPECT_GT(small, medium);
    EXPECT_GT(medium, large);
    EXPECT_LT(large, 0.5);
}

TEST(LruTableSystem, LongerSlowPathRaisesMissRate) {
    trace::TraceConfig tc;
    tc.total_packets = 60'000;
    tc.segments = 8;
    const auto trace = trace::generate_trace(tc);
    const auto run = [&](TimeNs delay) {
        LruTableConfig cfg = quick_config();
        cfg.slow_path_delay = delay;
        LruTableSystem sys(p4lru3(5'000), cfg);
        for (const auto& p : trace) sys.process(p);
        sys.finish();
        return sys.report().miss_rate;
    };
    // Longer control-plane latency = more placeholder hits = higher miss
    // rate (each miss blocks its flow for longer).
    EXPECT_LT(run(10 * kMicrosecond), run(10 * kMillisecond));
}

TEST(LruTableSystem, SimilarityTrackedWhenEnabled) {
    trace::TraceConfig tc;
    tc.total_packets = 30'000;
    const auto trace = trace::generate_trace(tc);
    LruTableConfig cfg = quick_config();
    cfg.track_similarity = true;
    cfg.similarity_max_accesses = 3 * trace.size() + 10;
    LruTableSystem sys(p4lru3(600), cfg);
    for (const auto& p : trace) sys.process(p);
    sys.finish();
    const auto r = sys.report();
    EXPECT_GT(r.similarity, 0.3);
    EXPECT_LE(r.similarity, 1.0);
}

TEST(LruTableSystem, P4lru3BeatsP4lru1OnMissRate) {
    trace::TraceConfig tc;
    tc.total_packets = 100'000;
    tc.segments = 8;
    const auto trace = trace::generate_trace(tc);
    const auto run = [&](std::unique_ptr<Policy> policy) {
        LruTableSystem sys(std::move(policy), quick_config());
        for (const auto& p : trace) sys.process(p);
        sys.finish();
        return sys.report().miss_rate;
    };
    const double p3 = run(p4lru3(600));
    const double p1 =
        run(std::make_unique<cache::P4lruArrayPolicy<VirtualAddress,
                                                     std::uint32_t, 1>>(
            600, 0xA));
    EXPECT_LT(p3, p1);
}

}  // namespace
}  // namespace p4lru::systems::lrutable
