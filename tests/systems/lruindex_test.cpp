#include <gtest/gtest.h>

#include <memory>

#include "p4lru/systems/lruindex/db_server.hpp"
#include "p4lru/systems/lruindex/driver.hpp"
#include "p4lru/systems/lruindex/index_cache.hpp"

namespace p4lru::systems::lruindex {
namespace {

ServerCosts quick_costs() {
    ServerCosts c;
    return c;
}

TEST(DbServer, RejectsZeroItems) {
    EXPECT_THROW(DbServer(0, quick_costs()), std::invalid_argument);
}

TEST(DbServer, IndexLookupFindsEveryKey) {
    DbServer server(5'000, quick_costs());
    for (DbKey k = 0; k < 5'000; k += 97) {
        const auto r = server.serve(k, CacheHeader{});
        EXPECT_TRUE(r.valid) << k;
        EXPECT_TRUE(r.used_index) << k;
        EXPECT_EQ(r.addr, server.address_of(k)) << k;
    }
}

TEST(DbServer, MissingKeyIsInvalid) {
    DbServer server(100, quick_costs());
    const auto r = server.serve(100, CacheHeader{});
    EXPECT_FALSE(r.valid);
}

TEST(DbServer, CachedHeaderBypassesIndex) {
    DbServer server(1'000, quick_costs());
    CacheHeader hdr;
    hdr.cached_flag = 1;
    hdr.cached_index = server.address_of(42);
    const auto r = server.serve(42, hdr);
    EXPECT_TRUE(r.valid);
    EXPECT_FALSE(r.used_index);
    EXPECT_EQ(r.lock_time, 0u);
    // Bypass is strictly cheaper than the index walk.
    const auto walk = server.serve(42, CacheHeader{});
    EXPECT_LT(r.service_time, walk.service_time + walk.lock_time);
}

TEST(DbServer, BypassReturnsTheSameRecord) {
    DbServer server(1'000, quick_costs());
    CacheHeader hdr;
    hdr.cached_flag = 2;
    hdr.cached_index = server.address_of(7);
    const auto direct = server.serve(7, hdr);
    const auto indexed = server.serve(7, CacheHeader{});
    EXPECT_EQ(direct.record, indexed.record);
}

TEST(DbServer, StaleCachedIndexFallsBackToIndex) {
    DbServer server(100, quick_costs());
    CacheHeader hdr;
    hdr.cached_flag = 1;
    hdr.cached_index = 0xDEAD00;  // not a valid record address
    const auto r = server.serve(5, hdr);
    EXPECT_TRUE(r.used_index);
    EXPECT_TRUE(r.valid);
}

TEST(SeriesIndexCache, QueryReplyProtocol) {
    SeriesIndexCache cache(4, 64, 0x11);
    EXPECT_FALSE(cache.query(9).hit());
    cache.reply(9, 0x40, CacheHeader{}, 0);
    const auto hdr = cache.query(9);
    EXPECT_TRUE(hdr.hit());
    EXPECT_EQ(hdr.cached_flag, 1u);
    EXPECT_EQ(hdr.cached_index, 0x40u);
    // Promote path must not crash or duplicate.
    cache.reply(9, 0x40, hdr, 0);
    EXPECT_TRUE(cache.series().duplicate_free(9));
}

TEST(Driver, RejectsBadConfig) {
    DbServer server(100, quick_costs());
    DriverConfig cfg;
    cfg.threads = 0;
    EXPECT_THROW(run_driver(cfg, server, nullptr), std::invalid_argument);
    cfg = DriverConfig{};
    cfg.use_cache = true;
    EXPECT_THROW(run_driver(cfg, server, nullptr), std::invalid_argument);
}

DriverConfig small_driver(std::size_t threads, std::size_t queries,
                          std::uint64_t items) {
    DriverConfig cfg;
    cfg.threads = threads;
    cfg.queries = queries;
    cfg.workload.items = items;
    cfg.workload.seed = 5;
    return cfg;
}

TEST(Driver, CompletesAllQueriesCorrectly) {
    DbServer server(10'000, quick_costs());
    SeriesIndexCache cache(4, 256, 0x21);
    const auto r = run_driver(small_driver(4, 5'000, 10'000), server, &cache);
    EXPECT_EQ(r.queries, 5'000u);
    EXPECT_EQ(r.wrong_replies, 0u);
    EXPECT_GT(r.throughput_ktps, 0.0);
    EXPECT_GT(r.miss_rate, 0.0);
    EXPECT_LT(r.miss_rate, 1.0);
}

TEST(Driver, CacheBeatsNaiveThroughput) {
    DbServer server(50'000, quick_costs());
    SeriesIndexCache cache(4, 1u << 10, 0x31);
    auto cfg = small_driver(8, 20'000, 50'000);
    const auto cached = run_driver(cfg, server, &cache);
    cfg.use_cache = false;
    const auto naive = run_driver(cfg, server, nullptr);
    EXPECT_GT(cached.throughput_ktps, naive.throughput_ktps);
    EXPECT_LT(cached.avg_latency_us, naive.avg_latency_us);
}

TEST(Driver, ThroughputScalesWithThreads) {
    DbServer server(20'000, quick_costs());
    const auto at = [&](std::size_t threads) {
        SeriesIndexCache cache(2, 512, 0x41);
        return run_driver(small_driver(threads, 10'000, 20'000), server,
                          &cache)
            .throughput_ktps;
    };
    const double t1 = at(1);
    const double t4 = at(4);
    const double t8 = at(8);
    EXPECT_GT(t4, 2.0 * t1);
    EXPECT_GT(t8, t4);
    EXPECT_LT(t8, 9.0 * t1);  // sublinear due to the index latch
}

TEST(Driver, SkewMakesCachingEffective) {
    DbServer server(100'000, quick_costs());
    SeriesIndexCache cache(4, 1u << 10, 0x51);
    auto cfg = small_driver(4, 20'000, 100'000);
    cfg.workload.zipf_alpha = 0.99;
    const auto skewed = run_driver(cfg, server, &cache);
    // Cache entries = 4 * 1024 * 3 = 12288 of 100k items, but the hot keys
    // dominate: miss rate must be far below the uniform expectation.
    EXPECT_LT(skewed.miss_rate, 0.75);
}

TEST(Driver, SeriesCacheStaysDuplicateFreeUnderLoad) {
    DbServer server(5'000, quick_costs());
    SeriesIndexCache cache(3, 128, 0x61);
    run_driver(small_driver(4, 10'000, 5'000), server, &cache);
    for (DbKey k = 0; k < 5'000; k += 13) {
        ASSERT_TRUE(cache.series().duplicate_free(k)) << k;
    }
}

TEST(PolicyIndexCache, RunsTheProtocolThroughAnyPolicy) {
    DbServer server(5'000, quick_costs());
    auto cache = std::make_unique<PolicyIndexCache>(
        std::make_unique<cache::IdealLruPolicy<DbKey,
                                               index::RecordAddress>>(2048));
    const auto r = run_driver(small_driver(2, 5'000, 5'000), server,
                              cache.get());
    EXPECT_EQ(r.wrong_replies, 0u);
    EXPECT_LT(r.miss_rate, 1.0);
}

}  // namespace
}  // namespace p4lru::systems::lruindex
