#include "p4lru/systems/lrumon/analyzer.hpp"

#include <gtest/gtest.h>

#include "../test_util.hpp"
#include "p4lru/systems/lrumon/tower_filter.hpp"

namespace p4lru::systems::lrumon {
namespace {

using testutil::make_flow;

TEST(Analyzer, RegistersFlowOnFirstUpload) {
    Analyzer a;
    a.on_upload(make_flow(1), 111, 0, 0);
    EXPECT_EQ(a.uploads(), 1u);
    EXPECT_EQ(a.known_flows(), 1u);
    EXPECT_EQ(a.measured_bytes(make_flow(1)), 0u);  // T_len starts at 0
}

TEST(Analyzer, EvictedFingerprintCreditsItsFlow) {
    Analyzer a;
    a.on_upload(make_flow(1), 111, 0, 0);       // flow 1 registered, fp 111
    a.on_upload(make_flow(2), 222, 111, 5000);  // flow 1's bytes come home
    EXPECT_EQ(a.measured_bytes(make_flow(1)), 5000u);
    EXPECT_EQ(a.measured_bytes(make_flow(2)), 0u);
    EXPECT_EQ(a.unmatched(), 0u);
}

TEST(Analyzer, UnknownFingerprintCountsAsUnmatched) {
    Analyzer a;
    a.on_upload(make_flow(1), 111, 999, 1234);  // 999 was never registered
    EXPECT_EQ(a.unmatched(), 1u);
}

TEST(Analyzer, FlushCreditsResidualEntries) {
    Analyzer a;
    a.on_upload(make_flow(1), 111, 0, 0);
    a.on_flush(111, 700);
    EXPECT_EQ(a.measured_bytes(make_flow(1)), 700u);
}

TEST(Analyzer, RepeatUploadsAccumulate) {
    Analyzer a;
    a.on_upload(make_flow(1), 111, 0, 0);
    a.on_upload(make_flow(2), 222, 111, 100);
    a.on_upload(make_flow(1), 111, 222, 50);  // flow 1 re-enters; 2 credited
    a.on_upload(make_flow(3), 333, 111, 25);  // flow 1 credited again
    EXPECT_EQ(a.measured_bytes(make_flow(1)), 125u);
    EXPECT_EQ(a.measured_bytes(make_flow(2)), 50u);
    EXPECT_EQ(a.uploads(), 4u);
}

TEST(FilterWrappers, NamesAndMemory) {
    FilterConfig cfg;
    cfg.tower_width1 = 1u << 10;
    cfg.tower_width2 = 1u << 9;
    cfg.cm_width = 1u << 9;
    const auto tower = make_filter(FilterKind::kTower, cfg);
    const auto cm = make_filter(FilterKind::kCm, cfg);
    const auto cu = make_filter(FilterKind::kCu, cfg);
    EXPECT_EQ(tower->name(), "Tower");
    EXPECT_EQ(cm->name(), "CM");
    EXPECT_EQ(cu->name(), "CU");
    EXPECT_EQ(tower->memory_bytes(), (1024u * 8 + 512u * 16) / 8);
    EXPECT_GT(cm->memory_bytes(), 0u);
}

TEST(FilterWrappers, WindowRollForgetsPreviousCounts) {
    FilterConfig cfg;
    cfg.reset_period = 10 * kMillisecond;
    cfg.tower_width1 = 1u << 10;
    cfg.tower_width2 = 1u << 9;
    TowerFilter f(cfg);
    EXPECT_EQ(f.add_and_estimate(7, 500, 0), 500u);
    EXPECT_EQ(f.add_and_estimate(7, 500, kMillisecond), 1000u);
    // New window: the counter restarts.
    EXPECT_EQ(f.add_and_estimate(7, 500, 11 * kMillisecond), 500u);
    // Going further in time keeps rolling.
    EXPECT_EQ(f.add_and_estimate(7, 500, 35 * kMillisecond), 500u);
}

TEST(FilterWrappers, AllKindsAgreeWithoutCollisions) {
    FilterConfig cfg;
    cfg.tower_width1 = 1u << 14;
    cfg.tower_width2 = 1u << 13;
    cfg.cm_width = 1u << 13;
    const auto tower = make_filter(FilterKind::kTower, cfg);
    const auto cm = make_filter(FilterKind::kCm, cfg);
    const auto cu = make_filter(FilterKind::kCu, cfg);
    for (std::uint32_t fp = 1; fp <= 50; ++fp) {
        const auto t = tower->add_and_estimate(fp, fp * 10, 0);
        const auto c = cm->add_and_estimate(fp, fp * 10, 0);
        const auto u = cu->add_and_estimate(fp, fp * 10, 0);
        EXPECT_EQ(t, fp * 10) << fp;
        EXPECT_EQ(c, fp * 10) << fp;
        EXPECT_EQ(u, fp * 10) << fp;
    }
}

}  // namespace
}  // namespace p4lru::systems::lrumon
