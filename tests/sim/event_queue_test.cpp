#include "p4lru/sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace p4lru::sim {
namespace {

TEST(EventQueue, RunsInTimeOrder) {
    EventQueue q;
    std::vector<int> order;
    q.schedule(30, [&] { order.push_back(3); });
    q.schedule(10, [&] { order.push_back(1); });
    q.schedule(20, [&] { order.push_back(2); });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(q.now(), 30u);
}

TEST(EventQueue, TiesBreakByInsertionOrder) {
    EventQueue q;
    std::vector<int> order;
    q.schedule(5, [&] { order.push_back(1); });
    q.schedule(5, [&] { order.push_back(2); });
    q.schedule(5, [&] { order.push_back(3); });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, EventsMayScheduleMoreEvents) {
    EventQueue q;
    std::vector<TimeNs> fire_times;
    std::function<void()> tick = [&] {
        fire_times.push_back(q.now());
        if (fire_times.size() < 5) q.schedule_after(10, tick);
    };
    q.schedule(0, tick);
    q.run();
    EXPECT_EQ(fire_times, (std::vector<TimeNs>{0, 10, 20, 30, 40}));
}

TEST(EventQueue, RunUntilStopsAtBoundary) {
    EventQueue q;
    int fired = 0;
    q.schedule(10, [&] { ++fired; });
    q.schedule(20, [&] { ++fired; });
    q.schedule(30, [&] { ++fired; });
    q.run_until(20);
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(q.pending(), 1u);
    EXPECT_EQ(q.now(), 20u);
    q.run();
    EXPECT_EQ(fired, 3);
}

TEST(EventQueue, StepReturnsFalseWhenEmpty) {
    EventQueue q;
    EXPECT_FALSE(q.step());
    q.schedule(1, [] {});
    EXPECT_TRUE(q.step());
    EXPECT_FALSE(q.step());
}

TEST(EventQueue, ClockIsMonotoneEvenWithPastEvents) {
    EventQueue q;
    std::vector<TimeNs> times;
    q.schedule(100, [&] {
        times.push_back(q.now());
        q.schedule(50, [&] { times.push_back(q.now()); });  // "in the past"
    });
    q.run();
    ASSERT_EQ(times.size(), 2u);
    EXPECT_EQ(times[0], 100u);
    EXPECT_EQ(times[1], 100u);  // clamped, never goes backwards
}

}  // namespace
}  // namespace p4lru::sim
