#include "p4lru/sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <functional>
#include <vector>

#include "p4lru/common/random.hpp"

namespace p4lru::sim {
namespace {

TEST(EventQueue, RunsInTimeOrder) {
    EventQueue q;
    std::vector<int> order;
    q.schedule(30, [&] { order.push_back(3); });
    q.schedule(10, [&] { order.push_back(1); });
    q.schedule(20, [&] { order.push_back(2); });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(q.now(), 30u);
}

TEST(EventQueue, TiesBreakByInsertionOrder) {
    EventQueue q;
    std::vector<int> order;
    q.schedule(5, [&] { order.push_back(1); });
    q.schedule(5, [&] { order.push_back(2); });
    q.schedule(5, [&] { order.push_back(3); });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, EventsMayScheduleMoreEvents) {
    EventQueue q;
    std::vector<TimeNs> fire_times;
    std::function<void()> tick = [&] {
        fire_times.push_back(q.now());
        if (fire_times.size() < 5) q.schedule_after(10, tick);
    };
    q.schedule(0, tick);
    q.run();
    EXPECT_EQ(fire_times, (std::vector<TimeNs>{0, 10, 20, 30, 40}));
}

TEST(EventQueue, RunUntilStopsAtBoundary) {
    EventQueue q;
    int fired = 0;
    q.schedule(10, [&] { ++fired; });
    q.schedule(20, [&] { ++fired; });
    q.schedule(30, [&] { ++fired; });
    q.run_until(20);
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(q.pending(), 1u);
    EXPECT_EQ(q.now(), 20u);
    q.run();
    EXPECT_EQ(fired, 3);
}

TEST(EventQueue, StepReturnsFalseWhenEmpty) {
    EventQueue q;
    EXPECT_FALSE(q.step());
    q.schedule(1, [] {});
    EXPECT_TRUE(q.step());
    EXPECT_FALSE(q.step());
}

TEST(EventQueue, StressRandomScheduleDrainStaysOrdered) {
    // Heavy mixed workload over the vector-heap implementation (the
    // std::priority_queue predecessor moved the callback out of top()
    // through a const_cast — UB a sanitizer run of exactly this pattern is
    // meant to keep dead): random times, re-entrant scheduling from inside
    // callbacks, interleaved step()/run_until() drains.  Events must fire
    // in nondecreasing time order with ties in insertion order.
    EventQueue q;
    rng::Xoshiro256 rng(2024);
    struct Fired {
        TimeNs when;
        std::uint64_t id;
    };
    std::vector<Fired> fired;
    std::uint64_t next_id = 0;
    std::function<void(TimeNs, std::uint64_t)> fire =
        [&](TimeNs when, std::uint64_t id) {
            fired.push_back({when, id});
            // Every third event schedules two follow-ups, one possibly in
            // the past (clamped by the monotone clock).
            if (id % 3 == 0) {
                const TimeNs ahead = q.now() + rng.below(50);
                const std::uint64_t a = next_id++;
                q.schedule(ahead, [&, ahead, a] { fire(ahead, a); });
                const TimeNs behind =
                    q.now() > 25 ? q.now() - rng.below(25) : q.now();
                const std::uint64_t b = next_id++;
                q.schedule(behind, [&, behind, b] { fire(behind, b); });
            }
        };
    for (int i = 0; i < 2'000; ++i) {
        const TimeNs when = rng.below(10'000);
        const std::uint64_t id = next_id++;
        q.schedule(when, [&, when, id] { fire(when, id); });
    }
    // Drain in stages to exercise run_until boundaries, then finish.
    q.run_until(2'500);
    q.run_until(2'500);  // idempotent at the same boundary
    while (q.pending() > 1'000) q.step();
    q.run();
    EXPECT_TRUE(q.empty());
    ASSERT_GT(fired.size(), 2'000u);
    TimeNs last_effective = 0;
    for (const auto& f : fired) {
        // The effective fire time is max(when, clock at fire): past events
        // fire at the clamped clock, so effective times are nondecreasing.
        const TimeNs effective = std::max(f.when, last_effective);
        EXPECT_GE(effective, last_effective);
        last_effective = effective;
    }
    // Same-time events fire in insertion order.
    for (std::size_t i = 1; i < fired.size(); ++i) {
        if (fired[i].when == fired[i - 1].when) {
            EXPECT_GT(fired[i].id, fired[i - 1].id)
                << "tie at t=" << fired[i].when;
        }
    }
}

TEST(EventQueue, ClockIsMonotoneEvenWithPastEvents) {
    EventQueue q;
    std::vector<TimeNs> times;
    q.schedule(100, [&] {
        times.push_back(q.now());
        q.schedule(50, [&] { times.push_back(q.now()); });  // "in the past"
    });
    q.run();
    ASSERT_EQ(times.size(), 2u);
    EXPECT_EQ(times[0], 100u);
    EXPECT_EQ(times[1], 100u);  // clamped, never goes backwards
}

}  // namespace
}  // namespace p4lru::sim
