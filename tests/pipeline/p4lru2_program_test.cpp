#include "p4lru/pipeline/p4lru2_program.hpp"

#include <gtest/gtest.h>

#include "../test_util.hpp"
#include "p4lru/core/parallel_array.hpp"
#include "p4lru/core/p4lru_encoded.hpp"

namespace p4lru::pipeline {
namespace {

TEST(P4lru2Program, CompactFootprint) {
    const P4lru2PipelineCache cache(1u << 10, 0xAB, ValueMode::kReadCache);
    const auto r = cache.resources();
    EXPECT_EQ(r.stages, 5u);
    EXPECT_EQ(r.salus, 5u);  // 2 key + 1 state + 2 value
}

TEST(P4lru2Program, SingleStateSaluHandlesTheWholeDfa) {
    P4lru2PipelineCache cache(1, 0x1, ValueMode::kReadCache);
    EXPECT_FALSE(cache.update(1, 10).hit);
    EXPECT_FALSE(cache.update(2, 20).hit);
    EXPECT_TRUE(cache.update(1, 0).hit);       // hit at key[2], state flips
    EXPECT_EQ(cache.update(1, 0).value, 10u);  // hit at key[1], state keeps
    const auto miss = cache.update(3, 30);
    EXPECT_TRUE(miss.evicted);
    EXPECT_EQ(miss.evicted_key, 2u);
    EXPECT_EQ(miss.evicted_value, 20u);
}

TEST(P4lru2Program, AccumulateMode) {
    P4lru2PipelineCache cache(1, 0x2, ValueMode::kWriteAccumulate);
    cache.update(5, 100);
    EXPECT_EQ(cache.update(5, 50).value, 150u);
}

class P4lru2ProgramEquivalence
    : public ::testing::TestWithParam<std::pair<std::size_t, std::uint32_t>> {
};

TEST_P(P4lru2ProgramEquivalence, MatchesEncodedUnitArray) {
    const auto [units, universe] = GetParam();
    const std::uint32_t seed = 0x5EED;
    P4lru2PipelineCache pipe(units, seed, ValueMode::kWriteAccumulate);
    core::ParallelCache<
        core::P4lru2Encoded<std::uint32_t, std::uint32_t, core::AddMerge>,
        std::uint32_t, std::uint32_t>
        behavioural(units, seed);

    const auto keys = testutil::random_keys(15'000, universe, 77, 0.4);
    std::uint64_t tick = 0;
    for (const auto k : keys) {
        const auto v = static_cast<std::uint32_t>(++tick % 997 + 1);
        const auto a = pipe.update(k, v);
        const auto b = behavioural.update(k, v);
        ASSERT_EQ(a.hit, b.hit) << "tick " << tick;
        ASSERT_EQ(a.evicted, b.evicted) << "tick " << tick;
        if (a.evicted) {
            ASSERT_EQ(a.evicted_key, b.evicted_key);
            ASSERT_EQ(a.evicted_value, b.evicted_value);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Workloads, P4lru2ProgramEquivalence,
                         ::testing::Values(std::make_pair(1u, 5u),
                                           std::make_pair(8u, 50u),
                                           std::make_pair(64u, 2000u)));

}  // namespace
}  // namespace p4lru::pipeline
