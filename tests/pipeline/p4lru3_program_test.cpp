// The pipeline-compiled P4LRU3 array must behave exactly like the encoded
// behavioural unit array — this is the software form of the paper's claim
// that P4LRU runs on a real match-action pipeline (requirement R1).
#include "p4lru/pipeline/p4lru3_program.hpp"

#include <gtest/gtest.h>

#include "../test_util.hpp"
#include "p4lru/core/parallel_array.hpp"
#include "p4lru/core/p4lru_encoded.hpp"

namespace p4lru::pipeline {
namespace {

TEST(P4lru3Program, FitsInOneTofinoPipeline) {
    const P4lru3PipelineCache cache(1u << 10, 0xAB, ValueMode::kReadCache);
    const auto r = cache.resources();
    const PipelineBudget budget;
    EXPECT_LE(r.stages, budget.stages);
    EXPECT_EQ(r.stages, 7u);
    EXPECT_EQ(r.salus, 9u);  // 3 key + 3 state + 3 value SALUs
    EXPECT_LE(r.salus, budget.stages * budget.salus_per_stage);
}

TEST(P4lru3Program, BasicHitMissEviction) {
    P4lru3PipelineCache cache(1, 0x1, ValueMode::kReadCache);  // one bucket
    EXPECT_FALSE(cache.update(1, 10).hit);
    EXPECT_FALSE(cache.update(2, 20).hit);
    EXPECT_FALSE(cache.update(3, 30).hit);
    const auto hit = cache.update(2, 99);
    EXPECT_TRUE(hit.hit);
    EXPECT_EQ(hit.value, 20u);  // read-cache: stored value survives
    const auto miss = cache.update(4, 40);
    EXPECT_FALSE(miss.hit);
    EXPECT_TRUE(miss.evicted);
    EXPECT_EQ(miss.evicted_key, 1u);  // 1 was least recent
    EXPECT_EQ(miss.evicted_value, 10u);
}

TEST(P4lru3Program, AccumulateMode) {
    P4lru3PipelineCache cache(1, 0x2, ValueMode::kWriteAccumulate);
    cache.update(5, 100);
    const auto r = cache.update(5, 50);
    EXPECT_TRUE(r.hit);
    EXPECT_EQ(r.value, 150u);
}

TEST(P4lru3Program, SentinelEvictionsSuppressed) {
    P4lru3PipelineCache cache(1, 0x3, ValueMode::kReadCache);
    EXPECT_FALSE(cache.update(1, 10).evicted);
    EXPECT_FALSE(cache.update(2, 20).evicted);
    EXPECT_FALSE(cache.update(3, 30).evicted);
    EXPECT_TRUE(cache.update(4, 40).evicted);
}

struct ProgParam {
    std::size_t units;
    std::uint32_t universe;
    std::uint64_t seed;
};

class P4lru3ProgramEquivalence : public ::testing::TestWithParam<ProgParam> {};

TEST_P(P4lru3ProgramEquivalence, MatchesEncodedUnitArray) {
    const auto [units, universe, seed] = GetParam();
    // Same hash seed => same bucket mapping as the behavioural array (both
    // use CRC32-based slot choice on the same layout).
    const std::uint32_t hash_seed = 0x5EED;
    P4lru3PipelineCache pipe(units, hash_seed, ValueMode::kWriteAccumulate);
    core::ParallelCache<
        core::P4lru3Encoded<std::uint32_t, std::uint32_t, core::AddMerge>,
        std::uint32_t, std::uint32_t>
        behavioural(units, hash_seed);

    const auto keys = testutil::random_keys(20'000, universe, seed, 0.4);
    std::uint64_t tick = 0;
    for (const auto k : keys) {
        const auto v = static_cast<std::uint32_t>(++tick % 1000 + 1);
        const auto a = pipe.update(k, v);
        const auto b = behavioural.update(k, v);
        ASSERT_EQ(a.hit, b.hit) << "tick " << tick << " key " << k;
        ASSERT_EQ(a.evicted, b.evicted) << "tick " << tick;
        if (a.evicted) {
            ASSERT_EQ(a.evicted_key, b.evicted_key) << "tick " << tick;
            ASSERT_EQ(a.evicted_value, b.evicted_value) << "tick " << tick;
        }
        if (a.hit) {
            ASSERT_EQ(a.value, behavioural.find(k).value()) << "tick " << tick;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, P4lru3ProgramEquivalence,
    ::testing::Values(ProgParam{1, 6, 31}, ProgParam{4, 40, 32},
                      ProgParam{16, 100, 33}, ProgParam{64, 4000, 34}));

TEST(P4lru3Program, BucketsMatchBehaviouralHash) {
    const std::uint32_t seed = 0x77;
    P4lru3PipelineCache pipe(64, seed, ValueMode::kReadCache);
    core::ParallelCache<core::P4lru3Encoded<std::uint32_t, std::uint32_t>,
                        std::uint32_t, std::uint32_t>
        beh(64, seed);
    for (std::uint32_t k = 1; k <= 200; ++k) {
        EXPECT_EQ(pipe.update(k, k).bucket, beh.bucket(k)) << k;
    }
}

TEST(P4lru3Program, StateRegistersInitializedToIdentityCode) {
    P4lru3PipelineCache cache(8, 0x9, ValueMode::kReadCache);
    // The 4th register array (index 3) is the state array.
    for (std::size_t i = 0; i < 8; ++i) {
        EXPECT_EQ(cache.pipeline().register_value(3, i), 4u);
    }
}

}  // namespace
}  // namespace p4lru::pipeline
