#include "p4lru/pipeline/tower_program.hpp"

#include <gtest/gtest.h>

#include "p4lru/common/random.hpp"

namespace p4lru::pipeline {
namespace {

TowerPipelineFilter::Config small_config() {
    TowerPipelineFilter::Config cfg;
    cfg.width1 = 1u << 12;
    cfg.width2 = 1u << 11;
    cfg.threshold = 1000;
    return cfg;
}

TEST(TowerProgram, CountsOneFlowExactly) {
    TowerPipelineFilter f(small_config());
    std::uint32_t total = 0;
    for (int i = 0; i < 5; ++i) {
        const auto r = f.update(42, 100);
        total += 100;
        EXPECT_EQ(r.estimate, total);
        EXPECT_EQ(r.elephant, total >= 1000);
    }
}

TEST(TowerProgram, ThresholdFlagFlipsAtBoundary) {
    auto cfg = small_config();
    cfg.threshold = 250;
    TowerPipelineFilter f(cfg);
    EXPECT_FALSE(f.update(7, 249).elephant);
    EXPECT_TRUE(f.update(7, 1).elephant);  // estimate now exactly 250
}

TEST(TowerProgram, ResetClearsCounters) {
    TowerPipelineFilter f(small_config());
    f.update(1, 500);
    f.reset_counters();
    EXPECT_EQ(f.update(1, 10).estimate, 10u);
}

TEST(TowerProgram, NeverUnderestimatesBelowSaturation) {
    TowerPipelineFilter f(small_config());
    rng::Xoshiro256 rng(3);
    std::unordered_map<std::uint32_t, std::uint64_t> truth;
    for (int i = 0; i < 20'000; ++i) {
        const auto k = static_cast<std::uint32_t>(rng.between(1, 2000));
        const auto r = f.update(k, 1);
        truth[k] += 1;
        if (truth[k] < 200) {  // well below the 8-bit saturation
            ASSERT_GE(r.estimate, truth[k]) << k;
        }
    }
}

TEST(TowerProgram, SixteenBitLevelCarriesPastEightBitSaturation) {
    TowerPipelineFilter f(small_config());
    std::uint64_t total = 0;
    for (int i = 0; i < 40; ++i) {
        total += 10;
        const auto r = f.update(99, 10);
        // Even past 255 the min must track via the 16-bit level (no other
        // traffic, so no collisions).
        EXPECT_GE(r.estimate + 5, total);
    }
}

TEST(TowerProgram, ResourceFootprint) {
    const TowerPipelineFilter f(small_config());
    const auto r = f.resources();
    EXPECT_EQ(r.stages, 6u);
    EXPECT_EQ(r.salus, 2u);
    EXPECT_EQ(r.register_bytes, ((1u << 12) + (1u << 11)) * 4u);
    const PipelineBudget budget;
    EXPECT_LE(r.stages, budget.stages);
}

TEST(TowerProgram, RegisterConstraintHolds) {
    // Each packet touches each counter array exactly once; processing many
    // packets must never trip the pipeline constraint checker.
    TowerPipelineFilter f(small_config());
    rng::Xoshiro256 rng(9);
    for (int i = 0; i < 5'000; ++i) {
        EXPECT_NO_THROW(f.update(
            static_cast<std::uint32_t>(rng.between(1, 100)),
            static_cast<std::uint32_t>(rng.between(64, 1500))));
    }
}

}  // namespace
}  // namespace p4lru::pipeline
