#include <gtest/gtest.h>

#include "p4lru/pipeline/p4lru3_program.hpp"
#include "p4lru/pipeline/tower_program.hpp"

namespace p4lru::pipeline {
namespace {

TEST(Describe, ListsEveryStageAndRegister) {
    P4lru3PipelineCache cache(16, 1, ValueMode::kReadCache);
    const auto text = cache.pipeline().describe();
    for (const char* needle :
         {"stage 0", "stage 6", "key1", "key2", "key3", "state", "val1",
          "val2", "val3", "hash"}) {
        EXPECT_NE(text.find(needle), std::string::npos) << needle;
    }
}

TEST(P4Export, EmitsRegistersAndActions) {
    P4lru3PipelineCache cache(16, 1, ValueMode::kReadCache);
    const auto p4 = cache.pipeline().export_p4("p4lru3_cache");
    // One Register per array.
    for (const char* reg :
         {"reg_key1", "reg_key2", "reg_key3", "reg_state", "reg_val1",
          "reg_val2", "reg_val3"}) {
        EXPECT_NE(p4.find(std::string("Register<bit<32>, bit<32>>") ), std::string::npos);
        EXPECT_NE(p4.find(reg), std::string::npos) << reg;
    }
    // The Table-1 arithmetic shows up verbatim in the state actions.
    EXPECT_NE(p4.find("value >= 4"), std::string::npos);
    EXPECT_NE(p4.find("value ^ 1"), std::string::npos);
    EXPECT_NE(p4.find("value ^ 3"), std::string::npos);
    EXPECT_NE(p4.find("value >= 2"), std::string::npos);
    EXPECT_NE(p4.find("value - 2"), std::string::npos);
    EXPECT_NE(p4.find("value + 4"), std::string::npos);
    // Stage-ordered apply block with guarded executes.
    EXPECT_NE(p4.find("control p4lru3_cache"), std::string::npos);
    EXPECT_NE(p4.find("ra_state_op2.execute"), std::string::npos);
    EXPECT_NE(p4.find("if (meta.md_match2 == 1)"), std::string::npos);
}

TEST(P4Export, TowerSaturationIsEmitted) {
    TowerPipelineFilter tower(TowerPipelineFilter::Config{});
    const auto p4 = tower.pipeline().export_p4("tower_filter");
    EXPECT_NE(p4.find("// saturating"), std::string::npos);
    EXPECT_NE(p4.find("reg_tower_c1"), std::string::npos);
    EXPECT_NE(p4.find("reg_tower_c2"), std::string::npos);
}

TEST(P4Export, MetadataCoversAllFields) {
    P4lru3PipelineCache cache(16, 1, ValueMode::kReadCache);
    const auto p4 = cache.pipeline().export_p4("x");
    EXPECT_NE(p4.find("bit<32> in_key;"), std::string::npos);
    EXPECT_NE(p4.find("bit<32> md_state_code;"), std::string::npos);
}

}  // namespace
}  // namespace p4lru::pipeline
