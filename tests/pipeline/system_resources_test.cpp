#include "p4lru/pipeline/system_resources.hpp"

#include <gtest/gtest.h>

namespace p4lru::pipeline {
namespace {

TEST(SystemResources, LruTableUsesOnePipeline) {
    const auto r = lrutable_resources(1u << 12);  // scaled for test speed
    EXPECT_EQ(r.pipelines_used, 1u);
    EXPECT_EQ(r.report.stages, 7u);
    EXPECT_EQ(r.report.salus, 9u);
    EXPECT_LE(r.report.stages, r.budget.stages);
}

TEST(SystemResources, LruIndexScalesWithLevels) {
    const auto two = lruindex_resources(2, 1u << 10);
    const auto four = lruindex_resources(4, 1u << 10);
    EXPECT_EQ(two.pipelines_used, 2u);
    EXPECT_EQ(four.pipelines_used, 4u);
    EXPECT_EQ(four.report.salus, 2 * two.report.salus);
    EXPECT_EQ(four.report.register_bytes, 2 * two.report.register_bytes);
}

TEST(SystemResources, LruMonCombinesTowerAndCache) {
    const auto r = lrumon_resources(1u << 12);
    EXPECT_EQ(r.pipelines_used, 2u);
    // Tower (6 stages, 2 SALUs) + cache (7 stages, 9 SALUs).
    EXPECT_EQ(r.report.stages, 13u);
    EXPECT_EQ(r.report.salus, 11u);
}

TEST(SystemResources, PaperScaleConfigFitsTheBudget) {
    // Full paper sizes: 2^16 units etc. Memory percentages must be sane
    // (> 0, < 100) and SALU counts within budget.
    const auto table = lrutable_resources();
    EXPECT_LT(table.report.register_bytes, table.budget.sram_bytes);

    const auto index = lruindex_resources();
    EXPECT_LT(index.report.register_bytes, index.budget.sram_bytes);

    const auto mon = lrumon_resources();
    EXPECT_LT(mon.report.register_bytes, mon.budget.sram_bytes);
    EXPECT_LE(mon.report.stages, mon.budget.stages);
}

TEST(SystemResources, TableRendersWithoutError) {
    const auto r = lrutable_resources(1u << 10);
    const auto table = r.to_table();
    EXPECT_NE(table.find("Stateful ALU"), std::string::npos);
    EXPECT_NE(table.find("%"), std::string::npos);
}

}  // namespace
}  // namespace p4lru::pipeline
