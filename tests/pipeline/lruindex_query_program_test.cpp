// The read-only LruIndex query pass on the pipeline model must agree with
// the behavioural series cache at every step of the round-trip protocol.
// The mutating reply pass runs behaviourally and is mirrored into the
// pipeline registers; the test proves the query program decodes the same
// hit level and value through the state DFA, with zero register writes.
#include "p4lru/pipeline/lruindex_query_program.hpp"

#include <gtest/gtest.h>

#include "../test_util.hpp"
#include "p4lru/core/p4lru_encoded.hpp"
#include "p4lru/core/series_cache.hpp"

namespace p4lru::pipeline {
namespace {

using Unit = core::P4lru3Encoded<std::uint32_t, std::uint32_t>;
using Series = core::SeriesCache<Unit, std::uint32_t, std::uint32_t>;

/// Mirror one behavioural unit into the pipeline level's registers.
void mirror_unit(LruIndexQueryLevel& level, std::size_t bucket,
                 const Unit& unit) {
    std::uint32_t keys[3] = {unit.raw_key(0), unit.raw_key(1),
                             unit.raw_key(2)};
    std::uint32_t vals[3] = {0, 0, 0};
    for (int i = 0; i < 3; ++i) {
        if (keys[i] == 0) continue;
        const std::size_t slot =
            core::codec::kLru3Decode[unit.state_code()][i];
        vals[slot - 1] = *unit.find(keys[i]);
    }
    level.load_unit(bucket, keys, vals, unit.state_code());
}

void mirror_all(LruIndexQueryPipeline& pipe, const Series& series) {
    for (std::size_t l = 0; l < series.level_count(); ++l) {
        for (std::size_t b = 0; b < series.level(l).unit_count(); ++b) {
            mirror_unit(pipe.level(l), b, series.level(l).unit(b));
        }
    }
}

TEST(LruIndexQueryProgram, ReadOnlyFootprint) {
    const LruIndexQueryPipeline pipe(4, 64, 0x1D);
    const auto r = pipe.resources();
    EXPECT_EQ(r.stages, 4u * 7u);
    EXPECT_EQ(r.salus, 4u * 7u);  // 3 key + 1 state + 3 value per level
    // Each level fits one physical pipeline, as the paper folds it.
    PipelineBudget budget;
    EXPECT_LE(r.stages / 4, budget.stages);
}

TEST(LruIndexQueryProgram, EmptyCacheAlwaysMisses) {
    LruIndexQueryPipeline pipe(2, 16, 0x2D);
    for (std::uint32_t k = 1; k <= 100; ++k) {
        EXPECT_EQ(pipe.query(k).level, 0u) << k;
    }
}

TEST(LruIndexQueryProgram, QueryIsActuallyReadOnly) {
    LruIndexQueryPipeline pipe(1, 4, 0x3D);
    const std::uint32_t keys[3] = {10, 20, 30};
    const std::uint32_t vals[3] = {100, 200, 300};
    for (std::size_t b = 0; b < 4; ++b) {
        pipe.level(0).load_unit(b, keys, vals, 4);
    }
    for (int rep = 0; rep < 50; ++rep) {
        const auto r = pipe.query(20);
        EXPECT_EQ(r.level, 1u);
        EXPECT_EQ(r.value, 200u);
    }
    // Registers unchanged after 50 queries.
    for (std::size_t b = 0; b < 4; ++b) {
        EXPECT_EQ(pipe.level(0).pipeline().register_value(3, b), 4u);
        EXPECT_EQ(pipe.level(0).pipeline().register_value(0, b), 10u);
    }
}

TEST(LruIndexQueryProgram, MatchesBehaviouralSeriesCacheUnderProtocol) {
    const std::size_t levels = 3;
    const std::size_t units = 8;
    const std::uint32_t seed = 0x4D;
    Series series(levels, units, seed);
    LruIndexQueryPipeline pipe(levels, units, seed);

    const auto keys = testutil::random_keys(4'000, 120, 0xF00D, 0.4);
    std::size_t hits = 0;
    for (const auto k : keys) {
        const auto want = series.query(k);
        const auto got = pipe.query(k);
        ASSERT_EQ(got.level, want.level) << "key " << k;
        if (want.hit()) {
            ASSERT_EQ(got.value, want.value) << "key " << k;
            ++hits;
            series.reply_promote(k, want.value, want.level);
        } else {
            series.reply_insert(k, k * 7u + 1u);
        }
        // Reply pass mutated the behavioural cache; mirror it.
        mirror_all(pipe, series);
    }
    EXPECT_GT(hits, 500u);  // the equivalence covered plenty of hit paths
}

}  // namespace
}  // namespace p4lru::pipeline
