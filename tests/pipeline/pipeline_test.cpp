// The pipeline model itself: instruction semantics and, critically, the
// constraint enforcement that makes "this program is pipeline-feasible" a
// checkable statement.
#include "p4lru/pipeline/pipeline.hpp"

#include <gtest/gtest.h>

#include "p4lru/common/hash.hpp"

namespace p4lru::pipeline {
namespace {

TEST(Phv, FieldsStartAtZero) {
    PhvLayout layout;
    const auto f = layout.field("a");
    Phv phv(layout.field_count());
    EXPECT_EQ(phv.get(f), 0u);
}

TEST(PhvLayout, SameNameSameId) {
    PhvLayout layout;
    EXPECT_EQ(layout.field("x"), layout.field("x"));
    EXPECT_NE(layout.field("x"), layout.field("y"));
}

TEST(Pipeline, VliwArithmetic) {
    Pipeline p;
    auto& L = p.layout();
    const auto a = L.field("a");
    const auto b = L.field("b");
    const auto sum = L.field("sum");
    const auto diff = L.field("diff");
    const auto x = L.field("xor");

    Stage st;
    st.name = "alu";
    st.vliw.push_back(VliwInstr{VliwOp::kAdd, sum, a, b, 0, 0, {}});
    st.vliw.push_back(VliwInstr{VliwOp::kSub, diff, a, b, 0, 0, {}});
    st.vliw.push_back(VliwInstr{VliwOp::kXor, x, a, b, 0, 0, {}});
    p.add_stage(std::move(st));

    Phv phv = p.make_phv();
    phv.set(a, 10);
    phv.set(b, 3);
    p.execute(phv);
    EXPECT_EQ(phv.get(sum), 13u);
    EXPECT_EQ(phv.get(diff), 7u);
    EXPECT_EQ(phv.get(x), 9u);
}

TEST(Pipeline, VliwComparisonsAndSelect) {
    Pipeline p;
    auto& L = p.layout();
    const auto a = L.field("a");
    const auto b = L.field("b");
    const auto ge = L.field("ge");
    const auto lt = L.field("lt");
    const auto eq = L.field("eqc");
    {
        Stage st;
        st.name = "cmp";
        st.vliw.push_back(VliwInstr{VliwOp::kGe, ge, a, b, 0, 0, {}});
        st.vliw.push_back(VliwInstr{VliwOp::kLt, lt, a, b, 0, 0, {}});
        st.vliw.push_back(VliwInstr{VliwOp::kEqConst, eq, a, 0, 0, 7, {}});
        p.add_stage(std::move(st));
    }
    const auto sel = L.field("sel");
    {
        Stage st;
        st.name = "sel";
        st.vliw.push_back(VliwInstr{VliwOp::kSelect, sel, a, b, ge, 0, {}});
        p.add_stage(std::move(st));
    }
    Phv phv = p.make_phv();
    phv.set(a, 7);
    phv.set(b, 5);
    p.execute(phv);
    EXPECT_EQ(phv.get(ge), 1u);
    EXPECT_EQ(phv.get(lt), 0u);
    EXPECT_EQ(phv.get(eq), 1u);
    EXPECT_EQ(phv.get(sel), 7u);
}

TEST(Pipeline, HashMatchesCrc32Reference) {
    Pipeline p;
    auto& L = p.layout();
    const auto in = L.field("in");
    const auto out = L.field("out");
    Stage st;
    st.name = "h";
    st.hashes.push_back(HashInstr{{in}, out, 77, 1024});
    p.add_stage(std::move(st));

    Phv phv = p.make_phv();
    phv.set(in, 0xDEADBEEF);
    p.execute(phv);

    std::uint8_t bytes[4] = {0xEF, 0xBE, 0xAD, 0xDE};
    const auto digest = hash::crc32(std::span<const std::uint8_t>(bytes, 4), 77);
    EXPECT_EQ(phv.get(out), (std::uint64_t{digest} * 1024) >> 32);
}

TEST(Pipeline, SameStageReadAfterWriteThrows) {
    Pipeline p;
    auto& L = p.layout();
    const auto a = L.field("a");
    const auto b = L.field("b");
    const auto c = L.field("c");
    Stage st;
    st.name = "raw";
    st.vliw.push_back(VliwInstr{VliwOp::kCopy, b, a, 0, 0, 0, {}});
    st.vliw.push_back(VliwInstr{VliwOp::kCopy, c, b, 0, 0, 0, {}});  // RAW!
    p.add_stage(std::move(st));
    Phv phv = p.make_phv();
    EXPECT_THROW(p.execute(phv), PipelineError);
}

TEST(Pipeline, CrossStageDependencyIsFine) {
    Pipeline p;
    auto& L = p.layout();
    const auto a = L.field("a");
    const auto b = L.field("b");
    const auto c = L.field("c");
    {
        Stage st;
        st.name = "s1";
        st.vliw.push_back(VliwInstr{VliwOp::kCopy, b, a, 0, 0, 0, {}});
        p.add_stage(std::move(st));
    }
    {
        Stage st;
        st.name = "s2";
        st.vliw.push_back(VliwInstr{VliwOp::kCopy, c, b, 0, 0, 0, {}});
        p.add_stage(std::move(st));
    }
    Phv phv = p.make_phv();
    phv.set(a, 42);
    p.execute(phv);
    EXPECT_EQ(phv.get(c), 42u);
}

TEST(Pipeline, DoubleWriteSameFieldThrows) {
    Pipeline p;
    auto& L = p.layout();
    const auto a = L.field("a");
    const auto b = L.field("b");
    Stage st;
    st.name = "waw";
    st.vliw.push_back(VliwInstr{VliwOp::kCopy, b, a, 0, 0, 0, {}});
    st.vliw.push_back(VliwInstr{VliwOp::kSetConst, b, 0, 0, 0, 9, {}});
    p.add_stage(std::move(st));
    Phv phv = p.make_phv();
    EXPECT_THROW(p.execute(phv), PipelineError);
}

SaluInstr simple_counter(std::size_t reg, FieldId idx, FieldId out) {
    SaluInstr s;
    s.name = "ctr";
    s.register_array = reg;
    s.index = idx;
    s.cmp = CmpOp::kAlways;
    s.on_true = {AluUpdate::kAddConst, 0, 1};
    s.out1_sel = AluOutput::kNewValue;
    s.out1 = out;
    return s;
}

TEST(Pipeline, SaluReadModifyWrite) {
    Pipeline p;
    auto& L = p.layout();
    const auto idx = L.field("idx");
    const auto out = L.field("out");
    const auto reg = p.add_register_array("ctr", 8);
    Stage st;
    st.name = "count";
    st.salus.push_back(simple_counter(reg, idx, out));
    p.add_stage(std::move(st));

    Phv phv = p.make_phv();
    phv.set(idx, 3);
    p.execute(phv);
    EXPECT_EQ(phv.get(out), 1u);
    EXPECT_EQ(p.register_value(reg, 3), 1u);
    Phv phv2 = p.make_phv();
    phv2.set(idx, 3);
    p.execute(phv2);
    EXPECT_EQ(phv2.get(out), 2u);
}

TEST(Pipeline, SecondRegisterAccessInOnePacketThrows) {
    // The constraint that kills classical LRU: one packet may not revisit a
    // register array.
    Pipeline p;
    auto& L = p.layout();
    const auto idx = L.field("idx");
    const auto o1 = L.field("o1");
    const auto o2 = L.field("o2");
    const auto reg = p.add_register_array("r", 4);
    {
        Stage st;
        st.name = "first";
        st.salus.push_back(simple_counter(reg, idx, o1));
        p.add_stage(std::move(st));
    }
    {
        Stage st;
        st.name = "second";
        st.salus.push_back(simple_counter(reg, idx, o2));
        p.add_stage(std::move(st));
    }
    Phv phv = p.make_phv();
    EXPECT_THROW(p.execute(phv), PipelineError);
}

TEST(Pipeline, GuardedOffSaluDoesNotCountAsAccess) {
    Pipeline p;
    auto& L = p.layout();
    const auto idx = L.field("idx");
    const auto g = L.field("g");
    const auto o1 = L.field("o1");
    const auto o2 = L.field("o2");
    const auto reg = p.add_register_array("r", 4);
    {
        Stage st;
        st.name = "first";
        auto s = simple_counter(reg, idx, o1);
        s.guard = g;
        s.guard_value = 1;  // g == 0 -> skipped
        st.salus.push_back(std::move(s));
        p.add_stage(std::move(st));
    }
    {
        Stage st;
        st.name = "second";
        st.salus.push_back(simple_counter(reg, idx, o2));
        p.add_stage(std::move(st));
    }
    Phv phv = p.make_phv();
    p.execute(phv);  // must not throw: only one executed access
    EXPECT_EQ(phv.get(o2), 1u);
    EXPECT_EQ(phv.get(o1), 0u);  // untouched
}

TEST(Pipeline, SaluPredicateBranches) {
    Pipeline p;
    auto& L = p.layout();
    const auto idx = L.field("idx");
    const auto out = L.field("out");
    const auto reg = p.add_register_array("r", 2);
    p.set_register_value(reg, 0, 10);
    Stage st;
    st.name = "pred";
    SaluInstr s;
    s.name = "pred";
    s.register_array = reg;
    s.index = idx;
    s.cmp = CmpOp::kGe;
    s.cmp_const = 5;
    s.on_true = {AluUpdate::kSubConst, 0, 5};   // R >= 5: R -= 5
    s.on_false = {AluUpdate::kAddConst, 0, 100};
    s.out1_sel = AluOutput::kNewValue;
    s.out1 = out;
    st.salus.push_back(std::move(s));
    p.add_stage(std::move(st));

    Phv a = p.make_phv();
    a.set(idx, 0);
    p.execute(a);
    EXPECT_EQ(a.get(out), 5u);  // 10 - 5

    Phv b = p.make_phv();
    b.set(idx, 1);
    p.execute(b);
    EXPECT_EQ(b.get(out), 100u);  // 0 + 100
}

TEST(Pipeline, LookupTableLimits) {
    Pipeline p;
    auto& L = p.layout();
    const auto a = L.field("a");
    const auto d = L.field("d");
    Stage ok;
    ok.name = "lut";
    VliwInstr lut;
    lut.op = VliwOp::kLookup;
    lut.dst = d;
    lut.a = a;
    lut.table = {5, 6, 7};
    ok.vliw.push_back(lut);
    p.add_stage(std::move(ok));

    Phv phv = p.make_phv();
    phv.set(a, 2);
    p.execute(phv);
    EXPECT_EQ(phv.get(d), 7u);

    // Out-of-range key at runtime:
    Phv bad = p.make_phv();
    bad.set(a, 3);
    EXPECT_THROW(p.execute(bad), PipelineError);

    // A 17-entry table violates the tiny-table constraint at build time:
    Pipeline p2;
    auto& L2 = p2.layout();
    Stage big;
    big.name = "big";
    VliwInstr wide;
    wide.op = VliwOp::kLookup;
    wide.dst = L2.field("d");
    wide.a = L2.field("a");
    wide.table.assign(17, 0);
    big.vliw.push_back(wide);
    EXPECT_THROW(p2.add_stage(std::move(big)), PipelineError);
}

TEST(Pipeline, BudgetsEnforced) {
    PipelineBudget tight;
    tight.stages = 1;
    Pipeline p(tight);
    p.add_stage(Stage{"only", {}, {}, {}});
    EXPECT_THROW(p.add_stage(Stage{"extra", {}, {}, {}}), PipelineError);

    PipelineBudget salus;
    salus.salus_per_stage = 1;
    Pipeline p2(salus);
    const auto reg = p2.add_register_array("r", 2);
    const auto idx = p2.layout().field("idx");
    const auto o = p2.layout().field("o");
    Stage st;
    st.name = "two";
    st.salus.push_back(simple_counter(reg, idx, o));
    st.salus.push_back(simple_counter(reg, idx, o));
    EXPECT_THROW(p2.add_stage(std::move(st)), PipelineError);
}

TEST(Pipeline, UnknownRegisterRejectedAtBuild) {
    Pipeline p;
    Stage st;
    st.name = "bad";
    st.salus.push_back(simple_counter(5, 0, 0));
    EXPECT_THROW(p.add_stage(std::move(st)), PipelineError);
}

TEST(Pipeline, IndexOutOfRangeThrowsAtRuntime) {
    Pipeline p;
    const auto reg = p.add_register_array("r", 2);
    const auto idx = p.layout().field("idx");
    const auto o = p.layout().field("o");
    Stage st;
    st.name = "s";
    st.salus.push_back(simple_counter(reg, idx, o));
    p.add_stage(std::move(st));
    Phv phv = p.make_phv();
    phv.set(idx, 2);
    EXPECT_THROW(p.execute(phv), PipelineError);
}

TEST(Pipeline, ResourceReportCountsEverything) {
    Pipeline p;
    auto& L = p.layout();
    const auto in = L.field("in");
    const auto idx = L.field("idx");
    const auto o = L.field("o");
    const auto reg = p.add_register_array("r", 1024);
    {
        Stage st;
        st.name = "h";
        st.hashes.push_back(HashInstr{{in}, idx, 1, 1024});
        p.add_stage(std::move(st));
    }
    {
        Stage st;
        st.name = "c";
        st.salus.push_back(simple_counter(reg, idx, o));
        p.add_stage(std::move(st));
    }
    const auto r = p.resources();
    EXPECT_EQ(r.stages, 2u);
    EXPECT_EQ(r.salus, 1u);
    EXPECT_EQ(r.hash_bits, 10u);  // log2(1024)
    EXPECT_EQ(r.register_bytes, 1024u * 4u);
    EXPECT_EQ(r.map_ram_bytes, 1024u * 4u);
}

TEST(Pipeline, FillRegisterArray) {
    Pipeline p;
    const auto reg = p.add_register_array("r", 4);
    p.fill_register_array(reg, 9);
    for (std::size_t i = 0; i < 4; ++i) {
        EXPECT_EQ(p.register_value(reg, i), 9u);
    }
}

}  // namespace
}  // namespace p4lru::pipeline
