// Cross-module integration: one shared synthetic trace drives all three
// systems, checking the paper's headline claims jointly plus cross-layer
// invariants (pipeline program == behavioural cache inside a running
// LruTable; analyzer totals reconcile with the generator's ground truth).
#include <gtest/gtest.h>

#include <memory>
#include <unordered_map>

#include "p4lru/cache/policy.hpp"
#include "p4lru/core/p4lru_encoded.hpp"
#include "p4lru/pipeline/p4lru3_program.hpp"
#include "p4lru/systems/lrutable/lrutable.hpp"
#include "p4lru/systems/lruindex/db_server.hpp"
#include "p4lru/systems/lruindex/driver.hpp"
#include "p4lru/systems/lruindex/index_cache.hpp"
#include "p4lru/systems/lrumon/lrumon.hpp"
#include "p4lru/trace/trace_gen.hpp"

namespace p4lru {
namespace {

class EndToEnd : public ::testing::Test {
  protected:
    static void SetUpTestSuite() {
        trace::TraceConfig tc;
        tc.total_packets = 150'000;
        tc.segments = 30;
        tc.seed = 99;
        trace_ = new std::vector<PacketRecord>(trace::generate_trace(tc));
    }
    static void TearDownTestSuite() {
        delete trace_;
        trace_ = nullptr;
    }
    static std::vector<PacketRecord>* trace_;
};

std::vector<PacketRecord>* EndToEnd::trace_ = nullptr;

TEST_F(EndToEnd, HeadlineClaimAcrossAllThreeSystems) {
    // LruTable: P4LRU3 beats the baseline on miss rate.
    const auto table_miss = [&](auto make_policy) {
        systems::lrutable::LruTableConfig cfg;
        cfg.slow_path_delay = 40 * kMicrosecond;
        systems::lrutable::LruTableSystem sys(make_policy(), cfg);
        for (const auto& p : *trace_) sys.process(p);
        sys.finish();
        return sys.report().miss_rate;
    };
    const double t3 = table_miss([] {
        return std::make_unique<cache::P4lruArrayPolicy<
            systems::lrutable::VirtualAddress, std::uint32_t, 3>>(1'536,
                                                                  0x77);
    });
    const double t1 = table_miss([] {
        return std::make_unique<cache::P4lruArrayPolicy<
            systems::lrutable::VirtualAddress, std::uint32_t, 1>>(1'536,
                                                                  0x77);
    });
    EXPECT_LT(t3, t1);

    // LruMon: P4LRU3 uploads less at identical (exact) accuracy.
    const auto mon_run = [&](auto make_policy) {
        systems::lrumon::FilterConfig fcfg;
        fcfg.tower_width1 = 1u << 15;
        fcfg.tower_width2 = 1u << 14;
        systems::lrumon::LruMonConfig cfg;
        cfg.threshold = 1500;
        systems::lrumon::LruMonSystem sys(
            std::make_unique<systems::lrumon::TowerFilter>(fcfg),
            make_policy(), cfg);
        for (const auto& p : *trace_) sys.process(p);
        sys.finish();
        return sys.report();
    };
    const auto m3 = mon_run([] {
        return std::make_unique<cache::P4lruArrayPolicy<
            std::uint32_t, systems::lrumon::FlowLen, 3, core::AddMerge>>(
            384, 0x78);
    });
    const auto m1 = mon_run([] {
        return std::make_unique<cache::P4lruArrayPolicy<
            std::uint32_t, systems::lrumon::FlowLen, 1, core::AddMerge>>(
            384, 0x78);
    });
    EXPECT_LT(m3.uploads, m1.uploads);
    EXPECT_EQ(m3.overestimated_flows, 0u);
    EXPECT_EQ(m1.overestimated_flows, 0u);
    // Measurement error comes only from the filter, which both share.
    EXPECT_NEAR(m3.total_error_rate, m1.total_error_rate, 1e-9);
}

TEST_F(EndToEnd, PipelineProgramInsideLruTableMatchesBehavioural) {
    // Drive the actual pipeline-compiled cache and the behavioural policy
    // with the same virtual addresses; hit decisions must agree packet for
    // packet (read-cache mode, no slow-path model here).
    pipeline::P4lru3PipelineCache pipe(256, 0x5A,
                                       pipeline::ValueMode::kReadCache);
    core::ParallelCache<core::P4lru3Encoded<std::uint32_t, std::uint32_t>,
                        std::uint32_t, std::uint32_t>
        beh(256, 0x5A);
    std::size_t packets = 0;
    for (const auto& p : *trace_) {
        if (++packets > 30'000) break;
        const std::uint32_t va = p.flow.dst_ip;
        if (va == 0) continue;
        const auto a = pipe.update(va, 1);
        const auto b = beh.update(va, 1, core::KeepMerge{});
        ASSERT_EQ(a.hit, b.hit) << "packet " << packets;
    }
}

TEST_F(EndToEnd, LruMonMeasurementReconcilesWithGroundTruth) {
    std::unordered_map<FlowKey, std::uint64_t> truth;
    for (const auto& p : *trace_) truth[p.flow] += p.len;

    systems::lrumon::FilterConfig fcfg;
    fcfg.tower_width1 = 1u << 15;
    fcfg.tower_width2 = 1u << 14;
    systems::lrumon::LruMonConfig cfg;
    cfg.threshold = 1000;
    systems::lrumon::LruMonSystem sys(
        std::make_unique<systems::lrumon::TowerFilter>(fcfg),
        std::make_unique<cache::P4lruArrayPolicy<
            std::uint32_t, systems::lrumon::FlowLen, 3, core::AddMerge>>(
            3'000, 0x79),
        cfg);
    for (const auto& p : *trace_) sys.process(p);
    sys.finish();
    const auto r = sys.report();

    std::uint64_t total = 0;
    for (const auto& [flow, bytes] : truth) total += bytes;
    EXPECT_EQ(r.total_bytes, total);
    // measured <= truth per flow, and aggregates reconcile.
    EXPECT_LE(r.measured_bytes, r.total_bytes);
    EXPECT_DOUBLE_EQ(
        r.total_error_rate,
        static_cast<double>(r.total_bytes - r.measured_bytes) /
            static_cast<double>(r.total_bytes));
}

TEST_F(EndToEnd, LruIndexServesBitExactRecordsUnderCaching) {
    systems::lruindex::DbServer server(20'000,
                                       systems::lruindex::ServerCosts{});
    systems::lruindex::SeriesIndexCache cache(4, 256, 0x7B);
    systems::lruindex::DriverConfig cfg;
    cfg.threads = 4;
    cfg.queries = 20'000;
    cfg.workload.items = 20'000;
    const auto r = run_driver(cfg, server, &cache);
    EXPECT_EQ(r.wrong_replies, 0u);
    EXPECT_EQ(r.queries, 20'000u);
}

}  // namespace
}  // namespace p4lru
