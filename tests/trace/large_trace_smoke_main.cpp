// Standalone bounded-memory smoke for streaming trace ingestion
// (trace_source.hpp / op_source.hpp): writes a trace to disk in bounded
// slices — the full record vector is never materialized — then replays it
// through a ChunkedFileSource sequentially, threaded-sharded, and across a
// mid-stream kill-and-resume, demanding bit-identical statistics and plane
// bytes throughout.  Peak RSS is reported (and optionally enforced) so CI
// can run the replay under a hard `ulimit -v` far below the trace size:
// resident memory stays O(chunk x queue depth), not O(trace).
//
// Knobs (environment):
//   P4LRU_LARGE_TRACE_RECORDS   total records          (default 1'000'000)
//   P4LRU_LARGE_TRACE_CHUNK     reader chunk records   (default 32'768)
//   P4LRU_LARGE_TRACE_FILE      trace path; reused if it already holds the
//                               requested count (default: fresh temp dir)
//   P4LRU_LARGE_TRACE_MAX_RSS_KB  fail if ru_maxrss exceeds this
//   P4LRU_LARGE_TRACE_SKIP_VECTOR disable the in-memory VectorSource
//                               cross-check (set under tight memory caps)
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "p4lru/core/p4lru.hpp"
#include "p4lru/replay/checkpoint.hpp"
#include "p4lru/replay/op_source.hpp"
#include "p4lru/replay/replay.hpp"
#include "p4lru/trace/trace_gen.hpp"
#include "p4lru/trace/trace_io.hpp"
#include "p4lru/trace/trace_source.hpp"
#include "../test_util.hpp"

namespace {

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
    const char* v = std::getenv(name);
    if (v == nullptr || *v == '\0') return fallback;
    return std::strtoull(v, nullptr, 10);
}

/// Write a `total`-record P4LRUTRC file slice by slice: generation and
/// encoding both stay O(slice), so the writer obeys the same memory bound
/// the replay is about to be held to.
bool write_sliced_trace(const std::string& path, std::uint64_t total) {
    using namespace p4lru;
    std::FILE* f = std::fopen(path.c_str(), "wb");
    if (f == nullptr) {
        std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
        return false;
    }
    std::uint8_t hdr[trace::kTraceHeaderBytes];
    std::memcpy(hdr, "P4LRUTRC", 8);
    const std::uint32_t version = 1;
    for (int i = 0; i < 4; ++i) {
        hdr[8 + i] = static_cast<std::uint8_t>(version >> (8 * i));
    }
    for (int i = 0; i < 8; ++i) {
        hdr[12 + i] = static_cast<std::uint8_t>(total >> (8 * i));
    }
    bool ok = std::fwrite(hdr, 1, sizeof(hdr), f) == sizeof(hdr);
    constexpr std::uint64_t kSliceRecords = 1u << 18;  // ~8 MiB in memory
    std::vector<std::uint8_t> raw;
    std::uint64_t written = 0;
    std::uint64_t slice_no = 0;
    while (ok && written < total) {
        const std::uint64_t quota = std::min(kSliceRecords, total - written);
        trace::TraceConfig cfg;
        cfg.seed = 0xBEEF + slice_no++;
        cfg.total_packets = static_cast<std::size_t>(quota);
        cfg.segments = 1;
        auto slice = trace::generate_trace(cfg);
        if (slice.size() > quota) slice.resize(quota);
        raw.resize(slice.size() * trace::kTraceRecordBytes);
        for (std::size_t i = 0; i < slice.size(); ++i) {
            trace::encode_trace_record(slice[i],
                                       raw.data() +
                                           i * trace::kTraceRecordBytes);
        }
        ok = std::fwrite(raw.data(), 1, raw.size(), f) == raw.size();
        written += slice.size();
    }
    ok = std::fclose(f) == 0 && ok;
    if (!ok) std::fprintf(stderr, "short write to %s\n", path.c_str());
    return ok;
}

long peak_rss_kb() {
#if defined(__unix__) || defined(__APPLE__)
    struct rusage ru {};
    if (getrusage(RUSAGE_SELF, &ru) == 0) {
#if defined(__APPLE__)
        return static_cast<long>(ru.ru_maxrss / 1024);  // bytes on macOS
#else
        return ru.ru_maxrss;  // KiB on Linux
#endif
    }
#endif
    return -1;
}

}  // namespace

int main() {
    using namespace p4lru;
    using Cache = core::ParallelCache<core::P4lru<FlowKey, std::uint32_t, 3>,
                                      FlowKey, std::uint32_t>;

    const std::uint64_t records =
        std::max<std::uint64_t>(env_u64("P4LRU_LARGE_TRACE_RECORDS",
                                        1'000'000),
                                1'000);
    const std::size_t chunk = static_cast<std::size_t>(
        env_u64("P4LRU_LARGE_TRACE_CHUNK", 32'768));

    testutil::ScopedTempDir scratch{"p4lru_large_trace"};
    const char* file_env = std::getenv("P4LRU_LARGE_TRACE_FILE");
    const std::string path =
        file_env != nullptr && *file_env != '\0' ? file_env
                                                 : scratch.file("trace.bin");

    // Reuse a pre-generated file only if it already promises the requested
    // count — lets CI split generation (uncapped) from replay (capped).
    // The probe opens the chunked source (header read only): an MmapSource
    // probe would map the whole file, which is exactly what a tight
    // address-space cap forbids.
    bool have_file = false;
    if (file_env != nullptr) {
        trace::ChunkedSourceOptions probe_opts;
        probe_opts.chunk_records = 1;
        if (auto probe = trace::ChunkedFileSource::open(path, probe_opts);
            probe.is_ok()) {
            have_file = probe.value()->size() == records;
        }
    }
    if (!have_file && !write_sliced_trace(path, records)) return 1;

    trace::ChunkedSourceOptions sopts;
    sopts.chunk_records = chunk;
    const auto open_chunked = [&]() {
        auto src = trace::ChunkedFileSource::open(path, sopts);
        if (!src.is_ok()) {
            std::fprintf(stderr, "chunked open: %s\n",
                         src.status().to_string().c_str());
        }
        return std::move(src);
    };

    // Sequential streamed reference.
    auto seq_src = open_chunked();
    if (!seq_src.is_ok()) return 1;
    auto seq_stream = replay::packet_op_source(*seq_src.value());
    Cache seq_cache(1024, 0x7A);
    const auto seq_run = replay::replay_sequential_stream(seq_cache,
                                                          seq_stream);
    if (!seq_run.is_ok()) {
        std::fprintf(stderr, "sequential stream: %s\n",
                     seq_run.status().to_string().c_str());
        return 1;
    }
    const auto seq = seq_run.value();
    if (seq.ops != records) {
        std::fprintf(stderr, "sequential stream saw %llu of %llu ops\n",
                     static_cast<unsigned long long>(seq.ops),
                     static_cast<unsigned long long>(records));
        return 1;
    }
    std::vector<std::byte> want;
    seq_cache.materialize();
    seq_cache.storage().save_planes(want);

    // Threaded-sharded streamed replay of the same file.
    replay::ShardedConfig cfg;
    cfg.shards = 4;
    cfg.batch_ops = 512;
    cfg.mode = replay::Mode::kThreaded;
    auto thr_src = open_chunked();
    if (!thr_src.is_ok()) return 1;
    auto thr_stream = replay::packet_op_source(*thr_src.value());
    Cache thr_cache(1024, 0x7A);
    const auto thr_run =
        replay::replay_sharded_stream(thr_cache, thr_stream, cfg);
    if (!thr_run.is_ok() || !(thr_run.value().stats == seq)) {
        std::fprintf(stderr, "threaded stream %s (ops %llu/%llu)\n",
                     thr_run.is_ok() ? "diverged from sequential"
                                     : thr_run.status().to_string().c_str(),
                     static_cast<unsigned long long>(
                         thr_run.is_ok() ? thr_run.value().stats.ops : 0),
                     static_cast<unsigned long long>(seq.ops));
        return 1;
    }
    std::vector<std::byte> got;
    thr_cache.materialize();
    thr_cache.storage().save_planes(got);
    if (got != want) {
        std::fprintf(stderr, "threaded plane bytes differ from sequential\n");
        return 1;
    }

    // Kill-and-resume: checkpointed threaded run, cut in the middle, fresh
    // cache resumed from a fresh source — the resume seeks, it never
    // re-reads the prefix.
    auto ck_src = open_chunked();
    if (!ck_src.is_ok()) return 1;
    auto ck_stream = replay::packet_op_source(*ck_src.value());
    Cache ck_cache(1024, 0x7A);
    std::vector<replay::ShardedCheckpoint> cps;
    // Cadence scaled so ~8 cuts land whatever the trace size; a fixed
    // cadence emits none at all on small smoke runs.
    const std::uint64_t every_batches =
        std::max<std::uint64_t>(1, records / (cfg.batch_ops * 8));
    const auto ck_run = replay::replay_sharded_checkpointed_stream(
        ck_cache, ck_stream, cfg, every_batches,
        [&](replay::ShardedCheckpoint&& cp) { cps.push_back(std::move(cp)); });
    if (!ck_run.is_ok() || !(ck_run.value().stats == seq) || cps.empty()) {
        std::fprintf(stderr, "checkpointed stream %s (%zu checkpoints)\n",
                     ck_run.is_ok() ? "diverged from sequential"
                                    : ck_run.status().to_string().c_str(),
                     cps.size());
        return 1;
    }
    const auto& cp = cps[cps.size() / 2];
    auto res_src = open_chunked();
    if (!res_src.is_ok()) return 1;
    auto res_stream = replay::packet_op_source(*res_src.value());
    Cache res_cache(1024, 0x7A);
    const auto res =
        replay::resume_sharded_stream(res_cache, res_stream, cp, cfg);
    if (!res.is_ok() || !(res.value().stats == seq)) {
        std::fprintf(stderr,
                     "resume from cursor %llu %s\n",
                     static_cast<unsigned long long>(cp.base.cursor),
                     res.is_ok() ? "diverged from sequential"
                                 : res.status().to_string().c_str());
        return 1;
    }
    got.clear();
    res_cache.materialize();
    res_cache.storage().save_planes(got);
    if (got != want) {
        std::fprintf(stderr, "resumed plane bytes differ from sequential\n");
        return 1;
    }

    // Optional in-memory cross-check: VectorSource over the whole file must
    // agree with the streamed runs.  Skipped under tight memory caps, where
    // materializing the trace is exactly what must not happen.
    if (std::getenv("P4LRU_LARGE_TRACE_SKIP_VECTOR") == nullptr) {
        auto whole = trace::read_trace_checked(path);
        if (!whole.is_ok()) {
            std::fprintf(stderr, "read_trace_checked: %s\n",
                         whole.status().to_string().c_str());
            return 1;
        }
        trace::VectorSource vec(std::move(whole).value());
        auto vec_stream = replay::packet_op_source(vec);
        Cache vec_cache(1024, 0x7A);
        const auto vec_run =
            replay::replay_sequential_stream(vec_cache, vec_stream);
        if (!vec_run.is_ok() || !(vec_run.value() == seq)) {
            std::fprintf(stderr, "VectorSource replay diverged\n");
            return 1;
        }
    }

    const long rss_kb = peak_rss_kb();
    const std::uint64_t cap_kb = env_u64("P4LRU_LARGE_TRACE_MAX_RSS_KB", 0);
    if (cap_kb != 0 && rss_kb > 0 &&
        static_cast<std::uint64_t>(rss_kb) > cap_kb) {
        std::fprintf(stderr,
                     "peak RSS %ld KiB exceeds the %llu KiB cap — streaming "
                     "replay is not memory-bounded\n",
                     rss_kb, static_cast<unsigned long long>(cap_kb));
        return 1;
    }

    std::printf(
        "large_trace_smoke: %llu records (%.1f MiB on disk), chunk %zu "
        "records, sequential + threaded + kill-and-resume streamed replays "
        "bit-identical (%llu ops, %llu hits, %llu evictions), peak RSS "
        "%ld KiB\n",
        static_cast<unsigned long long>(records),
        static_cast<double>(trace::kTraceHeaderBytes +
                            records * trace::kTraceRecordBytes) /
            (1024.0 * 1024.0),
        sopts.chunk_records, static_cast<unsigned long long>(seq.ops),
        static_cast<unsigned long long>(seq.hits),
        static_cast<unsigned long long>(seq.evictions), rss_kb);
    return 0;
}
