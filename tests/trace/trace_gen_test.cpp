#include "p4lru/trace/trace_gen.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace p4lru::trace {
namespace {

TraceConfig small_config(std::size_t segments, std::uint64_t seed = 1) {
    TraceConfig cfg;
    cfg.seed = seed;
    cfg.total_packets = 120'000;
    cfg.segments = segments;
    cfg.duration = kSecond;
    return cfg;
}

TEST(TraceGen, RejectsZeroParameters) {
    TraceConfig cfg;
    cfg.total_packets = 0;
    EXPECT_THROW(generate_trace(cfg), std::invalid_argument);
    cfg = TraceConfig{};
    cfg.segments = 0;
    EXPECT_THROW(generate_trace(cfg), std::invalid_argument);
    cfg = TraceConfig{};
    cfg.duration = 0;
    EXPECT_THROW(generate_trace(cfg), std::invalid_argument);
    cfg = TraceConfig{};
    cfg.total_packets = 10;
    cfg.segments = 20;
    EXPECT_THROW(generate_trace(cfg), std::invalid_argument);
}

TEST(TraceGen, ProducesApproximatelyRequestedPackets) {
    const auto t = generate_trace(small_config(1));
    EXPECT_GE(t.size(), 120'000u);
    EXPECT_LE(t.size(), 150'000u);
}

TEST(TraceGen, TimestampsAreSortedAndWithinDuration) {
    const auto t = generate_trace(small_config(4));
    ASSERT_FALSE(t.empty());
    EXPECT_TRUE(std::is_sorted(
        t.begin(), t.end(),
        [](const PacketRecord& a, const PacketRecord& b) {
            return a.ts < b.ts;
        }));
    // Bursts can spill slightly past the nominal end; 5% slack.
    EXPECT_LE(t.back().ts, kSecond + kSecond / 20);
}

TEST(TraceGen, DeterministicForSameSeed) {
    const auto a = generate_trace(small_config(2, 7));
    const auto b = generate_trace(small_config(2, 7));
    ASSERT_EQ(a.size(), b.size());
    EXPECT_EQ(a.front(), b.front());
    EXPECT_EQ(a[a.size() / 2], b[b.size() / 2]);
    EXPECT_EQ(a.back(), b.back());
}

TEST(TraceGen, DifferentSeedsDiffer) {
    const auto a = generate_trace(small_config(2, 7));
    const auto b = generate_trace(small_config(2, 8));
    EXPECT_NE(compute_stats(a).flows, compute_stats(b).flows);
}

TEST(TraceGen, PacketLengthsAreRealistic) {
    const auto t = generate_trace(small_config(1));
    for (const auto& p : t) {
        ASSERT_GE(p.len, 64u);
        ASSERT_LE(p.len, 1500u);
    }
}

// The CAIDA_n property: flow count and max concurrency grow with n at fixed
// packet count and duration (Section 4, Datasets).
TEST(TraceGen, FlowCountGrowsWithSegments) {
    const auto s1 = compute_stats(generate_trace(small_config(1)));
    const auto s8 = compute_stats(generate_trace(small_config(8)));
    const auto s32 = compute_stats(generate_trace(small_config(32)));
    EXPECT_LT(s1.flows, s8.flows);
    EXPECT_LT(s8.flows, s32.flows);
}

TEST(TraceGen, ConcurrencyGrowsWithSegments) {
    const auto s1 = compute_stats(generate_trace(small_config(1)));
    const auto s32 = compute_stats(generate_trace(small_config(32)));
    EXPECT_LT(s1.max_concurrent, s32.max_concurrent);
}

TEST(TraceGen, HeavyTailedFlowSizes) {
    const auto t = generate_trace(small_config(1));
    std::unordered_map<FlowKey, std::size_t> sizes;
    for (const auto& p : t) ++sizes[p.flow];
    std::size_t mice = 0;
    std::size_t big = 0;
    for (const auto& [f, s] : sizes) {
        mice += s <= 6 ? 1 : 0;
        big += s >= 1000 ? 1 : 0;
    }
    // Most flows are mice; at least a few elephants exist.
    EXPECT_GT(mice, sizes.size() / 2);
    EXPECT_GE(big, 3u);
}

TEST(TraceGen, StatsComputation) {
    const auto t = generate_trace(small_config(2));
    const auto s = compute_stats(t);
    EXPECT_EQ(s.packets, t.size());
    EXPECT_GT(s.flows, 0u);
    EXPECT_GT(s.total_bytes, s.packets * 64ull);
    EXPECT_GT(s.max_concurrent, 0u);
    EXPECT_LE(s.max_concurrent, s.flows);
    EXPECT_GT(s.duration, 0u);
}

TEST(TraceGen, EmptyTraceStats) {
    const auto s = compute_stats({});
    EXPECT_EQ(s.packets, 0u);
    EXPECT_EQ(s.flows, 0u);
}

}  // namespace
}  // namespace p4lru::trace
