// Streaming trace-source contract tests (trace_source.hpp): the three
// implementations must yield bit-identical record streams under any batch
// size, reject every damaged file with a typed error instead of crashing,
// keep per-chunk allocations capped whatever the header claims, seek like
// a file, and surface injected I/O faults through the obs counters.
#include "p4lru/trace/trace_source.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "p4lru/fault/fault_plan.hpp"
#include "p4lru/obs/metrics.hpp"
#include "p4lru/trace/trace_gen.hpp"
#include "p4lru/trace/trace_io.hpp"
#include "../test_util.hpp"

namespace p4lru::trace {
namespace {

std::vector<PacketRecord> small_trace(std::size_t packets,
                                      std::uint64_t seed = 7) {
    // generate_trace may overshoot by one packet per segment (a flow's last
    // burst can cross the quota); one segment + truncation makes the count
    // exact, which the contract assertions below depend on.
    TraceConfig cfg;
    cfg.total_packets = packets;
    cfg.segments = 1;
    cfg.seed = seed;
    auto out = generate_trace(cfg);
    if (out.size() > packets) out.resize(packets);
    return out;
}

/// Drain a source with a fixed batch size and return every record.
std::vector<PacketRecord> drain(TraceSource& src, std::size_t batch) {
    std::vector<PacketRecord> out;
    for (;;) {
        auto b = src.next_batch(batch);
        if (!b.is_ok()) {
            ADD_FAILURE() << src.name() << ": " << b.status().to_string();
            return out;
        }
        if (b.value().empty()) break;
        out.insert(out.end(), b.value().begin(), b.value().end());
    }
    return out;
}

class TraceSourceTest : public ::testing::Test {
  protected:
    void SetUp() override { path_ = dir_.file("trace.bin"); }
    testutil::ScopedTempDir dir_{"p4lru_trace_source"};
    std::string path_;
};

TEST_F(TraceSourceTest, VectorSourceHonorsTheBatchContract) {
    const auto trace = small_trace(100);
    VectorSource src(trace);
    EXPECT_EQ(src.size(), 100u);
    EXPECT_EQ(src.tell(), 0u);
    auto b = src.next_batch(33);
    ASSERT_TRUE(b.is_ok());
    EXPECT_EQ(b.value().size(), 33u);  // exactly min(max, remaining)
    EXPECT_EQ(src.tell(), 33u);
    ASSERT_TRUE(src.seek(90).is_ok());
    b = src.next_batch(33);
    ASSERT_TRUE(b.is_ok());
    EXPECT_EQ(b.value().size(), 10u);  // clipped at end of stream
    b = src.next_batch(33);
    ASSERT_TRUE(b.is_ok());
    EXPECT_TRUE(b.value().empty());  // EOF is an empty span, not an error
    EXPECT_EQ(src.seek(101).code(), ErrorCode::kInvalidArgument);
}

TEST_F(TraceSourceTest, AllSourcesYieldIdenticalRecords) {
    const auto trace = small_trace(10'000);
    write_trace(path_, trace);

    // Odd batch sizes exercise the chunked source's stitch path (chunk 257
    // never divides them) as well as the subspan fast path.
    for (const std::size_t batch : {1ul, 7ul, 97ul, 257ul, 1000ul, 4096ul}) {
        VectorSource vec(trace);
        auto from_vec = drain(vec, batch);
        ASSERT_EQ(from_vec.size(), trace.size());

        auto mm = MmapSource::open(path_);
        ASSERT_TRUE(mm.is_ok()) << mm.status().to_string();
        auto from_mmap = drain(*mm.value(), batch);

        ChunkedSourceOptions copts;
        copts.chunk_records = 257;
        auto ch = ChunkedFileSource::open(path_, copts);
        ASSERT_TRUE(ch.is_ok()) << ch.status().to_string();
        auto from_chunked = drain(*ch.value(), batch);

        ASSERT_EQ(from_mmap.size(), trace.size()) << "batch " << batch;
        ASSERT_EQ(from_chunked.size(), trace.size()) << "batch " << batch;
        for (std::size_t i = 0; i < trace.size(); ++i) {
            ASSERT_EQ(from_vec[i], trace[i]) << "vector record " << i;
            ASSERT_EQ(from_mmap[i], trace[i])
                << "mmap record " << i << " batch " << batch;
            ASSERT_EQ(from_chunked[i], trace[i])
                << "chunked record " << i << " batch " << batch;
        }
    }
}

TEST_F(TraceSourceTest, EmptyTraceIsImmediateEof) {
    write_trace(path_, {});
    auto mm = MmapSource::open(path_);
    ASSERT_TRUE(mm.is_ok()) << mm.status().to_string();
    EXPECT_EQ(mm.value()->size(), 0u);
    auto b = mm.value()->next_batch(64);
    ASSERT_TRUE(b.is_ok());
    EXPECT_TRUE(b.value().empty());

    auto ch = ChunkedFileSource::open(path_);
    ASSERT_TRUE(ch.is_ok()) << ch.status().to_string();
    EXPECT_EQ(ch.value()->size(), 0u);
    b = ch.value()->next_batch(64);
    ASSERT_TRUE(b.is_ok());
    EXPECT_TRUE(b.value().empty());
}

TEST_F(TraceSourceTest, MissingFileIsIoErrorForBothSources) {
    const std::string missing = dir_.file("nope.bin");
    EXPECT_EQ(MmapSource::open(missing).status().code(),
              ErrorCode::kIoError);
    EXPECT_EQ(ChunkedFileSource::open(missing).status().code(),
              ErrorCode::kIoError);
}

/// Truncation sweep (the whole-file reader's hardening, applied to the
/// streaming opens): every strict prefix of a valid trace file must be
/// rejected at open with a typed error — never parsed, never crash.
TEST_F(TraceSourceTest, OpenRejectsEveryTruncationPrefix) {
    const auto trace = small_trace(8);  // 20 + 8*28 = 244 bytes
    write_trace(path_, trace);
    const auto full = std::filesystem::file_size(path_);
    for (std::uintmax_t cut = 0; cut < full; ++cut) {
        write_trace(path_, trace);
        std::filesystem::resize_file(path_, cut);

        auto mm = MmapSource::open(path_);
        ASSERT_FALSE(mm.is_ok()) << "mmap parsed a prefix of " << cut;
        auto mc = mm.status().code();
        EXPECT_TRUE(mc == ErrorCode::kCorrupt || mc == ErrorCode::kTruncated)
            << "mmap prefix " << cut << ": " << mm.status().to_string();

        auto ch = ChunkedFileSource::open(path_);
        ASSERT_FALSE(ch.is_ok()) << "chunked parsed a prefix of " << cut;
        auto cc = ch.status().code();
        EXPECT_TRUE(cc == ErrorCode::kCorrupt || cc == ErrorCode::kTruncated)
            << "chunked prefix " << cut << ": " << ch.status().to_string();
    }
}

TEST_F(TraceSourceTest, MmapShrinkUnderReaderIsStickyTruncatedUntilSeek) {
    const auto trace = small_trace(1'000);
    write_trace(path_, trace);
    auto mm = MmapSource::open(path_);
    ASSERT_TRUE(mm.is_ok()) << mm.status().to_string();
    MmapSource& src = *mm.value();

    auto b = src.next_batch(100);
    ASSERT_TRUE(b.is_ok());
    ASSERT_EQ(b.value().size(), 100u);

    // The file shrinks under the open mapping: the next decode that would
    // touch vanished bytes must be a typed error, not a SIGBUS.
    std::filesystem::resize_file(
        path_, kTraceHeaderBytes + 500 * kTraceRecordBytes);
    ASSERT_TRUE(src.seek(450).is_ok());
    b = src.next_batch(100);  // records 450..549: 500+ are gone
    ASSERT_FALSE(b.is_ok());
    EXPECT_EQ(b.status().code(), ErrorCode::kTruncated);
    // Sticky: the error repeats without progress...
    EXPECT_EQ(src.next_batch(1).status().code(), ErrorCode::kTruncated);
    // ...until a seek clears it; surviving records stay readable.
    ASSERT_TRUE(src.seek(0).is_ok());
    b = src.next_batch(100);
    ASSERT_TRUE(b.is_ok()) << b.status().to_string();
    ASSERT_EQ(b.value().size(), 100u);
    for (std::size_t i = 0; i < 100; ++i) {
        ASSERT_EQ(b.value()[i], trace[i]) << "record " << i;
    }
}

TEST_F(TraceSourceTest, ChunkedShrinkUnderReaderIsStickyTruncated) {
    const auto trace = small_trace(1'000);
    write_trace(path_, trace);
    // Truncate to half before open-and-stream would be rejected at open, so
    // shrink *after* open: use a tiny chunk so the reader is still far from
    // the cut when it happens.
    ChunkedSourceOptions copts;
    copts.chunk_records = 16;
    auto ch = ChunkedFileSource::open(path_, copts);
    ASSERT_TRUE(ch.is_ok()) << ch.status().to_string();
    ChunkedFileSource& src = *ch.value();
    std::filesystem::resize_file(
        path_, kTraceHeaderBytes + 500 * kTraceRecordBytes);

    std::size_t got = 0;
    Status failure = Status::ok();
    for (;;) {
        auto b = src.next_batch(64);
        if (!b.is_ok()) {
            failure = b.status();
            break;
        }
        if (b.value().empty()) break;
        // Every record delivered before the cut must still be correct.
        for (const auto& r : b.value()) {
            ASSERT_EQ(r, trace[got]) << "record " << got;
            ++got;
        }
    }
    EXPECT_EQ(failure.code(), ErrorCode::kTruncated)
        << "stream of " << got << " records ended with: "
        << failure.to_string();
    EXPECT_LE(got, 512u);  // nothing past the cut (+ reader lookahead) leaks
    // Sticky until seek.
    EXPECT_EQ(src.next_batch(1).status().code(), ErrorCode::kTruncated);
    ASSERT_TRUE(src.seek(0).is_ok());
    auto b = src.next_batch(16);
    ASSERT_TRUE(b.is_ok()) << b.status().to_string();
    ASSERT_EQ(b.value().size(), 16u);
    EXPECT_EQ(b.value()[0], trace[0]);
}

TEST_F(TraceSourceTest, SeekRepositionsBothFileSources) {
    const auto trace = small_trace(2'000);
    write_trace(path_, trace);
    ChunkedSourceOptions copts;
    copts.chunk_records = 64;
    auto ch = ChunkedFileSource::open(path_, copts);
    ASSERT_TRUE(ch.is_ok());
    auto mm = MmapSource::open(path_);
    ASSERT_TRUE(mm.is_ok());

    for (TraceSource* src : {static_cast<TraceSource*>(ch.value().get()),
                             static_cast<TraceSource*>(mm.value().get())}) {
        // Forward past in-flight chunks, then backward behind them.
        for (const std::uint64_t at : {1'500ull, 3ull, 1'999ull, 0ull}) {
            ASSERT_TRUE(src->seek(at).is_ok()) << src->name();
            EXPECT_EQ(src->tell(), at);
            auto b = src->next_batch(5);
            ASSERT_TRUE(b.is_ok()) << src->name();
            const std::size_t want =
                std::min<std::size_t>(5, 2'000 - static_cast<std::size_t>(at));
            ASSERT_EQ(b.value().size(), want) << src->name() << " @" << at;
            for (std::size_t i = 0; i < want; ++i) {
                ASSERT_EQ(b.value()[i], trace[at + i])
                    << src->name() << " record " << at + i;
            }
        }
        // seek(size) is EOF, one past is out of contract.
        ASSERT_TRUE(src->seek(2'000).is_ok());
        auto b = src->next_batch(5);
        ASSERT_TRUE(b.is_ok());
        EXPECT_TRUE(b.value().empty());
        EXPECT_EQ(src->seek(2'001).code(), ErrorCode::kInvalidArgument);
    }
}

TEST_F(TraceSourceTest, ChunkSizeIsClampedToCapAndCount) {
    write_trace(path_, small_trace(100));
    ChunkedSourceOptions copts;
    copts.chunk_records = 0;  // below the floor
    auto ch = ChunkedFileSource::open(path_, copts);
    ASSERT_TRUE(ch.is_ok());
    EXPECT_EQ(ch.value()->chunk_records(), 1u);

    copts.chunk_records = ~std::size_t{0};  // far above the reserve cap
    ch = ChunkedFileSource::open(path_, copts);
    ASSERT_TRUE(ch.is_ok());
    // Capped at kMaxBatchRecords, then at the file's record count: the
    // per-chunk allocation can never exceed either, whatever the header or
    // the caller asks for.
    EXPECT_EQ(ch.value()->chunk_records(), 100u);
    EXPECT_LE(ch.value()->chunk_records(), kMaxBatchRecords);
}

TEST_F(TraceSourceTest, ObsCountersTrackReaderHealth) {
    const auto trace = small_trace(1'000);
    write_trace(path_, trace);
    obs::Registry reg;
    ChunkedSourceOptions copts;
    copts.chunk_records = 100;
    copts.metrics = &reg;
    auto ch = ChunkedFileSource::open(path_, copts);
    ASSERT_TRUE(ch.is_ok());
    auto got = drain(*ch.value(), 333);
    ASSERT_EQ(got.size(), trace.size());
    EXPECT_EQ(reg.counter("trace_bytes_read")->value(),
              1'000u * kTraceRecordBytes);
    EXPECT_EQ(reg.counter("trace_chunks_queued")->value(), 10u);

    obs::Registry mreg;
    MmapSourceOptions mopts;
    mopts.metrics = &mreg;
    auto mm = MmapSource::open(path_, mopts);
    ASSERT_TRUE(mm.is_ok());
    (void)drain(*mm.value(), 256);
    EXPECT_EQ(mreg.counter("trace_bytes_read")->value(),
              1'000u * kTraceRecordBytes);
}

TEST_F(TraceSourceTest, InjectedIoFaultsAreSurvivedAndCounted) {
    const auto trace = small_trace(1'000);
    write_trace(path_, trace);
    fault::FaultPlan plan;
    plan.short_read(0)         // chunk 0 arrives in two partial reads
        .eintr_read(1, 3)      // chunk 1 interrupted three times
        .slow_reader(2, 200);  // chunk 2 delayed 200us
    obs::Registry reg;
    ChunkedSourceOptions copts;
    copts.chunk_records = 100;
    copts.metrics = &reg;
    copts.faults = &plan;
    auto ch = ChunkedFileSource::open(path_, copts);
    ASSERT_TRUE(ch.is_ok());
    auto got = drain(*ch.value(), 97);
    // Faults injected into the reader never corrupt the stream — the chunk
    // still assembles bit-identically.
    ASSERT_EQ(got.size(), trace.size());
    for (std::size_t i = 0; i < trace.size(); ++i) {
        ASSERT_EQ(got[i], trace[i]) << "record " << i;
    }
    EXPECT_EQ(reg.counter("trace_reader_short_reads")->value(), 1u);
    EXPECT_EQ(reg.counter("trace_reader_eintr_retries")->value(), 3u);
}

TEST_F(TraceSourceTest, FaultChunkOrdinalsResetOnSeek) {
    const auto trace = small_trace(400);
    write_trace(path_, trace);
    fault::FaultPlan plan;
    plan.short_read(0);  // "chunk 0" = first chunk since the reader started
    obs::Registry reg;
    ChunkedSourceOptions copts;
    copts.chunk_records = 100;
    copts.metrics = &reg;
    copts.faults = &plan;
    auto ch = ChunkedFileSource::open(path_, copts);
    ASSERT_TRUE(ch.is_ok());
    (void)drain(*ch.value(), 100);
    const std::uint64_t after_first =
        reg.counter("trace_reader_short_reads")->value();
    EXPECT_EQ(after_first, 1u);
    // A seek restarts the reader; its chunk ordinals restart at 0, so the
    // same fault fires again — `at` is relative to the last (re)start.
    ASSERT_TRUE(ch.value()->seek(0).is_ok());
    (void)drain(*ch.value(), 100);
    EXPECT_EQ(reg.counter("trace_reader_short_reads")->value(), 2u);
}

}  // namespace
}  // namespace p4lru::trace
