#include "p4lru/trace/trace_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "p4lru/trace/trace_gen.hpp"
#include "../test_util.hpp"

namespace p4lru::trace {
namespace {

class TraceIoTest : public ::testing::Test {
  protected:
    void SetUp() override { path_ = dir_.file("trace.bin"); }
    testutil::ScopedTempDir dir_{"p4lru_trace_io"};
    std::string path_;
};

TEST_F(TraceIoTest, RoundTripPreservesEveryRecord) {
    TraceConfig cfg;
    cfg.total_packets = 5'000;
    const auto trace = generate_trace(cfg);
    write_trace(path_, trace);
    const auto loaded = read_trace(path_);
    ASSERT_EQ(loaded.size(), trace.size());
    for (std::size_t i = 0; i < trace.size(); ++i) {
        ASSERT_EQ(loaded[i], trace[i]) << "record " << i;
    }
}

TEST_F(TraceIoTest, EmptyTraceRoundTrips) {
    write_trace(path_, {});
    EXPECT_TRUE(read_trace(path_).empty());
}

TEST_F(TraceIoTest, MissingFileThrows) {
    EXPECT_THROW(read_trace("/nonexistent/dir/x.bin"), std::runtime_error);
}

TEST_F(TraceIoTest, BadMagicRejected) {
    std::ofstream os(path_, std::ios::binary);
    os << "NOTATRACEFILE.....";
    os.close();
    EXPECT_THROW(read_trace(path_), std::runtime_error);
}

TEST_F(TraceIoTest, TruncatedBodyRejected) {
    TraceConfig cfg;
    cfg.total_packets = 1'000;
    const auto trace = generate_trace(cfg);
    write_trace(path_, trace);
    // Chop the file in half.
    const auto full = std::filesystem::file_size(path_);
    std::filesystem::resize_file(path_, full / 2);
    EXPECT_THROW(read_trace(path_), std::runtime_error);
}

TEST_F(TraceIoTest, TruncatedHeaderRejected) {
    std::ofstream os(path_, std::ios::binary);
    os << "P4LRUTRC";  // magic only, no version/count
    os.close();
    EXPECT_THROW(read_trace(path_), std::runtime_error);
}

TEST_F(TraceIoTest, WrongVersionRejected) {
    write_trace(path_, {});
    // Corrupt the version field (bytes 8..11).
    std::fstream f(path_, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(8);
    const std::uint32_t bad = 999;
    f.write(reinterpret_cast<const char*>(&bad), 4);
    f.close();
    EXPECT_THROW(read_trace(path_), std::runtime_error);
}

// -- typed-error path (read_trace_checked) --------------------------------

TEST_F(TraceIoTest, CheckedReadReturnsValueOnGoodFile) {
    TraceConfig cfg;
    cfg.total_packets = 100;
    const auto trace = generate_trace(cfg);
    write_trace(path_, trace);
    const auto r = read_trace_checked(path_);
    ASSERT_TRUE(r.is_ok()) << r.status().to_string();
    EXPECT_EQ(r.value().size(), trace.size());
}

TEST_F(TraceIoTest, CheckedReadReportsMissingFileAsIoError) {
    const auto r = read_trace_checked("/nonexistent/dir/x.bin");
    ASSERT_FALSE(r.is_ok());
    EXPECT_EQ(r.status().code(), ErrorCode::kIoError);
}

TEST_F(TraceIoTest, CheckedReadReportsBadMagicAtOffsetZero) {
    std::ofstream os(path_, std::ios::binary);
    os << "XXXXXXXXyyyyzzzzzzzz";  // 20 bytes: a full-size but bogus header
    os.close();
    const auto r = read_trace_checked(path_);
    ASSERT_FALSE(r.is_ok());
    EXPECT_EQ(r.status().code(), ErrorCode::kCorrupt);
    ASSERT_TRUE(r.status().has_offset());
    EXPECT_EQ(r.status().offset(), 0u);
}

TEST_F(TraceIoTest, CheckedReadReportsVersionMismatchAtOffsetEight) {
    write_trace(path_, {});
    std::fstream f(path_, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(8);
    const std::uint32_t bad = 2;
    f.write(reinterpret_cast<const char*>(&bad), 4);
    f.close();
    const auto r = read_trace_checked(path_);
    ASSERT_FALSE(r.is_ok());
    EXPECT_EQ(r.status().code(), ErrorCode::kCorrupt);
    EXPECT_EQ(r.status().offset(), 8u);
}

TEST_F(TraceIoTest, CheckedReadRejectsLyingRecordCount) {
    TraceConfig cfg;
    cfg.total_packets = 10;
    write_trace(path_, generate_trace(cfg));
    // Inflate the count field (bytes 12..19) far past the file body: the
    // reader must refuse up front instead of allocating for 2^40 records.
    std::fstream f(path_, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(12);
    const std::uint64_t lie = std::uint64_t{1} << 40;
    f.write(reinterpret_cast<const char*>(&lie), 8);
    f.close();
    const auto r = read_trace_checked(path_);
    ASSERT_FALSE(r.is_ok());
    EXPECT_EQ(r.status().code(), ErrorCode::kCorrupt);
}

/// Fuzz-ish truncation sweep: every strict prefix of a valid trace file must
/// be rejected with a typed error — never parsed as success, never crash —
/// and the reported byte offset must lie within the truncated file.
TEST_F(TraceIoTest, EveryTruncationPrefixIsRejectedWithOffset) {
    TraceConfig cfg;
    cfg.total_packets = 8;  // 20-byte header + 8 * 28-byte records = 244
    const auto trace = generate_trace(cfg);
    write_trace(path_, trace);
    const auto full = std::filesystem::file_size(path_);

    for (std::uintmax_t cut = 0; cut < full; ++cut) {
        write_trace(path_, trace);  // restore, then truncate to `cut` bytes
        std::filesystem::resize_file(path_, cut);
        const auto r = read_trace_checked(path_);
        ASSERT_FALSE(r.is_ok()) << "prefix of " << cut << " bytes parsed";
        const auto code = r.status().code();
        EXPECT_TRUE(code == ErrorCode::kCorrupt ||
                    code == ErrorCode::kTruncated)
            << "prefix " << cut << ": " << r.status().to_string();
        if (r.status().has_offset()) {
            EXPECT_LE(r.status().offset(), cut)
                << "offset must point inside the truncated file";
        }
    }
}

TEST_F(TraceIoTest, ThrownErrorCarriesByteOffsetMessage) {
    TraceConfig cfg;
    cfg.total_packets = 100;
    write_trace(path_, generate_trace(cfg));
    const auto full = std::filesystem::file_size(path_);
    std::filesystem::resize_file(path_, full - 11);
    try {
        (void)read_trace(path_);
        FAIL() << "expected a throw";
    } catch (const std::runtime_error& e) {
        EXPECT_NE(std::string(e.what()).find("@byte"), std::string::npos)
            << "message should carry the failure offset: " << e.what();
    }
}

}  // namespace
}  // namespace p4lru::trace
