#include "p4lru/trace/trace_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "p4lru/trace/trace_gen.hpp"

namespace p4lru::trace {
namespace {

class TraceIoTest : public ::testing::Test {
  protected:
    void SetUp() override {
        path_ = (std::filesystem::temp_directory_path() /
                 ("p4lru_trace_test_" +
                  std::to_string(::getpid()) + ".bin"))
                    .string();
    }
    void TearDown() override { std::remove(path_.c_str()); }
    std::string path_;
};

TEST_F(TraceIoTest, RoundTripPreservesEveryRecord) {
    TraceConfig cfg;
    cfg.total_packets = 5'000;
    const auto trace = generate_trace(cfg);
    write_trace(path_, trace);
    const auto loaded = read_trace(path_);
    ASSERT_EQ(loaded.size(), trace.size());
    for (std::size_t i = 0; i < trace.size(); ++i) {
        ASSERT_EQ(loaded[i], trace[i]) << "record " << i;
    }
}

TEST_F(TraceIoTest, EmptyTraceRoundTrips) {
    write_trace(path_, {});
    EXPECT_TRUE(read_trace(path_).empty());
}

TEST_F(TraceIoTest, MissingFileThrows) {
    EXPECT_THROW(read_trace("/nonexistent/dir/x.bin"), std::runtime_error);
}

TEST_F(TraceIoTest, BadMagicRejected) {
    std::ofstream os(path_, std::ios::binary);
    os << "NOTATRACEFILE.....";
    os.close();
    EXPECT_THROW(read_trace(path_), std::runtime_error);
}

TEST_F(TraceIoTest, TruncatedBodyRejected) {
    TraceConfig cfg;
    cfg.total_packets = 1'000;
    const auto trace = generate_trace(cfg);
    write_trace(path_, trace);
    // Chop the file in half.
    const auto full = std::filesystem::file_size(path_);
    std::filesystem::resize_file(path_, full / 2);
    EXPECT_THROW(read_trace(path_), std::runtime_error);
}

TEST_F(TraceIoTest, TruncatedHeaderRejected) {
    std::ofstream os(path_, std::ios::binary);
    os << "P4LRUTRC";  // magic only, no version/count
    os.close();
    EXPECT_THROW(read_trace(path_), std::runtime_error);
}

TEST_F(TraceIoTest, WrongVersionRejected) {
    write_trace(path_, {});
    // Corrupt the version field (bytes 8..11).
    std::fstream f(path_, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(8);
    const std::uint32_t bad = 999;
    f.write(reinterpret_cast<const char*>(&bad), 4);
    f.close();
    EXPECT_THROW(read_trace(path_), std::runtime_error);
}

}  // namespace
}  // namespace p4lru::trace
