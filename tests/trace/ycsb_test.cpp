#include "p4lru/trace/ycsb.hpp"

#include <gtest/gtest.h>

#include <map>

namespace p4lru::trace {
namespace {

TEST(Ycsb, RejectsBadConfig) {
    YcsbConfig cfg;
    cfg.items = 0;
    EXPECT_THROW(YcsbWorkload{cfg}, std::invalid_argument);
    cfg = YcsbConfig{};
    cfg.read_fraction = 1.5;
    EXPECT_THROW(YcsbWorkload{cfg}, std::invalid_argument);
}

TEST(Ycsb, KeysStayInRange) {
    YcsbConfig cfg;
    cfg.items = 1000;
    YcsbWorkload w(cfg);
    for (int i = 0; i < 20'000; ++i) {
        ASSERT_LT(w.next().key, 1000u);
    }
}

TEST(Ycsb, DeterministicForSameSeed) {
    YcsbConfig cfg;
    cfg.seed = 99;
    YcsbWorkload a(cfg);
    YcsbWorkload b(cfg);
    for (int i = 0; i < 1000; ++i) {
        const auto oa = a.next();
        const auto ob = b.next();
        EXPECT_EQ(oa.key, ob.key);
        EXPECT_EQ(static_cast<int>(oa.type), static_cast<int>(ob.type));
    }
}

TEST(Ycsb, ReadFractionRespected) {
    YcsbConfig cfg;
    cfg.read_fraction = 0.7;
    YcsbWorkload w(cfg);
    int reads = 0;
    const int n = 50'000;
    for (int i = 0; i < n; ++i) {
        reads += w.next().type == OpType::kRead ? 1 : 0;
    }
    EXPECT_NEAR(static_cast<double>(reads) / n, 0.7, 0.02);
}

TEST(Ycsb, DefaultIsAllReads) {
    YcsbWorkload w(YcsbConfig{});
    for (int i = 0; i < 1000; ++i) {
        EXPECT_EQ(static_cast<int>(w.next().type),
                  static_cast<int>(OpType::kRead));
    }
}

TEST(Ycsb, SkewProducesHotKeys) {
    YcsbConfig cfg;
    cfg.items = 10'000;
    cfg.zipf_alpha = 0.9;  // the paper's setting
    YcsbWorkload w(cfg);
    std::map<std::uint64_t, std::size_t> counts;
    const int n = 200'000;
    for (int i = 0; i < n; ++i) ++counts[w.next().key];
    std::vector<std::size_t> sorted;
    for (const auto& [k, c] : counts) sorted.push_back(c);
    std::sort(sorted.rbegin(), sorted.rend());
    // Top-10 keys carry a large share under alpha = 0.9.
    std::size_t top10 = 0;
    for (std::size_t i = 0; i < 10 && i < sorted.size(); ++i) {
        top10 += sorted[i];
    }
    EXPECT_GT(static_cast<double>(top10) / n, 0.08);
    // But the workload is not degenerate: many distinct keys appear.
    EXPECT_GT(counts.size(), 2000u);
}

TEST(Ycsb, GenerateMaterializesRequestedCount) {
    YcsbWorkload w(YcsbConfig{});
    const auto ops = w.generate(1234);
    EXPECT_EQ(ops.size(), 1234u);
}

}  // namespace
}  // namespace p4lru::trace
