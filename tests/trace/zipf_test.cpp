#include "p4lru/common/zipf.hpp"

#include <gtest/gtest.h>

#include <map>
#include <vector>

namespace p4lru::rng {
namespace {

TEST(ZipfSampler, RejectsBadParameters) {
    EXPECT_THROW(ZipfSampler(0, 1.0), std::invalid_argument);
    EXPECT_THROW(ZipfSampler(10, -0.5), std::invalid_argument);
}

TEST(ZipfSampler, SamplesStayInRange) {
    ZipfSampler z(100, 0.9);
    Xoshiro256 rng(1);
    for (int i = 0; i < 50'000; ++i) {
        const auto s = z.sample(rng);
        ASSERT_GE(s, 1u);
        ASSERT_LE(s, 100u);
    }
}

TEST(ZipfSampler, SingleElementAlwaysOne) {
    ZipfSampler z(1, 1.5);
    Xoshiro256 rng(2);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(z.sample(rng), 1u);
}

TEST(ZipfSampler, FrequenciesDecreaseWithRank) {
    ZipfSampler z(1000, 1.0);
    Xoshiro256 rng(3);
    std::map<std::uint64_t, std::size_t> counts;
    for (int i = 0; i < 200'000; ++i) ++counts[z.sample(rng)];
    EXPECT_GT(counts[1], counts[10]);
    EXPECT_GT(counts[10], counts[100]);
}

TEST(ZipfSampler, MatchesTheoreticalHeadProbability) {
    // For alpha = 1, n = 100: P(1) = 1 / H_100 ≈ 1/5.187 ≈ 0.1928.
    ZipfSampler z(100, 1.0);
    Xoshiro256 rng(4);
    std::size_t head = 0;
    const int draws = 300'000;
    for (int i = 0; i < draws; ++i) head += z.sample(rng) == 1 ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(head) / draws, 0.1928, 0.01);
}

TEST(ZipfSampler, AlphaZeroIsUniform) {
    ZipfSampler z(10, 0.0);
    Xoshiro256 rng(5);
    std::map<std::uint64_t, std::size_t> counts;
    const int draws = 100'000;
    for (int i = 0; i < draws; ++i) ++counts[z.sample(rng)];
    for (std::uint64_t k = 1; k <= 10; ++k) {
        EXPECT_NEAR(static_cast<double>(counts[k]) / draws, 0.1, 0.01) << k;
    }
}

TEST(ZipfSampler, HigherAlphaIsMoreSkewed) {
    Xoshiro256 rng(6);
    const auto head_mass = [&](double alpha) {
        ZipfSampler z(1000, alpha);
        std::size_t head = 0;
        for (int i = 0; i < 100'000; ++i) head += z.sample(rng) <= 10 ? 1 : 0;
        return head;
    };
    EXPECT_LT(head_mass(0.6), head_mass(0.9));
    EXPECT_LT(head_mass(0.9), head_mass(1.3));
}

TEST(ScrambledZipf, DeterministicGivenSeeds) {
    ScrambledZipf a(1000, 0.9, 42);
    ScrambledZipf b(1000, 0.9, 42);
    Xoshiro256 r1(7);
    Xoshiro256 r2(7);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_EQ(a.sample(r1), b.sample(r2));
    }
}

TEST(ScrambledZipf, PopularKeysAreScattered) {
    // The most popular key must not be key 0 systematically.
    ScrambledZipf z(1000, 1.0, 9);
    Xoshiro256 rng(8);
    std::map<std::uint64_t, std::size_t> counts;
    for (int i = 0; i < 100'000; ++i) ++counts[z.sample(rng)];
    std::uint64_t hottest = 0;
    std::size_t best = 0;
    for (const auto& [k, c] : counts) {
        if (c > best) {
            best = c;
            hottest = k;
        }
    }
    EXPECT_LT(hottest, 1000u);
    EXPECT_GT(best, 10'000u);  // still heavily skewed after scrambling
}

TEST(Xoshiro, ExponentialHasRequestedMean) {
    Xoshiro256 rng(11);
    double sum = 0;
    const int n = 200'000;
    for (int i = 0; i < n; ++i) sum += rng.exponential(5.0);
    EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(Xoshiro, BelowIsUniformEnough) {
    Xoshiro256 rng(12);
    std::vector<std::size_t> buckets(10, 0);
    const int n = 100'000;
    for (int i = 0; i < n; ++i) ++buckets[rng.below(10)];
    for (const auto b : buckets) {
        EXPECT_NEAR(static_cast<double>(b) / n, 0.1, 0.01);
    }
}

}  // namespace
}  // namespace p4lru::rng
