#include "p4lru/common/zipf.hpp"

#include <gtest/gtest.h>

#include <map>
#include <vector>

namespace p4lru::rng {
namespace {

TEST(ZipfSampler, RejectsBadParameters) {
    EXPECT_THROW(ZipfSampler(0, 1.0), std::invalid_argument);
    EXPECT_THROW(ZipfSampler(10, -0.5), std::invalid_argument);
}

TEST(ZipfSampler, SamplesStayInRange) {
    ZipfSampler z(100, 0.9);
    Xoshiro256 rng(1);
    for (int i = 0; i < 50'000; ++i) {
        const auto s = z.sample(rng);
        ASSERT_GE(s, 1u);
        ASSERT_LE(s, 100u);
    }
}

TEST(ZipfSampler, SingleElementAlwaysOne) {
    ZipfSampler z(1, 1.5);
    Xoshiro256 rng(2);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(z.sample(rng), 1u);
}

TEST(ZipfSampler, FrequenciesDecreaseWithRank) {
    ZipfSampler z(1000, 1.0);
    Xoshiro256 rng(3);
    std::map<std::uint64_t, std::size_t> counts;
    for (int i = 0; i < 200'000; ++i) ++counts[z.sample(rng)];
    EXPECT_GT(counts[1], counts[10]);
    EXPECT_GT(counts[10], counts[100]);
}

TEST(ZipfSampler, MatchesTheoreticalHeadProbability) {
    // For alpha = 1, n = 100: P(1) = 1 / H_100 ≈ 1/5.187 ≈ 0.1928.
    ZipfSampler z(100, 1.0);
    Xoshiro256 rng(4);
    std::size_t head = 0;
    const int draws = 300'000;
    for (int i = 0; i < draws; ++i) head += z.sample(rng) == 1 ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(head) / draws, 0.1928, 0.01);
}

TEST(ZipfSampler, AlphaZeroIsUniform) {
    ZipfSampler z(10, 0.0);
    Xoshiro256 rng(5);
    std::map<std::uint64_t, std::size_t> counts;
    const int draws = 100'000;
    for (int i = 0; i < draws; ++i) ++counts[z.sample(rng)];
    for (std::uint64_t k = 1; k <= 10; ++k) {
        EXPECT_NEAR(static_cast<double>(counts[k]) / draws, 0.1, 0.01) << k;
    }
}

TEST(ZipfSampler, HigherAlphaIsMoreSkewed) {
    Xoshiro256 rng(6);
    const auto head_mass = [&](double alpha) {
        ZipfSampler z(1000, alpha);
        std::size_t head = 0;
        for (int i = 0; i < 100'000; ++i) head += z.sample(rng) <= 10 ? 1 : 0;
        return head;
    };
    EXPECT_LT(head_mass(0.6), head_mass(0.9));
    EXPECT_LT(head_mass(0.9), head_mass(1.3));
}

TEST(ScrambledZipf, DeterministicGivenSeeds) {
    ScrambledZipf a(1000, 0.9, 42);
    ScrambledZipf b(1000, 0.9, 42);
    Xoshiro256 r1(7);
    Xoshiro256 r2(7);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_EQ(a.sample(r1), b.sample(r2));
    }
}

TEST(ScrambledZipf, PopularKeysAreScattered) {
    // The most popular key must not be key 0 systematically.
    ScrambledZipf z(1000, 1.0, 9);
    Xoshiro256 rng(8);
    std::map<std::uint64_t, std::size_t> counts;
    for (int i = 0; i < 100'000; ++i) ++counts[z.sample(rng)];
    std::uint64_t hottest = 0;
    std::size_t best = 0;
    for (const auto& [k, c] : counts) {
        if (c > best) {
            best = c;
            hottest = k;
        }
    }
    EXPECT_LT(hottest, 1000u);
    EXPECT_GT(best, 10'000u);  // still heavily skewed after scrambling
}

TEST(ScrambledZipf, PermuteIsABijectionForAwkwardSizes) {
    // The Feistel + cycle-walk scramble must hit every key in [0, n)
    // exactly once — the old hash-and-mod scramble collided, aliasing
    // distinct Zipf ranks onto one key.  Sweep sizes around power-of-two
    // boundaries (where cycle-walking actually rejects) plus degenerate
    // n = 1..4.
    for (const std::uint64_t n :
         {1ull, 2ull, 3ull, 4ull, 5ull, 15ull, 16ull, 17ull, 63ull, 64ull,
          65ull, 255ull, 1000ull, 1024ull, 1025ull, 4095ull, 5000ull}) {
        for (const std::uint64_t seed : {0ull, 42ull, 0xDEADBEEFull}) {
            ScrambledZipf z(n, 0.9, seed);
            std::vector<bool> hit(n, false);
            for (std::uint64_t x = 0; x < n; ++x) {
                const std::uint64_t y = z.permute(x);
                ASSERT_LT(y, n) << "n=" << n << " seed=" << seed;
                ASSERT_FALSE(hit[y]) << "collision at n=" << n
                                     << " seed=" << seed << " x=" << x;
                hit[y] = true;
            }
        }
    }
}

TEST(ScrambledZipf, SamplesCoverTheWholeKeySpace) {
    // With a bijective scramble and enough draws, every key of a small
    // space is reachable; the collision bug left permanent holes.
    const std::uint64_t n = 64;
    ScrambledZipf z(n, 0.5, 1234);
    Xoshiro256 rng(99);
    std::vector<bool> seen(n, false);
    for (int i = 0; i < 200'000; ++i) seen[z.sample(rng)] = true;
    for (std::uint64_t k = 0; k < n; ++k) {
        EXPECT_TRUE(seen[k]) << "key " << k << " unreachable";
    }
}

TEST(ScrambledZipf, PermutationDiffersAcrossSeeds) {
    ScrambledZipf a(1024, 0.9, 1);
    ScrambledZipf b(1024, 0.9, 2);
    std::size_t same = 0;
    for (std::uint64_t x = 0; x < 1024; ++x) {
        same += a.permute(x) == b.permute(x) ? 1 : 0;
    }
    // Two random permutations of 1024 elements agree on ~1 point.
    EXPECT_LT(same, 32u);
}

TEST(Xoshiro, ExponentialHasRequestedMean) {
    Xoshiro256 rng(11);
    double sum = 0;
    const int n = 200'000;
    for (int i = 0; i < n; ++i) sum += rng.exponential(5.0);
    EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(Xoshiro, BelowIsUniformEnough) {
    Xoshiro256 rng(12);
    std::vector<std::size_t> buckets(10, 0);
    const int n = 100'000;
    for (int i = 0; i < n; ++i) ++buckets[rng.below(10)];
    for (const auto b : buckets) {
        EXPECT_NEAR(static_cast<double>(b) / n, 0.1, 0.01);
    }
}

}  // namespace
}  // namespace p4lru::rng
