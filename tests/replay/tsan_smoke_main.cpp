// Standalone ThreadSanitizer smoke for the sharded replay engine: force the
// threaded path with more workers than cores and aggressive queue churn,
// then check the merged statistics against sequential replay. Built as its
// own binary (replay_tsan_smoke) so a `cmake -DP4LRU_SANITIZE=thread` build
// has a minimal, fast race-detector target; it also runs in plain builds as
// a cheap determinism check.
//
// A second set of rounds runs with checkpoint emission on a tight cadence,
// putting the snapshot quiesce protocol (snap_req/snap_ack/snap_release
// epochs, dispatcher plane reads while workers are parked) under the race
// detector.
//
// A third set drives a *system* ReplayTarget (LruMonTarget: per-partition
// sketch + policy + analyzer) through the same threaded engine, so the
// generic-target worker loop — batch apply into partition-owned hash maps,
// merged statistics, canonical state snapshots — is also raced.
//
// A final round runs the crash-recovery supervisor over the threaded
// engine: an injected mid-run crash stops the dispatch loop cooperatively
// (stop_requested polling while workers are parked at a quiesce), the
// durable store installs generations from the dispatcher thread, and the
// retry re-enters the whole threaded machinery — racing the supervisor's
// stop/restart seams that the plain rounds never reach.
//
// The obs rounds put the metrics plane itself under the race detector: an
// N-thread registry hammer (striped counters/histograms + get-or-create
// races) with a live background sampler reading snapshots concurrently,
// and one fully instrumented threaded replay whose report must stay
// bit-identical to the uninstrumented rounds.
//
// The streamed-source rounds feed the threaded engine from a
// ChunkedFileSource: every op crosses two thread boundaries (background
// reader -> consumer over the chunk SPSC queue, then dispatcher -> shard
// workers), so the trace-ingestion handoff races with the engine's own.
#include <cstdio>
#include <cstring>
#include <deque>
#include <memory>
#include <span>
#include <thread>
#include <vector>

#include "p4lru/core/p4lru.hpp"
#include "p4lru/fault/fault_plan.hpp"
#include "p4lru/obs/metrics.hpp"
#include "p4lru/obs/sampler.hpp"
#include "p4lru/replay/checkpoint.hpp"
#include "p4lru/replay/durable_store.hpp"
#include "p4lru/replay/op_source.hpp"
#include "p4lru/replay/replay.hpp"
#include "p4lru/replay/supervisor.hpp"
#include "p4lru/systems/lrumon/lrumon_target.hpp"
#include "p4lru/trace/trace_gen.hpp"
#include "p4lru/trace/trace_io.hpp"
#include "p4lru/trace/trace_source.hpp"
#include "../test_util.hpp"

int main() {
    using namespace p4lru;
    using Cache = core::ParallelCache<core::P4lru<FlowKey, std::uint32_t, 3>,
                                      FlowKey, std::uint32_t>;

    trace::TraceConfig tcfg;
    tcfg.seed = 13;
    tcfg.total_packets = 100'000;
    tcfg.segments = 4;
    const auto trace = trace::generate_trace(tcfg);
    const auto ops = replay::ops_from_packets(trace);
    const auto span =
        std::span<const replay::ReplayOp<FlowKey, std::uint32_t>>(ops);

    Cache seq_cache(1024, 0x7A);
    const auto seq = replay::replay_sequential(seq_cache, span);

    replay::ShardedConfig cfg;
    cfg.shards = 8;
    cfg.batch_ops = 32;
    cfg.queue_batches = 4;
    cfg.mode = replay::Mode::kThreaded;

    for (int round = 0; round < 5; ++round) {
        // Alternate eager and deferred-init rounds: the deferred ones also
        // exercise the per-worker first-touch writes under the race detector
        // (each worker initializes its own disjoint slab sub-range).
        Cache cache = (round % 2 == 0)
                          ? Cache(1024, 0x7A)
                          : Cache(1024, 0x7A, core::defer_init);
        const auto rep = replay::replay_sharded(cache, span, cfg);
        if (!(rep.stats == seq) || !cache.materialized()) {
            std::fprintf(stderr,
                         "round %d: sharded stats diverge from sequential "
                         "(ops %llu/%llu hits %llu/%llu)\n",
                         round,
                         static_cast<unsigned long long>(rep.stats.ops),
                         static_cast<unsigned long long>(seq.ops),
                         static_cast<unsigned long long>(rep.stats.hits),
                         static_cast<unsigned long long>(seq.hits));
            return 1;
        }
    }
    std::size_t snapshots = 0;
    for (int round = 0; round < 3; ++round) {
        Cache cache(1024, 0x7A);
        std::vector<replay::ShardedCheckpoint> cps;
        const auto rep = replay::replay_sharded_checkpointed(
            cache, span, cfg, /*every_batches=*/64,
            [&](replay::ShardedCheckpoint&& cp) {
                cps.push_back(std::move(cp));
            });
        snapshots += cps.size();
        if (!(rep.stats == seq) || cps.empty()) {
            std::fprintf(stderr,
                         "checkpointed round %d: diverged (ops %llu/%llu, "
                         "%zu checkpoints)\n",
                         round,
                         static_cast<unsigned long long>(rep.stats.ops),
                         static_cast<unsigned long long>(seq.ops),
                         cps.size());
            return 1;
        }
    }

    // --- system-target rounds (generic engine path) ----------------------
    using systems::lrumon::LruMonTarget;
    const auto make_target = [] {
        systems::lrumon::LruMonConfig mcfg;
        mcfg.threshold = 400;
        return LruMonTarget(
            6,
            [](std::size_t p) {
                systems::lrumon::FilterConfig fcfg;
                fcfg.cm_width = 1u << 10;
                fcfg.seed = 0x70EEE + p;
                return systems::lrumon::make_filter(
                    systems::lrumon::FilterKind::kCm, fcfg);
            },
            [](std::size_t p) -> LruMonTarget::PolicyPtr {
                return std::make_unique<cache::P4lruArrayPolicy<
                    std::uint32_t, systems::lrumon::FlowLen, 3,
                    core::AddMerge>>(
                    96, 0xF11 + static_cast<std::uint32_t>(p) * 0x9E37u);
            },
            mcfg);
    };
    const auto pkt_span = std::span<const PacketRecord>(trace);
    LruMonTarget seq_target = make_target();
    const auto seq_sys = replay::replay_target_sequential(seq_target, pkt_span);
    std::vector<std::byte> seq_image;
    seq_target.save_state(seq_image);
    for (int round = 0; round < 3; ++round) {
        LruMonTarget target = make_target();
        const auto rep = replay::replay_target_sharded(target, pkt_span, cfg);
        std::vector<std::byte> image;
        target.save_state(image);
        if (!(rep.stats == seq_sys) || image != seq_image) {
            std::fprintf(stderr,
                         "system round %d: threaded LruMonTarget diverged "
                         "from sequential (ops %llu/%llu, uploads %llu/%llu, "
                         "state %zu/%zu bytes)\n",
                         round,
                         static_cast<unsigned long long>(rep.stats.ops),
                         static_cast<unsigned long long>(seq_sys.ops),
                         static_cast<unsigned long long>(rep.stats.uploads),
                         static_cast<unsigned long long>(seq_sys.uploads),
                         image.size(), seq_image.size());
            return 1;
        }
    }

    // --- supervised crash-recovery round (threaded engine) ----------------
    testutil::ScopedTempDir scratch{"p4lru_tsan"};
    replay::DurableStoreConfig store_cfg;
    store_cfg.retain = 3;
    store_cfg.sync = false;
    replay::DurableStore store(scratch.file("store"), store_cfg);
    fault::FaultPlan crash_plan;
    crash_plan.crash(3, fault::CrashPoint::kTornInstall, /*section=*/2)
        .crash(7, fault::CrashPoint::kBeforeRename);
    std::deque<Cache> lives;
    auto factory = [&lives] {
        lives.emplace_back(1024, 0x7A);
        return replay::CacheReplayTarget<Cache, FlowKey, std::uint32_t>(
            lives.back());
    };
    replay::SupervisorConfig sup;
    sup.every_batches = 32;
    sup.max_attempts = 4;
    const auto sv = replay::run_supervised(factory, span, cfg, store, sup,
                                           crash_plan);
    if (!sv.is_ok() || !(sv.value().report.stats == seq) ||
        sv.value().crashes != 2) {
        std::fprintf(
            stderr,
            "supervised round: %s (crashes %zu/2)\n",
            sv.is_ok() ? "stats diverge from sequential"
                       : sv.status().to_string().c_str(),
            sv.is_ok() ? sv.value().crashes : 0);
        return 1;
    }

    // --- obs rounds (metrics plane under the race detector) ---------------
    // Registry hammer: writer threads on shared instruments + get-or-create
    // races, while a background sampler snapshots concurrently.
    std::uint64_t hammer_total = 0;
    {
        obs::Registry reg;
        obs::SamplerConfig samp_cfg;
        samp_cfg.period_ms = 1;
        obs::Sampler sampler(reg, samp_cfg);
        obs::Counter* shared_c = reg.counter("tsan_shared");
        obs::Histogram* shared_h = reg.histogram("tsan_shared");
        constexpr std::size_t kThreads = 8;
        constexpr std::uint64_t kIters = 50'000;
        std::vector<std::thread> pool;
        for (std::size_t t = 0; t < kThreads; ++t) {
            pool.emplace_back([&, t] {
                obs::Gauge* g = reg.gauge("tsan_g" + std::to_string(t));
                for (std::uint64_t i = 0; i < kIters; ++i) {
                    shared_c->add(1);
                    shared_h->record(i);
                    g->set(static_cast<std::int64_t>(i));
                    if (i % 4096 == 0) {
                        reg.counter("tsan_late_" + std::to_string(i % 3))
                            ->add(1);
                    }
                }
            });
        }
        for (auto& th : pool) th.join();
        sampler.stop();
        hammer_total = shared_c->value();
        if (hammer_total != kThreads * kIters ||
            shared_h->snapshot().count != kThreads * kIters) {
            std::fprintf(stderr,
                         "obs hammer: merged totals inexact (%llu/%llu)\n",
                         static_cast<unsigned long long>(hammer_total),
                         static_cast<unsigned long long>(kThreads * kIters));
            return 1;
        }
    }

    // Instrumented threaded replay: the engine's metric writes (dispatcher
    // gauges, worker-side batch timings) race-free and report-inert.
    {
        obs::Registry reg;
        replay::ShardedConfig ocfg = cfg;
        ocfg.metrics = &reg;
        Cache cache(1024, 0x7A);
        const auto rep = replay::replay_sharded(cache, span, ocfg);
        if (!(rep.stats == seq)) {
            std::fprintf(
                stderr,
                "obs round: instrumented stats diverge from sequential "
                "(ops %llu/%llu)\n",
                static_cast<unsigned long long>(rep.stats.ops),
                static_cast<unsigned long long>(seq.ops));
            return 1;
        }
        const auto snap = reg.snapshot();
        const std::uint64_t* batches =
            snap.counter("replay_batches_applied");
        if (batches == nullptr || *batches == 0) {
            std::fprintf(stderr,
                         "obs round: engine published no batch metrics\n");
            return 1;
        }
    }

    // --- streamed-source rounds (chunked reader under the race detector) --
    {
        const std::string trace_path = scratch.file("trace.bin");
        trace::write_trace(trace_path, trace);
        for (int round = 0; round < 3; ++round) {
            trace::ChunkedSourceOptions sopts;
            // Chunk sizes that never divide the batch size: most batches
            // straddle a chunk boundary and go through the stitch buffer.
            sopts.chunk_records = 1'000 + 513 * static_cast<std::size_t>(round);
            auto src = trace::ChunkedFileSource::open(trace_path, sopts);
            if (!src.is_ok()) {
                std::fprintf(stderr, "streamed round %d: open: %s\n", round,
                             src.status().to_string().c_str());
                return 1;
            }
            auto stream = replay::packet_op_source(*src.value());
            Cache cache(1024, 0x7A);
            const auto rep = replay::replay_sharded_stream(cache, stream, cfg);
            if (!rep.is_ok() || !(rep.value().stats == seq)) {
                std::fprintf(
                    stderr,
                    "streamed round %d: chunked-source threaded replay %s "
                    "(ops %llu/%llu)\n",
                    round,
                    rep.is_ok() ? "diverged from sequential"
                                : rep.status().to_string().c_str(),
                    static_cast<unsigned long long>(
                        rep.is_ok() ? rep.value().stats.ops : 0),
                    static_cast<unsigned long long>(seq.ops));
                return 1;
            }
        }
    }

    std::printf(
        "replay_tsan_smoke: 5 threaded rounds (eager + first-touch) + 3 "
        "checkpointed rounds (%zu quiesce snapshots) + 3 system-target "
        "rounds (LruMonTarget, %llu uploads, %zu-byte canonical state) + 1 "
        "supervised crash-recovery round (%zu attempts, %llu installs) + "
        "obs rounds (%llu hammered adds exact, instrumented replay inert) + "
        "3 streamed chunked-source rounds, 8 shards, stats identical to "
        "sequential (%llu ops, %llu hits, %llu evictions)\n",
        snapshots, static_cast<unsigned long long>(seq_sys.uploads),
        seq_image.size(), sv.value().attempts,
        static_cast<unsigned long long>(sv.value().installs),
        static_cast<unsigned long long>(hammer_total),
        static_cast<unsigned long long>(seq.ops),
        static_cast<unsigned long long>(seq.hits),
        static_cast<unsigned long long>(seq.evictions));
    return 0;
}
