#include "p4lru/replay/shard_plan.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace p4lru::replay {
namespace {

TEST(ShardPlan, RejectsZeroUnits) {
    EXPECT_THROW(ShardPlan::make(0, 4), std::invalid_argument);
}

TEST(ShardPlan, ClampsShardCount) {
    EXPECT_EQ(ShardPlan::make(8, 0).shards(), 1u);
    EXPECT_EQ(ShardPlan::make(8, 3).shards(), 3u);
    EXPECT_EQ(ShardPlan::make(8, 64).shards(), 8u);
}

TEST(ShardPlan, RangesPartitionTheUnitSpace) {
    for (const std::size_t units : {1u, 7u, 64u, 1000u, 65536u}) {
        for (const std::size_t shards : {1u, 2u, 3u, 8u, 13u}) {
            const auto plan = ShardPlan::make(units, shards);
            std::size_t covered = 0;
            std::size_t prev_end = 0;
            for (std::size_t s = 0; s < plan.shards(); ++s) {
                const auto [first, last] = plan.range(s);
                EXPECT_EQ(first, prev_end);
                EXPECT_LE(first, last);
                covered += last - first;
                prev_end = last;
            }
            EXPECT_EQ(prev_end, units);
            EXPECT_EQ(covered, units);
        }
    }
}

TEST(ShardPlan, OwnerMatchesRange) {
    const auto plan = ShardPlan::make(1000, 7);
    for (std::size_t s = 0; s < plan.shards(); ++s) {
        const auto [first, last] = plan.range(s);
        for (std::size_t b = first; b < last; ++b) {
            EXPECT_EQ(plan.owner(b), s) << "bucket " << b;
        }
    }
}

TEST(ShardPlan, DefaultShardsIsPositive) {
    EXPECT_GE(default_shards(), 1u);
}

TEST(ShardPlan, TryMakeReportsZeroUnitsAsTypedError) {
    const auto bad = ShardPlan::try_make(0, 4);
    ASSERT_FALSE(bad.is_ok());
    EXPECT_EQ(bad.status().code(), ErrorCode::kInvalidArgument);

    const auto good = ShardPlan::try_make(16, 4);
    ASSERT_TRUE(good.is_ok());
    EXPECT_EQ(good.value().shards(), 4u);
}

TEST(ShardPlan, MoreShardsThanUnitsClampsAndStillPartitions) {
    for (const std::size_t units : {1u, 2u, 3u, 5u}) {
        const auto plan = ShardPlan::make(units, 64);
        EXPECT_EQ(plan.shards(), units);
        for (std::size_t s = 0; s < plan.shards(); ++s) {
            const auto [first, last] = plan.range(s);
            EXPECT_EQ(last - first, 1u) << "one unit per shard when clamped";
            EXPECT_EQ(plan.owner(first), s);
        }
    }
}

TEST(ShardPlan, SingleUnitSingleShardOwnsEverything) {
    const auto plan = ShardPlan::make(1, 1);
    EXPECT_EQ(plan.shards(), 1u);
    const auto [first, last] = plan.range(0);
    EXPECT_EQ(first, 0u);
    EXPECT_EQ(last, 1u);
    EXPECT_EQ(plan.owner(0), 0u);
}

/// Property sweep over awkward unit counts (primes, non-powers-of-two,
/// power-of-two±1): for every (units, shards) pair the ranges must cover
/// [0, units) exactly once (coverage + disjointness) and owner() must agree
/// with range() for every single bucket.
TEST(ShardPlan, PropertyCoverageDisjointnessOwnerAgreement) {
    const std::size_t unit_counts[] = {1,  2,  3,   5,   6,   7,  9,
                                       31, 33, 127, 129, 255, 257, 1013};
    const std::size_t shard_counts[] = {1, 2, 3, 4, 5, 7, 8, 16, 2000};
    for (const std::size_t units : unit_counts) {
        for (const std::size_t shards : shard_counts) {
            const auto plan = ShardPlan::make(units, shards);
            ASSERT_LE(plan.shards(), units);
            std::vector<int> owner_of(units, -1);
            for (std::size_t s = 0; s < plan.shards(); ++s) {
                const auto [first, last] = plan.range(s);
                for (std::size_t b = first; b < last; ++b) {
                    ASSERT_EQ(owner_of[b], -1)
                        << "unit " << b << " claimed twice (units=" << units
                        << " shards=" << shards << ")";
                    owner_of[b] = static_cast<int>(s);
                }
            }
            for (std::size_t b = 0; b < units; ++b) {
                ASSERT_NE(owner_of[b], -1)
                    << "unit " << b << " unowned (units=" << units
                    << " shards=" << shards << ")";
                ASSERT_EQ(plan.owner(b),
                          static_cast<std::size_t>(owner_of[b]))
                    << "owner/range disagree at bucket " << b;
            }
        }
    }
}

/// Non-power-of-two unit counts take the division path of owner();
/// powers of two take the shift path. Both must agree with a plain
/// floor(bucket * shards / units).
TEST(ShardPlan, OwnerMatchesExactFormulaOnBothPaths) {
    for (const std::size_t units : {1000u, 1024u}) {
        const auto plan = ShardPlan::make(units, 7);
        for (std::size_t b = 0; b < units; ++b) {
            const auto expect =
                static_cast<std::size_t>(
                    static_cast<unsigned long long>(b) * 7 / units);
            EXPECT_EQ(plan.owner(b), expect) << "units " << units;
        }
    }
}

}  // namespace
}  // namespace p4lru::replay
