#include "p4lru/replay/shard_plan.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace p4lru::replay {
namespace {

TEST(ShardPlan, RejectsZeroUnits) {
    EXPECT_THROW(ShardPlan::make(0, 4), std::invalid_argument);
}

TEST(ShardPlan, ClampsShardCount) {
    EXPECT_EQ(ShardPlan::make(8, 0).shards(), 1u);
    EXPECT_EQ(ShardPlan::make(8, 3).shards(), 3u);
    EXPECT_EQ(ShardPlan::make(8, 64).shards(), 8u);
}

TEST(ShardPlan, RangesPartitionTheUnitSpace) {
    for (const std::size_t units : {1u, 7u, 64u, 1000u, 65536u}) {
        for (const std::size_t shards : {1u, 2u, 3u, 8u, 13u}) {
            const auto plan = ShardPlan::make(units, shards);
            std::size_t covered = 0;
            std::size_t prev_end = 0;
            for (std::size_t s = 0; s < plan.shards(); ++s) {
                const auto [first, last] = plan.range(s);
                EXPECT_EQ(first, prev_end);
                EXPECT_LE(first, last);
                covered += last - first;
                prev_end = last;
            }
            EXPECT_EQ(prev_end, units);
            EXPECT_EQ(covered, units);
        }
    }
}

TEST(ShardPlan, OwnerMatchesRange) {
    const auto plan = ShardPlan::make(1000, 7);
    for (std::size_t s = 0; s < plan.shards(); ++s) {
        const auto [first, last] = plan.range(s);
        for (std::size_t b = first; b < last; ++b) {
            EXPECT_EQ(plan.owner(b), s) << "bucket " << b;
        }
    }
}

TEST(ShardPlan, DefaultShardsIsPositive) {
    EXPECT_GE(default_shards(), 1u);
}

}  // namespace
}  // namespace p4lru::replay
