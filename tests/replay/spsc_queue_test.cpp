#include "p4lru/replay/spsc_queue.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <thread>
#include <vector>

namespace p4lru::replay {
namespace {

TEST(SpscQueue, CapacityRoundsUpToPowerOfTwo) {
    EXPECT_EQ(SpscQueue<int>(1).capacity(), 2u);
    EXPECT_EQ(SpscQueue<int>(5).capacity(), 8u);
    EXPECT_EQ(SpscQueue<int>(64).capacity(), 64u);
}

TEST(SpscQueue, FifoSingleThread) {
    SpscQueue<int> q(8);
    for (int i = 0; i < 8; ++i) q.push(i);
    int v = -1;
    EXPECT_FALSE(q.try_push(v));  // full
    for (int i = 0; i < 8; ++i) {
        ASSERT_TRUE(q.try_pop(v));
        EXPECT_EQ(v, i);
    }
    EXPECT_FALSE(q.try_pop(v));  // empty
}

TEST(SpscQueue, PopDrainsAfterClose) {
    SpscQueue<int> q(8);
    q.push(1);
    q.push(2);
    q.close();
    int v = 0;
    EXPECT_TRUE(q.pop(v));
    EXPECT_EQ(v, 1);
    EXPECT_TRUE(q.pop(v));
    EXPECT_EQ(v, 2);
    EXPECT_FALSE(q.pop(v));  // closed and empty
}

TEST(SpscQueue, TransfersEverythingAcrossThreads) {
    constexpr std::uint64_t kCount = 100'000;
    SpscQueue<std::uint64_t> q(32);
    std::uint64_t sum = 0;
    std::uint64_t received = 0;
    std::thread consumer([&] {
        std::uint64_t v;
        while (q.pop(v)) {
            sum += v;
            ++received;
        }
    });
    for (std::uint64_t i = 1; i <= kCount; ++i) q.push(i);
    q.close();
    consumer.join();
    EXPECT_EQ(received, kCount);
    EXPECT_EQ(sum, kCount * (kCount + 1) / 2);
}

/// Full/empty boundary at the counter-wraparound seam: head_/tail_ are
/// free-running u64s and occupancy is their mod-2^64 difference, so fill →
/// drain cycles far past capacity() must keep reporting full and empty at
/// exactly the right occupancies.
TEST(SpscQueue, FullEmptyBoundaryHoldsAcrossManyWraps) {
    SpscQueue<int> q(4);
    ASSERT_EQ(q.capacity(), 4u);
    int v = 0;
    for (int cycle = 0; cycle < 1'000; ++cycle) {
        EXPECT_EQ(q.size_approx(), 0u);
        EXPECT_FALSE(q.try_pop(v)) << "cycle " << cycle << ": empty pops";
        for (int i = 0; i < 4; ++i) {
            int x = cycle * 4 + i;
            EXPECT_TRUE(q.try_push(x));
        }
        EXPECT_EQ(q.size_approx(), 4u);
        int rejected = -1;
        EXPECT_FALSE(q.try_push(rejected)) << "cycle " << cycle
                                           << ": full accepts";
        EXPECT_EQ(rejected, -1) << "failed push must leave the value intact";
        for (int i = 0; i < 4; ++i) {
            ASSERT_TRUE(q.try_pop(v));
            EXPECT_EQ(v, cycle * 4 + i) << "FIFO across the index wrap";
        }
    }
}

/// Partial-occupancy wraparound: keep one element resident while pushing and
/// popping, so the ring indices cross the wrap point at every alignment.
TEST(SpscQueue, FifoPreservedAtEveryWrapAlignment) {
    SpscQueue<int> q(4);
    int next_in = 0;
    int next_out = 0;
    q.push(next_in++);
    for (int step = 0; step < 500; ++step) {
        q.push(next_in++);
        int v = -1;
        ASSERT_TRUE(q.try_pop(v));
        EXPECT_EQ(v, next_out++);
    }
}

TEST(SpscQueue, TryPushForSucceedsImmediatelyWithRoom) {
    SpscQueue<int> q(4);
    int v = 7;
    EXPECT_TRUE(q.try_push_for(v, std::chrono::microseconds(0)));
    ASSERT_TRUE(q.try_pop(v));
    EXPECT_EQ(v, 7);
}

TEST(SpscQueue, TryPushForTimesOutAgainstFullRing) {
    SpscQueue<int> q(2);
    int a = 1, b = 2, c = 3;
    ASSERT_TRUE(q.try_push(a));
    ASSERT_TRUE(q.try_push(b));
    const auto t0 = std::chrono::steady_clock::now();
    EXPECT_FALSE(q.try_push_for(c, std::chrono::microseconds(2'000)));
    const auto elapsed = std::chrono::steady_clock::now() - t0;
    EXPECT_GE(elapsed, std::chrono::microseconds(2'000));
    EXPECT_EQ(c, 3) << "timed-out push must leave the value intact";
}

TEST(SpscQueue, TryPushForRecoversWhenConsumerResumes) {
    SpscQueue<int> q(2);
    int a = 1, b = 2, c = 3;
    ASSERT_TRUE(q.try_push(a));
    ASSERT_TRUE(q.try_push(b));
    std::thread consumer([&q] {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
        int v;
        ASSERT_TRUE(q.try_pop(v));
    });
    // Generous deadline: the pop lands well inside it.
    EXPECT_TRUE(q.try_push_for(c, std::chrono::seconds(10)));
    consumer.join();
    int v = 0;
    ASSERT_TRUE(q.try_pop(v));
    EXPECT_EQ(v, 2);
    ASSERT_TRUE(q.try_pop(v));
    EXPECT_EQ(v, 3);
}

TEST(SpscQueue, MoveOnlyPayload) {
    SpscQueue<std::vector<int>> q(4);
    std::vector<int> batch(100);
    std::iota(batch.begin(), batch.end(), 0);
    q.push(std::move(batch));
    std::vector<int> out;
    ASSERT_TRUE(q.try_pop(out));
    ASSERT_EQ(out.size(), 100u);
    EXPECT_EQ(out[99], 99);
}

}  // namespace
}  // namespace p4lru::replay
