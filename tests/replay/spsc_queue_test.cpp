#include "p4lru/replay/spsc_queue.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <thread>
#include <vector>

namespace p4lru::replay {
namespace {

TEST(SpscQueue, CapacityRoundsUpToPowerOfTwo) {
    EXPECT_EQ(SpscQueue<int>(1).capacity(), 2u);
    EXPECT_EQ(SpscQueue<int>(5).capacity(), 8u);
    EXPECT_EQ(SpscQueue<int>(64).capacity(), 64u);
}

TEST(SpscQueue, FifoSingleThread) {
    SpscQueue<int> q(8);
    for (int i = 0; i < 8; ++i) q.push(i);
    int v = -1;
    EXPECT_FALSE(q.try_push(v));  // full
    for (int i = 0; i < 8; ++i) {
        ASSERT_TRUE(q.try_pop(v));
        EXPECT_EQ(v, i);
    }
    EXPECT_FALSE(q.try_pop(v));  // empty
}

TEST(SpscQueue, PopDrainsAfterClose) {
    SpscQueue<int> q(8);
    q.push(1);
    q.push(2);
    q.close();
    int v = 0;
    EXPECT_TRUE(q.pop(v));
    EXPECT_EQ(v, 1);
    EXPECT_TRUE(q.pop(v));
    EXPECT_EQ(v, 2);
    EXPECT_FALSE(q.pop(v));  // closed and empty
}

TEST(SpscQueue, TransfersEverythingAcrossThreads) {
    constexpr std::uint64_t kCount = 100'000;
    SpscQueue<std::uint64_t> q(32);
    std::uint64_t sum = 0;
    std::uint64_t received = 0;
    std::thread consumer([&] {
        std::uint64_t v;
        while (q.pop(v)) {
            sum += v;
            ++received;
        }
    });
    for (std::uint64_t i = 1; i <= kCount; ++i) q.push(i);
    q.close();
    consumer.join();
    EXPECT_EQ(received, kCount);
    EXPECT_EQ(sum, kCount * (kCount + 1) / 2);
}

TEST(SpscQueue, MoveOnlyPayload) {
    SpscQueue<std::vector<int>> q(4);
    std::vector<int> batch(100);
    std::iota(batch.begin(), batch.end(), 0);
    q.push(std::move(batch));
    std::vector<int> out;
    ASSERT_TRUE(q.try_pop(out));
    ASSERT_EQ(out.size(), 100u);
    EXPECT_EQ(out[99], 99);
}

}  // namespace
}  // namespace p4lru::replay
