// Property suite for the batched update path: update_batch (and everything
// layered on it — replay_sequential_batched, the checkpointed sequential
// replay, the policy fill_batch/access_batch entry points, and the sharded
// engine's routed batches) must emit a bit-identical UpdateResult stream to
// per-op update on the same input.  Batching hoists only hashing and
// prefetching; per-op application order is untouched, so this is checkable
// result-for-result, on both storage layouts, under Zipf and YCSB traffic,
// with checkpoints cut mid-stream.
#include <gtest/gtest.h>

#include <cstdint>
#include <span>
#include <vector>

#include "p4lru/cache/policy.hpp"
#include "p4lru/core/p4lru.hpp"
#include "p4lru/replay/checkpoint.hpp"
#include "p4lru/replay/replay.hpp"
#include "p4lru/trace/trace_gen.hpp"
#include "p4lru/trace/ycsb.hpp"

namespace p4lru::replay {
namespace {

using FlowCache =
    core::ParallelCache<core::P4lru<FlowKey, std::uint32_t, 3>, FlowKey,
                        std::uint32_t>;
using AosFlowCache =
    core::AosParallelCache<core::P4lru<FlowKey, std::uint32_t, 3>, FlowKey,
                           std::uint32_t>;
using KeyCache =
    core::ParallelCache<core::P4lru<std::uint64_t, std::uint64_t, 3>,
                        std::uint64_t, std::uint64_t>;
using AosKeyCache =
    core::AosParallelCache<core::P4lru<std::uint64_t, std::uint64_t, 3>,
                           std::uint64_t, std::uint64_t>;

std::vector<ReplayOp<FlowKey, std::uint32_t>> zipf_ops() {
    trace::TraceConfig cfg;
    cfg.seed = 77;
    cfg.total_packets = 120'000;
    cfg.segments = 4;
    return ops_from_packets(trace::generate_trace(cfg));
}

std::vector<ReplayOp<std::uint64_t, std::uint64_t>> ycsb_ops() {
    trace::YcsbConfig cfg;
    cfg.seed = 99;
    cfg.items = 200'000;
    cfg.zipf_alpha = 0.9;
    trace::YcsbWorkload wl(cfg);
    std::vector<ReplayOp<std::uint64_t, std::uint64_t>> ops;
    ops.reserve(80'000);
    for (const auto& op : wl.generate(80'000)) {
        ops.push_back({op.key, op.key * 2 + 1});
    }
    return ops;
}

template <typename CacheA, typename CacheB>
void expect_same_contents(const CacheA& a, const CacheB& b) {
    ASSERT_EQ(a.unit_count(), b.unit_count());
    for (std::size_t u = 0; u < a.unit_count(); ++u) {
        const auto& ua = a.unit(u);
        const auto& ub = b.unit(u);
        ASSERT_EQ(ua.size(), ub.size()) << "unit " << u;
        for (std::size_t i = 1; i <= ua.size(); ++i) {
            EXPECT_EQ(ua.key_at(i), ub.key_at(i)) << "unit " << u;
            EXPECT_EQ(ua.value_at(i), ub.value_at(i)) << "unit " << u;
        }
    }
}

/// Field-by-field image of an UpdateResult, comparable across runs.
template <typename Key, typename Value>
struct ResultImage {
    bool hit;
    std::size_t hit_pos;
    bool evicted;
    Key evicted_key;
    Value evicted_value;

    explicit ResultImage(const core::UpdateResult<Key, Value>& r)
        : hit(r.hit),
          hit_pos(r.hit_pos),
          evicted(r.evicted),
          evicted_key(r.evicted_key),
          evicted_value(r.evicted_value) {}

    friend bool operator==(const ResultImage&, const ResultImage&) = default;
};

/// The property itself: per-op update vs update_batch over the same ops on
/// fresh caches of the same seed — identical result streams, identical
/// final contents.
template <typename Cache, typename Key, typename Value>
void check_batch_stream(std::span<const ReplayOp<Key, Value>> ops,
                        std::size_t units, std::uint32_t seed) {
    using Image = ResultImage<Key, Value>;
    Cache per_op(units, seed);
    std::vector<Image> ref;
    ref.reserve(ops.size());
    for (const auto& op : ops) {
        ref.emplace_back(per_op.update(op.key, op.value));
    }

    Cache batched(units, seed);
    std::vector<Image> got;
    got.reserve(ops.size());
    std::size_t expect_i = 0;
    batched.update_batch(ops, [&](std::size_t i, std::size_t b,
                                  const core::UpdateResult<Key, Value>& r) {
        EXPECT_EQ(i, expect_i++);  // sink fires per op, in op order
        EXPECT_EQ(b, batched.bucket(ops[i].key));
        got.emplace_back(r);
    });
    ASSERT_EQ(got.size(), ref.size());
    EXPECT_TRUE(got == ref);
    expect_same_contents(per_op, batched);
}

TEST(BatchEquivalence, ZipfResultStreamIsBitIdenticalSoa) {
    const auto ops = zipf_ops();
    check_batch_stream<FlowCache, FlowKey, std::uint32_t>(ops, 4096, 0xE1);
}

TEST(BatchEquivalence, ZipfResultStreamIsBitIdenticalAos) {
    const auto ops = zipf_ops();
    check_batch_stream<AosFlowCache, FlowKey, std::uint32_t>(ops, 4096,
                                                             0xE1);
}

TEST(BatchEquivalence, YcsbResultStreamIsBitIdenticalSoa) {
    const auto ops = ycsb_ops();
    check_batch_stream<KeyCache, std::uint64_t, std::uint64_t>(ops, 2048,
                                                               0xF1);
}

TEST(BatchEquivalence, YcsbResultStreamIsBitIdenticalAos) {
    const auto ops = ycsb_ops();
    check_batch_stream<AosKeyCache, std::uint64_t, std::uint64_t>(ops, 2048,
                                                                  0xF1);
}

TEST(BatchEquivalence, SequentialBatchedMatchesSequential) {
    const auto ops = zipf_ops();
    const std::span<const ReplayOp<FlowKey, std::uint32_t>> span(ops);
    FlowCache a(4096, 0xE1);
    FlowCache b(4096, 0xE1);
    EXPECT_EQ(replay_sequential_batched(b, span), replay_sequential(a, span));
    expect_same_contents(a, b);
}

/// Checkpoints cut mid-batch-stream: the batched checkpointed replay must
/// emit snapshots at exactly the per-op cursors, with bit-identical stats
/// and plane images, including cadences that do not divide the batch size.
TEST(BatchEquivalence, CheckpointsMidStreamAreBitIdentical) {
    const auto ops = zipf_ops();
    const std::span<const ReplayOp<FlowKey, std::uint32_t>> span(ops);
    for (const std::uint64_t every : {777u, 10'000u, 256u}) {
        // Per-op reference: manual loop with take_checkpoint on cadence.
        FlowCache ref_cache(1024, 0xCC);
        std::vector<ReplayCheckpoint> ref;
        ReplayStats ref_stats;
        std::uint64_t cursor = 0;
        for (const auto& op : ops) {
            ref_stats.tally(ref_cache.update(op.key, op.value));
            ++cursor;
            if (cursor % every == 0 && cursor < ops.size()) {
                ref.push_back(take_checkpoint(ref_cache, cursor, ref_stats));
            }
        }

        FlowCache cache(1024, 0xCC);
        std::vector<ReplayCheckpoint> got;
        const auto stats = replay_sequential_checkpointed(
            cache, span, every,
            [&](ReplayCheckpoint&& cp) { got.push_back(std::move(cp)); });
        EXPECT_EQ(stats, ref_stats) << "every=" << every;
        ASSERT_EQ(got.size(), ref.size()) << "every=" << every;
        for (std::size_t i = 0; i < got.size(); ++i) {
            EXPECT_EQ(got[i].cursor, ref[i].cursor);
            EXPECT_EQ(got[i].stats, ref[i].stats);
            EXPECT_EQ(got[i].planes, ref[i].planes) << "checkpoint " << i;
        }
        expect_same_contents(ref_cache, cache);

        // And every emitted checkpoint resumes to the uninterrupted end
        // state (the resume suffix also runs batched).
        if (!got.empty()) {
            FlowCache resumed(1024, 0xCC);
            const auto r = resume_sequential(resumed, span, got.back());
            ASSERT_TRUE(r.is_ok());
            EXPECT_EQ(r.value(), ref_stats);
            expect_same_contents(ref_cache, resumed);
        }
    }
}

/// The policy batch entry points ride the same machinery: Access streams
/// from fill_batch/access_batch must match per-op fill/access.
TEST(BatchEquivalence, PolicyBatchesMatchPerOp) {
    const auto ops = zipf_ops();
    std::vector<core::CacheOp<FlowKey, std::uint32_t>> batch_ops;
    batch_ops.reserve(ops.size());
    for (const auto& op : ops) batch_ops.push_back({op.key, op.value});

    const auto image = [](const cache::Access<FlowKey, std::uint32_t>& a) {
        return std::tuple(a.hit, a.inserted, a.evicted, a.evicted_key,
                          a.evicted_value, a.value);
    };
    for (const bool write_path : {true, false}) {
        cache::P4lruArrayPolicy<FlowKey, std::uint32_t, 3> per_op(12'288,
                                                                  0xE1);
        cache::P4lruArrayPolicy<FlowKey, std::uint32_t, 3> batched(12'288,
                                                                   0xE1);
        std::vector<decltype(image({}))> ref;
        ref.reserve(ops.size());
        for (const auto& op : ops) {
            ref.push_back(image(write_path ? per_op.fill(op.key, op.value, 0)
                                           : per_op.access(op.key, op.value,
                                                           0)));
        }
        std::size_t i = 0;
        const auto sink =
            [&](const cache::Access<FlowKey, std::uint32_t>& a) {
                ASSERT_LT(i, ref.size());
                EXPECT_TRUE(image(a) == ref[i]) << "op " << i;
                ++i;
            };
        if (write_path) {
            batched.fill_batch(batch_ops, 0, sink);
        } else {
            batched.access_batch(batch_ops, 0, sink);
        }
        EXPECT_EQ(i, ref.size());
    }
}

/// Pinned workers (ShardedConfig::pin_workers): same bits as sequential,
/// and the report says how many workers actually pinned.
TEST(BatchEquivalence, PinnedThreadedReplayMatchesSequential) {
    const auto ops = zipf_ops();
    const std::span<const ReplayOp<FlowKey, std::uint32_t>> span(ops);
    FlowCache seq_cache(2048, 0xAB);
    const auto seq = replay_sequential(seq_cache, span);

    FlowCache cache(2048, 0xAB);
    ShardedConfig cfg;
    cfg.shards = 4;
    cfg.mode = Mode::kThreaded;
    cfg.pin_workers = true;
    const auto rep = replay_sharded(cache, span, cfg);
    EXPECT_EQ(rep.stats, seq);
    expect_same_contents(seq_cache, cache);
#if defined(__linux__)
    EXPECT_EQ(rep.pinned_workers, rep.shards);
#else
    EXPECT_EQ(rep.pinned_workers, 0u);
#endif

    // Off by default, and inline runs never pin.
    FlowCache plain(2048, 0xAB);
    ShardedConfig off;
    off.shards = 4;
    off.mode = Mode::kThreaded;
    const auto rep_off = replay_sharded(plain, span, off);
    EXPECT_EQ(rep_off.pinned_workers, 0u);
    EXPECT_EQ(rep_off.stats, seq);
}

}  // namespace
}  // namespace p4lru::replay
